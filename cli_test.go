package castanet_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestCommandLineTools smoke-tests the three binaries end to end: build
// once, then exercise their primary flows.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	for _, tool := range []string{"castanet", "atmgen", "boardctl"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}

	t.Run("castanet-e3", func(t *testing.T) {
		out, err := exec.Command(filepath.Join(bin, "castanet"), "-experiment", "e3", "-cells", "200").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"E3:", "events ratio", "clock cycles / line cell"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("castanet-bad-experiment", func(t *testing.T) {
		out, err := exec.Command(filepath.Join(bin, "castanet"), "-experiment", "nope").CombinedOutput()
		if err == nil {
			t.Fatalf("unknown experiment accepted:\n%s", out)
		}
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
			t.Errorf("exit status = %v, want 2", err)
		}
		if !strings.Contains(string(out), "e1") || !strings.Contains(string(out), "e8") {
			t.Errorf("usage should list valid experiment names:\n%s", out)
		}
	})

	t.Run("castanet-observability", func(t *testing.T) {
		traceFile := filepath.Join(bin, "e1.json")
		metricsFile := filepath.Join(bin, "e1.metrics")
		out, err := exec.Command(filepath.Join(bin, "castanet"),
			"-experiment", "e1", "-cells", "200",
			"-trace", traceFile, "-metrics", metricsFile).CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "run report") {
			t.Errorf("stdout missing end-of-run summary table:\n%s", out)
		}

		metrics, err := os.ReadFile(metricsFile)
		if err != nil {
			t.Fatal(err)
		}
		for _, want := range []string{
			"net.sched.executed counter ",
			"cosim.queue.k8.depth gauge ",
			"cosim.entity.lag_ps gauge ",
			"ipc.reliable.retransmits counter ",
			"hdl.sim.delta_cycles counter ",
		} {
			if !strings.Contains(string(metrics), want) {
				t.Errorf("metrics exposition missing %q:\n%s", want, metrics)
			}
		}

		// The trace must be well-formed Chrome trace-event JSON with the
		// expected tracks and balanced spans.
		raw, err := os.ReadFile(traceFile)
		if err != nil {
			t.Fatal(err)
		}
		var tr struct {
			TraceEvents []struct {
				Name  string                 `json:"name"`
				Phase string                 `json:"ph"`
				Tid   int                    `json:"tid"`
				TS    float64                `json:"ts"`
				Args  map[string]interface{} `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(raw, &tr); err != nil {
			t.Fatalf("trace is not valid JSON: %v", err)
		}
		tracks := map[string]bool{}
		begins, ends := 0, 0
		lastTS := map[int]float64{}
		backwards := 0
		for _, e := range tr.TraceEvents {
			switch e.Phase {
			case "M":
				if e.Name == "thread_name" {
					tracks[e.Args["name"].(string)] = true
				}
				continue
			case "B":
				begins++
			case "E":
				ends++
			}
			if prev, ok := lastTS[e.Tid]; ok && e.TS < prev {
				backwards++
			}
			lastTS[e.Tid] = e.TS
		}
		if backwards > 0 {
			t.Errorf("%d events run backwards within their track", backwards)
		}
		if begins == 0 || begins != ends {
			t.Errorf("spans unbalanced: %d begins, %d ends", begins, ends)
		}
		for _, want := range []string{"netsim", "hdl-dut", "coupling", "rig"} {
			if !tracks[want] {
				t.Errorf("trace missing track %q (have %v)", want, tracks)
			}
		}
	})

	t.Run("castanet-campaign", func(t *testing.T) {
		traceFile := filepath.Join(bin, "campaign.json")
		out, err := exec.Command(filepath.Join(bin, "castanet"),
			"-campaign", "switch", "-runs", "8", "-shards", "2", "-seed", "1",
			"-trace", traceFile).CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{
			`campaign "switch": 8 runs on 2 shards`,
			"completed=8 failed=0 skipped=0",
			"stat cells",
		} {
			if !strings.Contains(string(out), want) {
				t.Errorf("summary report missing %q:\n%s", want, out)
			}
		}

		// The campaign trace must carry one well-formed track per worker.
		raw, err := os.ReadFile(traceFile)
		if err != nil {
			t.Fatal(err)
		}
		var tr struct {
			TraceEvents []struct {
				Name  string                 `json:"name"`
				Phase string                 `json:"ph"`
				Tid   int                    `json:"tid"`
				TS    float64                `json:"ts"`
				Args  map[string]interface{} `json:"args"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(raw, &tr); err != nil {
			t.Fatalf("campaign trace is not valid JSON: %v", err)
		}
		tracks := map[string]bool{}
		begins, ends := 0, 0
		lastTS := map[int]float64{}
		backwards := 0
		for _, e := range tr.TraceEvents {
			switch e.Phase {
			case "M":
				if e.Name == "thread_name" {
					tracks[e.Args["name"].(string)] = true
				}
				continue
			case "B":
				begins++
			case "E":
				ends++
			}
			if prev, ok := lastTS[e.Tid]; ok && e.TS < prev {
				backwards++
			}
			lastTS[e.Tid] = e.TS
		}
		for _, want := range []string{"worker0", "worker1"} {
			if !tracks[want] {
				t.Errorf("campaign trace missing track %q (have %v)", want, tracks)
			}
		}
		if begins == 0 || begins != ends {
			t.Errorf("campaign spans unbalanced: %d begins, %d ends", begins, ends)
		}
		if backwards > 0 {
			t.Errorf("%d campaign events run backwards within their track", backwards)
		}
	})

	t.Run("castanet-serve-telemetry", func(t *testing.T) {
		// Run a campaign with the live telemetry endpoint up and scrape it
		// mid-flight: /metrics must be valid Prometheus exposition carrying
		// per-shard progress, /healthz must report ok, /snapshot must
		// stream JSON progress lines.
		cmd := exec.Command(filepath.Join(bin, "castanet"),
			"-campaign", "switch", "-runs", "600", "-shards", "2", "-seed", "1",
			"-coverage", "-serve", "127.0.0.1:0")
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		defer func() {
			cmd.Process.Kill()
			cmd.Wait()
		}()

		// The bound address is announced on stderr before the campaign
		// starts.
		var base string
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if _, rest, ok := strings.Cut(sc.Text(), "telemetry at "); ok {
				base = strings.TrimSuffix(rest, "/")
				break
			}
		}
		if base == "" {
			t.Fatal("telemetry address never announced on stderr")
		}
		go io.Copy(io.Discard, stderr) // keep the pipe drained

		get := func(path string) (string, error) {
			resp, err := http.Get(base + path)
			if err != nil {
				return "", err
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			return string(b), err
		}

		// Poll /metrics until per-shard campaign progress appears (the
		// first runs must complete before the shard counters exist); the
		// campaign is large enough that this happens mid-run.
		deadline := time.Now().Add(30 * time.Second)
		var metrics string
		for {
			m, err := get("/metrics")
			if err == nil && strings.Contains(m, `campaign_runs_total{shard="`) {
				metrics = m
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("per-shard progress never appeared in /metrics; last scrape:\n%s", m)
			}
			time.Sleep(50 * time.Millisecond)
		}
		if !strings.Contains(metrics, "# TYPE campaign_runs_total counter") {
			t.Errorf("/metrics missing the campaign_runs_total TYPE line:\n%s", metrics)
		}
		// Structural exposition check: every line is a comment or a
		// "name{labels} value" / "name value" sample.
		sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE.+-]+(e[0-9+-]+)?$`)
		for _, line := range strings.Split(strings.TrimRight(metrics, "\n"), "\n") {
			if strings.HasPrefix(line, "#") {
				continue
			}
			if !sample.MatchString(line) {
				t.Errorf("exposition line does not parse: %q", line)
			}
		}

		healthz, err := get("/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal([]byte(healthz), &h); err != nil || h.Status != "ok" {
			t.Errorf("/healthz = %q (err %v), want status ok", healthz, err)
		}

		snap, err := get("/snapshot")
		if err != nil {
			t.Fatal(err)
		}
		var p struct {
			WallMS *int64 `json:"wall_ms"`
		}
		if err := json.Unmarshal([]byte(snap), &p); err != nil || p.WallMS == nil {
			t.Errorf("/snapshot = %q (err %v), want a JSON progress line", snap, err)
		}

		// The campaign runs with -coverage, so /coverage must fill with
		// the instrumented groups as runs commit, and the cover bins must
		// surface in the /metrics exposition too.
		var cov struct {
			Groups []struct {
				Group  string  `json:"group"`
				Hit    int     `json:"hit"`
				Total  int     `json:"total"`
				Ratio  float64 `json:"ratio"`
				Points []struct {
					Name string `json:"name"`
					Bins []struct {
						Label string `json:"bin"`
						Hits  uint64 `json:"hits"`
					} `json:"bins"`
				} `json:"points"`
			} `json:"groups"`
		}
		for {
			body, err := get("/coverage")
			if err == nil {
				if jerr := json.Unmarshal([]byte(body), &cov); jerr != nil {
					t.Fatalf("/coverage is not JSON: %v\n%s", jerr, body)
				}
				if len(cov.Groups) >= 5 {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("/coverage never filled; last: %d groups", len(cov.Groups))
			}
			time.Sleep(50 * time.Millisecond)
		}
		seen := map[string]bool{}
		for _, g := range cov.Groups {
			seen[g.Group] = true
			if g.Total == 0 || len(g.Points) == 0 {
				t.Errorf("/coverage group %q has no bins: %+v", g.Group, g)
			}
			if g.Ratio < 0 || g.Ratio > 1 {
				t.Errorf("/coverage group %q ratio out of range: %g", g.Group, g.Ratio)
			}
		}
		for _, want := range []string{
			"cosim.coupling", "cosim.sync", "coverify.cell_header", "coverify.cmp", "dut.queue",
		} {
			if !seen[want] {
				t.Errorf("/coverage missing group %q (have %v)", want, seen)
			}
		}
		m, err := get("/metrics")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(m, "castanet_cover_bin_total{group=") ||
			!strings.Contains(m, "castanet_cover_group_ratio{group=") {
			t.Errorf("/metrics missing cover bin families after coverage filled:\n%s", m)
		}

		cmd.Process.Kill()
	})

	t.Run("castanet-campaign-coverage", func(t *testing.T) {
		// -coverage appends the functional-coverage table to the operator
		// report and the full bin listing after it.
		out, err := exec.Command(filepath.Join(bin, "castanet"),
			"-campaign", "switch", "-runs", "16", "-shards", "2", "-seed", "1",
			"-coverage").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{
			"  cover cosim.coupling",
			"  cover cosim.sync",
			"  cover coverify.cell_header",
			"  cover coverify.cmp",
			"  cover dut.queue",
			"group dut.queue",
			"  drop ",
			"  out_depth_outcome ",
		} {
			if !strings.Contains(string(out), want) {
				t.Errorf("coverage output missing %q:\n%s", want, out)
			}
		}

		// Determinism at the CLI boundary: a second identical invocation
		// reproduces the coverage listing byte-for-byte.
		out2, err := exec.Command(filepath.Join(bin, "castanet"),
			"-campaign", "switch", "-runs", "16", "-shards", "2", "-seed", "1",
			"-coverage").CombinedOutput()
		if err != nil {
			t.Fatalf("second run: %v\n%s", err, out2)
		}
		cut := func(b []byte) string {
			s := string(b)
			if i := strings.Index(s, "group "); i >= 0 {
				return s[i:]
			}
			return ""
		}
		if c1, c2 := cut(out), cut(out2); c1 == "" || c1 != c2 {
			t.Errorf("coverage listing not deterministic:\n-- first --\n%s-- second --\n%s", c1, c2)
		}
	})

	t.Run("castanet-experiment-coverage", func(t *testing.T) {
		// -coverage on a single experiment prints the bins hit by that run.
		out, err := exec.Command(filepath.Join(bin, "castanet"),
			"-experiment", "e1", "-cells", "200", "-coverage").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"group coverify.cell_header", "group dut.queue", "group cosim.sync"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("experiment coverage missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("castanet-campaign-replay", func(t *testing.T) {
		out, err := exec.Command(filepath.Join(bin, "castanet"),
			"-campaign", "switch", "-runs", "8", "-seed", "1", "-replay", "3").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "replay run=000003") || !strings.Contains(string(out), "outcome: ok") {
			t.Errorf("replay output malformed:\n%s", out)
		}
	})

	t.Run("castanet-campaign-checkpoint-resume", func(t *testing.T) {
		// A checkpointed campaign that ran to completion resumes without
		// re-executing anything and reproduces a byte-identical digest file.
		ck := filepath.Join(bin, "campaign.ckpt")
		refDigest := filepath.Join(bin, "digest.ref")
		resDigest := filepath.Join(bin, "digest.res")
		args := []string{"-campaign", "switch", "-runs", "8", "-shards", "2", "-seed", "1",
			"-checkpoint", ck}
		out, err := exec.Command(filepath.Join(bin, "castanet"),
			append(args, "-digest", refDigest)...).CombinedOutput()
		if err != nil {
			t.Fatalf("checkpointed run: %v\n%s", err, out)
		}
		if _, err := os.Stat(ck); err != nil {
			t.Fatalf("checkpoint file missing: %v", err)
		}

		out, err = exec.Command(filepath.Join(bin, "castanet"),
			append(args, "-resume", "-digest", resDigest)...).CombinedOutput()
		if err != nil {
			t.Fatalf("resume: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "completed=8 failed=0 skipped=0") {
			t.Errorf("resumed summary wrong:\n%s", out)
		}
		ref, err := os.ReadFile(refDigest)
		if err != nil {
			t.Fatal(err)
		}
		res, err := os.ReadFile(resDigest)
		if err != nil {
			t.Fatal(err)
		}
		if string(ref) != string(res) {
			t.Errorf("resumed digest differs:\n-- reference --\n%s-- resumed --\n%s", ref, res)
		}

		// A checkpoint from a different campaign spec must be rejected.
		out, err = exec.Command(filepath.Join(bin, "castanet"),
			"-campaign", "switch", "-runs", "8", "-shards", "2", "-seed", "2",
			"-checkpoint", ck, "-resume").CombinedOutput()
		if err == nil {
			t.Fatalf("mismatched checkpoint accepted:\n%s", out)
		}
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
			t.Errorf("mismatched checkpoint: exit status = %v, want 2", err)
		}
		if !strings.Contains(string(out), "different campaign") {
			t.Errorf("mismatch diagnostic missing:\n%s", out)
		}
	})

	t.Run("castanet-campaign-bad-flags", func(t *testing.T) {
		for name, args := range map[string][]string{
			"unknown name":         {"-campaign", "nope"},
			"zero runs":            {"-campaign", "switch", "-runs", "0"},
			"negative shards":      {"-campaign", "switch", "-shards", "-1"},
			"replay range":         {"-campaign", "switch", "-runs", "4", "-replay", "4"},
			"resume no checkpoint": {"-campaign", "switch", "-resume"},
			"negative retries":     {"-campaign", "switch", "-retries", "-1"},
			"negative run timeout": {"-campaign", "switch", "-run-timeout", "-1s"},
			"floor no campaign":    {"-experiment", "e1", "-cover-floor", "COVER_FLOOR.json"},
		} {
			out, err := exec.Command(filepath.Join(bin, "castanet"), args...).CombinedOutput()
			if err == nil {
				t.Fatalf("%s: accepted:\n%s", name, out)
			}
			if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
				t.Errorf("%s: exit status = %v, want 2", name, err)
			}
			if !strings.Contains(string(out), "Usage") && !strings.Contains(string(out), "-campaign") {
				t.Errorf("%s: no usage text:\n%s", name, out)
			}
		}
	})

	t.Run("atmgen-roundtrip", func(t *testing.T) {
		trace := filepath.Join(bin, "t.trace")
		out, err := exec.Command(filepath.Join(bin, "atmgen"),
			"-model", "onoff", "-rate", "50000", "-burstiness", "4", "-n", "500", "-o", trace).CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		data, err := os.ReadFile(trace)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Count(string(data), "\n")
		if lines != 501 { // header + 500 intervals
			t.Errorf("trace has %d lines, want 501", lines)
		}
	})

	t.Run("atmgen-bad-model", func(t *testing.T) {
		if out, err := exec.Command(filepath.Join(bin, "atmgen"), "-model", "nope").CombinedOutput(); err == nil {
			t.Fatalf("unknown model accepted:\n%s", out)
		}
	})

	t.Run("boardctl", func(t *testing.T) {
		out, err := exec.Command(filepath.Join(bin, "boardctl"), "-device", "switch", "-demo").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"VALID", "byte lane", "demo test cycle", "hardware activity"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})
}
