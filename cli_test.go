package castanet_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandLineTools smoke-tests the three binaries end to end: build
// once, then exercise their primary flows.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	for _, tool := range []string{"castanet", "atmgen", "boardctl"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}

	t.Run("castanet-e3", func(t *testing.T) {
		out, err := exec.Command(filepath.Join(bin, "castanet"), "-experiment", "e3", "-cells", "200").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"E3:", "events ratio", "clock cycles / line cell"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("castanet-bad-experiment", func(t *testing.T) {
		out, err := exec.Command(filepath.Join(bin, "castanet"), "-experiment", "nope").CombinedOutput()
		if err == nil {
			t.Fatalf("unknown experiment accepted:\n%s", out)
		}
	})

	t.Run("atmgen-roundtrip", func(t *testing.T) {
		trace := filepath.Join(bin, "t.trace")
		out, err := exec.Command(filepath.Join(bin, "atmgen"),
			"-model", "onoff", "-rate", "50000", "-burstiness", "4", "-n", "500", "-o", trace).CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		data, err := os.ReadFile(trace)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Count(string(data), "\n")
		if lines != 501 { // header + 500 intervals
			t.Errorf("trace has %d lines, want 501", lines)
		}
	})

	t.Run("atmgen-bad-model", func(t *testing.T) {
		if out, err := exec.Command(filepath.Join(bin, "atmgen"), "-model", "nope").CombinedOutput(); err == nil {
			t.Fatalf("unknown model accepted:\n%s", out)
		}
	})

	t.Run("boardctl", func(t *testing.T) {
		out, err := exec.Command(filepath.Join(bin, "boardctl"), "-device", "switch", "-demo").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"VALID", "byte lane", "demo test cycle", "hardware activity"} {
			if !strings.Contains(string(out), want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})
}
