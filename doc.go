// Package castanet is a reproduction of "A System-Level Co-Verification
// Environment for ATM Hardware Design" (Post, Müller, Grötker; DATE 1998):
// a telecommunication network simulator coupled to an event-driven HDL
// simulator and a hardware test board, so that network-level test benches
// verify ATM hardware at every abstraction level.
//
// The implementation lives under internal/:
//
//	sim         discrete-event kernel shared by all engines
//	netsim      OPNET-like network simulator (network/node/process domains)
//	traffic     traffic model library (CBR, Poisson, ON/OFF, MMPP, MPEG)
//	hdl         VHDL-semantics event-driven simulator (std_logic, deltas)
//	cyclesim    cycle-based engine / stand-in silicon
//	atm         ATM cell substrate (HEC, GCRA, translation, accounting)
//	ipc, scsi   coupling transports
//	mapping     abstraction interfaces (cell <-> bit-level streams)
//	cosim       CASTANET core: conservative sync, interface process
//	board       hardware test board model (byte lanes, test cycles)
//	dut         RTL devices under test (4x4 switch, accounting unit)
//	refmodel    algorithmic reference models + comparison engine
//	conformance conformance test vectors
//	rtltb       traditional pure-RTL test bench (baseline)
//	coverify    assembled co-verification environments
//	experiments reproduction harnesses E1..E6
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record. The root test file bench_test.go exposes
// one benchmark per reproduced table/figure.
package castanet
