module castanet

go 1.22
