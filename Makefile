GO ?= go

.PHONY: verify build vet test race bench obs-bench

# Tier-1 verification: everything CI runs.
verify: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The coupling layer is the concurrency hot spot: reader goroutines,
# watchdog timers, and transport teardown all race by design.
race:
	$(GO) test -race ./internal/ipc/... ./internal/cosim/... ./internal/obs/...

bench:
	$(GO) test -bench=Transport -benchtime=100x -run=^$$ ./internal/ipc/

# Observability overhead: ns/op on the hdl and ipc hot paths with the
# metrics/trace layer disabled (nil registry) vs enabled, written to
# BENCH_obs.json.
obs-bench:
	OBS_BENCH_OUT=$(CURDIR)/BENCH_obs.json $(GO) test -run TestWriteObsBench -count=1 -v ./internal/obs/
