GO ?= go
# Per-target fuzzing budget for the fuzz target; the nightly workflow
# raises it to minutes (make fuzz FUZZTIME=5m).
FUZZTIME ?= 10s

.PHONY: verify build vet test race bench bench-all obs-bench campaign-smoke cover-smoke crash-resume-smoke explore-smoke profile-smoke rig-smoke kernel-diff-smoke fuzz

# Tier-1 verification: everything CI runs.
verify: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The coupling layer is the concurrency hot spot: reader goroutines,
# watchdog timers, and transport teardown all race by design. The
# campaign engine joins the list: per-run isolation is a -race claim.
race:
	$(GO) test -race ./internal/ipc/... ./internal/cosim/... ./internal/obs/... ./internal/campaign/...

# A short real campaign under the race detector: the engine's unit tests
# plus an actual multi-shard fault campaign through the CLI, proving
# per-run isolation on the full rig stack, not just on synthetic cells.
# The serve-telemetry step starts a campaign with -serve and scrapes
# /metrics and /healthz mid-run, asserting the Prometheus exposition
# parses and carries per-shard progress. The race-instrumented binary is
# built once and reused for both campaigns — `go run -race` twice would
# pay the full compile twice.
campaign-smoke:
	$(GO) test -race -count=1 ./internal/campaign/...
	tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
		$(GO) build -race -o "$$tmp/castanet" ./cmd/castanet && \
		"$$tmp/castanet" -campaign faults -runs 10 -shards 4 -seed 7 && \
		"$$tmp/castanet" -campaign switch -runs 8 -shards 2 -seed 1 -failfast
	$(GO) test -race -count=1 -run 'TestCommandLineTools/castanet-serve-telemetry' .

# Functional-coverage smoke: the reference campaigns must meet the
# per-group coverage floors committed in COVER_FLOOR.json — the CI
# contract that keeps the instrumented bins actually exercised. The
# parameters here are the ones the floors were measured at; runs are
# seed-deterministic, so a miss means the instrumentation or the
# stimulus changed, not noise.
cover-smoke:
	tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
		$(GO) build -o "$$tmp/castanet" ./cmd/castanet && \
		"$$tmp/castanet" -campaign switch -runs 16 -shards 2 -seed 1 -cover-floor COVER_FLOOR.json && \
		"$$tmp/castanet" -campaign policer -runs 8 -shards 2 -seed 2 -cover-floor COVER_FLOOR.json && \
		"$$tmp/castanet" -campaign acct -runs 6 -shards 2 -seed 3 -cover-floor COVER_FLOOR.json

# Durability smoke: run a reference campaign, SIGKILL a checkpointed run
# of the same spec mid-flight, resume it, and require the resumed digest
# file to be byte-identical to the uninterrupted reference.
crash-resume-smoke:
	sh scripts/crash_resume_smoke.sh

# Explorer smoke: a pinned-seed coverage-guided exploration must finish,
# survive a SIGKILL/resume with a byte-identical digest, and cover
# strictly more bins than the static faults matrix at the same run
# budget — the claim that mutation toward uncovered bins earns its keep.
explore-smoke:
	sh scripts/explore_smoke.sh

# Profiler smoke: the -profile hotspot table is a deterministic artifact.
# Two runs of the same experiment and seed must print byte-identical
# "profile " lines; the wall-clock "phase " lines after them legitimately
# differ and are excluded by the grep.
profile-smoke:
	tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
		$(GO) build -o "$$tmp/castanet" ./cmd/castanet && \
		"$$tmp/castanet" -experiment e1 -cells 300 -seed 7 -profile | grep '^profile ' > "$$tmp/p1" && \
		"$$tmp/castanet" -experiment e1 -cells 300 -seed 7 -profile | grep '^profile ' > "$$tmp/p2" && \
		test -s "$$tmp/p1" && cmp "$$tmp/p1" "$$tmp/p2" && \
		echo "profile-smoke: deterministic hotspot table ok"

# Kernel-equivalence smoke: the compiled bit-parallel fast path must be
# observably identical to the plain event kernel — same VCD bytes, same
# event/run/delta/time-point counters, same coverage and profile — on the
# pinned property-test seeds and on the full rig workloads, under the
# race detector. -short keeps the hdl property test at its three pinned
# seeds; the nightly fuzz run explores beyond them.
kernel-diff-smoke:
	$(GO) test -race -count=1 -short -run 'KernelEquivalence' -v ./internal/hdl/ ./internal/coverify/

# Rig smoke: the functional-coverage floors and the deterministic
# profiler artifact checked on one binary built once — the cover-smoke
# and profile-smoke sequences share the build instead of paying it twice
# in separate CI jobs.
rig-smoke:
	tmp=$$(mktemp -d) && trap 'rm -rf "$$tmp"' EXIT && \
		$(GO) build -o "$$tmp/castanet" ./cmd/castanet && \
		"$$tmp/castanet" -campaign switch -runs 16 -shards 2 -seed 1 -cover-floor COVER_FLOOR.json && \
		"$$tmp/castanet" -campaign policer -runs 8 -shards 2 -seed 2 -cover-floor COVER_FLOOR.json && \
		"$$tmp/castanet" -campaign acct -runs 6 -shards 2 -seed 3 -cover-floor COVER_FLOOR.json && \
		"$$tmp/castanet" -experiment e1 -cells 300 -seed 7 -profile | grep '^profile ' > "$$tmp/p1" && \
		"$$tmp/castanet" -experiment e1 -cells 300 -seed 7 -profile | grep '^profile ' > "$$tmp/p2" && \
		test -s "$$tmp/p1" && cmp "$$tmp/p1" "$$tmp/p2" && \
		echo "rig-smoke: coverage floors met, deterministic hotspot table ok"

# Coverage-guided fuzzing of the ipc frame, batch-frame, and envelope
# decoders, plus the differential kernel-equivalence fuzzer (random
# netlist programs through both HDL kernels, any observable divergence is
# a crash); seed corpora live in internal/ipc/testdata/fuzz/ and
# internal/hdl/testdata/fuzz/.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime=$(FUZZTIME) ./internal/ipc/
	$(GO) test -run '^$$' -fuzz '^FuzzBatch$$' -fuzztime=$(FUZZTIME) ./internal/ipc/
	$(GO) test -run '^$$' -fuzz '^FuzzOpenEnvelope$$' -fuzztime=$(FUZZTIME) ./internal/ipc/
	$(GO) test -run '^$$' -fuzz '^FuzzKernelEquivalence$$' -fuzztime=$(FUZZTIME) ./internal/hdl/

bench:
	$(GO) test -bench=Transport -benchtime=100x -run=^$$ ./internal/ipc/

# Observability overhead: ns/op on the hdl and ipc hot paths with the
# metrics/trace layer disabled (nil registry) vs enabled, written to
# BENCH_obs.json.
obs-bench:
	OBS_BENCH_OUT=$(CURDIR)/BENCH_obs.json $(GO) test -run TestWriteObsBench -count=1 -v ./internal/obs/

# Coupling throughput: batched vs unbatched δ-window round trips, the
# steady-state batch-encoder allocation count, and the headline sim-rate
# (clk_cycles_per_sec through the full coupled rig), written to
# BENCH_coupling.json. CI's bench-gate job regenerates this file and
# compares it against the committed baseline with cmd/benchgate.
bench-all: obs-bench
	COUPLING_BENCH_OUT=$(CURDIR)/BENCH_coupling.json $(GO) test -run 'TestWriteCouplingBench|TestWriteClockRateBench|TestWriteCompiledBench' -count=1 -v ./internal/ipc/
