GO ?= go

.PHONY: verify build vet test race bench

# Tier-1 verification: everything CI runs.
verify: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The coupling layer is the concurrency hot spot: reader goroutines,
# watchdog timers, and transport teardown all race by design.
race:
	$(GO) test -race ./internal/ipc/... ./internal/cosim/...

bench:
	$(GO) test -bench=Transport -benchtime=100x -run=^$$ ./internal/ipc/
