// Usage-parameter-control co-verification — the ATM traffic-management
// application domain the paper names for CASTANET.
//
// An RTL policing unit (per-connection GCRA in hardware, measuring cell
// arrivals with its own cycle counter) is verified against the I.371
// reference algorithm: both observe the identical slot-aligned cell
// stream, and the comparison engine checks that exactly the same cells
// survive, with identical CLP tagging, at every offered load. The sweep
// prints the classic conformance curve.
//
// Run: go run ./examples/upc_policer
package main

import (
	"fmt"
	"log"

	"castanet/internal/atm"
	"castanet/internal/coverify"
	"castanet/internal/sim"
	"castanet/internal/traffic"
)

func main() {
	vc := atm.VC{VPI: 1, VCI: 10}
	const contractRate = 50e3 // contracted peak cell rate

	fmt.Println("UPC policing unit vs GCRA reference (tagging mode)")
	fmt.Printf("  %10s %8s %10s %10s %8s %8s\n",
		"load/PCR", "cells", "tagged", "viol-frac", "agree", "verdict")
	for i, ratio := range []float64{0.6, 1.0, 1.5, 2.0} {
		rig := coverify.NewPolicerRig(coverify.PolicerRigConfig{
			Seed: uint64(100 + i),
			Tag:  true,
			Contracts: []coverify.PolicerContract{
				{VC: vc, PeakInterval: sim.FromSeconds(1 / contractRate), Tau: 2 * sim.Microsecond},
			},
			Sources: []coverify.PolicerSource{
				{Model: traffic.NewPoisson(contractRate * ratio), VC: vc, Cells: 300},
			},
		})
		horizon := sim.FromSeconds(300/(contractRate*ratio)) + sim.Millisecond
		if err := rig.Run(horizon); err != nil {
			log.Fatal(err)
		}
		total := float64(rig.DUT.Conforming + rig.DUT.NonConforming)
		violFrac := 0.0
		if total > 0 {
			violFrac = float64(rig.DUT.NonConforming) / total
		}
		verdict := "PASS"
		if !rig.Cmp.Clean() {
			verdict = "FAIL"
		}
		agree := rig.DUT.NonConforming == rig.Ref.NonConforming
		fmt.Printf("  %10.1f %8d %10d %9.1f%% %8v %8s\n",
			ratio, rig.Offered, rig.DUT.Tagged, 100*violFrac, agree, verdict)
		if verdict == "FAIL" {
			for _, b := range rig.Cmp.Bad {
				fmt.Println("   ", b)
			}
		}
	}
	fmt.Println("\nevery tagged/dropped decision of the silicon-bound RTL matches the")
	fmt.Println("network-level reference algorithm, per cell, across the whole sweep")
}
