// Hardware/software co-verification across layers: signaling EFSMs and a
// call admission control agent (the modeled embedded control software of
// the paper's introduction) set up and tear down connections in the very
// RTL switch being verified, while user cells flow through it.
//
// Three callers compete for CAC bandwidth; admitted connections are
// installed into the switch's translation table at run time, their cells
// cross the hardware and are checked against the reference model, and
// cells sent before admission or after release are discarded identically
// by hardware and reference (unknown connection).
//
// Run: go run ./examples/cac_signaling
package main

import (
	"fmt"
	"log"

	"castanet/internal/atm"
	"castanet/internal/coverify"
	"castanet/internal/netsim"
	"castanet/internal/signaling"
	"castanet/internal/sim"
)

func main() {
	table := atm.NewTranslator() // empty: nothing routable until admitted
	rig := coverify.NewSwitchRig(coverify.SwitchRigConfig{Seed: 31, Table: table})

	cac := &signaling.CAC{CapacityBps: 4e6}
	var admissions, releases []string
	cac.OnAdmit = func(vc atm.VC, rate float64) {
		table.Add(vc, atm.Route{Port: int(vc.VCI) % 4, Out: atm.VC{VPI: 0x30, VCI: vc.VCI + 0x200}})
		admissions = append(admissions, fmt.Sprintf("%v @ %.0f kb/s", vc, rate/1e3))
	}
	cac.OnRelease = func(vc atm.VC) {
		table.Remove(vc)
		releases = append(releases, vc.String())
	}
	cacNode := rig.Net.Node("cac", signaling.NewCACMachine(cac))

	callers := []*signaling.Caller{
		{VC: atm.VC{VPI: 1, VCI: 100}, RateBps: 2e6, StartDelay: 1 * sim.Millisecond, HoldTime: 8 * sim.Millisecond},
		{VC: atm.VC{VPI: 1, VCI: 101}, RateBps: 2e6, StartDelay: 2 * sim.Millisecond, HoldTime: 8 * sim.Millisecond},
		{VC: atm.VC{VPI: 1, VCI: 102}, RateBps: 2e6, StartDelay: 3 * sim.Millisecond, HoldTime: 8 * sim.Millisecond},
	}
	for i, cl := range callers {
		node := rig.Net.Node(fmt.Sprintf("caller%d", i), cl.Machine())
		rig.Net.Connect(node, 0, cacNode, i, netsim.LinkParams{Delay: 50 * sim.Microsecond})
		rig.Net.Connect(cacNode, i, node, 0, netsim.LinkParams{Delay: 50 * sim.Microsecond})
	}

	// Each caller streams cells while active (with 1 ms margins from the
	// table edits).
	iface, _ := rig.Net.Lookup("castanet")
	refNode, _ := rig.Net.Lookup("refswitch")
	seq := uint32(0)
	for i, cl := range callers {
		vc := cl.VC
		start := cl.StartDelay + 2*sim.Millisecond
		for k := 0; k < 8; k++ {
			at := start + sim.Duration(k)*500*sim.Microsecond
			s := seq
			seq++
			rig.Net.Sched.At(at, func() {
				c := &atm.Cell{Header: atm.Header{VPI: vc.VPI, VCI: vc.VCI}, Seq: s}
				c.StampSeq()
				refNode.Inject(rig.Net.NewPacket("cell", c.Clone(), atm.CellBytes*8), i%4)
				iface.Inject(rig.Net.NewPacket("cell", c.Clone(), atm.CellBytes*8), i%4)
			})
		}
	}

	if err := rig.Run(25 * sim.Millisecond); err != nil {
		log.Fatal(err)
	}

	fmt.Println("control plane:")
	for _, a := range admissions {
		fmt.Println("  admitted", a)
	}
	for _, r := range releases {
		fmt.Println("  released", r)
	}
	fmt.Printf("  rejected: %d (capacity %0.f kb/s)\n\n", cac.Rejected, cac.CapacityBps/1e3)
	for i, cl := range callers {
		fmt.Printf("caller %d (%v): final state %q\n", i, cl.VC, cl.State())
	}
	fmt.Println("\nuser plane through the co-verified switch:")
	fmt.Printf("  cells offered   : %d\n", seq)
	fmt.Printf("  matched vs ref  : %d\n", rig.Cmp.Matched)
	fmt.Printf("  unknown-VC drops: hw=%d ref=%d (un-admitted connection)\n",
		rig.DUT.UnknownVC, rig.Ref.UnknownVC)
	fmt.Printf("  mismatches      : %d\n", len(rig.Cmp.Mismatches()))
	if len(rig.Cmp.Mismatches()) == 0 && len(rig.Cmp.Outstanding()) == 0 {
		fmt.Println("\nRESULT: hardware agrees with the reference under a live control plane")
	} else {
		fmt.Println("\nRESULT: FAILED")
	}
}
