// Architecture exploration at the system level — the other half of the
// paper's §2 workflow: "algorithms and architecture have to be optimized
// for cost, size, complexity and reliability within an interactive and
// iterative design process", at network-simulation speed, before any RTL
// exists. And its premise: "effective traffic modeling for system
// analysis has become crucial for the design process of networking
// hardware".
//
// This study dimensions the switch's output buffer under two traffic
// models with the SAME mean load (50% of line rate): classical
// exponential ON/OFF bursts and heavy-tailed Pareto ON/OFF bursts
// (self-similar traffic). The exponential model says a modest buffer
// nearly eliminates loss; the self-similar model shows the slow decay
// that made long-range-dependent traffic famous — a design sized on the
// wrong traffic model ships with the wrong buffers.
//
// Run: go run ./examples/dimensioning
package main

import (
	"fmt"

	"castanet/internal/atm"
	"castanet/internal/netsim"
	"castanet/internal/refmodel"
	"castanet/internal/sim"
	"castanet/internal/traffic"
)

func main() {
	depths := []int{2, 4, 8, 16, 32, 64, 128}
	fmt.Println("output buffer dimensioning, 4 bursty sources -> 1 output, 50% mean load")
	fmt.Printf("  %8s %16s %16s\n", "", "exponential", "self-similar")
	fmt.Printf("  %8s %9s %6s %9s %6s\n", "buffer", "loss", "delay", "loss", "delay")
	for _, depth := range depths {
		eo, el, ed := run(depth, false)
		po, pl, pd := run(depth, true)
		fmt.Printf("  %8d %8.2f%% %6s %8.2f%% %6s\n",
			depth,
			100*float64(el)/float64(eo), fmtUs(ed),
			100*float64(pl)/float64(po), fmtUs(pd))
	}
	fmt.Println("\nexponential bursts: loss collapses with modest buffers;")
	fmt.Println("heavy-tailed bursts: loss decays slowly — buffers bought for the")
	fmt.Println("Markovian model are wrong for self-similar load (§2: traffic")
	fmt.Println("modeling is crucial before committing the architecture)")
}

func fmtUs(seconds float64) string {
	return fmt.Sprintf("%.0fus", seconds*1e6)
}

// run executes one sweep point and returns offered cells, lost cells and
// the mean queueing delay in seconds.
func run(depth int, heavyTailed bool) (offered, lost uint64, meanDelay float64) {
	n := netsim.New(77)
	probes := netsim.NewProbeSet()

	// All connections converge on output 0.
	table := atm.NewTranslator()
	for p := 0; p < 4; p++ {
		table.Add(atm.VC{VPI: byte(p + 1), VCI: 7},
			atm.Route{Port: 0, Out: atm.VC{VPI: 0x40 + byte(p), VCI: 0x700}})
	}
	sw := &refmodel.SwitchRef{Table: table}
	swNode := n.Node("switch", sw)

	// The output port: a finite queue serving at line rate, then a sink
	// with delay probes.
	line := &netsim.Queue{Capacity: depth, ServiceTime: atm.CellTime(atm.LinkRateSTM1)}
	lineNode := n.Node("outq", line)
	sink := &netsim.Sink{}
	netsim.InstrumentSink(sink, probes, "out")
	sinkNode := n.Node("sink", sink)
	n.Connect(swNode, 0, lineNode, 0, netsim.LinkParams{})
	n.Connect(lineNode, 0, sinkNode, 0, netsim.LinkParams{})

	var count uint64
	for p := 0; p < 4; p++ {
		p := p
		// Each source peaks at half line rate in short bursts (mean ~18
		// cells) with a 25% duty cycle:
		// aggregate mean load 50% of the line. Same first-order
		// statistics for both models; only the burst-length distribution
		// differs.
		var gen traffic.Model
		if heavyTailed {
			gen = &traffic.ParetoOnOff{
				PeakInterval: 2 * atm.CellTime(atm.LinkRateSTM1),
				MeanOn:       100 * sim.Microsecond,
				MeanOff:      300 * sim.Microsecond,
				Alpha:        1.5,
			}
		} else {
			gen = &traffic.OnOff{
				PeakInterval: 2 * atm.CellTime(atm.LinkRateSTM1),
				MeanOn:       100 * sim.Microsecond,
				MeanOff:      300 * sim.Microsecond,
			}
		}
		src := &netsim.Source{
			Gen:   gen,
			Limit: 40000,
			Make: func(ctx *netsim.Ctx, i uint64) *netsim.Packet {
				count++
				c := &atm.Cell{Header: atm.Header{VPI: byte(p + 1), VCI: 7}, Seq: uint32(count)}
				return ctx.Net().NewPacket("cell", c, atm.CellBytes*8)
			},
		}
		srcNode := n.Node(fmt.Sprintf("src%d", p), src)
		n.Connect(srcNode, 0, swNode, p, netsim.LinkParams{})
	}

	n.Run(20 * sim.Second)
	return count, line.Dropped, probes.Get("out.delay").Stats().Mean()
}
