// Quickstart: the smallest complete co-verification loop.
//
// A network-level traffic source drives cells simultaneously into an
// algorithmic reference model and — through the CASTANET coupling with its
// conservative synchronization protocol — into a register-transfer-level
// ATM switch simulated with VHDL semantics. The comparison engine checks
// every hardware response against the reference.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"castanet/internal/coverify"
	"castanet/internal/dut"
	"castanet/internal/sim"
	"castanet/internal/traffic"
)

func main() {
	// Offer 100 cells of Poisson traffic on each of the four switch
	// ports, using the default full-mesh connection table.
	var workload [dut.SwitchPorts]coverify.PortTraffic
	for p := 0; p < dut.SwitchPorts; p++ {
		workload[p] = coverify.PortTraffic{
			Model: traffic.NewPoisson(50e3), // 50k cells/s
			VCs:   coverify.PortVCs(p),
			Cells: 100,
		}
	}

	rig := coverify.NewSwitchRig(coverify.SwitchRigConfig{
		Seed:    42,
		Traffic: workload,
	})

	// 100 cells at 50 kcell/s is 2 ms of network time; the rig drains the
	// hardware pipeline afterwards.
	if err := rig.Run(3 * sim.Millisecond); err != nil {
		log.Fatal(err)
	}

	fmt.Println("co-verification finished")
	fmt.Println("  offered cells     :", rig.Offered)
	fmt.Println("  matched vs ref    :", rig.Cmp.Matched)
	fmt.Println("  mismatches        :", len(rig.Cmp.Mismatches()))
	fmt.Println("  lost cells        :", len(rig.Cmp.Outstanding()))
	fmt.Println("  causality errors  :", rig.Entity.CausalityErrors)
	fmt.Println("  HDL clock cycles  :", rig.ClockCycles())
	fmt.Println("  max hardware lag  :", rig.Entity.MaxLag)
	if rig.Cmp.Clean() {
		fmt.Println("RESULT: device under test matches the reference model")
	} else {
		fmt.Println("RESULT: FAILED —", rig.Cmp.Summary())
		for _, m := range rig.Cmp.Mismatches() {
			fmt.Println("  ", m)
		}
	}
}
