// Hardware in the simulation loop (the right-hand path of Fig. 1).
//
// The identical network-level test bench used against the RTL model now
// drives the "fabricated" switch — a cycle-based device mounted on the
// configurable hardware test board, clocked at 20 MHz in repeated test
// cycles with SCSI transfers between the software and hardware activity
// phases. The run reports both the functional verdict and the board's
// activity breakdown (how much wall time is real hardware speed versus
// software overhead), then repeats the run across test-cycle durations to
// show the memory-depth trade-off.
//
// Run: go run ./examples/hwboard_loop
package main

import (
	"fmt"
	"log"

	"castanet/internal/coverify"
	"castanet/internal/dut"
	"castanet/internal/sim"
	"castanet/internal/traffic"
)

func main() {
	var workload [dut.SwitchPorts]coverify.PortTraffic
	for p := 0; p < dut.SwitchPorts; p++ {
		workload[p] = coverify.PortTraffic{
			Model: traffic.NewPoisson(120e3),
			VCs:   coverify.PortVCs(p),
			Cells: 150,
		}
	}

	fmt.Println("functional chip verification: switch silicon on the test board")
	fmt.Printf("  %9s %12s %12s %12s %9s %8s\n",
		"mem-depth", "test-cycles", "hw-time", "sw-time", "rt-frac", "verdict")
	for _, depth := range []int{256, 2048, 16384} {
		rig, err := coverify.NewBoardRig(coverify.SwitchRigConfig{
			Seed:    9,
			Traffic: workload,
		}, depth)
		if err != nil {
			log.Fatal(err)
		}
		if err := rig.Run(3 * sim.Millisecond); err != nil {
			log.Fatal(err)
		}
		verdict := "PASS"
		if !rig.Cmp.Clean() {
			verdict = "FAIL"
		}
		fmt.Printf("  %9d %12d %12v %12v %8.1f%% %8s\n",
			depth, rig.Board.TestCycles, rig.Board.HWTime, rig.Board.SWTime,
			100*rig.Board.RealTimeFraction(), verdict)
	}
	fmt.Println("\ndeeper stimulus memory -> longer hardware activity cycles ->")
	fmt.Println("fewer SCSI round trips -> higher real-time fraction (§3.3)")
}
