// Switch co-verification under realistic mixed traffic, with a deliberate
// bug injection pass.
//
// Phase 1 verifies the RTL switch against its reference under a mix of
// CBR, Poisson, bursty ON/OFF and MPEG video traffic with CLP marking —
// the workloads an ATM line card actually carries.
//
// Phase 2 re-runs the same test bench against a sabotaged device (one
// connection mis-routed in the chip's table, as a real netlist bug would)
// and shows the comparison engine catching it — the point of the whole
// environment.
//
// Run: go run ./examples/switch_coverify
package main

import (
	"fmt"
	"log"

	"castanet/internal/coverify"
	"castanet/internal/dut"
	"castanet/internal/sim"
	"castanet/internal/traffic"
)

func workload() [dut.SwitchPorts]coverify.PortTraffic {
	return [dut.SwitchPorts]coverify.PortTraffic{
		{ // steady voice trunking
			Model: traffic.NewCBR(80e3),
			VCs:   coverify.PortVCs(0),
			Cells: 200,
		},
		{ // aggregated data, Poisson with low-priority marking
			Model: traffic.NewPoisson(60e3),
			VCs:   coverify.PortVCs(1),
			CLP1:  0.4,
			Cells: 150,
		},
		{ // bursty interactive source
			Model: &traffic.OnOff{
				PeakInterval: 10 * sim.Microsecond,
				MeanOn:       400 * sim.Microsecond,
				MeanOff:      600 * sim.Microsecond,
			},
			VCs:   coverify.PortVCs(2),
			Cells: 150,
		},
		{ // compressed video
			Model: traffic.DefaultMPEG(3 * sim.Microsecond),
			VCs:   coverify.PortVCs(3),
			Cells: 200,
		},
	}
}

func run(name string, sabotage bool) {
	rig := coverify.NewSwitchRig(coverify.SwitchRigConfig{
		Seed:    7,
		Traffic: workload(),
	})
	if sabotage {
		// The chip's connection table differs from the reference's in one
		// entry: VCs from port 0 to output 0 end up on output 1.
		poisoned := coverify.DefaultTable()
		in := coverify.PortVCs(0)[0]
		route, _ := poisoned.Lookup(in)
		route.Port = (route.Port + 1) % dut.SwitchPorts
		poisoned.Remove(in)
		poisoned.Add(in, route)
		rig.DUT.Table = poisoned
	}
	if err := rig.Run(20 * sim.Millisecond); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- %s ---\n", name)
	fmt.Println("  ", rig.Report())
	if rig.Cmp.Clean() {
		fmt.Println("   verdict: PASS")
	} else {
		fmt.Println("   verdict: FAIL")
		for i, m := range rig.Cmp.Mismatches() {
			if i == 5 {
				fmt.Printf("   ... and %d more\n", len(rig.Cmp.Mismatches())-5)
				break
			}
			fmt.Println("   ", m)
		}
	}
	fmt.Println()
}

func main() {
	run("golden device, mixed traffic", false)
	run("sabotaged device, same test bench", true)
}
