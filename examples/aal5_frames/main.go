// Frame-level verification over the cell-level hardware: AAL5 above the
// co-verified switch.
//
// Higher-layer software exchanges variable-length frames; the hardware
// only ever sees 53-octet cells. This example segments application frames
// into AAL5 cell trains, pushes them through the full co-verification
// loop (network simulator -> CASTANET coupling -> RTL switch), and
// reassembles frames from the hardware's output cells — verifying frame
// payload integrity end to end across all abstraction layers, with the
// AAL5 CRC-32 checked over every byte the hardware handled.
//
// Run: go run ./examples/aal5_frames
package main

import (
	"bytes"
	"fmt"
	"log"

	"castanet/internal/atm"
	"castanet/internal/cosim"
	"castanet/internal/coverify"
	"castanet/internal/dut"
	"castanet/internal/ipc"
	"castanet/internal/mapping"
	"castanet/internal/netsim"
	"castanet/internal/sim"
)

func main() {
	rig := coverify.NewSwitchRig(coverify.SwitchRigConfig{Seed: 11})

	// Frame reassembly per output port, fed from the hardware responses
	// instead of the cell comparator.
	type gotFrame struct {
		port    int
		vc      atm.VC
		payload []byte
	}
	var delivered []gotFrame
	reassemblers := make([]*atm.Reassembler, dut.SwitchPorts)
	for p := 0; p < dut.SwitchPorts; p++ {
		p := p
		reassemblers[p] = atm.NewReassembler()
		reassemblers[p].OnFrame = func(vc atm.VC, payload []byte) {
			delivered = append(delivered, gotFrame{port: p, vc: vc, payload: payload})
		}
		reassemblers[p].OnError = func(vc atm.VC, err error) {
			log.Fatalf("AAL5 reassembly error on port %d, %v: %v", p, vc, err)
		}
	}
	push := func(kind ipc.Kind, c *atm.Cell) {
		port := int(kind - coverify.KindCellOut(0))
		reassemblers[port].Push(c)
	}
	rig.Iface.OnResponse = func(ctx *netsim.Ctx, resp cosim.Response) {
		push(resp.Kind, resp.Value.(*atm.Cell))
	}

	// The application traffic: one frame per input port, routed by the
	// default full-mesh table (input p, VCI 100+q -> output q).
	frames := []struct {
		inPort  int
		vc      atm.VC
		payload []byte
	}{
		{0, coverify.PortVCs(0)[2], bytes.Repeat([]byte("signalling "), 20)},
		{1, coverify.PortVCs(1)[0], bytes.Repeat([]byte{0xCA, 0xFE}, 300)},
		{2, coverify.PortVCs(2)[3], []byte("short frame")},
		{3, coverify.PortVCs(3)[1], bytes.Repeat([]byte{7}, 1024)},
	}

	iface, _ := rig.Net.Lookup("castanet")
	cellSlot := 3 * sim.Microsecond
	var t sim.Time = sim.Microsecond
	totalCells := 0
	for _, f := range frames {
		cells, err := atm.SegmentAAL5(f.vc, f.payload)
		if err != nil {
			log.Fatal(err)
		}
		totalCells += len(cells)
		for i, c := range cells {
			c := c
			at := t + sim.Time(i)*cellSlot
			port := f.inPort
			rig.Net.Sched.At(at, func() {
				iface.Inject(rig.Net.NewPacket("cell", c, atm.CellBytes*8), port)
			})
		}
	}

	horizon := t + sim.Time(30*cellSlot) + 2*sim.Millisecond
	rig.Net.Run(horizon)
	// Drain the hardware pipeline and feed the tail responses.
	if err := rig.Entity.Deliver(ipc.Message{Kind: ipc.KindSync, Time: horizon + sim.Millisecond}); err != nil {
		log.Fatal(err)
	}
	for _, m := range rig.Entity.TakeOutbox() {
		v, err := (mapping.CellCodec{}).Decode(m.Data)
		if err != nil {
			log.Fatal(err)
		}
		push(m.Kind, v.(*atm.Cell))
	}

	fmt.Printf("AAL5 over the co-verified switch: %d frames as %d cells\n\n", len(frames), totalCells)
	fmt.Printf("  %8s %8s %10s %8s %8s\n", "in-port", "out-port", "out-vc", "bytes", "verdict")
	ok := 0
	for _, f := range frames {
		route, _ := rig.DUT.Table.Lookup(f.vc)
		found := false
		for _, g := range delivered {
			if g.port == route.Port && g.vc == route.Out {
				found = true
				verdict := "PASS"
				if !bytes.Equal(g.payload, f.payload) {
					verdict = "FAIL (payload differs)"
				} else {
					ok++
				}
				fmt.Printf("  %8d %8d %10s %8d %8s\n", f.inPort, g.port, g.vc, len(g.payload), verdict)
			}
		}
		if !found {
			fmt.Printf("  %8d %8s %10s %8d %8s\n", f.inPort, "-", "-", len(f.payload), "LOST")
		}
	}
	if ok == len(frames) {
		fmt.Println("\nRESULT: every frame crossed the hardware intact (CRC-32 verified)")
	} else {
		fmt.Println("\nRESULT: FAILED")
	}
}
