// The paper's case study: functional verification of an ATM accounting
// unit.
//
// The same charging algorithm exists twice — as the algorithmic reference
// (the model used to evaluate the charging scheme at the network level)
// and as register-transfer-level hardware. Network-level test benches
// drive both: multi-class stochastic traffic, an MPEG video trace, and
// the standardized conformance vector suite (HEC corruption, idle cells,
// boundary header values). At the end, per-connection counters and
// charging units are compared, and the exception behaviour for
// unregistered connections is checked.
//
// Run: go run ./examples/accounting_unit
package main

import (
	"fmt"
	"log"

	"castanet/internal/atm"
	"castanet/internal/conformance"
	"castanet/internal/coverify"
	"castanet/internal/sim"
	"castanet/internal/traffic"
)

func main() {
	vcs := []atm.VC{
		{VPI: 1, VCI: 32}, // voice trunk
		{VPI: 1, VCI: 33}, // data, low priority
		{VPI: 2, VCI: 40}, // video
	}
	cfg := coverify.AcctRigConfig{
		Seed:   2026,
		VCs:    vcs,
		Tariff: atm.Tariff{CellsPerUnit: 50},
		Sources: []coverify.AcctSource{
			{Model: traffic.NewCBR(100e3), VC: 0, Cells: 500},
			{Model: traffic.NewPoisson(60e3), VC: 1, Cells: 300, CLP1: 0.6},
			{Model: traffic.DefaultMPEG(3 * sim.Microsecond), VC: 2, Cells: 600},
			{Model: traffic.NewPoisson(5e3), VC: -1, Cells: 20}, // rogue traffic
		},
	}
	rig := coverify.NewAcctRig(cfg)

	// Conformance phase: replay the standardized vector suite before the
	// stochastic phase.
	suite := conformance.StandardSuite(vcs[0])
	at := sim.Microsecond
	for i := range suite.Vectors {
		rig.InjectVector(at, suite.Vectors[i].Image)
		at += 150 * sim.Microsecond
	}

	if err := rig.Run(60 * sim.Millisecond); err != nil {
		log.Fatal(err)
	}

	fmt.Println("accounting unit case study")
	fmt.Printf("  offered cells (stochastic) : %d\n", rig.Offered)
	fmt.Printf("  conformance vectors        : %d\n", len(suite.Vectors))
	fmt.Printf("  hardware exceptions        : %d\n", rig.Exceptions)
	fmt.Println()
	fmt.Printf("  %-8s %10s %10s %10s %10s %8s\n", "vc", "cells", "clp1", "ref-units", "dut-units", "verdict")
	for _, vc := range vcs {
		rec, _ := rig.Ref.Record(vc)
		refU, dutU := rig.Units(vc)
		verdict := "PASS"
		if refU != dutU {
			verdict = "FAIL"
		}
		fmt.Printf("  %-8s %10d %10d %10d %10d %8s\n", vc, rec.Cells, rec.CLP1Cells, refU, dutU, verdict)
	}
	fmt.Println()
	if ms := rig.Compare(); len(ms) == 0 {
		fmt.Println("RESULT: hardware counters match the charging algorithm exactly")
	} else {
		fmt.Println("RESULT: FAILED")
		for _, m := range ms {
			fmt.Printf("  %+v\n", m)
		}
	}
}
