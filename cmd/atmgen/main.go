// Command atmgen generates cell-level traffic traces from the model
// library — the "simulated real-world traces" of Fig. 1 — in the plain
// text format replayed by traffic.Trace and the hardware test board
// harness.
//
// Usage:
//
//	atmgen -model mpeg -n 10000 -o starwars.trace
//	atmgen -model onoff -rate 50000 -burstiness 4 -n 5000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"castanet/internal/sim"
	"castanet/internal/traffic"
)

func main() {
	var (
		model      = flag.String("model", "poisson", "traffic model: cbr, poisson, onoff, pareto, mmpp, mpeg")
		rate       = flag.Float64("rate", 100e3, "mean cell rate in cells/s (cbr, poisson, onoff, mmpp)")
		burstiness = flag.Float64("burstiness", 4, "peak/mean ratio (onoff), rate2/rate1 ratio (mmpp)")
		n          = flag.Int("n", 1000, "number of inter-arrival intervals")
		seed       = flag.Uint64("seed", 1, "random seed")
		out        = flag.String("o", "-", "output file (- for stdout)")
	)
	flag.Parse()

	m, err := buildModel(*model, *rate, *burstiness)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atmgen:", err)
		os.Exit(2)
	}
	if err := traffic.Validate(m); err != nil {
		fmt.Fprintln(os.Stderr, "atmgen:", err)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atmgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := traffic.WriteTrace(w, m, sim.NewRNG(*seed), *n); err != nil {
		fmt.Fprintln(os.Stderr, "atmgen:", err)
		os.Exit(1)
	}
}

func buildModel(name string, rate, burstiness float64) (traffic.Model, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("rate must be positive")
	}
	switch name {
	case "cbr":
		return traffic.NewCBR(rate), nil
	case "poisson":
		return traffic.NewPoisson(rate), nil
	case "onoff":
		if burstiness <= 1 {
			return nil, fmt.Errorf("onoff burstiness must exceed 1")
		}
		peak := rate * burstiness
		// Equal mean ON time of 1 ms; OFF sized for the requested mean.
		on := sim.Millisecond
		off := sim.Duration(float64(on) * (burstiness - 1))
		return &traffic.OnOff{
			PeakInterval: sim.FromSeconds(1 / peak),
			MeanOn:       on,
			MeanOff:      off,
		}, nil
	case "mmpp":
		if burstiness <= 1 {
			return nil, fmt.Errorf("mmpp burstiness must exceed 1")
		}
		// Two states around the requested mean: r1 and r1*burstiness.
		r1 := 2 * rate / (1 + burstiness)
		return &traffic.MMPP2{
			Rate1:    r1,
			Rate2:    r1 * burstiness,
			Sojourn1: sim.Millisecond,
			Sojourn2: sim.Millisecond,
		}, nil
	case "pareto":
		if burstiness <= 1 {
			return nil, fmt.Errorf("pareto burstiness must exceed 1")
		}
		peak := rate * burstiness
		on := sim.Millisecond
		off := sim.Duration(float64(on) * (burstiness - 1))
		return &traffic.ParetoOnOff{
			PeakInterval: sim.FromSeconds(1 / peak),
			MeanOn:       on,
			MeanOff:      off,
			Alpha:        1.5,
		}, nil
	case "mpeg":
		return traffic.DefaultMPEG(3 * sim.Microsecond), nil
	default:
		return nil, fmt.Errorf("unknown model %q", name)
	}
}
