package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"castanet/internal/obs"
)

// coverFloorFile maps campaign name -> cover group -> minimum hit-bin
// ratio (0..1). The committed COVER_FLOOR.json at the repo root is the
// CI contract: make cover-smoke runs the campaigns against it.
type coverFloorFile map[string]map[string]float64

// checkCoverFloor verifies a campaign's merged coverage against the
// floors committed for it. Every group listed in the campaign's section
// must exist in the snapshot and reach its minimum ratio; a missing
// section, a missing group, or an unmet floor is an error.
func checkCoverFloor(path, campaign string, snaps []obs.CoverGroupSnap) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("cover floor: %w", err)
	}
	var floors coverFloorFile
	if err := json.Unmarshal(raw, &floors); err != nil {
		return fmt.Errorf("cover floor %s: %w", path, err)
	}
	want, ok := floors[campaign]
	if !ok {
		return fmt.Errorf("cover floor %s: no section for campaign %q", path, campaign)
	}
	byName := make(map[string]obs.CoverGroupSnap, len(snaps))
	for _, g := range snaps {
		byName[g.Name] = g
	}
	groups := make([]string, 0, len(want))
	for name := range want {
		groups = append(groups, name)
	}
	sort.Strings(groups)
	var unmet []string
	for _, name := range groups {
		g, ok := byName[name]
		if !ok {
			unmet = append(unmet, fmt.Sprintf("%s: group not instrumented (floor %.2f)", name, want[name]))
			continue
		}
		if r := g.Ratio(); r < want[name] {
			hit, total := g.Covered()
			unmet = append(unmet, fmt.Sprintf("%s: %d/%d bins (%.1f%%) below floor %.1f%%",
				name, hit, total, 100*r, 100*want[name]))
		}
	}
	if len(unmet) > 0 {
		return fmt.Errorf("coverage floor not met for campaign %q:\n  %s",
			campaign, strings.Join(unmet, "\n  "))
	}
	return nil
}
