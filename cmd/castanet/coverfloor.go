package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"castanet/internal/obs"
)

// coverFloorFile maps campaign name -> cover group -> minimum hit-bin
// ratio (0..1). The committed COVER_FLOOR.json at the repo root is the
// CI contract: make cover-smoke runs the campaigns against it.
type coverFloorFile map[string]map[string]float64

// loadCoverFloor reads and validates a floor file before the campaign
// spends any time running: a missing or unreadable file, malformed JSON,
// or a ratio outside [0, 1] is an operator error with a diagnostic that
// names the offending entry. The caller maps these to exit status 2.
func loadCoverFloor(path string) (coverFloorFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cover floor: cannot read %s: %v", path, err)
	}
	var floors coverFloorFile
	if err := json.Unmarshal(raw, &floors); err != nil {
		return nil, fmt.Errorf("cover floor: %s is not a floor file (want JSON campaign -> group -> ratio): %v", path, err)
	}
	for camp, groups := range floors {
		for name, ratio := range groups {
			if ratio < 0 || ratio > 1 {
				return nil, fmt.Errorf("cover floor: %s: campaign %q group %q ratio %v outside [0, 1]",
					path, camp, name, ratio)
			}
		}
	}
	return floors, nil
}

// floorsFor selects one campaign's floor section; a campaign with no
// section is an operator error (wrong file or wrong campaign name), also
// caught before the campaign runs.
func floorsFor(floors coverFloorFile, path, campaign string) (map[string]float64, error) {
	want, ok := floors[campaign]
	if !ok {
		names := make([]string, 0, len(floors))
		for name := range floors {
			names = append(names, name)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("cover floor: %s has no section for campaign %q (sections: %s)",
			path, campaign, strings.Join(names, ", "))
	}
	return want, nil
}

// checkCoverFloor verifies a campaign's merged coverage against its
// preloaded floor section. Every listed group must exist in the snapshot
// and reach its minimum ratio; a missing group or an unmet floor is a
// verification failure (exit status 1), not a flag error.
func checkCoverFloor(want map[string]float64, campaign string, snaps []obs.CoverGroupSnap) error {
	byName := make(map[string]obs.CoverGroupSnap, len(snaps))
	for _, g := range snaps {
		byName[g.Name] = g
	}
	groups := make([]string, 0, len(want))
	for name := range want {
		groups = append(groups, name)
	}
	sort.Strings(groups)
	var unmet []string
	for _, name := range groups {
		g, ok := byName[name]
		if !ok {
			unmet = append(unmet, fmt.Sprintf("%s: group not instrumented (floor %.2f)", name, want[name]))
			continue
		}
		if r := g.Ratio(); r < want[name] {
			hit, total := g.Covered()
			unmet = append(unmet, fmt.Sprintf("%s: %d/%d bins (%.1f%%) below floor %.1f%%",
				name, hit, total, 100*r, 100*want[name]))
		}
	}
	if len(unmet) > 0 {
		return fmt.Errorf("coverage floor not met for campaign %q:\n  %s",
			campaign, strings.Join(unmet, "\n  "))
	}
	return nil
}
