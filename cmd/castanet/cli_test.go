package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// cliBin is the castanet binary under test, built once in TestMain so
// the CLI tests exercise real flag parsing, exit codes and stderr.
var cliBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "castanet-cli")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cliBin = filepath.Join(dir, "castanet")
	if out, err := exec.Command("go", "build", "-o", cliBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "build castanet: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// runCLI executes the binary and returns stdout+stderr and the exit code.
func runCLI(t *testing.T, args ...string) (string, int) {
	t.Helper()
	out, err := exec.Command(cliBin, args...).CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	var exit *exec.ExitError
	if !strings.Contains(err.Error(), "exit status") {
		t.Fatalf("castanet %v: %v\n%s", args, err, out)
	}
	exit = err.(*exec.ExitError)
	return string(out), exit.ExitCode()
}

// TestCoverFloorPreflight: a bad floor file is an operator error caught
// before the campaign runs — exit status 2 with a diagnostic naming the
// problem, never a post-campaign JSON stack trace.
func TestCoverFloorPreflight(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess CLI tests in -short mode")
	}
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name string
		path string
		want string
	}{
		{"missing-file", filepath.Join(dir, "nope.json"), "cannot read"},
		{"malformed-json", write("bad.json", "{not json"), "not a floor file"},
		{"ratio-out-of-range", write("range.json", `{"switch":{"dut.queue":1.5}}`), "outside [0, 1]"},
		{"no-campaign-section", write("nosect.json", `{"faults":{"dut.queue":0.5}}`), "no section for campaign"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, code := runCLI(t, "-campaign", "switch", "-runs", "1", "-cover-floor", tc.path)
			if code != 2 {
				t.Errorf("exit %d, want 2 (operator error)\n%s", code, out)
			}
			if !strings.Contains(out, "cover floor") || !strings.Contains(out, tc.want) {
				t.Errorf("diagnostic missing %q:\n%s", tc.want, out)
			}
		})
	}
}

// TestExploreFlagValidation: the -explore flag family rejects conflicts
// and nonsense with exit status 2 before any work starts.
func TestExploreFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess CLI tests in -short mode")
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"explore-and-campaign", []string{"-explore", "-campaign", "switch"}, "mutually exclusive"},
		{"cover-target-without-explore", []string{"-cover-target", "dut.queue"}, "requires -explore"},
		{"explore-and-cover-floor", []string{"-explore", "-cover-floor", "x.json"}, "applies to -campaign"},
		{"zero-generations", []string{"-explore", "-generations", "0"}, "-generations"},
		{"zero-population", []string{"-explore", "-population", "0"}, "-population"},
		{"replay-out-of-range", []string{"-explore", "-generations", "2", "-population", "3", "-replay", "6"}, "out of range"},
		{"resume-without-checkpoint", []string{"-explore", "-resume"}, "-resume requires"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, code := runCLI(t, tc.args...)
			if code != 2 {
				t.Errorf("exit %d, want 2\n%s", code, out)
			}
			if !strings.Contains(out, tc.want) {
				t.Errorf("diagnostic missing %q:\n%s", tc.want, out)
			}
		})
	}
}

// TestExploreEndToEnd: a pinned-seed exploration completes clean, its
// digest is byte-identical across shard counts, and -replay re-executes
// one of its runs in isolation.
func TestExploreEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full co-verification rigs in -short mode")
	}
	dir := t.TempDir()
	d1 := filepath.Join(dir, "d1")
	d2 := filepath.Join(dir, "d2")
	base := []string{"-explore", "-generations", "2", "-population", "3", "-seed", "11"}

	out, code := runCLI(t, append(base, "-shards", "2", "-digest", d1)...)
	if code != 0 {
		t.Fatalf("exploration exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "gen=001") || !strings.Contains(out, "complete") {
		t.Errorf("report missing ladder/completion:\n%s", out)
	}

	if out, code = runCLI(t, append(base, "-shards", "1", "-digest", d2)...); code != 0 {
		t.Fatalf("second exploration exit %d:\n%s", code, out)
	}
	b1, err := os.ReadFile(d1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(d2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Errorf("digest differs across shard counts:\n--- shards=2\n%s\n--- shards=1\n%s", b1, b2)
	}
	if !strings.Contains(string(b1), "explore covered=") {
		t.Errorf("digest missing summary line:\n%s", b1)
	}

	out, code = runCLI(t, append(base, "-replay", "1")...)
	if code != 0 {
		t.Fatalf("replay exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "replay run=000001") || !strings.Contains(out, "outcome: ok") {
		t.Errorf("replay output unexpected:\n%s", out)
	}
}
