// Command castanet runs the co-verification experiments that reproduce
// the paper's evaluation. Each experiment prints the table recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	castanet -experiment e1 -cells 10000
//	castanet -experiment all
//	castanet -experiment e1 -trace /tmp/e1.json -metrics /tmp/e1.metrics
//	castanet -campaign faults -runs 1000 -shards 8 -seed 7
//	castanet -campaign faults -runs 1000 -seed 7 -replay 412
//	castanet -explore -generations 8 -population 16 -seed 7
//	castanet -explore -generations 8 -population 16 -seed 7 -replay 23
//
// With -metrics the run's counters and gauges are written to the given
// file in plain-text exposition format and a summary table is printed;
// with -trace the run's events are exported as Chrome trace-event JSON
// (open in Perfetto or chrome://tracing); -pprof serves net/http/pprof
// on the given address for the duration of the run, shut down cleanly on
// exit.
//
// -serve exposes the live run over HTTP while it executes: /metrics in
// Prometheus text exposition format, /healthz liveness, and /snapshot as
// a JSON progress stream. -trace-cells N samples the causal cell tracing
// (every Nth cell's per-hop waterfall; default 1 = every cell, 0 = off).
//
// -batch (default on) coalesces the coupling traffic of every rig into
// δ-window batch frames (one 0xCA59 frame per processing window);
// -batch=false restores the one-frame-per-message wire protocol, useful
// for A/B throughput comparison and when debugging at the frame level.
//
// -compiled (default on) runs every HDL kernel on the compiled
// bit-parallel two-state fast path (DESIGN.md §18); -no-compiled falls
// back to the plain event-driven kernel. The two modes are observably
// equivalent — same events, deltas, waveforms, coverage and profile — so
// the switch exists for A/B speed measurement and for bisecting a
// suspected fast-path defect, not for correctness.
//
// With -campaign, instead of a single experiment the named verification
// campaign fans -runs seed-derived runs across -shards workers and prints
// a summary report with a replayable failure digest — failed runs attach
// their cell waterfall and flight-recorder dump; -replay re-executes
// exactly one run of the matrix by index. Exit status is 2 for flag
// errors, 1 when a campaign (or replayed run) fails, 0 otherwise.
//
// Long campaigns survive flaky infrastructure: -run-timeout bounds each
// run's wall clock (a hung coupling becomes a typed timeout failure, not
// a stuck worker), -retries re-executes runs that failed with a
// retryable infrastructure error (verification mismatches are never
// retried), and a cell that exhausts its retries repeatedly is
// quarantined — skipped for the rest of the campaign and called out in
// the digest (-no-quarantine opts out). -checkpoint FILE persists
// progress every -checkpoint-every runs and on SIGINT/SIGTERM; -resume
// continues from the file and produces a digest byte-identical to an
// uninterrupted run (-digest FILE writes it for diffing).
//
// -explore replaces the static matrix with the coverage-guided scenario
// explorer: -generations campaigns of -population switch scenarios each,
// where every generation's merged coverage steers the next generation's
// mutations toward uncovered bins (-cover-target focuses the pressure on
// one group). Everything derives from -seed, so the printed generation
// ladder, the -digest file and every discovered failure are byte-identical
// across -shards counts and kill/resume (-checkpoint/-resume work exactly
// as for campaigns); -replay re-executes one exploration run by the run=
// index in the digest.
//
// -coverage collects functional coverage (named bin groups: cell-header
// fields, queue-depth bands, drop causes, UPC actions, sync-window
// extremes) and prints the per-group report; with -campaign the merged
// bins also land in the digest's coverage: section and, under -serve, at
// /coverage. -cover-floor FILE additionally enforces the per-group
// minimum ratios committed for the campaign (see COVER_FLOOR.json);
// an unmet floor exits 1.
//
// -profile collects the simulation profile: a deterministic per-signal /
// per-process hotspot table ("profile " lines, byte-identical for a given
// seed) followed by the wall-clock phase breakdown ("phase " lines, host-
// dependent). With -campaign the shard-exact merged activity also lands in
// the digest's profile section and, under -serve, at /profile together
// with the live phase times and sim-rate gauges. -profile-report FILE
// additionally saves the profile as JSON (implies -profile).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"castanet/internal/campaign"
	"castanet/internal/experiments"
	"castanet/internal/obs"
)

// experiment is one runnable harness: the name accepted by -experiment
// and the function producing its report.
type experiment struct {
	name string
	run  func(cells, seed uint64) fmt.Stringer
}

// table lists the experiments in execution order for -experiment all.
var table = []experiment{
	{"e1", func(c, s uint64) fmt.Stringer { return experiments.E1(c, s) }},
	{"e2", func(c, s uint64) fmt.Stringer { return experiments.E2(min64(c, 800), s) }},
	{"e3", func(c, s uint64) fmt.Stringer { return experiments.E3(min64(c, 1000), s) }},
	{"e4", func(c, s uint64) fmt.Stringer { return experiments.E4(min64(c, 800), s) }},
	{"e5", func(c, s uint64) fmt.Stringer { return experiments.E5(s) }},
	{"e6", func(c, s uint64) fmt.Stringer { return experiments.E6(min64(c, 2000), s) }},
	{"e7", func(c, s uint64) fmt.Stringer { return experiments.E7(min64(c, 500), s) }},
	{"e8", func(c, s uint64) fmt.Stringer { return experiments.E8(s) }},
}

// names returns the valid -experiment values for usage messages.
func names() string {
	var ns []string
	for _, e := range table {
		ns = append(ns, e.name)
	}
	return strings.Join(ns, ", ")
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp        = flag.String("experiment", "all", "experiment to run: e1..e8 or all")
		cells      = flag.Uint64("cells", 2000, "total cells for throughput experiments (paper: 10000)")
		seed       = flag.Uint64("seed", 1, "master random seed")
		metrics    = flag.String("metrics", "", "write run metrics (plain-text exposition) to this file")
		trace      = flag.String("trace", "", "write Chrome trace-event JSON to this file")
		pprof      = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		serve      = flag.String("serve", "", "serve live telemetry on this address: /metrics (Prometheus), /healthz, /snapshot")
		traceN     = flag.Int("trace-cells", 1, "causal cell tracing sample: trace every Nth cell (1 = all, 0 = off)")
		camp       = flag.String("campaign", "", "run a verification campaign instead of an experiment: "+experiments.CampaignNames())
		runs       = flag.Int("runs", 256, "campaign: total runs in the matrix")
		shards     = flag.Int("shards", 0, "campaign: worker shards (0 = GOMAXPROCS)")
		replay     = flag.Int64("replay", -1, "campaign: replay this single run index from a failure digest")
		failfast   = flag.Bool("failfast", false, "campaign: cancel remaining runs after the first failure")
		batch      = flag.Bool("batch", true, "coalesce coupling messages per δ-window into batch frames (0xCA59)")
		compiled   = flag.Bool("compiled", true, "run HDL kernels on the compiled bit-parallel fast path (DESIGN.md §18)")
		noCompiled = flag.Bool("no-compiled", false, "force the plain event-driven HDL kernel (overrides -compiled)")

		runTimeout = flag.Duration("run-timeout", 0, "campaign: per-run wall-clock deadline (0 = none); a hung run fails with a typed timeout")
		retries    = flag.Int("retries", 0, "campaign: retry budget per run for retryable infrastructure failures")
		checkpoint = flag.String("checkpoint", "", "campaign: persist progress to this file for crash/resume")
		ckEvery    = flag.Int("checkpoint-every", 0, "campaign: checkpoint after this many committed runs (0 = default 64)")
		resume     = flag.Bool("resume", false, "campaign: resume from -checkpoint instead of starting over")
		noQuar     = flag.Bool("no-quarantine", false, "campaign: never quarantine cells whose infrastructure keeps dying")
		digest     = flag.String("digest", "", "campaign: write the deterministic digest file here (byte-identical across shard counts and resume)")
		coverage   = flag.Bool("coverage", false, "collect functional coverage and print the per-group bin report")
		coverFloor = flag.String("cover-floor", "", "campaign: enforce the per-group coverage floors committed in this JSON file (implies -coverage; unmet floors exit 1)")
		profile    = flag.Bool("profile", false, "collect the simulation profile: deterministic per-signal/per-process hotspot table plus wall-clock phase breakdown")
		profileOut = flag.String("profile-report", "", "write the simulation profile as JSON to this file (implies -profile)")

		explore     = flag.Bool("explore", false, "run the coverage-guided scenario explorer over the switch rig instead of an experiment")
		generations = flag.Int("generations", 8, "explore: campaign generations to evolve")
		population  = flag.Int("population", 16, "explore: scenarios per generation")
		coverTarget = flag.String("cover-target", "", "explore: focus novelty scoring and mutation pressure on this cover group (empty = all groups)")
	)
	flag.Parse()

	if *traceN < 0 {
		return badFlags("-trace-cells must be non-negative (got %d)", *traceN)
	}

	experiments.Batching(*batch)
	experiments.Compiled(*compiled && !*noCompiled)
	profiling := *profile || *profileOut != ""

	if *explore && *camp != "" {
		return badFlags("-explore and -campaign are mutually exclusive")
	}
	if profiling && *explore {
		return badFlags("-profile applies to experiments and campaigns, not -explore")
	}
	if *coverTarget != "" && !*explore {
		return badFlags("-cover-target requires -explore")
	}
	if *explore {
		if *coverFloor != "" {
			return badFlags("-cover-floor applies to -campaign; -explore proves coverage via its generation ladder")
		}
		return runExplore(exploreOpts{
			generations: *generations, population: *population,
			shards: *shards, seed: *seed, target: *coverTarget,
			replay:  *replay,
			metrics: *metrics, trace: *trace, serve: *serve, traceCells: *traceN,
			runTimeout: *runTimeout, retries: *retries,
			checkpoint: *checkpoint, checkpointEvery: *ckEvery, resume: *resume,
			noQuarantine: *noQuar, digest: *digest,
		})
	}
	if *camp != "" {
		return runCampaign(campaignOpts{
			name: *camp, runs: *runs, shards: *shards, seed: *seed,
			replay: *replay, failfast: *failfast,
			metrics: *metrics, trace: *trace, serve: *serve, traceCells: *traceN,
			batch:      *batch,
			compiled:   *compiled && !*noCompiled,
			runTimeout: *runTimeout, retries: *retries,
			checkpoint: *checkpoint, checkpointEvery: *ckEvery, resume: *resume,
			noQuarantine: *noQuar, digest: *digest,
			coverage: *coverage || *coverFloor != "", coverFloor: *coverFloor,
			profile: profiling, profileOut: *profileOut,
		})
	}
	if *coverFloor != "" {
		return badFlags("-cover-floor requires -campaign")
	}

	// Validate the experiment selection before any work starts.
	want := strings.ToLower(*exp)
	var selected []experiment
	for _, e := range table {
		if want == "all" || want == e.name {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "castanet: unknown experiment %q (valid: %s, all)\n", *exp, names())
		return 2
	}

	if *pprof != "" {
		stop, err := startPprof(*pprof)
		if err != nil {
			fmt.Fprintf(os.Stderr, "castanet: pprof server: %v\n", err)
			return 1
		}
		defer stop()
	}

	// Observability is run-scoped: one registry and one trace ring shared
	// by every selected experiment.
	var run *obs.Run
	if *metrics != "" || *trace != "" || *serve != "" || *coverage || profiling {
		run = obs.NewRun(obs.DefaultTraceCap)
		if *traceN > 0 {
			run.Cells = obs.NewCellTracker(*traceN, 0)
		}
		if profiling {
			run.Profile = obs.NewRunProfile()
		}
		experiments.Observe(run)
	}

	var srv *obs.Server
	if *serve != "" {
		var stop func()
		var err error
		srv, stop, err = startTelemetry(*serve, run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "castanet: telemetry server: %v\n", err)
			return 1
		}
		defer stop()
	}

	for _, e := range selected {
		fmt.Println(e.run(*cells, *seed))
		srv.Beat()
	}

	if run != nil {
		if err := writeRunArtifacts(run, *metrics, *trace); err != nil {
			fmt.Fprintf(os.Stderr, "castanet: %v\n", err)
			return 1
		}
		run.Reg().WriteReport(os.Stdout)
		if *coverage {
			obs.WriteCoverText(os.Stdout, run.CoverReg().Snapshot())
		}
		if profiling {
			// The "profile " lines are seed-deterministic (the profile-smoke
			// CI job diffs them); the "phase " lines after them are
			// wall-clock and vary run to run.
			activity := run.Prof().Activity()
			phases := run.Prof().PhaseProf().Snapshot()
			obs.WriteActivityText(os.Stdout, activity, 10)
			obs.WritePhaseText(os.Stdout, phases)
			if *profileOut != "" {
				if err := writeProfileFile(*profileOut, activity, phases); err != nil {
					fmt.Fprintf(os.Stderr, "castanet: %v\n", err)
					return 1
				}
			}
		}
	}
	return 0
}

// writeProfileFile saves the simulation profile as JSON: the deterministic
// activity half plus the wall-clock phase breakdown, mirroring the /profile
// endpoint's document shape.
func writeProfileFile(path string, activity obs.ActivitySnap, phases []obs.PhaseSnap) error {
	doc := struct {
		Activity obs.ActivitySnap `json:"activity"`
		Phases   []obs.PhaseSnap  `json:"phases,omitempty"`
	}{Activity: activity, Phases: phases}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// badFlags reports a campaign flag error the way unknown -experiment is
// reported: a one-line diagnosis on stderr plus exit status 2.
func badFlags(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "castanet: "+format+"\n", args...)
	flag.Usage()
	return 2
}

// campaignOpts carries the parsed -campaign flag set into runCampaign.
type campaignOpts struct {
	name       string
	runs       int
	shards     int
	seed       uint64
	replay     int64
	failfast   bool
	metrics    string
	trace      string
	serve      string
	traceCells int
	batch      bool
	compiled   bool

	runTimeout      time.Duration
	retries         int
	checkpoint      string
	checkpointEvery int
	resume          bool
	noQuarantine    bool
	digest          string
	coverage        bool
	coverFloor      string
	profile         bool
	profileOut      string
}

// defaultQuarantineAfter is the CLI's quarantine threshold: a cell whose
// runs exhaust their retries this many times in a row is declared dead
// infrastructure and skipped. -no-quarantine opts out.
const defaultQuarantineAfter = 3

// runCampaign executes (or replays one run of) a named campaign matrix.
func runCampaign(o campaignOpts) int {
	matrix, err := experiments.CampaignMatrixCfg(o.name,
		experiments.CampaignConfig{TraceEvery: o.traceCells, Batch: o.batch, NoCompiled: !o.compiled})
	if err != nil {
		return badFlags("unknown campaign %q (valid: %s)", o.name, experiments.CampaignNames())
	}
	name, runs, shards, seed, replay := o.name, o.runs, o.shards, o.seed, o.replay
	metrics, trace := o.metrics, o.trace
	if runs < 1 {
		return badFlags("-runs must be at least 1 (got %d)", runs)
	}
	if shards < 0 {
		return badFlags("-shards must be non-negative (got %d, 0 = GOMAXPROCS)", shards)
	}
	if replay >= int64(runs) {
		return badFlags("-replay index %d out of range (campaign has %d runs)", replay, runs)
	}
	if o.runTimeout < 0 {
		return badFlags("-run-timeout must be non-negative (got %v)", o.runTimeout)
	}
	if o.retries < 0 {
		return badFlags("-retries must be non-negative (got %d)", o.retries)
	}
	if o.checkpointEvery < 0 {
		return badFlags("-checkpoint-every must be non-negative (got %d)", o.checkpointEvery)
	}
	if o.resume && o.checkpoint == "" {
		return badFlags("-resume requires -checkpoint FILE")
	}
	// Preflight the cover-floor contract so a bad file or a typo'd
	// campaign name fails in milliseconds, not after the whole campaign.
	var floors map[string]float64
	if o.coverFloor != "" {
		all, err := loadCoverFloor(o.coverFloor)
		if err != nil {
			return badFlags("%v", err)
		}
		if floors, err = floorsFor(all, o.coverFloor, name); err != nil {
			return badFlags("%v", err)
		}
	}

	var obsRun *obs.Run
	if metrics != "" || trace != "" || o.serve != "" || o.profile {
		obsRun = obs.NewRun(obs.DefaultTraceCap)
		if o.profile {
			// The campaign's live profile mirror: workers absorb each
			// committed run's activity into it and accumulate phase wall
			// time, so -serve's /profile tracks hotspots mid-campaign.
			obsRun.Profile = obs.NewRunProfile()
		}
	}
	quarantineAfter := defaultQuarantineAfter
	if o.noQuarantine {
		quarantineAfter = 0
	}
	spec := campaign.Spec{
		Name:     name,
		Seed:     seed,
		Runs:     runs,
		Shards:   shards,
		FailFast: o.failfast,
		Matrix:   matrix,
		Obs:      obsRun,
		Policy: campaign.Policy{
			RunTimeout:      o.runTimeout,
			Retries:         o.retries,
			QuarantineAfter: quarantineAfter,
		},
		Checkpoint:      o.checkpoint,
		CheckpointEvery: o.checkpointEvery,
		Coverage:        o.coverage,
		Profile:         o.profile,
	}

	if o.serve != "" {
		srv, stop, err := startTelemetry(o.serve, obsRun)
		if err != nil {
			fmt.Fprintf(os.Stderr, "castanet: telemetry server: %v\n", err)
			return 1
		}
		defer stop()
		// Every finished run is a heartbeat for /healthz liveness.
		spec.OnResult = func(campaign.Result) { srv.Beat() }
	}

	// Ctrl-C or SIGTERM cancels in-flight couplings, writes a final
	// checkpoint when one is configured, and still prints the partial
	// summary, so a long campaign interrupted at run 900 is not wasted.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if replay >= 0 {
		res, err := campaign.Replay(ctx, spec, uint64(replay))
		if err != nil {
			fmt.Fprintf(os.Stderr, "castanet: %v\n", err)
			return 2
		}
		fmt.Printf("replay run=%06d seed=0x%016x cell=%s wall=%v\n",
			res.Index, res.Seed, res.Cell.Name(), res.Wall)
		if res.Err != nil {
			fmt.Printf("outcome: FAIL: %v\n", res.Err)
			return 1
		}
		fmt.Println("outcome: ok")
		return 0
	}

	var sum *campaign.Summary
	if o.resume {
		sum, err = campaign.Resume(ctx, spec)
	} else {
		sum, err = campaign.Execute(ctx, spec)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "castanet: %v\n", err)
		return 2
	}
	sum.WriteReport(os.Stdout)
	if o.coverage {
		obs.WriteCoverText(os.Stdout, sum.Coverage)
	}
	if o.profile {
		// The merged per-run activity is part of the deterministic summary
		// (byte-identical at any shard count); the phase breakdown is the
		// campaign's accumulated wall time and stays out of the digest.
		phases := obsRun.Prof().PhaseProf().Snapshot()
		obs.WriteActivityText(os.Stdout, sum.Activity, 10)
		obs.WritePhaseText(os.Stdout, phases)
		if o.profileOut != "" {
			if err := writeProfileFile(o.profileOut, sum.Activity, phases); err != nil {
				fmt.Fprintf(os.Stderr, "castanet: %v\n", err)
				return 1
			}
		}
	}
	if o.digest != "" {
		if err := writeDigestFile(o.digest, sum); err != nil {
			fmt.Fprintf(os.Stderr, "castanet: %v\n", err)
			return 1
		}
	}
	if obsRun != nil {
		if err := writeRunArtifacts(obsRun, metrics, trace); err != nil {
			fmt.Fprintf(os.Stderr, "castanet: %v\n", err)
			return 1
		}
	}
	if o.coverFloor != "" {
		if err := checkCoverFloor(floors, name, sum.Coverage); err != nil {
			fmt.Fprintf(os.Stderr, "castanet: %v\n", err)
			return 1
		}
		fmt.Printf("coverage floor met (%s)\n", o.coverFloor)
	}
	if !sum.Clean() {
		return 1
	}
	return 0
}

// writeDigestFile saves the deterministic campaign digest, the file two
// executions of the same spec (including one interrupted and resumed) can
// be diffed by.
func writeDigestFile(path string, sum *campaign.Summary) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sum.WriteDigest(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeRunArtifacts saves the metrics exposition and the Chrome trace.
func writeRunArtifacts(run *obs.Run, metricsPath, tracePath string) error {
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := run.WriteMetrics(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := run.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if d := run.Trace().Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "castanet: trace ring dropped %d oldest events\n", d)
		}
	}
	return nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
