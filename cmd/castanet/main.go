// Command castanet runs the co-verification experiments that reproduce
// the paper's evaluation. Each experiment prints the table recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	castanet -experiment e1 -cells 10000
//	castanet -experiment all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"castanet/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("experiment", "all", "experiment to run: e1..e8 or all")
		cells = flag.Uint64("cells", 2000, "total cells for throughput experiments (paper: 10000)")
		seed  = flag.Uint64("seed", 1, "master random seed")
	)
	flag.Parse()

	run := func(name string) bool {
		want := strings.ToLower(*exp)
		return want == "all" || want == name
	}
	ran := false
	if run("e1") {
		fmt.Println(experiments.E1(*cells, *seed))
		ran = true
	}
	if run("e2") {
		fmt.Println(experiments.E2(min64(*cells, 800), *seed))
		ran = true
	}
	if run("e3") {
		fmt.Println(experiments.E3(min64(*cells, 1000), *seed))
		ran = true
	}
	if run("e4") {
		fmt.Println(experiments.E4(min64(*cells, 800), *seed))
		ran = true
	}
	if run("e5") {
		fmt.Println(experiments.E5(*seed))
		ran = true
	}
	if run("e6") {
		fmt.Println(experiments.E6(min64(*cells, 2000), *seed))
		ran = true
	}
	if run("e7") {
		fmt.Println(experiments.E7(min64(*cells, 500), *seed))
		ran = true
	}
	if run("e8") {
		fmt.Println(experiments.E8(*seed))
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "castanet: unknown experiment %q (want e1..e8 or all)\n", *exp)
		os.Exit(2)
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
