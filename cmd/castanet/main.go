// Command castanet runs the co-verification experiments that reproduce
// the paper's evaluation. Each experiment prints the table recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	castanet -experiment e1 -cells 10000
//	castanet -experiment all
//	castanet -experiment e1 -trace /tmp/e1.json -metrics /tmp/e1.metrics
//
// With -metrics the run's counters and gauges are written to the given
// file in plain-text exposition format and a summary table is printed;
// with -trace the run's events are exported as Chrome trace-event JSON
// (open in Perfetto or chrome://tracing); -pprof serves net/http/pprof
// on the given address for the duration of the run.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"castanet/internal/experiments"
	"castanet/internal/obs"
)

// experiment is one runnable harness: the name accepted by -experiment
// and the function producing its report.
type experiment struct {
	name string
	run  func(cells, seed uint64) fmt.Stringer
}

// table lists the experiments in execution order for -experiment all.
var table = []experiment{
	{"e1", func(c, s uint64) fmt.Stringer { return experiments.E1(c, s) }},
	{"e2", func(c, s uint64) fmt.Stringer { return experiments.E2(min64(c, 800), s) }},
	{"e3", func(c, s uint64) fmt.Stringer { return experiments.E3(min64(c, 1000), s) }},
	{"e4", func(c, s uint64) fmt.Stringer { return experiments.E4(min64(c, 800), s) }},
	{"e5", func(c, s uint64) fmt.Stringer { return experiments.E5(s) }},
	{"e6", func(c, s uint64) fmt.Stringer { return experiments.E6(min64(c, 2000), s) }},
	{"e7", func(c, s uint64) fmt.Stringer { return experiments.E7(min64(c, 500), s) }},
	{"e8", func(c, s uint64) fmt.Stringer { return experiments.E8(s) }},
}

// names returns the valid -experiment values for usage messages.
func names() string {
	var ns []string
	for _, e := range table {
		ns = append(ns, e.name)
	}
	return strings.Join(ns, ", ")
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp     = flag.String("experiment", "all", "experiment to run: e1..e8 or all")
		cells   = flag.Uint64("cells", 2000, "total cells for throughput experiments (paper: 10000)")
		seed    = flag.Uint64("seed", 1, "master random seed")
		metrics = flag.String("metrics", "", "write run metrics (plain-text exposition) to this file")
		trace   = flag.String("trace", "", "write Chrome trace-event JSON to this file")
		pprof   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	// Validate the experiment selection before any work starts.
	want := strings.ToLower(*exp)
	var selected []experiment
	for _, e := range table {
		if want == "all" || want == e.name {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "castanet: unknown experiment %q (valid: %s, all)\n", *exp, names())
		return 2
	}

	if *pprof != "" {
		go func() {
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				fmt.Fprintf(os.Stderr, "castanet: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "castanet: pprof at http://%s/debug/pprof/\n", *pprof)
	}

	// Observability is run-scoped: one registry and one trace ring shared
	// by every selected experiment.
	var run *obs.Run
	if *metrics != "" || *trace != "" {
		run = obs.NewRun(obs.DefaultTraceCap)
		experiments.Observe(run)
	}

	for _, e := range selected {
		fmt.Println(e.run(*cells, *seed))
	}

	if run != nil {
		if err := writeRunArtifacts(run, *metrics, *trace); err != nil {
			fmt.Fprintf(os.Stderr, "castanet: %v\n", err)
			return 1
		}
		run.Reg().WriteReport(os.Stdout)
	}
	return 0
}

// writeRunArtifacts saves the metrics exposition and the Chrome trace.
func writeRunArtifacts(run *obs.Run, metricsPath, tracePath string) error {
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := run.WriteMetrics(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := run.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if d := run.Trace().Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "castanet: trace ring dropped %d oldest events\n", d)
		}
	}
	return nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
