package main

import (
	"net"
	"net/http"
	"strings"
	"testing"

	"castanet/internal/obs"
)

// TestPprofLifecycle: the -pprof server answers while the run lives and
// releases its listener on stop — the old implementation leaked the
// listening goroutine past main.
func TestPprofLifecycle(t *testing.T) {
	stop, err := startPprof("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// The bound address is announced on stderr; rediscover it by probing
	// the helper directly instead.
	bound, stop2, err := serveHTTP("127.0.0.1:0", http.DefaultServeMux)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + bound + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof not served: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index answered %d, want 200", resp.StatusCode)
	}
	stop2()
	stop()
	if _, err := net.Dial("tcp", bound); err == nil {
		t.Error("listener still accepting after stop")
	}
}

// TestTelemetryLifecycle: startTelemetry serves the obs endpoints on the
// bound port and tears down cleanly.
func TestTelemetryLifecycle(t *testing.T) {
	run := obs.NewRun(obs.DefaultTraceCap)
	run.Reg().Counter("net.sched.executed").Add(9)
	bound, stop, err := serveHTTP("127.0.0.1:0", obs.NewServer(run).Handler())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatalf("telemetry not served: %v", err)
	}
	body := make([]byte, 4096)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), "net_sched_executed_total 9") {
		t.Errorf("metrics exposition missing counter:\n%s", body[:n])
	}
	stop()
	if _, err := http.Get("http://" + bound + "/metrics"); err == nil {
		t.Error("telemetry still answering after stop")
	}
}

// TestTelemetryContentTypes pins the Content-Type of every telemetry
// endpoint, including the root index that lists them — Prometheus scrapers
// and JSON consumers both dispatch on the header.
func TestTelemetryContentTypes(t *testing.T) {
	run := obs.NewRun(obs.DefaultTraceCap)
	run.Profile = obs.NewRunProfile()
	bound, stop, err := serveHTTP("127.0.0.1:0", obs.NewServer(run).Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	cases := []struct {
		path string
		want string
	}{
		{"/", "text/plain; charset=utf-8"},
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8"},
		{"/healthz", "application/json"},
		{"/coverage", "application/json"},
		{"/profile", "application/json"},
		{"/snapshot?n=1", "application/x-ndjson"},
	}
	for _, c := range cases {
		resp, err := http.Get("http://" + bound + c.path)
		if err != nil {
			t.Fatalf("GET %s: %v", c.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s answered %d, want 200", c.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); got != c.want {
			t.Errorf("GET %s Content-Type = %q, want %q", c.path, got, c.want)
		}
	}
}
