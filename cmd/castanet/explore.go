package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"castanet/internal/campaign"
	"castanet/internal/explore"
	"castanet/internal/obs"
)

// exploreOpts carries the parsed -explore flag set into runExplore.
type exploreOpts struct {
	generations int
	population  int
	shards      int
	seed        uint64
	target      string
	replay      int64

	metrics    string
	trace      string
	serve      string
	traceCells int

	runTimeout      time.Duration
	retries         int
	checkpoint      string
	checkpointEvery int
	resume          bool
	noQuarantine    bool
	digest          string
}

// runExplore executes (or replays one run of) a coverage-guided
// exploration of the switch scenario space. Exit status mirrors
// -campaign: 2 for operator errors, 1 when the exploration was
// interrupted or found verification failures, 0 clean.
func runExplore(o exploreOpts) int {
	switch {
	case o.generations < 1:
		return badFlags("-generations must be at least 1 (got %d)", o.generations)
	case o.population < 1:
		return badFlags("-population must be at least 1 (got %d)", o.population)
	case o.shards < 0:
		return badFlags("-shards must be non-negative (got %d, 0 = GOMAXPROCS)", o.shards)
	case o.replay >= int64(o.generations)*int64(o.population):
		return badFlags("-replay index %d out of range (exploration has %d runs)",
			o.replay, o.generations*o.population)
	case o.runTimeout < 0:
		return badFlags("-run-timeout must be non-negative (got %v)", o.runTimeout)
	case o.retries < 0:
		return badFlags("-retries must be non-negative (got %d)", o.retries)
	case o.checkpointEvery < 0:
		return badFlags("-checkpoint-every must be non-negative (got %d)", o.checkpointEvery)
	case o.resume && o.checkpoint == "":
		return badFlags("-resume requires -checkpoint FILE")
	}

	var obsRun *obs.Run
	if o.metrics != "" || o.trace != "" || o.serve != "" {
		obsRun = obs.NewRun(obs.DefaultTraceCap)
	}
	quarantineAfter := defaultQuarantineAfter
	if o.noQuarantine {
		quarantineAfter = 0
	}
	spec := explore.Spec{
		Space:       explore.NewSwitchSpace(explore.SwitchSpaceConfig{TraceEvery: o.traceCells}),
		Seed:        o.seed,
		Generations: o.generations,
		Population:  o.population,
		Shards:      o.shards,
		Target:      o.target,
		Policy: campaign.Policy{
			RunTimeout:      o.runTimeout,
			Retries:         o.retries,
			QuarantineAfter: quarantineAfter,
		},
		Checkpoint:      o.checkpoint,
		CheckpointEvery: o.checkpointEvery,
		Obs:             obsRun,
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if o.replay >= 0 {
		res, err := explore.Replay(ctx, spec, uint64(o.replay))
		if err != nil {
			fmt.Fprintf(os.Stderr, "castanet: %v\n", err)
			return 2
		}
		gen := uint64(o.replay) / uint64(o.population)
		slot := uint64(o.replay) % uint64(o.population)
		fmt.Printf("replay run=%06d gen=%03d slot=%03d seed=0x%016x cell=%s wall=%v\n",
			o.replay, gen, slot, res.Seed, res.Cell.Name(), res.Wall)
		if res.Err != nil {
			fmt.Printf("outcome: FAIL: %v\n", res.Err)
			return 1
		}
		fmt.Println("outcome: ok")
		return 0
	}

	var srv *obs.Server
	if o.serve != "" {
		var stop func()
		var err error
		srv, stop, err = startTelemetry(o.serve, obsRun)
		if err != nil {
			fmt.Fprintf(os.Stderr, "castanet: telemetry server: %v\n", err)
			return 1
		}
		defer stop()
		spec.OnResult = func(campaign.Result) { srv.Beat() }
	}
	// Live generation ladder on stdout: a long exploration shows its
	// advance as it commits, and each commit is a liveness heartbeat.
	spec.OnGeneration = func(g explore.GenStat) {
		fmt.Printf("gen=%03d covered=%d/%d new=%d accepted=%d rejected=%d failures=%d\n",
			g.Gen, g.Covered, g.Total, g.New, g.Accepted, g.Rejected, g.Failures)
		srv.Beat()
	}

	var res *explore.Result
	var err error
	if o.resume {
		res, err = explore.Resume(ctx, spec)
	} else {
		res, err = explore.Execute(ctx, spec)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "castanet: %v\n", err)
		if errors.Is(err, explore.ErrSpec) || errors.Is(err, explore.ErrState) {
			return 2
		}
		return 1
	}
	res.WriteReport(os.Stdout)
	obs.WriteCoverText(os.Stdout, res.Coverage)
	if o.digest != "" {
		if err := writeExploreDigest(o.digest, res); err != nil {
			fmt.Fprintf(os.Stderr, "castanet: %v\n", err)
			return 1
		}
	}
	if obsRun != nil {
		if err := writeRunArtifacts(obsRun, o.metrics, o.trace); err != nil {
			fmt.Fprintf(os.Stderr, "castanet: %v\n", err)
			return 1
		}
	}
	if !res.Complete || res.FailTotal > 0 {
		return 1
	}
	return 0
}

// writeExploreDigest saves the deterministic exploration digest, the file
// two executions of the same spec (at any shard count, including one
// killed and resumed) can be diffed by.
func writeExploreDigest(path string, res *explore.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.WriteDigest(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
