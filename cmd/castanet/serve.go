package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"castanet/internal/obs"
)

// shutdownGrace bounds how long a stopping HTTP server waits for
// in-flight requests before cutting them off.
const shutdownGrace = time.Second

// serveHTTP runs handler on a freshly bound listener and returns the
// bound address plus a stop function that shuts the server down and
// releases the port before returning — the run exits with no listener
// left behind.
func serveHTTP(addr string, handler http.Handler) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: handler}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(ln)
	}()
	stop = func() {
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		if srv.Shutdown(ctx) != nil {
			srv.Close()
		}
		<-done
	}
	return ln.Addr().String(), stop, nil
}

// startPprof serves net/http/pprof (registered on the default mux by the
// blank import in main.go) for the duration of the run. The returned stop
// function closes the listener cleanly on run exit.
func startPprof(addr string) (stop func(), err error) {
	bound, stop, err := serveHTTP(addr, http.DefaultServeMux)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "castanet: pprof at http://%s/debug/pprof/\n", bound)
	return stop, nil
}

// startTelemetry serves the live telemetry endpoints (/metrics /healthz
// /snapshot) over the run's observability state. The bound address is
// announced on stderr so scripts can scrape a :0 listener.
func startTelemetry(addr string, run *obs.Run) (*obs.Server, func(), error) {
	srv := obs.NewServer(run)
	bound, stop, err := serveHTTP(addr, srv.Handler())
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "castanet: telemetry at http://%s/\n", bound)
	return srv, stop, nil
}
