// Command boardctl inspects and validates hardware test board
// configuration data sets (§3.3, Fig. 5): it prints the pin mapping of
// the built-in device configurations and checks them against the device's
// port list, the way the board's configuration software would before a
// verification session.
//
// Usage:
//
//	boardctl -device switch          # print + validate the switch mapping
//	boardctl -device accounting
//	boardctl -demo                   # the Fig.-5 style walkthrough
package main

import (
	"flag"
	"fmt"
	"os"

	"castanet/internal/atm"
	"castanet/internal/board"
	"castanet/internal/cyclesim"
)

func main() {
	var (
		device = flag.String("device", "switch", "device under test: switch, accounting")
		demo   = flag.Bool("demo", false, "run the Fig.-5 demo test cycle")
	)
	flag.Parse()

	var dev cyclesim.Device
	var cfg board.ConfigDataSet
	switch *device {
	case "switch":
		tb := atm.NewTranslator()
		tb.Add(atm.VC{VPI: 1, VCI: 100}, atm.Route{Port: 2, Out: atm.VC{VPI: 0x10, VCI: 0x202}})
		dev = cyclesim.NewSwitch(tb, 4, 32)
		cfg = board.SwitchConfig()
	case "accounting":
		acct := cyclesim.NewAccounting(16)
		acct.Register(atm.VC{VPI: 1, VCI: 100})
		dev = acct
		cfg = board.AccountingConfig()
	default:
		fmt.Fprintf(os.Stderr, "boardctl: unknown device %q\n", *device)
		os.Exit(2)
	}

	if err := cfg.Validate(dev); err != nil {
		fmt.Fprintln(os.Stderr, "boardctl: configuration INVALID:", err)
		os.Exit(1)
	}
	fmt.Printf("configuration data set for %q: VALID\n\n", *device)
	printConfig(cfg)

	if *demo {
		runDemo(dev, cfg)
	}
}

func printConfig(cfg board.ConfigDataSet) {
	fmt.Println("byte lanes:")
	for i, l := range cfg.Lanes {
		if l.Dir == board.Unused {
			continue
		}
		div := l.Divider
		if div == 0 {
			div = 1
		}
		fmt.Printf("  lane %2d  %-7s  divider %d\n", i, l.Dir, div)
	}
	fmt.Println("\ninport mappings:")
	for _, m := range cfg.Inports {
		printMapping(m.Port, m.Pins)
	}
	fmt.Println("\noutport mappings:")
	for _, m := range cfg.Outports {
		printMapping(m.Port, m.Pins)
	}
	if len(cfg.IOPorts) > 0 {
		fmt.Println("\nI/O port mappings:")
		for _, m := range cfg.IOPorts {
			fmt.Printf("  %-12s / %-12s ctrl %-10s write-value %d ", m.InPort, m.OutPort, m.CtrlPort, m.WriteValue)
			printMapping("", m.Pins)
		}
	}
}

func printMapping(port string, pr board.PinRange) {
	fmt.Printf("  %-12s byte lane %2d  start bit %d  bits %d  (pins %d..%d)\n",
		port, pr.Lane, pr.StartBit, pr.Bits,
		pr.Lane*board.PinsPerLane+pr.StartBit,
		pr.Lane*board.PinsPerLane+pr.StartBit+pr.Bits-1)
}

func runDemo(dev cyclesim.Device, cfg board.ConfigDataSet) {
	fmt.Println("\n--- demo test cycle ---")
	b := board.New(dev, 20e6, 4096)
	if err := b.Configure(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "boardctl:", err)
		os.Exit(1)
	}
	// One idle test cycle: demonstrates the SW/HW/SW activity split.
	if _, err := b.RunTestCycle(make([]board.Frame, 1000)); err != nil {
		fmt.Fprintln(os.Stderr, "boardctl:", err)
		os.Exit(1)
	}
	fmt.Println(b)
	fmt.Printf("hardware activity: %v at 20 MHz (%d cycles)\n", b.HWTime, b.HWCycles)
	fmt.Printf("software activity: %v (SCSI transfers: stimuli + responses)\n", b.SWTime)
}
