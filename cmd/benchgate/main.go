// Command benchgate compares a freshly measured BENCH_coupling.json
// against the committed baseline and fails (exit 1) on a performance
// regression. It is the CI bench-gate job's comparator.
//
// Usage:
//
//	benchgate -baseline BENCH_coupling.json -current /tmp/bench/BENCH_coupling.json
//
// CI runners differ wildly in absolute speed, so the gate is built on
// dimensionless figures that survive a host change:
//
//   - speedup_* ratios (batched vs unbatched cells/sec on the same host,
//     same process) must not fall more than -tolerance (default 15%)
//     below the baseline ratio;
//   - allocs-per-op figures must not grow beyond the baseline by more
//     than the tolerance plus a ±0.5 rounding epsilon — allocation
//     counts are deterministic, so this catches a lost pooling path
//     exactly;
//   - enabled_overhead_frac figures (the observability layer's enabled
//     vs disabled hot-path cost, from BENCH_obs.json) must not drift
//     above the baseline by more than an absolute 0.05 — the baselines
//     sit near zero, so a relative bound would gate noise, not cost;
//   - clk_cycles_per_sec (the coupled workload's committed sim-rate, from
//     make bench-all) must not fall below the baseline by more than the
//     tolerance;
//   - hdl_cells_per_sec (the compiled HDL kernel's committed cell rate on
//     the E1 RTL bench) must not fall below the baseline by more than the
//     tolerance; its hdl_cells_per_sec_event companion is informational,
//     and their ratio is gated through speedup_compiled_e1;
//   - nil_*_ns_op figures (the disabled-instrumentation primitives) must
//     not exceed the baseline by more than an absolute 2 ns — each
//     measures a single pointer test, so a relative bound would gate
//     timer noise;
//
// Absolute ns/op and cells/sec figures are printed for context but never
// gated. Exit status: 0 clean, 1 regression, 2 usage/parse error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baseline  = fs.String("baseline", "BENCH_coupling.json", "committed baseline report")
		current   = fs.String("current", "", "freshly measured report to gate")
		tolerance = fs.Float64("tolerance", 0.15, "allowed relative regression on gated figures")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *current == "" {
		fmt.Fprintln(stderr, "benchgate: -current is required")
		fs.Usage()
		return 2
	}
	base, err := loadFlat(*baseline)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: baseline: %v\n", err)
		return 2
	}
	cur, err := loadFlat(*current)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: current: %v\n", err)
		return 2
	}
	regressions := compare(base, cur, *tolerance, stdout)
	if regressions > 0 {
		fmt.Fprintf(stdout, "\nbenchgate: FAIL — %d regression(s) beyond %.0f%% tolerance\n",
			regressions, *tolerance*100)
		return 1
	}
	fmt.Fprintf(stdout, "\nbenchgate: ok — no gated figure regressed beyond %.0f%% tolerance\n",
		*tolerance*100)
	return 0
}

// loadFlat parses a report file into dotted-key/value pairs, so the gate
// works on any nesting of the schema and tolerates added fields.
func loadFlat(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	flat := make(map[string]float64)
	flatten("", raw, flat)
	return flat, nil
}

func flatten(prefix string, v any, out map[string]float64) {
	switch val := v.(type) {
	case map[string]any:
		for k, sub := range val {
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			flatten(key, sub, out)
		}
	case float64:
		out[prefix] = val
	}
}

// allocEpsilon absorbs ±0.5 of rounding in integer allocs/op figures.
const allocEpsilon = 0.5

// fracEpsilon is the absolute drift allowed on enabled_overhead_frac
// figures: overhead fractions hover around zero (a few percent either
// way), so a relative tolerance is meaningless — 0.05 means "the enabled
// observability path may not get 5 points of the hot path more expensive
// than the committed baseline".
const fracEpsilon = 0.05

// nsEpsilon is the absolute drift allowed on nil_*_ns_op figures: the
// disabled-instrumentation primitives (one pointer test) measure 0–1 ns,
// where any relative bound is pure noise. 2 ns of headroom still catches a
// disabled path that grew real work.
const nsEpsilon = 2.0

// gate classifies a flattened key: "higher" figures (speedups and the
// committed clk_cycles_per_sec sim-rate) fail when they fall below the
// baseline, "lower" figures (allocation counts) fail when they rise above
// it, "absdrift" figures (overhead fractions) fail when they exceed the
// baseline by fracEpsilon, "absns" figures (nil-handle primitives) fail
// when they exceed the baseline by nsEpsilon, "info" figures are printed
// unjudged.
func gate(key string) string {
	switch {
	case strings.HasPrefix(key, "speedup_"):
		return "higher"
	case strings.Contains(key, "clk_cycles_per_sec"):
		return "higher"
	case key == "hdl_cells_per_sec" || strings.HasSuffix(key, ".hdl_cells_per_sec"):
		// The compiled kernel's committed cell rate. Exact-key match on
		// purpose: hdl_cells_per_sec_event (the plain-kernel leg of the
		// same run) is context for the speedup and must stay ungated.
		return "higher"
	case strings.Contains(key, "allocs_per"):
		return "lower"
	case strings.Contains(key, "enabled_overhead_frac"):
		return "absdrift"
	case strings.Contains(key, "nil_") && strings.HasSuffix(key, "_ns_op"):
		return "absns"
	default:
		return "info"
	}
}

// compare prints every figure present in either report and returns the
// number of gated regressions.
func compare(base, cur map[string]float64, tol float64, out io.Writer) int {
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	for k := range cur {
		if _, ok := base[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	regressions := 0
	fmt.Fprintf(out, "%-42s %14s %14s %9s  %s\n", "figure", "baseline", "current", "delta", "verdict")
	for _, k := range keys {
		b, inBase := base[k]
		c, inCur := cur[k]
		if !inBase || !inCur {
			fmt.Fprintf(out, "%-42s %14s %14s %9s  %s\n",
				k, fmtVal(b, inBase), fmtVal(c, inCur), "-", "missing (info)")
			continue
		}
		delta := "-"
		if b != 0 {
			delta = fmt.Sprintf("%+.1f%%", (c/b-1)*100)
		}
		verdict := "info"
		switch gate(k) {
		case "higher":
			if c < b*(1-tol) {
				verdict = "REGRESSION"
				regressions++
			} else {
				verdict = "ok"
			}
		case "lower":
			if c > b*(1+tol)+allocEpsilon {
				verdict = "REGRESSION"
				regressions++
			} else {
				verdict = "ok"
			}
		case "absdrift":
			if c > b+fracEpsilon {
				verdict = "REGRESSION"
				regressions++
			} else {
				verdict = "ok"
			}
		case "absns":
			if c > b+nsEpsilon {
				verdict = "REGRESSION"
				regressions++
			} else {
				verdict = "ok"
			}
		}
		fmt.Fprintf(out, "%-42s %14s %14s %9s  %s\n", k, fmtVal(b, true), fmtVal(c, true), delta, verdict)
	}
	return regressions
}

func fmtVal(v float64, ok bool) string {
	if !ok {
		return "-"
	}
	if v == float64(int64(v)) && v < 1e6 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}
