package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// report builds a plausible BENCH_coupling.json with the given gated
// figures; the absolute rows scale off the speedups so the informational
// columns stay self-consistent.
func report(t *testing.T, dir, name string, speedupSmall, speedupLarge, encodeAllocs float64) string {
	t.Helper()
	unbatched := 30000.0
	doc := `{
  "unbatched_delta4": {"ns_per_cell": ` + f(unbatched) + `, "cells_per_sec": ` + f(1e9/unbatched) + `, "allocs_per_cell": 10},
  "batched_delta4": {"ns_per_cell": ` + f(unbatched/speedupSmall) + `, "cells_per_sec": ` + f(1e9/unbatched*speedupSmall) + `, "allocs_per_cell": 8},
  "unbatched_delta64": {"ns_per_cell": ` + f(unbatched) + `, "cells_per_sec": ` + f(1e9/unbatched) + `, "allocs_per_cell": 10},
  "batched_delta64": {"ns_per_cell": ` + f(unbatched/speedupLarge) + `, "cells_per_sec": ` + f(1e9/unbatched*speedupLarge) + `, "allocs_per_cell": 6},
  "batch_encode_64_allocs_per_op": ` + f(encodeAllocs) + `,
  "batch_encode_64_ns_per_op": 1700,
  "speedup_small_delta": ` + f(speedupSmall) + `,
  "speedup_large_delta": ` + f(speedupLarge) + `
}`
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// gateRun executes the comparator and returns its exit status and output.
func gateRun(t *testing.T, baseline, current string) (int, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run([]string{"-baseline", baseline, "-current", current}, &out, &errb)
	t.Logf("exit=%d\n%s%s", code, out.String(), errb.String())
	return code, out.String()
}

// TestGatePassesIdentical pins the trivial fixed point: a report gated
// against itself is clean.
func TestGatePassesIdentical(t *testing.T) {
	dir := t.TempDir()
	base := report(t, dir, "base.json", 2.8, 11.0, 0)
	if code, _ := gateRun(t, base, base); code != 0 {
		t.Fatalf("identical reports: exit %d, want 0", code)
	}
}

// TestGateFailsInjectedRegression is the acceptance check: a 20% drop in
// a gated speedup must fail the build, and the verdict line must name
// the regressed figure.
func TestGateFailsInjectedRegression(t *testing.T) {
	dir := t.TempDir()
	base := report(t, dir, "base.json", 2.8, 11.0, 0)
	cur := report(t, dir, "cur.json", 2.8*0.80, 11.0, 0)
	code, out := gateRun(t, base, cur)
	if code != 1 {
		t.Fatalf("20%% speedup regression: exit %d, want 1", code)
	}
	if !strings.Contains(out, "speedup_small_delta") || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("output does not name the regressed figure:\n%s", out)
	}
}

// TestGateToleratesNoise proves the 15% tolerance absorbs ordinary
// run-to-run jitter: a 10% dip passes.
func TestGateToleratesNoise(t *testing.T) {
	dir := t.TempDir()
	base := report(t, dir, "base.json", 2.8, 11.0, 0)
	cur := report(t, dir, "cur.json", 2.8*0.90, 11.0*0.92, 0)
	if code, _ := gateRun(t, base, cur); code != 0 {
		t.Fatalf("10%% dip within tolerance: exit %d, want 0", code)
	}
}

// TestGateFailsAllocGrowth pins the zero-alloc claim: the steady-state
// batch encoder growing from 0 to 1 alloc/op must fail even though the
// relative tolerance is meaningless at a zero baseline (the ±0.5
// epsilon, not the percentage, is the binding constraint).
func TestGateFailsAllocGrowth(t *testing.T) {
	dir := t.TempDir()
	base := report(t, dir, "base.json", 2.8, 11.0, 0)
	cur := report(t, dir, "cur.json", 2.8, 11.0, 1)
	code, out := gateRun(t, base, cur)
	if code != 1 {
		t.Fatalf("encode alloc growth 0 -> 1: exit %d, want 1", code)
	}
	if !strings.Contains(out, "batch_encode_64_allocs_per_op") {
		t.Fatalf("output does not name the alloc figure:\n%s", out)
	}
}

// TestGateImprovementPasses confirms the gate is one-sided: faster
// speedups and fewer allocations never fail.
func TestGateImprovementPasses(t *testing.T) {
	dir := t.TempDir()
	base := report(t, dir, "base.json", 2.8, 11.0, 1)
	cur := report(t, dir, "cur.json", 4.0, 15.0, 0)
	if code, _ := gateRun(t, base, cur); code != 0 {
		t.Fatalf("improvement: exit %d, want 0", code)
	}
}

// obsReport builds a BENCH_obs.json-shaped report with the given
// overhead fractions.
func obsReport(t *testing.T, dir, name string, hdlFrac, coverFrac float64) string {
	t.Helper()
	doc := `{
  "hdl_step": {"off_ns_op": 165, "on_ns_op": ` + f(165*(1+hdlFrac)) + `, "enabled_overhead_frac": ` + f(hdlFrac) + `},
  "cover_path": {"off_ns_op": 159, "on_ns_op": ` + f(159*(1+coverFrac)) + `, "enabled_overhead_frac": ` + f(coverFrac) + `},
  "nil_handle_ns_op": 0,
  "nil_cover_ns_op": 0
}`
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGateFailsOverheadDrift pins the observability-overhead contract:
// enabled_overhead_frac figures gate on absolute drift (baseline + 0.05),
// because the baselines hover near zero and a relative tolerance would be
// meaningless there.
func TestGateFailsOverheadDrift(t *testing.T) {
	dir := t.TempDir()
	base := obsReport(t, dir, "base.json", 0.01, 0.14)
	cur := obsReport(t, dir, "cur.json", 0.01, 0.22)
	code, out := gateRun(t, base, cur)
	if code != 1 {
		t.Fatalf("overhead drift 0.14 -> 0.22: exit %d, want 1", code)
	}
	if !strings.Contains(out, "cover_path.enabled_overhead_frac") {
		t.Fatalf("output does not name the drifted figure:\n%s", out)
	}
}

// TestGateToleratesOverheadJitter proves the absolute epsilon absorbs
// measurement noise on near-zero fractions — a swing that would be a
// huge relative change but a small absolute one passes.
func TestGateToleratesOverheadJitter(t *testing.T) {
	dir := t.TempDir()
	base := obsReport(t, dir, "base.json", 0.01, 0.14)
	cur := obsReport(t, dir, "cur.json", 0.04, 0.17)
	if code, _ := gateRun(t, base, cur); code != 0 {
		t.Fatalf("overhead jitter within epsilon: exit %d, want 0", code)
	}
}

// rateReport builds a report carrying the committed sim-rate and a
// disabled-profiler primitive, the two figures the profiler PR put under
// the gate.
func rateReport(t *testing.T, dir, name string, cyclesPerSec, nilProfileNs float64) string {
	t.Helper()
	doc := `{
  "clk_cycles_per_sec": ` + f(cyclesPerSec) + `,
  "nil_profile_ns_op": ` + f(nilProfileNs) + `
}`
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGateFailsSimRateDrop pins the sim-rate contract: clk_cycles_per_sec
// gates like a speedup — a 20% drop fails, a 10% dip passes.
func TestGateFailsSimRateDrop(t *testing.T) {
	dir := t.TempDir()
	base := rateReport(t, dir, "base.json", 120000, 0)
	cur := rateReport(t, dir, "cur.json", 120000*0.80, 0)
	code, out := gateRun(t, base, cur)
	if code != 1 {
		t.Fatalf("20%% sim-rate drop: exit %d, want 1", code)
	}
	if !strings.Contains(out, "clk_cycles_per_sec") || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("output does not name the regressed figure:\n%s", out)
	}
	cur = rateReport(t, dir, "cur2.json", 120000*0.90, 0)
	if code, _ := gateRun(t, base, cur); code != 0 {
		t.Fatalf("10%% sim-rate dip within tolerance: exit %d, want 0", code)
	}
}

// TestGateFailsNilProfileGrowth pins the ~0 ns disabled-profiler claim:
// nil_*_ns_op figures gate on absolute nanoseconds (baseline + 2 ns), so
// the disabled path growing real work (say 0 -> 5 ns) fails while timer
// jitter around zero passes.
func TestGateFailsNilProfileGrowth(t *testing.T) {
	dir := t.TempDir()
	base := rateReport(t, dir, "base.json", 120000, 0)
	cur := rateReport(t, dir, "cur.json", 120000, 5)
	code, out := gateRun(t, base, cur)
	if code != 1 {
		t.Fatalf("nil-profile growth 0 -> 5 ns: exit %d, want 1", code)
	}
	if !strings.Contains(out, "nil_profile_ns_op") {
		t.Fatalf("output does not name the grown figure:\n%s", out)
	}
	cur = rateReport(t, dir, "cur2.json", 120000, 1)
	if code, _ := gateRun(t, base, cur); code != 0 {
		t.Fatalf("1 ns jitter within epsilon: exit %d, want 0", code)
	}
}

// TestGateUsageErrors pins the exit-2 contract for missing inputs.
func TestGateUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("missing -current: exit %d, want 2", code)
	}
	if code := run([]string{"-current", "/nonexistent.json"}, &out, &errb); code != 2 {
		t.Fatalf("unreadable baseline: exit %d, want 2", code)
	}
}

// kernelReport builds a report carrying the compiled-kernel figures: the
// gated compiled cell rate, its informational event-kernel companion, and
// their speedup ratio.
func kernelReport(t *testing.T, dir, name string, compiled, event float64) string {
	t.Helper()
	doc := `{
  "hdl_cells_per_sec": ` + f(compiled) + `,
  "hdl_cells_per_sec_event": ` + f(event) + `,
  "speedup_compiled_e1": ` + f(compiled/event) + `
}`
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGateFailsCompiledRateRegression is the fast-path acceptance check:
// a 20% drop in the compiled kernel's committed cell rate must fail the
// build and name the figure.
func TestGateFailsCompiledRateRegression(t *testing.T) {
	dir := t.TempDir()
	base := kernelReport(t, dir, "base.json", 40000, 7500)
	cur := kernelReport(t, dir, "cur.json", 40000*0.80, 7500*0.80)
	code, out := gateRun(t, base, cur)
	if code != 1 {
		t.Fatalf("20%% compiled-rate regression: exit %d, want 1", code)
	}
	if !strings.Contains(out, "hdl_cells_per_sec") || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("output does not name the regressed figure:\n%s", out)
	}
}

// TestGateToleratesCompiledRateNoise proves a 10% dip stays inside the
// 15% tolerance.
func TestGateToleratesCompiledRateNoise(t *testing.T) {
	dir := t.TempDir()
	base := kernelReport(t, dir, "base.json", 40000, 7500)
	cur := kernelReport(t, dir, "cur.json", 40000*0.90, 7500*0.90)
	if code, _ := gateRun(t, base, cur); code != 0 {
		t.Fatalf("10%% dip within tolerance: exit %d, want 0", code)
	}
}

// TestGateCompiledSpeedupRegression pins the dimensionless claim: the
// compiled-vs-event ratio collapsing (compiled falls, event holds) fails
// through the speedup_ rule even on a host where absolute rates moved.
func TestGateCompiledSpeedupRegression(t *testing.T) {
	dir := t.TempDir()
	base := kernelReport(t, dir, "base.json", 40000, 7500)
	cur := kernelReport(t, dir, "cur.json", 40000*0.84, 7500)
	code, out := gateRun(t, base, cur)
	if code != 1 {
		t.Fatalf("speedup collapse: exit %d, want 1", code)
	}
	if !strings.Contains(out, "speedup_compiled_e1") {
		t.Fatalf("output does not name speedup_compiled_e1:\n%s", out)
	}
}

// TestGateIgnoresEventRateDrop proves the companion event-kernel figure
// is informational: it may fall arbitrarily without failing the gate, as
// long as the gated compiled figures hold.
func TestGateIgnoresEventRateDrop(t *testing.T) {
	dir := t.TempDir()
	base := kernelReport(t, dir, "base.json", 40000, 7500)
	cur := report2(t, dir, "cur.json", 40000, 7500*0.5, 40000/(7500*0.5))
	if code, _ := gateRun(t, base, cur); code != 0 {
		t.Fatalf("event-rate drop (info figure): exit %d, want 0", code)
	}
}

// report2 is kernelReport with an explicit speedup, for rows where the
// ratio moves independently.
func report2(t *testing.T, dir, name string, compiled, event, speedup float64) string {
	t.Helper()
	doc := `{
  "hdl_cells_per_sec": ` + f(compiled) + `,
  "hdl_cells_per_sec_event": ` + f(event) + `,
  "speedup_compiled_e1": ` + f(speedup) + `
}`
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}
