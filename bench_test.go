// Benchmarks regenerating every quantitative artifact of the paper's
// evaluation; one benchmark (family) per experiment of DESIGN.md §4.
// Run with: go test -bench=. -benchmem
package castanet_test

import (
	"fmt"
	"testing"

	"castanet/internal/coverify"
	"castanet/internal/dut"
	"castanet/internal/experiments"
	"castanet/internal/sim"
	"castanet/internal/traffic"
)

// benchTraffic offers CBR load on all four switch ports.
func benchTraffic(cellsPerPort uint64, load float64) [dut.SwitchPorts]coverify.PortTraffic {
	period := 50 * sim.Nanosecond
	cellTime := sim.Duration(float64(53*period) / load)
	var tr [dut.SwitchPorts]coverify.PortTraffic
	for p := 0; p < dut.SwitchPorts; p++ {
		tr[p] = coverify.PortTraffic{
			Model: &traffic.CBR{Interval: cellTime},
			VCs:   coverify.PortVCs(p),
			Cells: cellsPerPort,
		}
	}
	return tr
}

func benchHorizon(cellsPerPort uint64, load float64) sim.Time {
	period := 50 * sim.Nanosecond
	cellTime := sim.Duration(float64(53*period) / load)
	return sim.Time(cellsPerPort+4) * cellTime
}

// BenchmarkE1_CosimThroughput regenerates the co-simulation half of the
// §2 performance paragraph: cells through the 4-port switch plus global
// control unit, test bench at the network level. The paper reports ~30 s
// for 10,000 cells (~1,300 clock cycles/s) on an UltraSparc.
func BenchmarkE1_CosimThroughput(b *testing.B) {
	const cellsPerPort, load = 250, 0.8
	var cells, cycles uint64
	for i := 0; i < b.N; i++ {
		rig := coverify.NewSwitchRig(coverify.SwitchRigConfig{
			Seed:    uint64(i + 1),
			Traffic: benchTraffic(cellsPerPort, load),
		})
		if err := rig.Run(benchHorizon(cellsPerPort, load)); err != nil {
			b.Fatal(err)
		}
		if !rig.Cmp.Clean() {
			b.Fatalf("comparison not clean: %s", rig.Report())
		}
		cells += rig.Cmp.Matched
		cycles += rig.ClockCycles()
	}
	b.ReportMetric(float64(cells)/b.Elapsed().Seconds(), "cells/s")
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "clk-cycles/s")
}

// BenchmarkE1_PureRTLThroughput is the baseline: the same workload as a
// traditional RTL regression test bench (~300 clock cycles/s in the
// paper).
func BenchmarkE1_PureRTLThroughput(b *testing.B) {
	const cellsPerPort, load = 250, 0.8
	var cells, cycles uint64
	for i := 0; i < b.N; i++ {
		rig := coverify.NewRTLRig(coverify.SwitchRigConfig{
			Seed:    uint64(i + 1),
			Traffic: benchTraffic(cellsPerPort, load),
		})
		if err := rig.Run(); err != nil {
			b.Fatal(err)
		}
		if rig.CheckErrors() != 0 {
			b.Fatalf("checker errors: %s", rig.Report())
		}
		cells += rig.Checked()
		cycles += rig.ClockCycles()
	}
	b.ReportMetric(float64(cells)/b.Elapsed().Seconds(), "cells/s")
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "clk-cycles/s")
}

// BenchmarkE2_SyncWindow sweeps the conservative protocol's processing
// window δ (Fig. 3, §3.1), reporting message and window counts.
func BenchmarkE2_SyncWindow(b *testing.B) {
	period := 50 * sim.Nanosecond
	for _, deltaCycles := range []int{1, 8, 64, 512} {
		b.Run(fmt.Sprintf("delta=%d", deltaCycles), func(b *testing.B) {
			const cellsPerPort, load = 100, 0.6
			var msgs, windows uint64
			var maxLag sim.Duration
			for i := 0; i < b.N; i++ {
				rig := coverify.NewSwitchRig(coverify.SwitchRigConfig{
					Seed:      uint64(i + 1),
					Traffic:   benchTraffic(cellsPerPort, load),
					Delta:     sim.Duration(deltaCycles) * period,
					SyncEvery: 50 * sim.Microsecond,
				})
				if err := rig.Run(benchHorizon(cellsPerPort, load)); err != nil {
					b.Fatal(err)
				}
				if rig.Entity.CausalityErrors != 0 {
					b.Fatal("causality error under conservative protocol")
				}
				if !rig.Cmp.Clean() {
					b.Fatalf("comparison not clean: %s", rig.Report())
				}
				msgs += rig.Entity.Received
				windows += rig.Entity.Windows
				if rig.Entity.MaxLag > maxLag {
					maxLag = rig.Entity.MaxLag
				}
			}
			b.ReportMetric(float64(msgs)/float64(b.N), "messages/run")
			b.ReportMetric(float64(windows)/float64(b.N), "windows/run")
			b.ReportMetric(maxLag.Seconds()*1e6, "max-lag-us")
		})
	}
}

// BenchmarkE3_TimeScale measures the Fig.-4/§3.2 abstraction gap: HDL
// events and clock cycles per network-simulator event.
func BenchmarkE3_TimeScale(b *testing.B) {
	const cellsPerPort, load = 100, 0.25
	var netEv, hdlEv, cycles, cells uint64
	for i := 0; i < b.N; i++ {
		rig := coverify.NewSwitchRig(coverify.SwitchRigConfig{
			Seed:    uint64(i + 1),
			Traffic: benchTraffic(cellsPerPort, load),
		})
		if err := rig.Run(benchHorizon(cellsPerPort, load)); err != nil {
			b.Fatal(err)
		}
		netEv += rig.Net.Sched.Executed()
		hdlEv += rig.HDL.Events()
		cycles += rig.ClockCycles()
		cells += rig.Cmp.Matched
	}
	b.ReportMetric(float64(hdlEv)/float64(netEv), "hdl-events/net-event")
	b.ReportMetric(float64(cycles)/float64(cells), "clk-cycles/cell")
}

// BenchmarkE4_BoardCycle sweeps the hardware test cycle duration (§3.3,
// Fig. 5): deeper stimulus memory amortizes SCSI software activity.
func BenchmarkE4_BoardCycle(b *testing.B) {
	for _, depth := range []int{128, 1024, 8192} {
		b.Run(fmt.Sprintf("mem=%d", depth), func(b *testing.B) {
			const cellsPerPort, load = 100, 0.6
			var rtFrac float64
			var testCycles uint64
			for i := 0; i < b.N; i++ {
				rig, err := coverify.NewBoardRig(coverify.SwitchRigConfig{
					Seed:    uint64(i + 1),
					Traffic: benchTraffic(cellsPerPort, load),
				}, depth)
				if err != nil {
					b.Fatal(err)
				}
				if err := rig.Run(benchHorizon(cellsPerPort, load)); err != nil {
					b.Fatal(err)
				}
				if !rig.Cmp.Clean() {
					b.Fatalf("comparison not clean: %s", rig.Report())
				}
				rtFrac += rig.Board.RealTimeFraction()
				testCycles += rig.Board.TestCycles
			}
			b.ReportMetric(100*rtFrac/float64(b.N), "realtime-%")
			b.ReportMetric(float64(testCycles)/float64(b.N), "test-cycles/run")
		})
	}
}

// BenchmarkE5_Accounting regenerates the §4 case study: the accounting
// unit verified against its algorithmic reference.
func BenchmarkE5_Accounting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E5(uint64(i + 1))
		if r.CounterMismatches != 0 {
			b.Fatalf("counter mismatches: %d", r.CounterMismatches)
		}
	}
}

// BenchmarkE6_EventVsCycle regenerates the conclusions' ablation:
// event-driven versus cycle-based execution of the same switch.
func BenchmarkE6_EventVsCycle(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r := experiments.E6(400, uint64(i+1))
		if !r.Equivalent {
			b.Fatal("engines disagree")
		}
		speedup += r.Speedup
	}
	b.ReportMetric(speedup/float64(b.N), "cycle-vs-event-speedup")
}

// BenchmarkE7_Policing regenerates the UPC extension experiment: the RTL
// policer against the GCRA reference at twice the contract rate.
func BenchmarkE7_Policing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		vc := coverify.PortVCs(0)[0]
		rig := coverify.NewPolicerRig(coverify.PolicerRigConfig{
			Seed: uint64(i + 1),
			Contracts: []coverify.PolicerContract{
				{VC: vc, PeakInterval: 20 * sim.Microsecond, Tau: 2 * sim.Microsecond},
			},
			Sources: []coverify.PolicerSource{
				{Model: traffic.NewPoisson(100e3), VC: vc, Cells: 200},
			},
		})
		if err := rig.Run(3 * sim.Millisecond); err != nil {
			b.Fatal(err)
		}
		if !rig.Cmp.Clean() {
			b.Fatalf("policing disagreement: %s", rig.Report())
		}
	}
}

// BenchmarkE8_FaultCoverage regenerates the fault-injection extension: a
// 64-defect campaign under full-mesh traffic must reach 100% detection.
func BenchmarkE8_FaultCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.E8(uint64(i + 1))
		if r.Rows[len(r.Rows)-1].Coverage != 1.0 {
			b.Fatal("full-traffic campaign missed faults")
		}
	}
}
