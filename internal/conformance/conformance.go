// Package conformance generates and manages conformance test vectors, the
// "customized/standardized conformance test vectors" stimulus category of
// Fig. 1: deterministic cell sequences that probe protocol properties —
// header error handling, idle-cell transparency, boundary identifier
// values — rather than statistical behaviour. Vectors are raw 53-octet
// images so that deliberately invalid cells (bad HEC) can be expressed,
// and they serialize to a plain-text file format for reuse across tool
// versions.
package conformance

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"io"
	"strings"

	"castanet/internal/atm"
)

// Vector is one test stimulus: a raw cell image with an expectation.
type Vector struct {
	Name string
	// Image is the 53-octet cell, possibly deliberately invalid.
	Image [atm.CellBytes]byte
	// ExpectDiscard marks vectors the hardware must drop (bad HEC,
	// unknown VC when the table is fixed).
	ExpectDiscard bool
}

// Cell parses the image, returning nil for vectors that are invalid by
// construction.
func (v *Vector) Cell() *atm.Cell {
	c, err := atm.Unmarshal(v.Image)
	if err != nil {
		return nil
	}
	return c
}

// Suite is a named list of vectors.
type Suite struct {
	Name    string
	Vectors []Vector
}

// cellImage builds a valid image.
func cellImage(h atm.Header, seq uint32) [atm.CellBytes]byte {
	c := &atm.Cell{Header: h, Seq: seq}
	c.StampSeq()
	return c.Marshal()
}

// StandardSuite generates the standardized conformance vectors for a
// device configured with the given known connection. It exercises HEC
// corruption in every header octet, idle/unassigned cell transparency,
// and the boundary values of each header field.
func StandardSuite(known atm.VC) *Suite {
	s := &Suite{Name: "standard"}
	seq := uint32(0x51000000)
	add := func(name string, img [atm.CellBytes]byte, discard bool) {
		s.Vectors = append(s.Vectors, Vector{Name: name, Image: img, ExpectDiscard: discard})
	}

	// 1. A plain valid cell on the known connection.
	add("valid-baseline", cellImage(atm.Header{VPI: known.VPI, VCI: known.VCI}, seq), false)
	seq++

	// 2. HEC corruption: flip one bit in each of the five header octets.
	for b := 0; b < atm.HeaderBytes; b++ {
		img := cellImage(atm.Header{VPI: known.VPI, VCI: known.VCI}, seq)
		seq++
		img[b] ^= 0x01
		add(fmt.Sprintf("hec-corrupt-octet%d", b), img, true)
	}

	// 3. Idle and unassigned cells must be transparent (not switched, not
	// charged, not flagged).
	idle := atm.IdleCell()
	add("idle-cell", idle.Marshal(), true)
	un := &atm.Cell{}
	add("unassigned-cell", un.Marshal(), true)

	// 4. Header field boundary values on the known VC.
	for _, pti := range []byte{0, 1, atm.PTIEndToEndOAM, atm.PTIResourceMgmt, 7} {
		add(fmt.Sprintf("pti-%d", pti),
			cellImage(atm.Header{VPI: known.VPI, VCI: known.VCI, PTI: pti}, seq), false)
		seq++
	}
	for _, clp := range []byte{0, 1} {
		add(fmt.Sprintf("clp-%d", clp),
			cellImage(atm.Header{VPI: known.VPI, VCI: known.VCI, CLP: clp}, seq), false)
		seq++
	}
	add("gfc-max", cellImage(atm.Header{GFC: 0x0F, VPI: known.VPI, VCI: known.VCI}, seq), false)
	seq++

	// 5. Unknown connections at identifier extremes must be discarded (or
	// flagged) without disturbing the device.
	add("unknown-vpi-max", cellImage(atm.Header{VPI: 0xFF, VCI: known.VCI}, seq), true)
	seq++
	add("unknown-vci-max", cellImage(atm.Header{VPI: known.VPI, VCI: 0xFFFF}, seq), true)
	seq++
	add("unknown-vci-1", cellImage(atm.Header{VPI: known.VPI, VCI: 1}, seq), true)
	return s
}

// Write serializes the suite: "# name" comments, then one vector per line
// as "name flag hex(53 bytes)".
func (s *Suite) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# castanet conformance suite %q, %d vectors\n", s.Name, len(s.Vectors)); err != nil {
		return err
	}
	for _, v := range s.Vectors {
		flag := "pass"
		if v.ExpectDiscard {
			flag = "discard"
		}
		if _, err := fmt.Fprintf(bw, "%s %s %s\n", v.Name, flag, hex.EncodeToString(v.Image[:])); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a suite written by Write.
func Read(r io.Reader) (*Suite, error) {
	s := &Suite{Name: "file"}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("conformance: line %d: want 3 fields, got %d", line, len(fields))
		}
		var v Vector
		v.Name = fields[0]
		switch fields[1] {
		case "pass":
		case "discard":
			v.ExpectDiscard = true
		default:
			return nil, fmt.Errorf("conformance: line %d: bad flag %q", line, fields[1])
		}
		img, err := hex.DecodeString(fields[2])
		if err != nil || len(img) != atm.CellBytes {
			return nil, fmt.Errorf("conformance: line %d: bad image", line)
		}
		copy(v.Image[:], img)
		s.Vectors = append(s.Vectors, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// Result is the outcome of replaying one vector against a device.
type Result struct {
	Vector *Vector
	Passed bool
	Detail string
}

// Evaluate checks a vector's outcome: delivered reports whether the
// device forwarded/accepted the cell.
func Evaluate(v *Vector, delivered bool) Result {
	switch {
	case v.ExpectDiscard && delivered:
		return Result{Vector: v, Passed: false,
			Detail: fmt.Sprintf("%s: device accepted a cell it must discard", v.Name)}
	case !v.ExpectDiscard && !delivered:
		return Result{Vector: v, Passed: false,
			Detail: fmt.Sprintf("%s: device dropped a conforming cell", v.Name)}
	default:
		return Result{Vector: v, Passed: true}
	}
}
