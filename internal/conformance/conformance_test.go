package conformance

import (
	"strings"
	"testing"

	"castanet/internal/atm"
	"castanet/internal/hdl"
	"castanet/internal/mapping"
	"castanet/internal/sim"
)

func TestStandardSuiteStructure(t *testing.T) {
	s := StandardSuite(atm.VC{VPI: 1, VCI: 100})
	if len(s.Vectors) < 15 {
		t.Fatalf("suite has only %d vectors", len(s.Vectors))
	}
	names := map[string]bool{}
	var hecVectors, passVectors int
	for i := range s.Vectors {
		v := &s.Vectors[i]
		if names[v.Name] {
			t.Errorf("duplicate vector name %q", v.Name)
		}
		names[v.Name] = true
		if strings.HasPrefix(v.Name, "hec-corrupt") {
			hecVectors++
			if !v.ExpectDiscard {
				t.Errorf("%s must expect discard", v.Name)
			}
			if v.Cell() != nil {
				t.Errorf("%s parses as a valid cell", v.Name)
			}
		}
		if !v.ExpectDiscard {
			passVectors++
			if v.Cell() == nil {
				t.Errorf("%s expected to pass but is invalid", v.Name)
			}
		}
	}
	if hecVectors != atm.HeaderBytes {
		t.Errorf("hec vectors = %d, want %d", hecVectors, atm.HeaderBytes)
	}
	if passVectors == 0 {
		t.Error("no passing vectors")
	}
}

func TestSuiteFileRoundTrip(t *testing.T) {
	s := StandardSuite(atm.VC{VPI: 2, VCI: 200})
	var buf strings.Builder
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vectors) != len(s.Vectors) {
		t.Fatalf("round trip count %d != %d", len(got.Vectors), len(s.Vectors))
	}
	for i := range s.Vectors {
		if got.Vectors[i].Name != s.Vectors[i].Name ||
			got.Vectors[i].Image != s.Vectors[i].Image ||
			got.Vectors[i].ExpectDiscard != s.Vectors[i].ExpectDiscard {
			t.Fatalf("vector %d differs", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"onlytwo fields\n",
		"name badflag 00\n",
		"name pass zz\n",
		"name pass 0011\n", // wrong length
	} {
		if _, err := Read(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestEvaluate(t *testing.T) {
	v := &Vector{Name: "x", ExpectDiscard: true}
	if r := Evaluate(v, true); r.Passed {
		t.Error("discard vector delivered but passed")
	}
	if r := Evaluate(v, false); !r.Passed {
		t.Error("discard vector dropped but failed")
	}
	p := &Vector{Name: "y"}
	if r := Evaluate(p, true); !r.Passed {
		t.Error("pass vector delivered but failed")
	}
	if r := Evaluate(p, false); r.Passed {
		t.Error("pass vector dropped but passed")
	}
}

// TestSuiteAgainstHDLReader replays the full suite against the bit-level
// cell reader, checking that exactly the HEC-corrupted vectors are
// rejected at the delineation layer.
func TestSuiteAgainstHDLReader(t *testing.T) {
	s := StandardSuite(atm.VC{VPI: 1, VCI: 100})
	h := hdl.New()
	clk := h.Bit("clk", hdl.U)
	h.Clock(clk, 10*sim.Nanosecond)
	data := h.Signal("data", 8, hdl.U)
	sync := h.Bit("sync", hdl.U)
	dd := data.Driver("tb")
	ds := sync.Driver("tb")

	delivered := map[string]bool{}
	rd := mapping.NewCellPortReader(h, "rx", clk, data, sync)
	var order []string
	rd.OnCell = func(c *atm.Cell) {
		// Identify the vector by position in the replay order.
		delivered[order[rd.Received+rd.Errors-1]] = true
	}

	// Drive all vectors back to back; remember the name per cell slot.
	cycle := 0
	for i := range s.Vectors {
		v := &s.Vectors[i]
		order = append(order, v.Name)
		for b := 0; b < atm.CellBytes; b++ {
			b := b
			img := v.Image
			at := sim.Duration(cycle)*10*sim.Nanosecond + 2*sim.Nanosecond
			h.Schedule(at, func() {
				dd.SetUint(uint64(img[b]))
				if b == 0 {
					ds.SetBit(hdl.L1)
				} else {
					ds.SetBit(hdl.L0)
				}
			})
			cycle++
		}
	}
	if err := h.Run(sim.Duration(cycle+5) * 10 * sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	// The bit-level layer rejects exactly the HEC-corrupt vectors; idle
	// and unknown-VC filtering happens in the devices above it.
	for i := range s.Vectors {
		v := &s.Vectors[i]
		isHEC := strings.HasPrefix(v.Name, "hec-corrupt")
		if isHEC && delivered[v.Name] {
			t.Errorf("%s delivered despite bad HEC", v.Name)
		}
		if !isHEC && !delivered[v.Name] {
			t.Errorf("%s lost at delineation layer", v.Name)
		}
	}
	if int(rd.Errors) != atm.HeaderBytes {
		t.Errorf("HEC errors = %d, want %d", rd.Errors, atm.HeaderBytes)
	}
}
