package cosim

import (
	"fmt"
	"time"

	"castanet/internal/ipc"
)

// Reconnector is a self-healing Remote: when an operation fails with a
// transient error (timeout, closed link) it re-dials, replays the
// initialization handshake, and retries the failed operation with capped
// exponential backoff. Non-transient failures (corrupt, protocol) pass
// through untouched — retrying those would resend the same poison.
//
// The replay assumes the far side comes back with entity state matching
// the recorded handshake — a fresh server or a checkpointed one. Dial is
// responsible for producing such a peer.
type Reconnector struct {
	// Dial establishes a new transport to the entity server.
	Dial func() (ipc.Transport, error)
	// Deadline is the per-operation watchdog handed to the inner Remote.
	Deadline time.Duration
	// MaxAttempts bounds reconnect attempts per failed operation
	// (default 3).
	MaxAttempts int
	// Backoff is the wait before the first reconnect attempt (default
	// 10ms), doubling up to BackoffCap (default 1s).
	Backoff    time.Duration
	BackoffCap time.Duration
	// OnReconnect, when set, runs after the init replay on every new
	// session — the hook for replaying a registry handshake or restoring
	// peer configuration.
	OnReconnect func(r *Remote) error

	// Reconnects counts successful re-dials.
	Reconnects uint64

	cur  *Remote
	init *ipc.Message // recorded KindInit for session replay
}

func (c *Reconnector) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 3
	}
	return c.MaxAttempts
}

func (c *Reconnector) backoff() (first, cap time.Duration) {
	first, cap = c.Backoff, c.BackoffCap
	if first <= 0 {
		first = 10 * time.Millisecond
	}
	if cap <= 0 {
		cap = time.Second
	}
	return first, cap
}

// connect dials a fresh session. With replay set it re-sends the recorded
// init message and runs the OnReconnect hook, restoring the handshake
// state a new peer expects before arbitrary traffic.
func (c *Reconnector) connect(replay bool) error {
	tr, err := c.Dial()
	if err != nil {
		return coupErr("dial", err)
	}
	c.cur = &Remote{Transport: tr, Deadline: c.Deadline}
	if replay {
		if c.init != nil {
			if _, err := c.cur.Send(*c.init); err != nil {
				c.teardown()
				return err
			}
		}
		if c.OnReconnect != nil {
			if err := c.OnReconnect(c.cur); err != nil {
				c.teardown()
				return coupErr("reconnect", err)
			}
		}
	}
	return nil
}

func (c *Reconnector) teardown() {
	if c.cur != nil {
		c.cur.Close()
		c.cur = nil
	}
}

// do runs one coupling operation with the reconnect-and-retry policy.
// sendsInit marks operations that themselves carry the init message:
// replaying the recorded init before retrying those would deliver it
// twice.
func (c *Reconnector) do(sendsInit bool, op func(*Remote) ([]ipc.Message, error)) ([]ipc.Message, error) {
	if c.cur == nil {
		if err := c.connect(false); err != nil {
			return nil, err
		}
	}
	out, err := op(c.cur)
	if err == nil {
		return out, nil
	}
	if !IsTransient(err) {
		return nil, err
	}
	wait, cap := c.backoff()
	var lastErr = err
	for attempt := 1; attempt <= c.maxAttempts(); attempt++ {
		c.teardown()
		time.Sleep(wait)
		if wait *= 2; wait > cap {
			wait = cap
		}
		if cerr := c.connect(!sendsInit); cerr != nil {
			lastErr = cerr
			continue
		}
		c.Reconnects++
		out, err = op(c.cur)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if !IsTransient(err) {
			return nil, err
		}
	}
	return nil, &CouplingError{
		Class: ClassClosed,
		Op:    "reconnect",
		Err:   fmt.Errorf("gave up after %d attempts: %w", c.maxAttempts(), lastErr),
	}
}

// Send implements Coupling.
func (c *Reconnector) Send(msg ipc.Message) ([]ipc.Message, error) {
	if msg.Kind == ipc.KindInit {
		m := msg
		c.init = &m
	}
	return c.do(msg.Kind == ipc.KindInit, func(r *Remote) ([]ipc.Message, error) {
		return r.Send(msg)
	})
}

// SendBatch implements BatchCoupling with the same retry policy; the
// whole unit is retried as one operation, so a reconnect never splits a
// δ-window.
func (c *Reconnector) SendBatch(msgs []ipc.Message) ([]ipc.Message, error) {
	sendsInit := false
	for _, m := range msgs {
		if m.Kind == ipc.KindInit {
			mm := m
			c.init = &mm
			sendsInit = true
		}
	}
	return c.do(sendsInit, func(r *Remote) ([]ipc.Message, error) {
		return r.SendBatch(msgs)
	})
}

// Close implements Coupling.
func (c *Reconnector) Close() error {
	if c.cur == nil {
		return nil
	}
	err := c.cur.Close()
	c.cur = nil
	return err
}
