package cosim

import (
	"fmt"
	"time"

	"castanet/internal/ipc"
	"castanet/internal/mapping"
	"castanet/internal/netsim"
	"castanet/internal/obs"
	"castanet/internal/sim"
)

// Response is one decoded answer from the hardware side.
type Response struct {
	Kind  ipc.Kind
	Value interface{}
	// HWTime is the hardware simulator's clock when the response was
	// produced; by the lag invariant it never exceeds the network time at
	// which the response is observed.
	HWTime sim.Time
	// NetTime is the network simulator's clock when the response was
	// picked up.
	NetTime sim.Time
	// Trace is the causal cell-trace ID the hardware side attached to the
	// response (0 = untraced); rigs use it to close the waterfall at the
	// comparison engine.
	Trace uint64
}

// InterfaceProcess is the CASTANET interface model on the network-
// simulator side (Fig. 2): a netsim.Processor that initializes the peer,
// converts abstract packets to time-stamped messages, keeps the peer's
// clock fed through periodic sync messages, and surfaces hardware
// responses back into the network simulation.
type InterfaceProcess struct {
	// Coupling connects to the HDL entity or the hardware test board.
	Coupling Coupling
	// Registry supplies the conversion functions (abstract value <-> byte
	// payload) per message kind.
	Registry *mapping.Registry
	// Classify maps an arriving packet and its input port to a message
	// kind — one kind per input queue I_j of the entity. A nil Classify
	// sends every packet as KindData.
	Classify func(pkt *netsim.Packet, port int) ipc.Kind
	// OnResponse consumes each decoded hardware response. When nil,
	// responses with a registered codec are re-injected as packets on
	// output port 0 (if connected).
	OnResponse func(ctx *netsim.Ctx, r Response)
	// OnError receives coupling failures. When nil, the default records
	// the first failure (see Err), halts the network scheduler, and stops
	// pushing messages — a broken coupling terminates the run gracefully
	// and surfaces through the rig's Run return value instead of
	// panicking.
	OnError func(err error)
	// SyncEvery is the period of time-update messages that keep the
	// hardware clock advancing through traffic pauses. Zero disables
	// periodic sync.
	SyncEvery sim.Duration
	// Batch coalesces every message generated within one network instant
	// (one δ-window boundary) into a single coupling unit, flushed at the
	// end of the instant — the conservative protocol has already proven
	// all of them safe, so one round trip carries the whole window. It
	// takes effect when the Coupling implements BatchCoupling; otherwise
	// messages travel one per round trip as before. Event orderings and
	// the lag invariant are unchanged either way (see the batched-vs-
	// unbatched property test).
	Batch bool
	// TraceOf, when non-nil, mints the causal trace ID of an outbound
	// packet (0 = untraced). Sampled IDs ride the IPC envelope and record
	// the ipc.tx hop in Cells.
	TraceOf func(pkt *netsim.Packet, port int) uint64
	// Cells, when non-nil, collects the per-hop journeys of traced cells.
	Cells *obs.CellTracker
	// Recorder, when non-nil, receives flight-recorder notes for coupling
	// failures.
	Recorder *obs.Recorder

	// Sent counts data messages pushed to the hardware side.
	Sent uint64
	// Responses counts decoded responses.
	Responses uint64

	// err is the first coupling failure recorded by the default error
	// handling; once set, the process stops driving the coupling.
	err error

	// pending holds the messages of the current network instant awaiting
	// the end-of-instant flush; flushArmed tracks the zero-delay flush
	// timer. Only ever non-empty within a single instant.
	pending    []ipc.Message
	flushArmed bool

	// Observability handles (nil when uninstrumented; all nil-safe). The
	// process runs inside the sequential network scheduler, so plain field
	// access is fine.
	obsSent      *obs.Counter
	obsResponses *obs.Counter
	obsSyncs     *obs.Counter
	obsPending   *obs.Gauge
	obsBatches   *obs.Counter
	obsBatchSize *obs.Histogram
	obsFlushUs   *obs.Histogram
	tracer       *obs.Tracer
	coverBatch   *obs.CoverPoint
	phases       *obs.PhaseProfile // wall-time phase attribution (nil-safe)
}

// Instrument routes the interface-model statistics into the registry
// (cosim.iface.{sent,responses,syncs} counters) and records coupling
// round-trips as spans on the coupling track, sync messages as instants
// on the netsim track, and the network event-queue depth as counter
// samples. Either argument may be nil.
func (p *InterfaceProcess) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	p.tracer = tr
	if reg == nil {
		return
	}
	p.obsSent = reg.Counter("cosim.iface.sent")
	p.obsResponses = reg.Counter("cosim.iface.responses")
	p.obsSyncs = reg.Counter("cosim.iface.syncs")
	p.obsPending = reg.Gauge("cosim.iface.net_pending")
	p.obsBatches = reg.Counter("cosim.iface.batches")
	p.obsBatchSize = reg.Histogram("cosim.iface.batch_size", 1, 2, 4, 8, 16, 32, 64, 128)
	p.obsFlushUs = reg.Histogram("cosim.iface.flush_us", 1, 5, 10, 50, 100, 500, 1000, 5000)
}

// InstrumentCover registers the interface model's functional coverage
// under the "cosim.coupling" group: the δ-window batch-size band per
// flush, probing whether coupling windows ran both near-empty and
// saturated. Safe on a nil registry.
func (p *InterfaceProcess) InstrumentCover(c *obs.CoverRegistry) {
	p.coverBatch = c.Group("cosim.coupling").Range("batch_cells", 1, 4, 16, 64)
}

// InstrumentProfile routes the interface model's wall-time phase
// accounting into the profile: packet encoding, response decoding and
// coupling transport (with nested HDL time subtracted — a direct coupling
// executes the entity, and therefore the HDL kernel, inside Send). Safe
// with a nil profile.
func (p *InterfaceProcess) InstrumentProfile(prof *obs.PhaseProfile) {
	p.phases = prof
}

// Err returns the coupling failure that terminated the run, or nil. Rigs
// surface it through their Run return value.
func (p *InterfaceProcess) Err() error { return p.err }

// KindData is the default message kind used when no Classify function is
// configured.
const KindData = ipc.KindUser

// Init implements netsim.Processor: it sends the initialization message
// (time stamp zero) and arms the sync ticker.
func (p *InterfaceProcess) Init(ctx *netsim.Ctx) {
	p.push(ctx, ipc.Message{Kind: ipc.KindInit, Time: ctx.Now()})
	if p.SyncEvery > 0 {
		ctx.SetTimer(p.SyncEvery, syncTag{})
	}
}

type syncTag struct{}

// flushTag marks the end-of-instant flush of the coalesced message
// window. It is armed with a zero-delay timer when the first message of
// an instant is buffered: the scheduler runs same-timestamp events in
// scheduling order, so the flush executes after every arrival of the
// instant, at the same network time.
type flushTag struct{}

// respTag schedules delivery of a response whose hardware time stamp lies
// ahead of the network clock (the DUT produced it inside its granted
// δ-window). Scheduling it as a future self event keeps the network
// domain causal: events may be generated for future times, never past
// ones (Fig. 3).
type respTag struct{ r Response }

// Arrival implements netsim.Processor: encode and forward one packet.
func (p *InterfaceProcess) Arrival(ctx *netsim.Ctx, pkt *netsim.Packet, port int) {
	if p.err != nil {
		return
	}
	kind := KindData
	if p.Classify != nil {
		kind = p.Classify(pkt, port)
	}
	var encStart time.Time
	if p.phases != nil {
		encStart = time.Now()
	}
	data, err := p.Registry.Encode(kind, pkt.Data)
	if p.phases != nil {
		p.phases.Add(obs.PhaseEncode, time.Since(encStart))
	}
	if err != nil {
		p.fail(ctx, fmt.Errorf("cosim: encoding packet for kind %d: %w", kind, err))
		return
	}
	p.Sent++
	p.obsSent.Inc()
	msg := ipc.Message{Kind: kind, Time: ctx.Now(), Data: data}
	if p.TraceOf != nil {
		if id := p.TraceOf(pkt, port); p.Cells.Sampled(id) {
			msg.Trace = id
			p.Cells.Hop(id, obs.HopEnvelopeTx, int64(msg.Time))
		}
	}
	p.enqueue(ctx, msg)
}

// Timer implements netsim.Processor: periodic time updates and deferred
// response deliveries.
func (p *InterfaceProcess) Timer(ctx *netsim.Ctx, tag interface{}) {
	if p.err != nil {
		return
	}
	switch tg := tag.(type) {
	case syncTag:
		p.obsSyncs.Inc()
		if p.tracer.Enabled() {
			p.tracer.Emit(obs.TrackNetsim, "sync", int64(ctx.Now()))
			p.tracer.Sample(obs.TrackNetsim, "net.sched.pending", int64(ctx.Now()), float64(ctx.Net().Sched.Pending()))
		}
		if p.obsPending != nil {
			p.obsPending.Set(float64(ctx.Net().Sched.Pending()))
		}
		// A sync is a natural window boundary: when messages of this
		// instant are already buffered it joins their batch, otherwise it
		// travels alone.
		if len(p.pending) > 0 {
			p.pending = append(p.pending, ipc.Message{Kind: ipc.KindSync, Time: ctx.Now()})
			p.flush(ctx)
		} else {
			p.push(ctx, ipc.Message{Kind: ipc.KindSync, Time: ctx.Now()})
		}
		ctx.SetTimer(p.SyncEvery, syncTag{})
	case flushTag:
		p.flush(ctx)
	case respTag:
		p.deliver(ctx, tg.r)
	}
}

// enqueue routes one outgoing message: buffered until the end of the
// instant when batching is on and the coupling can carry units, pushed
// through a full round trip otherwise.
func (p *InterfaceProcess) enqueue(ctx *netsim.Ctx, msg ipc.Message) {
	if p.err != nil {
		return
	}
	if _, ok := p.Coupling.(BatchCoupling); !ok || !p.Batch {
		p.push(ctx, msg)
		return
	}
	p.pending = append(p.pending, msg)
	if !p.flushArmed {
		p.flushArmed = true
		ctx.SetTimer(0, flushTag{})
	}
}

// flush ships the buffered window as one unit and dispatches its
// responses — semantically identical to pushing each message in order,
// minus the per-message round trips.
func (p *InterfaceProcess) flush(ctx *netsim.Ctx) {
	p.flushArmed = false
	msgs := p.pending
	p.pending = p.pending[:0]
	if len(msgs) == 0 || p.err != nil {
		return
	}
	span := p.tracer.Enabled()
	if span {
		p.tracer.Begin(obs.TrackCoupling, "batch flush", int64(ctx.Now()))
	}
	start := time.Now()
	hdlBefore := p.phases.Ns(obs.PhaseHDL)
	resps, err := p.Coupling.(BatchCoupling).SendBatch(msgs)
	if p.phases != nil {
		nested := p.phases.Ns(obs.PhaseHDL) - hdlBefore
		p.phases.AddNs(obs.PhaseTransport, int64(time.Since(start))-nested)
	}
	p.obsBatches.Inc()
	if p.obsBatchSize != nil {
		p.obsBatchSize.Observe(float64(len(msgs)))
	}
	p.coverBatch.Observe(int64(len(msgs)))
	if p.obsFlushUs != nil {
		p.obsFlushUs.Observe(float64(time.Since(start).Microseconds()))
	}
	if span {
		p.tracer.End(obs.TrackCoupling, "batch flush", int64(ctx.Now()))
	}
	if err != nil {
		p.fail(ctx, err)
		return
	}
	p.handleResponses(ctx, resps)
}

// push sends one message and dispatches the responses it provoked. A
// process whose coupling already failed is inert: the run is terminating.
func (p *InterfaceProcess) push(ctx *netsim.Ctx, msg ipc.Message) {
	if p.err != nil {
		return
	}
	span := p.tracer.Enabled()
	if span {
		p.tracer.Begin(obs.TrackCoupling, kindSpanName(msg.Kind), int64(msg.Time))
	}
	var start time.Time
	var hdlBefore int64
	if p.phases != nil {
		start = time.Now()
		hdlBefore = p.phases.Ns(obs.PhaseHDL)
	}
	resps, err := p.Coupling.Send(msg)
	if p.phases != nil {
		nested := p.phases.Ns(obs.PhaseHDL) - hdlBefore
		p.phases.AddNs(obs.PhaseTransport, int64(time.Since(start))-nested)
	}
	if span {
		p.tracer.End(obs.TrackCoupling, kindSpanName(msg.Kind), int64(msg.Time))
	}
	if err != nil {
		p.fail(ctx, err)
		return
	}
	p.handleResponses(ctx, resps)
}

// handleResponses decodes and dispatches the responses one coupling
// operation provoked, in order.
func (p *InterfaceProcess) handleResponses(ctx *netsim.Ctx, resps []ipc.Message) {
	for _, rm := range resps {
		value, err := p.decode(rm)
		if err != nil {
			p.fail(ctx, err)
			continue
		}
		p.Responses++
		p.obsResponses.Inc()
		r := Response{Kind: rm.Kind, Value: value, HWTime: rm.Time, Trace: rm.Trace}
		if rm.Time > ctx.Now() {
			// The DUT produced this inside its δ-window, ahead of the
			// network clock: hand it back as a future event.
			ctx.SetTimer(rm.Time-ctx.Now(), respTag{r})
			continue
		}
		p.deliver(ctx, r)
	}
}

// deliver dispatches one response at the current network time.
func (p *InterfaceProcess) deliver(ctx *netsim.Ctx, r Response) {
	r.NetTime = ctx.Now()
	if p.OnResponse != nil {
		p.OnResponse(ctx, r)
	} else if ctx.Connected(0) {
		ctx.Send(ctx.Net().NewPacket("hw-response", r.Value, 0), 0)
	}
}

// kindSpanName names the coupling span for one message kind. The small
// kinds used by the protocol get stable names; user kinds are formatted.
func kindSpanName(k ipc.Kind) string {
	switch k {
	case ipc.KindInit:
		return "msg init"
	case ipc.KindSync:
		return "msg sync"
	}
	return fmt.Sprintf("msg k%d", k)
}

func (p *InterfaceProcess) decode(m ipc.Message) (interface{}, error) {
	if _, ok := p.Registry.Lookup(m.Kind); ok {
		if p.phases != nil {
			start := time.Now()
			v, err := p.Registry.Decode(m.Kind, m.Data)
			p.phases.Add(obs.PhaseDecode, time.Since(start))
			return v, err
		}
		return p.Registry.Decode(m.Kind, m.Data)
	}
	// Unregistered response kinds pass through as raw bytes.
	return m.Data, nil
}

// fail handles a coupling failure: user hook if configured, otherwise
// record the first error and stop the scheduler so the run terminates at
// the current simulation time with the error available via Err.
func (p *InterfaceProcess) fail(ctx *netsim.Ctx, err error) {
	now := int64(-1)
	if ctx != nil {
		now = int64(ctx.Now())
	}
	p.Recorder.Note("iface", now, "coupling failure: %v", err)
	if p.OnError != nil {
		p.OnError(err)
		return
	}
	if p.err == nil {
		p.err = err
	}
	if ctx != nil {
		ctx.Net().Sched.Stop()
	}
}
