package cosim

import (
	"testing"
	"testing/quick"

	"castanet/internal/atm"
	"castanet/internal/ipc"
	"castanet/internal/netsim"
	"castanet/internal/obs"
	"castanet/internal/sim"
)

func TestBatchedDirectLoopback(t *testing.T) {
	e := newLoopbackEntity()
	resps := runLoopbackBatch(t, &Direct{Entity: e}, e, 20, true)
	if len(resps) != 20 {
		t.Fatalf("responses = %d, want 20", len(resps))
	}
	for i, r := range resps {
		if r.Value.(*atm.Cell).Seq != uint32(i) {
			t.Fatalf("response %d out of order", i)
		}
	}
	if e.CausalityErrors != 0 {
		t.Errorf("causality errors: %d", e.CausalityErrors)
	}
	if !e.LagInvariantHolds() {
		t.Error("lag invariant broken at end of run")
	}
}

func TestBatchedRemoteLoopback(t *testing.T) {
	e := newLoopbackEntity()
	a, b := ipc.Pipe(16)
	srv := &EntityServer{Entity: e, Transport: b}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	resps := runLoopbackBatch(t, &Remote{Transport: a}, e, 20, true)
	a.Close()
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
	if len(resps) != 20 {
		t.Fatalf("responses = %d, want 20", len(resps))
	}
	for i, r := range resps {
		if r.Value.(*atm.Cell).Seq != uint32(i) {
			t.Fatalf("response %d out of order", i)
		}
	}
}

// TestBatchedEqualsUnbatched pins the tentpole safety claim on the
// standard loopback: batching the δ-window changes neither the response
// stream nor the hardware stamps, on either deployment.
func TestBatchedEqualsUnbatched(t *testing.T) {
	run := func(batch bool, remote bool) []Response {
		e := newLoopbackEntity()
		var c Coupling = &Direct{Entity: e}
		var closer func()
		if remote {
			a, b := ipc.Pipe(16)
			go (&EntityServer{Entity: e, Transport: b}).Serve()
			c = &Remote{Transport: a}
			closer = func() { a.Close() }
		}
		r := runLoopbackBatch(t, c, e, 25, batch)
		if closer != nil {
			closer()
		}
		return r
	}
	base := run(false, false)
	for _, cfg := range []struct {
		name          string
		batch, remote bool
	}{
		{"direct-batched", true, false},
		{"remote-unbatched", false, true},
		{"remote-batched", true, true},
	} {
		got := run(cfg.batch, cfg.remote)
		if len(got) != len(base) {
			t.Fatalf("%s: %d responses, want %d", cfg.name, len(got), len(base))
		}
		for i := range base {
			b, g := base[i], got[i]
			if b.Value.(*atm.Cell).Seq != g.Value.(*atm.Cell).Seq ||
				b.HWTime != g.HWTime || b.NetTime != g.NetTime {
				t.Fatalf("%s: response %d differs: %+v vs %+v", cfg.name, i, b, g)
			}
		}
	}
}

// burstGen spaces cells by an arbitrary gap sequence, including zero
// gaps that pile several arrivals into one network instant — the case
// the δ-window coalescing exists for.
type burstGen struct {
	gaps []byte
	i    int
}

func (g *burstGen) Next(*sim.RNG) sim.Duration {
	if len(g.gaps) == 0 {
		return sim.Microsecond
	}
	d := sim.Duration(g.gaps[g.i%len(g.gaps)]%8) * 700 * sim.Nanosecond
	g.i++
	return d
}

// runBurst drives the loopback with the given inter-cell gaps through
// the full remote stack and returns the observed response stream.
func runBurst(t *testing.T, gaps []byte, batch bool) []Response {
	t.Helper()
	e := newLoopbackEntity()
	a, b := ipc.Pipe(16)
	go (&EntityServer{Entity: e, Transport: b}).Serve()
	defer a.Close()
	n := netsim.New(3)
	var responses []Response
	iface := &InterfaceProcess{
		Coupling:  &Remote{Transport: a},
		Registry:  newRegistry(),
		SyncEvery: 50 * sim.Microsecond,
		Batch:     batch,
		OnResponse: func(ctx *netsim.Ctx, r Response) {
			if r.HWTime > r.NetTime {
				t.Errorf("lag violated: hw %v > net %v", r.HWTime, r.NetTime)
			}
			responses = append(responses, r)
		},
	}
	nCells := len(gaps)
	src := &netsim.Source{
		Gen:   &burstGen{gaps: gaps},
		Limit: uint64(nCells),
		Make: func(ctx *netsim.Ctx, i uint64) *netsim.Packet {
			c := &atm.Cell{Header: atm.Header{VPI: byte(i % 4), VCI: uint16(100 + i%8)}, Seq: uint32(i)}
			c.StampSeq()
			return ctx.Net().NewPacket("cell", c, atm.CellBytes*8)
		},
	}
	na := n.Node("src", src)
	nb := n.Node("castanet", iface)
	n.Connect(na, 0, nb, 0, netsim.LinkParams{})
	n.Run(sim.Time(nCells+40) * 6 * sim.Microsecond)
	if err := iface.Err(); err != nil {
		t.Fatalf("coupling failed: %v", err)
	}
	return responses
}

// Property: for ANY burst pattern — including many cells sharing one
// network instant — the batched coupling observes exactly the event
// ordering and stamps the unbatched one does. δ_j semantics and the
// HDL-lags-network invariant are checked inside the run.
func TestBatchedOrderingProperty(t *testing.T) {
	f := func(gaps []byte) bool {
		if len(gaps) > 24 {
			gaps = gaps[:24]
		}
		if len(gaps) == 0 {
			return true
		}
		plain := runBurst(t, gaps, false)
		batched := runBurst(t, gaps, true)
		if len(plain) != len(batched) {
			return false
		}
		for i := range plain {
			p, q := plain[i], batched[i]
			if p.Value.(*atm.Cell).Seq != q.Value.(*atm.Cell).Seq ||
				p.HWTime != q.HWTime || p.NetTime != q.NetTime || p.Kind != q.Kind {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchedReliableFaultStack proves the batch survives the resilient
// stack: one envelope per δ-window, acks covering whole batches, drops
// recovered by retransmission.
func TestBatchedReliableFaultStack(t *testing.T) {
	e := newLoopbackEntity()
	a, b := ipc.Pipe(64)
	client := ipc.NewReliable(ipc.NewFault(a, ipc.FaultConfig{
		Seed: 11,
		Send: ipc.DirFaults{Drop: 0.05},
		Recv: ipc.DirFaults{Drop: 0.05},
	}), ipc.ReliableConfig{})
	server := ipc.NewReliable(b, ipc.ReliableConfig{Auto: true})
	go (&EntityServer{Entity: e, Transport: server}).Serve()
	resps := runLoopbackBatch(t, &Remote{Transport: client}, e, 20, true)
	client.Close()
	if len(resps) != 20 {
		t.Fatalf("responses = %d, want 20", len(resps))
	}
	for i, r := range resps {
		if r.Value.(*atm.Cell).Seq != uint32(i) {
			t.Fatalf("response %d out of order", i)
		}
	}
}

// TestBatchServerErrorDiscardsUnit: a Deliver failure inside a batched
// unit answers kindError for the whole unit, and no half-built responses
// leak into the next exchange.
func TestBatchServerErrorDiscardsUnit(t *testing.T) {
	e := newLoopbackEntity()
	a, b := ipc.Pipe(16)
	go (&EntityServer{Entity: e, Transport: b}).Serve()
	defer a.Close()
	r := &Remote{Transport: a}
	cell := &atm.Cell{Header: atm.Header{VPI: 1, VCI: 1}}
	data, _ := (newRegistry()).Encode(KindData, cell)
	bad := ipc.Message{Kind: ipc.KindUser + 9, Time: 2 * sim.Microsecond} // undeclared kind
	good := ipc.Message{Kind: KindData, Time: 2 * sim.Microsecond, Data: data}
	if _, err := r.SendBatch([]ipc.Message{good, bad, good}); err == nil {
		t.Fatal("batched unit with undeclared kind accepted")
	}
	// The link keeps working and the poisoned unit's outbox is gone.
	out, err := r.Send(ipc.Message{Kind: ipc.KindSync, Time: 200 * sim.Microsecond})
	if err != nil {
		t.Fatalf("follow-up sync: %v", err)
	}
	for _, m := range out {
		if m.Kind != ipc.KindSync {
			t.Fatalf("stale response leaked after failed unit: %v", m)
		}
	}
}

// TestBatchMetrics: the flush path publishes batch count and size.
func TestBatchMetrics(t *testing.T) {
	e := newLoopbackEntity()
	reg := obs.NewRegistry()
	n := netsim.New(7)
	iface := &InterfaceProcess{
		Coupling:  &Direct{Entity: e},
		Registry:  newRegistry(),
		SyncEvery: 100 * sim.Microsecond,
		Batch:     true,
	}
	iface.Instrument(reg, nil)
	src := &netsim.Source{
		Gen:   cellGen{2726 * sim.Nanosecond},
		Limit: 10,
		Make: func(ctx *netsim.Ctx, i uint64) *netsim.Packet {
			c := &atm.Cell{Header: atm.Header{VPI: 1, VCI: 100}, Seq: uint32(i)}
			c.StampSeq()
			return ctx.Net().NewPacket("cell", c, atm.CellBytes*8)
		},
	}
	na := n.Node("src", src)
	nb := n.Node("castanet", iface)
	n.Connect(na, 0, nb, 0, netsim.LinkParams{})
	n.Run(50 * 2726 * sim.Nanosecond)
	if got := reg.Counter("cosim.iface.batches").Value(); got == 0 {
		t.Error("cosim.iface.batches not incremented")
	}
	if got := reg.Histogram("cosim.iface.batch_size").N(); got == 0 {
		t.Error("cosim.iface.batch_size not observed")
	}
}
