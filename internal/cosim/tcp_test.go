package cosim

import (
	"net"
	"testing"

	"castanet/internal/atm"
	"castanet/internal/ipc"
	"castanet/internal/mapping"
	"castanet/internal/sim"
)

// TestRemoteLoopbackOverTCP runs the coupling over a genuine TCP socket —
// the paper's UNIX-IPC deployment with the HDL engine in a separate
// process (here: goroutine behind a real network stack). Results must be
// identical to the in-process runs.
func TestRemoteLoopbackOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	e := newLoopbackEntity()
	srvDone := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			srvDone <- err
			return
		}
		srv := &EntityServer{Entity: e, Transport: ipc.NewConn(conn)}
		srvDone <- srv.Serve()
	}()

	tr, err := ipc.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	resps := runLoopback(t, &Remote{Transport: tr}, e, 20)
	tr.Close()
	if err := <-srvDone; err != nil {
		t.Fatalf("server: %v", err)
	}
	if len(resps) != 20 {
		t.Fatalf("responses = %d, want 20", len(resps))
	}
	for i, r := range resps {
		c := r.Value.(*atm.Cell)
		if c.Seq != uint32(i) {
			t.Errorf("response %d: seq %d", i, c.Seq)
		}
		if r.HWTime > r.NetTime {
			t.Errorf("response %d violates lag: hw %v > net %v", i, r.HWTime, r.NetTime)
		}
	}
	if e.CausalityErrors != 0 {
		t.Errorf("causality errors over TCP: %d", e.CausalityErrors)
	}
}

// TestRemoteErrorPropagation checks the error path of the message
// protocol: a message for an undeclared input kind is rejected by the
// entity, travels back as an error frame, and surfaces as a Go error at
// the client — without killing the server, which keeps serving.
func TestRemoteErrorPropagation(t *testing.T) {
	e := newLoopbackEntity()
	a, b := ipc.Pipe(8)
	go (&EntityServer{Entity: e, Transport: b}).Serve()
	defer a.Close()
	remote := &Remote{Transport: a}

	if _, err := remote.Send(ipc.Message{Kind: ipc.KindUser + 9, Time: sim.Microsecond}); err == nil {
		t.Fatal("undeclared kind did not error")
	}
	// The server survives and processes valid traffic afterwards.
	cell := &atm.Cell{Header: atm.Header{VPI: 1, VCI: 2}, Seq: 3}
	cell.StampSeq()
	data, _ := (mapping.CellCodec{}).Encode(cell)
	r1, err := remote.Send(ipc.Message{Kind: KindData, Time: 2 * sim.Microsecond, Data: data})
	if err != nil {
		t.Fatalf("valid message after error failed: %v", err)
	}
	r2, err := remote.Send(ipc.Message{Kind: ipc.KindSync, Time: 200 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1)+len(r2) != 1 {
		t.Fatalf("responses = %d+%d, want 1 total", len(r1), len(r2))
	}
}
