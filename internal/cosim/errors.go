package cosim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"

	"castanet/internal/ipc"
)

// ErrorClass partitions coupling failures into the four failure domains
// of the link: each calls for a different reaction (retry, abort, clean
// shutdown, bug report).
type ErrorClass int

const (
	// ClassTimeout: the peer did not answer within the configured
	// interval — watchdog expiry, retransmit exhaustion, heartbeat loss.
	// Transient: a Reconnector may recover it.
	ClassTimeout ErrorClass = iota
	// ClassClosed: the link was torn down (locally or by the peer).
	// Transient in the same sense.
	ClassClosed
	// ClassCorrupt: a frame failed validation and no reliability envelope
	// was there to recover it. Results downstream are suspect.
	ClassCorrupt
	// ClassProtocol: the peer answered with something the protocol does
	// not allow (undeclared kind, entity rejection, causality violation).
	// Not transient — retrying resends the same poison.
	ClassProtocol
)

// String implements fmt.Stringer.
func (c ErrorClass) String() string {
	switch c {
	case ClassTimeout:
		return "timeout"
	case ClassClosed:
		return "closed"
	case ClassCorrupt:
		return "corrupt"
	case ClassProtocol:
		return "protocol"
	}
	return fmt.Sprintf("ErrorClass(%d)", int(c))
}

// CouplingError is the structured failure type of the coupling layer: a
// class for dispatch, the operation that failed, and the underlying
// cause. It replaces the stringly errors that previously leaked out of
// Remote and EntityServer.
type CouplingError struct {
	Class ErrorClass
	Op    string // "send", "recv", "serve", "dial", "entity", "reconnect"
	Err   error
}

// Error implements error.
func (e *CouplingError) Error() string {
	return fmt.Sprintf("cosim: coupling %s during %s: %v", e.Class, e.Op, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *CouplingError) Unwrap() error { return e.Err }

// Classify maps an underlying transport or protocol error to its class.
func Classify(err error) ErrorClass {
	switch {
	case errors.Is(err, ipc.ErrTimeout):
		return ClassTimeout
	case errors.Is(err, ipc.ErrClosed), errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF):
		return ClassClosed
	case errors.Is(err, ipc.ErrBadFrame):
		return ClassCorrupt
	default:
		// Network-stack failures (reset, refused, timeout) count as link
		// loss: the message never legally arrived, so a reconnect may
		// recover.
		var ne net.Error
		if errors.As(err, &ne) {
			if ne.Timeout() {
				return ClassTimeout
			}
			return ClassClosed
		}
		var oe *net.OpError
		if errors.As(err, &oe) {
			return ClassClosed
		}
		return ClassProtocol
	}
}

// coupErr wraps err as a CouplingError unless it already is one.
func coupErr(op string, err error) error {
	var ce *CouplingError
	if errors.As(err, &ce) {
		return err
	}
	return &CouplingError{Class: Classify(err), Op: op, Err: err}
}

// IsTransient reports whether the failure is worth a reconnect attempt:
// timeouts and closed links may heal; corrupt or protocol failures will
// only repeat.
func IsTransient(err error) bool {
	var ce *CouplingError
	if errors.As(err, &ce) {
		return ce.Class == ClassTimeout || ce.Class == ClassClosed
	}
	c := Classify(err)
	return c == ClassTimeout || c == ClassClosed
}

// Retryable reports whether a failed run may be re-attempted by a
// supervisor: the failure came from the infrastructure (a hung or torn
// link), not from the design under verification. A verification mismatch
// is the product, not noise, so ClassCorrupt, ClassProtocol and every
// untyped error are final. Errors can override the classification by
// implementing Retryable() bool (see MarkRetryable).
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var r interface{ Retryable() bool }
	if errors.As(err, &r) {
		return r.Retryable()
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ce *CouplingError
	if errors.As(err, &ce) {
		return ce.Class == ClassTimeout || ce.Class == ClassClosed
	}
	return false
}

// retryableError brands an error infra-transient for Retryable while
// leaving errors.Is/As identity and text untouched.
type retryableError struct{ err error }

func (e *retryableError) Error() string   { return e.err.Error() }
func (e *retryableError) Unwrap() error   { return e.err }
func (e *retryableError) Retryable() bool { return true }

// MarkRetryable wraps err so Retryable reports true for it, for
// infrastructure failures that carry no CouplingError type of their own.
// A nil err passes through.
func MarkRetryable(err error) error {
	if err == nil {
		return nil
	}
	return &retryableError{err: err}
}
