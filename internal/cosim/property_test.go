package cosim

import (
	"testing"
	"testing/quick"

	"castanet/internal/atm"
	"castanet/internal/ipc"
	"castanet/internal/mapping"
	"castanet/internal/sim"
)

// Property: for ANY non-decreasing sequence of message stamps (data or
// sync, any interleaving), the conservative protocol never reports a
// causality error, never deadlocks (Deliver always returns), and keeps
// the lag invariant.
func TestProtocolSafetyProperty(t *testing.T) {
	cell := &atm.Cell{Header: atm.Header{VPI: 1, VCI: 1}}
	data, _ := (mapping.CellCodec{}).Encode(cell)
	f := func(gaps []uint8, kinds []bool) bool {
		e := newLoopbackEntity()
		now := sim.Time(0)
		for i, g := range gaps {
			now += sim.Duration(g) * 100 * sim.Nanosecond
			msg := ipc.Message{Kind: ipc.KindSync, Time: now}
			if i < len(kinds) && kinds[i] {
				msg = ipc.Message{Kind: KindData, Time: now, Data: data}
			}
			if err := e.Deliver(msg); err != nil {
				return false
			}
			if !e.LagInvariantHolds() {
				return false
			}
		}
		return e.CausalityErrors == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a decreasing stamp anywhere is always rejected and never
// corrupts subsequent processing.
func TestProtocolRejectsPastProperty(t *testing.T) {
	f := func(fwd, back uint16) bool {
		e := newLoopbackEntity()
		// Bounded horizon so the property check stays fast: up to ~200us
		// of hardware time per case.
		t1 := sim.Duration(fwd%200+2) * sim.Microsecond
		if err := e.Deliver(ipc.Message{Kind: ipc.KindSync, Time: t1}); err != nil {
			return false
		}
		past := t1 - sim.Duration(back%1000+1)*sim.Nanosecond
		if err := e.Deliver(ipc.Message{Kind: ipc.KindSync, Time: past}); err == nil {
			return false // must be rejected
		}
		// The entity keeps working afterwards.
		return e.Deliver(ipc.Message{Kind: ipc.KindSync, Time: t1 + sim.Microsecond}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
