// Package cosim is CASTANET's core: the coupling between the
// discrete-event network simulator (package netsim, standing in for OPNET)
// and the event-driven HDL simulator (package hdl, standing in for
// Synopsys VSS) or the hardware test board (package board).
//
// The coupling follows §3 of the paper:
//
//   - An InterfaceProcess on the network-simulator side initializes the
//     peer engine and exchanges time-stamped messages.
//   - An Entity on the HDL side receives those messages, performs signal
//     conditioning through the abstraction interfaces of package mapping,
//     and returns the device-under-test responses.
//   - Synchronization is conservative (§3.1): the HDL simulator may only
//     process events strictly older than the latest time stamp received
//     from the network simulator, then advances through a bounded timing
//     window derived from the per-message-type processing delays δ_j.
//     The HDL clock therefore always lags the network clock and no
//     rollback is ever needed; deadlock is impossible because every
//     message grants a new window.
package cosim

import (
	"fmt"
	"sort"
	"time"

	"castanet/internal/hdl"
	"castanet/internal/ipc"
	"castanet/internal/obs"
	"castanet/internal/sim"
)

// ApplyFunc drives one received message into the hardware model (signal
// conditioning): typically it decodes the payload and enqueues it on a
// mapping.CellPortWriter or pokes configuration registers.
type ApplyFunc func(e *Entity, msg ipc.Message) error

// inQueue is one time-stamped input message queue I_j of §3.1.
type inQueue struct {
	kind  ipc.Kind
	delta sim.Duration // δ_j: processing window granted per message
	apply ApplyFunc
	msgs  []ipc.Message
	last  sim.Time   // newest stamp seen for this queue
	depth *obs.Gauge // queue occupancy (nil until Instrument)
}

// Entity is the co-simulation entity instantiated inside the HDL
// simulation (Fig. 2). It owns the synchronization state and the outbox of
// responses travelling back to the network simulator.
type Entity struct {
	HDL *hdl.Simulator

	queues []*inQueue
	byKind map[ipc.Kind]*inQueue

	tcur sim.Time // current co-simulation time = newest stamp received
	gmin sim.Time // global causality lower bound

	outbox []ipc.Message

	// Statistics.
	Received        uint64 // messages delivered
	Applied         uint64 // data messages driven into the model
	Windows         uint64 // timing windows executed
	CausalityErrors uint64 // messages arriving in the simulator's past

	// MaxLag records the largest observed gap between an incoming message
	// stamp and the hardware clock — how far the hardware trails the
	// network simulator under the conservative protocol.
	MaxLag sim.Duration

	// FreezeLagStats suspends MaxLag recording; the end-of-run drain sets
	// it so the artificial final fast-forward does not dominate the
	// steady-state figure.
	FreezeLagStats bool

	// Cells, when non-nil, records the entity.rx hop of traced messages
	// (messages whose Trace ID is sampled by the tracker).
	Cells *obs.CellTracker
	// Recorder, when non-nil, receives flight-recorder notes for protocol
	// anomalies (causality violations, undeclared kinds).
	Recorder *obs.Recorder

	// Observability handles (nil when uninstrumented; all nil-safe). The
	// entity runs single-threaded inside the simulation loop, so plain
	// field access is fine.
	obsReceived  *obs.Counter
	obsApplied   *obs.Counter
	obsWindows   *obs.Counter
	obsCausality *obs.Counter
	obsLag       *obs.Gauge
	obsLagHist   *obs.Histogram
	obsReg       *obs.Registry // for per-kind queue gauges declared after Instrument
	tracer       *obs.Tracer
	coverLag     *obs.CoverPoint
	phases       *obs.PhaseProfile // wall-time phase attribution (nil-safe)
}

// lagHistBoundsPS are the lag-histogram bucket bounds in picoseconds:
// 1 ns … 1 ms in decades, spanning sub-cycle jitter up to a stalled link.
var lagHistBoundsPS = []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}

// Instrument routes the entity's synchronization statistics into the
// registry and δ-window spans into the tracer. Metrics:
//
//	cosim.entity.{received,applied,windows,causality_errors}  counters
//	cosim.entity.lag_ps            gauge, last observed stamp-vs-HDL lag
//	cosim.entity.lag_hist_ps       histogram of the same lag
//	cosim.queue.k<kind>.depth      gauge per declared input queue
//
// Either argument may be nil. Call before or after Input declarations;
// queues declared later pick up their depth gauge automatically.
func (e *Entity) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	e.tracer = tr
	if reg == nil {
		return
	}
	e.obsReg = reg
	e.obsReceived = reg.Counter("cosim.entity.received")
	e.obsApplied = reg.Counter("cosim.entity.applied")
	e.obsWindows = reg.Counter("cosim.entity.windows")
	e.obsCausality = reg.Counter("cosim.entity.causality_errors")
	e.obsLag = reg.Gauge("cosim.entity.lag_ps")
	e.obsLagHist = reg.Histogram("cosim.entity.lag_hist_ps", lagHistBoundsPS...)
	for _, q := range e.queues {
		q.depth = reg.Gauge(fmt.Sprintf("cosim.queue.k%d.depth", q.kind))
	}
}

// InstrumentCover registers the entity's functional coverage under the
// "cosim.sync" group: a picosecond lag band per delivered stamp, probing
// whether the campaign exercised both tight and slack synchronization
// windows. Safe on a nil registry.
func (e *Entity) InstrumentCover(c *obs.CoverRegistry) {
	e.coverLag = c.Group("cosim.sync").Range("lag_ps", 0, 1000000, 10000000, 100000000)
}

// InstrumentProfile routes the entity's wall-time phase accounting into
// the profile: every HDL execution window (runBefore/runThrough) adds to
// the PhaseHDL accumulator. Safe with a nil profile.
func (e *Entity) InstrumentProfile(p *obs.PhaseProfile) {
	e.phases = p
}

// NewEntity wraps an HDL simulator. Input queues are declared with Input
// before the first Deliver.
func NewEntity(h *hdl.Simulator) *Entity {
	return &Entity{HDL: h, byKind: make(map[ipc.Kind]*inQueue)}
}

// Input declares an input message type: its queue, its processing delay
// δ (the maximum number of simulated time the hardware needs to consume
// one such message — clock cycles × period), and the signal-conditioning
// function.
func (e *Entity) Input(kind ipc.Kind, delta sim.Duration, apply ApplyFunc) {
	if _, dup := e.byKind[kind]; dup {
		panic(fmt.Sprintf("cosim: input kind %d declared twice", kind))
	}
	if delta < 0 {
		panic("cosim: negative processing delay")
	}
	q := &inQueue{kind: kind, delta: delta, apply: apply}
	if e.obsReg != nil {
		q.depth = e.obsReg.Gauge(fmt.Sprintf("cosim.queue.k%d.depth", kind))
	}
	e.byKind[kind] = q
	e.queues = append(e.queues, q)
	sort.Slice(e.queues, func(i, j int) bool { return e.queues[i].kind < e.queues[j].kind })
}

// minDelta returns the smallest processing delay over all declared input
// types — the window granted after applying a batch of messages (§3.1:
// "the local simulation time is advanced by the minimum of each message
// type's processing delay").
func (e *Entity) minDelta() sim.Duration {
	if len(e.queues) == 0 {
		return 0
	}
	min := e.queues[0].delta
	for _, q := range e.queues[1:] {
		if q.delta < min {
			min = q.delta
		}
	}
	return min
}

// Now returns the co-simulation time (the newest network-simulator stamp).
func (e *Entity) Now() sim.Time { return e.tcur }

// Emit queues a response message stamped with the current HDL time.
// Device-output callbacks (e.g. a CellPortReader's OnCell) call it.
func (e *Entity) Emit(kind ipc.Kind, data []byte) {
	e.EmitTraced(kind, data, 0)
}

// EmitTraced queues a response carrying a causal trace ID, so the
// response leg of a traced cell's journey stays linked through the
// coupling (0 behaves like Emit).
func (e *Entity) EmitTraced(kind ipc.Kind, data []byte, trace uint64) {
	e.outbox = append(e.outbox, ipc.Message{Kind: kind, Time: e.HDL.Now(), Data: data, Trace: trace})
}

// TakeOutbox returns and clears the accumulated responses.
func (e *Entity) TakeOutbox() []ipc.Message {
	out := e.outbox
	e.outbox = nil
	return out
}

// ErrCausality is wrapped by Deliver when a message is stamped before an
// already granted horizon — the Fig.-3 error the protocol exists to
// prevent.
var ErrCausality = fmt.Errorf("cosim: causality violation")

// Deliver feeds one time-stamped message into the entity, advancing the
// HDL simulation according to the conservative protocol:
//
//  1. A stamp in the past of the granted horizon is a causality error.
//  2. A newer stamp t_k lets the HDL simulator process every event
//     strictly older than t_k, then sets the co-simulation time to t_k.
//  3. Data messages join their queue I_j; every batch of queue heads that
//     the global bound proves complete is applied, after which the HDL
//     simulator runs through a window of min_j δ_j to process it.
func (e *Entity) Deliver(msg ipc.Message) error {
	e.Received++
	e.obsReceived.Inc()
	if msg.Time < e.gmin {
		e.CausalityErrors++
		e.obsCausality.Inc()
		e.Recorder.NoteCell(msg.Trace, "entity", int64(msg.Time),
			"causality violation: kind %d stamped before horizon %v", msg.Kind, e.gmin)
		return fmt.Errorf("%w: stamp %v before horizon %v", ErrCausality, msg.Time, e.gmin)
	}
	if msg.Trace != 0 {
		e.Cells.Hop(msg.Trace, obs.HopEntityRx, int64(msg.Time))
	}
	// Record how far the hardware clock trails the incoming network time
	// stamp before the new window is granted — the lag the conservative
	// protocol maintains (bounded by the message/sync interval).
	lag := msg.Time - e.HDL.Now()
	if lag > e.MaxLag && !e.FreezeLagStats {
		e.MaxLag = lag
	}
	if e.obsLag != nil && !e.FreezeLagStats {
		e.obsLag.Set(float64(lag))
		e.obsLagHist.Observe(float64(lag))
	}
	if !e.FreezeLagStats {
		e.coverLag.Observe(int64(lag))
	}
	if msg.Time > e.tcur {
		if err := e.runBefore(msg.Time); err != nil {
			return err
		}
		e.tcur = msg.Time
	}
	e.gmin = msg.Time
	switch msg.Kind {
	case ipc.KindSync:
		// Pure time update: no data, the horizon advance above is all.
		return nil
	case ipc.KindInit:
		// Initialization is handled by the coupling setup; accept silently
		// so remote servers can log it.
		return nil
	}
	q, ok := e.byKind[msg.Kind]
	if !ok {
		e.Recorder.NoteCell(msg.Trace, "entity", int64(msg.Time),
			"message for undeclared input kind %d", msg.Kind)
		return fmt.Errorf("cosim: message for undeclared input kind %d", msg.Kind)
	}
	q.msgs = append(q.msgs, msg)
	q.last = msg.Time
	q.depth.Set(float64(len(q.msgs)))
	return e.drainReady()
}

// runBefore executes HDL events with time stamps strictly smaller than t
// (§3.1: "allowed to process all events with a time stamp smaller than
// t_k, but not equal").
func (e *Entity) runBefore(t sim.Time) error {
	if e.phases != nil {
		defer e.phaseHDL(time.Now())
	}
	for e.HDL.NextTime() < t {
		if _, err := e.HDL.Step(); err != nil {
			return err
		}
	}
	return nil
}

// runThrough executes HDL events up to and including t.
func (e *Entity) runThrough(t sim.Time) error {
	if e.phases != nil {
		defer e.phaseHDL(time.Now())
	}
	for e.HDL.NextTime() <= t {
		if _, err := e.HDL.Step(); err != nil {
			return err
		}
	}
	return nil
}

// phaseHDL attributes the elapsed wall time since start to the HDL phase.
func (e *Entity) phaseHDL(start time.Time) {
	e.phases.Add(obs.PhaseHDL, time.Since(start))
}

// drainReady applies every queued message whose stamp the global bound
// has proven complete (all queues have seen this stamp or newer), batch by
// batch in stamp order, granting a δ-window after each batch.
func (e *Entity) drainReady() error {
	for {
		// Earliest queued stamp.
		var t sim.Time = sim.Never
		for _, q := range e.queues {
			if len(q.msgs) > 0 && q.msgs[0].Time < t {
				t = q.msgs[0].Time
			}
		}
		if t == sim.Never {
			return nil
		}
		if t > e.gmin {
			// Cannot happen with a single FIFO channel (stamps are
			// monotone), kept for multi-channel couplings: wait for the
			// bound to advance.
			return nil
		}
		// Apply every head message with stamp t, in kind order, FIFO
		// within a queue.
		for _, q := range e.queues {
			popped := false
			for len(q.msgs) > 0 && q.msgs[0].Time == t {
				m := q.msgs[0]
				q.msgs = q.msgs[1:]
				popped = true
				if q.apply != nil {
					if err := q.apply(e, m); err != nil {
						return err
					}
				}
				e.Applied++
				e.obsApplied.Inc()
			}
			if popped {
				q.depth.Set(float64(len(q.msgs)))
			}
		}
		// Grant the processing window.
		e.Windows++
		e.obsWindows.Inc()
		end := t + e.minDelta()
		// The span covers hardware time actually executed: when stimuli
		// arrive closer together than δ the nominal windows overlap, but
		// the kernel never regresses, so clamp to HDL.Now() on both ends
		// to keep the track's spans monotone.
		begin := max(t, e.HDL.Now())
		e.tracer.Begin(obs.TrackHDL, "delta-window", int64(begin))
		err := e.runThrough(end)
		e.tracer.End(obs.TrackHDL, "delta-window", int64(max(begin, e.HDL.Now())))
		if err != nil {
			return err
		}
	}
}

// Flush grants the hardware a final window up to the given network time,
// used at end of simulation to let in-flight cells drain out of the DUT.
func (e *Entity) Flush(until sim.Time) error {
	if until > e.tcur {
		e.tcur = until
		e.gmin = until
	}
	return e.runBefore(e.tcur)
}

// LagInvariantHolds reports whether the HDL clock is at or behind the
// co-simulation horizon plus one processing window — the paper's "the
// simulated time of the VHDL simulator always lags behind OPNET's
// simulated time" property.
func (e *Entity) LagInvariantHolds() bool {
	return e.HDL.Now() <= e.tcur+e.minDelta()
}
