package cosim

import (
	"errors"
	"testing"

	"castanet/internal/atm"
	"castanet/internal/hdl"
	"castanet/internal/ipc"
	"castanet/internal/mapping"
	"castanet/internal/netsim"
	"castanet/internal/sim"
)

const clkPeriod = 10 * sim.Nanosecond

// newLoopbackEntity builds an Entity around a minimal DUT: cells are
// serialized onto an 8-bit port, pass a one-cycle register stage, and are
// reassembled and emitted back. δ is sized to one full cell (53 cycles)
// plus pipeline slack.
func newLoopbackEntity() *Entity {
	h := hdl.New()
	clk := h.Bit("clk", hdl.U)
	h.Clock(clk, clkPeriod)
	din := h.Signal("atmdata_in", 8, hdl.U)
	sin := h.Bit("cellsync_in", hdl.U)
	dout := h.Signal("atmdata_out", 8, hdl.U)
	sout := h.Bit("cellsync_out", hdl.U)

	// One-cycle register stage between writer and reader.
	dd := dout.Driver("pipe")
	ds := sout.Driver("pipe")
	h.Process("pipe", func() {
		if clk.Rising() {
			dd.Set(din.Val())
			ds.Set(sin.Val())
		}
	}, clk)

	w := mapping.NewCellPortWriter(h, "tx", clk, din, sin)
	r := mapping.NewCellPortReader(h, "rx", clk, dout, sout)

	e := NewEntity(h)
	r.OnCell = func(c *atm.Cell) {
		data, err := (mapping.CellCodec{}).Encode(c)
		if err != nil {
			panic(err)
		}
		e.Emit(KindData, data)
	}
	e.Input(KindData, 60*clkPeriod, func(e *Entity, msg ipc.Message) error {
		v, err := (mapping.CellCodec{}).Decode(msg.Data)
		if err != nil {
			return err
		}
		w.Enqueue(v.(*atm.Cell))
		return nil
	})
	return e
}

func newRegistry() *mapping.Registry {
	reg := mapping.NewRegistry()
	reg.Register(KindData, mapping.CellCodec{})
	return reg
}

type cellGen struct{ gap sim.Duration }

func (g cellGen) Next(*sim.RNG) sim.Duration { return g.gap }

func runLoopback(t *testing.T, coupling Coupling, e *Entity, nCells int) []Response {
	return runLoopbackBatch(t, coupling, e, nCells, false)
}

func runLoopbackBatch(t *testing.T, coupling Coupling, e *Entity, nCells int, batch bool) []Response {
	t.Helper()
	n := netsim.New(7)
	var responses []Response
	iface := &InterfaceProcess{
		Coupling:  coupling,
		Registry:  newRegistry(),
		SyncEvery: 100 * sim.Microsecond,
		Batch:     batch,
		OnResponse: func(ctx *netsim.Ctx, r Response) {
			if r.HWTime > r.NetTime {
				t.Errorf("lag violated: hw %v > net %v", r.HWTime, r.NetTime)
			}
			responses = append(responses, r)
		},
	}
	src := &netsim.Source{
		Gen:   cellGen{2726 * sim.Nanosecond}, // one STM-1 cell slot
		Limit: uint64(nCells),
		Make: func(ctx *netsim.Ctx, i uint64) *netsim.Packet {
			c := &atm.Cell{Header: atm.Header{VPI: byte(i % 4), VCI: uint16(100 + i%8)}, Seq: uint32(i)}
			c.StampSeq()
			return ctx.Net().NewPacket("cell", c, atm.CellBytes*8)
		},
	}
	a := n.Node("src", src)
	b := n.Node("castanet", iface)
	n.Connect(a, 0, b, 0, netsim.LinkParams{})
	n.Run(sim.Time(nCells+40) * 2726 * sim.Nanosecond)
	return responses
}

func TestDirectLoopback(t *testing.T) {
	e := newLoopbackEntity()
	resps := runLoopback(t, &Direct{Entity: e}, e, 20)
	if len(resps) != 20 {
		t.Fatalf("responses = %d, want 20", len(resps))
	}
	for i, r := range resps {
		c := r.Value.(*atm.Cell)
		if c.Seq != uint32(i) {
			t.Errorf("response %d: seq %d", i, c.Seq)
		}
		if c.VPI != byte(i%4) || c.VCI != uint16(100+i%8) {
			t.Errorf("response %d: header %+v", i, c.Header)
		}
	}
	if e.CausalityErrors != 0 {
		t.Errorf("causality errors: %d", e.CausalityErrors)
	}
	if !e.LagInvariantHolds() {
		t.Error("lag invariant broken at end of run")
	}
	if e.Applied != 20 {
		t.Errorf("applied = %d", e.Applied)
	}
}

func TestRemoteLoopbackOverPipe(t *testing.T) {
	e := newLoopbackEntity()
	a, b := ipc.Pipe(16)
	srv := &EntityServer{Entity: e, Transport: b}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	resps := runLoopback(t, &Remote{Transport: a}, e, 20)
	a.Close()
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
	if len(resps) != 20 {
		t.Fatalf("responses = %d, want 20", len(resps))
	}
	for i, r := range resps {
		if r.Value.(*atm.Cell).Seq != uint32(i) {
			t.Fatalf("response %d out of order", i)
		}
	}
}

func TestDirectRemoteEquivalence(t *testing.T) {
	// The deployment (in-process vs message-passing) must not change the
	// verification outcome: identical cells, identical hardware times.
	e1 := newLoopbackEntity()
	r1 := runLoopback(t, &Direct{Entity: e1}, e1, 15)

	e2 := newLoopbackEntity()
	a, b := ipc.Pipe(16)
	go (&EntityServer{Entity: e2, Transport: b}).Serve()
	r2 := runLoopback(t, &Remote{Transport: a}, e2, 15)
	a.Close()

	if len(r1) != len(r2) {
		t.Fatalf("counts differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		c1 := r1[i].Value.(*atm.Cell)
		c2 := r2[i].Value.(*atm.Cell)
		if c1.Seq != c2.Seq || c1.Header != c2.Header {
			t.Errorf("response %d differs: %v vs %v", i, c1, c2)
		}
		if r1[i].HWTime != r2[i].HWTime {
			t.Errorf("response %d hardware time differs: %v vs %v", i, r1[i].HWTime, r2[i].HWTime)
		}
	}
}

func TestCausalityRejected(t *testing.T) {
	e := newLoopbackEntity()
	if err := e.Deliver(ipc.Message{Kind: ipc.KindSync, Time: 10 * sim.Microsecond}); err != nil {
		t.Fatal(err)
	}
	err := e.Deliver(ipc.Message{Kind: ipc.KindSync, Time: 5 * sim.Microsecond})
	if !errors.Is(err, ErrCausality) {
		t.Fatalf("err = %v, want causality violation", err)
	}
	if e.CausalityErrors != 1 {
		t.Errorf("CausalityErrors = %d", e.CausalityErrors)
	}
}

func TestHDLNeverAheadOfHorizon(t *testing.T) {
	e := newLoopbackEntity()
	cell := &atm.Cell{Header: atm.Header{VPI: 1, VCI: 1}}
	data, _ := (mapping.CellCodec{}).Encode(cell)
	for i := 1; i <= 50; i++ {
		at := sim.Time(i) * 3 * sim.Microsecond
		if err := e.Deliver(ipc.Message{Kind: KindData, Time: at, Data: data}); err != nil {
			t.Fatal(err)
		}
		if !e.LagInvariantHolds() {
			t.Fatalf("after message %d: hdl %v vs horizon %v", i, e.HDL.Now(), e.Now())
		}
	}
	if e.MaxLag <= 0 {
		t.Error("MaxLag not recorded")
	}
}

func TestEqualStampsAccepted(t *testing.T) {
	// Stamps equal to the horizon are legal ("for any future time, or the
	// current time but never for past times").
	e := newLoopbackEntity()
	cell := &atm.Cell{Header: atm.Header{VPI: 1, VCI: 1}}
	data, _ := (mapping.CellCodec{}).Encode(cell)
	at := 5 * sim.Microsecond
	if err := e.Deliver(ipc.Message{Kind: KindData, Time: at, Data: data}); err != nil {
		t.Fatal(err)
	}
	if err := e.Deliver(ipc.Message{Kind: KindData, Time: at, Data: data}); err != nil {
		t.Fatalf("equal stamp rejected: %v", err)
	}
	if e.Applied != 2 {
		t.Errorf("applied = %d", e.Applied)
	}
}

func TestUndeclaredKind(t *testing.T) {
	e := newLoopbackEntity()
	err := e.Deliver(ipc.Message{Kind: ipc.KindUser + 5, Time: sim.Microsecond})
	if err == nil {
		t.Fatal("undeclared kind accepted")
	}
}

func TestSyncAdvancesIdleHardware(t *testing.T) {
	e := newLoopbackEntity()
	before := e.HDL.Now()
	if err := e.Deliver(ipc.Message{Kind: ipc.KindSync, Time: 50 * sim.Microsecond}); err != nil {
		t.Fatal(err)
	}
	if e.HDL.Now() <= before {
		t.Error("sync message did not advance the hardware clock")
	}
	// Strictly smaller than the stamp: events at exactly 50us wait.
	if e.HDL.Now() >= 50*sim.Microsecond {
		t.Errorf("hardware ran to %v, beyond the granted window", e.HDL.Now())
	}
}

func TestWindowBoundedByDelta(t *testing.T) {
	e := newLoopbackEntity() // δ = 600ns
	cell := &atm.Cell{Header: atm.Header{VPI: 1, VCI: 1}}
	data, _ := (mapping.CellCodec{}).Encode(cell)
	at := 20 * sim.Microsecond
	if err := e.Deliver(ipc.Message{Kind: KindData, Time: at, Data: data}); err != nil {
		t.Fatal(err)
	}
	if e.HDL.Now() > at+60*clkPeriod {
		t.Errorf("hardware at %v, beyond %v + δ", e.HDL.Now(), at)
	}
	if e.Windows != 1 {
		t.Errorf("windows = %d", e.Windows)
	}
}

func TestFlushDrainsPipeline(t *testing.T) {
	e := newLoopbackEntity()
	cell := &atm.Cell{Header: atm.Header{VPI: 2, VCI: 9}, Seq: 77}
	cell.StampSeq()
	data, _ := (mapping.CellCodec{}).Encode(cell)
	if err := e.Deliver(ipc.Message{Kind: KindData, Time: sim.Microsecond, Data: data}); err != nil {
		t.Fatal(err)
	}
	// δ (600ns) is shorter than a full cell (530ns) plus the pipeline, so
	// the response may still be in flight; Flush drains it.
	if err := e.Flush(100 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	out := e.TakeOutbox()
	if len(out) != 1 {
		t.Fatalf("outbox = %d messages, want 1", len(out))
	}
	v, err := (mapping.CellCodec{}).Decode(out[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if v.(*atm.Cell).Seq != 77 {
		t.Errorf("flushed cell = %v", v)
	}
}

func TestEntityInputValidation(t *testing.T) {
	e := NewEntity(hdl.New())
	e.Input(KindData, 0, nil)
	if e.Now() != 0 {
		t.Errorf("Now = %v before any message", e.Now())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate input kind accepted")
			}
		}()
		e.Input(KindData, 0, nil)
	}()
	defer func() {
		if recover() == nil {
			t.Error("negative delta accepted")
		}
	}()
	e.Input(KindData+1, -1, nil)
}

func TestCouplingClose(t *testing.T) {
	d := &Direct{Entity: newLoopbackEntity()}
	if err := d.Close(); err != nil {
		t.Errorf("direct close: %v", err)
	}
	a, b := ipc.Pipe(1)
	r := &Remote{Transport: a}
	_ = b
	if err := r.Close(); err != nil {
		t.Errorf("remote close: %v", err)
	}
}

func TestInterfaceOnErrorHook(t *testing.T) {
	// An encode failure (packet payload of the wrong type) must hit the
	// OnError hook instead of panicking.
	e := newLoopbackEntity()
	var gotErr error
	iface := &InterfaceProcess{
		Coupling: &Direct{Entity: e},
		Registry: newRegistry(),
		OnError:  func(err error) { gotErr = err },
	}
	n := netsim.New(1)
	node := n.Node("iface", iface)
	n.Init()
	node.Inject(n.NewPacket("bogus", "not a cell", 0), 0)
	n.Run(sim.Microsecond)
	if gotErr == nil {
		t.Fatal("encode failure not reported")
	}
}

func TestInterfaceDefaultResponseForwarding(t *testing.T) {
	// With no OnResponse handler, responses are re-injected as packets on
	// output port 0 when connected.
	e := newLoopbackEntity()
	iface := &InterfaceProcess{
		Coupling:  &Direct{Entity: e},
		Registry:  newRegistry(),
		SyncEvery: 50 * sim.Microsecond,
	}
	n := netsim.New(1)
	ifaceNode := n.Node("iface", iface)
	sink := &netsim.Sink{}
	sinkNode := n.Node("sink", sink)
	n.Connect(ifaceNode, 0, sinkNode, 0, netsim.LinkParams{})
	n.Init()
	cell := &atm.Cell{Header: atm.Header{VPI: 1, VCI: 5}, Seq: 42}
	cell.StampSeq()
	n.Sched.At(sim.Microsecond, func() {
		ifaceNode.Inject(n.NewPacket("cell", cell, atm.CellBytes*8), 0)
	})
	n.Run(sim.Millisecond)
	if sink.Received != 1 {
		t.Fatalf("forwarded responses = %d, want 1", sink.Received)
	}
}

func TestInterfaceUnregisteredResponseKindPassesRaw(t *testing.T) {
	// Responses with no registered codec surface as raw bytes.
	h := hdl.New()
	h.Clock(h.Bit("clk", hdl.U), clkPeriod)
	e := NewEntity(h)
	e.Input(KindData, clkPeriod, func(e *Entity, msg ipc.Message) error {
		e.Emit(ipc.KindUser+7, []byte{0xAB}) // kind with no codec
		return nil
	})
	var got interface{}
	iface := &InterfaceProcess{
		Coupling:   &Direct{Entity: e},
		Registry:   newRegistry(),
		OnResponse: func(ctx *netsim.Ctx, r Response) { got = r.Value },
	}
	n := netsim.New(1)
	node := n.Node("iface", iface)
	n.Init()
	cell := &atm.Cell{Header: atm.Header{VPI: 1, VCI: 1}}
	n.Sched.At(sim.Microsecond, func() {
		node.Inject(n.NewPacket("cell", cell, atm.CellBytes*8), 0)
	})
	n.Run(sim.Millisecond)
	raw, ok := got.([]byte)
	if !ok || len(raw) != 1 || raw[0] != 0xAB {
		t.Fatalf("raw response = %v", got)
	}
}
