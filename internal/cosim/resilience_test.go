package cosim

import (
	"errors"
	"testing"
	"time"

	"castanet/internal/atm"
	"castanet/internal/ipc"
	"castanet/internal/netsim"
	"castanet/internal/sim"
)

// withTestDeadline fails the test instead of hanging forever when the
// coupling's own watchdogs are broken.
func withTestDeadline(t *testing.T, d time.Duration, f func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- f() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		t.Fatal("operation hung: watchdog never fired")
		return nil
	}
}

func TestRemoteDeadlineWatchdog(t *testing.T) {
	// The peer accepts the request and then goes silent. Without the
	// deadline the client would block in Recv forever.
	a, _ := ipc.Pipe(16)
	r := &Remote{Transport: a, Deadline: 30 * time.Millisecond}
	err := withTestDeadline(t, 5*time.Second, func() error {
		out, err := r.Send(ipc.Message{Kind: ipc.KindInit})
		if out != nil {
			t.Errorf("out = %v, want nil on error", out)
		}
		return err
	})
	var ce *CouplingError
	if !errors.As(err, &ce) || ce.Class != ClassTimeout {
		t.Fatalf("err = %v, want timeout-classed CouplingError", err)
	}
	if !errors.Is(err, ipc.ErrTimeout) {
		t.Errorf("err = %v, want to unwrap to ipc.ErrTimeout", err)
	}
}

func TestEntityServerWatchdog(t *testing.T) {
	// A client that dials and then never speaks must not pin the server
	// forever.
	_, b := ipc.Pipe(16)
	srv := &EntityServer{Entity: newLoopbackEntity(), Transport: b, Watchdog: 30 * time.Millisecond}
	err := withTestDeadline(t, 5*time.Second, srv.Serve)
	var ce *CouplingError
	if !errors.As(err, &ce) || ce.Class != ClassTimeout {
		t.Fatalf("Serve = %v, want timeout-classed CouplingError", err)
	}
}

func TestRemotePartialResponseDiscarded(t *testing.T) {
	// The server delivers one response and dies before the terminating
	// sync: the half batch must be discarded, not returned.
	a, b := ipc.Pipe(16)
	go func() {
		if _, err := b.Recv(); err != nil {
			return
		}
		b.Send(ipc.Message{Kind: KindData, Time: 5, Data: []byte("partial")})
		b.Close()
	}()
	r := &Remote{Transport: a}
	out, err := r.Send(ipc.Message{Kind: ipc.KindInit})
	if err == nil {
		t.Fatal("Send succeeded despite missing sync")
	}
	if out != nil {
		t.Fatalf("out = %v, want nil — partial batches must not leak", out)
	}
	var ce *CouplingError
	if !errors.As(err, &ce) || ce.Class != ClassClosed {
		t.Errorf("err = %v, want closed-classed CouplingError", err)
	}
}

func TestRemoteEntityErrorTyped(t *testing.T) {
	a, b := ipc.Pipe(16)
	go func() {
		if _, err := b.Recv(); err != nil {
			return
		}
		b.Send(ipc.Message{Kind: kindError, Data: []byte("queue overflow")})
	}()
	r := &Remote{Transport: a}
	defer r.Close()
	out, err := r.Send(ipc.Message{Kind: KindData})
	if out != nil {
		t.Errorf("out = %v, want nil", out)
	}
	var ce *CouplingError
	if !errors.As(err, &ce) || ce.Class != ClassProtocol {
		t.Fatalf("err = %v, want protocol-classed CouplingError", err)
	}
	if IsTransient(err) {
		t.Error("entity rejection classified transient; reconnecting would resend the same poison")
	}
}

// scriptedServer speaks the alternating protocol over tr: each request is
// acknowledged with a sync, and every received message is recorded.
func scriptedServer(tr ipc.Transport, log *[]ipc.Message) {
	for {
		m, err := tr.Recv()
		if err != nil {
			return
		}
		*log = append(*log, m)
		if tr.Send(ipc.Message{Kind: ipc.KindSync, Time: m.Time}) != nil {
			return
		}
	}
}

func TestReconnectorReplaysSession(t *testing.T) {
	var (
		dials    int
		sessions [][]ipc.Message
		serverTr []ipc.Transport
	)
	rc := &Reconnector{
		Backoff: time.Millisecond,
		Dial: func() (ipc.Transport, error) {
			a, b := ipc.Pipe(16)
			dials++
			sessions = append(sessions, nil)
			serverTr = append(serverTr, b)
			log := &sessions[len(sessions)-1]
			go scriptedServer(b, log)
			return a, nil
		},
	}
	defer rc.Close()

	if _, err := rc.Send(ipc.Message{Kind: ipc.KindInit, Time: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Send(ipc.Message{Kind: KindData, Time: 1, Data: []byte("one")}); err != nil {
		t.Fatal(err)
	}

	// The link dies mid-run; the next operation must transparently re-dial
	// and replay the recorded init before retrying.
	serverTr[0].Close()
	if _, err := rc.Send(ipc.Message{Kind: KindData, Time: 2, Data: []byte("two")}); err != nil {
		t.Fatalf("send after link loss: %v", err)
	}

	if dials != 2 {
		t.Fatalf("dials = %d, want 2", dials)
	}
	if rc.Reconnects != 1 {
		t.Errorf("Reconnects = %d, want 1", rc.Reconnects)
	}
	second := sessions[1]
	if len(second) != 2 || second[0].Kind != ipc.KindInit || string(second[1].Data) != "two" {
		t.Fatalf("second session saw %v, want replayed init then retried message", second)
	}
}

func TestReconnectorGivesUp(t *testing.T) {
	dials := 0
	rc := &Reconnector{
		Backoff:     time.Millisecond,
		MaxAttempts: 2,
		Dial: func() (ipc.Transport, error) {
			dials++
			a, b := ipc.Pipe(1)
			b.Close() // every session is stillborn
			_ = a
			return a, nil
		},
	}
	_, err := rc.Send(ipc.Message{Kind: KindData})
	var ce *CouplingError
	if !errors.As(err, &ce) || ce.Class != ClassClosed {
		t.Fatalf("err = %v, want closed-classed CouplingError after giving up", err)
	}
	if dials != 3 { // initial connect + MaxAttempts reconnects
		t.Errorf("dials = %d, want 3", dials)
	}
}

// failCoupling rejects every message with the given error.
type failCoupling struct{ err error }

func (f failCoupling) Send(ipc.Message) ([]ipc.Message, error) { return nil, f.err }
func (f failCoupling) Close() error                            { return nil }

func TestInterfaceGracefulDefault(t *testing.T) {
	// A broken coupling must terminate the run and surface through Err —
	// no panic, no further pushes.
	bang := &CouplingError{Class: ClassClosed, Op: "send", Err: ipc.ErrClosed}
	n := netsim.New(1)
	iface := &InterfaceProcess{
		Coupling: failCoupling{err: bang},
		Registry: newRegistry(),
	}
	src := &netsim.Source{
		Gen:   cellGen{2726 * sim.Nanosecond},
		Limit: 10,
		Make: func(ctx *netsim.Ctx, i uint64) *netsim.Packet {
			c := &atm.Cell{Seq: uint32(i)}
			c.StampSeq()
			return ctx.Net().NewPacket("cell", c, atm.CellBytes*8)
		},
	}
	a := n.Node("src", src)
	b := n.Node("castanet", iface)
	n.Connect(a, 0, b, 0, netsim.LinkParams{})
	n.Run(100 * sim.Microsecond)

	if !errors.Is(iface.Err(), bang) {
		t.Fatalf("Err() = %v, want the coupling failure", iface.Err())
	}
	var ce *CouplingError
	if !errors.As(iface.Err(), &ce) || ce.Class != ClassClosed {
		t.Errorf("Err() = %v, want typed CouplingError", iface.Err())
	}
	// The very first push (the init message) fails; the scheduler stops
	// before any cell is forwarded.
	if iface.Sent != 0 {
		t.Errorf("Sent = %d after coupling failure at init", iface.Sent)
	}
}

func TestInterfaceOnErrorHookStillWins(t *testing.T) {
	var hooked error
	iface := &InterfaceProcess{
		Coupling: failCoupling{err: ipc.ErrClosed},
		Registry: newRegistry(),
		OnError:  func(err error) { hooked = err },
	}
	n := netsim.New(1)
	n.Node("castanet", iface)
	n.Run(sim.Microsecond)
	if !errors.Is(hooked, ipc.ErrClosed) {
		t.Fatalf("OnError saw %v, want the coupling failure", hooked)
	}
	if iface.Err() != nil {
		t.Errorf("Err() = %v, want nil when a hook handles failures", iface.Err())
	}
}
