package cosim

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"castanet/internal/ipc"
)

// Coupling is the channel between the network-simulator side and the
// hardware side. Send pushes one time-stamped message and returns every
// response the hardware produced while processing it — the strict
// request/response alternation keeps both deployments (in-process and
// socket) deterministic.
//
// Error contract: on a non-nil error the returned slice is nil. Responses
// received before a mid-stream failure are discarded — a half-delivered
// batch is indistinguishable from a corrupted one, and callers must never
// fold it into the verification result.
type Coupling interface {
	Send(msg ipc.Message) ([]ipc.Message, error)
	Close() error
}

// Direct couples the interface process to an Entity by plain function
// calls — both engines in one OS process, the fastest deployment.
type Direct struct {
	Entity *Entity
}

// Send implements Coupling.
func (d *Direct) Send(msg ipc.Message) ([]ipc.Message, error) {
	if err := d.Entity.Deliver(msg); err != nil {
		return nil, &CouplingError{Class: ClassProtocol, Op: "entity", Err: err}
	}
	return d.Entity.TakeOutbox(), nil
}

// Close implements Coupling.
func (d *Direct) Close() error { return nil }

// Remote couples over an ipc.Transport (socket or pipe) to an
// EntityServer in another goroutine or process — the paper's UNIX-IPC
// deployment. The protocol is strictly alternating: one request, then
// responses terminated by a KindSync acknowledgement carrying the
// hardware's clock.
type Remote struct {
	Transport ipc.Transport
	// PeerTime is the hardware clock reported by the last acknowledgement.
	PeerTime int64
	// Deadline is the per-operation watchdog: a Send whose round trip
	// exceeds it tears the link down and reports a timeout-classed
	// CouplingError instead of hanging on a dead peer. Zero disables it.
	Deadline time.Duration

	timedOut atomic.Bool
}

// Send implements Coupling. Errors are typed (*CouplingError); the
// response slice is nil whenever the error is non-nil.
func (r *Remote) Send(msg ipc.Message) ([]ipc.Message, error) {
	if r.Deadline > 0 {
		wd := time.AfterFunc(r.Deadline, func() {
			// Closing the transport is the only way to unhook a blocked
			// Recv on an arbitrary Transport; the link is gone anyway.
			r.timedOut.Store(true)
			r.Transport.Close()
		})
		defer wd.Stop()
	}
	if err := r.Transport.Send(msg); err != nil {
		return nil, r.wrap("send", err)
	}
	var out []ipc.Message
	for {
		m, err := r.Transport.Recv()
		if err != nil {
			return nil, r.wrap("recv", err)
		}
		switch m.Kind {
		case ipc.KindSync:
			r.PeerTime = int64(m.Time)
			return out, nil
		case kindError:
			return nil, &CouplingError{
				Class: ClassProtocol,
				Op:    "entity",
				Err:   fmt.Errorf("remote entity: %s", m.Data),
			}
		}
		out = append(out, m)
	}
}

// wrap types a transport error; a failure caused by the deadline watchdog
// reports as timeout, not as the closed link the watchdog left behind.
func (r *Remote) wrap(op string, err error) error {
	if r.timedOut.Load() {
		return &CouplingError{
			Class: ClassTimeout,
			Op:    op,
			Err:   fmt.Errorf("%w: no response within %v", ipc.ErrTimeout, r.Deadline),
		}
	}
	return coupErr(op, err)
}

// Close implements Coupling.
func (r *Remote) Close() error { return r.Transport.Close() }

// kindError carries a remote-side failure description back to the client.
const kindError ipc.Kind = 2

// EntityServer drives an Entity from a transport: the far end of a Remote
// coupling. Serve processes requests until the transport closes.
type EntityServer struct {
	Entity    *Entity
	Transport ipc.Transport
	// Watchdog bounds the wall-clock silence between client requests: a
	// client that goes quiet longer than this is declared gone and Serve
	// returns a timeout-classed CouplingError instead of blocking
	// forever. Zero disables it.
	Watchdog time.Duration

	watchdogFired atomic.Bool
}

// Serve runs the request loop. It returns nil when the client closes the
// connection cleanly, and a *CouplingError when the link dies any other
// way. The transport is closed on return, so a client blocked on a
// response learns of the server's death instead of waiting forever.
func (s *EntityServer) Serve() error {
	defer s.Transport.Close()
	var wd *time.Timer
	if s.Watchdog > 0 {
		wd = time.AfterFunc(s.Watchdog, func() {
			s.watchdogFired.Store(true)
			s.Transport.Close()
		})
		defer wd.Stop()
	}
	for {
		msg, err := s.Transport.Recv()
		if err != nil {
			if s.watchdogFired.Load() {
				return &CouplingError{
					Class: ClassTimeout,
					Op:    "serve",
					Err:   fmt.Errorf("%w: client silent beyond %v", ipc.ErrTimeout, s.Watchdog),
				}
			}
			if errors.Is(err, ipc.ErrClosed) || Classify(err) == ClassClosed {
				return nil // client went away; a clean end of co-simulation
			}
			return coupErr("serve", err)
		}
		if wd != nil {
			wd.Reset(s.Watchdog)
		}
		if derr := s.Entity.Deliver(msg); derr != nil {
			if serr := s.Transport.Send(ipc.Message{Kind: kindError, Time: s.Entity.HDL.Now(), Data: []byte(derr.Error())}); serr != nil {
				return coupErr("send", serr)
			}
			continue
		}
		for _, resp := range s.Entity.TakeOutbox() {
			if err := s.Transport.Send(resp); err != nil {
				return coupErr("send", err)
			}
		}
		if err := s.Transport.Send(ipc.Message{Kind: ipc.KindSync, Time: s.Entity.HDL.Now()}); err != nil {
			return coupErr("send", err)
		}
	}
}
