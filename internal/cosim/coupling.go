package cosim

import (
	"fmt"

	"castanet/internal/ipc"
)

// Coupling is the channel between the network-simulator side and the
// hardware side. Send pushes one time-stamped message and returns every
// response the hardware produced while processing it — the strict
// request/response alternation keeps both deployments (in-process and
// socket) deterministic.
type Coupling interface {
	Send(msg ipc.Message) ([]ipc.Message, error)
	Close() error
}

// Direct couples the interface process to an Entity by plain function
// calls — both engines in one OS process, the fastest deployment.
type Direct struct {
	Entity *Entity
}

// Send implements Coupling.
func (d *Direct) Send(msg ipc.Message) ([]ipc.Message, error) {
	if err := d.Entity.Deliver(msg); err != nil {
		return nil, err
	}
	return d.Entity.TakeOutbox(), nil
}

// Close implements Coupling.
func (d *Direct) Close() error { return nil }

// Remote couples over an ipc.Transport (socket or pipe) to an
// EntityServer in another goroutine or process — the paper's UNIX-IPC
// deployment. The protocol is strictly alternating: one request, then
// responses terminated by a KindSync acknowledgement carrying the
// hardware's clock.
type Remote struct {
	Transport ipc.Transport
	// PeerTime is the hardware clock reported by the last acknowledgement.
	PeerTime int64
}

// Send implements Coupling.
func (r *Remote) Send(msg ipc.Message) ([]ipc.Message, error) {
	if err := r.Transport.Send(msg); err != nil {
		return nil, err
	}
	var out []ipc.Message
	for {
		m, err := r.Transport.Recv()
		if err != nil {
			return out, err
		}
		if m.Kind == ipc.KindSync {
			r.PeerTime = int64(m.Time)
			return out, nil
		}
		if m.Kind == kindError {
			return out, fmt.Errorf("cosim: remote entity: %s", m.Data)
		}
		out = append(out, m)
	}
}

// Close implements Coupling.
func (r *Remote) Close() error { return r.Transport.Close() }

// kindError carries a remote-side failure description back to the client.
const kindError ipc.Kind = 2

// EntityServer drives an Entity from a transport: the far end of a Remote
// coupling. Serve processes requests until the transport closes.
type EntityServer struct {
	Entity    *Entity
	Transport ipc.Transport
}

// Serve runs the request loop. It returns nil when the client closes the
// connection.
func (s *EntityServer) Serve() error {
	for {
		msg, err := s.Transport.Recv()
		if err != nil {
			return nil // client went away; a clean end of co-simulation
		}
		if derr := s.Entity.Deliver(msg); derr != nil {
			if serr := s.Transport.Send(ipc.Message{Kind: kindError, Time: s.Entity.HDL.Now(), Data: []byte(derr.Error())}); serr != nil {
				return serr
			}
			continue
		}
		for _, resp := range s.Entity.TakeOutbox() {
			if err := s.Transport.Send(resp); err != nil {
				return err
			}
		}
		if err := s.Transport.Send(ipc.Message{Kind: ipc.KindSync, Time: s.Entity.HDL.Now()}); err != nil {
			return err
		}
	}
}
