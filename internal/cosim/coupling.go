package cosim

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"castanet/internal/ipc"
)

// Coupling is the channel between the network-simulator side and the
// hardware side. Send pushes one time-stamped message and returns every
// response the hardware produced while processing it — the strict
// request/response alternation keeps both deployments (in-process and
// socket) deterministic.
//
// Error contract: on a non-nil error the returned slice is nil. Responses
// received before a mid-stream failure are discarded — a half-delivered
// batch is indistinguishable from a corrupted one, and callers must never
// fold it into the verification result.
type Coupling interface {
	Send(msg ipc.Message) ([]ipc.Message, error)
	Close() error
}

// BatchCoupling is a Coupling that can ship a whole δ-window of messages
// as one protocol unit: the conservative protocol has already proven
// every message in the window safe, so nothing is gained by paying a
// round trip per message. SendBatch delivers msgs in order, returns all
// responses the unit provoked, and follows the same error contract as
// Send — on error the slice is nil and any half-built response unit is
// discarded. The caller's slice is not retained.
type BatchCoupling interface {
	Coupling
	SendBatch(msgs []ipc.Message) ([]ipc.Message, error)
}

// Direct couples the interface process to an Entity by plain function
// calls — both engines in one OS process, the fastest deployment.
type Direct struct {
	Entity *Entity
}

// Send implements Coupling.
func (d *Direct) Send(msg ipc.Message) ([]ipc.Message, error) {
	if err := d.Entity.Deliver(msg); err != nil {
		return nil, &CouplingError{Class: ClassProtocol, Op: "entity", Err: err}
	}
	return d.Entity.TakeOutbox(), nil
}

// SendBatch implements BatchCoupling: the messages are delivered
// back-to-back and the entity's outbox — which coalesces emissions per
// delta-window — is taken once for the whole unit. A mid-unit failure
// discards the half-built outbox per the error contract.
func (d *Direct) SendBatch(msgs []ipc.Message) ([]ipc.Message, error) {
	for _, m := range msgs {
		if err := d.Entity.Deliver(m); err != nil {
			d.Entity.TakeOutbox()
			return nil, &CouplingError{Class: ClassProtocol, Op: "entity", Err: err}
		}
	}
	return d.Entity.TakeOutbox(), nil
}

// Close implements Coupling.
func (d *Direct) Close() error { return nil }

// Remote couples over an ipc.Transport (socket or pipe) to an
// EntityServer in another goroutine or process — the paper's UNIX-IPC
// deployment. The protocol is strictly alternating: one request, then
// responses terminated by a KindSync acknowledgement carrying the
// hardware's clock.
type Remote struct {
	Transport ipc.Transport
	// PeerTime is the hardware clock reported by the last acknowledgement.
	PeerTime int64
	// Deadline is the per-operation watchdog: a Send whose round trip
	// exceeds it tears the link down and reports a timeout-classed
	// CouplingError instead of hanging on a dead peer. Zero disables it.
	Deadline time.Duration

	timedOut atomic.Bool
}

// Send implements Coupling. Errors are typed (*CouplingError); the
// response slice is nil whenever the error is non-nil.
func (r *Remote) Send(msg ipc.Message) ([]ipc.Message, error) {
	if r.Deadline > 0 {
		wd := time.AfterFunc(r.Deadline, func() {
			// Closing the transport is the only way to unhook a blocked
			// Recv on an arbitrary Transport; the link is gone anyway.
			r.timedOut.Store(true)
			r.Transport.Close()
		})
		defer wd.Stop()
	}
	if err := r.Transport.Send(msg); err != nil {
		return nil, r.wrap("send", err)
	}
	var out []ipc.Message
	for {
		m, err := r.Transport.Recv()
		if err != nil {
			return nil, r.wrap("recv", err)
		}
		switch m.Kind {
		case ipc.KindSync:
			r.PeerTime = int64(m.Time)
			return out, nil
		case kindError:
			return nil, &CouplingError{
				Class: ClassProtocol,
				Op:    "entity",
				Err:   fmt.Errorf("remote entity: %s", m.Data),
			}
		}
		out = append(out, m)
	}
}

// SendBatch implements BatchCoupling. On a batch-capable transport the
// whole window crosses in one frame and the server answers with one
// response unit terminated by its KindSync acknowledgement; otherwise it
// degrades to the strict per-message alternation, which preserves
// semantics at the unbatched cost.
func (r *Remote) SendBatch(msgs []ipc.Message) ([]ipc.Message, error) {
	if len(msgs) == 1 {
		return r.Send(msgs[0])
	}
	bt, ok := r.Transport.(ipc.BatchTransport)
	if !ok {
		var out []ipc.Message
		for _, m := range msgs {
			resp, err := r.Send(m)
			if err != nil {
				return nil, err
			}
			out = append(out, resp...)
		}
		return out, nil
	}
	if r.Deadline > 0 {
		wd := time.AfterFunc(r.Deadline, func() {
			r.timedOut.Store(true)
			r.Transport.Close()
		})
		defer wd.Stop()
	}
	if err := bt.SendBatch(msgs); err != nil {
		return nil, r.wrap("send", err)
	}
	var out []ipc.Message
	for {
		unit, err := bt.RecvBatch()
		if err != nil {
			return nil, r.wrap("recv", err)
		}
		for _, m := range unit {
			switch m.Kind {
			case ipc.KindSync:
				r.PeerTime = int64(m.Time)
				return out, nil
			case kindError:
				return nil, &CouplingError{
					Class: ClassProtocol,
					Op:    "entity",
					Err:   fmt.Errorf("remote entity: %s", m.Data),
				}
			}
			out = append(out, m)
		}
	}
}

// wrap types a transport error; a failure caused by the deadline watchdog
// reports as timeout, not as the closed link the watchdog left behind.
func (r *Remote) wrap(op string, err error) error {
	if r.timedOut.Load() {
		return &CouplingError{
			Class: ClassTimeout,
			Op:    op,
			Err:   fmt.Errorf("%w: no response within %v", ipc.ErrTimeout, r.Deadline),
		}
	}
	return coupErr(op, err)
}

// Close implements Coupling.
func (r *Remote) Close() error { return r.Transport.Close() }

// kindError carries a remote-side failure description back to the client.
const kindError ipc.Kind = 2

// EntityServer drives an Entity from a transport: the far end of a Remote
// coupling. Serve processes requests until the transport closes.
type EntityServer struct {
	Entity    *Entity
	Transport ipc.Transport
	// Watchdog bounds the wall-clock silence between client requests: a
	// client that goes quiet longer than this is declared gone and Serve
	// returns a timeout-classed CouplingError instead of blocking
	// forever. Zero disables it.
	Watchdog time.Duration

	watchdogFired atomic.Bool
}

// recvUnit reads the client's next protocol unit: one message, or a
// whole δ-window batch when the transport carries batches.
func (s *EntityServer) recvUnit() ([]ipc.Message, error) {
	if bt, ok := s.Transport.(ipc.BatchTransport); ok {
		return bt.RecvBatch()
	}
	m, err := s.Transport.Recv()
	if err != nil {
		return nil, err
	}
	return []ipc.Message{m}, nil
}

// Serve runs the request loop. It returns nil when the client closes the
// connection cleanly, and a *CouplingError when the link dies any other
// way. The transport is closed on return, so a client blocked on a
// response learns of the server's death instead of waiting forever.
//
// A batched request is processed as one unit: every message is delivered
// in order, the entity's coalesced outbox plus the KindSync
// acknowledgement travel back as one batch, and a mid-unit Deliver
// failure discards the half-built outbox and answers kindError for the
// whole unit — mirroring the client-side error contract.
func (s *EntityServer) Serve() error {
	defer s.Transport.Close()
	var wd *time.Timer
	if s.Watchdog > 0 {
		wd = time.AfterFunc(s.Watchdog, func() {
			s.watchdogFired.Store(true)
			s.Transport.Close()
		})
		defer wd.Stop()
	}
	for {
		unit, err := s.recvUnit()
		if err != nil {
			if s.watchdogFired.Load() {
				return &CouplingError{
					Class: ClassTimeout,
					Op:    "serve",
					Err:   fmt.Errorf("%w: client silent beyond %v", ipc.ErrTimeout, s.Watchdog),
				}
			}
			if errors.Is(err, ipc.ErrClosed) || Classify(err) == ClassClosed {
				return nil // client went away; a clean end of co-simulation
			}
			return coupErr("serve", err)
		}
		if wd != nil {
			wd.Reset(s.Watchdog)
		}
		var derr error
		for _, msg := range unit {
			if derr = s.Entity.Deliver(msg); derr != nil {
				break
			}
		}
		if derr != nil {
			s.Entity.TakeOutbox() // discard the half-built unit
			if serr := s.Transport.Send(ipc.Message{Kind: kindError, Time: s.Entity.HDL.Now(), Data: []byte(derr.Error())}); serr != nil {
				return coupErr("send", serr)
			}
			continue
		}
		resps := s.Entity.TakeOutbox()
		sync := ipc.Message{Kind: ipc.KindSync, Time: s.Entity.HDL.Now()}
		if len(unit) > 1 {
			// A batched request earns a batched reply; the transport is
			// batch-capable or the unit could not have arrived whole.
			reply := append(resps, sync)
			if err := s.Transport.(ipc.BatchTransport).SendBatch(reply); err != nil {
				return coupErr("send", err)
			}
			continue
		}
		for _, resp := range resps {
			if err := s.Transport.Send(resp); err != nil {
				return coupErr("send", err)
			}
		}
		if err := s.Transport.Send(sync); err != nil {
			return coupErr("send", err)
		}
	}
}
