package cosim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"

	"castanet/internal/ipc"
)

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"timeout", &CouplingError{Class: ClassTimeout, Op: "recv", Err: ipc.ErrTimeout}, true},
		{"closed", &CouplingError{Class: ClassClosed, Op: "send", Err: ipc.ErrClosed}, true},
		{"corrupt", &CouplingError{Class: ClassCorrupt, Op: "recv", Err: ipc.ErrBadFrame}, false},
		{"protocol", &CouplingError{Class: ClassProtocol, Op: "entity", Err: errors.New("undeclared kind")}, false},
		{"deadline", context.DeadlineExceeded, true},
		{"wrapped deadline", fmt.Errorf("run: %w", context.DeadlineExceeded), true},
		{"cancel", context.Canceled, false},
		{"untyped mismatch", errors.New("acct mismatch: 3 != 4"), false},
		{"raw eof", io.EOF, false}, // untyped transport leak: final, a rig must type it
		{"marked", MarkRetryable(errors.New("worker evicted")), true},
		{"wrapped marked", fmt.Errorf("campaign: %w", MarkRetryable(io.EOF)), true},
		{"wrapped coupling", fmt.Errorf("rig: %w", &CouplingError{Class: ClassTimeout, Op: "run", Err: ipc.ErrTimeout}), true},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestMarkRetryableKeepsIdentity(t *testing.T) {
	base := errors.New("boom")
	m := MarkRetryable(base)
	if !errors.Is(m, base) {
		t.Fatal("MarkRetryable broke errors.Is identity")
	}
	if m.Error() != base.Error() {
		t.Fatalf("MarkRetryable changed text: %q", m.Error())
	}
	if MarkRetryable(nil) != nil {
		t.Fatal("MarkRetryable(nil) != nil")
	}
}

func TestRetryableNeverRetriesMismatchEvenWhenTransientLooking(t *testing.T) {
	// IsTransient consults Classify for untyped errors; Retryable must
	// not, so an untyped error that merely *looks* like a link failure to
	// Classify is still final for the retry budget.
	err := io.ErrUnexpectedEOF
	if !IsTransient(err) {
		t.Skip("Classify semantics changed; update this test")
	}
	if Retryable(err) {
		t.Fatal("untyped io.ErrUnexpectedEOF must not be Retryable")
	}
}
