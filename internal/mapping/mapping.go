// Package mapping implements the abstraction interfaces of the
// co-verification environment (§3.2 of the paper): the conversion between
// the instantaneous, structured information flows of the network simulator
// (C-struct-like packets) and the bit-level, clock-accurate signal streams
// of the hardware. Its centerpiece is the Fig.-4 mapping of an ATM cell to
// an 8-bit VHDL data port: 53 octets over 53 clock cycles plus a generated
// cell-synchronization control signal marking the first octet.
//
// The package also hosts the conversion-function registry of the CASTANET
// library: per-message-kind codecs between abstract Go values and the byte
// payloads of ipc messages.
package mapping

import (
	"fmt"

	"castanet/internal/atm"
	"castanet/internal/ipc"
)

// Codec converts one abstract data type to and from ipc message payloads.
type Codec interface {
	Encode(v interface{}) ([]byte, error)
	Decode(data []byte) (interface{}, error)
}

// Registry maps message kinds to conversion functions, the "library of
// generic protocol classes and conversion routines" the paper's outlook
// describes. Users register a codec per message kind.
type Registry struct {
	codecs map[ipc.Kind]Codec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{codecs: make(map[ipc.Kind]Codec)} }

// Register binds a codec to a kind; re-registering a kind panics, because
// silently replacing a conversion function corrupts a running coupling.
func (r *Registry) Register(k ipc.Kind, c Codec) {
	if _, dup := r.codecs[k]; dup {
		panic(fmt.Sprintf("mapping: kind %d registered twice", k))
	}
	r.codecs[k] = c
}

// Lookup returns the codec for a kind.
func (r *Registry) Lookup(k ipc.Kind) (Codec, bool) {
	c, ok := r.codecs[k]
	return c, ok
}

// Encode builds a complete message for kind k from an abstract value.
func (r *Registry) Encode(k ipc.Kind, v interface{}) ([]byte, error) {
	c, ok := r.codecs[k]
	if !ok {
		return nil, fmt.Errorf("mapping: no codec for kind %d", k)
	}
	return c.Encode(v)
}

// Decode parses a message payload for kind k into an abstract value.
func (r *Registry) Decode(k ipc.Kind, data []byte) (interface{}, error) {
	c, ok := r.codecs[k]
	if !ok {
		return nil, fmt.Errorf("mapping: no codec for kind %d", k)
	}
	return c.Decode(data)
}

// CellCodec converts *atm.Cell values to their 53-octet wire image. It is
// the standard codec for ATM cell streams.
type CellCodec struct{}

// Encode implements Codec for *atm.Cell. The payload travels exactly as
// given: test benches that match cells by sequence number stamp it into
// the payload themselves (Cell.StampSeq) before sending, while
// adaptation-layer traffic (AAL5) must cross untouched.
func (CellCodec) Encode(v interface{}) ([]byte, error) {
	c, ok := v.(*atm.Cell)
	if !ok {
		return nil, fmt.Errorf("mapping: CellCodec got %T, want *atm.Cell", v)
	}
	img := c.Marshal()
	return img[:], nil
}

// Decode implements Codec, verifying the HEC.
func (CellCodec) Decode(data []byte) (interface{}, error) {
	if len(data) != atm.CellBytes {
		return nil, fmt.Errorf("mapping: cell payload is %d bytes, want %d", len(data), atm.CellBytes)
	}
	var img [atm.CellBytes]byte
	copy(img[:], data)
	return atm.Unmarshal(img)
}

// BytesCodec passes raw byte payloads through unchanged, for test vectors
// that are already bit-level.
type BytesCodec struct{}

// Encode implements Codec for []byte.
func (BytesCodec) Encode(v interface{}) ([]byte, error) {
	b, ok := v.([]byte)
	if !ok {
		return nil, fmt.Errorf("mapping: BytesCodec got %T, want []byte", v)
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// Decode implements Codec.
func (BytesCodec) Decode(data []byte) (interface{}, error) {
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}
