package mapping

import (
	"castanet/internal/atm"
	"castanet/internal/hdl"
)

// CellPortWriter serializes ATM cells onto the Fig.-4 port structure:
//
//	atmdata  : STD_LOGIC_VECTOR(7 downto 0)  — one octet per clock
//	cellsync : STD_LOGIC                     — high during the first octet
//
// One cell occupies exactly 53 rising clock edges. When the transmit
// queue is empty the writer inserts idle cells (when InsertIdle is set) or
// drives zero with cellsync low, modeling the idle periods of a real ATM
// line versus a gated test stream.
type CellPortWriter struct {
	InsertIdle bool

	// OnCellStart, when non-nil, fires as a queued (non-idle) cell's first
	// octet goes onto the wire, with the cell's 53-byte image — the moment
	// the hardware commits to transmitting it. Causal cell tracing hooks
	// here to record the hdl.commit hop.
	OnCellStart func(img [atm.CellBytes]byte)

	data *hdl.Driver
	sync *hdl.Driver

	queue   [][atm.CellBytes]byte
	current [atm.CellBytes]byte
	pos     int
	active  bool

	// SentCells counts completed cell transmissions (including idles).
	SentCells uint64
	IdleCells uint64
}

// NewCellPortWriter attaches a writer to the simulator: data must be an
// 8-bit signal, cellSync a 1-bit signal, clk the byte clock. The writer
// registers a process sensitive to the rising clock edge.
func NewCellPortWriter(s *hdl.Simulator, name string, clk, data, cellSync *hdl.Signal) *CellPortWriter {
	if data.Width() != 8 {
		panic("mapping: cell data port must be 8 bits wide")
	}
	if cellSync.Width() != 1 {
		panic("mapping: cellsync must be 1 bit wide")
	}
	w := &CellPortWriter{
		data: data.Driver(name + ":data"),
		sync: cellSync.Driver(name + ":sync"),
	}
	w.data.SetUint(0)
	w.sync.SetBit(hdl.L0)
	s.Process(name, func() {
		if clk.Rising() {
			w.tick()
		}
	}, clk)
	return w
}

// Enqueue schedules a cell for transmission. The payload is transmitted
// exactly as given; callers that match cells by sequence number stamp it
// into the payload first (Cell.StampSeq).
func (w *CellPortWriter) Enqueue(c *atm.Cell) {
	w.queue = append(w.queue, c.Marshal())
}

// EnqueueRaw schedules a raw 53-octet image for transmission, including
// deliberately invalid images (bad HEC) — the path conformance test
// vectors take to the device.
func (w *CellPortWriter) EnqueueRaw(img [atm.CellBytes]byte) {
	w.queue = append(w.queue, img)
}

// Backlog returns the number of cells waiting (excluding the one in
// flight).
func (w *CellPortWriter) Backlog() int { return len(w.queue) }

// Busy reports whether a cell is currently being transmitted.
func (w *CellPortWriter) Busy() bool { return w.active }

func (w *CellPortWriter) tick() {
	if !w.active {
		if len(w.queue) > 0 {
			w.current = w.queue[0]
			w.queue = w.queue[1:]
			w.active = true
			w.pos = 0
			if w.OnCellStart != nil {
				w.OnCellStart(w.current)
			}
		} else if w.InsertIdle {
			w.current = atm.IdleCell().Marshal()
			w.IdleCells++
			w.active = true
			w.pos = 0
		} else {
			w.data.SetUint(0)
			w.sync.SetBit(hdl.L0)
			return
		}
	}
	w.data.SetUint(uint64(w.current[w.pos]))
	if w.pos == 0 {
		w.sync.SetBit(hdl.L1)
	} else {
		w.sync.SetBit(hdl.L0)
	}
	w.pos++
	if w.pos == atm.CellBytes {
		w.active = false
		w.SentCells++
	}
}

// CellPortReader reassembles cells from the same port structure: it
// samples the data port on each rising clock edge, starts a new cell when
// cellsync is high, and invokes OnCell for every completed 53-octet image.
// HEC failures are surfaced through OnError; the cell is still delivered
// to OnError callers for diagnosis.
type CellPortReader struct {
	// OnCell receives each correctly delineated, HEC-clean cell.
	OnCell func(c *atm.Cell)
	// OnError receives the raw image of a cell that failed HEC, together
	// with the error.
	OnError func(img [atm.CellBytes]byte, err error)
	// SkipIdle suppresses OnCell for idle cells (they are part of the
	// line's framing, not of the traffic under test).
	SkipIdle bool

	buf      [atm.CellBytes]byte
	pos      int
	inCell   bool
	Received uint64
	Errors   uint64
	Idles    uint64
}

// NewCellPortReader attaches a reader to the simulator, sampling data and
// cellSync on rising edges of clk.
func NewCellPortReader(s *hdl.Simulator, name string, clk, data, cellSync *hdl.Signal) *CellPortReader {
	if data.Width() != 8 {
		panic("mapping: cell data port must be 8 bits wide")
	}
	r := &CellPortReader{}
	s.Process(name, func() {
		if clk.Rising() {
			r.sample(data, cellSync)
		}
	}, clk)
	return r
}

func (r *CellPortReader) sample(data, cellSync *hdl.Signal) {
	if cellSync.Bit().IsHigh() {
		// Cell start: discard any partial cell (loss of delineation).
		r.pos = 0
		r.inCell = true
	}
	if !r.inCell {
		return
	}
	// Uint serves from the packed two-state mirror on the compiled data
	// plane (no LV materialization); it degrades to the nine-value read
	// with identical semantics when the value carries X/Z/weak bits.
	u, ok := data.Uint()
	if !ok {
		// Undefined data mid-cell: abandon the cell.
		r.inCell = false
		r.Errors++
		if r.OnError != nil {
			r.OnError(r.buf, atm.ErrHEC)
		}
		return
	}
	r.buf[r.pos] = byte(u)
	r.pos++
	if r.pos < atm.CellBytes {
		return
	}
	r.inCell = false
	img := r.buf
	cell, err := atm.Unmarshal(img)
	if err != nil {
		r.Errors++
		if r.OnError != nil {
			r.OnError(img, err)
		}
		return
	}
	r.Received++
	if cell.IsIdle() {
		r.Idles++
		if r.SkipIdle {
			return
		}
	}
	if r.OnCell != nil {
		r.OnCell(cell)
	}
}
