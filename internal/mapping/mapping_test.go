package mapping

import (
	"testing"

	"castanet/internal/atm"
	"castanet/internal/hdl"
	"castanet/internal/ipc"
	"castanet/internal/sim"
)

func TestCellCodecRoundTrip(t *testing.T) {
	c := &atm.Cell{Header: atm.Header{VPI: 3, VCI: 300, PTI: 1}, Seq: 42}
	c.StampSeq() // the codec transports payloads verbatim; stamping is explicit
	var cc CellCodec
	data, err := cc.Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != atm.CellBytes {
		t.Fatalf("encoded %d bytes", len(data))
	}
	v, err := cc.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*atm.Cell)
	if got.Header != c.Header || got.Seq != 42 {
		t.Fatalf("round trip = %v", got)
	}
}

func TestCellCodecRejects(t *testing.T) {
	var cc CellCodec
	if _, err := cc.Encode("not a cell"); err == nil {
		t.Error("bad type accepted")
	}
	if _, err := cc.Decode(make([]byte, 10)); err == nil {
		t.Error("short payload accepted")
	}
	// Corrupt HEC.
	c := &atm.Cell{Header: atm.Header{VPI: 1, VCI: 1}}
	data, _ := cc.Encode(c)
	data[4] ^= 0xFF
	if _, err := cc.Decode(data); err == nil {
		t.Error("corrupt HEC accepted")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register(ipc.KindUser, CellCodec{})
	r.Register(ipc.KindUser+1, BytesCodec{})
	if _, ok := r.Lookup(ipc.KindUser); !ok {
		t.Fatal("lookup failed")
	}
	if _, err := r.Encode(ipc.KindUser+9, nil); err == nil {
		t.Error("unknown kind encoded")
	}
	if _, err := r.Decode(ipc.KindUser+9, nil); err == nil {
		t.Error("unknown kind decoded")
	}
	b, err := r.Encode(ipc.KindUser+1, []byte{1, 2, 3})
	if err != nil || len(b) != 3 {
		t.Fatalf("bytes encode = %v %v", b, err)
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Register(ipc.KindUser, CellCodec{})
}

// buildLoop wires a writer directly to a reader through shared signals —
// the minimal Fig.-4 structure.
func buildLoop(t *testing.T, insertIdle bool) (*hdl.Simulator, *CellPortWriter, *CellPortReader, *[]*atm.Cell) {
	t.Helper()
	s := hdl.New()
	clk := s.Bit("clk", hdl.U)
	data := s.Signal("atmdata", 8, hdl.U)
	csync := s.Bit("cellsync", hdl.U)
	s.Clock(clk, 10*sim.Nanosecond)
	w := NewCellPortWriter(s, "tx", clk, data, csync)
	w.InsertIdle = insertIdle
	r := NewCellPortReader(s, "rx", clk, data, csync)
	r.SkipIdle = true
	var got []*atm.Cell
	r.OnCell = func(c *atm.Cell) { got = append(got, c) }
	return s, w, r, &got
}

func TestCellPortTransfer(t *testing.T) {
	s, w, r, got := buildLoop(t, false)
	cells := []*atm.Cell{
		{Header: atm.Header{VPI: 1, VCI: 100, PTI: 0}, Seq: 0},
		{Header: atm.Header{VPI: 2, VCI: 200, PTI: 1, CLP: 1}, Seq: 1},
		{Header: atm.Header{VPI: 3, VCI: 300, PTI: 2}, Seq: 2},
	}
	for _, c := range cells {
		c.StampSeq()
		w.Enqueue(c)
	}
	// 3 cells * 53 cycles * 10ns + slack.
	if err := s.Run(3*53*10*sim.Nanosecond + 200*sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 3 {
		t.Fatalf("received %d cells, want 3", len(*got))
	}
	for i, c := range *got {
		if c.Header != cells[i].Header || c.Seq != cells[i].Seq {
			t.Errorf("cell %d = %v, want %v", i, c, cells[i])
		}
	}
	if w.SentCells != 3 || r.Received != 3 || r.Errors != 0 {
		t.Errorf("counts: sent=%d recv=%d err=%d", w.SentCells, r.Received, r.Errors)
	}
}

func TestCellPortTiming(t *testing.T) {
	// A cell must take exactly 53 clock cycles: with a 10ns clock the gap
	// between two consecutive deliveries of back-to-back cells is 530ns.
	s := hdl.New()
	clk := s.Bit("clk", hdl.U)
	data := s.Signal("atmdata", 8, hdl.U)
	csync := s.Bit("cellsync", hdl.U)
	s.Clock(clk, 10*sim.Nanosecond)
	w := NewCellPortWriter(s, "tx", clk, data, csync)
	rd := NewCellPortReader(s, "rx", clk, data, csync)
	var times []sim.Time
	rd.OnCell = func(c *atm.Cell) { times = append(times, s.Now()) }
	for i := 0; i < 3; i++ {
		c := &atm.Cell{Header: atm.Header{VPI: 1, VCI: 1}, Seq: uint32(i)}
		c.StampSeq()
		w.Enqueue(c)
	}
	if err := s.Run(2 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if len(times) != 3 {
		t.Fatalf("got %d cells", len(times))
	}
	if d := times[1] - times[0]; d != 530*sim.Nanosecond {
		t.Errorf("inter-cell time = %v, want 530ns (53 cycles x 10ns)", d)
	}
	if d := times[2] - times[1]; d != 530*sim.Nanosecond {
		t.Errorf("inter-cell time = %v, want 530ns", d)
	}
}

func TestCellPortIdleInsertion(t *testing.T) {
	s, w, r, got := buildLoop(t, true)
	w.Enqueue(&atm.Cell{Header: atm.Header{VPI: 1, VCI: 7}, Seq: 9})
	if err := s.Run(5 * 530 * sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatalf("user cells = %d, want 1 (idles skipped)", len(*got))
	}
	if w.IdleCells == 0 || r.Idles == 0 {
		t.Errorf("no idle cells inserted/observed: w=%d r=%d", w.IdleCells, r.Idles)
	}
	// Line is continuously framed: received = user + idle cells.
	if r.Received != 1+r.Idles {
		t.Errorf("received=%d, idles=%d", r.Received, r.Idles)
	}
}

func TestCellPortCorruptionDetected(t *testing.T) {
	// Corrupt the data line mid-cell with an extra driver forcing X.
	s := hdl.New()
	clk := s.Bit("clk", hdl.U)
	data := s.Signal("atmdata", 8, hdl.U)
	csync := s.Bit("cellsync", hdl.U)
	s.Clock(clk, 10*sim.Nanosecond)
	w := NewCellPortWriter(s, "tx", clk, data, csync)
	r := NewCellPortReader(s, "rx", clk, data, csync)
	errs := 0
	r.OnError = func(img [atm.CellBytes]byte, err error) { errs++ }
	w.Enqueue(&atm.Cell{Header: atm.Header{VPI: 1, VCI: 1}})
	// Interfering driver glitches the bus during octet ~10.
	saboteur := data.Driver("saboteur")
	saboteur.Set(hdl.NewLV(8, hdl.Z))
	s.Schedule(100*sim.Nanosecond, func() { saboteur.Set(hdl.NewLV(8, hdl.L0)) })
	s.Schedule(120*sim.Nanosecond, func() { saboteur.Set(hdl.NewLV(8, hdl.Z)) })
	if err := s.Run(sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if errs == 0 && r.Received != 0 {
		// Contention produced either X (abort) or a corrupted byte that
		// fails HEC only if it hit the header. Either way the reader must
		// not deliver a clean wrong cell silently when header bytes were
		// hit; with payload corruption HEC passes by design.
		t.Log("corruption hit payload only; HEC correctly ignores payload")
	}
	if r.Errors != uint64(errs) {
		t.Errorf("error count mismatch: %d vs %d", r.Errors, errs)
	}
}
