// Package signaling models the higher-layer embedded control software of
// the paper's introduction — "call admission control agents and signaling
// protocols" — as communicating extended finite state machines in the
// network simulator's process domain. A call admission control (CAC)
// agent grants or refuses connection requests against a link capacity
// budget; caller processes request connections, hold them, and release
// them. Admission and release drive the hardware's connection table at
// run time, so cells on un-admitted connections are discarded by the very
// switch under verification.
package signaling

import (
	"fmt"

	"castanet/internal/atm"
	"castanet/internal/netsim"
	"castanet/internal/sim"
)

// MsgType discriminates signaling messages (a minimal UNI-like subset).
type MsgType int

// Signaling message types.
const (
	Setup MsgType = iota
	Connect
	Release
	ReleaseAck
	Reject
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case Setup:
		return "SETUP"
	case Connect:
		return "CONNECT"
	case Release:
		return "RELEASE"
	case ReleaseAck:
		return "RELEASE-ACK"
	case Reject:
		return "REJECT"
	default:
		return "?"
	}
}

// Message is one signaling PDU.
type Message struct {
	Type    MsgType
	VC      atm.VC
	RateBps float64 // requested/held bandwidth
	Cause   string  // for Reject
}

// signaling messages travel as ~40-octet packets (a SETUP IE set fits a
// cell's payload in this simplified protocol).
const msgBits = 40 * 8

// CAC is the call admission control agent: a process that owns a link
// bandwidth budget and a view of the hardware connection table.
type CAC struct {
	// CapacityBps is the admissible bandwidth budget.
	CapacityBps float64
	// OnAdmit installs an admitted connection into the hardware (e.g. the
	// switch's translation table); OnRelease removes it.
	OnAdmit   func(vc atm.VC, rateBps float64)
	OnRelease func(vc atm.VC)

	// Admitted/Rejected/Released count decisions.
	Admitted uint64
	Rejected uint64
	Released uint64

	usedBps float64
	held    map[atm.VC]float64
}

// NewCACMachine builds the CAC agent as an EFSM. It answers SETUP with
// CONNECT or REJECT and RELEASE with RELEASE-ACK, on the port the request
// arrived from (point-to-point signaling channels: port n connects caller
// n; the reply goes out the same port number).
func NewCACMachine(c *CAC) *netsim.EFSM {
	if c.held == nil {
		c.held = make(map[atm.VC]float64)
	}
	m := netsim.NewEFSM("cac")
	m.State("listening", nil)
	m.Transition("listening", "listening",
		func(ctx *netsim.Ctx, m *netsim.EFSM, intr netsim.Interrupt) bool {
			return intr.Kind == netsim.IntrArrival
		},
		func(ctx *netsim.Ctx, m *netsim.EFSM, intr netsim.Interrupt) {
			msg, ok := intr.Pkt.Data.(Message)
			if !ok {
				panic(fmt.Sprintf("signaling: CAC got %T", intr.Pkt.Data))
			}
			switch msg.Type {
			case Setup:
				if _, dup := c.held[msg.VC]; dup {
					c.Rejected++
					ctx.Send(ctx.Net().NewPacket("sig", Message{Type: Reject, VC: msg.VC, Cause: "vc in use"}, msgBits), intr.Port)
					return
				}
				if c.usedBps+msg.RateBps > c.CapacityBps {
					c.Rejected++
					ctx.Send(ctx.Net().NewPacket("sig", Message{Type: Reject, VC: msg.VC, Cause: "capacity"}, msgBits), intr.Port)
					return
				}
				c.usedBps += msg.RateBps
				c.held[msg.VC] = msg.RateBps
				c.Admitted++
				if c.OnAdmit != nil {
					c.OnAdmit(msg.VC, msg.RateBps)
				}
				ctx.Send(ctx.Net().NewPacket("sig", Message{Type: Connect, VC: msg.VC, RateBps: msg.RateBps}, msgBits), intr.Port)
			case Release:
				if rate, held := c.held[msg.VC]; held {
					c.usedBps -= rate
					delete(c.held, msg.VC)
					c.Released++
					if c.OnRelease != nil {
						c.OnRelease(msg.VC)
					}
				}
				ctx.Send(ctx.Net().NewPacket("sig", Message{Type: ReleaseAck, VC: msg.VC}, msgBits), intr.Port)
			}
		})
	return m
}

// UsedBps returns the currently admitted bandwidth.
func (c *CAC) UsedBps() float64 { return c.usedBps }

// Caller is one connection user: it requests a connection after
// StartDelay, holds it for HoldTime while reporting activity through
// OnActive, then releases it.
type Caller struct {
	VC         atm.VC
	RateBps    float64
	StartDelay sim.Duration
	HoldTime   sim.Duration

	// OnActive fires when the connection is admitted; OnBlocked when the
	// CAC refuses it; OnDone after release completes.
	OnActive  func(ctx *netsim.Ctx)
	OnBlocked func(ctx *netsim.Ctx, cause string)
	OnDone    func(ctx *netsim.Ctx)

	// Outcome is the terminal state name after the run: "active",
	// "blocked" or "done".
	machine *netsim.EFSM
}

// Machine builds the caller EFSM. Signaling messages travel on port 0.
func (cl *Caller) Machine() *netsim.EFSM {
	m := netsim.NewEFSM("caller:" + cl.VC.String())
	cl.machine = m

	m.State("idle", nil)
	m.State("requesting", nil)
	m.State("active", nil)
	m.State("releasing", nil)
	m.State("blocked", nil)
	m.State("done", nil)

	isArr := func(t MsgType) func(ctx *netsim.Ctx, m *netsim.EFSM, intr netsim.Interrupt) bool {
		return func(ctx *netsim.Ctx, m *netsim.EFSM, intr netsim.Interrupt) bool {
			if intr.Kind != netsim.IntrArrival {
				return false
			}
			msg, ok := intr.Pkt.Data.(Message)
			return ok && msg.Type == t && msg.VC == cl.VC
		}
	}

	m.Transition("idle", "requesting",
		func(ctx *netsim.Ctx, m *netsim.EFSM, intr netsim.Interrupt) bool {
			return intr.Kind == netsim.IntrBegin
		},
		func(ctx *netsim.Ctx, m *netsim.EFSM, intr netsim.Interrupt) {
			ctx.SetTimer(cl.StartDelay, "setup")
		})
	m.Transition("requesting", "requesting",
		func(ctx *netsim.Ctx, m *netsim.EFSM, intr netsim.Interrupt) bool {
			return intr.Kind == netsim.IntrTimer && intr.Tag == "setup"
		},
		func(ctx *netsim.Ctx, m *netsim.EFSM, intr netsim.Interrupt) {
			ctx.Send(ctx.Net().NewPacket("sig", Message{Type: Setup, VC: cl.VC, RateBps: cl.RateBps}, msgBits), 0)
		})
	m.Transition("requesting", "active", isArr(Connect),
		func(ctx *netsim.Ctx, m *netsim.EFSM, intr netsim.Interrupt) {
			ctx.SetTimer(cl.HoldTime, "hangup")
			if cl.OnActive != nil {
				cl.OnActive(ctx)
			}
		})
	m.Transition("requesting", "blocked", isArr(Reject),
		func(ctx *netsim.Ctx, m *netsim.EFSM, intr netsim.Interrupt) {
			if cl.OnBlocked != nil {
				cl.OnBlocked(ctx, intr.Pkt.Data.(Message).Cause)
			}
		})
	m.Transition("active", "releasing",
		func(ctx *netsim.Ctx, m *netsim.EFSM, intr netsim.Interrupt) bool {
			return intr.Kind == netsim.IntrTimer && intr.Tag == "hangup"
		},
		func(ctx *netsim.Ctx, m *netsim.EFSM, intr netsim.Interrupt) {
			ctx.Send(ctx.Net().NewPacket("sig", Message{Type: Release, VC: cl.VC}, msgBits), 0)
		})
	m.Transition("releasing", "done", isArr(ReleaseAck),
		func(ctx *netsim.Ctx, m *netsim.EFSM, intr netsim.Interrupt) {
			if cl.OnDone != nil {
				cl.OnDone(ctx)
			}
		})
	return m
}

// State returns the caller's current EFSM state name.
func (cl *Caller) State() string {
	if cl.machine == nil {
		return "idle"
	}
	return cl.machine.Current()
}
