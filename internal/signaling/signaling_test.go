package signaling

import (
	"fmt"
	"testing"

	"castanet/internal/atm"
	"castanet/internal/netsim"
	"castanet/internal/sim"
)

// buildNet wires n callers to one CAC over point-to-point signaling
// channels with the given propagation delay.
func buildNet(t *testing.T, cac *CAC, callers []*Caller, delay sim.Duration) *netsim.Network {
	t.Helper()
	n := netsim.New(1)
	cacNode := n.Node("cac", NewCACMachine(cac))
	for i, cl := range callers {
		node := n.Node(fmt.Sprintf("caller%d", i), cl.Machine())
		n.Connect(node, 0, cacNode, i, netsim.LinkParams{Delay: delay})
		n.Connect(cacNode, i, node, 0, netsim.LinkParams{Delay: delay})
	}
	return n
}

func TestCallAdmissionAndRelease(t *testing.T) {
	cac := &CAC{CapacityBps: 10e6}
	var admitted, released []atm.VC
	cac.OnAdmit = func(vc atm.VC, rate float64) { admitted = append(admitted, vc) }
	cac.OnRelease = func(vc atm.VC) { released = append(released, vc) }
	cl := &Caller{
		VC: atm.VC{VPI: 1, VCI: 1}, RateBps: 2e6,
		StartDelay: sim.Millisecond, HoldTime: 10 * sim.Millisecond,
	}
	n := buildNet(t, cac, []*Caller{cl}, 100*sim.Microsecond)
	n.Run(50 * sim.Millisecond)
	if cl.State() != "done" {
		t.Fatalf("caller state = %q, want done", cl.State())
	}
	if len(admitted) != 1 || len(released) != 1 {
		t.Fatalf("admitted=%v released=%v", admitted, released)
	}
	if cac.UsedBps() != 0 {
		t.Errorf("capacity leaked: %v bps still held", cac.UsedBps())
	}
}

func TestCACBlocksOverCapacity(t *testing.T) {
	// Capacity for exactly two 2 Mb/s calls; three simultaneous callers:
	// one must be blocked, and after the first release the blocked VC's
	// bandwidth is available again.
	cac := &CAC{CapacityBps: 4e6}
	callers := []*Caller{
		{VC: atm.VC{VPI: 1, VCI: 1}, RateBps: 2e6, StartDelay: 1 * sim.Millisecond, HoldTime: 20 * sim.Millisecond},
		{VC: atm.VC{VPI: 1, VCI: 2}, RateBps: 2e6, StartDelay: 2 * sim.Millisecond, HoldTime: 20 * sim.Millisecond},
		{VC: atm.VC{VPI: 1, VCI: 3}, RateBps: 2e6, StartDelay: 3 * sim.Millisecond, HoldTime: 20 * sim.Millisecond},
	}
	var blockedCause string
	callers[2].OnBlocked = func(ctx *netsim.Ctx, cause string) { blockedCause = cause }
	n := buildNet(t, cac, callers, 100*sim.Microsecond)
	n.Run(100 * sim.Millisecond)
	if cac.Admitted != 2 || cac.Rejected != 1 {
		t.Fatalf("admitted=%d rejected=%d", cac.Admitted, cac.Rejected)
	}
	if callers[2].State() != "blocked" {
		t.Errorf("third caller state = %q", callers[2].State())
	}
	if blockedCause != "capacity" {
		t.Errorf("cause = %q", blockedCause)
	}
	if callers[0].State() != "done" || callers[1].State() != "done" {
		t.Errorf("admitted callers did not finish: %q %q", callers[0].State(), callers[1].State())
	}
}

func TestCACReusesReleasedCapacity(t *testing.T) {
	cac := &CAC{CapacityBps: 2e6}
	early := &Caller{VC: atm.VC{VPI: 1, VCI: 1}, RateBps: 2e6,
		StartDelay: sim.Millisecond, HoldTime: 5 * sim.Millisecond}
	late := &Caller{VC: atm.VC{VPI: 1, VCI: 2}, RateBps: 2e6,
		StartDelay: 20 * sim.Millisecond, HoldTime: 5 * sim.Millisecond}
	n := buildNet(t, cac, []*Caller{early, late}, 100*sim.Microsecond)
	n.Run(100 * sim.Millisecond)
	if cac.Admitted != 2 || cac.Rejected != 0 {
		t.Fatalf("admitted=%d rejected=%d (released capacity not reused)", cac.Admitted, cac.Rejected)
	}
	if late.State() != "done" {
		t.Errorf("late caller = %q", late.State())
	}
}

func TestCACRejectsDuplicateVC(t *testing.T) {
	cac := &CAC{CapacityBps: 100e6}
	a := &Caller{VC: atm.VC{VPI: 1, VCI: 7}, RateBps: 1e6,
		StartDelay: sim.Millisecond, HoldTime: 50 * sim.Millisecond}
	b := &Caller{VC: atm.VC{VPI: 1, VCI: 7}, RateBps: 1e6,
		StartDelay: 2 * sim.Millisecond, HoldTime: 50 * sim.Millisecond}
	n := buildNet(t, cac, []*Caller{a, b}, 100*sim.Microsecond)
	n.Run(10 * sim.Millisecond)
	if cac.Admitted != 1 || cac.Rejected != 1 {
		t.Fatalf("admitted=%d rejected=%d", cac.Admitted, cac.Rejected)
	}
	if b.State() != "blocked" {
		t.Errorf("duplicate VC caller = %q", b.State())
	}
}
