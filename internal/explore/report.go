package explore

import (
	"fmt"
	"io"
	"strings"
	"time"

	"castanet/internal/obs"
)

// WriteDigest writes the deterministic exploration digest: identity, the
// generation ladder, the merged coverage section (same line format as a
// campaign digest) and one line per retained failure. Nothing wall-clock,
// shard- or scheduling-dependent appears, so two executions of the same
// spec — at any shard count, including one killed and resumed — produce
// byte-identical files. The property tests and the explore-smoke CI job
// diff exactly this output.
func (r *Result) WriteDigest(w io.Writer) error {
	target := r.Target
	if target == "" {
		target = "*"
	}
	if _, err := fmt.Fprintf(w, "explore %s seed=%d generations=%d population=%d target=%s\n",
		r.Space, r.Seed, r.Generations, r.Population, target); err != nil {
		return err
	}
	for _, g := range r.Ladder {
		if _, err := fmt.Fprintf(w, "gen=%03d covered=%d/%d new=%d accepted=%d rejected=%d failures=%d\n",
			g.Gen, g.Covered, g.Total, g.New, g.Accepted, g.Rejected, g.Failures); err != nil {
			return err
		}
	}
	hit, total := obs.CoverTotals(r.Coverage)
	if _, err := fmt.Fprintf(w, "explore covered=%d total=%d generations-run=%d failures=%d\n",
		hit, total, len(r.Ladder), r.FailTotal); err != nil {
		return err
	}
	if err := writeCoverageSection(w, r.Coverage); err != nil {
		return err
	}
	for _, f := range r.Failures {
		if _, err := fmt.Fprintf(w, "run=%06d gen=%03d slot=%03d seed=0x%016x cell=%s fail=%s\n",
			f.Index, f.Gen, f.Slot, f.Seed, f.Cell, f.Label); err != nil {
			return err
		}
	}
	return nil
}

// writeCoverageSection mirrors the campaign digest's coverage: section
// line format so the two artifact families diff with the same tools.
func writeCoverageSection(w io.Writer, snaps []obs.CoverGroupSnap) error {
	if len(snaps) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "coverage: groups=%d\n", len(snaps)); err != nil {
		return err
	}
	for _, g := range snaps {
		hit, total := g.Covered()
		if _, err := fmt.Fprintf(w, "cover group=%s hit=%d total=%d pct=%.1f\n",
			g.Name, hit, total, 100*g.Ratio()); err != nil {
			return err
		}
		for _, p := range g.Points {
			if _, err := fmt.Fprintf(w, "cover point=%s.%s", g.Name, p.Name); err != nil {
				return err
			}
			for _, b := range p.Bins {
				if _, err := fmt.Fprintf(w, " %s=%d", b.Label, b.Hits); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReplayArgs returns the castanet argument string that reproduces
// failure f in isolation.
func (r *Result) ReplayArgs(f Failure) string {
	args := fmt.Sprintf("-explore -seed %d -generations %d -population %d",
		r.Seed, r.Generations, r.Population)
	if r.Target != "" {
		args += fmt.Sprintf(" -cover-target %s", r.Target)
	}
	return fmt.Sprintf("%s -replay %d", args, f.Index)
}

// WriteReport writes the operator summary: headline, ladder, per-group
// coverage, and the failure digest with one replay line per entry.
func (r *Result) WriteReport(w io.Writer) error {
	hit, total := obs.CoverTotals(r.Coverage)
	state := "complete"
	if !r.Complete {
		state = fmt.Sprintf("interrupted after %d/%d generations", len(r.Ladder), r.Generations)
	}
	if _, err := fmt.Fprintf(w, "explore %q: %d generations × %d scenarios in %v (%s)\n",
		r.Space, r.Generations, r.Population, r.Wall.Round(time.Millisecond), state); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  seed=%d covered=%d/%d bins failures=%d\n",
		r.Seed, hit, total, r.FailTotal); err != nil {
		return err
	}
	for _, g := range r.Ladder {
		if _, err := fmt.Fprintf(w, "  gen=%03d covered=%d/%d new=%-4d accepted=%-4d rejected=%-4d failures=%d\n",
			g.Gen, g.Covered, g.Total, g.New, g.Accepted, g.Rejected, g.Failures); err != nil {
			return err
		}
	}
	for _, g := range r.Coverage {
		h, t := g.Covered()
		if _, err := fmt.Fprintf(w, "  cover %-24s %d/%d bins (%.1f%%)\n",
			g.Name, h, t, 100*g.Ratio()); err != nil {
			return err
		}
	}
	if r.FailTotal > 0 {
		if _, err := fmt.Fprintf(w, "failure digest (first %d of %d):\n", len(r.Failures), r.FailTotal); err != nil {
			return err
		}
		for _, f := range r.Failures {
			if _, err := fmt.Fprintf(w, "  run=%06d gen=%03d slot=%03d seed=0x%016x cell=%s fail=%s\n",
				f.Index, f.Gen, f.Slot, f.Seed, f.Cell, f.Label); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "    replay: castanet %s\n", r.ReplayArgs(f)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Digest renders WriteDigest to a string (test convenience).
func (r *Result) Digest() string {
	var b strings.Builder
	r.WriteDigest(&b)
	return b.String()
}
