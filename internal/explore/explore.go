package explore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"castanet/internal/campaign"
	"castanet/internal/obs"
	"castanet/internal/sim"
)

// ErrSpec reports an invalid exploration spec.
var ErrSpec = errors.New("explore: invalid spec")

// Seed-derivation salts: each deterministic stream the explorer consumes
// derives from the master seed through its own salt so streams never
// collide — the population seeding stream, one campaign seed per
// generation, and one mutation stream per generation boundary.
const (
	popSalt = 0xe590_0001
	genSalt = 0xe590_1000
	mutSalt = 0xe590_2000
)

// noveltyPrefix names the per-slot novelty stats the explorer smuggles
// through the campaign aggregate: "novelty.s<slot>". Stats are
// checkpointed per shard, so selection input survives kill/resume with
// the same exactness as the coverage section. The prefix is reserved;
// Space RunFuncs must not observe stats under it.
const noveltyPrefix = "novelty.s"

// Spec configures one exploration.
type Spec struct {
	// Space is the scenario space to search.
	Space Space
	// Seed is the master seed every derived stream hangs off.
	Seed uint64
	// Generations is how many campaign generations to run.
	Generations int
	// Population is the number of scenarios per generation.
	Population int
	// Shards is the per-generation campaign worker count (0 =
	// GOMAXPROCS). It never appears in the digest: the ladder, coverage
	// and failure lines are shard-invariant.
	Shards int
	// Target, when non-empty, restricts novelty scoring and mutation
	// pressure to this cover group; the ladder still reports all groups.
	Target string
	// Elite is how many top-novelty scenarios parent the next generation
	// (default max(1, Population/4)). The elite survive unmutated; the
	// remaining slots are coverage-guided mutants of the elite.
	Elite int
	// DigestMax bounds the retained failure lines across the whole
	// exploration (default 16); failures beyond it are counted, not kept.
	DigestMax int
	// Policy supervises every run exactly as in a static campaign.
	Policy campaign.Policy
	// Checkpoint, when non-empty, makes the exploration durable: the
	// explorer state file lives at this path and each in-flight
	// generation checkpoints to "<path>.g<gen>". Resume continues from
	// the pair with a byte-identical final digest.
	Checkpoint string
	// CheckpointEvery is the per-generation campaign checkpoint cadence.
	CheckpointEvery int
	// Obs, when non-nil, receives live telemetry: the campaign engine's
	// per-shard progress plus the explorer's generation ladder gauges and
	// the "explore.progress" cover group.
	Obs *obs.Run
	// OnGeneration, when non-nil, observes each committed generation —
	// progress printing and liveness heartbeats hang here.
	OnGeneration func(GenStat)
	// OnResult passes through to each generation's campaign spec.
	OnResult func(campaign.Result)
}

func (s *Spec) validate() error {
	switch {
	case s.Space == nil:
		return fmt.Errorf("%w: nil space", ErrSpec)
	case len(s.Space.Genes()) == 0:
		return fmt.Errorf("%w: space %q has no genes", ErrSpec, s.Space.Name())
	case s.Generations < 1:
		return fmt.Errorf("%w: generations %d must be at least 1", ErrSpec, s.Generations)
	case s.Population < 1:
		return fmt.Errorf("%w: population %d must be at least 1", ErrSpec, s.Population)
	case s.Elite < 0 || s.Elite > s.Population:
		return fmt.Errorf("%w: elite %d outside 1..population", ErrSpec, s.Elite)
	case s.DigestMax < 0:
		return fmt.Errorf("%w: digest max %d must be non-negative", ErrSpec, s.DigestMax)
	}
	for _, g := range s.Space.Genes() {
		if g.Card < 1 || g.Card > 1<<16 {
			return fmt.Errorf("%w: gene %q cardinality %d outside 1..65536", ErrSpec, g.Name, g.Card)
		}
	}
	return nil
}

func (s *Spec) elite() int {
	if s.Elite > 0 {
		return s.Elite
	}
	if e := s.Population / 4; e > 0 {
		return e
	}
	return 1
}

func (s *Spec) digestMax() int {
	if s.DigestMax > 0 {
		return s.DigestMax
	}
	return 16
}

// genCkptPath is the per-generation campaign checkpoint file.
func (s *Spec) genCkptPath(gen int) string {
	return fmt.Sprintf("%s.g%03d", s.Checkpoint, gen)
}

// GenStat is one generation-ladder entry: the cumulative coverage after
// the generation committed, the bins it newly covered, and how its
// scenarios scored. Everything here is integer-derived and
// shard-invariant.
type GenStat struct {
	Gen      int
	Covered  int // cumulative hit bins after this generation
	Total    int // cumulative defined bins
	New      int // bins this generation covered first
	Accepted int // scenarios that covered at least one new bin
	Rejected int // scenarios that covered nothing new
	Failures int // verification failures in this generation
}

// Failure is one retained exploration failure, addressed by its global
// run index gen*Population + slot — the coordinate -replay consumes.
type Failure struct {
	Index uint64
	Gen   int
	Slot  int
	Seed  uint64
	Cell  string
	Label string
}

// Result is the end-of-exploration report.
type Result struct {
	Space       string
	Seed        uint64
	Generations int // configured
	Population  int
	Target      string

	Ladder    []GenStat
	Coverage  []obs.CoverGroupSnap
	Failures  []Failure
	FailTotal int
	// Complete is false when cancellation stopped the exploration before
	// the configured generation count; the ladder holds the committed
	// generations only.
	Complete bool
	Wall     time.Duration
}

// engine is the in-flight exploration state; everything in it is a pure
// function of the spec and the committed generation count.
type engine struct {
	spec *Spec
	pop  []Genome
	cum  []obs.CoverGroupSnap
	// before indexes the bins covered before the current generation; the
	// wrapped RunFuncs score novelty against it.
	before    map[string]struct{}
	ladder    []GenStat
	failures  []Failure
	failTotal int
	gen       int // next generation to run
}

// Execute runs a fresh exploration. An existing state file (and stale
// per-generation checkpoints) at Spec.Checkpoint are removed first; use
// Resume to continue one.
func Execute(ctx context.Context, spec Spec) (*Result, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	e := newEngine(&spec)
	if spec.Checkpoint != "" {
		removeState(&spec)
	}
	return e.run(ctx)
}

// Resume continues an exploration from Spec.Checkpoint: the explorer
// state file restores the committed generations (population, cumulative
// coverage, ladder, failures) and the interrupted generation's campaign
// checkpoint restores its partial progress, so the final digest is
// byte-identical to an uninterrupted run. A missing state file degrades
// to a fresh Execute.
func Resume(ctx context.Context, spec Spec) (*Result, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if spec.Checkpoint == "" {
		return nil, fmt.Errorf("%w: resume requires a checkpoint path", ErrSpec)
	}
	e := newEngine(&spec)
	loaded, err := loadState(&spec, e)
	if err != nil {
		return nil, err
	}
	if !loaded {
		return Execute(ctx, spec)
	}
	return e.run(ctx)
}

// newEngine builds the generation-zero engine: the seed population drawn
// from the population stream, empty cumulative coverage.
func newEngine(spec *Spec) *engine {
	e := &engine{spec: spec}
	genes := spec.Space.Genes()
	rng := sim.NewRNG(sim.DeriveSeed(spec.Seed, popSalt))
	e.pop = make([]Genome, spec.Population)
	for s := range e.pop {
		e.pop[s] = clampGenome(spec.Space.Seed(rng), genes)
	}
	return e
}

// run executes generations e.gen..Generations-1, committing each one's
// coverage and selection before the next begins.
func (e *engine) run(ctx context.Context) (*Result, error) {
	start := time.Now()
	for e.gen < e.spec.Generations && ctx.Err() == nil {
		g := e.gen
		sum, err := e.runGeneration(ctx, g)
		if err != nil {
			return nil, err
		}
		if incomplete(sum, e.spec.Population) {
			// Cancellation caught the generation mid-flight; its campaign
			// checkpoint holds the partial progress, the explorer state
			// still points at generation g, and Resume replays the rest.
			break
		}
		e.commit(g, sum)
		if e.spec.Checkpoint != "" {
			if err := saveState(e.spec, e); err != nil {
				return nil, fmt.Errorf("explore: state checkpoint: %w", err)
			}
			// The committed generation's campaign checkpoint is now
			// redundant: the state file carries everything it proved.
			removeGenCkpt(e.spec, g)
		}
	}
	res := e.result()
	res.Wall = time.Since(start)
	return res, nil
}

// incomplete reports whether a generation campaign was cut short.
func incomplete(sum *campaign.Summary, population int) bool {
	return sum.Skipped > 0 || sum.Completed+sum.Failed+sum.Quarantined < population
}

// runGeneration executes generation g as one campaign over the current
// population.
func (e *engine) runGeneration(ctx context.Context, g int) (*campaign.Summary, error) {
	e.before = binSet(e.cum, e.spec.Target)
	cells := make([]campaign.Cell, e.spec.Population)
	for s := range e.pop {
		cells[s] = e.wrapCell(g, s, e.pop[s])
	}
	cspec := campaign.Spec{
		Name:   fmt.Sprintf("%s-g%03d", e.spec.Space.Name(), g),
		Seed:   sim.DeriveSeed(e.spec.Seed, genSalt+uint64(g)),
		Runs:   e.spec.Population,
		Shards: e.spec.Shards,
		// Failures are bounded by the explorer across the whole ladder;
		// per generation every slot may keep its line.
		DigestMax: e.spec.Population,
		Matrix:    cells,
		Policy:    e.spec.Policy,
		Coverage:  true,
		Obs:       e.spec.Obs,
		OnResult:  e.spec.OnResult,
	}
	if e.spec.Checkpoint != "" {
		cspec.Checkpoint = e.spec.genCkptPath(g)
		cspec.CheckpointEvery = e.spec.CheckpointEvery
		// Resume degrades to a fresh Execute when the generation was
		// never interrupted (no checkpoint file on disk).
		return campaign.Resume(ctx, cspec)
	}
	return campaign.Execute(ctx, cspec)
}

// wrapCell compiles slot s's genome and wires the novelty probe around
// its RunFunc: after the scenario runs, the bins it hit that were not in
// the pre-generation cumulative set are counted into the campaign stat
// "novelty.s<slot>", which the engine checkpoints per shard like any
// other aggregate — the property that makes selection survive
// kill/resume.
func (e *engine) wrapCell(gen, slot int, genome Genome) campaign.Cell {
	cell := e.spec.Space.Cell(genome)
	cell.Experiment = fmt.Sprintf("g%03d/s%03d/%s", gen, slot, cell.Experiment)
	inner := cell.Run
	before, target, stat := e.before, e.spec.Target, noveltyStat(slot)
	cell.Run = func(ctx context.Context, r *campaign.Run) error {
		err := inner(ctx, r)
		r.Observe(stat, float64(countNovel(r.Cover().Snapshot(), before, target)))
		return err
	}
	return cell
}

func noveltyStat(slot int) string { return fmt.Sprintf("%s%03d", noveltyPrefix, slot) }

// parseNoveltySlot inverts noveltyStat; ok is false for foreign stats.
func parseNoveltySlot(name string) (int, bool) {
	if !strings.HasPrefix(name, noveltyPrefix) {
		return 0, false
	}
	slot, err := strconv.Atoi(strings.TrimPrefix(name, noveltyPrefix))
	if err != nil || slot < 0 {
		return 0, false
	}
	return slot, true
}

// binKey flattens a bin coordinate for set membership.
func binKey(group, point, label string) string {
	return group + "\x00" + point + "\x00" + label
}

// binSet indexes the hit bins of a snapshot, restricted to the target
// group when one is set.
func binSet(snaps []obs.CoverGroupSnap, target string) map[string]struct{} {
	set := make(map[string]struct{})
	for _, g := range snaps {
		if target != "" && g.Name != target {
			continue
		}
		for _, p := range g.Points {
			for _, b := range p.Bins {
				if b.Hits > 0 {
					set[binKey(g.Name, p.Name, b.Label)] = struct{}{}
				}
			}
		}
	}
	return set
}

// countNovel counts the hit bins of snaps absent from before.
func countNovel(snaps []obs.CoverGroupSnap, before map[string]struct{}, target string) int {
	n := 0
	for _, g := range snaps {
		if target != "" && g.Name != target {
			continue
		}
		for _, p := range g.Points {
			for _, b := range p.Bins {
				if b.Hits == 0 {
					continue
				}
				if _, ok := before[binKey(g.Name, p.Name, b.Label)]; !ok {
					n++
				}
			}
		}
	}
	return n
}

// commit folds a completed generation into the engine: cumulative
// coverage, ladder entry, retained failures, and the next population.
func (e *engine) commit(g int, sum *campaign.Summary) {
	novelty := make([]int, e.spec.Population)
	for _, st := range sum.Stats {
		if slot, ok := parseNoveltySlot(st.Name); ok && slot < len(novelty) {
			novelty[slot] = int(st.Sum)
		}
	}
	beforeHit, _ := obs.CoverTotals(e.cum)
	e.cum = obs.MergeCover(e.cum, sum.Coverage)
	hit, total := obs.CoverTotals(e.cum)

	accepted := 0
	for _, n := range novelty {
		if n > 0 {
			accepted++
		}
	}
	stat := GenStat{
		Gen: g, Covered: hit, Total: total, New: hit - beforeHit,
		Accepted: accepted, Rejected: e.spec.Population - accepted,
		Failures: sum.Failed,
	}
	e.ladder = append(e.ladder, stat)
	e.failTotal += sum.Failed
	for _, f := range sum.Failures {
		if len(e.failures) >= e.spec.digestMax() {
			break
		}
		e.failures = append(e.failures, Failure{
			Index: uint64(g)*uint64(e.spec.Population) + f.Index,
			Gen:   g, Slot: int(f.Index),
			Seed: f.Seed, Cell: f.Cell, Label: f.Label(),
		})
	}
	e.gen = g + 1
	if e.gen < e.spec.Generations {
		e.pop = e.nextPopulation(g, novelty)
	}
	e.publish(stat)
}

// nextPopulation selects and mutates: scenarios sort by novelty
// descending with slot order breaking ties, the top Elite survive
// unmutated, and the remaining slots are coverage-guided mutants of the
// elite (round-robin parents, one mutation stream per generation
// boundary consumed in slot order).
func (e *engine) nextPopulation(g int, novelty []int) []Genome {
	order := make([]int, e.spec.Population)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		if novelty[order[i]] != novelty[order[j]] {
			return novelty[order[i]] > novelty[order[j]]
		}
		return order[i] < order[j]
	})
	elite := order[:e.spec.elite()]
	press := e.pressure()
	genes := e.spec.Space.Genes()
	rng := sim.NewRNG(sim.DeriveSeed(e.spec.Seed, mutSalt+uint64(g)+1))
	next := make([]Genome, e.spec.Population)
	for s := range next {
		parent := e.pop[elite[s%len(elite)]]
		if s < len(elite) {
			next[s] = parent.Clone()
			continue
		}
		next[s] = clampGenome(e.spec.Space.Mutate(parent.Clone(), rng, press), genes)
	}
	return next
}

// pressure summarizes the cumulative coverage frontier for mutation: the
// first maxPressureBins uncovered bins in snapshot order (groups and
// points sorted by name, bins in definition order — deterministic),
// restricted to the target group when one is set.
func (e *engine) pressure() *Pressure {
	p := &Pressure{}
	p.Covered, p.Total = obs.CoverTotals(e.cum)
	for _, g := range e.cum {
		if e.spec.Target != "" && g.Name != e.spec.Target {
			continue
		}
		for _, pt := range g.Points {
			for _, b := range pt.Bins {
				if b.Hits > 0 || len(p.Uncovered) >= maxPressureBins {
					continue
				}
				p.Uncovered = append(p.Uncovered, BinRef{Group: g.Name, Point: pt.Name, Label: b.Label})
			}
		}
	}
	return p
}

// publish mirrors a committed generation into live telemetry: ladder
// gauges, accept/reject counters, and one bin per generation in the
// "explore.progress" cover group so /coverage shows exploration advance.
func (e *engine) publish(stat GenStat) {
	if e.spec.Obs != nil {
		reg := e.spec.Obs.Reg()
		reg.Gauge("explore.generation").Set(float64(stat.Gen + 1))
		reg.Gauge("explore.covered_bins").Set(float64(stat.Covered))
		reg.Gauge("explore.total_bins").Set(float64(stat.Total))
		reg.Gauge("explore.new_bins").Set(float64(stat.New))
		reg.Counter("explore.mutations.accepted").Add(uint64(stat.Accepted))
		reg.Counter("explore.mutations.rejected").Add(uint64(stat.Rejected))
		reg.Counter("explore.failures").Add(uint64(stat.Failures))
		labels := make([]string, e.spec.Generations)
		for i := range labels {
			labels[i] = fmt.Sprintf("g%03d", i)
		}
		e.spec.Obs.CoverReg().Group("explore.progress").
			Point("generation", labels...).Hit(fmt.Sprintf("g%03d", stat.Gen))
	}
	if e.spec.OnGeneration != nil {
		e.spec.OnGeneration(stat)
	}
}

func (e *engine) result() *Result {
	return &Result{
		Space:       e.spec.Space.Name(),
		Seed:        e.spec.Seed,
		Generations: e.spec.Generations,
		Population:  e.spec.Population,
		Target:      e.spec.Target,
		Ladder:      append([]GenStat(nil), e.ladder...),
		Coverage:    e.cum,
		Failures:    append([]Failure(nil), e.failures...),
		FailTotal:   e.failTotal,
		Complete:    e.gen >= e.spec.Generations,
	}
}

// Replay re-executes one exploration run in isolation, addressed by its
// global index gen*Population + slot (the run= coordinate in the
// digest). Generations before the target are re-derived deterministically
// — their campaigns re-run in memory, never touching checkpoint files —
// so the target generation's population is exactly the one the original
// exploration ran, then the single run replays under the campaign
// engine's supervision policy.
func Replay(ctx context.Context, spec Spec, index uint64) (campaign.Result, error) {
	if err := spec.validate(); err != nil {
		return campaign.Result{}, err
	}
	totalRuns := uint64(spec.Generations) * uint64(spec.Population)
	if index >= totalRuns {
		return campaign.Result{}, fmt.Errorf("%w: replay index %d outside 0..%d", ErrSpec, index, totalRuns-1)
	}
	// Re-derivation must not disturb (or depend on) durable state.
	spec.Checkpoint = ""
	spec.Obs = nil
	spec.OnGeneration = nil
	spec.OnResult = nil
	gen := int(index / uint64(spec.Population))
	slot := index % uint64(spec.Population)
	e := newEngine(&spec)
	for g := 0; g < gen; g++ {
		sum, err := e.runGeneration(ctx, g)
		if err != nil {
			return campaign.Result{}, err
		}
		if incomplete(sum, spec.Population) {
			return campaign.Result{}, ctx.Err()
		}
		e.commit(g, sum)
	}
	e.before = binSet(e.cum, spec.Target)
	cells := make([]campaign.Cell, spec.Population)
	for s := range e.pop {
		cells[s] = e.wrapCell(gen, s, e.pop[s])
	}
	cspec := campaign.Spec{
		Name:      fmt.Sprintf("%s-g%03d", spec.Space.Name(), gen),
		Seed:      sim.DeriveSeed(spec.Seed, genSalt+uint64(gen)),
		Runs:      spec.Population,
		Shards:    spec.Shards,
		DigestMax: spec.Population,
		Matrix:    cells,
		Policy:    spec.Policy,
		Coverage:  true,
	}
	return campaign.Replay(ctx, cspec, slot)
}
