package explore

import (
	"context"
	"fmt"
	"strings"
	"time"

	"castanet/internal/atm"
	"castanet/internal/campaign"
	"castanet/internal/coverify"
	"castanet/internal/dut"
	"castanet/internal/experiments"
	"castanet/internal/faultsim"
	"castanet/internal/ipc"
	"castanet/internal/obs"
	"castanet/internal/sim"
	"castanet/internal/traffic"
)

// SwitchSpace is the production scenario space: the switch co-verification
// rig parameterized over everything the static campaign matrices keep
// fixed — per-port traffic model, rate, volume and VC focus, cell-loss
// priority mix, link- and connection-table fault injection, and the
// coupling's δ-window, sync period and batching.
//
// Where the static "switch" and "faults" campaigns deliberately stay in
// the uncongested, spread-traffic regime (every cell must be delivered),
// the explorer's whole point is to leave it: VC-focused high-rate bursts
// overrun output queues, planted table faults exercise the
// detected/escaped cross, and CLP-tagged cells hit the priority bins. A
// congested output legally drops cells, so a clean scenario's verdict is
// mismatch-only — wrong or misrouted data fails the run, cells the
// hardware visibly dropped under overload do not (the static campaigns
// keep the strict every-cell-delivered check for the uncongested regime).
type SwitchSpace struct {
	cfg SwitchSpaceConfig
}

// SwitchSpaceConfig tunes the per-run observability of explored
// scenarios, mirroring experiments.CampaignConfig.
type SwitchSpaceConfig struct {
	// TraceEvery samples causal cell tracing inside each run (0 off).
	TraceEvery int
}

// NewSwitchSpace returns the switch scenario space.
func NewSwitchSpace(cfg SwitchSpaceConfig) *SwitchSpace {
	return &SwitchSpace{cfg: cfg}
}

// Gene layout. Per-port genes repeat for the four switch ports; the
// remaining genes configure priority, fault injection and the coupling.
const (
	geneKind  = 0  // +p: traffic model kind, card 7
	geneRate  = 4  // +p: nominal mean rate index, card len(rateTable)
	geneCells = 8  // +p: cell volume index, card len(cellsTable)
	geneVCs   = 12 // +p: 0 = spread over all VCs, 1+q = focus output q
	geneCLP   = 16 // CLP=1 fraction index
	geneFault = 17 // 0 clean, 1..4 link profile, 5..8 table-fault class
	geneFPort = 18 // table-fault port
	geneDelta = 19 // δ-window clocks index
	geneSync  = 20 // sync period index
	geneBatch = 21 // batched coupling on/off
	geneCount = 22
)

// Traffic model kinds (geneKind values).
const (
	kindSilent = iota
	kindCBR
	kindPoisson
	kindOnOff
	kindMMPP2
	kindPareto
	kindMPEG
	kindCount
)

var kindNames = [kindCount]string{"silent", "cbr", "poisson", "onoff", "mmpp2", "pareto", "mpeg"}

// rateTable is the nominal mean cell rate menu (cells/s). The top entries
// exceed what a single output port can sink (~377k cells/s line rate)
// once two VC-focused ports pile onto it — the congestion regime the
// static matrices never enter.
var rateTable = []float64{40e3, 60e3, 80e3, 110e3, 150e3, 200e3, 250e3, 300e3}

// cellsTable is the per-port cell volume menu.
var cellsTable = []uint64{8, 12, 16, 24, 32, 48}

// clpTable is the CLP=1 fraction menu.
var clpTable = []float64{0, 0.1, 0.25, 0.5}

// deltaTable is the δ-window menu in HDL clocks (50 ns each).
var deltaTable = []int{16, 32, 64, 128}

// syncTable is the periodic time-update menu in microseconds.
var syncTable = []int{10, 25, 50, 100}

// switchGenes is the fixed genome schema.
var switchGenes = buildSwitchGenes()

func buildSwitchGenes() []Gene {
	genes := make([]Gene, geneCount)
	for p := 0; p < dut.SwitchPorts; p++ {
		genes[geneKind+p] = Gene{Name: fmt.Sprintf("kind%d", p), Card: kindCount}
		genes[geneRate+p] = Gene{Name: fmt.Sprintf("rate%d", p), Card: len(rateTable)}
		genes[geneCells+p] = Gene{Name: fmt.Sprintf("cells%d", p), Card: len(cellsTable)}
		genes[geneVCs+p] = Gene{Name: fmt.Sprintf("vcs%d", p), Card: dut.SwitchPorts + 1}
	}
	genes[geneCLP] = Gene{Name: "clp", Card: len(clpTable)}
	genes[geneFault] = Gene{Name: "fault", Card: 1 + 4 + 4}
	genes[geneFPort] = Gene{Name: "fport", Card: dut.SwitchPorts}
	genes[geneDelta] = Gene{Name: "delta", Card: len(deltaTable)}
	genes[geneSync] = Gene{Name: "sync", Card: len(syncTable)}
	genes[geneBatch] = Gene{Name: "batch", Card: 2}
	return genes
}

// Name implements Space.
func (s *SwitchSpace) Name() string { return "switch-explore" }

// Genes implements Space.
func (s *SwitchSpace) Genes() []Gene { return switchGenes }

// Seed implements Space: a uniform random genome.
func (s *SwitchSpace) Seed(rng *sim.RNG) Genome {
	g := make(Genome, geneCount)
	for i, gene := range switchGenes {
		g[i] = uint16(rng.Intn(gene.Card))
	}
	return g
}

// scenario is a decoded genome.
type scenario struct {
	genome  Genome
	clp     float64
	fault   int // raw geneFault value
	fport   int
	delta   sim.Duration
	sync    sim.Duration
	batch   bool
	horizon sim.Time
}

// decode interprets a genome, repairing the one illegal configuration
// (all ports silent: port 0 becomes CBR).
func (s *SwitchSpace) decode(g Genome) scenario {
	g = clampGenome(g.Clone(), switchGenes)
	active := false
	for p := 0; p < dut.SwitchPorts; p++ {
		if g[geneKind+p] != kindSilent {
			active = true
		}
	}
	if !active {
		g[geneKind+0] = kindCBR
	}
	sc := scenario{
		genome: g,
		clp:    clpTable[g[geneCLP]],
		fault:  int(g[geneFault]),
		fport:  int(g[geneFPort]),
		delta:  sim.Duration(deltaTable[g[geneDelta]]) * 50 * sim.Nanosecond,
		sync:   sim.Duration(syncTable[g[geneSync]]) * sim.Microsecond,
		batch:  g[geneBatch] != 0,
	}
	// Horizon: the slowest port's expected emission time with a per-kind
	// dispersion margin (bursty models emit their volume unevenly), plus
	// traversal slack. A pure function of the genome.
	for p := 0; p < dut.SwitchPorts; p++ {
		kind := int(g[geneKind+p])
		if kind == kindSilent {
			continue
		}
		rate := rateTable[g[geneRate+p]]
		cells := float64(cellsTable[g[geneCells+p]])
		floor, margin := rate, 2.0
		switch kind {
		case kindCBR:
			margin = 1.3
		case kindOnOff:
			margin = 3
		case kindMMPP2:
			floor, margin = rate/2, 2 // slowest modulation state
		case kindPareto:
			margin = 5 // heavy-tailed OFF periods
		case kindMPEG:
			margin = 3
		}
		if h := sim.FromSeconds(cells / floor * margin); h > sc.horizon {
			sc.horizon = h
		}
	}
	sc.horizon += 500 * sim.Microsecond
	return sc
}

// model builds port p's traffic model; the menus pin each model's mean
// rate at the gene's nominal rate (MMPP2 averages 1.25× across its two
// states) so the horizon estimate holds for every kind.
func (sc *scenario) model(p int) traffic.Model {
	rate := rateTable[sc.genome[geneRate+p]]
	switch sc.genome[geneKind+p] {
	case kindCBR:
		return traffic.NewCBR(rate)
	case kindPoisson:
		return traffic.NewPoisson(rate)
	case kindOnOff:
		return &traffic.OnOff{
			PeakInterval: sim.FromSeconds(1 / (2 * rate)),
			MeanOn:       40 * sim.Microsecond,
			MeanOff:      40 * sim.Microsecond,
		}
	case kindMMPP2:
		return &traffic.MMPP2{
			Rate1: rate / 2, Rate2: 2 * rate,
			Sojourn1: 50 * sim.Microsecond, Sojourn2: 50 * sim.Microsecond,
		}
	case kindPareto:
		return &traffic.ParetoOnOff{
			PeakInterval: sim.FromSeconds(1 / (2 * rate)),
			MeanOn:       40 * sim.Microsecond,
			MeanOff:      20 * sim.Microsecond,
			Alpha:        1.5,
		}
	case kindMPEG:
		// Scaled-down video: frame cadence raised until the mean cell
		// rate approximates the gene's nominal rate (~11.75 cells per
		// mean GOP frame), cells spaced at the 2.65 µs line-cell time.
		return &traffic.MPEG{
			FrameRate: rate / 11.75,
			MeanI:     1600, MeanP: 800, MeanB: 300,
			CV:           0.3,
			LinkCellTime: 2650 * sim.Nanosecond,
		}
	}
	return nil
}

// portVCs returns port p's connection list: the full DefaultTable spread
// or a single focused VC aimed at one output port.
func (sc *scenario) portVCs(p int) []atm.VC {
	v := int(sc.genome[geneVCs+p])
	if v == 0 {
		return coverify.PortVCs(p)
	}
	return []atm.VC{{VPI: byte(p + 1), VCI: uint16(100 + v - 1)}}
}

// tableFaultVC is the connection a table-fault scenario poisons: the VC
// the fault port would drive first if it is active — so the fault is
// detected exactly when the scenario aligns traffic with it, and escapes
// when the port stays silent.
func (sc *scenario) tableFaultVC() atm.VC {
	q := 0
	if v := int(sc.genome[geneVCs+sc.fport]); v > 0 {
		q = v - 1
	}
	return atm.VC{VPI: byte(sc.fport + 1), VCI: uint16(100 + q)}
}

// faultLabel names the scenario's fault column for the campaign cell.
func (sc *scenario) faultLabel() string {
	switch {
	case sc.fault == 0:
		return "clean"
	case sc.fault <= 4:
		return linkProfiles()[sc.fault-1].Name
	default:
		return fmt.Sprintf("%s@p%d", faultsim.Classes()[sc.fault-5], sc.fport)
	}
}

// linkProfiles caches the shared experiments profile menu.
var linkProfilesCached []experiments.LinkFaultProfile

func linkProfiles() []experiments.LinkFaultProfile {
	if linkProfilesCached == nil {
		linkProfilesCached = experiments.LinkFaultProfiles()
	}
	return linkProfilesCached
}

// label renders the genome as the cell's experiment name: one digit per
// gene (every cardinality is below ten), stable and replay-greppable.
func (sc *scenario) label() string {
	var b strings.Builder
	b.WriteString("sw-")
	for _, v := range sc.genome {
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// Cell implements Space: compile a genome into a campaign cell.
func (s *SwitchSpace) Cell(g Genome) campaign.Cell {
	sc := s.decode(g)
	return campaign.Cell{
		Experiment: sc.label(),
		Fault:      sc.faultLabel(),
		Run:        s.runFunc(sc),
	}
}

// runFunc builds the scenario's RunFunc. All run randomness derives from
// the campaign run's own seed stream, exactly like a static matrix cell.
func (s *SwitchSpace) runFunc(sc scenario) campaign.RunFunc {
	return func(ctx context.Context, r *campaign.Run) error {
		rng := r.RNG()
		var tr [dut.SwitchPorts]coverify.PortTraffic
		for p := 0; p < dut.SwitchPorts; p++ {
			if sc.genome[geneKind+p] == kindSilent {
				continue
			}
			tr[p] = coverify.PortTraffic{
				Model: sc.model(p),
				VCs:   sc.portVCs(p),
				CLP1:  sc.clp,
				Cells: cellsTable[sc.genome[geneCells+p]],
			}
		}
		var cells *obs.CellTracker
		if s.cfg.TraceEvery > 0 {
			cells = obs.NewCellTracker(s.cfg.TraceEvery, 0)
		}
		cfg := coverify.SwitchRigConfig{
			Seed:      rng.Uint64(),
			Traffic:   tr,
			Delta:     sc.delta,
			SyncEvery: sc.sync,
			Batch:     sc.batch,
			Cells:     cells,
			Recorder:  obs.NewRecorder(0),
			Cover:     r.Cover(),
			Deadline:  r.Deadline,
		}

		var profile *experiments.LinkFaultProfile
		if sc.fault >= 1 && sc.fault <= 4 {
			profile = &linkProfiles()[sc.fault-1]
			cfg.Remote = true
			cfg.Reliable = &ipc.ReliableConfig{
				MaxRetries: 20,
				RetryBase:  time.Millisecond,
				RetryCap:   8 * time.Millisecond,
			}
			cfg.Fault = &ipc.FaultConfig{Seed: rng.Uint64(), Send: profile.Dir, Recv: profile.Dir}
			if profile.Abort {
				cfg.Fault.Recv = ipc.DirFaults{}
				cfg.Reliable.MaxRetries = 5
			}
		}

		rig := coverify.NewSwitchRig(cfg)
		// Table faults poison the "silicon" only: the reference model
		// keeps the intact table, so the comparator is the detector.
		var plantedFault string
		if sc.fault >= 5 {
			vc := sc.tableFaultVC()
			fault := faultsim.EntryFaults(rig.Cfg.Table, vc)[sc.fault-5]
			poisoned := coverify.DefaultTable()
			fault.Mutate(poisoned)
			rig.DUT.Table = poisoned
			plantedFault = fault.Name
		}

		release := campaign.OnCancel(ctx, func() { rig.Close() })
		err := rig.Run(sc.horizon)
		release()
		rig.Close()

		expectAbort := profile != nil && profile.Abort
		switch {
		case err != nil && !expectAbort:
			return campaign.Detailed(err, rig.FailureDigest())
		case err != nil && expectAbort:
			return nil // the partition aborted cleanly, as required
		case expectAbort:
			return fmt.Errorf("partitioned link completed instead of aborting")
		}
		r.Observe("cells", float64(rig.Offered))

		if plantedFault != "" {
			// A planted fault's run cannot "fail": the outcome — caught
			// or escaped — is the coverage signal itself.
			faultsim.CoverOne(r.Cover(), plantedFault, !rig.Cmp.Clean())
			return nil
		}
		// Congestion legally drops cells (that is the point of the
		// VC-focused high-rate scenarios), so only wrong or misrouted
		// data fails a clean scenario — never outstanding cells.
		if m := rig.Cmp.Mismatches(); len(m) > 0 {
			return campaign.Detailed(
				fmt.Errorf("switch comparison mismatched: %s", rig.Cmp.Summary()),
				rig.FailureDigest())
		}
		return nil
	}
}

// Mutate implements Space: with coverage pressure available, one
// uncovered bin usually picks a directed operator (fault alignment, rate
// push, priority or coupling perturbation); an undirected single-gene
// perturbation keeps the search ergodic either way.
func (s *SwitchSpace) Mutate(parent Genome, rng *sim.RNG, p *Pressure) Genome {
	g := clampGenome(parent, switchGenes)
	directed := false
	if len(p.Uncovered) > 0 && rng.Bool(0.75) {
		directed = s.nudge(g, rng, p.Uncovered[rng.Intn(len(p.Uncovered))])
	}
	if !directed || rng.Bool(0.3) {
		i := rng.Intn(len(g))
		g[i] = uint16(rng.Intn(switchGenes[i].Card))
	}
	return g
}

// nudge applies the directed mutation operator for one uncovered bin;
// false means no operator applies to that group.
func (s *SwitchSpace) nudge(g Genome, rng *sim.RNG, ref BinRef) bool {
	switch ref.Group {
	case "faultsim.fault":
		// "class×outcome": plant that class; align the fault port with
		// live traffic to chase detected, park it on a silenced port to
		// chase escaped.
		class, outcome, ok := strings.Cut(ref.Label, "×")
		if !ok {
			return false
		}
		for i, name := range faultsim.Classes() {
			if name == class {
				g[geneFault] = uint16(5 + i)
			}
		}
		fp := rng.Intn(dut.SwitchPorts)
		g[geneFPort] = uint16(fp)
		if outcome == "escaped" {
			g[geneKind+fp] = kindSilent
		} else if g[geneKind+fp] == kindSilent {
			g[geneKind+fp] = uint16(1 + rng.Intn(kindCount-1))
		}
		return true
	case "coverify.cmp":
		// The mismatch verdict needs a planted defect on live traffic.
		fp := rng.Intn(dut.SwitchPorts)
		g[geneFault] = uint16(5 + rng.Intn(4))
		g[geneFPort] = uint16(fp)
		if g[geneKind+fp] == kindSilent {
			g[geneKind+fp] = uint16(1 + rng.Intn(kindCount-1))
		}
		return true
	case "dut.queue":
		// Depth bands and drop causes want focused overload: two ports
		// at top rate aimed at one output.
		q := rng.Intn(dut.SwitchPorts)
		for _, fp := range []int{rng.Intn(dut.SwitchPorts), rng.Intn(dut.SwitchPorts)} {
			if g[geneKind+fp] == kindSilent {
				g[geneKind+fp] = uint16(1 + rng.Intn(kindCount-1))
			}
			g[geneRate+fp] = uint16(len(rateTable) - 1 - rng.Intn(2))
			g[geneCells+fp] = uint16(len(cellsTable) - 1 - rng.Intn(2))
			g[geneVCs+fp] = uint16(1 + q)
		}
		return true
	case "coverify.cell_header":
		if ref.Point == "clp" {
			g[geneCLP] = uint16(1 + rng.Intn(len(clpTable)-1))
			return true
		}
		// Header range bins follow from which ports drive: wake a port.
		fp := rng.Intn(dut.SwitchPorts)
		if g[geneKind+fp] == kindSilent {
			g[geneKind+fp] = uint16(1 + rng.Intn(kindCount-1))
		}
		g[geneVCs+fp] = uint16(rng.Intn(dut.SwitchPorts + 1))
		return true
	case "cosim.sync", "cosim.coupling":
		// Sync-lag and batch-size bins respond to the coupling shape.
		g[geneDelta] = uint16(rng.Intn(len(deltaTable)))
		g[geneSync] = uint16(rng.Intn(len(syncTable)))
		g[geneBatch] = uint16(rng.Intn(2))
		return true
	}
	return false
}
