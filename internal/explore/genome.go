// Package explore closes the coverage loop: where a campaign sweeps a
// static experiment × fault matrix and merely *measures* functional
// coverage, the explorer *pursues* it. Each generation is one campaign
// (reusing the engine's supervision, retry, quarantine and checkpoint
// machinery unchanged), whose merged coverage snapshot scores every
// scenario by the bins it newly covered; the best scenarios seed the next
// generation through coverage-guided mutation of traffic mix, rates,
// fault profiles and coupling configuration.
//
// Determinism contract: every generation seed, every mutation draw and
// every per-run seed derives from the explorer's master seed through
// sim.DeriveSeed, selection ties break on slot order, and per-slot
// novelty rides the campaign's checkpointed stat aggregates — so the
// final digest is byte-identical at any shard count and across
// kill/resume, and any discovered failure replays in isolation by global
// run index.
package explore

import (
	"castanet/internal/campaign"
	"castanet/internal/sim"
)

// Genome is one scenario's parameter vector: one bounded integer per
// gene, interpreted by the Space that issued it.
type Genome []uint16

// Clone returns an independent copy.
func (g Genome) Clone() Genome {
	return append(Genome(nil), g...)
}

// Gene describes one genome position: a name (for fingerprints and
// reports) and the cardinality of its value domain [0, Card).
type Gene struct {
	Name string
	Card int
}

// BinRef names one uncovered coverage bin — the currency mutation
// operators trade in.
type BinRef struct {
	Group string
	Point string
	Label string
}

// Pressure is the coverage feedback handed to Space.Mutate: the bins
// still uncovered after the last generation (sorted by group, point and
// definition order, bounded by maxPressureBins) plus the cumulative
// headline counts. An empty Uncovered list means mutation should fall
// back to undirected perturbation.
type Pressure struct {
	Uncovered []BinRef
	Covered   int
	Total     int
}

// maxPressureBins bounds the uncovered-bin list a Space sees per
// generation; beyond it the coverage frontier is summarized by the
// counts alone.
const maxPressureBins = 128

// Space defines a scenario space the explorer searches: how to seed a
// population, how to turn a genome into a runnable campaign cell, and how
// to mutate a genome under coverage pressure.
//
// Determinism contract: Seed and Mutate must draw randomness only from
// the supplied RNG, and Cell must be a pure function of the genome — the
// returned RunFunc derives all run randomness from the campaign run's
// own seed (r.RNG()), exactly like a static matrix cell.
type Space interface {
	// Name labels reports, digests and the state-file fingerprint.
	Name() string
	// Genes returns the genome schema. Its length and cardinalities are
	// fixed for the life of the space.
	Genes() []Gene
	// Seed returns one random genome for generation zero.
	Seed(rng *sim.RNG) Genome
	// Cell compiles a genome into a campaign cell. The cell's
	// Experiment/Fault labels must be a pure function of the genome (the
	// explorer prefixes them with generation/slot coordinates).
	Cell(g Genome) campaign.Cell
	// Mutate derives a child genome from a parent under coverage
	// pressure. The parent slice must not be modified (callers pass a
	// clone, but the contract keeps spaces honest).
	Mutate(parent Genome, rng *sim.RNG, p *Pressure) Genome
}

// clampGenome forces every gene of g into its domain — the repair step
// applied to genomes coming back from Mutate or restored from a state
// file, so a buggy space or a hand-edited file cannot push Cell outside
// the schema.
func clampGenome(g Genome, genes []Gene) Genome {
	for i := range g {
		if i >= len(genes) {
			break
		}
		if int(g[i]) >= genes[i].Card {
			g[i] = uint16(genes[i].Card - 1)
		}
	}
	return g
}
