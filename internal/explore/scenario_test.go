package explore

import (
	"strings"
	"testing"

	"castanet/internal/sim"
)

// TestSwitchSpaceGenomeRoundTrip: decoding repairs every genome into a
// legal scenario (at least one active port) and labels are pure functions
// of the genome.
func TestSwitchSpaceGenomeRoundTrip(t *testing.T) {
	s := NewSwitchSpace(SwitchSpaceConfig{})
	if len(s.Genes()) != geneCount {
		t.Fatalf("gene count %d, want %d", len(s.Genes()), geneCount)
	}
	rng := sim.NewRNG(42)
	for i := 0; i < 200; i++ {
		g := s.Seed(rng)
		sc := s.decode(g)
		active := false
		for p := 0; p < 4; p++ {
			if sc.genome[geneKind+p] != kindSilent {
				active = true
			}
		}
		if !active {
			t.Fatalf("decode left all ports silent: %v", g)
		}
		if sc.horizon <= 500*sim.Microsecond {
			t.Fatalf("horizon %v not above the traversal slack: %v", sc.horizon, g)
		}
		if !strings.HasPrefix(sc.label(), "sw-") || len(sc.label()) != 3+geneCount {
			t.Fatalf("label %q malformed for %v", sc.label(), g)
		}
		if sc.faultLabel() == "" {
			t.Fatalf("empty fault label for %v", g)
		}
	}
	// The all-silent genome is repaired to a CBR port 0.
	allSilent := make(Genome, geneCount)
	if sc := s.decode(allSilent); sc.genome[geneKind] != kindCBR {
		t.Fatalf("all-silent repair: kind0 = %d, want CBR", sc.genome[geneKind])
	}
}

// TestSwitchSpaceMutateStaysInDomain: directed and undirected mutations
// always produce in-domain genomes, under every pressure group the nudge
// table knows.
func TestSwitchSpaceMutateStaysInDomain(t *testing.T) {
	s := NewSwitchSpace(SwitchSpaceConfig{})
	rng := sim.NewRNG(7)
	pressures := []*Pressure{
		{},
		{Uncovered: []BinRef{{Group: "faultsim.fault", Point: "class_outcome", Label: "entry-lost×escaped"}}},
		{Uncovered: []BinRef{{Group: "faultsim.fault", Point: "class_outcome", Label: "wrong-port×detected"}}},
		{Uncovered: []BinRef{{Group: "coverify.cmp", Point: "verdict", Label: "mismatch"}}},
		{Uncovered: []BinRef{{Group: "dut.queue", Point: "depth0", Label: "gt_16"}}},
		{Uncovered: []BinRef{{Group: "coverify.cell_header", Point: "clp", Label: "clp1"}}},
		{Uncovered: []BinRef{{Group: "coverify.cell_header", Point: "vpi", Label: "le_4"}}},
		{Uncovered: []BinRef{{Group: "cosim.sync", Point: "lag", Label: "gt_64"}}},
		{Uncovered: []BinRef{{Group: "unknown.group", Point: "x", Label: "y"}}},
	}
	genes := s.Genes()
	for i := 0; i < 500; i++ {
		parent := s.Seed(rng)
		child := s.Mutate(parent.Clone(), rng, pressures[i%len(pressures)])
		if len(child) != geneCount {
			t.Fatalf("mutant length %d", len(child))
		}
		for j, v := range child {
			if int(v) >= genes[j].Card {
				t.Fatalf("gene %s = %d outside card %d", genes[j].Name, v, genes[j].Card)
			}
		}
	}
}

// TestSwitchSpaceExploreSmoke runs a tiny real exploration end to end,
// twice, and demands completion, advancing coverage, zero verification
// failures at this pinned seed, and a byte-identical digest.
func TestSwitchSpaceExploreSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full co-verification rigs in -short mode")
	}
	spec := Spec{
		Space:       NewSwitchSpace(SwitchSpaceConfig{}),
		Seed:        11,
		Generations: 2,
		Population:  3,
		Shards:      2,
	}
	run := func() *Result { return mustExplore(t, spec) }
	res := run()
	if !res.Complete || len(res.Ladder) != 2 {
		t.Fatalf("exploration incomplete: %+v", res.Ladder)
	}
	final := res.Ladder[1]
	if final.Covered == 0 || final.Total == 0 {
		t.Fatalf("no coverage accumulated: %+v", final)
	}
	if res.FailTotal != 0 {
		t.Fatalf("pinned-seed exploration found %d failures:\n%s", res.FailTotal, res.Digest())
	}
	if got := run().Digest(); got != res.Digest() {
		t.Errorf("switch-space digest not reproducible:\n--- second\n%s\n--- first\n%s", got, res.Digest())
	}
}
