package explore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"

	"castanet/internal/obs"
)

// ErrState classifies explorer state-file problems: corruption, version
// or fingerprint mismatch. Like campaign.ErrCheckpoint it is operator
// territory — the exploration was pointed at the wrong or a damaged
// file.
var ErrState = errors.New("explore: bad state file")

// State file layout (all integers big-endian), written atomically at
// every generation boundary:
//
//	offset 0   magic  "EXPL"
//	offset 4   u16    version (1)
//	offset 6   u32    CRC-32 (IEEE) of the payload
//	offset 10  u32    payload length
//	offset 14  payload
//
// Payload v1 (strings are u32 length + bytes):
//
//	u64 spec fingerprint
//	u32 gen (next generation to run)
//	u64 failTotal
//	u32 npop   × {u32 ngenes × u16 gene}
//	u32 ngroup × {str group, u32 npoints ×
//	  {str point, u32 nbins × {str bin, u64 hits}}}
//	u32 nladder × {u32 gen, u64 covered, u64 total, u64 new,
//	  u64 accepted, u64 rejected, u64 failures}
//	u32 nfail  × {u64 index, u32 gen, u32 slot, u64 seed,
//	  str cell, str label}
const (
	stateMagic   = "EXPL"
	stateVersion = 1
)

// fingerprint hashes everything a resumed exploration must agree on:
// space identity and genome schema, master seed, generation/population
// geometry, target group, selection and digest bounds, and the
// supervision policy. The shard count is deliberately absent — the
// digest is shard-invariant, so an exploration may resume on different
// hardware.
func fingerprint(s *Spec) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "expl-v1|%s|%d|%d|%d|%s|%d|%d|%v|%d|%v|%v|%d|",
		s.Space.Name(), s.Seed, s.Generations, s.Population, s.Target,
		s.elite(), s.digestMax(),
		s.Policy.RunTimeout, s.Policy.Retries,
		s.Policy.RetryBase, s.Policy.RetryCap, s.Policy.QuarantineAfter)
	for _, g := range s.Space.Genes() {
		fmt.Fprintf(h, "%s:%d|", g.Name, g.Card)
	}
	return h.Sum64()
}

type stEnc struct{ b []byte }

func (e *stEnc) u16(v uint16) { e.b = binary.BigEndian.AppendUint16(e.b, v) }
func (e *stEnc) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *stEnc) u64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *stEnc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

type stDec struct {
	b   []byte
	pos int
	err bool
}

func (d *stDec) fail() {
	d.err = true
}

func (d *stDec) take(n int) []byte {
	if d.err || n < 0 || d.pos+n > len(d.b) {
		d.fail()
		return nil
	}
	out := d.b[d.pos : d.pos+n]
	d.pos += n
	return out
}

func (d *stDec) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *stDec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *stDec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *stDec) str() string { return string(d.take(int(d.u32()))) }

// count reads a u32 length with a sanity cap so a corrupt length cannot
// provoke a giant allocation before the CRC check would have caught it.
func (d *stDec) count() int {
	n := int(d.u32())
	if n > 1<<24 {
		d.fail()
		return 0
	}
	return n
}

func encodeState(spec *Spec, e *engine) []byte {
	var enc stEnc
	enc.u64(fingerprint(spec))
	enc.u32(uint32(e.gen))
	enc.u64(uint64(e.failTotal))
	enc.u32(uint32(len(e.pop)))
	for _, g := range e.pop {
		enc.u32(uint32(len(g)))
		for _, v := range g {
			enc.u16(v)
		}
	}
	enc.u32(uint32(len(e.cum)))
	for _, g := range e.cum {
		enc.str(g.Name)
		enc.u32(uint32(len(g.Points)))
		for _, p := range g.Points {
			enc.str(p.Name)
			enc.u32(uint32(len(p.Bins)))
			for _, b := range p.Bins {
				enc.str(b.Label)
				enc.u64(b.Hits)
			}
		}
	}
	enc.u32(uint32(len(e.ladder)))
	for _, s := range e.ladder {
		enc.u32(uint32(s.Gen))
		enc.u64(uint64(s.Covered))
		enc.u64(uint64(s.Total))
		enc.u64(uint64(s.New))
		enc.u64(uint64(s.Accepted))
		enc.u64(uint64(s.Rejected))
		enc.u64(uint64(s.Failures))
	}
	enc.u32(uint32(len(e.failures)))
	for _, f := range e.failures {
		enc.u64(f.Index)
		enc.u32(uint32(f.Gen))
		enc.u32(uint32(f.Slot))
		enc.u64(f.Seed)
		enc.str(f.Cell)
		enc.str(f.Label)
	}
	return enc.b
}

// decodeState restores an engine from a payload; the engine arrives
// holding the generation-zero population, which the file's population
// replaces.
func decodeState(spec *Spec, e *engine, payload []byte) error {
	d := &stDec{b: payload}
	if got, want := d.u64(), fingerprint(spec); got != want {
		return fmt.Errorf("%w: spec fingerprint 0x%016x does not match 0x%016x (different space, seed, geometry or policy)",
			ErrState, got, want)
	}
	gen := int(d.u32())
	failTotal := int(d.u64())
	npop := d.count()
	pop := make([]Genome, 0, npop)
	genes := spec.Space.Genes()
	for i := 0; i < npop && !d.err; i++ {
		ngenes := d.count()
		g := make(Genome, 0, ngenes)
		for j := 0; j < ngenes && !d.err; j++ {
			g = append(g, d.u16())
		}
		pop = append(pop, clampGenome(g, genes))
	}
	ngroups := d.count()
	cum := make([]obs.CoverGroupSnap, 0, ngroups)
	for i := 0; i < ngroups && !d.err; i++ {
		g := obs.CoverGroupSnap{Name: d.str()}
		npoints := d.count()
		for j := 0; j < npoints && !d.err; j++ {
			p := obs.CoverPointSnap{Name: d.str()}
			nbins := d.count()
			for k := 0; k < nbins && !d.err; k++ {
				p.Bins = append(p.Bins, obs.CoverBin{Label: d.str(), Hits: d.u64()})
			}
			g.Points = append(g.Points, p)
		}
		cum = append(cum, g)
	}
	nladder := d.count()
	ladder := make([]GenStat, 0, nladder)
	for i := 0; i < nladder && !d.err; i++ {
		ladder = append(ladder, GenStat{
			Gen:      int(d.u32()),
			Covered:  int(d.u64()),
			Total:    int(d.u64()),
			New:      int(d.u64()),
			Accepted: int(d.u64()),
			Rejected: int(d.u64()),
			Failures: int(d.u64()),
		})
	}
	nfail := d.count()
	failures := make([]Failure, 0, nfail)
	for i := 0; i < nfail && !d.err; i++ {
		failures = append(failures, Failure{
			Index: d.u64(),
			Gen:   int(d.u32()),
			Slot:  int(d.u32()),
			Seed:  d.u64(),
			Cell:  d.str(),
			Label: d.str(),
		})
	}
	if d.err || d.pos != len(d.b) {
		return fmt.Errorf("%w: truncated or trailing payload", ErrState)
	}
	if len(pop) != spec.Population || gen < 0 || gen > spec.Generations {
		return fmt.Errorf("%w: geometry does not match spec", ErrState)
	}
	e.pop, e.cum, e.ladder, e.failures = pop, cum, ladder, failures
	e.gen, e.failTotal = gen, failTotal
	return nil
}

// saveState writes the explorer state atomically: temp file, fsync,
// rename, directory sync — the same durability discipline as the
// campaign checkpoint.
func saveState(spec *Spec, e *engine) error {
	payload := encodeState(spec, e)
	var hdr stEnc
	hdr.b = append(hdr.b, stateMagic...)
	hdr.u16(stateVersion)
	hdr.u32(crc32.ChecksumIEEE(payload))
	hdr.u32(uint32(len(payload)))

	path := spec.Checkpoint
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(append(hdr.b, payload...))
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// loadState restores e from spec.Checkpoint. It returns (false, nil)
// when the file does not exist — the fresh-start degradation Resume
// promises — and an ErrState-wrapped error on any corruption.
func loadState(spec *Spec, e *engine) (bool, error) {
	raw, err := os.ReadFile(spec.Checkpoint)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	if len(raw) < 14 || string(raw[:4]) != stateMagic {
		return false, fmt.Errorf("%w: %s is not an explorer state file", ErrState, spec.Checkpoint)
	}
	if v := binary.BigEndian.Uint16(raw[4:6]); v != stateVersion {
		return false, fmt.Errorf("%w: version %d, want %d", ErrState, v, stateVersion)
	}
	sum := binary.BigEndian.Uint32(raw[6:10])
	n := int(binary.BigEndian.Uint32(raw[10:14]))
	if len(raw) != 14+n {
		return false, fmt.Errorf("%w: payload length %d does not match header %d", ErrState, len(raw)-14, n)
	}
	payload := raw[14:]
	if crc32.ChecksumIEEE(payload) != sum {
		return false, fmt.Errorf("%w: payload CRC mismatch", ErrState)
	}
	if err := decodeState(spec, e, payload); err != nil {
		return false, err
	}
	return true, nil
}

// removeState clears durable state for a fresh Execute: the state file
// and every per-generation campaign checkpoint the spec could have
// written, so a stale file from an earlier exploration of the same spec
// can never silently seed a "fresh" run.
func removeState(spec *Spec) {
	os.Remove(spec.Checkpoint)
	for g := 0; g < spec.Generations; g++ {
		removeGenCkpt(spec, g)
	}
}

// removeGenCkpt drops one committed generation's campaign checkpoint.
func removeGenCkpt(spec *Spec, gen int) {
	os.Remove(spec.genCkptPath(gen))
}
