package explore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"castanet/internal/campaign"
	"castanet/internal/sim"
)

// toySpace is a 2-gene × 4-value scenario space over a synthetic 16-bin
// cover grid: genome {a,b} hits exactly bin "c<a><b>", and genome {3,3}
// additionally fails verification. Mutation has a perfect gradient (an
// uncovered bin names the genome that covers it), so a few generations
// cover the grid — a fast, fully deterministic stand-in for the switch
// space in engine property tests.
type toySpace struct{}

func toyLabels() []string {
	labels := make([]string, 0, 16)
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			labels = append(labels, fmt.Sprintf("c%d%d", a, b))
		}
	}
	return labels
}

func (toySpace) Name() string { return "toy" }

func (toySpace) Genes() []Gene {
	return []Gene{{Name: "a", Card: 4}, {Name: "b", Card: 4}}
}

func (toySpace) Seed(rng *sim.RNG) Genome {
	return Genome{uint16(rng.Intn(4)), uint16(rng.Intn(4))}
}

func (toySpace) Cell(g Genome) campaign.Cell {
	a, b := int(g[0]), int(g[1])
	return campaign.Cell{
		Experiment: fmt.Sprintf("toy-%d%d", a, b),
		Run: func(ctx context.Context, r *campaign.Run) error {
			p := r.Cover().Group("toy.grid").Point("cell", toyLabels()...)
			p.Hit(fmt.Sprintf("c%d%d", a, b))
			if a == 3 && b == 3 {
				return errors.New("toy defect at c33")
			}
			return nil
		},
	}
}

func (toySpace) Mutate(parent Genome, rng *sim.RNG, p *Pressure) Genome {
	if len(p.Uncovered) > 0 {
		ref := p.Uncovered[rng.Intn(len(p.Uncovered))]
		return Genome{uint16(ref.Label[1] - '0'), uint16(ref.Label[2] - '0')}
	}
	g := parent
	g[rng.Intn(2)] = uint16(rng.Intn(4))
	return g
}

func toySpec() Spec {
	return Spec{
		Space:       toySpace{},
		Seed:        7,
		Generations: 5,
		Population:  6,
	}
}

func mustExplore(t *testing.T, spec Spec) *Result {
	t.Helper()
	res, err := Execute(context.Background(), spec)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return res
}

// TestExploreDigestShardInvariance: the digest is byte-identical across
// repeated executions and across shard counts — the explorer's core
// determinism claim.
func TestExploreDigestShardInvariance(t *testing.T) {
	ref := mustExplore(t, toySpec()).Digest()
	if ref == "" {
		t.Fatal("empty digest")
	}
	for _, shards := range []int{1, 2, 5} {
		spec := toySpec()
		spec.Shards = shards
		if got := mustExplore(t, spec).Digest(); got != ref {
			t.Errorf("digest at shards=%d diverged:\n--- shards=%d\n%s\n--- reference\n%s",
				shards, shards, got, ref)
		}
	}
}

// TestExploreLadderMonotoneAndConverges: cumulative coverage never
// decreases, the bin universe is stable, and the perfect-gradient toy
// space reaches full grid coverage within the budget.
func TestExploreLadderMonotoneAndConverges(t *testing.T) {
	res := mustExplore(t, toySpec())
	if !res.Complete || len(res.Ladder) != res.Generations {
		t.Fatalf("incomplete run: %+v", res)
	}
	prev := 0
	for _, g := range res.Ladder {
		if g.Covered < prev {
			t.Errorf("gen %d: covered %d dropped below %d", g.Gen, g.Covered, prev)
		}
		if g.Total != 16 {
			t.Errorf("gen %d: total %d, want 16", g.Gen, g.Total)
		}
		if g.Accepted+g.Rejected != res.Population {
			t.Errorf("gen %d: accepted %d + rejected %d != population %d",
				g.Gen, g.Accepted, g.Rejected, res.Population)
		}
		prev = g.Covered
	}
	if final := res.Ladder[len(res.Ladder)-1]; final.Covered != 16 {
		t.Errorf("final coverage %d/16; directed mutation should cover the grid", final.Covered)
	}
	if res.FailTotal == 0 {
		t.Error("grid corner c33 is a planted defect; covering the grid must find it")
	}
}

// TestExploreReplayReproducesFailure: every retained failure replays in
// isolation with the same verdict, and a passing slot replays clean.
func TestExploreReplayReproducesFailure(t *testing.T) {
	spec := toySpec()
	res := mustExplore(t, spec)
	if len(res.Failures) == 0 {
		t.Fatal("no failures retained")
	}
	for _, f := range res.Failures {
		rr, err := Replay(context.Background(), spec, f.Index)
		if err != nil {
			t.Fatalf("Replay(%d): %v", f.Index, err)
		}
		if rr.Err == nil || rr.Err.Error() != f.Label {
			t.Errorf("replay %d: err %v, want %q", f.Index, rr.Err, f.Label)
		}
		if rr.Seed != f.Seed {
			t.Errorf("replay %d: seed 0x%x, want 0x%x", f.Index, rr.Seed, f.Seed)
		}
	}
	// Find a passing run: generation 0, any slot whose digest has no line.
	failed := make(map[uint64]bool)
	for _, f := range res.Failures {
		failed[f.Index] = true
	}
	for idx := uint64(0); idx < uint64(spec.Population); idx++ {
		if failed[idx] {
			continue
		}
		rr, err := Replay(context.Background(), spec, idx)
		if err != nil {
			t.Fatalf("Replay(%d): %v", idx, err)
		}
		if rr.Err != nil {
			t.Errorf("replay of passing run %d failed: %v", idx, rr.Err)
		}
		break
	}
	if _, err := Replay(context.Background(), spec, uint64(spec.Generations*spec.Population)); !errors.Is(err, ErrSpec) {
		t.Errorf("out-of-range replay error = %v, want ErrSpec", err)
	}
}

// TestExploreResumeGenerationBoundary: cancel at a generation boundary,
// resume, and demand the byte-identical digest of an uninterrupted run.
func TestExploreResumeGenerationBoundary(t *testing.T) {
	ref := mustExplore(t, toySpec()).Digest()

	spec := toySpec()
	spec.Checkpoint = filepath.Join(t.TempDir(), "explore.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	spec.OnGeneration = func(g GenStat) {
		if g.Gen == 1 {
			cancel()
		}
	}
	partial, err := Execute(ctx, spec)
	if err != nil {
		t.Fatalf("interrupted Execute: %v", err)
	}
	if partial.Complete {
		t.Fatal("cancellation did not interrupt the exploration")
	}

	spec.OnGeneration = nil
	res, err := Resume(context.Background(), spec)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if !res.Complete {
		t.Fatal("resumed exploration incomplete")
	}
	if got := res.Digest(); got != ref {
		t.Errorf("resumed digest diverged:\n--- resumed\n%s\n--- reference\n%s", got, ref)
	}
}

// TestExploreResumeMidGeneration: cancel inside a generation (after a
// couple of its runs committed to the per-generation campaign
// checkpoint), resume at a different shard count, and demand the
// reference digest.
func TestExploreResumeMidGeneration(t *testing.T) {
	ref := mustExplore(t, toySpec()).Digest()

	spec := toySpec()
	spec.Shards = 2
	spec.Checkpoint = filepath.Join(t.TempDir(), "explore.ckpt")
	spec.CheckpointEvery = 1
	ctx, cancel := context.WithCancel(context.Background())
	var results atomic.Int32
	spec.OnResult = func(campaign.Result) {
		if int(results.Add(1)) == spec.Population+2 {
			cancel() // two runs into generation 1
		}
	}
	if _, err := Execute(ctx, spec); err != nil {
		t.Fatalf("interrupted Execute: %v", err)
	}

	spec.OnResult = nil
	spec.Shards = 3
	res, err := Resume(context.Background(), spec)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if !res.Complete {
		t.Fatal("resumed exploration incomplete")
	}
	if got := res.Digest(); got != ref {
		t.Errorf("mid-generation resume diverged:\n--- resumed\n%s\n--- reference\n%s", got, ref)
	}
}

// TestExploreResumeFinishedAndMissing: resuming a finished exploration
// returns the same digest without rerunning; a missing state file
// degrades to a fresh Execute.
func TestExploreResumeFinishedAndMissing(t *testing.T) {
	spec := toySpec()
	spec.Checkpoint = filepath.Join(t.TempDir(), "explore.ckpt")
	ref := mustExplore(t, spec).Digest()

	res, err := Resume(context.Background(), spec)
	if err != nil {
		t.Fatalf("Resume finished: %v", err)
	}
	if got := res.Digest(); got != ref {
		t.Errorf("resume of finished exploration diverged")
	}

	spec.Checkpoint = filepath.Join(t.TempDir(), "missing.ckpt")
	res, err = Resume(context.Background(), spec)
	if err != nil {
		t.Fatalf("Resume missing: %v", err)
	}
	if got := res.Digest(); got != ref {
		t.Errorf("fresh-start resume diverged")
	}
}

// TestExploreStateCorruption: a damaged state file and a mismatched spec
// both surface as ErrState, never as a silent fresh start.
func TestExploreStateCorruption(t *testing.T) {
	spec := toySpec()
	spec.Generations = 2
	spec.Checkpoint = filepath.Join(t.TempDir(), "explore.ckpt")
	mustExplore(t, spec)

	raw, err := os.ReadFile(spec.Checkpoint)
	if err != nil {
		t.Fatalf("read state: %v", err)
	}

	// Payload corruption: CRC must catch it.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-1] ^= 0xff
	if err := os.WriteFile(spec.Checkpoint, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(context.Background(), spec); !errors.Is(err, ErrState) {
		t.Errorf("corrupt payload: err = %v, want ErrState", err)
	}

	// Truncation.
	if err := os.WriteFile(spec.Checkpoint, raw[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(context.Background(), spec); !errors.Is(err, ErrState) {
		t.Errorf("truncated file: err = %v, want ErrState", err)
	}

	// Spec mismatch: intact file, different seed.
	if err := os.WriteFile(spec.Checkpoint, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	other := spec
	other.Seed++
	if _, err := Resume(context.Background(), other); !errors.Is(err, ErrState) ||
		!strings.Contains(fmt.Sprint(err), "fingerprint") {
		t.Errorf("fingerprint mismatch: err = %v, want ErrState fingerprint diagnostic", err)
	}
}

// TestExploreSpecValidation exercises the ErrSpec guardrails.
func TestExploreSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		edit func(*Spec)
	}{
		{"nil-space", func(s *Spec) { s.Space = nil }},
		{"zero-generations", func(s *Spec) { s.Generations = 0 }},
		{"zero-population", func(s *Spec) { s.Population = 0 }},
		{"elite-exceeds-population", func(s *Spec) { s.Elite = s.Population + 1 }},
		{"negative-digest-max", func(s *Spec) { s.DigestMax = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := toySpec()
			tc.edit(&spec)
			if _, err := Execute(context.Background(), spec); !errors.Is(err, ErrSpec) {
				t.Errorf("err = %v, want ErrSpec", err)
			}
		})
	}
	spec := toySpec()
	if _, err := Resume(context.Background(), spec); !errors.Is(err, ErrSpec) {
		t.Errorf("Resume without checkpoint: err = %v, want ErrSpec", err)
	}
}

// TestExploreReportMentionsReplay: the operator report carries a replay
// command line for every retained failure.
func TestExploreReportMentionsReplay(t *testing.T) {
	res := mustExplore(t, toySpec())
	var b strings.Builder
	if err := res.WriteReport(&b); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	if len(res.Failures) == 0 {
		t.Fatal("no failures to report")
	}
	want := res.ReplayArgs(res.Failures[0])
	if !strings.Contains(b.String(), want) {
		t.Errorf("report missing replay hint %q:\n%s", want, b.String())
	}
}
