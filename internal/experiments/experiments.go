// Package experiments contains the reproduction harnesses for every
// quantitative claim and figure of the paper, as indexed in DESIGN.md §4:
//
//	E1  §2 performance paragraph — co-simulation vs pure-RTL throughput
//	E2  Fig. 3 / §3.1            — conservative synchronization behaviour
//	E3  Fig. 4 / §3.2            — time-scale ratio and event counts
//	E4  Fig. 5 / §3.3            — hardware test board cycle scheduling
//	E5  §4 case study            — accounting unit functional verification
//	E6  conclusions              — event-driven vs cycle-based simulation
//
// Each function runs the workload and returns a result whose String forms
// the rows reported in EXPERIMENTS.md. Harnesses are deterministic given
// their seed; wall-clock figures vary with the host, the shapes do not.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"castanet/internal/atm"
	"castanet/internal/coverify"
	"castanet/internal/dut"
	"castanet/internal/obs"
	"castanet/internal/sim"
	"castanet/internal/traffic"
)

// Factory builds experiment harnesses against an explicit observability
// sink. Campaign workers construct one Factory per run (or share one
// campaign-scoped sink — obs handles are concurrency-safe) instead of
// reaching through package state, so concurrent runs stay free of shared
// mutable state. A zero Factory (nil Obs) elaborates uninstrumented rigs.
type Factory struct {
	Obs *obs.Run
	// Batch routes every coupling the factory elaborates through the
	// δ-window batched path (cosim.InterfaceProcess.Batch). Rigs whose
	// coupling is not batch-capable ignore it.
	Batch bool
	// NoCompiled elaborates every HDL kernel the factory builds on the
	// plain event-driven data plane instead of the compiled bit-parallel
	// fast path (hdl.Compile, DESIGN.md §18) — the castanet -no-compiled
	// escape hatch. The two modes are observably equivalent; this exists
	// for measuring the fast path's contribution and for bisecting.
	NoCompiled bool
}

// obsRun is the observability sink installed by Observe. The package-level
// harness signatures (E1..E8) predate the observability layer and stay
// stable for their benchmark callers, so for them the sink travels through
// package state; campaign code uses a Factory instead. nil (the default)
// leaves every rig uninstrumented.
var obsRun *obs.Run

// Observe installs the package-level observability sink: every rig
// elaborated by a subsequent package-level E* call registers its metrics
// and trace events with it. Experiments that elaborate several rigs
// (sweeps, campaigns) accumulate into the same registry. Pass nil to
// disable.
func Observe(run *obs.Run) { obsRun = run }

// batchOn is the package-level coupling-batching default for the E*
// harness wrappers, on unless the castanet -batch flag clears it.
var batchOn = true

// Batching sets whether package-level E* calls elaborate their rigs on
// the batched coupling path (the castanet -batch flag).
func Batching(on bool) { batchOn = on }

// compiledOn is the package-level compiled-kernel default for the E*
// harness wrappers, on unless the castanet -no-compiled flag clears it.
var compiledOn = true

// Compiled sets whether package-level E* calls elaborate their HDL
// kernels on the compiled bit-parallel fast path (the castanet
// -compiled/-no-compiled flags).
func Compiled(on bool) { compiledOn = on }

// pkgFactory is the Factory the package-level E* wrappers use, carrying
// the flag-controlled defaults.
func pkgFactory() Factory {
	return Factory{Obs: obsRun, Batch: batchOn, NoCompiled: !compiledOn}
}

// observed copies the factory's sink into a rig configuration.
func (f Factory) observed(cfg coverify.SwitchRigConfig) coverify.SwitchRigConfig {
	cfg.Metrics = f.Obs.Reg()
	cfg.Trace = f.Obs.Trace()
	cfg.Cells = f.Obs.CellTrace()
	cfg.Cover = f.Obs.CoverReg()
	cfg.Profile = f.Obs.Prof()
	cfg.Batch = f.Batch
	cfg.NoCompiled = f.NoCompiled
	return cfg
}

// loadTraffic offers CBR load on all four ports at the given fraction of
// the 20 MHz byte-clock line rate (1 cell / 53 cycles).
func loadTraffic(cells uint64, load float64) [dut.SwitchPorts]PortTraffic {
	period := 50 * sim.Nanosecond
	cellTime := sim.Duration(float64(53*period) / load)
	var tr [dut.SwitchPorts]PortTraffic
	per := cells / dut.SwitchPorts
	for p := 0; p < dut.SwitchPorts; p++ {
		tr[p] = PortTraffic{
			Model: &traffic.CBR{Interval: cellTime},
			VCs:   coverify.PortVCs(p),
			Cells: per,
		}
	}
	return tr
}

// PortTraffic re-exports the rig workload type for harness callers.
type PortTraffic = coverify.PortTraffic

// horizonFor sizes the network horizon to the traffic duration.
func horizonFor(cellsPerPort uint64, load float64) sim.Time {
	period := 50 * sim.Nanosecond
	cellTime := sim.Duration(float64(53*period) / load)
	return sim.Time(cellsPerPort+4) * cellTime
}

// E1Result reports the co-simulation vs pure-RTL comparison.
type E1Result struct {
	Cells uint64

	CosimWall    time.Duration
	CosimCycles  uint64
	CosimCPS     float64 // simulated clock cycles per wall second
	CosimCellsPS float64
	CosimClean   bool

	RTLWall    time.Duration
	RTLCycles  uint64
	RTLCPS     float64
	RTLCellsPS float64
	RTLClean   bool

	// Speedup is CosimCPS / RTLCPS; the paper reports ~1300 vs ~300
	// clock cycles per second, a factor of ~4.3.
	Speedup float64
}

// E1 runs the §2 benchmark workload against the package-level sink.
func E1(cells uint64, seed uint64) E1Result {
	return pkgFactory().E1(cells, seed)
}

// E1 runs the §2 benchmark workload: cells through the 4-port switch with
// one global control unit, once in the co-verification environment and
// once as a pure-RTL regression bench.
func (f Factory) E1(cells uint64, seed uint64) E1Result {
	const load = 0.8
	r := E1Result{Cells: cells}
	cfg := f.observed(coverify.SwitchRigConfig{Seed: seed, Traffic: loadTraffic(cells, load)})

	co := coverify.NewSwitchRig(cfg)
	start := time.Now()
	if err := co.Run(horizonFor(cells/dut.SwitchPorts, load)); err != nil {
		panic(err)
	}
	r.CosimWall = time.Since(start)
	r.CosimCycles = co.ClockCycles()
	r.CosimClean = co.Cmp.Clean()
	r.CosimCPS = float64(r.CosimCycles) / r.CosimWall.Seconds()
	r.CosimCellsPS = float64(co.Cmp.Matched) / r.CosimWall.Seconds()

	rtl := coverify.NewRTLRig(cfg)
	start = time.Now()
	if err := rtl.Run(); err != nil {
		panic(err)
	}
	r.RTLWall = time.Since(start)
	r.RTLCycles = rtl.ClockCycles()
	r.RTLClean = rtl.CheckErrors() == 0 && rtl.Checked() == rtl.Offered
	r.RTLCPS = float64(r.RTLCycles) / r.RTLWall.Seconds()
	r.RTLCellsPS = float64(rtl.Checked()) / r.RTLWall.Seconds()

	if r.RTLCPS > 0 {
		r.Speedup = r.CosimCPS / r.RTLCPS
	}
	return r
}

// String formats the E1 table.
func (r E1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E1: %d cells through 4-port switch + global control unit\n", r.Cells)
	fmt.Fprintf(&b, "  %-22s %12s %14s %12s %6s\n", "configuration", "wall", "clk-cycles/s", "cells/s", "clean")
	fmt.Fprintf(&b, "  %-22s %12v %14.0f %12.0f %6v\n", "co-simulation", r.CosimWall.Round(time.Millisecond), r.CosimCPS, r.CosimCellsPS, r.CosimClean)
	fmt.Fprintf(&b, "  %-22s %12v %14.0f %12.0f %6v\n", "pure RTL test bench", r.RTLWall.Round(time.Millisecond), r.RTLCPS, r.RTLCellsPS, r.RTLClean)
	fmt.Fprintf(&b, "  speedup (co-sim / RTL): %.2fx   [paper: ~1300 vs ~300 c/s => ~4.3x]\n", r.Speedup)
	return b.String()
}

// E2Row is one sweep point of the synchronization experiment.
type E2Row struct {
	DeltaCycles int
	SyncEvery   sim.Duration
	Lockstep    bool   // ablation: peer updated every hardware clock
	Messages    uint64 // messages delivered to the entity
	Windows     uint64
	MaxLag      sim.Duration
	Causality   uint64
	Clean       bool
	Wall        time.Duration
}

// E2Result is the Fig.-3/§3.1 sweep.
type E2Result struct {
	Cells uint64
	Rows  []E2Row
}

// E2 sweeps the processing-delay window δ and the time-update period of
// the conservative protocol. Causality errors must be zero everywhere
// (the protocol is deadlock- and rollback-free by construction); MaxLag
// shows how far the hardware clock trails the network clock, bounded by
// the update period. The final row is the ablation of DESIGN.md §5: a
// naive lock-step coupling that updates the peer every hardware clock
// cycle — the "incorporating the HW-clock into the OPNET interface model"
// that §3.2 rejects — showing the message blow-up the timing windows
// avoid.
func E2(cells uint64, seed uint64) E2Result {
	return pkgFactory().E2(cells, seed)
}

// E2 is the sweep against the factory's sink.
func (f Factory) E2(cells uint64, seed uint64) E2Result {
	const load = 0.6
	res := E2Result{Cells: cells}
	period := 50 * sim.Nanosecond
	run := func(deltaCycles int, syncEvery sim.Duration, lockstep bool) {
		cfg := f.observed(coverify.SwitchRigConfig{
			Seed:      seed,
			Traffic:   loadTraffic(cells, load),
			Delta:     sim.Duration(deltaCycles) * period,
			SyncEvery: syncEvery,
		})
		rig := coverify.NewSwitchRig(cfg)
		start := time.Now()
		if err := rig.Run(horizonFor(cells/dut.SwitchPorts, load)); err != nil {
			panic(err)
		}
		res.Rows = append(res.Rows, E2Row{
			DeltaCycles: deltaCycles,
			SyncEvery:   syncEvery,
			Lockstep:    lockstep,
			Messages:    rig.Entity.Received,
			Windows:     rig.Entity.Windows,
			MaxLag:      rig.Entity.MaxLag,
			Causality:   rig.Entity.CausalityErrors,
			Clean:       rig.Cmp.Clean(),
			Wall:        time.Since(start),
		})
	}
	for _, deltaCycles := range []int{1, 8, 64, 512} {
		for _, syncEvery := range []sim.Duration{10 * sim.Microsecond, 100 * sim.Microsecond} {
			run(deltaCycles, syncEvery, false)
		}
	}
	// Ablation: lock-step at the hardware clock.
	run(64, period, true)
	return res
}

// String formats the E2 table.
func (r E2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E2: conservative synchronization sweep, %d cells\n", r.Cells)
	fmt.Fprintf(&b, "  %6s %10s %9s %9s %10s %10s %6s %10s\n",
		"δ(clk)", "sync", "messages", "windows", "max-lag", "causality", "clean", "wall")
	for _, row := range r.Rows {
		label := fmt.Sprintf("%v", row.SyncEvery)
		if row.Lockstep {
			label = "lockstep"
		}
		fmt.Fprintf(&b, "  %6d %10s %9d %9d %10v %10d %6v %10v\n",
			row.DeltaCycles, label, row.Messages, row.Windows,
			row.MaxLag, row.Causality, row.Clean, row.Wall.Round(time.Millisecond))
	}
	b.WriteString("  [paper: conservative timing windows, deadlock-free, HDL always lags network simulator;\n")
	b.WriteString("   lockstep row = clock-accurate coupling §3.2 rejects]\n")
	return b.String()
}

// E3Result reports the abstraction-interface event accounting.
type E3Result struct {
	Cells       uint64
	NetEvents   uint64
	HDLEvents   uint64
	HDLProcRuns uint64
	ClockCycles uint64
	// EventsRatio = HDLEvents / NetEvents; the paper says the HDL side is
	// "an order of magnitude higher".
	EventsRatio float64
	// CyclesPerNetEvent is the time-scale ratio: HDL clock cycles per
	// network-simulator event; the paper quotes ~1:400 per cell slot.
	CyclesPerNetEvent float64
	CyclesPerCell     float64
	// CyclesPerLineCell is the per-line time-scale ratio: clock cycles
	// between consecutive cells on one port — the paper's ~1:400 figure
	// for a partially loaded line including idle periods.
	CyclesPerLineCell float64
}

// E3 measures the event accounting against the package-level sink.
func E3(cells uint64, seed uint64) E3Result {
	return pkgFactory().E3(cells, seed)
}

// E3 measures the two engines' event counts for the same traffic (Fig. 4
// and §3.2: mapping one abstract cell event onto 53+ bit-level clock
// cycles, plus idle periods).
func (f Factory) E3(cells uint64, seed uint64) E3Result {
	const load = 0.25 // realistic partially-loaded line: idle slots between cells
	cfg := f.observed(coverify.SwitchRigConfig{Seed: seed, Traffic: loadTraffic(cells, load)})
	rig := coverify.NewSwitchRig(cfg)
	if err := rig.Run(horizonFor(cells/dut.SwitchPorts, load)); err != nil {
		panic(err)
	}
	r := E3Result{
		Cells:       cells,
		NetEvents:   rig.Net.Sched.Executed(),
		HDLEvents:   rig.HDL.Events(),
		HDLProcRuns: rig.HDL.ProcessRuns(),
		ClockCycles: rig.ClockCycles(),
	}
	if r.NetEvents > 0 {
		r.EventsRatio = float64(r.HDLEvents) / float64(r.NetEvents)
		r.CyclesPerNetEvent = float64(r.ClockCycles) / float64(r.NetEvents)
	}
	r.CyclesPerCell = float64(r.ClockCycles) / float64(cells)
	r.CyclesPerLineCell = float64(r.ClockCycles) / (float64(cells) / dut.SwitchPorts)
	return r
}

// String formats the E3 report.
func (r E3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E3: time-scale and event accounting, %d cells at 25%% line load\n", r.Cells)
	fmt.Fprintf(&b, "  network-simulator events : %d\n", r.NetEvents)
	fmt.Fprintf(&b, "  HDL signal events        : %d\n", r.HDLEvents)
	fmt.Fprintf(&b, "  HDL process executions   : %d\n", r.HDLProcRuns)
	fmt.Fprintf(&b, "  HDL clock cycles         : %d\n", r.ClockCycles)
	fmt.Fprintf(&b, "  events ratio HDL/net     : %.1fx   [paper: \"an order of magnitude higher\"]\n", r.EventsRatio)
	fmt.Fprintf(&b, "  clock cycles / net event : %.0f\n", r.CyclesPerNetEvent)
	fmt.Fprintf(&b, "  clock cycles / cell      : %.0f (aggregate over 4 lines)\n", r.CyclesPerCell)
	fmt.Fprintf(&b, "  clock cycles / line cell : %.0f   [paper: ~1:400 incl. idle cells]\n", r.CyclesPerLineCell)
	return b.String()
}

// E4Row is one test-cycle-duration sweep point.
type E4Row struct {
	MemDepth   int
	TestCycles uint64
	HWTime     sim.Duration
	SWTime     sim.Duration
	RTFraction float64
	Clean      bool
}

// E4Result is the hardware test board sweep.
type E4Result struct {
	Cells uint64
	Rows  []E4Row
}

// E4 verifies the switch "silicon" on the test board across test-cycle
// durations (stimulus memory depths): longer hardware activity cycles
// amortize the per-cycle SCSI software activity, raising the real-time
// fraction — the trade the §3.3 memory configuration governs.
func E4(cells uint64, seed uint64) E4Result {
	return pkgFactory().E4(cells, seed)
}

// E4 is the board sweep against the factory's sink.
func (f Factory) E4(cells uint64, seed uint64) E4Result {
	const load = 0.6
	res := E4Result{Cells: cells}
	for _, depth := range []int{128, 512, 2048, 8192, 32768} {
		cfg := f.observed(coverify.SwitchRigConfig{Seed: seed, Traffic: loadTraffic(cells, load)})
		rig, err := coverify.NewBoardRig(cfg, depth)
		if err != nil {
			panic(err)
		}
		if err := rig.Run(horizonFor(cells/dut.SwitchPorts, load)); err != nil {
			panic(err)
		}
		res.Rows = append(res.Rows, E4Row{
			MemDepth:   depth,
			TestCycles: rig.Board.TestCycles,
			HWTime:     rig.Board.HWTime,
			SWTime:     rig.Board.SWTime,
			RTFraction: rig.Board.RealTimeFraction(),
			Clean:      rig.Cmp.Clean(),
		})
	}
	return res
}

// String formats the E4 table.
func (r E4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E4: hardware test board, %d cells, 20 MHz board clock\n", r.Cells)
	fmt.Fprintf(&b, "  %9s %11s %12s %12s %8s %6s\n", "mem-depth", "test-cycles", "hw-time", "sw-time", "rt-frac", "clean")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %9d %11d %12v %12v %7.1f%% %6v\n",
			row.MemDepth, row.TestCycles, row.HWTime, row.SWTime, 100*row.RTFraction, row.Clean)
	}
	b.WriteString("  [paper: repeated SW/HW activity cycles; duration bounded by memory configuration]\n")
	return b.String()
}

// E5Result reports the accounting-unit case study.
type E5Result struct {
	Offered           uint64
	CounterMismatches int
	UnitRows          []string
	ConformanceTotal  int
	ConformanceFailed int
	Exceptions        uint64
}

// E5 runs the paper's case study: the accounting unit verified against
// its algorithmic reference under mixed stochastic traffic, an MPEG
// trace, and the standardized conformance vectors.
func E5(seed uint64) E5Result { return pkgFactory().E5(seed) }

// E5 is the case study against the factory's sink.
func (f Factory) E5(seed uint64) E5Result {
	vcs := []atm.VC{{VPI: 1, VCI: 10}, {VPI: 1, VCI: 11}, {VPI: 2, VCI: 20}, {VPI: 3, VCI: 30}}
	cfg := coverify.AcctRigConfig{
		Seed:   seed,
		VCs:    vcs,
		Tariff: atm.Tariff{CellsPerUnit: 25},
		Sources: []coverify.AcctSource{
			{Model: traffic.NewCBR(100e3), VC: 0, Cells: 400},
			{Model: traffic.NewPoisson(80e3), VC: 1, Cells: 300, CLP1: 0.4},
			{Model: &traffic.OnOff{PeakInterval: 10 * sim.Microsecond, MeanOn: 500 * sim.Microsecond, MeanOff: 500 * sim.Microsecond}, VC: 2, Cells: 300},
			{Model: traffic.DefaultMPEG(3 * sim.Microsecond), VC: 3, Cells: 500},
			{Model: traffic.NewPoisson(10e3), VC: -1, Cells: 50},
		},
	}
	cfg.Metrics = f.Obs.Reg()
	cfg.Trace = f.Obs.Trace()
	cfg.Batch = f.Batch
	cfg.NoCompiled = f.NoCompiled
	rig := coverify.NewAcctRig(cfg)

	// Conformance vectors replayed ahead of the stochastic phase.
	suite := conformanceSuite(vcs[0])
	at := sim.Microsecond
	for i := range suite.Vectors {
		rig.InjectVector(at, suite.Vectors[i].Image)
		at += 100 * sim.Microsecond
	}
	if err := rig.Run(80 * sim.Millisecond); err != nil {
		panic(err)
	}

	res := E5Result{
		Offered:           rig.Offered,
		CounterMismatches: len(rig.Compare()),
		Exceptions:        rig.Exceptions,
		ConformanceTotal:  len(suite.Vectors),
	}
	for _, vc := range vcs {
		ref, dutUnits := rig.Units(vc)
		status := "OK"
		if ref != dutUnits {
			status = "MISMATCH"
			res.ConformanceFailed++ // counted as a failure row
		}
		res.UnitRows = append(res.UnitRows,
			fmt.Sprintf("vc %-6s charging units ref=%-5d dut=%-5d %s", vc, ref, dutUnits, status))
	}
	return res
}

// String formats the E5 report.
func (r E5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E5: accounting unit case study (%d cells offered)\n", r.Offered)
	fmt.Fprintf(&b, "  counter mismatches ref vs RTL : %d  [paper: functional verification passed]\n", r.CounterMismatches)
	fmt.Fprintf(&b, "  conformance vectors replayed  : %d\n", r.ConformanceTotal)
	fmt.Fprintf(&b, "  hardware exception strobes    : %d\n", r.Exceptions)
	for _, row := range r.UnitRows {
		fmt.Fprintf(&b, "  %s\n", row)
	}
	return b.String()
}

// E6Result compares event-driven and cycle-based execution of the same
// switch.
type E6Result struct {
	Cells uint64

	EventWall  time.Duration
	EventCPS   float64
	CycleWall  time.Duration
	CycleCPS   float64
	Speedup    float64
	Equivalent bool
	EventCells uint64
	CycleCells uint64
}

// String formats the E6 report.
func (r E6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E6: event-driven vs cycle-based switch execution, %d cells\n", r.Cells)
	fmt.Fprintf(&b, "  %-14s %12s %16s %10s\n", "engine", "wall", "clk-cycles/s", "cells")
	fmt.Fprintf(&b, "  %-14s %12v %16.0f %10d\n", "event-driven", r.EventWall.Round(time.Millisecond), r.EventCPS, r.EventCells)
	fmt.Fprintf(&b, "  %-14s %12v %16.0f %10d\n", "cycle-based", r.CycleWall.Round(time.Millisecond), r.CycleCPS, r.CycleCells)
	fmt.Fprintf(&b, "  speedup: %.1fx, outputs equivalent: %v\n", r.Speedup, r.Equivalent)
	b.WriteString("  [paper conclusion: event-driven simulators are the bottleneck; cycle-based techniques required]\n")
	return b.String()
}
