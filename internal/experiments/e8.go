package experiments

import (
	"fmt"
	"strings"

	"castanet/internal/coverify"
	"castanet/internal/faultsim"
	"castanet/internal/sim"
	"castanet/internal/traffic"
)

// E8 is the second extension experiment: fault coverage of the reused
// network-level test bench, measured by injection. One defect at a time
// is planted in the "silicon's" connection table; the unchanged test
// bench runs on the hardware test board and the comparison engine either
// catches the defect or lets it escape. Sweeping the traffic's
// connection coverage shows that test-bench quality is a property of the
// stimuli — the paper's argument for reusing the rich network-level
// traffic models instead of hand-built vectors.

// E8Row is one sweep point.
type E8Row struct {
	PortsDriven int
	Faults      int
	Detected    int
	Coverage    float64
}

// E8Result is the campaign sweep.
type E8Result struct {
	Rows []E8Row
}

// E8 runs the coverage sweep against the package-level sink.
func E8(seed uint64) E8Result { return pkgFactory().E8(seed) }

// E8 runs fault campaigns with traffic on 1..4 input ports.
func (f Factory) E8(seed uint64) E8Result {
	var res E8Result
	faults := faultsim.TableFaults(coverify.DefaultTable())
	for nPorts := 1; nPorts <= 4; nPorts++ {
		cfg := f.observed(coverify.SwitchRigConfig{Seed: seed})
		for p := 0; p < nPorts; p++ {
			cfg.Traffic[p] = coverify.PortTraffic{
				Model: traffic.NewCBR(100e3),
				VCs:   coverify.PortVCs(p),
				Cells: 24,
			}
		}
		results, err := faultsim.Campaign(cfg, 2*sim.Millisecond, faults)
		if err != nil {
			panic(err)
		}
		detected, frac := faultsim.Coverage(results)
		res.Rows = append(res.Rows, E8Row{
			PortsDriven: nPorts,
			Faults:      len(results),
			Detected:    detected,
			Coverage:    frac,
		})
	}
	return res
}

// String formats the coverage table.
func (r E8Result) String() string {
	var b strings.Builder
	b.WriteString("E8 (extension): fault coverage of the reused test bench (64 planted table defects)\n")
	fmt.Fprintf(&b, "  %12s %8s %10s %10s\n", "ports driven", "faults", "detected", "coverage")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %12d %8d %10d %9.1f%%\n",
			row.PortsDriven, row.Faults, row.Detected, 100*row.Coverage)
	}
	b.WriteString("  [coverage tracks the traffic's connection coverage; full-mesh traffic catches everything]\n")
	return b.String()
}
