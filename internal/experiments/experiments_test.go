package experiments

import (
	"strings"
	"testing"
)

// The experiment harnesses are exercised here with small workloads so the
// regular test suite validates their claims' shapes; the full-size runs
// live in the root bench harness.

func TestE1Shape(t *testing.T) {
	r := E1(400, 1)
	if !r.CosimClean {
		t.Error("E1 co-simulation comparison not clean")
	}
	if !r.RTLClean {
		t.Error("E1 RTL regression not clean")
	}
	// The headline claim: co-simulation simulates clock cycles faster
	// than the pure RTL test bench (paper: ~4.3x; any factor > 1 keeps
	// the shape).
	if r.Speedup <= 1 {
		t.Errorf("E1 speedup = %.2f, want > 1\n%s", r.Speedup, r)
	}
	if !strings.Contains(r.String(), "speedup") {
		t.Error("report missing speedup line")
	}
}

func TestE2Shape(t *testing.T) {
	r := E2(200, 1)
	if len(r.Rows) != 9 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Causality != 0 {
			t.Errorf("δ=%d sync=%v: causality errors %d", row.DeltaCycles, row.SyncEvery, row.Causality)
		}
		if !row.Clean {
			t.Errorf("δ=%d sync=%v: comparison not clean", row.DeltaCycles, row.SyncEvery)
		}
		if row.MaxLag <= 0 {
			t.Errorf("δ=%d: MaxLag = %v", row.DeltaCycles, row.MaxLag)
		}
	}
	// Finer sync periods mean more messages.
	if r.Rows[0].Messages <= r.Rows[1].Messages {
		t.Errorf("10us sync (%d msgs) should exceed 100us sync (%d msgs)",
			r.Rows[0].Messages, r.Rows[1].Messages)
	}
	// The lock-step ablation explodes the message count by orders of
	// magnitude relative to the coarsest conservative setting.
	lock := r.Rows[len(r.Rows)-1]
	if !lock.Lockstep {
		t.Fatal("last row is not the lockstep ablation")
	}
	if lock.Messages < 20*r.Rows[1].Messages {
		t.Errorf("lockstep messages %d not >> conservative %d", lock.Messages, r.Rows[1].Messages)
	}
}

func TestE3Shape(t *testing.T) {
	r := E3(200, 1)
	// Paper: HDL events an order of magnitude above network events, and
	// hundreds of clock cycles per cell (1:400 at real line idle ratios).
	if r.EventsRatio < 5 {
		t.Errorf("events ratio = %.1f, want >= 5\n%s", r.EventsRatio, r)
	}
	if r.CyclesPerCell < 100 {
		t.Errorf("cycles/cell = %.0f, want >= 100", r.CyclesPerCell)
	}
}

func TestE4Shape(t *testing.T) {
	r := E4(200, 1)
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !row.Clean {
			t.Errorf("depth %d: comparison not clean", row.MemDepth)
		}
	}
	// Larger test cycles amortize SCSI overhead: real-time fraction must
	// improve monotonically (weakly) with memory depth.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].RTFraction+1e-9 < r.Rows[i-1].RTFraction {
			t.Errorf("rt fraction fell from %.3f (depth %d) to %.3f (depth %d)",
				r.Rows[i-1].RTFraction, r.Rows[i-1].MemDepth,
				r.Rows[i].RTFraction, r.Rows[i].MemDepth)
		}
	}
	// Fewer test cycles with deeper memory.
	if r.Rows[0].TestCycles <= r.Rows[len(r.Rows)-1].TestCycles {
		t.Errorf("test cycles did not shrink: %d -> %d",
			r.Rows[0].TestCycles, r.Rows[len(r.Rows)-1].TestCycles)
	}
}

func TestE5Shape(t *testing.T) {
	r := E5(1)
	if r.CounterMismatches != 0 {
		t.Errorf("counter mismatches = %d\n%s", r.CounterMismatches, r)
	}
	if r.ConformanceFailed != 0 {
		t.Errorf("unit comparisons failed = %d", r.ConformanceFailed)
	}
	if r.Exceptions == 0 {
		t.Error("no exceptions: unregistered traffic not exercised")
	}
	if len(r.UnitRows) != 4 {
		t.Errorf("unit rows = %d", len(r.UnitRows))
	}
}

func TestE6Shape(t *testing.T) {
	r := E6(200, 1)
	if !r.Equivalent {
		t.Errorf("engines disagree: event %d cells, cycle %d cells", r.EventCells, r.CycleCells)
	}
	if r.EventCells != r.Cells {
		t.Errorf("event engine delivered %d of %d cells", r.EventCells, r.Cells)
	}
	// Cycle-based must be clearly faster (paper's conclusion).
	if r.Speedup < 2 {
		t.Errorf("cycle-based speedup = %.1fx, want >= 2\n%s", r.Speedup, r)
	}
}

func TestE7Shape(t *testing.T) {
	r := E7(150, 1)
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !row.Agree {
			t.Errorf("load %.2f: hardware and reference disagree", row.LoadRatio)
		}
	}
	// Violation fraction rises (weakly) with offered load and is
	// substantial past the contract.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].DUTViolFrac+0.05 < r.Rows[i-1].DUTViolFrac {
			t.Errorf("violation fraction fell: %.3f -> %.3f",
				r.Rows[i-1].DUTViolFrac, r.Rows[i].DUTViolFrac)
		}
	}
	// Poisson gaps are exponential, so some violations occur even below
	// the contract rate; the curve must still rise markedly through it.
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.DUTViolFrac < 0.3 {
		t.Errorf("violations at 2x contract = %.3f, want > 0.3", last.DUTViolFrac)
	}
	if last.DUTViolFrac < first.DUTViolFrac+0.2 {
		t.Errorf("curve too flat: %.3f at 0.5x vs %.3f at 2x", first.DUTViolFrac, last.DUTViolFrac)
	}
}

func TestE8Shape(t *testing.T) {
	r := E8(1)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Coverage grows with connection coverage of the traffic and reaches
	// 100% with full-mesh stimuli.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Coverage < r.Rows[i-1].Coverage {
			t.Errorf("coverage fell: %.2f -> %.2f", r.Rows[i-1].Coverage, r.Rows[i].Coverage)
		}
	}
	if last := r.Rows[3]; last.Coverage != 1.0 {
		t.Errorf("full traffic coverage = %.2f, want 1.0", last.Coverage)
	}
	if first := r.Rows[0]; first.Coverage >= 0.5 {
		t.Errorf("1-port coverage = %.2f, want ~0.25", first.Coverage)
	}
}
