package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"castanet/internal/atm"
	"castanet/internal/campaign"
	"castanet/internal/coverify"
	"castanet/internal/dut"
	"castanet/internal/ipc"
	"castanet/internal/obs"
	"castanet/internal/sim"
	"castanet/internal/traffic"
)

// This file defines the verification campaigns castanet -campaign runs:
// named matrices of {experiment × fault-profile} cells for the campaign
// engine. Every RunFunc derives its entire workload from the run's seed,
// elaborates a fresh rig, and returns a deterministic error on a
// verification failure — the contract that makes campaign failure digests
// byte-identical across shard counts and every digest line replayable.

// CampaignConfig tunes the per-run observability of a campaign matrix.
type CampaignConfig struct {
	// TraceEvery samples the causal cell tracing: every Nth cell of a run
	// is traced hop by hop (1 traces all, the default; 0 disables
	// tracing). Campaign runs are small, so full tracing is the default;
	// raise it for full-rate soak campaigns.
	TraceEvery int
	// Batch runs every rig through the δ-window batched coupling path
	// (default on, matching the castanet -batch flag). The campaigns are
	// then end-to-end consumers of the batched wire format: switch runs
	// batch over the direct coupling, fault runs push whole batches
	// through Reliable(Fault(pipe)).
	Batch bool
	// NoCompiled elaborates every run's HDL kernel on the plain
	// event-driven data plane instead of the compiled fast path
	// (hdl.Compile, DESIGN.md §18) — the castanet -no-compiled escape
	// hatch, threaded here so campaigns bisect the same way experiments
	// do.
	NoCompiled bool
}

// DefaultCampaignConfig traces every cell and batches the coupling — see
// CampaignConfig.
var DefaultCampaignConfig = CampaignConfig{TraceEvery: 1, Batch: true}

// runObs builds the per-run cell tracker and flight recorder. Each run
// gets fresh ones (runs share nothing mutable), sized for a campaign-run
// workload.
func (cfg CampaignConfig) runObs() (*obs.CellTracker, *obs.Recorder) {
	var cells *obs.CellTracker
	if cfg.TraceEvery > 0 {
		cells = obs.NewCellTracker(cfg.TraceEvery, 0)
	}
	return cells, obs.NewRecorder(0)
}

// campaignMatrices maps campaign names to their matrix builders.
var campaignMatrices = map[string]func(CampaignConfig) []campaign.Cell{
	"switch":  switchCells,
	"faults":  faultCells,
	"policer": policerCells,
	"acct":    acctCells,
}

// CampaignNames lists the valid -campaign values, sorted.
func CampaignNames() string {
	names := make([]string, 0, len(campaignMatrices))
	for name := range campaignMatrices {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// CampaignMatrix returns the named campaign's matrix cells with the
// default observability configuration.
func CampaignMatrix(name string) ([]campaign.Cell, error) {
	return CampaignMatrixCfg(name, DefaultCampaignConfig)
}

// CampaignMatrixCfg returns the named campaign's matrix cells under an
// explicit observability configuration.
func CampaignMatrixCfg(name string, cfg CampaignConfig) ([]campaign.Cell, error) {
	build, ok := campaignMatrices[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown campaign %q (valid: %s)", name, CampaignNames())
	}
	return build(cfg), nil
}

// campaignTraffic derives a small deterministic switch workload from the
// run's stream: 1..4 driven ports, 12..28 cells each, CBR rates inside
// the uncongested region so a healthy device delivers every cell.
func campaignTraffic(rng *sim.RNG) ([dut.SwitchPorts]coverify.PortTraffic, sim.Time) {
	var tr [dut.SwitchPorts]coverify.PortTraffic
	ports := 1 + rng.Intn(dut.SwitchPorts)
	cells := uint64(12 + rng.Intn(17))
	horizon := sim.Time(0)
	for p := 0; p < ports; p++ {
		rate := 60e3 + 60e3*rng.Float64() // cells/s, well under the 377k line rate
		tr[p] = coverify.PortTraffic{
			Model: traffic.NewCBR(rate),
			VCs:   coverify.PortVCs(p),
			Cells: cells,
		}
		if h := sim.FromSeconds(float64(cells+2) / rate); h > horizon {
			horizon = h
		}
	}
	return tr, horizon + 200*sim.Microsecond
}

// switchCells is the clean co-verification campaign: every run drives a
// fresh switch rig (direct coupling) with seed-derived traffic and demands
// a clean comparison. Failures leave with the rig's triage bundle (cell
// waterfall + flight-recorder dump) attached via campaign.Detailed.
func switchCells(ccfg CampaignConfig) []campaign.Cell {
	return []campaign.Cell{{Experiment: "switch", Run: func(ctx context.Context, r *campaign.Run) error {
		rng := r.RNG()
		tr, horizon := campaignTraffic(rng)
		cells, rec := ccfg.runObs()
		rig := coverify.NewSwitchRig(coverify.SwitchRigConfig{
			Seed: rng.Uint64(), Traffic: tr, Cells: cells, Recorder: rec,
			Batch: ccfg.Batch, NoCompiled: ccfg.NoCompiled,
			Deadline: r.Deadline, Cover: r.Cover(),
			Profile: r.Profile(),
		})
		if err := rig.Run(horizon); err != nil {
			return campaign.Detailed(err, rig.FailureDigest())
		}
		r.Observe("cells", float64(rig.Offered))
		r.Observe("cycles", float64(rig.ClockCycles()))
		if !rig.Cmp.Clean() {
			return campaign.Detailed(
				fmt.Errorf("switch comparison not clean: %s", rig.Cmp.Summary()),
				rig.FailureDigest())
		}
		return nil
	}}}
}

// LinkFaultProfile is one degraded-link column of the faults campaign.
// The fault generator's seed is re-derived per run, so a long campaign
// sweeps fresh loss/corruption patterns every revisit while staying
// replayable.
type LinkFaultProfile struct {
	Name string
	Dir  ipc.DirFaults
	// Abort marks profiles (permanent partitions) whose only correct
	// outcome is a typed coupling abort; all others must be fully masked.
	Abort bool
}

var linkFaultProfiles = []LinkFaultProfile{
	{Name: "drop5-corrupt1", Dir: ipc.DirFaults{Drop: 0.05, Corrupt: 0.01}},
	{Name: "dup10", Dir: ipc.DirFaults{Dup: 0.1}},
	{Name: "delay-reorder", Dir: ipc.DirFaults{Delay: 0.2, DelaySlots: 3}},
	{Name: "partition", Dir: ipc.DirFaults{PartitionAfter: 10}, Abort: true},
}

// LinkFaultProfiles returns the standard degraded-link profile menu in
// campaign column order — shared with the scenario explorer so both
// harnesses inject the same fault classes.
func LinkFaultProfiles() []LinkFaultProfile {
	return append([]LinkFaultProfile(nil), linkFaultProfiles...)
}

// faultCells is the resilience campaign: the switch rig coupled over the
// reliability envelope with per-run link faults. Recoverable profiles must
// end bit-clean; the partition must end in a typed coupling abort. The
// clean column keeps a fault-free reference in the same matrix.
func faultCells(ccfg CampaignConfig) []campaign.Cell {
	cells := []campaign.Cell{{Experiment: "faults", Fault: "clean", Run: faultRun(ccfg, nil)}}
	for i := range linkFaultProfiles {
		p := &linkFaultProfiles[i]
		cells = append(cells, campaign.Cell{Experiment: "faults", Fault: p.Name, Run: faultRun(ccfg, p)})
	}
	return cells
}

func faultRun(ccfg CampaignConfig, profile *LinkFaultProfile) campaign.RunFunc {
	return func(ctx context.Context, r *campaign.Run) error {
		rng := r.RNG()
		tr, horizon := campaignTraffic(rng)
		cells, rec := ccfg.runObs()
		cfg := coverify.SwitchRigConfig{
			Seed:       rng.Uint64(),
			Traffic:    tr,
			Remote:     true,
			Batch:      ccfg.Batch,
			NoCompiled: ccfg.NoCompiled,
			Cells:      cells,
			Recorder:   rec,
			Cover:      r.Cover(),
			Profile:    r.Profile(),
			// The supervision deadline arms the coupling watchdogs too, so
			// a hung transport trips inside the run as a typed coupling
			// error before the supervisor has to reap the whole attempt.
			Deadline: r.Deadline,
			Reliable: &ipc.ReliableConfig{
				MaxRetries: 20,
				RetryBase:  time.Millisecond,
				RetryCap:   8 * time.Millisecond,
			},
		}
		if profile != nil {
			cfg.Fault = &ipc.FaultConfig{Seed: rng.Uint64(), Send: profile.Dir, Recv: profile.Dir}
			if profile.Abort {
				// A permanent partition must abort within the retry budget,
				// not mask; keep the budget tight so it aborts promptly.
				cfg.Fault.Recv = ipc.DirFaults{}
				cfg.Reliable.MaxRetries = 5
			}
		}
		rig := coverify.NewSwitchRig(cfg)
		// Fail-fast cancellation tears the coupling down so the blocked
		// run surfaces a typed error instead of outliving the campaign.
		release := campaign.OnCancel(ctx, func() { rig.Close() })
		err := rig.Run(horizon)
		release()
		rig.Close()

		expectAbort := profile != nil && profile.Abort
		switch {
		case err != nil && !expectAbort:
			// Typed coupling errors keep their class in the digest; the
			// flight recorder rides along as report detail.
			return campaign.Detailed(err, rig.FailureDigest())
		case err != nil && expectAbort:
			return nil // the partition aborted cleanly, as required
		case expectAbort:
			return fmt.Errorf("partitioned link completed instead of aborting")
		}
		r.Observe("cells", float64(rig.Offered))
		// Retransmit counts depend on wall-clock retry timers, not on the
		// run's seed, so they go to telemetry only — putting them in the
		// aggregate would break digest determinism.
		r.ObserveWall("retransmits", float64(rig.RelClient.Stats().Retransmits))
		if !rig.Cmp.Clean() {
			return campaign.Detailed(
				fmt.Errorf("degraded link leaked into the verdict: %s", rig.Cmp.Summary()),
				rig.FailureDigest())
		}
		return nil
	}
}

// policerCells is the UPC campaign: per run a seed-derived offered load
// between 0.5× and 2× the contract, with the RTL policer and the GCRA
// reference required to agree per cell.
func policerCells(ccfg CampaignConfig) []campaign.Cell {
	return []campaign.Cell{{Experiment: "policer", Run: func(ctx context.Context, r *campaign.Run) error {
		rng := r.RNG()
		const contractRate = 50e3 // cells/s
		ratio := 0.5 + 1.5*rng.Float64()
		cells := uint64(30 + rng.Intn(31))
		vc := atm.VC{VPI: 1, VCI: 10}
		rig := coverify.NewPolicerRig(coverify.PolicerRigConfig{
			Seed:  rng.Uint64(),
			Batch: ccfg.Batch,
			Cover: r.Cover(),
			Contracts: []coverify.PolicerContract{
				{VC: vc, PeakInterval: sim.FromSeconds(1 / contractRate), Tau: 2 * sim.Microsecond},
			},
			Sources: []coverify.PolicerSource{
				{Model: traffic.NewPoisson(contractRate * ratio), VC: vc, Cells: cells},
			},
		})
		horizon := sim.FromSeconds(float64(cells)/(contractRate*ratio)) + sim.Millisecond
		if err := rig.Run(horizon); err != nil {
			return err
		}
		r.Observe("load_ratio", ratio)
		r.Observe("cells", float64(rig.Offered))
		if !rig.Cmp.Clean() {
			return fmt.Errorf("policer decisions diverged at load %.3f: %d bad, %d outstanding",
				ratio, len(rig.Cmp.Bad), rig.Cmp.Outstanding())
		}
		return nil
	}}}
}

// acctCells is the accounting campaign: the standardized conformance
// vectors replayed ahead of a short seed-derived stochastic phase, with
// every hardware counter required to match the reference meter.
func acctCells(ccfg CampaignConfig) []campaign.Cell {
	return []campaign.Cell{{Experiment: "acct", Run: func(ctx context.Context, r *campaign.Run) error {
		rng := r.RNG()
		vcs := []atm.VC{{VPI: 1, VCI: 10}, {VPI: 2, VCI: 20}}
		cfg := coverify.AcctRigConfig{
			Seed:   rng.Uint64(),
			Batch:  ccfg.Batch,
			Cover:  r.Cover(),
			VCs:    vcs,
			Tariff: atm.Tariff{CellsPerUnit: 10},
			Sources: []coverify.AcctSource{
				{Model: traffic.NewCBR(80e3 + 40e3*rng.Float64()), VC: 0, Cells: 20 + uint64(rng.Intn(21))},
				{Model: traffic.NewPoisson(60e3 + 30e3*rng.Float64()), VC: 1, Cells: 20 + uint64(rng.Intn(21)), CLP1: rng.Float64() / 2},
			},
		}
		rig := coverify.NewAcctRig(cfg)
		suite := conformanceSuite(vcs[0])
		at := sim.Microsecond
		for i := range suite.Vectors {
			rig.InjectVector(at, suite.Vectors[i].Image)
			at += 60 * sim.Microsecond
		}
		if err := rig.Run(4 * sim.Millisecond); err != nil {
			return err
		}
		r.Observe("cells", float64(rig.Offered))
		if m := rig.Compare(); len(m) > 0 {
			return fmt.Errorf("accounting counters diverged: %d mismatches, first %s/%s",
				len(m), m[0].VC, m[0].Field)
		}
		return nil
	}}}
}
