package experiments

import (
	"fmt"
	"strings"

	"castanet/internal/atm"
	"castanet/internal/coverify"
	"castanet/internal/sim"
	"castanet/internal/traffic"
)

// E7 is an extension experiment beyond the paper's evaluation (its §4
// names the ATM traffic-management sector as CASTANET's application
// domain): co-verification of a usage-parameter-control unit. A Poisson
// source is swept across offered loads relative to its traffic contract;
// at every point the RTL policer and the GCRA reference must make
// identical per-cell decisions, and the violation fraction traces the
// classic UPC conformance curve.

// E7Row is one sweep point.
type E7Row struct {
	LoadRatio   float64 // offered rate / contracted rate
	Offered     uint64
	RefViolFrac float64
	DUTViolFrac float64
	Agree       bool // per-cell agreement (comparator clean)
}

// E7Result is the policing sweep.
type E7Result struct {
	Rows []E7Row
}

// E7 runs the sweep against the package-level sink.
func E7(cellsPerPoint uint64, seed uint64) E7Result {
	return pkgFactory().E7(cellsPerPoint, seed)
}

// E7 runs the sweep.
func (f Factory) E7(cellsPerPoint uint64, seed uint64) E7Result {
	var res E7Result
	vc := atm.VC{VPI: 1, VCI: 10}
	const contractRate = 50e3 // cells/s
	for i, ratio := range []float64{0.5, 0.8, 1.0, 1.2, 1.6, 2.0} {
		rig := coverify.NewPolicerRig(coverify.PolicerRigConfig{
			Seed: seed + uint64(i),
			Contracts: []coverify.PolicerContract{
				{VC: vc, PeakInterval: sim.FromSeconds(1 / contractRate), Tau: 2 * sim.Microsecond},
			},
			Sources: []coverify.PolicerSource{
				{Model: traffic.NewPoisson(contractRate * ratio), VC: vc, Cells: cellsPerPoint},
			},
			Metrics:    f.Obs.Reg(),
			Trace:      f.Obs.Trace(),
			Batch:      f.Batch,
			NoCompiled: f.NoCompiled,
		})
		horizon := sim.FromSeconds(float64(cellsPerPoint)/(contractRate*ratio)) + sim.Millisecond
		if err := rig.Run(horizon); err != nil {
			panic(err)
		}
		total := float64(rig.DUT.Conforming + rig.DUT.NonConforming)
		refTotal := float64(rig.Ref.Conforming + rig.Ref.NonConforming)
		row := E7Row{
			LoadRatio: ratio,
			Offered:   rig.Offered,
			Agree:     rig.Cmp.Clean(),
		}
		if total > 0 {
			row.DUTViolFrac = float64(rig.DUT.NonConforming) / total
		}
		if refTotal > 0 {
			row.RefViolFrac = float64(rig.Ref.NonConforming) / refTotal
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// String formats the conformance curve.
func (r E7Result) String() string {
	var b strings.Builder
	b.WriteString("E7 (extension): UPC policing co-verification, Poisson vs peak-rate contract\n")
	fmt.Fprintf(&b, "  %10s %9s %12s %12s %7s\n", "load/PCR", "cells", "viol% (ref)", "viol% (RTL)", "agree")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %10.2f %9d %11.1f%% %11.1f%% %7v\n",
			row.LoadRatio, row.Offered, 100*row.RefViolFrac, 100*row.DUTViolFrac, row.Agree)
	}
	b.WriteString("  [GCRA: violations rise smoothly through the contract rate; RTL == reference per cell]\n")
	return b.String()
}
