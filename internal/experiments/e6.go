package experiments

import (
	"fmt"
	"time"

	"castanet/internal/atm"
	"castanet/internal/conformance"
	"castanet/internal/coverify"
	"castanet/internal/cyclesim"
	"castanet/internal/dut"
	"castanet/internal/hdl"
	"castanet/internal/mapping"
	"castanet/internal/sim"
)

// conformanceSuite builds the standard vector suite for E5.
func conformanceSuite(known atm.VC) *conformance.Suite {
	return conformance.StandardSuite(known)
}

// e6Stimulus is the deterministic workload both engines consume: per
// input port a list of (gapCycles, cell).
type e6Stimulus struct {
	gaps  [dut.SwitchPorts][]int
	cells [dut.SwitchPorts][]*atm.Cell
}

func makeE6Stimulus(cells uint64, seed uint64) *e6Stimulus {
	rng := sim.NewRNG(seed)
	st := &e6Stimulus{}
	per := int(cells) / dut.SwitchPorts
	var seq uint32
	for p := 0; p < dut.SwitchPorts; p++ {
		for i := 0; i < per; i++ {
			vc := coverify.PortVCs(p)[i%dut.SwitchPorts]
			c := &atm.Cell{Header: atm.Header{VPI: vc.VPI, VCI: vc.VCI}, Seq: seq}
			c.StampSeq()
			seq++
			st.cells[p] = append(st.cells[p], c)
			st.gaps[p] = append(st.gaps[p], 10+rng.Intn(20)) // 53+gap cycles spacing
		}
	}
	return st
}

type cellRecord struct {
	port   int
	header atm.Header
}

// E6 runs the identical stimulus through the event-driven RTL switch and
// its cycle-based twin, comparing wall-clock speed and checking that the
// delivered cells are identical.
func E6(cells uint64, seed uint64) E6Result {
	return pkgFactory().E6(cells, seed)
}

// E6 is the engine comparison against the factory's sink.
func (f Factory) E6(cells uint64, seed uint64) E6Result {
	st := makeE6Stimulus(cells, seed)
	table := coverify.DefaultTable()
	period := 50 * sim.Nanosecond
	res := E6Result{Cells: cells}

	// Event-driven engine.
	h := hdl.New()
	h.Instrument(f.Obs.Reg(), "hdl.sim")
	clk := h.Bit("clk", hdl.U)
	h.Clock(clk, period)
	sw := dut.NewSwitch(h, clk, table, dut.DefaultSwitchConfig())
	eventGot := make(map[uint32]cellRecord)
	totalCycles := 0
	for p := 0; p < dut.SwitchPorts; p++ {
		p := p
		w := mapping.NewCellPortWriter(h, fmt.Sprintf("tx%d", p), clk, sw.In[p].Data, sw.In[p].Sync)
		cyc := 0
		for i, c := range st.cells[p] {
			c := c
			at := sim.Duration(cyc) * period
			h.Schedule(at, func() { w.Enqueue(c) })
			cyc += 53 + st.gaps[p][i]
		}
		if cyc > totalCycles {
			totalCycles = cyc
		}
		rd := mapping.NewCellPortReader(h, fmt.Sprintf("rx%d", p), clk, sw.Out[p].Data, sw.Out[p].Sync)
		rd.SkipIdle = true
		rd.OnCell = func(c *atm.Cell) { eventGot[c.Seq] = cellRecord{port: p, header: c.Header} }
	}
	if !f.NoCompiled {
		h.MustCompile()
	}
	horizon := sim.Duration(totalCycles+20*53) * period
	start := time.Now()
	if err := h.Run(horizon); err != nil {
		panic(err)
	}
	res.EventWall = time.Since(start)
	res.EventCPS = float64(h.Now()/period) / res.EventWall.Seconds()
	res.EventCells = uint64(len(eventGot))

	// Cycle-based engine, same stimulus timing.
	csw := cyclesim.NewSwitch(table, dut.DefaultSwitchConfig().InFifoCells, dut.DefaultSwitchConfig().OutFifoCells)
	cycleGot := make(map[uint32]cellRecord)
	nCycles := totalCycles + 20*53
	// Precompile per-port byte streams.
	type stream struct {
		data []byte
		sync []bool
	}
	streams := make([]stream, dut.SwitchPorts)
	for p := 0; p < dut.SwitchPorts; p++ {
		s := stream{data: make([]byte, nCycles), sync: make([]bool, nCycles)}
		cyc := 0
		for i, c := range st.cells[p] {
			img := c.Marshal()
			for b := 0; b < atm.CellBytes; b++ {
				if cyc+b < nCycles {
					s.data[cyc+b] = img[b]
					s.sync[cyc+b] = b == 0
				}
			}
			cyc += 53 + st.gaps[p][i]
		}
		streams[p] = s
	}
	type rxs struct {
		buf    [atm.CellBytes]byte
		pos    int
		inCell bool
	}
	var rx [dut.SwitchPorts]rxs
	in := make([]uint64, 2*dut.SwitchPorts)
	start = time.Now()
	for cyc := 0; cyc < nCycles; cyc++ {
		for p := 0; p < dut.SwitchPorts; p++ {
			in[2*p] = uint64(streams[p].data[cyc])
			if streams[p].sync[cyc] {
				in[2*p+1] = 1
			} else {
				in[2*p+1] = 0
			}
		}
		out := csw.Tick(in)
		for p := 0; p < dut.SwitchPorts; p++ {
			r := &rx[p]
			if out[2*p+1]&1 == 1 {
				r.pos = 0
				r.inCell = true
			}
			if !r.inCell {
				continue
			}
			r.buf[r.pos] = byte(out[2*p])
			r.pos++
			if r.pos == atm.CellBytes {
				r.inCell = false
				if c, err := atm.Unmarshal(r.buf); err == nil && !c.IsIdle() && !c.IsUnassigned() {
					cycleGot[c.Seq] = cellRecord{port: p, header: c.Header}
				}
			}
		}
	}
	res.CycleWall = time.Since(start)
	res.CycleCPS = float64(nCycles) / res.CycleWall.Seconds()
	res.CycleCells = uint64(len(cycleGot))

	if res.EventWall > 0 {
		res.Speedup = res.CycleCPS / res.EventCPS
	}

	// Functional equivalence: same cells, same ports, same headers.
	res.Equivalent = len(eventGot) == len(cycleGot)
	for seq, er := range eventGot {
		cr, ok := cycleGot[seq]
		if !ok || cr != er {
			res.Equivalent = false
			break
		}
	}
	return res
}
