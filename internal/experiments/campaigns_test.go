package experiments

import (
	"context"
	"strings"
	"testing"

	"castanet/internal/atm"
	"castanet/internal/campaign"
	"castanet/internal/coverify"
)

// TestCampaignMatrixCfg: names resolve under any config, unknown names
// are typed errors, and the sampling knob reaches runObs.
func TestCampaignMatrixCfg(t *testing.T) {
	if _, err := CampaignMatrix("switch"); err != nil {
		t.Fatalf("default switch matrix: %v", err)
	}
	if _, err := CampaignMatrixCfg("nope", DefaultCampaignConfig); err == nil {
		t.Error("unknown campaign accepted")
	}
	if cells, _ := (CampaignConfig{TraceEvery: 0}).runObs(); cells != nil {
		t.Error("TraceEvery=0 must disable the cell tracker")
	}
	if cells, rec := (CampaignConfig{TraceEvery: 3}).runObs(); cells.Every() != 3 || !rec.Enabled() {
		t.Error("runObs must honor the sampling interval and always record")
	}
}

// TestCampaignTriageBundle is the acceptance path for causal tracing: a
// campaign whose DUT responses are deterministically tampered with must
// fail, and its report must carry — without any re-run — the offending
// cell's trace ID, its per-hop latency waterfall, and the flight-recorder
// dump.
func TestCampaignTriageBundle(t *testing.T) {
	cfg := DefaultCampaignConfig
	matrix := []campaign.Cell{{Experiment: "tampered", Run: func(ctx context.Context, r *campaign.Run) error {
		rng := r.RNG()
		tr, horizon := campaignTraffic(rng)
		cells, rec := cfg.runObs()
		rig := coverify.NewSwitchRig(coverify.SwitchRigConfig{
			Seed: rng.Uint64(), Traffic: tr, Cells: cells, Recorder: rec,
			TamperResponse: func(c *atm.Cell) { c.Payload[atm.PayloadBytes-1] ^= 0xFF },
		})
		if err := rig.Run(horizon); err != nil {
			return campaign.Detailed(err, rig.FailureDigest())
		}
		if !rig.Cmp.Clean() {
			return campaign.Detailed(
				campaignFailErr(rig.Cmp.Summary()),
				rig.FailureDigest())
		}
		return nil
	}}}

	sum, err := campaign.Execute(context.Background(), campaign.Spec{
		Name: "tampered", Seed: 3, Runs: 2, Shards: 1, Matrix: matrix,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 2 {
		t.Fatalf("tampered campaign failed %d of 2 runs, want all", sum.Failed)
	}

	var report strings.Builder
	if err := sum.WriteReport(&report); err != nil {
		t.Fatal(err)
	}
	out := report.String()
	for _, want := range []string{
		"first mismatch:",
		"trace=0x",
		"cell trace 0x",
		"net.enqueue",
		"ipc.tx",
		"entity.rx",
		"hdl.commit",
		"compare",
		"flight recorder",
		"[cmp]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("failure report missing %q:\n%s", want, out)
		}
	}

	// The canonical digest must stay single-line-per-failure: the triage
	// bundle is report detail, never digest content, so digests remain
	// byte-identical across shard counts.
	for _, line := range strings.Split(strings.TrimRight(sum.Digest(), "\n"), "\n") {
		if !strings.HasPrefix(line, "run=") {
			t.Errorf("digest line %q is not a run line", line)
		}
	}
}

// campaignFailErr keeps the tampered matrix deterministic: same text for
// the same comparison summary.
type campaignFailErr string

func (e campaignFailErr) Error() string { return "switch comparison not clean: " + string(e) }
