package atm

import (
	"fmt"
	"sort"

	"castanet/internal/sim"
)

// This file implements the charging/accounting algorithm whose hardware
// implementation is the paper's case study ("We have used CASTANET for the
// functional verification of an ATM accounting unit", referencing the
// authors' charging-algorithm work [9]). The algorithm keeps per-connection
// usage counters and converts them to charging units with a volume tariff
// that weights cells by loss priority. Package refmodel wraps it as the
// algorithmic reference model; package dut implements the same function at
// the register-transfer level.

// UsageRecord is the per-connection accounting state.
type UsageRecord struct {
	VC        VC
	Cells     uint64 // total accepted cells
	CLP1Cells uint64 // low-priority cells (charged at a reduced rate)
	FirstSeen sim.Time
	LastSeen  sim.Time
}

// Tariff converts cell counts to charging units. Charging is volume based
// with a per-interval unit quantization: every full block of CellsPerUnit
// accepted cells costs one unit; CLP=1 cells count with half weight
// (two CLP1 cells consume one cell of volume).
type Tariff struct {
	CellsPerUnit uint64
}

// Units returns the number of charging units for the given counters.
func (t Tariff) Units(cells, clp1 uint64) uint64 {
	if t.CellsPerUnit == 0 {
		return 0
	}
	weighted := (cells-clp1)*2 + clp1 // CLP0 weight 2, CLP1 weight 1, denominator 2
	return weighted / (2 * t.CellsPerUnit)
}

// Accounting is the algorithmic accounting unit: it observes a cell
// stream and maintains usage records for registered connections.
type Accounting struct {
	tariff  Tariff
	records map[VC]*UsageRecord
	// Unregistered counts cells on connections without an installed
	// record; real hardware raises an exception to the control processor.
	Unregistered uint64
}

// NewAccounting returns an accounting unit with the given tariff.
func NewAccounting(t Tariff) *Accounting {
	return &Accounting{tariff: t, records: make(map[VC]*UsageRecord)}
}

// Register installs a connection to be metered.
func (a *Accounting) Register(vc VC) {
	if _, ok := a.records[vc]; !ok {
		a.records[vc] = &UsageRecord{VC: vc, FirstSeen: -1}
	}
}

// Observe meters one cell at time t. Idle cells are never charged.
func (a *Accounting) Observe(c *Cell, t sim.Time) {
	if c.IsIdle() || c.IsUnassigned() {
		return
	}
	r, ok := a.records[c.VC()]
	if !ok {
		a.Unregistered++
		return
	}
	if r.FirstSeen < 0 {
		r.FirstSeen = t
	}
	r.LastSeen = t
	r.Cells++
	if c.CLP == 1 {
		r.CLP1Cells++
	}
}

// Record returns the usage record for a connection.
func (a *Accounting) Record(vc VC) (UsageRecord, bool) {
	r, ok := a.records[vc]
	if !ok {
		return UsageRecord{}, false
	}
	return *r, true
}

// Units returns the charging units accumulated by a connection.
func (a *Accounting) Units(vc VC) uint64 {
	r, ok := a.records[vc]
	if !ok {
		return 0
	}
	return a.tariff.Units(r.Cells, r.CLP1Cells)
}

// Records returns all usage records sorted by connection for deterministic
// reports.
func (a *Accounting) Records() []UsageRecord {
	out := make([]UsageRecord, 0, len(a.records))
	for _, r := range a.records {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].VC.VPI != out[j].VC.VPI {
			return out[i].VC.VPI < out[j].VC.VPI
		}
		return out[i].VC.VCI < out[j].VC.VCI
	})
	return out
}

// String summarizes the accounting state.
func (a *Accounting) String() string {
	return fmt.Sprintf("accounting{%d connections, %d unregistered cells}",
		len(a.records), a.Unregistered)
}
