// Package atm implements the ATM substrate shared by every layer of the
// co-verification environment: the 53-octet cell with its header fields and
// HEC protection, cell timing for standard link rates, VPI/VCI translation
// and usage-parameter-control policing. The network simulator carries cells
// as abstract structs (the "struct atmdata" of Fig. 4); the abstraction
// interfaces of package mapping serialize them to the bit level.
package atm

import (
	"errors"
	"fmt"

	"castanet/internal/sim"
)

// Cell geometry.
const (
	HeaderBytes  = 5
	PayloadBytes = 48
	CellBytes    = HeaderBytes + PayloadBytes // 53 octets
)

// LinkRateSTM1 is the SDH STM-1 / SONET OC-3 payload rate carrying ATM,
// 155.52 Mbit/s, the rate the paper's 1:400 time-scale discussion assumes.
const LinkRateSTM1 = 155.52e6

// CellTime returns the duration of one cell slot on a link of the given
// bit rate.
func CellTime(bitsPerSecond float64) sim.Duration {
	return sim.FromSeconds(float64(CellBytes*8) / bitsPerSecond)
}

// PTI payload-type indicator values (ITU-T I.361).
const (
	PTIUserData0    = 0 // user data, no congestion, SDU type 0
	PTIUserData1    = 1 // user data, no congestion, SDU type 1
	PTICongestion0  = 2
	PTICongestion1  = 3
	PTISegmentOAM   = 4
	PTIEndToEndOAM  = 5
	PTIResourceMgmt = 6
	PTIReserved     = 7
)

// Header is a UNI cell header: GFC(4) VPI(8) VCI(16) PTI(3) CLP(1), plus
// the HEC octet computed over the first four octets.
type Header struct {
	GFC byte   // generic flow control, 4 bits
	VPI byte   // virtual path identifier, 8 bits at the UNI
	VCI uint16 // virtual channel identifier
	PTI byte   // payload type indicator, 3 bits
	CLP byte   // cell loss priority, 1 bit
}

// Cell is one ATM cell: header plus 48 octets of payload. This is the
// abstract data type exchanged between processes in the network simulator.
type Cell struct {
	Header
	Payload [PayloadBytes]byte

	// Seq is a monotonically increasing stamp assigned by traffic sources;
	// it is carried in the first payload octets by the test-bench encoders
	// so that reference and DUT outputs can be matched cell for cell.
	Seq uint32
}

// VC identifies a virtual connection.
type VC struct {
	VPI byte
	VCI uint16
}

// String formats the connection as "vpi.vci".
func (v VC) String() string { return fmt.Sprintf("%d.%d", v.VPI, v.VCI) }

// VC returns the cell's connection identifier.
func (c *Cell) VC() VC { return VC{VPI: c.VPI, VCI: c.VCI} }

// IsIdle reports whether the cell is an idle cell (ITU-T I.432:
// VPI=0, VCI=0, PTI=0, CLP=1).
func (c *Cell) IsIdle() bool {
	return c.GFC == 0 && c.VPI == 0 && c.VCI == 0 && c.PTI == 0 && c.CLP == 1
}

// IsUnassigned reports whether the cell is unassigned (CLP=0 variant).
func (c *Cell) IsUnassigned() bool {
	return c.GFC == 0 && c.VPI == 0 && c.VCI == 0 && c.PTI == 0 && c.CLP == 0
}

// IdleCell returns a fresh idle cell with the standard 0x6A payload fill.
func IdleCell() *Cell {
	c := &Cell{Header: Header{CLP: 1}}
	for i := range c.Payload {
		c.Payload[i] = 0x6A
	}
	return c
}

// hecTable is the CRC-8 table for polynomial x^8 + x^2 + x + 1 (0x07).
var hecTable [256]byte

func init() {
	for i := 0; i < 256; i++ {
		crc := byte(i)
		for b := 0; b < 8; b++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
		hecTable[i] = crc
	}
}

// HEC computes the header error control octet over the four header octets:
// CRC-8 with generator x^8+x^2+x+1, XORed with the 0x55 coset per
// ITU-T I.432 to improve cell delineation behaviour.
func HEC(h0, h1, h2, h3 byte) byte {
	var crc byte
	for _, b := range [...]byte{h0, h1, h2, h3} {
		crc = hecTable[crc^b]
	}
	return crc ^ 0x55
}

// MarshalHeader packs the header fields plus HEC into 5 octets.
func (h Header) MarshalHeader() [HeaderBytes]byte {
	var b [HeaderBytes]byte
	b[0] = h.GFC<<4 | h.VPI>>4
	b[1] = h.VPI<<4 | byte(h.VCI>>12)
	b[2] = byte(h.VCI >> 4)
	b[3] = byte(h.VCI)<<4 | h.PTI<<1 | h.CLP&1
	b[4] = HEC(b[0], b[1], b[2], b[3])
	return b
}

// ErrHEC is returned when a received header fails its HEC check.
var ErrHEC = errors.New("atm: header error control mismatch")

// UnmarshalHeader unpacks 5 octets into header fields, verifying the HEC.
func UnmarshalHeader(b [HeaderBytes]byte) (Header, error) {
	var h Header
	if HEC(b[0], b[1], b[2], b[3]) != b[4] {
		return h, ErrHEC
	}
	h.GFC = b[0] >> 4
	h.VPI = b[0]<<4 | b[1]>>4
	h.VCI = uint16(b[1]&0x0F)<<12 | uint16(b[2])<<4 | uint16(b[3])>>4
	h.PTI = b[3] >> 1 & 0x07
	h.CLP = b[3] & 1
	return h, nil
}

// Marshal serializes the full 53-octet cell. The Seq stamp is embedded in
// the first four payload octets so it survives the trip through bit-level
// hardware; real payload content starts afterwards in our test benches.
func (c *Cell) Marshal() [CellBytes]byte {
	var out [CellBytes]byte
	hdr := c.MarshalHeader()
	copy(out[:HeaderBytes], hdr[:])
	copy(out[HeaderBytes:], c.Payload[:])
	return out
}

// Unmarshal parses a 53-octet cell, verifying the HEC.
func Unmarshal(b [CellBytes]byte) (*Cell, error) {
	var hdr [HeaderBytes]byte
	copy(hdr[:], b[:HeaderBytes])
	h, err := UnmarshalHeader(hdr)
	if err != nil {
		return nil, err
	}
	c := &Cell{Header: h}
	copy(c.Payload[:], b[HeaderBytes:])
	c.Seq = uint32(c.Payload[0])<<24 | uint32(c.Payload[1])<<16 |
		uint32(c.Payload[2])<<8 | uint32(c.Payload[3])
	return c, nil
}

// StampSeq writes the Seq value into the payload prefix (done by encoders
// before marshalling).
func (c *Cell) StampSeq() {
	c.Payload[0] = byte(c.Seq >> 24)
	c.Payload[1] = byte(c.Seq >> 16)
	c.Payload[2] = byte(c.Seq >> 8)
	c.Payload[3] = byte(c.Seq)
}

// Clone returns a deep copy of the cell.
func (c *Cell) Clone() *Cell {
	d := *c
	return &d
}

// String summarizes the cell for logs and mismatch reports.
func (c *Cell) String() string {
	kind := ""
	if c.IsIdle() {
		kind = " idle"
	}
	return fmt.Sprintf("cell{vc=%s pti=%d clp=%d seq=%d%s}", c.VC(), c.PTI, c.CLP, c.Seq, kind)
}
