package atm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file implements AAL5 (ITU-T I.363.5), the adaptation layer that
// carries variable-length frames over the cell stream. The higher-layer
// software the paper's co-design flow models in C/C++ exchanges frames;
// the hardware moves cells — AAL5 is the boundary between the two views,
// so the verification environment needs both directions: segmentation for
// stimulus generation and reassembly for response checking.

// AAL5 trailer layout (last 8 octets of the final cell's payload):
// CPCS-UU(1) CPI(1) Length(2) CRC-32(4).
const aal5TrailerBytes = 8

// MaxAAL5Payload bounds the CPCS-PDU payload length (the 16-bit length
// field).
const MaxAAL5Payload = 65535

// aal5CRCTable is the CRC-32 table for the AAL5 generator polynomial
// (IEEE 802.3 polynomial, MSB-first/non-reflected form as used by AAL5).
var aal5CRCTable [256]uint32

func init() {
	const poly = 0x04C11DB7
	for i := 0; i < 256; i++ {
		crc := uint32(i) << 24
		for b := 0; b < 8; b++ {
			if crc&0x80000000 != 0 {
				crc = crc<<1 ^ poly
			} else {
				crc <<= 1
			}
		}
		aal5CRCTable[i] = crc
	}
}

// aal5CRC computes the AAL5 CRC-32 over data (initial value all ones,
// final complement, non-reflected).
func aal5CRC(data []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range data {
		crc = crc<<8 ^ aal5CRCTable[byte(crc>>24)^b]
	}
	return ^crc
}

// SegmentAAL5 converts a frame into the cell sequence of one AAL5
// CPCS-PDU on the given connection: payload + padding + 8-octet trailer,
// split into 48-octet cells, the last cell marked with PTI SDU-type 1.
func SegmentAAL5(vc VC, payload []byte) ([]*Cell, error) {
	if len(payload) > MaxAAL5Payload {
		return nil, fmt.Errorf("atm: AAL5 payload of %d bytes exceeds %d", len(payload), MaxAAL5Payload)
	}
	// Total PDU length: payload + pad + trailer, multiple of 48.
	total := len(payload) + aal5TrailerBytes
	if rem := total % PayloadBytes; rem != 0 {
		total += PayloadBytes - rem
	}
	pdu := make([]byte, total)
	copy(pdu, payload)
	// Trailer: UU=0, CPI=0, Length, CRC over the whole PDU with the CRC
	// field zeroed.
	binary.BigEndian.PutUint16(pdu[total-6:], uint16(len(payload)))
	crc := aal5CRC(pdu[:total-4])
	binary.BigEndian.PutUint32(pdu[total-4:], crc)

	nCells := total / PayloadBytes
	cells := make([]*Cell, nCells)
	for i := 0; i < nCells; i++ {
		c := &Cell{Header: Header{VPI: vc.VPI, VCI: vc.VCI, PTI: PTIUserData0}}
		copy(c.Payload[:], pdu[i*PayloadBytes:(i+1)*PayloadBytes])
		if i == nCells-1 {
			c.PTI = PTIUserData1 // end of CPCS-PDU
		}
		cells[i] = c
	}
	return cells, nil
}

// AAL5 reassembly errors.
var (
	ErrAAL5CRC    = errors.New("atm: AAL5 CRC-32 mismatch")
	ErrAAL5Length = errors.New("atm: AAL5 length field inconsistent")
)

// Reassembler rebuilds AAL5 frames from a cell stream, keyed per
// connection. Cells of different VCs may interleave arbitrarily (that is
// the point of AAL5's end-of-PDU bit).
type Reassembler struct {
	// OnFrame receives each completed frame.
	OnFrame func(vc VC, payload []byte)
	// OnError receives reassembly failures (CRC, length).
	OnError func(vc VC, err error)
	// MaxPDU guards against unbounded buffering on a broken stream;
	// zero means MaxAAL5Payload.
	MaxPDU int

	partial map[VC][]byte

	Frames uint64
	Errors uint64
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{partial: make(map[VC][]byte)}
}

// Push processes one cell. Idle/unassigned and OAM cells are ignored.
func (r *Reassembler) Push(c *Cell) {
	if c.IsIdle() || c.IsUnassigned() || c.PTI >= PTISegmentOAM {
		return
	}
	vc := c.VC()
	buf := append(r.partial[vc], c.Payload[:]...)
	limit := r.MaxPDU
	if limit == 0 {
		limit = MaxAAL5Payload
	}
	if c.PTI != PTIUserData1 && c.PTI != PTICongestion1 {
		if len(buf) > limit+aal5TrailerBytes+PayloadBytes {
			// Lost end-of-PDU: drop the oversized partial frame.
			delete(r.partial, vc)
			r.fail(vc, ErrAAL5Length)
			return
		}
		r.partial[vc] = buf
		return
	}
	// End of PDU: validate trailer.
	delete(r.partial, vc)
	if len(buf) < aal5TrailerBytes {
		r.fail(vc, ErrAAL5Length)
		return
	}
	wantCRC := binary.BigEndian.Uint32(buf[len(buf)-4:])
	if aal5CRC(buf[:len(buf)-4]) != wantCRC {
		r.fail(vc, ErrAAL5CRC)
		return
	}
	length := int(binary.BigEndian.Uint16(buf[len(buf)-6 : len(buf)-4]))
	if length > len(buf)-aal5TrailerBytes {
		r.fail(vc, ErrAAL5Length)
		return
	}
	// Padding must fit within the final cell (otherwise a cell was lost).
	if pad := len(buf) - aal5TrailerBytes - length; pad >= PayloadBytes {
		r.fail(vc, ErrAAL5Length)
		return
	}
	r.Frames++
	if r.OnFrame != nil {
		payload := make([]byte, length)
		copy(payload, buf[:length])
		r.OnFrame(vc, payload)
	}
}

func (r *Reassembler) fail(vc VC, err error) {
	r.Errors++
	if r.OnError != nil {
		r.OnError(vc, err)
	}
}

// Pending returns the number of partially reassembled frames.
func (r *Reassembler) Pending() int { return len(r.partial) }
