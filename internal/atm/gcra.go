package atm

import (
	"sort"

	"castanet/internal/sim"
)

// GCRA is the Generic Cell Rate Algorithm (ITU-T I.371 virtual scheduling
// formulation) used for usage parameter control in the ATM traffic
// management functions the paper targets. Increment T is the nominal
// inter-cell interval, limit τ the permitted jitter.
type GCRA struct {
	T   sim.Duration // increment: nominal cell interval
	Tau sim.Duration // limit: cell delay variation tolerance

	tat     sim.Time // theoretical arrival time
	started bool

	Conforming    uint64
	NonConforming uint64
}

// NewGCRA returns a policer for peak cell rate cellsPerSecond with the
// given tolerance.
func NewGCRA(cellsPerSecond float64, tau sim.Duration) *GCRA {
	return &GCRA{T: sim.FromSeconds(1 / cellsPerSecond), Tau: tau}
}

// Arrive processes a cell arriving at time t and reports whether it
// conforms. Non-conforming cells do not update the theoretical arrival
// time (they would be tagged or discarded by UPC hardware).
func (g *GCRA) Arrive(t sim.Time) bool {
	if !g.started {
		g.started = true
		g.tat = t + g.T
		g.Conforming++
		return true
	}
	if t < g.tat-g.Tau {
		g.NonConforming++
		return false
	}
	if t > g.tat {
		g.tat = t
	}
	g.tat += g.T
	g.Conforming++
	return true
}

// LeakyBucket is the continuous-state leaky bucket equivalent of GCRA,
// kept as an independent implementation so the two can be cross-checked in
// tests (dual formulation property of I.371).
type LeakyBucket struct {
	T   sim.Duration
	Tau sim.Duration

	level   sim.Duration // bucket content
	lastT   sim.Time
	started bool
}

// NewLeakyBucket mirrors NewGCRA.
func NewLeakyBucket(cellsPerSecond float64, tau sim.Duration) *LeakyBucket {
	return &LeakyBucket{T: sim.FromSeconds(1 / cellsPerSecond), Tau: tau}
}

// Arrive processes an arrival and reports conformance.
func (b *LeakyBucket) Arrive(t sim.Time) bool {
	if !b.started {
		b.started = true
		b.lastT = t
		b.level = b.T
		return true
	}
	drained := b.level - (t - b.lastT)
	if drained < 0 {
		drained = 0
	}
	if drained > b.Tau {
		// Non-conforming: bucket unchanged apart from drain.
		b.level = drained
		b.lastT = t
		return false
	}
	b.level = drained + b.T
	b.lastT = t
	return true
}

// Translator is a VPI/VCI translation table as maintained by switch
// control software: incoming connection -> (outgoing port, new VPI/VCI).
type Translator struct {
	entries map[VC]Route
}

// Route is a translation result.
type Route struct {
	Port    int
	Out     VC
	Policer *GCRA // optional per-connection UPC
}

// NewTranslator returns an empty table.
func NewTranslator() *Translator { return &Translator{entries: make(map[VC]Route)} }

// Add installs a translation entry.
func (t *Translator) Add(in VC, r Route) { t.entries[in] = r }

// Remove deletes an entry.
func (t *Translator) Remove(in VC) { delete(t.entries, in) }

// Lookup resolves an incoming connection; ok is false for unknown VCs
// (cells on unknown connections are discarded by the hardware).
func (t *Translator) Lookup(in VC) (Route, bool) {
	r, ok := t.entries[in]
	return r, ok
}

// Len returns the number of installed entries.
func (t *Translator) Len() int { return len(t.entries) }

// VCs returns all configured incoming connections sorted by (VPI, VCI).
// The order is deterministic so fault enumerations built from it (see
// faultsim.TableFaults) are pure functions of the table contents.
func (t *Translator) VCs() []VC {
	out := make([]VC, 0, len(t.entries))
	for vc := range t.entries {
		out = append(out, vc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].VPI != out[j].VPI {
			return out[i].VPI < out[j].VPI
		}
		return out[i].VCI < out[j].VCI
	})
	return out
}
