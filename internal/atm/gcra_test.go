package atm

import (
	"testing"
	"testing/quick"

	"castanet/internal/sim"
)

func TestGCRAConformingCBR(t *testing.T) {
	// A perfectly periodic stream at the contracted rate always conforms.
	g := NewGCRA(1e6, 0) // 1 Mcell/s, zero tolerance
	period := sim.Microsecond
	for i := 0; i < 1000; i++ {
		if !g.Arrive(sim.Time(i) * period) {
			t.Fatalf("cell %d of exact-rate stream non-conforming", i)
		}
	}
}

func TestGCRARejectsBurst(t *testing.T) {
	g := NewGCRA(1e6, 0)
	if !g.Arrive(0) {
		t.Fatal("first cell must conform")
	}
	// Back-to-back cell with zero tolerance must fail.
	if g.Arrive(10 * sim.Nanosecond) {
		t.Fatal("burst cell conformed with tau=0")
	}
	if g.NonConforming != 1 || g.Conforming != 1 {
		t.Fatalf("counters = %d/%d", g.Conforming, g.NonConforming)
	}
}

func TestGCRAToleranceAdmitsJitter(t *testing.T) {
	// With tau = T/2, cells jittered by up to half a period conform.
	g := NewGCRA(1e6, 500*sim.Nanosecond)
	times := []sim.Time{0, 600, 2100, 2900, 4000} // ns-ish pattern around 1us spacing
	for i, tt := range times {
		if !g.Arrive(tt * sim.Nanosecond) {
			t.Fatalf("jittered cell %d non-conforming", i)
		}
	}
}

// Property: GCRA (virtual scheduling) and the leaky bucket are the same
// algorithm (I.371 states both formulations are equivalent).
func TestGCRALeakyBucketEquivalence(t *testing.T) {
	f := func(gaps []uint16, tauSel uint8) bool {
		tau := sim.Duration(tauSel) * 100 * sim.Nanosecond
		g := NewGCRA(1e6, tau)
		b := NewLeakyBucket(1e6, tau)
		now := sim.Time(0)
		for _, gap := range gaps {
			now += sim.Duration(gap) * 10 * sim.Nanosecond
			if g.Arrive(now) != b.Arrive(now) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTranslator(t *testing.T) {
	tr := NewTranslator()
	in := VC{VPI: 1, VCI: 100}
	tr.Add(in, Route{Port: 2, Out: VC{VPI: 9, VCI: 900}})
	r, ok := tr.Lookup(in)
	if !ok || r.Port != 2 || r.Out.VCI != 900 {
		t.Fatalf("lookup = %+v, %v", r, ok)
	}
	if _, ok := tr.Lookup(VC{VPI: 5, VCI: 5}); ok {
		t.Fatal("unknown VC resolved")
	}
	tr.Remove(in)
	if tr.Len() != 0 {
		t.Fatal("remove failed")
	}
}
