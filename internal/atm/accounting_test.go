package atm

import (
	"testing"
	"testing/quick"
)

func TestAccountingCountsPerVC(t *testing.T) {
	a := NewAccounting(Tariff{CellsPerUnit: 10})
	vc1 := VC{VPI: 1, VCI: 10}
	vc2 := VC{VPI: 2, VCI: 20}
	a.Register(vc1)
	a.Register(vc2)
	for i := 0; i < 25; i++ {
		a.Observe(&Cell{Header: Header{VPI: 1, VCI: 10}}, 0)
	}
	for i := 0; i < 7; i++ {
		a.Observe(&Cell{Header: Header{VPI: 2, VCI: 20, CLP: 1}}, 0)
	}
	r1, _ := a.Record(vc1)
	if r1.Cells != 25 || r1.CLP1Cells != 0 {
		t.Errorf("vc1 = %+v", r1)
	}
	if u := a.Units(vc1); u != 2 {
		t.Errorf("vc1 units = %d, want 2 (25 cells / 10 per unit)", u)
	}
	r2, _ := a.Record(vc2)
	if r2.Cells != 7 || r2.CLP1Cells != 7 {
		t.Errorf("vc2 = %+v", r2)
	}
	// 7 CLP1 cells weigh as 3.5 cells -> 0 units at 10 cells/unit.
	if u := a.Units(vc2); u != 0 {
		t.Errorf("vc2 units = %d, want 0", u)
	}
}

func TestAccountingIgnoresIdle(t *testing.T) {
	a := NewAccounting(Tariff{CellsPerUnit: 1})
	a.Register(VC{})
	a.Observe(IdleCell(), 0)
	a.Observe(&Cell{}, 0) // unassigned
	if r, _ := a.Record(VC{}); r.Cells != 0 {
		t.Errorf("idle/unassigned cells were charged: %+v", r)
	}
	if a.Unregistered != 0 {
		t.Error("idle cell counted as unregistered")
	}
}

func TestAccountingUnregistered(t *testing.T) {
	a := NewAccounting(Tariff{CellsPerUnit: 1})
	a.Observe(&Cell{Header: Header{VPI: 3, VCI: 33}}, 0)
	if a.Unregistered != 1 {
		t.Errorf("Unregistered = %d", a.Unregistered)
	}
}

func TestTariffWeighting(t *testing.T) {
	tf := Tariff{CellsPerUnit: 100}
	// 200 CLP0 cells = 2 units; 200 CLP1 cells = 1 unit.
	if u := tf.Units(200, 0); u != 2 {
		t.Errorf("CLP0 units = %d", u)
	}
	if u := tf.Units(200, 200); u != 1 {
		t.Errorf("CLP1 units = %d", u)
	}
	// Zero-division guard.
	if u := (Tariff{}).Units(1000, 0); u != 0 {
		t.Errorf("zero tariff units = %d", u)
	}
}

// Property: units are monotone in cell count and never exceed
// cells/CellsPerUnit.
func TestTariffMonotone(t *testing.T) {
	f := func(cells, clp1 uint16, per uint8) bool {
		if per == 0 {
			return true
		}
		tf := Tariff{CellsPerUnit: uint64(per)}
		c := uint64(cells)
		l := uint64(clp1)
		if l > c {
			l = c
		}
		u := tf.Units(c, l)
		if u > c/uint64(per) {
			return false
		}
		return tf.Units(c+1, l) >= u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecordsSorted(t *testing.T) {
	a := NewAccounting(Tariff{CellsPerUnit: 1})
	a.Register(VC{VPI: 2, VCI: 1})
	a.Register(VC{VPI: 1, VCI: 9})
	a.Register(VC{VPI: 1, VCI: 2})
	rs := a.Records()
	if len(rs) != 3 {
		t.Fatalf("len = %d", len(rs))
	}
	if rs[0].VC != (VC{VPI: 1, VCI: 2}) || rs[2].VC != (VC{VPI: 2, VCI: 1}) {
		t.Errorf("order = %v %v %v", rs[0].VC, rs[1].VC, rs[2].VC)
	}
}
