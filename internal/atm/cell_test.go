package atm

import (
	"testing"
	"testing/quick"

	"castanet/internal/sim"
)

func TestHECKnownVector(t *testing.T) {
	// All-zero header: CRC8(0,0,0,0) = 0, coset gives 0x55 — the idle-cell
	// HEC pattern used for cell delineation on an idle line... except the
	// idle cell has CLP=1. Check the raw function.
	if got := HEC(0, 0, 0, 0); got != 0x55 {
		t.Errorf("HEC(0,0,0,0) = %#x, want 0x55", got)
	}
}

func TestHECDetectsSingleBitErrors(t *testing.T) {
	h := Header{VPI: 42, VCI: 1234, PTI: 1, CLP: 0}
	b := h.MarshalHeader()
	// Flip every single bit of the 4 header octets: HEC must mismatch.
	for byteIdx := 0; byteIdx < 4; byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			corrupted := b
			corrupted[byteIdx] ^= 1 << uint(bit)
			if _, err := UnmarshalHeader(corrupted); err == nil {
				t.Errorf("single-bit error at [%d].%d not detected", byteIdx, bit)
			}
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	f := func(gfc, vpi byte, vci uint16, pti, clp byte) bool {
		h := Header{GFC: gfc & 0x0F, VPI: vpi, VCI: vci, PTI: pti & 0x07, CLP: clp & 1}
		got, err := UnmarshalHeader(h.MarshalHeader())
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCellMarshalRoundTrip(t *testing.T) {
	c := &Cell{Header: Header{VPI: 7, VCI: 99, PTI: PTIUserData0}, Seq: 0xDEADBEEF}
	for i := range c.Payload {
		c.Payload[i] = byte(i)
	}
	c.StampSeq()
	got, err := Unmarshal(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != c.Header {
		t.Errorf("header = %+v, want %+v", got.Header, c.Header)
	}
	if got.Seq != 0xDEADBEEF {
		t.Errorf("seq = %#x", got.Seq)
	}
	if got.Payload != c.Payload {
		t.Error("payload mismatch")
	}
}

func TestIdleCell(t *testing.T) {
	c := IdleCell()
	if !c.IsIdle() {
		t.Fatal("IdleCell not idle")
	}
	if c.IsUnassigned() {
		t.Fatal("idle cell reported unassigned")
	}
	if c.Payload[0] != 0x6A {
		t.Errorf("idle payload fill = %#x, want 0x6A", c.Payload[0])
	}
	u := &Cell{}
	if !u.IsUnassigned() || u.IsIdle() {
		t.Error("zero cell must be unassigned, not idle")
	}
}

func TestCellTime(t *testing.T) {
	ct := CellTime(LinkRateSTM1)
	// 53*8/155.52e6 = 2.726 us.
	if ct < 2726*sim.Nanosecond || ct > 2727*sim.Nanosecond {
		t.Errorf("STM-1 cell time = %v, want ~2.726us", ct)
	}
}

func TestVCString(t *testing.T) {
	if s := (VC{VPI: 3, VCI: 77}).String(); s != "3.77" {
		t.Errorf("VC string = %q", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	c := &Cell{Header: Header{VPI: 1}}
	d := c.Clone()
	d.VPI = 2
	d.Payload[0] = 0xFF
	if c.VPI != 1 || c.Payload[0] != 0 {
		t.Error("Clone aliases original")
	}
}

func BenchmarkHEC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		HEC(byte(i), byte(i>>8), byte(i>>16), byte(i>>24))
	}
}

func BenchmarkCellMarshal(b *testing.B) {
	c := &Cell{Header: Header{VPI: 1, VCI: 100}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		img := c.Marshal()
		if _, err := Unmarshal(img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGCRA(b *testing.B) {
	g := NewGCRA(1e6, 500*sim.Nanosecond)
	for i := 0; i < b.N; i++ {
		g.Arrive(sim.Time(i) * 900 * sim.Nanosecond)
	}
}
