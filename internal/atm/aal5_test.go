package atm

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAAL5RoundTrip(t *testing.T) {
	vc := VC{VPI: 1, VCI: 42}
	payload := []byte("the quick brown fox jumps over the lazy dog, repeatedly and at length")
	cells, err := SegmentAAL5(vc, payload)
	if err != nil {
		t.Fatal(err)
	}
	// 70 bytes + 8 trailer = 78 -> 2 cells.
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
	if cells[0].PTI != PTIUserData0 || cells[1].PTI != PTIUserData1 {
		t.Errorf("PTI sequence = %d,%d", cells[0].PTI, cells[1].PTI)
	}
	r := NewReassembler()
	var got []byte
	r.OnFrame = func(v VC, p []byte) {
		if v != vc {
			t.Errorf("frame on %v", v)
		}
		got = p
	}
	for _, c := range cells {
		r.Push(c)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("reassembled %q", got)
	}
	if r.Frames != 1 || r.Errors != 0 || r.Pending() != 0 {
		t.Errorf("state: frames=%d errors=%d pending=%d", r.Frames, r.Errors, r.Pending())
	}
}

// Property: any payload survives segmentation + reassembly.
func TestAAL5RoundTripProperty(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		cells, err := SegmentAAL5(VC{VPI: 3, VCI: 33}, payload)
		if err != nil {
			return false
		}
		r := NewReassembler()
		var got []byte
		ok := false
		r.OnFrame = func(v VC, p []byte) { got = p; ok = true }
		for _, c := range cells {
			r.Push(c)
		}
		return ok && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAAL5EmptyFrame(t *testing.T) {
	cells, err := SegmentAAL5(VC{VPI: 1, VCI: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("empty frame cells = %d, want 1 (trailer only)", len(cells))
	}
	r := NewReassembler()
	frames := 0
	r.OnFrame = func(v VC, p []byte) {
		frames++
		if len(p) != 0 {
			t.Errorf("payload = %d bytes", len(p))
		}
	}
	r.Push(cells[0])
	if frames != 1 {
		t.Fatal("empty frame not delivered")
	}
}

func TestAAL5ExactMultiple(t *testing.T) {
	// 40 bytes payload + 8 trailer = 48: exactly one cell, zero padding.
	payload := bytes.Repeat([]byte{0xAB}, 40)
	cells, err := SegmentAAL5(VC{VPI: 1, VCI: 1}, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(cells))
	}
	// 41 bytes: trailer no longer fits the first cell.
	payload = append(payload, 0xCD)
	cells, _ = SegmentAAL5(VC{VPI: 1, VCI: 1}, payload)
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
}

func TestAAL5InterleavedVCs(t *testing.T) {
	a, _ := SegmentAAL5(VC{VPI: 1, VCI: 1}, bytes.Repeat([]byte{1}, 100))
	b, _ := SegmentAAL5(VC{VPI: 2, VCI: 2}, bytes.Repeat([]byte{2}, 100))
	r := NewReassembler()
	got := map[VC][]byte{}
	r.OnFrame = func(v VC, p []byte) { got[v] = p }
	// Interleave cell by cell.
	for i := 0; i < len(a) || i < len(b); i++ {
		if i < len(a) {
			r.Push(a[i])
		}
		if i < len(b) {
			r.Push(b[i])
		}
	}
	if len(got) != 2 {
		t.Fatalf("frames = %d", len(got))
	}
	if got[VC{VPI: 1, VCI: 1}][0] != 1 || got[VC{VPI: 2, VCI: 2}][0] != 2 {
		t.Error("frames crossed connections")
	}
}

func TestAAL5DetectsCorruption(t *testing.T) {
	cells, _ := SegmentAAL5(VC{VPI: 1, VCI: 1}, bytes.Repeat([]byte{7}, 100))
	cells[0].Payload[10] ^= 0x01
	r := NewReassembler()
	var gotErr error
	r.OnError = func(v VC, err error) { gotErr = err }
	for _, c := range cells {
		r.Push(c)
	}
	if gotErr != ErrAAL5CRC {
		t.Fatalf("err = %v, want CRC mismatch", gotErr)
	}
	if r.Frames != 0 || r.Errors != 1 {
		t.Errorf("frames=%d errors=%d", r.Frames, r.Errors)
	}
}

func TestAAL5DetectsLostLastCell(t *testing.T) {
	// Losing the end-of-PDU cell merges two PDUs; the CRC of the merged
	// buffer fails.
	first, _ := SegmentAAL5(VC{VPI: 1, VCI: 1}, bytes.Repeat([]byte{1}, 100))
	second, _ := SegmentAAL5(VC{VPI: 1, VCI: 1}, bytes.Repeat([]byte{2}, 100))
	r := NewReassembler()
	frames, errs := 0, 0
	r.OnFrame = func(v VC, p []byte) { frames++ }
	r.OnError = func(v VC, err error) { errs++ }
	for _, c := range first[:len(first)-1] { // drop last cell
		r.Push(c)
	}
	for _, c := range second {
		r.Push(c)
	}
	if frames != 0 || errs != 1 {
		t.Errorf("frames=%d errs=%d, want 0/1", frames, errs)
	}
}

func TestAAL5DetectsLostMiddleCell(t *testing.T) {
	payload := bytes.Repeat([]byte{9}, 300)
	cells, _ := SegmentAAL5(VC{VPI: 1, VCI: 1}, payload)
	r := NewReassembler()
	errs := 0
	frames := 0
	r.OnError = func(v VC, err error) { errs++ }
	r.OnFrame = func(v VC, p []byte) { frames++ }
	for i, c := range cells {
		if i == 2 {
			continue // lose one middle cell
		}
		r.Push(c)
	}
	if frames != 0 || errs != 1 {
		t.Errorf("frames=%d errs=%d after cell loss", frames, errs)
	}
}

func TestAAL5TooLarge(t *testing.T) {
	if _, err := SegmentAAL5(VC{}, make([]byte, MaxAAL5Payload+1)); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestAAL5IgnoresOAM(t *testing.T) {
	r := NewReassembler()
	r.Push(&Cell{Header: Header{VPI: 1, VCI: 1, PTI: PTIEndToEndOAM}})
	r.Push(IdleCell())
	if r.Pending() != 0 || r.Errors != 0 {
		t.Error("OAM/idle cells disturbed reassembly")
	}
}

func TestAAL5KnownCRC(t *testing.T) {
	// Cross-check the CRC-32 implementation against a published AAL5
	// property: CRC of data followed by its own CRC (complemented
	// residue) is constant. Simpler invariant: two different inputs give
	// different CRCs and the function is deterministic.
	a := aal5CRC([]byte("123456789"))
	b := aal5CRC([]byte("123456789"))
	c := aal5CRC([]byte("123456780"))
	if a != b {
		t.Error("CRC not deterministic")
	}
	if a == c {
		t.Error("CRC collision on trivial change")
	}
	// Known-answer test: CRC-32/MPEG-2 style (same table, init all ones,
	// no reflection) of "123456789" is 0x0376E6E7; AAL5 additionally
	// complements the result.
	if got := a ^ 0xFFFFFFFF; got != 0x0376E6E7 {
		t.Errorf("CRC kernel = %#08x, want 0x0376E6E7 (complemented)", got)
	}
}
