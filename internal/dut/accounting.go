package dut

import (
	"fmt"

	"castanet/internal/atm"
	"castanet/internal/hdl"
	"castanet/internal/mapping"
)

// AccountingUnit is the hardware device of the paper's case study: an ATM
// accounting (charging) unit that snoops a cell stream and maintains
// per-connection usage counters in an on-chip table, raising an exception
// strobe for cells on unregistered connections.
//
// The cell interface is the bit-level Fig.-4 structure; the counter table
// is exposed through a small synchronous read port (addr in, data out two
// cycles later), modeling the microprocessor interface real accounting
// hardware exposes to the billing software.
type AccountingUnit struct {
	HDL *hdl.Simulator

	// Cell input (snooped line).
	In CellPort

	// Exception strobe: one cycle high per cell on an unregistered VC.
	Exception *hdl.Signal

	// Read port: assert RdEn with RdAddr for one cycle; RdData is valid
	// two cycles later (registered table, registered output).
	RdAddr *hdl.Signal // table index, 8-bit
	RdEn   *hdl.Signal
	RdData *hdl.Signal // 32-bit counter value
	// RdSel selects which counter of the entry to read: 0 = total cells,
	// 1 = CLP1 cells.
	RdSel *hdl.Signal

	exceptionDrv *hdl.Driver
	rdDataDrv    *hdl.Driver

	// Table: index -> VC binding, loaded by control software before the
	// run (the modeled CAM).
	slots map[atm.VC]int
	nSlot int
	cap   int

	cells [256]uint32 // total cell counters
	clp1  [256]uint32 // CLP=1 cell counters

	// Pipeline for the two-cycle read.
	rdStage1Valid bool
	rdStage1Val   uint32

	// pendingExc requests a one-cycle exception pulse.
	pendingExc bool

	// Unregistered counts exception events (also visible as a register).
	Unregistered uint64
	// Observed counts metered (registered, non-idle) cells.
	Observed uint64
}

// NewAccountingUnit elaborates the unit. capacity is the number of table
// slots (max 256).
func NewAccountingUnit(h *hdl.Simulator, clk *hdl.Signal, capacity int) *AccountingUnit {
	if capacity <= 0 || capacity > 256 {
		panic(fmt.Sprintf("dut: accounting table capacity %d out of range", capacity))
	}
	u := &AccountingUnit{
		HDL:   h,
		cap:   capacity,
		slots: make(map[atm.VC]int),
	}
	u.In = CellPort{
		Data: h.Signal("acct_rx_data", 8, hdl.U),
		Sync: h.Bit("acct_rx_sync", hdl.U),
	}
	u.Exception = h.Bit("acct_exception", hdl.U)
	u.exceptionDrv = u.Exception.Driver("acct")
	u.exceptionDrv.SetBit(hdl.L0)
	u.RdAddr = h.Signal("acct_rd_addr", 8, hdl.U)
	u.RdEn = h.Bit("acct_rd_en", hdl.U)
	u.RdSel = h.Bit("acct_rd_sel", hdl.U)
	u.RdData = h.Signal("acct_rd_data", 32, hdl.U)
	u.rdDataDrv = u.RdData.Driver("acct")
	u.rdDataDrv.SetUint(0)

	rd := mapping.NewCellPortReader(h, "acct_rx", clk, u.In.Data, u.In.Sync)
	rd.OnCell = func(c *atm.Cell) { u.meter(c) }

	// Exception strobe: exactly one clock cycle high per offending cell,
	// even when offending cells arrive back to back. The process runs
	// after the reader (registration order), so the pulse rises in the
	// same cycle the cell completes.
	h.Process("acct_exc", func() {
		if !clk.Rising() {
			return
		}
		if u.pendingExc {
			u.pendingExc = false
			u.exceptionDrv.SetBit(hdl.L1)
		} else {
			u.exceptionDrv.SetBit(hdl.L0)
		}
	}, clk)

	// Read-port pipeline.
	h.Process("acct_rd", func() {
		if !clk.Rising() {
			return
		}
		if u.rdStage1Valid {
			u.rdDataDrv.SetUint(uint64(u.rdStage1Val))
			u.rdStage1Valid = false
		}
		if u.RdEn.Bit().IsHigh() {
			addr, ok := u.RdAddr.Uint()
			if !ok || int(addr) >= u.cap {
				return
			}
			sel := u.RdSel.Bit().IsHigh()
			if sel {
				u.rdStage1Val = u.clp1[addr]
			} else {
				u.rdStage1Val = u.cells[addr]
			}
			u.rdStage1Valid = true
		}
	}, clk)
	return u
}

// Register binds a VC to the next free table slot and returns its index.
// It models the control processor writing the CAM before traffic starts.
func (u *AccountingUnit) Register(vc atm.VC) (int, error) {
	if idx, dup := u.slots[vc]; dup {
		return idx, nil
	}
	if u.nSlot >= u.cap {
		return 0, fmt.Errorf("dut: accounting table full (%d slots)", u.cap)
	}
	idx := u.nSlot
	u.nSlot++
	u.slots[vc] = idx
	return idx, nil
}

// Slot returns the table index bound to vc.
func (u *AccountingUnit) Slot(vc atm.VC) (int, bool) {
	i, ok := u.slots[vc]
	return i, ok
}

func (u *AccountingUnit) meter(c *atm.Cell) {
	if c.IsIdle() || c.IsUnassigned() {
		return
	}
	idx, ok := u.slots[c.VC()]
	if !ok {
		u.Unregistered++
		u.pendingExc = true
		return
	}
	u.Observed++
	u.cells[idx]++
	if c.CLP == 1 {
		u.clp1[idx]++
	}
}

// Counter reads a counter directly (diagnostic backdoor used by tests to
// cross-check the signal-level read port).
func (u *AccountingUnit) Counter(idx int, clp1 bool) uint32 {
	if clp1 {
		return u.clp1[idx]
	}
	return u.cells[idx]
}
