package dut

import (
	"fmt"

	"castanet/internal/atm"
	"castanet/internal/hdl"
	"castanet/internal/mapping"
	"castanet/internal/sim"
)

// PolicerAction selects what UPC hardware does with a non-conforming
// cell.
type PolicerAction int

// Policing actions per ITU-T I.371.
const (
	// PolicerDiscard drops violating cells.
	PolicerDiscard PolicerAction = iota
	// PolicerTag demotes violating cells to CLP=1 (and discards violating
	// cells that are already CLP=1).
	PolicerTag
)

// Policer is a usage-parameter-control unit: hardware GCRA per
// connection, the core traffic-management function the paper names as
// CASTANET's application domain. Cells stream in on the Fig.-4 bit-level
// port; conforming cells stream out unchanged, violators are discarded or
// tagged. Time is the device's own cycle counter, exactly as UPC silicon
// measures arrival times.
type Policer struct {
	HDL *hdl.Simulator

	In  CellPort
	Out CellPort

	Action PolicerAction

	// Violation strobes one clock per non-conforming cell.
	Violation *hdl.Signal

	writer       *mapping.CellPortWriter
	violationDrv *hdl.Driver
	pendingViol  bool

	cycle uint64 // free-running cycle counter (the hardware time base)

	slots map[atm.VC]*policerSlot
	cap   int

	// OnPolice observes every policed arrival with the hardware cycle
	// count (diagnostic).
	OnPolice func(c *atm.Cell, cycle uint64)

	// Counters (diagnostic registers).
	Conforming    uint64
	NonConforming uint64
	Tagged        uint64
	Discarded     uint64
	Passed        uint64 // unregistered connections pass unpoliced
}

// policerSlot is the per-connection GCRA state: increment and limit in
// clock cycles, theoretical arrival time as an absolute cycle number.
type policerSlot struct {
	incr    uint64
	limit   uint64
	tat     uint64
	started bool
}

// NewPolicer elaborates the policing unit with the given connection table
// capacity.
func NewPolicer(h *hdl.Simulator, clk *hdl.Signal, capacity int) *Policer {
	if capacity <= 0 {
		panic("dut: policer capacity must be positive")
	}
	p := &Policer{HDL: h, cap: capacity, slots: make(map[atm.VC]*policerSlot)}
	p.In = CellPort{
		Data: h.Signal("upc_rx_data", 8, hdl.U),
		Sync: h.Bit("upc_rx_sync", hdl.U),
	}
	p.Out = CellPort{
		Data: h.Signal("upc_tx_data", 8, hdl.U),
		Sync: h.Bit("upc_tx_sync", hdl.U),
	}
	p.Violation = h.Bit("upc_violation", hdl.U)
	p.violationDrv = p.Violation.Driver("upc")
	p.violationDrv.SetBit(hdl.L0)

	rd := mapping.NewCellPortReader(h, "upc_rx", clk, p.In.Data, p.In.Sync)
	rd.OnCell = func(c *atm.Cell) { p.police(c) }

	p.writer = mapping.NewCellPortWriter(h, "upc_tx", clk, p.Out.Data, p.Out.Sync)

	// Cycle counter plus the one-clock violation strobe.
	h.Process("upc_time", func() {
		if !clk.Rising() {
			return
		}
		p.cycle++
		if p.pendingViol {
			p.pendingViol = false
			p.violationDrv.SetBit(hdl.L1)
		} else {
			p.violationDrv.SetBit(hdl.L0)
		}
	}, clk)
	return p
}

// Contract installs a policing contract: peak cell interval and cell
// delay variation tolerance, both in clock cycles (the hardware time
// base). It models control software writing the UPC parameter table.
func (p *Policer) Contract(vc atm.VC, incrCycles, limitCycles uint64) error {
	if incrCycles == 0 {
		return fmt.Errorf("dut: policer increment must be positive")
	}
	if _, dup := p.slots[vc]; dup {
		return fmt.Errorf("dut: contract for %v already installed", vc)
	}
	if len(p.slots) >= p.cap {
		return fmt.Errorf("dut: policer table full (%d)", p.cap)
	}
	p.slots[vc] = &policerSlot{incr: incrCycles, limit: limitCycles}
	return nil
}

// ContractFor converts time-domain parameters to cycles and installs the
// contract.
func (p *Policer) ContractFor(vc atm.VC, peakInterval, tau, clockPeriod sim.Duration) error {
	return p.Contract(vc, uint64(peakInterval/clockPeriod), uint64(tau/clockPeriod))
}

// police implements the virtual scheduling algorithm on the cycle
// counter.
func (p *Policer) police(c *atm.Cell) {
	if c.IsIdle() || c.IsUnassigned() {
		return
	}
	if p.OnPolice != nil {
		p.OnPolice(c, p.cycle)
	}
	slot, ok := p.slots[c.VC()]
	if !ok {
		p.Passed++
		p.writer.Enqueue(c)
		return
	}
	now := p.cycle
	conforms := false
	switch {
	case !slot.started:
		slot.started = true
		slot.tat = now + slot.incr
		conforms = true
	case now+slot.limit >= slot.tat:
		if now > slot.tat {
			slot.tat = now
		}
		slot.tat += slot.incr
		conforms = true
	}
	if conforms {
		p.Conforming++
		p.writer.Enqueue(c)
		return
	}
	p.NonConforming++
	p.pendingViol = true
	switch p.Action {
	case PolicerTag:
		if c.CLP == 1 {
			p.Discarded++
			return
		}
		tagged := c.Clone()
		tagged.CLP = 1
		p.Tagged++
		p.writer.Enqueue(tagged)
	default:
		p.Discarded++
	}
}
