package dut

import (
	"testing"

	"castanet/internal/atm"
	"castanet/internal/hdl"
	"castanet/internal/mapping"
	"castanet/internal/sim"
)

type acctRig struct {
	h   *hdl.Simulator
	u   *AccountingUnit
	w   *mapping.CellPortWriter
	clk *hdl.Signal
}

func newAcctRig(capacity int) *acctRig {
	h := hdl.New()
	clk := h.Bit("clk", hdl.U)
	h.Clock(clk, clkPeriod)
	u := NewAccountingUnit(h, clk, capacity)
	w := mapping.NewCellPortWriter(h, "tb_tx", clk, u.In.Data, u.In.Sync)
	return &acctRig{h: h, u: u, w: w, clk: clk}
}

func (r *acctRig) run(t *testing.T, d sim.Duration) {
	t.Helper()
	if err := r.h.Run(r.h.Now() + d); err != nil {
		t.Fatal(err)
	}
}

func TestAccountingUnitCounts(t *testing.T) {
	rig := newAcctRig(16)
	vcA := atm.VC{VPI: 1, VCI: 10}
	vcB := atm.VC{VPI: 2, VCI: 20}
	slotA, err := rig.u.Register(vcA)
	if err != nil {
		t.Fatal(err)
	}
	slotB, _ := rig.u.Register(vcB)
	for i := 0; i < 5; i++ {
		rig.w.Enqueue(&atm.Cell{Header: atm.Header{VPI: 1, VCI: 10}})
	}
	for i := 0; i < 3; i++ {
		rig.w.Enqueue(&atm.Cell{Header: atm.Header{VPI: 2, VCI: 20, CLP: 1}})
	}
	rig.run(t, 9*60*clkPeriod)
	if got := rig.u.Counter(slotA, false); got != 5 {
		t.Errorf("vcA cells = %d, want 5", got)
	}
	if got := rig.u.Counter(slotA, true); got != 0 {
		t.Errorf("vcA clp1 = %d, want 0", got)
	}
	if got := rig.u.Counter(slotB, false); got != 3 {
		t.Errorf("vcB cells = %d, want 3", got)
	}
	if got := rig.u.Counter(slotB, true); got != 3 {
		t.Errorf("vcB clp1 = %d, want 3", got)
	}
	if rig.u.Unregistered != 0 {
		t.Errorf("unregistered = %d", rig.u.Unregistered)
	}
}

func TestAccountingUnitException(t *testing.T) {
	rig := newAcctRig(4)
	rig.u.Register(atm.VC{VPI: 1, VCI: 10})
	exceptions := 0
	rig.u.Exception.OnChange(func(now sim.Time, old, new hdl.LV) {
		if new[0].IsHigh() {
			exceptions++
		}
	})
	rig.w.Enqueue(&atm.Cell{Header: atm.Header{VPI: 7, VCI: 77}}) // unregistered
	rig.w.Enqueue(&atm.Cell{Header: atm.Header{VPI: 1, VCI: 10}}) // registered
	rig.run(t, 3*60*clkPeriod)
	if rig.u.Unregistered != 1 {
		t.Errorf("Unregistered = %d", rig.u.Unregistered)
	}
	if exceptions != 1 {
		t.Errorf("exception strobes = %d, want 1", exceptions)
	}
	if rig.u.Observed != 1 {
		t.Errorf("Observed = %d", rig.u.Observed)
	}
}

func TestAccountingUnitIgnoresIdle(t *testing.T) {
	rig := newAcctRig(4)
	rig.u.Register(atm.VC{VPI: 1, VCI: 10})
	rig.w.InsertIdle = true
	rig.w.Enqueue(&atm.Cell{Header: atm.Header{VPI: 1, VCI: 10}})
	rig.run(t, 10*60*clkPeriod)
	if rig.u.Observed != 1 {
		t.Errorf("Observed = %d (idle cells metered?)", rig.u.Observed)
	}
	if rig.u.Unregistered != 0 {
		t.Errorf("idle cells raised exceptions: %d", rig.u.Unregistered)
	}
}

func TestAccountingReadPort(t *testing.T) {
	rig := newAcctRig(8)
	vc := atm.VC{VPI: 3, VCI: 30}
	slot, _ := rig.u.Register(vc)
	for i := 0; i < 7; i++ {
		rig.w.Enqueue(&atm.Cell{Header: atm.Header{VPI: 3, VCI: 30}})
	}
	rig.run(t, 8*60*clkPeriod)

	// Drive the read port: addr+en for one cycle, sample RdData two
	// cycles later.
	addrDrv := rig.u.RdAddr.Driver("tb")
	enDrv := rig.u.RdEn.Driver("tb")
	selDrv := rig.u.RdSel.Driver("tb")
	addrDrv.SetUint(uint64(slot))
	selDrv.SetBit(hdl.L0)
	enDrv.SetBit(hdl.L1)
	rig.run(t, clkPeriod)
	enDrv.SetBit(hdl.L0)
	rig.run(t, 3*clkPeriod)
	got, ok := rig.u.RdData.Uint()
	if !ok {
		t.Fatalf("RdData undefined: %v", rig.u.RdData.Val())
	}
	if got != 7 {
		t.Errorf("read port returned %d, want 7", got)
	}
}

func TestAccountingTableFull(t *testing.T) {
	rig := newAcctRig(2)
	if _, err := rig.u.Register(atm.VC{VPI: 1, VCI: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.u.Register(atm.VC{VPI: 1, VCI: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.u.Register(atm.VC{VPI: 1, VCI: 3}); err == nil {
		t.Error("over-capacity registration accepted")
	}
	// Re-registering an existing VC is idempotent, not a new slot.
	idx, err := rig.u.Register(atm.VC{VPI: 1, VCI: 1})
	if err != nil || idx != 0 {
		t.Errorf("re-register = %d, %v", idx, err)
	}
}
