package dut

import (
	"testing"

	"castanet/internal/atm"
	"castanet/internal/hdl"
	"castanet/internal/mapping"
	"castanet/internal/sim"
)

type policerRig struct {
	h   *hdl.Simulator
	u   *Policer
	w   *mapping.CellPortWriter
	out []*atm.Cell
}

func newPolicerRig(action PolicerAction) *policerRig {
	h := hdl.New()
	clk := h.Bit("clk", hdl.U)
	h.Clock(clk, clkPeriod)
	u := NewPolicer(h, clk, 16)
	u.Action = action
	w := mapping.NewCellPortWriter(h, "tb_tx", clk, u.In.Data, u.In.Sync)
	rig := &policerRig{h: h, u: u, w: w}
	rd := mapping.NewCellPortReader(h, "tb_rx", clk, u.Out.Data, u.Out.Sync)
	rd.OnCell = func(c *atm.Cell) { rig.out = append(rig.out, c) }
	return rig
}

// sendAt schedules a cell for transmission starting at the given cycle.
func (r *policerRig) sendAt(t *testing.T, cycle int, c *atm.Cell) {
	t.Helper()
	c.StampSeq()
	r.h.Schedule(sim.Duration(cycle)*clkPeriod, func() { r.w.Enqueue(c) })
}

func (r *policerRig) run(t *testing.T, cycles int) {
	t.Helper()
	if err := r.h.Run(sim.Duration(cycles) * clkPeriod); err != nil {
		t.Fatal(err)
	}
}

func TestPolicerConformingStreamPasses(t *testing.T) {
	rig := newPolicerRig(PolicerDiscard)
	vc := atm.VC{VPI: 1, VCI: 10}
	// Contract: one cell per 100 cycles, no tolerance.
	if err := rig.u.Contract(vc, 100, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		rig.sendAt(t, i*120, &atm.Cell{Header: atm.Header{VPI: 1, VCI: 10}, Seq: uint32(i)})
	}
	rig.run(t, 5*120+200)
	if len(rig.out) != 5 {
		t.Fatalf("passed %d cells, want 5", len(rig.out))
	}
	if rig.u.Conforming != 5 || rig.u.NonConforming != 0 {
		t.Errorf("counters: %d/%d", rig.u.Conforming, rig.u.NonConforming)
	}
}

func TestPolicerDiscardsBurst(t *testing.T) {
	rig := newPolicerRig(PolicerDiscard)
	vc := atm.VC{VPI: 1, VCI: 10}
	if err := rig.u.Contract(vc, 200, 0); err != nil {
		t.Fatal(err)
	}
	// Cells at 60-cycle spacing against a 200-cycle contract: roughly two
	// of every three violate.
	for i := 0; i < 6; i++ {
		rig.sendAt(t, i*60, &atm.Cell{Header: atm.Header{VPI: 1, VCI: 10}, Seq: uint32(i)})
	}
	rig.run(t, 6*60+400)
	if rig.u.NonConforming == 0 {
		t.Fatal("burst not policed")
	}
	if rig.u.Discarded != rig.u.NonConforming {
		t.Errorf("discarded %d != nonconforming %d", rig.u.Discarded, rig.u.NonConforming)
	}
	if uint64(len(rig.out)) != rig.u.Conforming {
		t.Errorf("out %d != conforming %d", len(rig.out), rig.u.Conforming)
	}
}

func TestPolicerTagging(t *testing.T) {
	rig := newPolicerRig(PolicerTag)
	vc := atm.VC{VPI: 2, VCI: 20}
	if err := rig.u.Contract(vc, 300, 0); err != nil {
		t.Fatal(err)
	}
	// Back-to-back pair: second violates and must emerge with CLP=1.
	rig.sendAt(t, 0, &atm.Cell{Header: atm.Header{VPI: 2, VCI: 20}, Seq: 0})
	rig.sendAt(t, 60, &atm.Cell{Header: atm.Header{VPI: 2, VCI: 20}, Seq: 1})
	rig.run(t, 600)
	if len(rig.out) != 2 {
		t.Fatalf("out = %d cells, want 2 (tagging passes violators)", len(rig.out))
	}
	if rig.out[0].CLP != 0 {
		t.Errorf("first cell tagged: clp=%d", rig.out[0].CLP)
	}
	if rig.out[1].CLP != 1 {
		t.Errorf("violator not tagged: clp=%d", rig.out[1].CLP)
	}
	// The tagged cell's HEC must have been recomputed (the test-bench
	// reader verified it, or the cell would have been dropped).
	if rig.u.Tagged != 1 {
		t.Errorf("Tagged = %d", rig.u.Tagged)
	}
}

func TestPolicerTagDropsCLP1Violators(t *testing.T) {
	rig := newPolicerRig(PolicerTag)
	vc := atm.VC{VPI: 2, VCI: 20}
	if err := rig.u.Contract(vc, 300, 0); err != nil {
		t.Fatal(err)
	}
	rig.sendAt(t, 0, &atm.Cell{Header: atm.Header{VPI: 2, VCI: 20}, Seq: 0})
	rig.sendAt(t, 60, &atm.Cell{Header: atm.Header{VPI: 2, VCI: 20, CLP: 1}, Seq: 1})
	rig.run(t, 600)
	if len(rig.out) != 1 {
		t.Fatalf("out = %d cells, want 1 (CLP=1 violator discarded)", len(rig.out))
	}
	if rig.u.Discarded != 1 {
		t.Errorf("Discarded = %d", rig.u.Discarded)
	}
}

func TestPolicerToleranceAdmitsJitter(t *testing.T) {
	rig := newPolicerRig(PolicerDiscard)
	vc := atm.VC{VPI: 3, VCI: 30}
	// 100-cycle contract with 50 cycles of CDV tolerance.
	if err := rig.u.Contract(vc, 100, 50); err != nil {
		t.Fatal(err)
	}
	// Jittered but compliant stream: nominal 100, jitter within ±50.
	times := []int{0, 60, 210, 280, 400}
	for i, at := range times {
		rig.sendAt(t, at, &atm.Cell{Header: atm.Header{VPI: 3, VCI: 30}, Seq: uint32(i)})
	}
	rig.run(t, 800)
	if rig.u.NonConforming != 0 {
		t.Errorf("jitter within tolerance policed: %d violations", rig.u.NonConforming)
	}
	if len(rig.out) != len(times) {
		t.Errorf("out = %d, want %d", len(rig.out), len(times))
	}
}

func TestPolicerUnregisteredPasses(t *testing.T) {
	rig := newPolicerRig(PolicerDiscard)
	rig.sendAt(t, 0, &atm.Cell{Header: atm.Header{VPI: 9, VCI: 99}, Seq: 0})
	rig.sendAt(t, 55, &atm.Cell{Header: atm.Header{VPI: 9, VCI: 99}, Seq: 1})
	rig.run(t, 400)
	if len(rig.out) != 2 || rig.u.Passed != 2 {
		t.Errorf("unpoliced traffic blocked: out=%d passed=%d", len(rig.out), rig.u.Passed)
	}
}

func TestPolicerViolationStrobe(t *testing.T) {
	rig := newPolicerRig(PolicerDiscard)
	vc := atm.VC{VPI: 1, VCI: 1}
	if err := rig.u.Contract(vc, 500, 0); err != nil {
		t.Fatal(err)
	}
	strobes := 0
	rig.u.Violation.OnChange(func(now sim.Time, old, new hdl.LV) {
		if new[0].IsHigh() {
			strobes++
		}
	})
	// Three back-to-back cells: cells 2 and 3 violate.
	for i := 0; i < 3; i++ {
		rig.sendAt(t, i*55, &atm.Cell{Header: atm.Header{VPI: 1, VCI: 1}, Seq: uint32(i)})
	}
	rig.run(t, 900)
	if rig.u.NonConforming != 2 {
		t.Fatalf("violations = %d, want 2", rig.u.NonConforming)
	}
	if strobes != 2 {
		t.Errorf("violation strobes = %d, want 2", strobes)
	}
}

func TestPolicerContractErrors(t *testing.T) {
	rig := newPolicerRig(PolicerDiscard)
	vc := atm.VC{VPI: 1, VCI: 1}
	if err := rig.u.Contract(vc, 0, 0); err == nil {
		t.Error("zero increment accepted")
	}
	if err := rig.u.Contract(vc, 100, 0); err != nil {
		t.Fatal(err)
	}
	if err := rig.u.Contract(vc, 100, 0); err == nil {
		t.Error("duplicate contract accepted")
	}
}
