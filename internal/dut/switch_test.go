package dut

import (
	"fmt"
	"testing"

	"castanet/internal/atm"
	"castanet/internal/hdl"
	"castanet/internal/mapping"
	"castanet/internal/sim"
)

const clkPeriod = 50 * sim.Nanosecond // 20 MHz byte clock

// switchRig wires writers to the switch inputs and readers to its outputs.
type switchRig struct {
	h       *hdl.Simulator
	sw      *Switch
	in      [SwitchPorts]*mapping.CellPortWriter
	out     [SwitchPorts][]*atm.Cell
	readers [SwitchPorts]*mapping.CellPortReader
}

func newSwitchRig(table *atm.Translator, cfg SwitchConfig) *switchRig {
	h := hdl.New()
	clk := h.Bit("clk", hdl.U)
	h.Clock(clk, clkPeriod)
	rig := &switchRig{h: h, sw: NewSwitch(h, clk, table, cfg)}
	for i := 0; i < SwitchPorts; i++ {
		i := i
		rig.in[i] = mapping.NewCellPortWriter(h, fmt.Sprintf("tb_tx%d", i), clk,
			rig.sw.In[i].Data, rig.sw.In[i].Sync)
		rig.readers[i] = mapping.NewCellPortReader(h, fmt.Sprintf("tb_rx%d", i), clk,
			rig.sw.Out[i].Data, rig.sw.Out[i].Sync)
		rig.readers[i].SkipIdle = true
		rig.readers[i].OnCell = func(c *atm.Cell) { rig.out[i] = append(rig.out[i], c) }
	}
	return rig
}

// send stamps the cell's sequence number into its payload (the test
// benches here match cells by Seq) and queues it on an input port.
func (r *switchRig) send(port int, c *atm.Cell) {
	c.StampSeq()
	r.in[port].Enqueue(c)
}

func (r *switchRig) run(t *testing.T, d sim.Duration) {
	t.Helper()
	if err := r.h.Run(r.h.Now() + d); err != nil {
		t.Fatal(err)
	}
}

func basicTable() *atm.Translator {
	tb := atm.NewTranslator()
	// in port implied by where the cell enters; table keyed by VC only.
	tb.Add(atm.VC{VPI: 1, VCI: 100}, atm.Route{Port: 2, Out: atm.VC{VPI: 10, VCI: 200}})
	tb.Add(atm.VC{VPI: 1, VCI: 101}, atm.Route{Port: 0, Out: atm.VC{VPI: 11, VCI: 201}})
	tb.Add(atm.VC{VPI: 2, VCI: 100}, atm.Route{Port: 3, Out: atm.VC{VPI: 12, VCI: 202}})
	tb.Add(atm.VC{VPI: 3, VCI: 50}, atm.Route{Port: 1, Out: atm.VC{VPI: 13, VCI: 203}})
	return tb
}

func TestSwitchRoutesAndTranslates(t *testing.T) {
	rig := newSwitchRig(basicTable(), DefaultSwitchConfig())
	rig.send(0, &atm.Cell{Header: atm.Header{VPI: 1, VCI: 100, PTI: 1}, Seq: 7})
	rig.run(t, 300*clkPeriod)
	if n := len(rig.out[2]); n != 1 {
		t.Fatalf("port 2 got %d cells, want 1 (outs: %d %d %d %d)",
			n, len(rig.out[0]), len(rig.out[1]), len(rig.out[2]), len(rig.out[3]))
	}
	c := rig.out[2][0]
	if c.VPI != 10 || c.VCI != 200 {
		t.Errorf("translated header = %v, want 10.200", c.VC())
	}
	if c.PTI != 1 {
		t.Errorf("PTI not preserved: %d", c.PTI)
	}
	if c.Seq != 7 {
		t.Errorf("payload seq corrupted: %d", c.Seq)
	}
	if rig.sw.RxCells[0] != 1 || rig.sw.TxCells[2] != 1 {
		t.Errorf("counters: rx=%v tx=%v", rig.sw.RxCells, rig.sw.TxCells)
	}
}

func TestSwitchAllPortsConcurrently(t *testing.T) {
	rig := newSwitchRig(basicTable(), DefaultSwitchConfig())
	// One cell into each input, each to a distinct output.
	rig.send(0, &atm.Cell{Header: atm.Header{VPI: 1, VCI: 100}, Seq: 0}) // -> 2
	rig.send(1, &atm.Cell{Header: atm.Header{VPI: 1, VCI: 101}, Seq: 1}) // -> 0
	rig.send(2, &atm.Cell{Header: atm.Header{VPI: 2, VCI: 100}, Seq: 2}) // -> 3
	rig.send(3, &atm.Cell{Header: atm.Header{VPI: 3, VCI: 50}, Seq: 3})  // -> 1
	rig.run(t, 500*clkPeriod)
	wantAt := map[int]uint32{2: 0, 0: 1, 3: 2, 1: 3}
	for port, seq := range wantAt {
		if len(rig.out[port]) != 1 {
			t.Fatalf("port %d got %d cells", port, len(rig.out[port]))
		}
		if rig.out[port][0].Seq != seq {
			t.Errorf("port %d got seq %d, want %d", port, rig.out[port][0].Seq, seq)
		}
	}
	if rig.sw.Drops() != 0 {
		t.Errorf("drops = %d", rig.sw.Drops())
	}
}

func TestSwitchUnknownVCDiscarded(t *testing.T) {
	rig := newSwitchRig(basicTable(), DefaultSwitchConfig())
	rig.send(0, &atm.Cell{Header: atm.Header{VPI: 9, VCI: 999}, Seq: 0})
	rig.send(0, &atm.Cell{Header: atm.Header{VPI: 1, VCI: 100}, Seq: 1})
	rig.run(t, 500*clkPeriod)
	if rig.sw.UnknownVC != 1 {
		t.Errorf("UnknownVC = %d, want 1", rig.sw.UnknownVC)
	}
	// The known cell must still get through after the discard.
	if len(rig.out[2]) != 1 || rig.out[2][0].Seq != 1 {
		t.Fatalf("known cell lost behind unknown one: %v", rig.out[2])
	}
}

func TestSwitchIdleCellsNotSwitched(t *testing.T) {
	rig := newSwitchRig(basicTable(), DefaultSwitchConfig())
	rig.in[0].InsertIdle = true // continuous idle-filled line
	rig.send(0, &atm.Cell{Header: atm.Header{VPI: 1, VCI: 100}, Seq: 4})
	rig.run(t, 1000*clkPeriod)
	total := 0
	for i := 0; i < SwitchPorts; i++ {
		total += len(rig.out[i])
	}
	if total != 1 {
		t.Fatalf("idle cells leaked through the switch: %d outputs", total)
	}
	if rig.sw.RxCells[0] != 1 {
		t.Errorf("RxCells counted idles: %d", rig.sw.RxCells[0])
	}
}

func TestSwitchHECErrorDropped(t *testing.T) {
	// Drive a raw corrupted cell image directly (bypassing the writer's
	// correct HEC): inject via a writer then corrupt the line with a
	// contending driver on one header byte time.
	tb := basicTable()
	h := hdl.New()
	clk := h.Bit("clk", hdl.U)
	h.Clock(clk, clkPeriod)
	sw := NewSwitch(h, clk, tb, DefaultSwitchConfig())
	w := mapping.NewCellPortWriter(h, "tb_tx0", clk, sw.In[0].Data, sw.In[0].Sync)
	w.Enqueue(&atm.Cell{Header: atm.Header{VPI: 1, VCI: 100}})
	// Force a header byte to zero during the second octet of the cell.
	sab := sw.In[0].Data.Driver("sab")
	sab.Set(hdl.NewLV(8, hdl.Z))
	// The writer emits the first octet on the first rising edge (25ns);
	// octet 2 spans the following cycle.
	h.Schedule(clkPeriod+clkPeriod/2, func() { sab.SetUint(0xFF) })
	h.Schedule(2*clkPeriod+clkPeriod/2, func() { sab.Set(hdl.NewLV(8, hdl.Z)) })
	if err := h.Run(400 * clkPeriod); err != nil {
		t.Fatal(err)
	}
	if sw.HECErrors[0] == 0 {
		t.Error("corrupted header not detected")
	}
	if sw.RxCells[0] != 0 {
		t.Errorf("corrupted cell accepted: rx=%d", sw.RxCells[0])
	}
}

func TestSwitchOutputQueueContention(t *testing.T) {
	// All four inputs target output 2: the shared bus and output FIFO
	// serialize them; every cell must eventually emerge, in bounded time.
	tb := atm.NewTranslator()
	for p := 0; p < SwitchPorts; p++ {
		tb.Add(atm.VC{VPI: byte(p + 1), VCI: 7}, atm.Route{Port: 2, Out: atm.VC{VPI: 20 + byte(p), VCI: 70}})
	}
	rig := newSwitchRig(tb, DefaultSwitchConfig())
	const per = 5
	for p := 0; p < SwitchPorts; p++ {
		for k := 0; k < per; k++ {
			rig.send(p, &atm.Cell{Header: atm.Header{VPI: byte(p + 1), VCI: 7}, Seq: uint32(p*100 + k)})
		}
	}
	// 20 cells of 53 cycles each on the output line, plus switching slack.
	rig.run(t, sim.Duration(20*60+500)*clkPeriod)
	if got := len(rig.out[2]); got != SwitchPorts*per {
		t.Fatalf("output 2 delivered %d cells, want %d (drops=%d)", got, SwitchPorts*per, rig.sw.Drops())
	}
	// Per-source FIFO order must be preserved.
	lastSeq := map[byte]uint32{}
	for _, c := range rig.out[2] {
		src := c.VPI - 20
		if prev, seen := lastSeq[src]; seen && c.Seq <= prev {
			t.Errorf("source %d reordered: %d after %d", src, c.Seq, prev)
		}
		lastSeq[src] = c.Seq
	}
}

func TestSwitchInputFifoOverflow(t *testing.T) {
	// Tiny input FIFO and all traffic to one output at line rate: the
	// input FIFO must overflow and count drops rather than corrupt cells.
	tb := atm.NewTranslator()
	for p := 0; p < SwitchPorts; p++ {
		tb.Add(atm.VC{VPI: byte(p + 1), VCI: 7}, atm.Route{Port: 0, Out: atm.VC{VPI: 20 + byte(p), VCI: 70}})
	}
	cfg := SwitchConfig{InFifoCells: 1, OutFifoCells: 2}
	rig := newSwitchRig(tb, cfg)
	const per = 30
	for p := 0; p < SwitchPorts; p++ {
		for k := 0; k < per; k++ {
			rig.send(p, &atm.Cell{Header: atm.Header{VPI: byte(p + 1), VCI: 7}, Seq: uint32(k)})
		}
	}
	rig.run(t, sim.Duration(per*60*4)*clkPeriod)
	delivered := uint64(len(rig.out[0]))
	dropped := rig.sw.Drops()
	if dropped == 0 {
		t.Error("overloaded switch dropped nothing")
	}
	if delivered+dropped != SwitchPorts*per {
		t.Errorf("delivered %d + dropped %d != %d offered", delivered, dropped, SwitchPorts*per)
	}
	// Every delivered cell must still be intact (HEC valid was checked by
	// the test-bench reader; check translation too).
	for _, c := range rig.out[0] {
		if c.VPI < 20 || c.VPI > 23 || c.VCI != 70 {
			t.Errorf("corrupted survivor: %v", c.VC())
		}
	}
}
