// Package dut contains the ATM hardware devices under test, modeled as
// processes on the event-driven HDL kernel the way their VHDL originals
// would be: an ATM switch built from four port modules and one global
// control unit (the configuration of the paper's §2 performance figures)
// and the ATM accounting unit of the paper's case study.
//
// External interfaces are strictly bit-level — 8-bit cell streams with a
// cell-synchronization signal, exactly the Fig.-4 port structure — so the
// devices can be driven either by the co-simulation entity or by the
// hardware test board model.
package dut

import (
	"fmt"

	"castanet/internal/atm"
	"castanet/internal/hdl"
	"castanet/internal/mapping"
	"castanet/internal/obs"
)

// SwitchPorts is the port count of the switch: four port modules, one
// global control unit, matching the paper's evaluation configuration.
const SwitchPorts = 4

// busWords is the number of 32-bit internal bus beats needed per cell:
// 53 octets = 13 full words + 1 tail word.
const busWords = (atm.CellBytes + 3) / 4

// Switch is a 4x4 output-queued ATM switch. Cells arrive on bit-level
// input ports, are reassembled by the port modules, routed by the global
// control unit via VPI/VCI table lookup with header translation, carried
// over a shared 32-bit internal bus, and serialized out of the destination
// port module.
type Switch struct {
	HDL *hdl.Simulator
	// Table is the connection table maintained by (modeled) control
	// software: incoming VC -> output port and translated VC.
	Table *atm.Translator

	// In/Out expose the bit-level cell stream ports, indexed by port.
	In  [SwitchPorts]CellPort
	Out [SwitchPorts]CellPort

	ports [SwitchPorts]*portModule
	gcu   *globalControlUnit

	// Statistics (visible to the verification environment the way a chip's
	// diagnostic registers would be).
	RxCells      [SwitchPorts]uint64
	TxCells      [SwitchPorts]uint64
	HECErrors    [SwitchPorts]uint64
	UnknownVC    uint64
	InFifoDrops  [SwitchPorts]uint64
	OutFifoDrops [SwitchPorts]uint64

	// Functional-coverage handles (nil until InstrumentCover, and
	// nil-safe after: a run without coverage pays one pointer test per
	// site).
	coverInDepth  *obs.CoverPoint
	coverOutDepth *obs.CoverPoint
	// Drop causes and the depth-band × outcome cross are stamped on the
	// per-cell hot path, so the bin handles are cached once at
	// InstrumentCover instead of resolved by label per hit.
	coverDropInFifo    *obs.CoverHit
	coverDropOutFifo   *obs.CoverHit
	coverDropUnknownVC *obs.CoverHit
	coverDropHEC       *obs.CoverHit
	coverOutLowAccept  *obs.CoverHit
	coverOutLowDrop    *obs.CoverHit
	coverOutHighAccept *obs.CoverHit
	coverOutHighDrop   *obs.CoverHit
}

// InstrumentCover registers the switch's functional coverage under the
// "dut.queue" group: input/output FIFO occupancy bands sampled at every
// enqueue, drop causes, and a depth-band × outcome cross at the output
// queue (the congestion signature: drops must only appear in the high
// band). Safe on a nil registry.
func (s *Switch) InstrumentCover(c *obs.CoverRegistry) {
	g := c.Group("dut.queue")
	s.coverInDepth = g.Range("in_fifo_depth", 0, 1, 2, 4)
	s.coverOutDepth = g.Range("out_fifo_depth", 0, 2, 8, 32)
	drop := g.Point("drop", "in_fifo", "out_fifo", "unknown_vc", "hec")
	s.coverDropInFifo = drop.Handle("in_fifo")
	s.coverDropOutFifo = drop.Handle("out_fifo")
	s.coverDropUnknownVC = drop.Handle("unknown_vc")
	s.coverDropHEC = drop.Handle("hec")
	depthOut := g.Cross("out_depth_outcome",
		[]string{"low", "high"}, []string{"accept", "drop"})
	s.coverOutLowAccept = depthOut.Handle("low", "accept")
	s.coverOutLowDrop = depthOut.Handle("low", "drop")
	s.coverOutHighAccept = depthOut.Handle("high", "accept")
	s.coverOutHighDrop = depthOut.Handle("high", "drop")
}

// CellPort is one bit-level cell stream interface: 8 data bits plus a
// cell-start strobe (Fig. 4).
type CellPort struct {
	Data *hdl.Signal // 8-bit
	Sync *hdl.Signal // 1-bit, high on the first octet of a cell
}

// SwitchConfig sizes the switch's buffers.
type SwitchConfig struct {
	InFifoCells  int // per input port, pending reassembled cells
	OutFifoCells int // per output port, cells awaiting serialization
}

// DefaultSwitchConfig mirrors a small ASIC: shallow input FIFOs, deeper
// output queues (the switch is output-queued).
func DefaultSwitchConfig() SwitchConfig {
	return SwitchConfig{InFifoCells: 4, OutFifoCells: 32}
}

// NewSwitch elaborates the switch on the given simulator, clocked by clk.
func NewSwitch(h *hdl.Simulator, clk *hdl.Signal, table *atm.Translator, cfg SwitchConfig) *Switch {
	sw := &Switch{HDL: h, Table: table}
	if cfg.InFifoCells <= 0 || cfg.OutFifoCells <= 0 {
		panic("dut: switch FIFO depths must be positive")
	}

	// Internal shared bus.
	busData := h.Signal("ibus_data", 32, hdl.U)
	busValid := h.Bit("ibus_valid", hdl.U)
	busDest := h.Signal("ibus_dest", 2, hdl.U)

	sw.gcu = newGCU(h, clk, sw)

	for i := 0; i < SwitchPorts; i++ {
		name := fmt.Sprintf("port%d", i)
		sw.In[i] = CellPort{
			Data: h.Signal(name+"_rx_data", 8, hdl.U),
			Sync: h.Bit(name+"_rx_sync", hdl.U),
		}
		sw.Out[i] = CellPort{
			Data: h.Signal(name+"_tx_data", 8, hdl.U),
			Sync: h.Bit(name+"_tx_sync", hdl.U),
		}
		sw.ports[i] = newPortModule(h, clk, sw, i, cfg, busData, busValid, busDest)
	}
	return sw
}

// portModule is one line interface: input reassembly + request to the
// GCU + streaming onto the internal bus, and output collection + cell
// serialization.
type portModule struct {
	sw  *Switch
	idx int

	// Input side.
	req    *hdl.Signal // to GCU
	reqDrv *hdl.Driver
	hdr    *hdl.Signal // 24-bit VPI(8) | VCI(16) of the pending cell
	hdrDrv *hdl.Driver
	inFifo [][atm.CellBytes]byte
	inCap  int

	// Streaming state.
	streaming  bool
	streamPos  int
	streamCell [atm.CellBytes]byte

	busDataDrv  *hdl.Driver
	busValidDrv *hdl.Driver
	busDestDrv  *hdl.Driver

	// Output side.
	collectPos int
	collecting bool
	collectBuf [atm.CellBytes]byte
	outFifo    [][atm.CellBytes]byte
	outCap     int
	writer     *mapping.CellPortWriter
}

func newPortModule(h *hdl.Simulator, clk *hdl.Signal, sw *Switch, idx int, cfg SwitchConfig,
	busData, busValid, busDest *hdl.Signal) *portModule {
	name := fmt.Sprintf("port%d", idx)
	p := &portModule{sw: sw, idx: idx, inCap: cfg.InFifoCells, outCap: cfg.OutFifoCells}

	p.req = h.Bit(name+"_req", hdl.U)
	p.reqDrv = p.req.Driver(name)
	p.reqDrv.SetBit(hdl.L0)
	p.hdr = h.Signal(name+"_hdr", 24, hdl.U)
	p.hdrDrv = p.hdr.Driver(name)
	p.hdrDrv.SetUint(0)

	p.busDataDrv = busData.Driver(name)
	p.busValidDrv = busValid.Driver(name)
	p.busDestDrv = busDest.Driver(name)
	p.busDataDrv.Set(hdl.NewLV(32, hdl.Z))
	p.busValidDrv.SetBit(hdl.Z)
	p.busDestDrv.Set(hdl.NewLV(2, hdl.Z))

	// Input reassembly straight off the line.
	rd := mapping.NewCellPortReader(h, name+"_rx", clk, sw.In[idx].Data, sw.In[idx].Sync)
	rd.OnCell = func(c *atm.Cell) {
		if c.IsIdle() || c.IsUnassigned() {
			return
		}
		sw.RxCells[idx]++
		sw.coverInDepth.Observe(int64(len(p.inFifo)))
		if len(p.inFifo) >= p.inCap {
			sw.InFifoDrops[idx]++
			sw.coverDropInFifo.Hit()
			return
		}
		p.inFifo = append(p.inFifo, c.Marshal())
	}
	rd.OnError = func(img [atm.CellBytes]byte, err error) {
		sw.HECErrors[idx]++
		sw.coverDropHEC.Hit()
	}

	// Request/stream state machine.
	gcu := sw.gcu
	h.Process(name+"_ctl", func() {
		if !clk.Rising() {
			return
		}
		switch {
		case p.streaming:
			p.streamBeat()
		case len(p.inFifo) > 0:
			// Present the head cell to the GCU.
			img := p.inFifo[0]
			hdr, err := atm.UnmarshalHeader([5]byte{img[0], img[1], img[2], img[3], img[4]})
			if err != nil {
				// HEC was checked at reassembly; a failure here means the
				// FIFO was corrupted — drop defensively.
				p.inFifo = p.inFifo[1:]
				sw.HECErrors[idx]++
				sw.coverDropHEC.Hit()
				return
			}
			p.reqDrv.SetBit(hdl.L1)
			p.hdrDrv.SetUint(uint64(hdr.VPI)<<16 | uint64(hdr.VCI))
			if gcu.granted == idx {
				// Grant received this cycle: translate and stream.
				gcu.granted = -1
				p.reqDrv.SetBit(hdl.L0)
				p.inFifo = p.inFifo[1:]
				p.beginStream(img, gcu.grantHdr, gcu.grantDest)
			}
		default:
			p.reqDrv.SetBit(hdl.L0)
		}
	}, clk)

	// Output collection from the internal bus.
	h.Process(name+"_collect", func() {
		if !clk.Rising() {
			return
		}
		if !busValid.Bit().IsHigh() {
			return
		}
		dest, ok := busDest.Uint()
		if !ok || int(dest) != idx {
			return
		}
		word, ok := busData.Uint()
		if !ok {
			p.collecting = false
			return
		}
		if !p.collecting {
			p.collecting = true
			p.collectPos = 0
		}
		for b := 0; b < 4 && p.collectPos < atm.CellBytes; b++ {
			p.collectBuf[p.collectPos] = byte(word >> (8 * uint(3-b)))
			p.collectPos++
		}
		if p.collectPos == atm.CellBytes {
			p.collecting = false
			sw.coverOutDepth.Observe(int64(len(p.outFifo)))
			accept, drop := sw.coverOutLowAccept, sw.coverOutLowDrop
			if len(p.outFifo) >= p.outCap/2 {
				accept, drop = sw.coverOutHighAccept, sw.coverOutHighDrop
			}
			if len(p.outFifo) >= p.outCap {
				sw.OutFifoDrops[idx]++
				sw.coverDropOutFifo.Hit()
				drop.Hit()
			} else {
				p.outFifo = append(p.outFifo, p.collectBuf)
				accept.Hit()
			}
		}
	}, clk)

	// Output serializer.
	p.writer = mapping.NewCellPortWriter(h, name+"_tx", clk, sw.Out[idx].Data, sw.Out[idx].Sync)
	h.Process(name+"_txfeed", func() {
		if !clk.Rising() {
			return
		}
		if len(p.outFifo) > 0 && !p.writer.Busy() && p.writer.Backlog() == 0 {
			img := p.outFifo[0]
			p.outFifo = p.outFifo[1:]
			cell, err := atm.Unmarshal(img)
			if err != nil {
				sw.HECErrors[idx]++
				sw.coverDropHEC.Hit()
				return
			}
			p.writer.Enqueue(cell)
			sw.TxCells[idx]++
		}
	}, clk)

	return p
}

// beginStream loads the translated cell image and claims the bus.
func (p *portModule) beginStream(img [atm.CellBytes]byte, newHdr atm.Header, dest int) {
	// Header translation: rebuild the first five octets with the new
	// VPI/VCI and a freshly computed HEC (the PTI/CLP travel unchanged).
	old, _ := atm.UnmarshalHeader([5]byte{img[0], img[1], img[2], img[3], img[4]})
	h := old
	h.VPI = newHdr.VPI
	h.VCI = newHdr.VCI
	nb := h.MarshalHeader()
	copy(img[:atm.HeaderBytes], nb[:])
	p.streamCell = img
	p.streaming = true
	p.streamPos = 0
	p.busDestDrv.SetUint(uint64(dest))
	p.streamBeat()
}

// streamBeat drives one 32-bit word of the cell onto the internal bus.
func (p *portModule) streamBeat() {
	if p.streamPos >= busWords {
		// Release the bus.
		p.streaming = false
		p.busDataDrv.SetZ()
		p.busValidDrv.SetBit(hdl.Z)
		p.busDestDrv.SetZ()
		p.sw.gcu.busFree()
		return
	}
	var word uint64
	for b := 0; b < 4; b++ {
		i := p.streamPos*4 + b
		var v byte
		if i < atm.CellBytes {
			v = p.streamCell[i]
		}
		word = word<<8 | uint64(v)
	}
	p.busDataDrv.SetUint(word)
	p.busValidDrv.SetBit(hdl.L1)
	p.streamPos++
}

// globalControlUnit arbitrates the internal bus round-robin and resolves
// VPI/VCI translations. The connection table itself models the on-chip
// CAM loaded by control software.
type globalControlUnit struct {
	sw *Switch

	busy      bool
	rrNext    int
	granted   int // port index granted this cycle, -1 otherwise
	grantHdr  atm.Header
	grantDest int

	// Grants counts successful arbitrations (diagnostic).
	Grants uint64
}

func newGCU(h *hdl.Simulator, clk *hdl.Signal, sw *Switch) *globalControlUnit {
	g := &globalControlUnit{sw: sw, granted: -1}
	h.Process("gcu", func() {
		if !clk.Rising() {
			return
		}
		if g.busy {
			return
		}
		g.granted = -1
		for n := 0; n < SwitchPorts; n++ {
			i := (g.rrNext + n) % SwitchPorts
			p := sw.ports[i]
			if !p.req.Bit().IsHigh() {
				continue
			}
			hv, ok := p.hdr.Uint()
			if !ok {
				continue
			}
			vc := atm.VC{VPI: byte(hv >> 16), VCI: uint16(hv)}
			route, found := sw.Table.Lookup(vc)
			if !found {
				// Unknown connection: instruct the port to discard by
				// consuming its request without a grant.
				sw.UnknownVC++
				sw.coverDropUnknownVC.Hit()
				p.inFifo = p.inFifo[1:]
				continue
			}
			g.granted = i
			g.grantHdr = atm.Header{VPI: route.Out.VPI, VCI: route.Out.VCI}
			g.grantDest = route.Port
			g.rrNext = (i + 1) % SwitchPorts
			g.busy = true
			g.Grants++
			break
		}
	}, clk)
	return g
}

// busFree is signalled by the streaming port when its last beat left the
// bus.
func (g *globalControlUnit) busFree() { g.busy = false }

// Drops returns the total number of cells lost in the switch for any
// reason.
func (s *Switch) Drops() uint64 {
	total := s.UnknownVC
	for i := 0; i < SwitchPorts; i++ {
		total += s.InFifoDrops[i] + s.OutFifoDrops[i] + s.HECErrors[i]
	}
	return total
}
