package netsim

import (
	"testing"

	"castanet/internal/sim"
)

// buildOnOff builds the classic ON/OFF traffic EFSM: in ON it emits a
// packet every cellTime and may fall back to OFF; a timer in OFF returns
// to ON.
func buildOnOff() *EFSM {
	m := NewEFSM("onoff")
	const burst = 5
	m.State("off", nil)
	m.State("on", nil)
	m.Transition("off", "on",
		func(ctx *Ctx, m *EFSM, intr Interrupt) bool { return intr.Kind == IntrBegin || intr.Kind == IntrTimer },
		func(ctx *Ctx, m *EFSM, intr Interrupt) {
			m.SetIntVar("left", burst)
			ctx.SetTimer(sim.Microsecond, "emit")
		})
	m.Transition("on", "on",
		func(ctx *Ctx, m *EFSM, intr Interrupt) bool {
			return intr.Kind == IntrTimer && m.IntVar("left") > 1
		},
		func(ctx *Ctx, m *EFSM, intr Interrupt) {
			ctx.Send(ctx.Net().NewPacket("cell", nil, 424), 0)
			m.SetIntVar("left", m.IntVar("left")-1)
			ctx.SetTimer(sim.Microsecond, "emit")
		})
	m.Transition("on", "off",
		func(ctx *Ctx, m *EFSM, intr Interrupt) bool {
			return intr.Kind == IntrTimer && m.IntVar("left") == 1
		},
		func(ctx *Ctx, m *EFSM, intr Interrupt) {
			ctx.Send(ctx.Net().NewPacket("cell", nil, 424), 0)
			ctx.SetTimer(10*sim.Microsecond, "wake")
		})
	return m
}

func TestEFSMOnOff(t *testing.T) {
	n := New(1)
	m := buildOnOff()
	sink := &Sink{}
	a := n.Node("src", m)
	b := n.Node("sink", sink)
	n.Connect(a, 0, b, 0, LinkParams{})
	n.Run(100 * sim.Microsecond)
	if m.Current() != "on" && m.Current() != "off" {
		t.Fatalf("current = %q", m.Current())
	}
	if sink.Received == 0 {
		t.Fatal("ON/OFF machine emitted nothing")
	}
	// Bursts of exactly 5: total must be a multiple of 5 once back in off.
	if m.Current() == "off" && sink.Received%5 != 0 {
		t.Errorf("received %d not a multiple of burst 5", sink.Received)
	}
	if m.Transitions() == 0 {
		t.Error("no transitions counted")
	}
}

func TestEFSMForcedState(t *testing.T) {
	// begin -> forced "decide" -> "done": the forced state is traversed
	// immediately without an extra interrupt.
	n := New(1)
	m := NewEFSM("f")
	visited := []string{}
	m.State("init", nil)
	m.ForcedState("decide", func(ctx *Ctx, m *EFSM) { visited = append(visited, "decide") })
	m.State("done", func(ctx *Ctx, m *EFSM) { visited = append(visited, "done") })
	m.Transition("init", "decide", nil, nil)
	m.Transition("decide", "done", nil, nil)
	n.Node("n", m)
	n.Run(sim.Microsecond)
	if m.Current() != "done" {
		t.Fatalf("current = %q, want done", m.Current())
	}
	if len(visited) != 2 || visited[0] != "decide" || visited[1] != "done" {
		t.Fatalf("visited = %v", visited)
	}
}

func TestEFSMGuardOrder(t *testing.T) {
	// First enabled transition wins, in declaration order.
	n := New(1)
	m := NewEFSM("g")
	m.State("s", nil)
	m.State("a", nil)
	m.State("b", nil)
	m.Transition("s", "a", func(ctx *Ctx, m *EFSM, i Interrupt) bool { return true }, nil)
	m.Transition("s", "b", func(ctx *Ctx, m *EFSM, i Interrupt) bool { return true }, nil)
	n.Node("n", m)
	n.Run(sim.Microsecond)
	if m.Current() != "a" {
		t.Fatalf("current = %q, want a (declaration order)", m.Current())
	}
}

func TestEFSMNoEnabledTransitionStays(t *testing.T) {
	n := New(1)
	m := NewEFSM("stay")
	m.State("s", nil)
	m.State("t", nil)
	m.Transition("s", "t", func(ctx *Ctx, m *EFSM, i Interrupt) bool { return false }, nil)
	n.Node("n", m)
	n.Run(sim.Microsecond)
	if m.Current() != "s" {
		t.Fatalf("machine moved to %q with no enabled transition", m.Current())
	}
}

func TestEFSMUnknownStatePanics(t *testing.T) {
	m := NewEFSM("x")
	m.State("s", nil)
	defer func() {
		if recover() == nil {
			t.Error("transition to unknown state did not panic")
		}
	}()
	m.Transition("s", "nope", nil, nil)
}

func TestEFSMForcedLoopDetected(t *testing.T) {
	n := New(1)
	m := NewEFSM("loop")
	m.ForcedState("a", nil)
	m.ForcedState("b", nil)
	m.Transition("a", "b", nil, nil)
	m.Transition("b", "a", nil, nil)
	n.Node("n", m)
	defer func() {
		if recover() == nil {
			t.Error("forced-state loop not detected")
		}
	}()
	n.Run(sim.Microsecond)
}
