package netsim

import (
	"castanet/internal/sim"
)

// Generator is the interval generator contract satisfied by the traffic
// models of package traffic: Next returns the delay until the next packet
// emission. It is defined here (consumer side) so netsim does not depend
// on traffic.
type Generator interface {
	Next(rng *sim.RNG) sim.Duration
}

// PacketFactory builds the payload for the i-th emitted packet.
type PacketFactory func(ctx *Ctx, i uint64) *Packet

// Source emits packets on port 0 with inter-departure times drawn from a
// Generator — the node-domain wrapper every OPNET traffic model gets.
type Source struct {
	Gen     Generator
	Make    PacketFactory
	Limit   uint64 // stop after this many packets; 0 = unlimited
	Emitted uint64

	rng *sim.RNG
}

// Init implements Processor.
func (s *Source) Init(ctx *Ctx) {
	s.rng = ctx.RNG().Split()
	s.arm(ctx)
}

func (s *Source) arm(ctx *Ctx) {
	if s.Limit > 0 && s.Emitted >= s.Limit {
		return
	}
	ctx.SetTimer(s.Gen.Next(s.rng), nil)
}

// Arrival implements Processor; sources have no inputs.
func (s *Source) Arrival(ctx *Ctx, pkt *Packet, port int) {}

// Timer implements Processor: emit one packet and re-arm.
func (s *Source) Timer(ctx *Ctx, tag interface{}) {
	pkt := s.Make(ctx, s.Emitted)
	s.Emitted++
	ctx.Send(pkt, 0)
	s.arm(ctx)
}

// Queue is a FIFO queue with a single server — the canonical node-domain
// queueing module. Packets arriving on any port enter the queue; the
// server forwards them on port 0 after a service time of Size/RateBps
// seconds (or a fixed ServiceTime). Packets arriving to a full queue are
// dropped.
type Queue struct {
	Capacity    int          // max queued packets (0 = unbounded)
	RateBps     float64      // service rate applied to pkt.Size
	ServiceTime sim.Duration // fixed service time when RateBps == 0

	fifo    []*Packet
	busy    bool
	Dropped uint64
	Served  uint64

	// Occupancy tracks the time-weighted queue length.
	Occupancy sim.TimeWeighted
}

// Init implements Processor.
func (q *Queue) Init(ctx *Ctx) { q.Occupancy.Set(ctx.Now(), 0) }

// Len returns the current queue length (not counting the packet in
// service).
func (q *Queue) Len() int { return len(q.fifo) }

// Arrival implements Processor.
func (q *Queue) Arrival(ctx *Ctx, pkt *Packet, port int) {
	if q.Capacity > 0 && len(q.fifo) >= q.Capacity {
		q.Dropped++
		return
	}
	q.fifo = append(q.fifo, pkt)
	q.Occupancy.Set(ctx.Now(), float64(len(q.fifo)))
	if !q.busy {
		q.startService(ctx)
	}
}

func (q *Queue) startService(ctx *Ctx) {
	pkt := q.fifo[0]
	q.fifo = q.fifo[1:]
	q.Occupancy.Set(ctx.Now(), float64(len(q.fifo)))
	q.busy = true
	d := q.ServiceTime
	if q.RateBps > 0 {
		d = sim.FromSeconds(float64(pkt.Size) / q.RateBps)
	}
	ctx.SetTimer(d, pkt)
}

// Timer implements Processor: service completion.
func (q *Queue) Timer(ctx *Ctx, tag interface{}) {
	pkt := tag.(*Packet)
	q.Served++
	ctx.Send(pkt, 0)
	if len(q.fifo) > 0 {
		q.startService(ctx)
	} else {
		q.busy = false
	}
}

// Sink absorbs packets and records end-to-end delay statistics, the
// standard measurement endpoint of network-level test benches.
type Sink struct {
	Received uint64
	Delay    sim.Accumulator // seconds

	// OnPacket, when set, observes every absorbed packet (used by the
	// comparison logic and by hardware-vs-reference probes).
	OnPacket func(ctx *Ctx, pkt *Packet, port int)
}

// Init implements Processor.
func (s *Sink) Init(ctx *Ctx) {}

// Arrival implements Processor.
func (s *Sink) Arrival(ctx *Ctx, pkt *Packet, port int) {
	s.Received++
	s.Delay.Add((ctx.Now() - pkt.Created).Seconds())
	if s.OnPacket != nil {
		s.OnPacket(ctx, pkt, port)
	}
}

// Timer implements Processor.
func (s *Sink) Timer(ctx *Ctx, tag interface{}) {}

// Func is a Processor assembled from closures, convenient for small glue
// processes in examples and tests.
type Func struct {
	OnInit    func(ctx *Ctx)
	OnArrival func(ctx *Ctx, pkt *Packet, port int)
	OnTimer   func(ctx *Ctx, tag interface{})
}

// Init implements Processor.
func (f *Func) Init(ctx *Ctx) {
	if f.OnInit != nil {
		f.OnInit(ctx)
	}
}

// Arrival implements Processor.
func (f *Func) Arrival(ctx *Ctx, pkt *Packet, port int) {
	if f.OnArrival != nil {
		f.OnArrival(ctx, pkt, port)
	}
}

// Timer implements Processor.
func (f *Func) Timer(ctx *Ctx, tag interface{}) {
	if f.OnTimer != nil {
		f.OnTimer(ctx, tag)
	}
}
