// Package netsim is a discrete-event telecommunication network simulator
// standing in for OPNET Modeler. It mirrors OPNET's three hierarchical
// modeling domains described in the paper:
//
//   - the network domain — a topology of nodes and communication links;
//   - the node domain — each node's processing, queueing and communication
//     interfaces (Processor implementations and Ports);
//   - the process domain — node behaviour specified as communicating
//     extended finite state machines (type EFSM).
//
// System behaviour and performance are analyzed by discrete-event
// simulation on a shared kernel (package sim). The CASTANET interface
// process of package cosim is itself just a Processor in this simulator,
// exactly as the paper implements it as a special OPNET interface model.
package netsim

import (
	"fmt"

	"castanet/internal/sim"
)

// Packet is the abstract protocol data unit exchanged between processes.
// Communication at this level is instantaneous and structural: when an
// event occurs the complete information is available at once (§3.2), in
// contrast to the bit-serial representation at the implementation level.
type Packet struct {
	ID      uint64
	Created sim.Time
	Kind    string
	Data    interface{} // typed payload, e.g. *atm.Cell
	Size    int         // bits on the wire, for link transmission delay
}

// Network is the network-domain container: nodes, links and the kernel.
type Network struct {
	Sched *sim.Scheduler
	RNG   *sim.RNG

	nodes   map[string]*Node
	order   []*Node
	nextPkt uint64

	// Delivered counts end-to-end packet deliveries across all links.
	Delivered uint64
}

// New returns an empty network using the given master seed for all
// stochastic behaviour.
func New(seed uint64) *Network {
	return &Network{
		Sched: sim.NewScheduler(),
		RNG:   sim.NewRNG(seed),
		nodes: make(map[string]*Node),
	}
}

// Now returns the current simulated time.
func (n *Network) Now() sim.Time { return n.Sched.Now() }

// NewPacket allocates a packet stamped with the current time.
func (n *Network) NewPacket(kind string, data interface{}, sizeBits int) *Packet {
	n.nextPkt++
	return &Packet{ID: n.nextPkt, Created: n.Now(), Kind: kind, Data: data, Size: sizeBits}
}

// Node creates a node hosting the given processor. Node names must be
// unique within the network.
func (n *Network) Node(name string, p Processor) *Node {
	if _, dup := n.nodes[name]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %q", name))
	}
	node := &Node{Name: name, net: n, proc: p}
	n.nodes[name] = node
	n.order = append(n.order, node)
	return node
}

// Lookup returns a node by name.
func (n *Network) Lookup(name string) (*Node, bool) {
	nd, ok := n.nodes[name]
	return nd, ok
}

// Nodes returns all nodes in creation order.
func (n *Network) Nodes() []*Node { return n.order }

// Connect creates a simplex link from port srcPort of src to port dstPort
// of dst. Transmission of a packet takes size/rate seconds followed by the
// propagation delay; zero rate means infinite bandwidth.
func (n *Network) Connect(src *Node, srcPort int, dst *Node, dstPort int, p LinkParams) *Link {
	l := &Link{net: n, src: src, dst: dst, dstPort: dstPort, params: p}
	src.setOutput(srcPort, l)
	return l
}

// Run initializes all processors (in creation order) and executes events
// until the given horizon.
func (n *Network) Run(until sim.Time) {
	n.Init()
	n.Sched.RunUntil(until)
}

// Init runs every processor's Init exactly once; it is idempotent so that
// co-simulation drivers can initialize before stepping manually.
func (n *Network) Init() {
	for _, node := range n.order {
		if !node.inited {
			node.inited = true
			node.proc.Init(&Ctx{node: node})
		}
	}
}

// LinkParams describes a communication link in the network domain.
type LinkParams struct {
	Delay   sim.Duration // propagation delay
	RateBps float64      // transmission rate; 0 = infinite
}

// Link is a simplex point-to-point channel. It serializes transmissions:
// a packet may not begin transmission before the previous one finished
// (transmitter busy), which yields correct queueing behaviour at loaded
// ports.
type Link struct {
	net     *Network
	src     *Node
	dst     *Node
	dstPort int
	params  LinkParams

	busyUntil sim.Time
	Sent      uint64
}

// send transmits pkt, delivering it to the destination processor after
// transmission + propagation time.
func (l *Link) send(pkt *Packet) {
	now := l.net.Now()
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	var txTime sim.Duration
	if l.params.RateBps > 0 && pkt.Size > 0 {
		txTime = sim.FromSeconds(float64(pkt.Size) / l.params.RateBps)
	}
	l.busyUntil = start + txTime
	arrive := l.busyUntil + l.params.Delay
	l.Sent++
	l.net.Sched.At(arrive, func() {
		l.net.Delivered++
		l.dst.deliver(pkt, l.dstPort)
	})
}

// Node is a network element in the node domain. Its behaviour lives in its
// Processor; its communication interfaces are numbered output ports bound
// to links.
type Node struct {
	Name   string
	net    *Network
	proc   Processor
	out    []*Link
	inited bool
}

// Net returns the owning network.
func (nd *Node) Net() *Network { return nd.net }

// Processor returns the node's process-domain behaviour.
func (nd *Node) Processor() Processor { return nd.proc }

func (nd *Node) setOutput(port int, l *Link) {
	for port >= len(nd.out) {
		nd.out = append(nd.out, nil)
	}
	if nd.out[port] != nil {
		panic(fmt.Sprintf("netsim: node %q port %d already connected", nd.Name, port))
	}
	nd.out[port] = l
}

func (nd *Node) deliver(pkt *Packet, port int) {
	nd.proc.Arrival(&Ctx{node: nd}, pkt, port)
}

// Inject delivers a packet to the node's processor at the current
// simulated time, bypassing any link — the hook external drivers (test
// harnesses, vector injectors) use to stimulate a process directly.
func (nd *Node) Inject(pkt *Packet, port int) {
	nd.deliver(pkt, port)
}

// Processor is the node-domain behaviour contract. OPNET would call this a
// processor or queue module; concrete implementations include traffic
// sources, FIFO queues, sinks, the reference switch model and the CASTANET
// interface process.
type Processor interface {
	// Init runs once at the begin-simulation interrupt.
	Init(ctx *Ctx)
	// Arrival handles a packet arriving on an input port ("stream
	// interrupt").
	Arrival(ctx *Ctx, pkt *Packet, port int)
	// Timer handles a self interrupt previously set via ctx.SetTimer.
	Timer(ctx *Ctx, tag interface{})
}

// Ctx gives a processor access to its execution environment for the
// duration of one interrupt.
type Ctx struct {
	node *Node
}

// Now returns the current simulated time.
func (c *Ctx) Now() sim.Time { return c.node.net.Now() }

// Node returns the hosting node.
func (c *Ctx) Node() *Node { return c.node }

// Net returns the network.
func (c *Ctx) Net() *Network { return c.node.net }

// RNG returns the network-wide random stream.
func (c *Ctx) RNG() *sim.RNG { return c.node.net.RNG }

// Send transmits a packet on the given output port. It panics when the
// port is not connected — mirroring OPNET's runtime error for sending to
// an unconnected stream.
func (c *Ctx) Send(pkt *Packet, port int) {
	nd := c.node
	if port < 0 || port >= len(nd.out) || nd.out[port] == nil {
		panic(fmt.Sprintf("netsim: node %q: send on unconnected port %d", nd.Name, port))
	}
	nd.out[port].send(pkt)
}

// Connected reports whether an output port is bound to a link.
func (c *Ctx) Connected(port int) bool {
	return port >= 0 && port < len(c.node.out) && c.node.out[port] != nil
}

// SetTimer schedules a self interrupt after the given delay. The returned
// event may be cancelled.
func (c *Ctx) SetTimer(delay sim.Duration, tag interface{}) *sim.Event {
	nd := c.node
	return nd.net.Sched.After(delay, func() {
		nd.proc.Timer(&Ctx{node: nd}, tag)
	})
}
