package netsim

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"castanet/internal/sim"
)

// This file provides the statistic probes of the network simulation
// environment — the paper's "access to powerful analysis capabilities
// available in existing network simulation tools for the representation
// of errors and results". A probe collects a named scalar statistic as
// both streaming summary and (optionally) a bounded time series for
// export to plotting tools.

// Probe collects one named statistic.
type Probe struct {
	Name string

	// Capture bounds the stored time series; 0 keeps summary statistics
	// only.
	Capture int

	acc    sim.Accumulator
	series []Sample
}

// Sample is one time-series point.
type Sample struct {
	At    sim.Time
	Value float64
}

// Record adds an observation at the given time.
func (p *Probe) Record(at sim.Time, v float64) {
	p.acc.Add(v)
	if p.Capture > 0 && len(p.series) < p.Capture {
		p.series = append(p.series, Sample{At: at, Value: v})
	}
}

// Stats returns the streaming summary.
func (p *Probe) Stats() *sim.Accumulator { return &p.acc }

// Series returns the captured samples.
func (p *Probe) Series() []Sample { return p.series }

// WriteSeries exports the time series as "time_seconds value" lines.
func (p *Probe) WriteSeries(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# probe %q, %d samples\n", p.Name, len(p.series)); err != nil {
		return err
	}
	for _, s := range p.series {
		if _, err := fmt.Fprintf(bw, "%.9f %g\n", s.At.Seconds(), s.Value); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ProbeSet is a named collection of probes for one simulation study.
type ProbeSet struct {
	probes map[string]*Probe
	order  []string
}

// NewProbeSet returns an empty set.
func NewProbeSet() *ProbeSet { return &ProbeSet{probes: make(map[string]*Probe)} }

// Get returns (creating if needed) the probe with the given name.
func (s *ProbeSet) Get(name string) *Probe {
	if p, ok := s.probes[name]; ok {
		return p
	}
	p := &Probe{Name: name}
	s.probes[name] = p
	s.order = append(s.order, name)
	return p
}

// Names returns the probe names in creation order.
func (s *ProbeSet) Names() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// Report writes a summary table of all probes.
func (s *ProbeSet) Report(w io.Writer) error {
	bw := bufio.NewWriter(w)
	names := s.Names()
	sort.Strings(names)
	if _, err := fmt.Fprintf(bw, "%-28s %10s %12s %12s %12s %12s\n",
		"probe", "n", "mean", "stddev", "min", "max"); err != nil {
		return err
	}
	for _, name := range names {
		a := s.probes[name].Stats()
		if _, err := fmt.Fprintf(bw, "%-28s %10d %12.5g %12.5g %12.5g %12.5g\n",
			name, a.N(), a.Mean(), a.Stddev(), a.Min(), a.Max()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// InstrumentSink attaches delay and size probes to a sink: every absorbed
// packet records its end-to-end delay (seconds) and size (bits).
func InstrumentSink(s *Sink, set *ProbeSet, prefix string) {
	delay := set.Get(prefix + ".delay")
	size := set.Get(prefix + ".size")
	prev := s.OnPacket
	s.OnPacket = func(ctx *Ctx, pkt *Packet, port int) {
		delay.Record(ctx.Now(), (ctx.Now() - pkt.Created).Seconds())
		size.Record(ctx.Now(), float64(pkt.Size))
		if prev != nil {
			prev(ctx, pkt, port)
		}
	}
}

// InstrumentQueue samples a queue's occupancy and drop count into probes
// every interval.
func InstrumentQueue(net *Network, q *Queue, set *ProbeSet, prefix string, every sim.Duration) {
	occ := set.Get(prefix + ".occupancy")
	drops := set.Get(prefix + ".drops")
	var tick func()
	tick = func() {
		occ.Record(net.Now(), float64(q.Len()))
		drops.Record(net.Now(), float64(q.Dropped))
		net.Sched.After(every, tick)
	}
	net.Sched.After(every, tick)
}
