package netsim

import (
	"fmt"

	"castanet/internal/sim"
)

// This file implements the process domain: behaviour expressed as
// communicating extended finite state machines, OPNET's process model.
// An EFSM has named states (forced or unforced), transitions guarded by
// conditions over the interrupt and the machine's extended state
// variables, and executive actions. Unforced states block until the next
// interrupt; forced states evaluate their outgoing transitions immediately,
// exactly like OPNET's green (unforced) and red (forced) states.

// InterruptKind discriminates what woke the machine up.
type InterruptKind int

// Interrupt kinds, mirroring OPNET's begin-simulation, stream and self
// interrupts.
const (
	IntrBegin InterruptKind = iota
	IntrArrival
	IntrTimer
)

// String names the interrupt kind.
func (k InterruptKind) String() string {
	switch k {
	case IntrBegin:
		return "begin"
	case IntrArrival:
		return "arrival"
	case IntrTimer:
		return "timer"
	default:
		return "?"
	}
}

// Interrupt carries the wake-up cause into guards and actions.
type Interrupt struct {
	Kind InterruptKind
	Pkt  *Packet     // arrival interrupts
	Port int         // arrival interrupts
	Tag  interface{} // timer interrupts
}

// EFSM is an extended finite state machine usable as a node Processor.
type EFSM struct {
	name    string
	states  map[string]*stateDef
	order   []string
	current string
	started bool

	// Vars are the extended state variables. Guards and actions may read
	// and write them freely.
	Vars map[string]interface{}

	// Trace, when set, receives a line per transition taken (debugging).
	Trace func(from, to string, intr Interrupt)

	transitions uint64
}

type stateDef struct {
	name   string
	forced bool
	enter  func(ctx *Ctx, m *EFSM)
	trans  []*transition
}

type transition struct {
	to     string
	guard  func(ctx *Ctx, m *EFSM, intr Interrupt) bool
	action func(ctx *Ctx, m *EFSM, intr Interrupt)
}

// NewEFSM creates a machine; the first state added becomes the initial
// state.
func NewEFSM(name string) *EFSM {
	return &EFSM{name: name, states: make(map[string]*stateDef), Vars: make(map[string]interface{})}
}

// Name returns the machine name.
func (m *EFSM) Name() string { return m.name }

// Current returns the current state name.
func (m *EFSM) Current() string { return m.current }

// Transitions returns the number of transitions taken.
func (m *EFSM) Transitions() uint64 { return m.transitions }

// State declares an unforced (waiting) state. enter, if non-nil, runs on
// entry.
func (m *EFSM) State(name string, enter func(ctx *Ctx, m *EFSM)) *EFSM {
	return m.addState(name, false, enter)
}

// ForcedState declares a forced state: its outgoing transitions are
// evaluated immediately after entry without waiting for an interrupt.
func (m *EFSM) ForcedState(name string, enter func(ctx *Ctx, m *EFSM)) *EFSM {
	return m.addState(name, true, enter)
}

func (m *EFSM) addState(name string, forced bool, enter func(ctx *Ctx, m *EFSM)) *EFSM {
	if _, dup := m.states[name]; dup {
		panic(fmt.Sprintf("netsim: EFSM %q: duplicate state %q", m.name, name))
	}
	m.states[name] = &stateDef{name: name, forced: forced, enter: enter}
	m.order = append(m.order, name)
	if m.current == "" {
		m.current = name
	}
	return m
}

// Transition declares an edge from state from to state to. A nil guard is
// always true; a nil action does nothing. Transitions are evaluated in
// declaration order and the first enabled one fires.
func (m *EFSM) Transition(from, to string,
	guard func(ctx *Ctx, m *EFSM, intr Interrupt) bool,
	action func(ctx *Ctx, m *EFSM, intr Interrupt)) *EFSM {
	sf, ok := m.states[from]
	if !ok {
		panic(fmt.Sprintf("netsim: EFSM %q: transition from unknown state %q", m.name, from))
	}
	if _, ok := m.states[to]; !ok {
		panic(fmt.Sprintf("netsim: EFSM %q: transition to unknown state %q", m.name, to))
	}
	sf.trans = append(sf.trans, &transition{to: to, guard: guard, action: action})
	return m
}

// Init implements Processor: delivers the begin interrupt.
func (m *EFSM) Init(ctx *Ctx) {
	if m.current == "" {
		panic(fmt.Sprintf("netsim: EFSM %q has no states", m.name))
	}
	m.started = true
	st := m.states[m.current]
	if st.enter != nil {
		st.enter(ctx, m)
	}
	m.dispatch(ctx, Interrupt{Kind: IntrBegin})
}

// Arrival implements Processor.
func (m *EFSM) Arrival(ctx *Ctx, pkt *Packet, port int) {
	m.dispatch(ctx, Interrupt{Kind: IntrArrival, Pkt: pkt, Port: port})
}

// Timer implements Processor.
func (m *EFSM) Timer(ctx *Ctx, tag interface{}) {
	m.dispatch(ctx, Interrupt{Kind: IntrTimer, Tag: tag})
}

// dispatch evaluates transitions from the current state for the interrupt,
// then chases forced states to quiescence.
func (m *EFSM) dispatch(ctx *Ctx, intr Interrupt) {
	if !m.started {
		panic(fmt.Sprintf("netsim: EFSM %q: interrupt before Init", m.name))
	}
	m.step(ctx, intr)
	// Forced states evaluate immediately with the same interrupt context
	// until an unforced state is reached. Guard against forced-state
	// cycles.
	for hops := 0; m.states[m.current].forced; hops++ {
		if hops > 1000 {
			panic(fmt.Sprintf("netsim: EFSM %q: forced-state loop at %q", m.name, m.current))
		}
		if !m.step(ctx, intr) {
			panic(fmt.Sprintf("netsim: EFSM %q: forced state %q has no enabled transition", m.name, m.current))
		}
	}
}

// step fires at most one transition and reports whether one fired.
func (m *EFSM) step(ctx *Ctx, intr Interrupt) bool {
	st := m.states[m.current]
	for _, tr := range st.trans {
		if tr.guard != nil && !tr.guard(ctx, m, intr) {
			continue
		}
		if m.Trace != nil {
			m.Trace(st.name, tr.to, intr)
		}
		if tr.action != nil {
			tr.action(ctx, m, intr)
		}
		m.transitions++
		m.current = tr.to
		if next := m.states[tr.to]; next.enter != nil {
			next.enter(ctx, m)
		}
		return true
	}
	return false
}

// IntVar reads an integer extended state variable (0 when unset).
func (m *EFSM) IntVar(name string) int {
	v, _ := m.Vars[name].(int)
	return v
}

// SetIntVar writes an integer extended state variable.
func (m *EFSM) SetIntVar(name string, v int) { m.Vars[name] = v }

// TimeVar reads a sim.Time extended state variable.
func (m *EFSM) TimeVar(name string) sim.Time {
	v, _ := m.Vars[name].(sim.Time)
	return v
}

// SetTimeVar writes a sim.Time extended state variable.
func (m *EFSM) SetTimeVar(name string, v sim.Time) { m.Vars[name] = v }
