package netsim

import (
	"strings"
	"testing"

	"castanet/internal/sim"
)

func TestProbeSummaryAndSeries(t *testing.T) {
	p := &Probe{Name: "delay", Capture: 8}
	for i := 1; i <= 10; i++ {
		p.Record(sim.Time(i)*sim.Microsecond, float64(i))
	}
	if p.Stats().N() != 10 {
		t.Fatalf("n = %d", p.Stats().N())
	}
	if p.Stats().Mean() != 5.5 {
		t.Errorf("mean = %v", p.Stats().Mean())
	}
	if len(p.Series()) != 8 {
		t.Errorf("series capped at %d, want 8", len(p.Series()))
	}
	var buf strings.Builder
	if err := p.WriteSeries(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.000001000 1") {
		t.Errorf("series export:\n%s", buf.String())
	}
}

func TestProbeSetReport(t *testing.T) {
	set := NewProbeSet()
	set.Get("b.second").Record(0, 2)
	set.Get("a.first").Record(0, 1)
	if same := set.Get("a.first"); same != set.Get("a.first") {
		t.Fatal("Get not idempotent")
	}
	var buf strings.Builder
	if err := set.Report(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a.first") || !strings.Contains(out, "b.second") {
		t.Errorf("report:\n%s", out)
	}
	// Sorted output: a.first before b.second.
	if strings.Index(out, "a.first") > strings.Index(out, "b.second") {
		t.Error("report not sorted")
	}
}

func TestInstrumentSink(t *testing.T) {
	n := New(1)
	set := NewProbeSet()
	src := &Source{Gen: fixedGen{sim.Millisecond}, Make: simplePacket(424), Limit: 10}
	sink := &Sink{}
	var viaPrev int
	sink.OnPacket = func(ctx *Ctx, pkt *Packet, port int) { viaPrev++ }
	InstrumentSink(sink, set, "port0")
	a := n.Node("src", src)
	b := n.Node("sink", sink)
	n.Connect(a, 0, b, 0, LinkParams{Delay: 7 * sim.Microsecond})
	n.Run(sim.Second)
	d := set.Get("port0.delay").Stats()
	if d.N() != 10 {
		t.Fatalf("delay samples = %d", d.N())
	}
	if d.Mean() < 6.9e-6 || d.Mean() > 7.1e-6 {
		t.Errorf("delay mean = %v", d.Mean())
	}
	if s := set.Get("port0.size").Stats(); s.Mean() != 424 {
		t.Errorf("size mean = %v", s.Mean())
	}
	if viaPrev != 10 {
		t.Errorf("previous OnPacket displaced: %d", viaPrev)
	}
}

func TestInstrumentQueue(t *testing.T) {
	n := New(1)
	set := NewProbeSet()
	src := &Source{Gen: fixedGen{sim.Millisecond}, Make: simplePacket(0), Limit: 50}
	q := &Queue{ServiceTime: 3 * sim.Millisecond, Capacity: 2}
	sink := &Sink{}
	a := n.Node("src", src)
	b := n.Node("q", q)
	c := n.Node("sink", sink)
	n.Connect(a, 0, b, 0, LinkParams{})
	n.Connect(b, 0, c, 0, LinkParams{})
	InstrumentQueue(n, q, set, "q0", 5*sim.Millisecond)
	n.Run(200 * sim.Millisecond)
	occ := set.Get("q0.occupancy").Stats()
	if occ.N() == 0 {
		t.Fatal("no occupancy samples")
	}
	if occ.Max() > 2 {
		t.Errorf("occupancy max %v exceeds capacity", occ.Max())
	}
	drops := set.Get("q0.drops").Stats()
	if drops.Max() == 0 {
		t.Error("overloaded queue recorded no drops")
	}
}
