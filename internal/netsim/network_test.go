package netsim

import (
	"math"
	"testing"

	"castanet/internal/sim"
)

// fixedGen emits at a constant interval.
type fixedGen struct{ d sim.Duration }

func (g fixedGen) Next(*sim.RNG) sim.Duration { return g.d }

func simplePacket(size int) PacketFactory {
	return func(ctx *Ctx, i uint64) *Packet {
		return ctx.Net().NewPacket("test", i, size)
	}
}

func TestSourceToSink(t *testing.T) {
	n := New(1)
	src := &Source{Gen: fixedGen{sim.Millisecond}, Make: simplePacket(424), Limit: 10}
	sink := &Sink{}
	a := n.Node("src", src)
	b := n.Node("sink", sink)
	n.Connect(a, 0, b, 0, LinkParams{Delay: 5 * sim.Microsecond})
	n.Run(sim.Second)
	if sink.Received != 10 {
		t.Fatalf("received = %d, want 10", sink.Received)
	}
	// End-to-end delay = propagation only (infinite rate).
	if d := sink.Delay.Mean(); math.Abs(d-5e-6) > 1e-12 {
		t.Errorf("mean delay = %v, want 5us", d)
	}
	if src.Emitted != 10 {
		t.Errorf("emitted = %d", src.Emitted)
	}
}

func TestLinkTransmissionDelay(t *testing.T) {
	// 424-bit cell at 155.52 Mb/s takes ~2.726us to transmit.
	n := New(1)
	src := &Source{Gen: fixedGen{sim.Second}, Make: simplePacket(424), Limit: 1}
	sink := &Sink{}
	a := n.Node("src", src)
	b := n.Node("sink", sink)
	n.Connect(a, 0, b, 0, LinkParams{RateBps: 155.52e6})
	n.Run(10 * sim.Second)
	want := 424.0 / 155.52e6
	if d := sink.Delay.Mean(); math.Abs(d-want) > 1e-9 {
		t.Errorf("delay = %v, want %v", d, want)
	}
}

func TestLinkSerialization(t *testing.T) {
	// Two packets sent back-to-back on a slow link: the second waits for
	// the first to finish transmitting.
	n := New(1)
	sink := &Sink{}
	var deliveries []sim.Time
	sink.OnPacket = func(ctx *Ctx, pkt *Packet, port int) {
		deliveries = append(deliveries, ctx.Now())
	}
	send2 := &Func{OnInit: func(ctx *Ctx) {
		ctx.SetTimer(0, nil)
	}, OnTimer: func(ctx *Ctx, tag interface{}) {
		ctx.Send(ctx.Net().NewPacket("p", 1, 1000), 0)
		ctx.Send(ctx.Net().NewPacket("p", 2, 1000), 0)
	}}
	a := n.Node("a", send2)
	b := n.Node("b", sink)
	n.Connect(a, 0, b, 0, LinkParams{RateBps: 1e6}) // 1ms per 1000-bit pkt
	n.Run(sim.Second)
	if len(deliveries) != 2 {
		t.Fatalf("deliveries = %d", len(deliveries))
	}
	gap := deliveries[1] - deliveries[0]
	if gap != sim.Millisecond {
		t.Errorf("inter-delivery gap = %v, want 1ms (serialized)", gap)
	}
}

func TestQueueServiceAndDrop(t *testing.T) {
	n := New(1)
	// Source emits every 1ms; queue serves one per 10ms with capacity 3:
	// most packets drop.
	src := &Source{Gen: fixedGen{sim.Millisecond}, Make: simplePacket(0), Limit: 20}
	q := &Queue{Capacity: 3, ServiceTime: 10 * sim.Millisecond}
	sink := &Sink{}
	a := n.Node("src", src)
	b := n.Node("q", q)
	c := n.Node("sink", sink)
	n.Connect(a, 0, b, 0, LinkParams{})
	n.Connect(b, 0, c, 0, LinkParams{})
	n.Run(sim.Second)
	if q.Served+q.Dropped != 20 {
		t.Fatalf("served %d + dropped %d != 20", q.Served, q.Dropped)
	}
	if q.Dropped == 0 {
		t.Error("overloaded finite queue dropped nothing")
	}
	if sink.Received != q.Served {
		t.Errorf("sink %d != served %d", sink.Received, q.Served)
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	n := New(1)
	src := &Source{Gen: fixedGen{sim.Microsecond}, Make: simplePacket(0), Limit: 50}
	q := &Queue{ServiceTime: 10 * sim.Microsecond}
	sink := &Sink{}
	var order []uint64
	sink.OnPacket = func(ctx *Ctx, pkt *Packet, port int) {
		order = append(order, pkt.Data.(uint64))
	}
	a := n.Node("src", src)
	b := n.Node("q", q)
	c := n.Node("sink", sink)
	n.Connect(a, 0, b, 0, LinkParams{})
	n.Connect(b, 0, c, 0, LinkParams{})
	n.Run(sim.Second)
	if len(order) != 50 {
		t.Fatalf("received %d", len(order))
	}
	for i, v := range order {
		if v != uint64(i) {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	n := New(1)
	n.Node("x", &Sink{})
	defer func() {
		if recover() == nil {
			t.Error("duplicate node name did not panic")
		}
	}()
	n.Node("x", &Sink{})
}

func TestSendUnconnectedPanics(t *testing.T) {
	n := New(1)
	bad := &Func{OnInit: func(ctx *Ctx) { ctx.SetTimer(0, nil) },
		OnTimer: func(ctx *Ctx, tag interface{}) {
			ctx.Send(ctx.Net().NewPacket("p", nil, 0), 3)
		}}
	n.Node("bad", bad)
	defer func() {
		if recover() == nil {
			t.Error("send on unconnected port did not panic")
		}
	}()
	n.Run(sim.Second)
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (uint64, float64) {
		n := New(99)
		src := &Source{Gen: expGen{}, Make: simplePacket(424), Limit: 500}
		q := &Queue{RateBps: 2e6}
		sink := &Sink{}
		a := n.Node("src", src)
		b := n.Node("q", q)
		c := n.Node("sink", sink)
		n.Connect(a, 0, b, 0, LinkParams{})
		n.Connect(b, 0, c, 0, LinkParams{})
		n.Run(sim.Never)
		return sink.Received, sink.Delay.Mean()
	}
	r1, d1 := run()
	r2, d2 := run()
	if r1 != r2 || d1 != d2 {
		t.Fatalf("same seed diverged: (%d,%v) vs (%d,%v)", r1, d1, r2, d2)
	}
}

type expGen struct{}

func (expGen) Next(r *sim.RNG) sim.Duration { return sim.FromSeconds(r.Exp(1e-3)) }
