package sim

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator collects streaming summary statistics (Welford's algorithm,
// numerically stable) for scalar observations: cell delays, queue
// occupancies, message sizes.
type Accumulator struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() uint64 { return a.n }

// Mean returns the sample mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Var returns the sample variance (0 for fewer than two observations).
func (a *Accumulator) Var() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Stddev returns the sample standard deviation.
func (a *Accumulator) Stddev() float64 { return math.Sqrt(a.Var()) }

// Min returns the smallest observation (0 when empty).
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return 0
	}
	return a.min
}

// Max returns the largest observation (0 when empty).
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return 0
	}
	return a.max
}

// String summarizes the accumulator for reports.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g",
		a.n, a.Mean(), a.Stddev(), a.Min(), a.Max())
}

// TimeWeighted tracks the time-average of a piecewise-constant quantity
// such as a queue length: each Set records the value holding from the given
// time onward.
type TimeWeighted struct {
	first   Time
	last    Time
	value   float64
	area    float64
	started bool
	max     float64
}

// Set records that the quantity changed to v at time t.
func (w *TimeWeighted) Set(t Time, v float64) {
	if w.started {
		w.area += w.value * float64(t-w.last)
	} else {
		w.first = t
	}
	w.started = true
	w.last = t
	w.value = v
	if v > w.max {
		w.max = v
	}
}

// Average returns the time average over [first Set, t]. Before the first
// Set it returns 0; at or before the first observation it returns the
// current value.
func (w *TimeWeighted) Average(t Time) float64 {
	if !w.started {
		return 0
	}
	elapsed := float64(t - w.first)
	if elapsed <= 0 {
		return w.value
	}
	area := w.area
	if t > w.last {
		area += w.value * float64(t-w.last)
	}
	return area / elapsed
}

// Max returns the maximum value ever set.
func (w *TimeWeighted) Max() float64 { return w.max }

// Histogram is a fixed-bucket histogram for latency/occupancy profiles in
// experiment reports.
type Histogram struct {
	Bounds []float64 // ascending upper bounds; last bucket is overflow
	counts []uint64
	n      uint64
}

// NewHistogram returns a histogram with the given ascending bucket upper
// bounds. Values above the last bound land in an overflow bucket.
func NewHistogram(bounds ...float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("sim: histogram bounds must ascend")
	}
	return &Histogram{Bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Add records an observation.
func (h *Histogram) Add(x float64) {
	i := sort.SearchFloat64s(h.Bounds, x)
	h.counts[i]++
	h.n++
}

// Count returns the count in bucket i (len(Bounds) is the overflow bucket).
func (h *Histogram) Count(i int) uint64 { return h.counts[i] }

// N returns the total number of observations.
func (h *Histogram) N() uint64 { return h.n }

// Quantile returns an approximate q-quantile (bucket upper bound
// containing the quantile; +Inf for the overflow bucket).
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := uint64(q * float64(h.n))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			if i == len(h.Bounds) {
				return math.Inf(1)
			}
			return h.Bounds[i]
		}
	}
	return math.Inf(1)
}
