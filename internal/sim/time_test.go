package sim

import (
	"testing"
	"time"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{500, "500ps"},
		{Nanosecond, "1ns"},
		{1500 * Picosecond, "1.5ns"},
		{Microsecond, "1us"},
		{2730 * Nanosecond, "2.73us"},
		{Millisecond, "1ms"},
		{Second, "1s"},
		{Never, "never"},
		{-Microsecond, "-1us"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestClockPeriod(t *testing.T) {
	if p := ClockPeriod(20e6); p != 50*Nanosecond {
		t.Errorf("ClockPeriod(20MHz) = %v, want 50ns", p)
	}
	if p := ClockPeriod(1e9); p != Nanosecond {
		t.Errorf("ClockPeriod(1GHz) = %v, want 1ns", p)
	}
	defer func() {
		if recover() == nil {
			t.Error("ClockPeriod(0) did not panic")
		}
	}()
	ClockPeriod(0)
}

func TestSecondsRoundTrip(t *testing.T) {
	x := FromSeconds(2.726e-6)
	if got := x.Seconds(); got < 2.725e-6 || got > 2.727e-6 {
		t.Errorf("round trip = %g", got)
	}
	if d := (1500 * Microsecond).Std(); d != 1500*time.Microsecond {
		t.Errorf("Std = %v", d)
	}
}
