package sim

// Event is a scheduled callback. Events are ordered by time stamp; events
// with equal time stamps execute in the order they were scheduled, which
// makes runs reproducible regardless of map iteration or goroutine timing.
type Event struct {
	At   Time
	Fn   func()
	seq  uint64
	pos  int // index in the heap, -1 when not queued
	dead bool
}

// Cancelled reports whether the event was cancelled before execution.
func (e *Event) Cancelled() bool { return e.dead }

// Cancel removes the event from its queue. Cancelling an already executed
// or cancelled event is a no-op.
func (e *Event) Cancel() { e.dead = true }

// eventQueue is a binary min-heap keyed on (At, seq). A hand-rolled heap
// (rather than container/heap) avoids the interface boxing on every
// operation; the event queue is the hottest structure in the kernel.
type eventQueue struct {
	items []*Event
	nseq  uint64
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) push(e *Event) {
	e.seq = q.nseq
	q.nseq++
	e.pos = len(q.items)
	q.items = append(q.items, e)
	q.up(e.pos)
}

// peek returns the earliest live event without removing it, or nil.
func (q *eventQueue) peek() *Event {
	q.drain()
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// pop removes and returns the earliest live event, or nil when empty.
func (q *eventQueue) pop() *Event {
	q.drain()
	if len(q.items) == 0 {
		return nil
	}
	return q.remove(0)
}

// drain discards cancelled events sitting at the head so that peek/pop see
// a live event. Cancelled events elsewhere in the heap are dropped lazily
// when they surface.
func (q *eventQueue) drain() {
	for len(q.items) > 0 && q.items[0].dead {
		q.remove(0)
	}
}

func (q *eventQueue) remove(i int) *Event {
	e := q.items[i]
	last := len(q.items) - 1
	q.items[i] = q.items[last]
	q.items[i].pos = i
	q.items[last] = nil
	q.items = q.items[:last]
	if i < last {
		q.down(i)
		q.up(i)
	}
	e.pos = -1
	return e
}

func (q *eventQueue) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (q *eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *eventQueue) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}

func (q *eventQueue) swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].pos = i
	q.items[j].pos = j
}
