// Package sim provides the generic discrete-event simulation kernel that
// underlies every engine in the co-verification environment: the OPNET-like
// network simulator (package netsim), the VHDL-like hardware simulator
// (package hdl) and the hardware test board model (package board).
//
// The kernel is deliberately small: simulated time, a deterministic event
// queue, a scheduler, reproducible random sources and statistics
// accumulators. Determinism is a hard requirement — the co-verification
// flow compares a device under test against a reference model event by
// event, so two runs with the same seed must be bit-for-bit identical.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, measured in integer picoseconds.
//
// Picosecond resolution matches what VHDL simulators use by default and is
// fine enough to express both the network simulator's cell-time granularity
// (microseconds) and the hardware simulator's clock granularity
// (nanoseconds) without rounding. An int64 of picoseconds covers about 106
// days of simulated time, far beyond any co-verification run.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration = Time

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Never is a sentinel meaning "no scheduled time". It compares greater than
// every valid Time.
const Never Time = 1<<63 - 1

// String formats the time with an auto-selected unit, e.g. "2.73us".
func (t Time) String() string {
	switch {
	case t == Never:
		return "never"
	case t < 0:
		return "-" + (-t).String()
	case t == 0:
		return "0s"
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return trimUnit(float64(t)/float64(Nanosecond), "ns")
	case t < Millisecond:
		return trimUnit(float64(t)/float64(Microsecond), "us")
	case t < Second:
		return trimUnit(float64(t)/float64(Millisecond), "ms")
	default:
		return trimUnit(float64(t)/float64(Second), "s")
	}
}

func trimUnit(v float64, unit string) string {
	s := fmt.Sprintf("%.3f", v)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s + unit
}

// Seconds returns the time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Std converts a simulated duration to a time.Duration (nanosecond
// resolution; sub-nanosecond remainders truncate).
func (t Time) Std() time.Duration { return time.Duration(int64(t/Nanosecond)) * time.Nanosecond }

// FromSeconds converts floating-point seconds to simulated Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// ClockPeriod returns the period of a clock of the given frequency in hertz.
// It panics if hz is not positive.
func ClockPeriod(hz float64) Duration {
	if hz <= 0 {
		panic("sim: clock frequency must be positive")
	}
	return Duration(float64(Second) / hz)
}
