package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(v)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if m := a.Mean(); math.Abs(m-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", m)
	}
	// Sample variance of that classic set is 32/7.
	if v := a.Var(); math.Abs(v-32.0/7.0) > 1e-12 {
		t.Errorf("Var = %v, want %v", v, 32.0/7.0)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Var() != 0 || a.Min() != 0 || a.Max() != 0 {
		t.Error("empty accumulator not all-zero")
	}
}

// Property: mean is always within [min, max].
func TestAccumulatorMeanBounded(t *testing.T) {
	f := func(xs []float64) bool {
		var a Accumulator
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			a.Add(x)
		}
		if a.N() > 0 {
			ok = a.Mean() >= a.Min()-1e-9 && a.Mean() <= a.Max()+1e-9
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeWeightedAverage(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 0)
	w.Set(10*Nanosecond, 4) // value 0 for 10ns
	w.Set(30*Nanosecond, 2) // value 4 for 20ns
	// value 2 for 10ns -> horizon 40ns
	got := w.Average(40 * Nanosecond)
	want := (0*10 + 4*20 + 2*10) / 40.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Average = %v, want %v", got, want)
	}
	if w.Max() != 4 {
		t.Errorf("Max = %v, want 4", w.Max())
	}
}

func TestTimeWeightedEdgeCases(t *testing.T) {
	var w TimeWeighted
	if w.Average(100) != 0 {
		t.Error("average before any Set should be 0")
	}
	w.Set(50*Nanosecond, 3)
	if w.Average(50*Nanosecond) != 3 {
		t.Error("average at first instant should be the value")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 9, 100} {
		h.Add(v)
	}
	if h.N() != 6 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Count(0) != 1 || h.Count(1) != 2 || h.Count(2) != 1 || h.Count(3) != 0 || h.Count(4) != 2 {
		t.Errorf("bucket counts wrong: %d %d %d %d %d",
			h.Count(0), h.Count(1), h.Count(2), h.Count(3), h.Count(4))
	}
	// Median of {0.5, 1.5, 1.7, 3, 9, 100} is 2.35, which falls in the
	// (2, 4] bucket, so the reported quantile is that bucket's bound.
	if q := h.Quantile(0.5); q != 4 {
		t.Errorf("median bucket = %v, want 4", q)
	}
	if q := h.Quantile(0.99); !math.IsInf(q, 1) {
		t.Errorf("p99 = %v, want +Inf (overflow bucket)", q)
	}
}

func TestHistogramUnsortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds did not panic")
		}
	}()
	NewHistogram(3, 1, 2)
}
