package sim

import (
	"fmt"
	"time"

	"castanet/internal/obs"
)

// Scheduler is a sequential discrete-event scheduler: an event list plus a
// simulation clock. Events execute in monotone non-decreasing time-stamp
// order; scheduling into the past is a programming error and panics, which
// mirrors the causality rule in Fig. 3 of the paper — an event list may
// receive events for the current or a future time, never for a past time.
type Scheduler struct {
	queue    eventQueue
	now      Time
	running  bool
	stopped  bool
	executed uint64

	// Observability handles (nil when not instrumented; all nil-safe).
	obsExecuted *obs.Counter
	obsPending  *obs.Gauge
	obsRatio    *obs.Gauge
	obsRate     *obs.Gauge
}

// Instrument registers the scheduler's metrics under the given prefix
// (e.g. "net.sched"): <prefix>.executed counts executed events,
// <prefix>.pending gauges the event-queue depth,
// <prefix>.sim_wall_ratio gauges simulated seconds advanced per wall
// second over the most recent Run/RunUntil — the headline "as fast as the
// hardware allows" figure — and <prefix>.rate.events_per_sec gauges events
// executed per wall second over the same span (the ".rate." segment routes
// it into the /profile endpoint's sim-rate table). A nil registry leaves
// the scheduler uninstrumented at zero cost beyond one pointer test per
// event.
func (s *Scheduler) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	s.obsExecuted = reg.Counter(prefix + ".executed")
	s.obsPending = reg.Gauge(prefix + ".pending")
	s.obsRatio = reg.Gauge(prefix + ".sim_wall_ratio")
	s.obsRate = reg.Gauge(prefix + ".rate.events_per_sec")
}

// NewScheduler returns a scheduler with the clock at time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Executed returns how many events have been executed so far.
func (s *Scheduler) Executed() uint64 { return s.executed }

// Pending returns the number of events in the queue, including events that
// were cancelled but not yet discarded.
func (s *Scheduler) Pending() int { return s.queue.Len() }

// At schedules fn at absolute time t. It returns the event handle, which
// may be used to cancel the event.
func (s *Scheduler) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling into the past: now=%v at=%v", s.now, t))
	}
	if fn == nil {
		panic("sim: scheduling nil function")
	}
	e := &Event{At: t, Fn: fn}
	s.queue.push(e)
	return e
}

// After schedules fn after the given delay from the current time.
func (s *Scheduler) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// NextTime returns the time stamp of the earliest pending event, or Never
// when the queue is empty.
func (s *Scheduler) NextTime() Time {
	e := s.queue.peek()
	if e == nil {
		return Never
	}
	return e.At
}

// Step executes the single earliest event. It reports whether an event was
// executed (false when the queue is empty or the scheduler was stopped).
func (s *Scheduler) Step() bool {
	if s.stopped {
		return false
	}
	e := s.queue.pop()
	if e == nil {
		return false
	}
	s.now = e.At
	s.executed++
	s.obsExecuted.Inc()
	e.Fn()
	return true
}

// Run executes events until the queue is empty or Stop is called. It
// returns the final simulated time.
func (s *Scheduler) Run() Time {
	return s.RunUntil(Never)
}

// RunUntil executes events whose time stamp is <= limit, then advances the
// clock to limit if any later events remain pending (so a subsequent
// RunUntil continues from there). It returns the current time.
func (s *Scheduler) RunUntil(limit Time) Time {
	if s.running {
		panic("sim: re-entrant Run")
	}
	s.running = true
	defer func() { s.running = false }()
	var wallStart time.Time
	simStart := s.now
	execStart := s.executed
	if s.obsRatio != nil {
		wallStart = time.Now()
	}
	s.stopped = false
	for !s.stopped {
		e := s.queue.peek()
		if e == nil || e.At > limit {
			break
		}
		s.Step()
	}
	if limit != Never && s.now < limit {
		s.now = limit
	}
	if s.obsRatio != nil {
		if wall := time.Since(wallStart).Seconds(); wall > 0 {
			s.obsRatio.Set((s.now - simStart).Seconds() / wall)
			s.obsRate.Set(float64(s.executed-execStart) / wall)
		}
		s.obsPending.Set(float64(s.queue.Len()))
	}
	return s.now
}

// Stop makes the current Run/RunUntil return after the in-flight event
// completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Advance moves the clock forward to t without executing anything. It is
// used by the co-simulation entity when the synchronization protocol grants
// a timing window that ends beyond the last local event. Advancing past
// pending events or backwards panics.
func (s *Scheduler) Advance(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("sim: Advance backwards: now=%v target=%v", s.now, t))
	}
	if next := s.NextTime(); next < t {
		panic(fmt.Sprintf("sim: Advance(%v) would skip pending event at %v", t, next))
	}
	s.now = t
}
