package sim

import (
	"testing"
	"testing/quick"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30*Nanosecond, func() { got = append(got, 3) })
	s.At(10*Nanosecond, func() { got = append(got, 1) })
	s.At(20*Nanosecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*Nanosecond {
		t.Fatalf("Now = %v, want 30ns", s.Now())
	}
}

func TestSchedulerFIFOAtSameTime(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5*Nanosecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-timestamp events not FIFO: got[%d]=%d", i, v)
		}
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		s.At(5*Nanosecond, func() {})
	})
	s.Run()
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.At(10*Nanosecond, func() { fired++ })
	s.At(20*Nanosecond, func() { fired++ })
	s.At(30*Nanosecond, func() { fired++ })
	s.RunUntil(20 * Nanosecond)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if s.Now() != 20*Nanosecond {
		t.Fatalf("Now = %v, want 20ns", s.Now())
	}
	s.RunUntil(25 * Nanosecond)
	if s.Now() != 25*Nanosecond {
		t.Fatalf("Now = %v, want 25ns (clock advances to limit)", s.Now())
	}
	s.Run()
	if fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.At(10*Nanosecond, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestSchedulerCancelDuringRun(t *testing.T) {
	s := NewScheduler()
	fired := false
	var victim *Event
	s.At(5*Nanosecond, func() { victim.Cancel() })
	victim = s.At(10*Nanosecond, func() { fired = true })
	s.Run()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.At(10*Nanosecond, func() { fired++; s.Stop() })
	s.At(20*Nanosecond, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Fatalf("fired = %d after Stop, want 1", fired)
	}
	// Run resumes after a Stop.
	s.Run()
	if fired != 2 {
		t.Fatalf("fired = %d after resume, want 2", fired)
	}
}

func TestSchedulerAdvance(t *testing.T) {
	s := NewScheduler()
	s.Advance(15 * Nanosecond)
	if s.Now() != 15*Nanosecond {
		t.Fatalf("Now = %v, want 15ns", s.Now())
	}
	s.At(20*Nanosecond, func() {})
	defer func() {
		if recover() == nil {
			t.Error("Advance past pending event did not panic")
		}
	}()
	s.Advance(25 * Nanosecond)
}

func TestSchedulerSelfScheduling(t *testing.T) {
	s := NewScheduler()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 1000 {
			s.After(Nanosecond, tick)
		}
	}
	s.After(Nanosecond, tick)
	s.Run()
	if n != 1000 {
		t.Fatalf("ticks = %d, want 1000", n)
	}
	if s.Now() != 1000*Nanosecond {
		t.Fatalf("Now = %v, want 1us", s.Now())
	}
	if s.Executed() != 1000 {
		t.Fatalf("Executed = %d, want 1000", s.Executed())
	}
}

// Property: for any set of delays, events execute in sorted order and the
// clock never moves backwards.
func TestSchedulerMonotoneProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewScheduler()
		var times []Time
		for _, d := range delays {
			at := Time(d) * Nanosecond
			s.At(at, func() { times = append(times, s.Now()) })
		}
		s.Run()
		if len(times) != len(delays) {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueInterleavedPushPop(t *testing.T) {
	var q eventQueue
	rng := NewRNG(7)
	var popped []Time
	live := 0
	for i := 0; i < 5000; i++ {
		if live == 0 || rng.Bool(0.6) {
			q.push(&Event{At: Time(rng.Intn(1000))})
			live++
		} else {
			e := q.pop()
			if e == nil {
				t.Fatal("pop returned nil with live events")
			}
			popped = append(popped, e.At)
			live--
		}
	}
	for q.Len() > 0 {
		popped = append(popped, q.pop().At)
	}
	// Within any window bounded by a pop, later pops at the same instant may
	// be smaller only if pushed later; global order is not sorted, but a
	// pop must never return something greater than a still-queued earlier
	// event. Easiest strong check: heap pops from a static set are sorted.
	var q2 eventQueue
	for _, at := range popped {
		q2.push(&Event{At: at})
	}
	prev := Time(-1)
	for q2.Len() > 0 {
		e := q2.pop()
		if e.At < prev {
			t.Fatalf("heap order violated: %v after %v", e.At, prev)
		}
		prev = e.At
	}
}

// BenchmarkSchedulerChurn measures push/pop through the event heap at a
// realistic pending-set size.
func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	for i := 0; i < 1000; i++ {
		s.After(Duration(i)*Microsecond, fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(1100*Microsecond, fn)
		s.Step()
	}
}
