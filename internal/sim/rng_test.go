package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGSeedsDecorrelated(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between adjacent seeds", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(7)
	var acc Accumulator
	for i := 0; i < 200000; i++ {
		acc.Add(r.Exp(3.0))
	}
	if m := acc.Mean(); math.Abs(m-3.0) > 0.05 {
		t.Errorf("Exp mean = %v, want ~3.0", m)
	}
}

func TestRNGGeometricMean(t *testing.T) {
	r := NewRNG(9)
	var acc Accumulator
	for i := 0; i < 200000; i++ {
		acc.Add(float64(r.Geometric(5.0)))
	}
	if m := acc.Mean(); math.Abs(m-5.0) > 0.1 {
		t.Errorf("Geometric mean = %v, want ~5.0", m)
	}
	if acc.Min() < 1 {
		t.Errorf("Geometric produced %v < 1", acc.Min())
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(11)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit only %d distinct values", len(seen))
	}
}

func TestRNGNorm(t *testing.T) {
	r := NewRNG(13)
	var acc Accumulator
	for i := 0; i < 100000; i++ {
		acc.Add(r.Norm(10, 2))
	}
	if math.Abs(acc.Mean()-10) > 0.05 {
		t.Errorf("Norm mean = %v", acc.Mean())
	}
	if math.Abs(acc.Stddev()-2) > 0.05 {
		t.Errorf("Norm stddev = %v", acc.Stddev())
	}
}

func TestDeriveSeedDeterministicAndDecorrelated(t *testing.T) {
	if DeriveSeed(1, 0) != DeriveSeed(1, 0) {
		t.Fatal("DeriveSeed is not a pure function of (campaign, index)")
	}
	// Neighbouring indices under one campaign seed, and the same index
	// under neighbouring campaign seeds, must all land on distinct seeds
	// whose streams don't collide.
	seen := make(map[uint64]bool)
	for campaign := uint64(1); campaign <= 4; campaign++ {
		for index := uint64(0); index < 1000; index++ {
			s := DeriveSeed(campaign, index)
			if seen[s] {
				t.Fatalf("seed collision at campaign=%d index=%d", campaign, index)
			}
			seen[s] = true
		}
	}
	a, b := NewRNG(DeriveSeed(1, 0)), NewRNG(DeriveSeed(1, 1))
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			t.Fatal("adjacent run seeds produced colliding streams")
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(5)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("split children correlated")
	}
}
