package sim

import "math"

// RNG is a small, explicit-state pseudo-random generator (splitmix64 +
// xoshiro256** style single stream). The kernel carries its own generator
// instead of math/rand so that traffic models are reproducible by
// construction: every source owns an RNG derived from a user seed, and the
// stream is independent of global state and of the Go release.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with the given value. Distinct seeds
// give decorrelated streams (seeds pass through splitmix64 twice before
// use).
func NewRNG(seed uint64) *RNG {
	r := &RNG{state: seed}
	r.next()
	r.next()
	return r
}

// Split derives an independent child generator, used to give each traffic
// source its own stream from one experiment seed.
func (r *RNG) Split() *RNG { return NewRNG(r.next()) }

// DeriveSeed hashes a (campaign seed, run index) pair into the seed of one
// campaign run. Both words pass through the splitmix64 core, so per-run
// streams are decorrelated from each other and from the campaign seed
// itself, yet depend only on the pair: any run of a campaign is replayable
// in isolation from its printed (seed, index) without executing the runs
// before it.
func DeriveSeed(campaign, index uint64) uint64 {
	r := RNG{state: campaign}
	h := r.next()
	r.state ^= index
	r.next()
	return r.next() ^ h
}

// next is splitmix64.
func (r *RNG) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 { return r.next() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.next() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Geometric returns a geometrically distributed count >= 1 with the given
// mean (mean must be >= 1).
func (r *RNG) Geometric(mean float64) int {
	if mean < 1 {
		panic("sim: geometric mean must be >= 1")
	}
	if mean == 1 {
		return 1
	}
	p := 1 / mean
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return 1 + int(math.Log(u)/math.Log(1-p))
}

// Norm returns a normally distributed value (Box–Muller).
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return mean + stddev*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }
