package faultsim

import (
	"errors"
	"testing"
	"time"

	"castanet/internal/cosim"
	"castanet/internal/coverify"
	"castanet/internal/ipc"
	"castanet/internal/sim"
)

// fastEnvelope keeps retransmission timers tight so lossy-link sweeps
// finish in test time.
func fastEnvelope() *ipc.ReliableConfig {
	return &ipc.ReliableConfig{
		MaxRetries: 20,
		RetryBase:  time.Millisecond,
		RetryCap:   8 * time.Millisecond,
		OpDeadline: 10 * time.Second,
	}
}

func TestChannelLossAndCorruptionMasked(t *testing.T) {
	// Acceptance: 5% drop plus 1% corruption on both directions must
	// produce a comparison result bit-identical to the clean-link run.
	cfg := coverify.SwitchRigConfig{
		Seed:     7,
		Traffic:  workload(0, 1),
		Reliable: fastEnvelope(),
	}
	faults := []ChannelFault{{Name: "drop5-corrupt1", Fault: ipc.FaultConfig{
		Seed: 99,
		Send: ipc.DirFaults{Drop: 0.05, Corrupt: 0.01},
		Recv: ipc.DirFaults{Drop: 0.05, Corrupt: 0.01},
	}}}
	results, want, err := ChannelCampaign(cfg, 2*sim.Millisecond, faults)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Aborted {
		t.Fatalf("recoverable loss aborted the run: %v", r.Err)
	}
	if !r.Identical {
		t.Fatalf("degraded channel leaked into the verdict:\n got %s\nwant %s", r.Report, want)
	}
}

func TestChannelPartitionAbortsTyped(t *testing.T) {
	// Acceptance: a permanent partition must surface as a typed,
	// timeout-classed CouplingError from the rig's Run — no panic, no
	// hang — within the configured retry budget.
	cfg := coverify.SwitchRigConfig{
		Seed:     7,
		Traffic:  workload(0),
		Deadline: 2 * time.Second,
		Reliable: &ipc.ReliableConfig{
			MaxRetries: 5,
			RetryBase:  time.Millisecond,
			RetryCap:   8 * time.Millisecond,
		},
	}
	faults := []ChannelFault{{Name: "partition", Fault: ipc.FaultConfig{
		Seed: 99,
		Send: ipc.DirFaults{PartitionAfter: 10},
	}}}

	type outcome struct {
		results []ChannelResult
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		results, _, err := ChannelCampaign(cfg, 2*sim.Millisecond, faults)
		done <- outcome{results, err}
	}()
	var out outcome
	select {
	case out = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("partitioned run hung: watchdog/retry budget never fired")
	}
	if out.err != nil {
		t.Fatal(out.err)
	}
	r := out.results[0]
	if !r.Aborted {
		t.Fatalf("partitioned run completed: %s", r.Report)
	}
	var ce *cosim.CouplingError
	if !errors.As(r.Err, &ce) {
		t.Fatalf("abort error %v is not a CouplingError", r.Err)
	}
	if ce.Class != cosim.ClassTimeout && ce.Class != cosim.ClassClosed {
		t.Errorf("abort class %v, want timeout or closed", ce.Class)
	}
}

func TestDefaultChannelFaultSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	cfg := coverify.SwitchRigConfig{
		Seed:     7,
		Traffic:  workload(0, 1),
		Reliable: fastEnvelope(),
	}
	results, want, err := ChannelCampaign(cfg, 2*sim.Millisecond, DefaultChannelFaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		switch r.Name {
		case "partition":
			if !r.Aborted {
				t.Errorf("%s: completed, want clean abort (report %s)", r.Name, r.Report)
			}
		default:
			if r.Aborted {
				t.Errorf("%s: aborted (%v), want masked", r.Name, r.Err)
			} else if !r.Identical {
				t.Errorf("%s: diverged:\n got %s\nwant %s", r.Name, r.Report, want)
			}
		}
	}
}
