// Package faultsim measures the quality of a co-verification test bench
// the way silicon teams measure test quality: by fault injection. Each
// campaign plants one defect in the device's connection table (a wrong
// output port, a flipped identifier bit, a lost entry — the failure modes
// of a corrupted on-chip CAM), reruns the unchanged network-level test
// bench against the faulty device, and records whether the comparison
// engine caught it.
//
// Fault coverage quantifies the paper's central promise: test benches
// reused from the network level detect implementation defects — but only
// on connections the traffic actually exercises, which is exactly why
// test-bench construction (and its reuse across abstraction levels)
// matters.
package faultsim

import (
	"fmt"
	"strings"

	"castanet/internal/atm"
	"castanet/internal/coverify"
	"castanet/internal/dut"
	"castanet/internal/obs"
	"castanet/internal/sim"
)

// Fault is one plantable defect.
type Fault struct {
	Name string
	// VC is the connection whose table entry is corrupted.
	VC atm.VC
	// Mutate corrupts the table in place.
	Mutate func(tb *atm.Translator)
}

// EntryFaults enumerates the standard fault set for one connection-table
// entry, in Classes order: mis-routed output port, flipped output VCI
// bit, flipped output VPI bit, and a deleted entry (cell loss). The
// connection must exist in tb; unknown VCs return nil.
func EntryFaults(tb *atm.Translator, vc atm.VC) []Fault {
	route, ok := tb.Lookup(vc)
	if !ok {
		return nil
	}
	return []Fault{
		{
			Name: fmt.Sprintf("%v:wrong-port", vc),
			VC:   vc,
			Mutate: func(t *atm.Translator) {
				r := route
				r.Port = (r.Port + 1) % dut.SwitchPorts
				t.Remove(vc)
				t.Add(vc, r)
			},
		},
		{
			Name: fmt.Sprintf("%v:vci-bit-flip", vc),
			VC:   vc,
			Mutate: func(t *atm.Translator) {
				r := route
				r.Out.VCI ^= 0x04
				t.Remove(vc)
				t.Add(vc, r)
			},
		},
		{
			Name: fmt.Sprintf("%v:vpi-bit-flip", vc),
			VC:   vc,
			Mutate: func(t *atm.Translator) {
				r := route
				r.Out.VPI ^= 0x01
				t.Remove(vc)
				t.Add(vc, r)
			},
		},
		{
			Name: fmt.Sprintf("%v:entry-lost", vc),
			VC:   vc,
			Mutate: func(t *atm.Translator) {
				t.Remove(vc)
			},
		},
	}
}

// TableFaults enumerates the standard fault set for every entry of a
// connection table, in the table's deterministic (VPI, VCI) VC order.
func TableFaults(tb *atm.Translator) []Fault {
	var faults []Fault
	for _, vc := range tb.VCs() {
		faults = append(faults, EntryFaults(tb, vc)...)
	}
	return faults
}

// Result records one campaign run.
type Result struct {
	Fault    Fault
	Detected bool
}

// Campaign reruns the given test bench against one faulty device per
// fault (hardware-in-the-loop on the test board, the fast engine) and
// reports detection. The golden run must be clean or Campaign returns an
// error — an unhealthy test bench cannot measure anything.
func Campaign(cfg coverify.SwitchRigConfig, horizon sim.Time, faults []Fault) ([]Result, error) {
	// Golden run: the unfaulted device must pass.
	golden, err := coverify.NewBoardRig(cfg, 8192)
	if err != nil {
		return nil, err
	}
	if err := golden.Run(horizon); err != nil {
		return nil, err
	}
	if !golden.Cmp.Clean() {
		return nil, fmt.Errorf("faultsim: golden run not clean: %s", golden.Report())
	}

	results := make([]Result, 0, len(faults))
	for _, f := range faults {
		rig, err := coverify.NewBoardRig(cfg, 8192)
		if err != nil {
			return nil, err
		}
		// The reference keeps the intact table; only the "silicon" gets
		// the defect.
		poisoned := clone(rig.Cfg.Table)
		f.Mutate(poisoned)
		rig.Dev.Table = poisoned
		if err := rig.Run(horizon); err != nil {
			return nil, err
		}
		results = append(results, Result{Fault: f, Detected: !rig.Cmp.Clean()})
	}
	Cover(cfg.Cover, results)
	return results, nil
}

// faultClasses are the cross's fault-class axis, the suffixes TableFaults
// stamps into every fault name.
var faultClasses = []string{"wrong-port", "vci-bit-flip", "vpi-bit-flip", "entry-lost", "other"}

// Classes returns the standard table-fault class names in EntryFaults
// order (without the "other" catch-all) — the axis scenario generators
// select planted faults by.
func Classes() []string {
	return append([]string(nil), faultClasses[:4]...)
}

// class extracts the fault class from a fault name ("0/32:wrong-port" →
// "wrong-port"); names outside the standard set land in "other".
func class(name string) string {
	c := name
	if i := strings.LastIndex(name, ":"); i >= 0 {
		c = name[i+1:]
	}
	for _, known := range faultClasses {
		if c == known {
			return c
		}
	}
	return "other"
}

// coverCross returns the campaign's fault-coverage cross — fault class ×
// detection outcome under "faultsim.fault" — nil-safe like every cover
// handle.
func coverCross(c *obs.CoverRegistry) *obs.CoverCross {
	return c.Group("faultsim.fault").Cross("class_outcome",
		faultClasses, []string{"detected", "escaped"})
}

// Cover folds a campaign's results into the registry's fault-coverage
// cross: one hit per planted fault, binned by fault class and whether the
// comparison engine caught it.
func Cover(c *obs.CoverRegistry, results []Result) {
	x := coverCross(c)
	for _, r := range results {
		outcome := "escaped"
		if r.Detected {
			outcome = "detected"
		}
		x.Hit(class(r.Fault.Name), outcome)
	}
}

// CoverOne bins a single planted fault's outcome — the per-run variant
// of Cover for harnesses (like the scenario explorer) that plant one
// fault per run instead of sweeping a whole campaign.
func CoverOne(c *obs.CoverRegistry, faultName string, detected bool) {
	Cover(c, []Result{{Fault: Fault{Name: faultName}, Detected: detected}})
}

// clone deep-copies a translator.
func clone(tb *atm.Translator) *atm.Translator {
	out := atm.NewTranslator()
	for _, vc := range tb.VCs() {
		r, _ := tb.Lookup(vc)
		out.Add(vc, r)
	}
	return out
}

// Coverage summarizes a result set: detected count and fraction. It is
// computed from the same "faultsim.fault" cross bins a campaign
// accumulates, so the headline quality figure and the coverage artifact
// can never disagree.
func Coverage(results []Result) (detected int, fraction float64) {
	c := obs.NewCoverRegistry()
	Cover(c, results)
	for _, g := range c.Snapshot() {
		for _, p := range g.Points {
			for _, b := range p.Bins {
				if strings.HasSuffix(b.Label, "×detected") {
					detected += int(b.Hits)
				}
			}
		}
	}
	if len(results) == 0 {
		return 0, 0
	}
	return detected, float64(detected) / float64(len(results))
}

// Undetected lists the fault names that escaped.
func Undetected(results []Result) []string {
	var out []string
	for _, r := range results {
		if !r.Detected {
			out = append(out, r.Fault.Name)
		}
	}
	return out
}
