package faultsim

import (
	"strings"
	"testing"

	"castanet/internal/atm"
	"castanet/internal/coverify"
	"castanet/internal/dut"
	"castanet/internal/obs"
	"castanet/internal/sim"
	"castanet/internal/traffic"
)

// workload offers CBR traffic on the given ports, covering that port's
// four connections of the default table.
func workload(ports ...int) [dut.SwitchPorts]coverify.PortTraffic {
	var tr [dut.SwitchPorts]coverify.PortTraffic
	for _, p := range ports {
		tr[p] = coverify.PortTraffic{
			Model: traffic.NewCBR(100e3),
			VCs:   coverify.PortVCs(p),
			Cells: 24,
		}
	}
	return tr
}

func TestFaultEnumeration(t *testing.T) {
	tb := coverify.DefaultTable()
	faults := TableFaults(tb)
	// 16 entries x 4 fault classes.
	if len(faults) != 64 {
		t.Fatalf("faults = %d, want 64", len(faults))
	}
	seen := map[string]bool{}
	for _, f := range faults {
		if seen[f.Name] {
			t.Errorf("duplicate fault %q", f.Name)
		}
		seen[f.Name] = true
		// Every mutation changes the table relative to a fresh copy.
		fresh := coverify.DefaultTable()
		f.Mutate(fresh)
		r0, ok0 := coverify.DefaultTable().Lookup(f.VC)
		r1, ok1 := fresh.Lookup(f.VC)
		if ok0 == ok1 && r0 == r1 {
			t.Errorf("fault %q mutated nothing", f.Name)
		}
	}
}

func TestFullTrafficDetectsAllFaults(t *testing.T) {
	// Traffic exercising every connection: every planted fault must be
	// caught by the reused network-level test bench.
	cfg := coverify.SwitchRigConfig{Seed: 3, Traffic: workload(0, 1, 2, 3)}
	faults := TableFaults(coverify.DefaultTable())
	results, err := Campaign(cfg, 2*sim.Millisecond, faults)
	if err != nil {
		t.Fatal(err)
	}
	detected, frac := Coverage(results)
	if frac != 1.0 {
		t.Fatalf("coverage = %d/%d; escaped: %v",
			detected, len(results), Undetected(results))
	}
	// The same verdicts flow into the campaign registry's cover cross:
	// with full traffic every class×detected bin is hit and no escaped
	// bin is.
	cov := obs.NewCoverRegistry()
	Cover(cov, results)
	for _, g := range cov.Snapshot() {
		for _, p := range g.Points {
			for _, b := range p.Bins {
				switch {
				case strings.HasSuffix(b.Label, "×escaped") && b.Hits != 0:
					t.Errorf("bin %s = %d, want 0", b.Label, b.Hits)
				case strings.HasSuffix(b.Label, "×detected") &&
					!strings.HasPrefix(b.Label, "other") && b.Hits == 0:
					t.Errorf("bin %s unhit", b.Label)
				}
			}
		}
	}
}

func TestPartialTrafficMissesUnexercisedFaults(t *testing.T) {
	// Traffic on port 0 only: faults planted in other ports' connections
	// are invisible — test-bench coverage is a property of the traffic.
	cfg := coverify.SwitchRigConfig{Seed: 4, Traffic: workload(0)}
	faults := TableFaults(coverify.DefaultTable())
	results, err := Campaign(cfg, 2*sim.Millisecond, faults)
	if err != nil {
		t.Fatal(err)
	}
	detected, _ := Coverage(results)
	// Exactly the 16 faults on port 0's four connections are detectable.
	if detected != 16 {
		t.Fatalf("detected = %d, want 16", detected)
	}
	for _, name := range Undetected(results) {
		if strings.HasPrefix(name, "1.1") { // VPI 1 = port 0's connections
			t.Errorf("fault %q on exercised connection escaped", name)
		}
	}
}

func TestCampaignRejectsBrokenGolden(t *testing.T) {
	// A test bench whose golden run already fails cannot measure fault
	// coverage: overload the tiny FIFOs so cells drop in the golden run.
	cfg := coverify.SwitchRigConfig{
		Seed:   5,
		Switch: dut.SwitchConfig{InFifoCells: 1, OutFifoCells: 1},
	}
	for p := 0; p < dut.SwitchPorts; p++ {
		cfg.Traffic[p] = coverify.PortTraffic{
			Model: traffic.NewCBR(300e3),
			VCs:   []atm.VC{{VPI: byte(p + 1), VCI: 100}}, // all to output 0
			Cells: 60,
		}
	}
	if _, err := Campaign(cfg, sim.Millisecond, nil); err == nil {
		t.Fatal("broken golden run accepted")
	}
}
