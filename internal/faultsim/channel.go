package faultsim

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"castanet/internal/campaign"
	"castanet/internal/cosim"
	"castanet/internal/coverify"
	"castanet/internal/ipc"
	"castanet/internal/sim"
)

// ChannelFault is one link-fault scenario for the coupling channel — the
// complement of the table faults above: instead of planting defects in
// the device, it degrades the wire between the two simulators and asks
// whether the reliability envelope keeps the co-verification result
// trustworthy.
type ChannelFault struct {
	Name  string
	Fault ipc.FaultConfig
}

// ChannelResult records one sweep point.
type ChannelResult struct {
	ChannelFault
	// Identical: the run completed, the comparison engine stayed clean,
	// and the rig report is bit-identical to the clean-link golden run —
	// the degraded channel was fully masked.
	Identical bool
	// Aborted: the run terminated early with a typed coupling error
	// instead of delivering a (possibly silently wrong) result. This is
	// the correct outcome for unrecoverable faults such as a permanent
	// partition.
	Aborted bool
	// Err is the coupling error of an aborted run.
	Err error
	// Report is the completed run's rig report.
	Report string
}

// DefaultChannelFaults is the standard sweep: recoverable loss, noise,
// duplication and reordering (all of which the envelope must mask
// bit-exactly), plus a permanent partition (which it must turn into a
// clean abort).
func DefaultChannelFaults() []ChannelFault {
	return []ChannelFault{
		{Name: "drop5-corrupt1", Fault: ipc.FaultConfig{
			Seed: 1001,
			Send: ipc.DirFaults{Drop: 0.05, Corrupt: 0.01},
			Recv: ipc.DirFaults{Drop: 0.05, Corrupt: 0.01},
		}},
		{Name: "dup10", Fault: ipc.FaultConfig{
			Seed: 1002,
			Send: ipc.DirFaults{Dup: 0.1},
			Recv: ipc.DirFaults{Dup: 0.1},
		}},
		{Name: "delay-reorder", Fault: ipc.FaultConfig{
			Seed: 1003,
			Send: ipc.DirFaults{Delay: 0.2, DelaySlots: 3},
			Recv: ipc.DirFaults{Delay: 0.2, DelaySlots: 3},
		}},
		{Name: "partition", Fault: ipc.FaultConfig{
			Seed: 1004,
			Send: ipc.DirFaults{PartitionAfter: 40},
		}},
	}
}

// ChannelCampaign sweeps link-fault scenarios against the switch rig
// coupled over the reliability envelope. It first records a clean-link
// golden run (which must be clean or the campaign errors out), then
// reruns the identical workload per scenario. Every scenario must end in
// one of two acceptable states: a report bit-identical to the golden run,
// or a clean abort with a typed *cosim.CouplingError. An untyped failure
// or a completed-but-divergent result is reported in the ChannelResult
// for the caller to flag — divergence under a masked channel means the
// coupling leaked a fault into the verification verdict.
//
// The scenarios run concurrently on the campaign engine, one matrix cell
// per fault, each on a fresh rig stack; results come back slotted by run
// index so the returned slice order matches faults regardless of which
// shard finished first. Because every scenario shares cfg.Traffic, the
// traffic models must be stateless (CBR, Poisson) — stateful models would
// race across shards and already broke run-to-run reproducibility under
// the old serial sweep.
//
// cfg.Remote is forced on; a default reliability envelope is supplied
// when cfg.Reliable is nil.
func ChannelCampaign(cfg coverify.SwitchRigConfig, horizon sim.Time, faults []ChannelFault) ([]ChannelResult, string, error) {
	cfg.Remote = true
	if cfg.Reliable == nil {
		cfg.Reliable = &ipc.ReliableConfig{}
	}

	golden := coverify.NewSwitchRig(cfg)
	gerr := golden.Run(horizon)
	golden.Close()
	if gerr != nil {
		return nil, "", fmt.Errorf("faultsim: golden run failed: %w", gerr)
	}
	if !golden.Cmp.Clean() {
		return nil, "", fmt.Errorf("faultsim: golden run not clean: %s", golden.Report())
	}
	want := golden.Report()

	cells := make([]campaign.Cell, len(faults))
	for i, f := range faults {
		f := f
		cells[i] = campaign.Cell{Experiment: "channel", Fault: f.Name,
			Run: func(ctx context.Context, r *campaign.Run) error {
				fcfg := cfg
				fc := f.Fault
				fcfg.Fault = &fc
				rig := coverify.NewSwitchRig(fcfg)
				release := campaign.OnCancel(ctx, func() { rig.Close() })
				err := rig.Run(horizon)
				release()
				rig.Close()
				res := ChannelResult{ChannelFault: f, Err: err}
				if err != nil {
					var ce *cosim.CouplingError
					if !errors.As(err, &ce) {
						return fmt.Errorf("faultsim: scenario %q died with untyped error: %w", f.Name, err)
					}
					res.Aborted = true
				} else {
					res.Report = rig.Report()
					res.Identical = rig.Cmp.Clean() && res.Report == want
				}
				r.SetValue(res)
				return nil
			}}
	}

	results := make([]ChannelResult, len(faults))
	sum, err := campaign.Execute(context.Background(), campaign.Spec{
		Name:   "channel-faults",
		Seed:   cfg.Seed,
		Runs:   len(faults),
		Shards: min(len(faults), runtime.GOMAXPROCS(0)),
		Matrix: cells,
		OnResult: func(res campaign.Result) {
			if v, ok := res.Value.(ChannelResult); ok {
				results[res.Index] = v
			}
		},
	})
	if err != nil {
		return nil, want, err
	}
	if len(sum.Failures) > 0 {
		f := sum.Failures[0]
		return nil, want, f.Err
	}
	return results, want, nil
}
