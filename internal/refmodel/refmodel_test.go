package refmodel

import (
	"strings"
	"testing"

	"castanet/internal/atm"
	"castanet/internal/netsim"
	"castanet/internal/sim"
)

func refTable() *atm.Translator {
	tb := atm.NewTranslator()
	tb.Add(atm.VC{VPI: 1, VCI: 100}, atm.Route{Port: 2, Out: atm.VC{VPI: 9, VCI: 900}})
	tb.Add(atm.VC{VPI: 1, VCI: 101}, atm.Route{Port: 0, Out: atm.VC{VPI: 9, VCI: 901}})
	return tb
}

func TestSwitchRefForwardsAndTranslates(t *testing.T) {
	n := netsim.New(1)
	ref := &SwitchRef{Table: refTable()}
	var got []*atm.Cell
	var gotPorts []int
	ref.OnForward = func(ctx *netsim.Ctx, port int, c *atm.Cell) {
		got = append(got, c)
		gotPorts = append(gotPorts, port)
	}
	node := n.Node("sw", ref)
	sinks := make([]*netsim.Sink, 4)
	for p := 0; p < 4; p++ {
		sinks[p] = &netsim.Sink{}
		out := n.Node(string(rune('a'+p)), sinks[p])
		n.Connect(node, p, out, 0, netsim.LinkParams{})
	}
	n.Init()
	cell := &atm.Cell{Header: atm.Header{VPI: 1, VCI: 100, PTI: 2, CLP: 1}, Seq: 5}
	node.Inject(n.NewPacket("cell", cell, 424), 0)
	n.Run(sim.Millisecond)
	if len(got) != 1 || gotPorts[0] != 2 {
		t.Fatalf("forwarded %d cells to %v", len(got), gotPorts)
	}
	c := got[0]
	if c.VPI != 9 || c.VCI != 900 {
		t.Errorf("translation = %v", c.VC())
	}
	if c.PTI != 2 || c.CLP != 1 {
		t.Errorf("PTI/CLP not preserved: %d/%d", c.PTI, c.CLP)
	}
	if sinks[2].Received != 1 {
		t.Errorf("sink 2 received %d", sinks[2].Received)
	}
	// Original cell must not be mutated (the model clones).
	if cell.VPI != 1 {
		t.Error("input cell mutated")
	}
}

func TestSwitchRefUnknownAndIdle(t *testing.T) {
	n := netsim.New(1)
	ref := &SwitchRef{Table: refTable()}
	node := n.Node("sw", ref)
	n.Init()
	node.Inject(n.NewPacket("cell", &atm.Cell{Header: atm.Header{VPI: 7, VCI: 7}}, 424), 0)
	node.Inject(n.NewPacket("cell", atm.IdleCell(), 424), 0)
	n.Run(sim.Millisecond)
	if ref.UnknownVC != 1 {
		t.Errorf("UnknownVC = %d, want 1 (idle cells are not unknown)", ref.UnknownVC)
	}
}

func TestSwitchRefLatency(t *testing.T) {
	n := netsim.New(1)
	ref := &SwitchRef{Table: refTable(), Latency: 10 * sim.Microsecond}
	node := n.Node("sw", ref)
	sink := &netsim.Sink{}
	var at sim.Time
	sink.OnPacket = func(ctx *netsim.Ctx, pkt *netsim.Packet, port int) { at = ctx.Now() }
	out := n.Node("out", sink)
	n.Connect(node, 2, out, 0, netsim.LinkParams{})
	n.Init()
	n.Sched.At(5*sim.Microsecond, func() {
		node.Inject(n.NewPacket("cell", &atm.Cell{Header: atm.Header{VPI: 1, VCI: 100}}, 424), 0)
	})
	n.Run(sim.Millisecond)
	if at != 15*sim.Microsecond {
		t.Errorf("delivery at %v, want 15us", at)
	}
}

func TestComparatorCleanPath(t *testing.T) {
	cmp := NewComparator()
	c := &atm.Cell{Header: atm.Header{VPI: 9, VCI: 900}, Seq: 1}
	cmp.Expect(2, c)
	cmp.Actual(2, c.Clone())
	if !cmp.Clean() || cmp.Matched != 1 {
		t.Fatalf("clean match failed: %s", cmp.Summary())
	}
}

func TestComparatorDetectsEverything(t *testing.T) {
	base := &atm.Cell{Header: atm.Header{VPI: 9, VCI: 900}, Seq: 1}

	// Wrong port.
	cmp := NewComparator()
	cmp.Expect(2, base)
	cmp.Actual(1, base.Clone())
	if len(cmp.Mismatches()) != 1 || cmp.Mismatches()[0].Kind != MismatchPort {
		t.Errorf("port: %v", cmp.Mismatches())
	}

	// Wrong header.
	cmp = NewComparator()
	cmp.Expect(2, base)
	bad := base.Clone()
	bad.VCI = 901
	cmp.Actual(2, bad)
	if len(cmp.Mismatches()) != 1 || cmp.Mismatches()[0].Kind != MismatchHeader {
		t.Errorf("header: %v", cmp.Mismatches())
	}

	// Wrong payload.
	cmp = NewComparator()
	cmp.Expect(2, base)
	bad = base.Clone()
	bad.Payload[17] ^= 1
	cmp.Actual(2, bad)
	if len(cmp.Mismatches()) != 1 || cmp.Mismatches()[0].Kind != MismatchPayload {
		t.Errorf("payload: %v", cmp.Mismatches())
	}

	// Unexpected cell.
	cmp = NewComparator()
	cmp.Actual(0, base.Clone())
	if len(cmp.Mismatches()) != 1 || cmp.Mismatches()[0].Kind != MismatchUnexpected {
		t.Errorf("unexpected: %v", cmp.Mismatches())
	}

	// Duplicate delivery.
	cmp = NewComparator()
	cmp.Expect(2, base)
	cmp.Actual(2, base.Clone())
	cmp.Actual(2, base.Clone())
	if len(cmp.Mismatches()) != 1 || cmp.Mismatches()[0].Kind != MismatchDuplicate {
		t.Errorf("duplicate: %v", cmp.Mismatches())
	}
}

func TestComparatorOutstanding(t *testing.T) {
	cmp := NewComparator()
	for i := uint32(0); i < 5; i++ {
		cmp.Expect(0, &atm.Cell{Seq: i})
	}
	cmp.Actual(0, &atm.Cell{Seq: 2})
	out := cmp.Outstanding()
	if len(out) != 4 {
		t.Fatalf("outstanding = %v", out)
	}
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			t.Fatal("outstanding not sorted")
		}
	}
	if cmp.Clean() {
		t.Error("Clean with outstanding cells")
	}
}

func TestMismatchKindStrings(t *testing.T) {
	for k := MismatchHeader; k <= MismatchDuplicate; k++ {
		if k.String() == "?" {
			t.Errorf("kind %d unnamed", k)
		}
	}
	m := Mismatch{Kind: MismatchPort, Seq: 3, Detail: "routed wrong"}
	if !strings.Contains(m.String(), "port") || !strings.Contains(m.String(), "seq=3") {
		t.Errorf("mismatch string = %q", m)
	}
}

func TestAccountingRefObserves(t *testing.T) {
	n := netsim.New(1)
	acct := atm.NewAccounting(atm.Tariff{CellsPerUnit: 2})
	vc := atm.VC{VPI: 1, VCI: 5}
	acct.Register(vc)
	node := n.Node("acct", &AccountingRef{Acct: acct})
	n.Init()
	for i := 0; i < 5; i++ {
		node.Inject(n.NewPacket("cell", &atm.Cell{Header: atm.Header{VPI: 1, VCI: 5}}, 424), 0)
	}
	n.Run(sim.Millisecond)
	rec, _ := acct.Record(vc)
	if rec.Cells != 5 {
		t.Errorf("cells = %d", rec.Cells)
	}
	if acct.Units(vc) != 2 {
		t.Errorf("units = %d", acct.Units(vc))
	}
}

func TestPolicerRefDecisions(t *testing.T) {
	n := netsim.New(1)
	ref := NewPolicerRef(false)
	vc := atm.VC{VPI: 4, VCI: 44}
	ref.Contract(vc, 100*sim.Microsecond, 0)
	var passed []uint32
	ref.OnForward = func(ctx *netsim.Ctx, c *atm.Cell) { passed = append(passed, c.Seq) }
	node := n.Node("upc", ref)
	n.Init()
	// Three cells: 0 at t=0 conforms, 1 at t=50us violates, 2 at t=150us
	// conforms (TAT advanced to 100us by cell 0 only).
	times := []sim.Time{0, 50 * sim.Microsecond, 150 * sim.Microsecond}
	for i, at := range times {
		i := i
		at := at
		n.Sched.At(at, func() {
			node.Inject(n.NewPacket("cell",
				&atm.Cell{Header: atm.Header{VPI: 4, VCI: 44}, Seq: uint32(i)}, 424), 0)
		})
	}
	n.Run(sim.Millisecond)
	if ref.Conforming != 2 || ref.NonConforming != 1 || ref.Discarded != 1 {
		t.Errorf("decisions: conf=%d viol=%d disc=%d", ref.Conforming, ref.NonConforming, ref.Discarded)
	}
	if len(passed) != 2 || passed[0] != 0 || passed[1] != 2 {
		t.Errorf("passed = %v", passed)
	}
}

func TestPolicerRefTagging(t *testing.T) {
	n := netsim.New(1)
	ref := NewPolicerRef(true)
	vc := atm.VC{VPI: 4, VCI: 44}
	ref.Contract(vc, 100*sim.Microsecond, 0)
	var clps []byte
	ref.OnForward = func(ctx *netsim.Ctx, c *atm.Cell) { clps = append(clps, c.CLP) }
	node := n.Node("upc", ref)
	n.Init()
	n.Sched.At(0, func() {
		node.Inject(n.NewPacket("cell", &atm.Cell{Header: atm.Header{VPI: 4, VCI: 44}}, 424), 0)
	})
	n.Sched.At(sim.Microsecond, func() {
		node.Inject(n.NewPacket("cell", &atm.Cell{Header: atm.Header{VPI: 4, VCI: 44}}, 424), 0)
	})
	n.Run(sim.Millisecond)
	if len(clps) != 2 || clps[0] != 0 || clps[1] != 1 {
		t.Errorf("clps = %v (violator must be tagged)", clps)
	}
	if ref.Tagged != 1 {
		t.Errorf("Tagged = %d", ref.Tagged)
	}
}
