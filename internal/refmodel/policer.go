package refmodel

import (
	"fmt"

	"castanet/internal/atm"
	"castanet/internal/netsim"
	"castanet/internal/sim"
)

// PolicerRef is the algorithmic reference of the UPC unit: per-connection
// GCRA at the network level of abstraction, with the same
// discard-or-tag policy as the hardware.
type PolicerRef struct {
	// Tag selects tagging instead of discarding for violators.
	Tag bool

	policers map[atm.VC]*atm.GCRA

	Conforming    uint64
	NonConforming uint64
	Tagged        uint64
	Discarded     uint64
	Passed        uint64

	// OnForward observes every cell the policer lets through.
	OnForward func(ctx *netsim.Ctx, c *atm.Cell)
	// OnArrival observes every policed arrival before the decision
	// (diagnostic).
	OnArrival func(c *atm.Cell, at sim.Time)
}

// NewPolicerRef returns an empty reference policer.
func NewPolicerRef(tag bool) *PolicerRef {
	return &PolicerRef{Tag: tag, policers: make(map[atm.VC]*atm.GCRA)}
}

// Contract installs a policing contract in time units.
func (p *PolicerRef) Contract(vc atm.VC, peakInterval, tau sim.Duration) {
	p.policers[vc] = &atm.GCRA{T: peakInterval, Tau: tau}
}

// Init implements netsim.Processor.
func (p *PolicerRef) Init(ctx *netsim.Ctx) {}

// Arrival implements netsim.Processor.
func (p *PolicerRef) Arrival(ctx *netsim.Ctx, pkt *netsim.Packet, port int) {
	c, ok := pkt.Data.(*atm.Cell)
	if !ok {
		panic(fmt.Sprintf("refmodel: PolicerRef got %T", pkt.Data))
	}
	if c.IsIdle() || c.IsUnassigned() {
		return
	}
	if p.OnArrival != nil {
		p.OnArrival(c, ctx.Now())
	}
	g, registered := p.policers[c.VC()]
	if !registered {
		p.Passed++
		p.forward(ctx, c, pkt.Size)
		return
	}
	if g.Arrive(ctx.Now()) {
		p.Conforming++
		p.forward(ctx, c, pkt.Size)
		return
	}
	p.NonConforming++
	if p.Tag {
		if c.CLP == 1 {
			p.Discarded++
			return
		}
		tagged := c.Clone()
		tagged.CLP = 1
		p.Tagged++
		p.forward(ctx, tagged, pkt.Size)
		return
	}
	p.Discarded++
}

func (p *PolicerRef) forward(ctx *netsim.Ctx, c *atm.Cell, size int) {
	if p.OnForward != nil {
		p.OnForward(ctx, c)
	}
	if ctx.Connected(0) {
		ctx.Send(ctx.Net().NewPacket("cell", c.Clone(), size), 0)
	}
}

// Timer implements netsim.Processor.
func (p *PolicerRef) Timer(ctx *netsim.Ctx, tag interface{}) {}
