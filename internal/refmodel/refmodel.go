// Package refmodel hosts the algorithmic reference models the hardware is
// verified against (the "Algorithm Reference Model" box of Fig. 1) and the
// comparison engine (the "=?" box): the network-simulator-level behavioral
// descriptions of the ATM switch and the accounting unit, plus a
// cell-stream comparator that matches device-under-test responses against
// reference outputs and records every discrepancy.
package refmodel

import (
	"fmt"
	"sort"

	"castanet/internal/atm"
	"castanet/internal/netsim"
	"castanet/internal/sim"
)

// SwitchRef is the behavioral reference model of the 4x4 ATM switch: a
// netsim processor that performs the same VPI/VCI translation and routing
// as the RTL switch, instantaneously at the cell level of abstraction.
// Cells arrive as *atm.Cell packets on input ports 0..3 and leave,
// translated, on the corresponding output ports.
type SwitchRef struct {
	Table *atm.Translator
	// Latency is the nominal forwarding delay added to every cell; the
	// functional comparison keys on content and ordering, not on exact
	// timing, but a non-zero latency keeps network-level statistics
	// meaningful.
	Latency sim.Duration

	// UnknownVC counts discarded cells on unconfigured connections,
	// mirroring the DUT's diagnostic counter.
	UnknownVC uint64
	// Forwarded counts per output port.
	Forwarded [4]uint64

	// OnForward, when set, observes every forwarded cell before it is
	// sent (used to feed the comparator's expectation stream).
	OnForward func(ctx *netsim.Ctx, outPort int, c *atm.Cell)
}

// Init implements netsim.Processor.
func (s *SwitchRef) Init(ctx *netsim.Ctx) {}

// Arrival implements netsim.Processor.
func (s *SwitchRef) Arrival(ctx *netsim.Ctx, pkt *netsim.Packet, port int) {
	c, ok := pkt.Data.(*atm.Cell)
	if !ok {
		panic(fmt.Sprintf("refmodel: SwitchRef got %T, want *atm.Cell", pkt.Data))
	}
	if c.IsIdle() || c.IsUnassigned() {
		return
	}
	route, found := s.Table.Lookup(c.VC())
	if !found {
		s.UnknownVC++
		return
	}
	out := c.Clone()
	out.VPI = route.Out.VPI
	out.VCI = route.Out.VCI
	s.Forwarded[route.Port]++
	if s.OnForward != nil {
		s.OnForward(ctx, route.Port, out)
	}
	if ctx.Connected(route.Port) {
		fwd := ctx.Net().NewPacket("cell", out, atm.CellBytes*8)
		if s.Latency > 0 {
			ctx.SetTimer(s.Latency, timedForward{pkt: fwd, port: route.Port})
			return
		}
		ctx.Send(fwd, route.Port)
	}
}

type timedForward struct {
	pkt  *netsim.Packet
	port int
}

// Timer implements netsim.Processor.
func (s *SwitchRef) Timer(ctx *netsim.Ctx, tag interface{}) {
	if tf, ok := tag.(timedForward); ok {
		ctx.Send(tf.pkt, tf.port)
	}
}

// AccountingRef is the algorithmic reference of the accounting unit: it
// wraps the charging algorithm of package atm as a netsim sink process.
type AccountingRef struct {
	Acct *atm.Accounting
}

// Init implements netsim.Processor.
func (a *AccountingRef) Init(ctx *netsim.Ctx) {}

// Arrival implements netsim.Processor.
func (a *AccountingRef) Arrival(ctx *netsim.Ctx, pkt *netsim.Packet, port int) {
	c, ok := pkt.Data.(*atm.Cell)
	if !ok {
		panic(fmt.Sprintf("refmodel: AccountingRef got %T, want *atm.Cell", pkt.Data))
	}
	a.Acct.Observe(c, ctx.Now())
}

// Timer implements netsim.Processor.
func (a *AccountingRef) Timer(ctx *netsim.Ctx, tag interface{}) {}

// MismatchKind classifies a comparison failure.
type MismatchKind int

// Comparison failure classes.
const (
	// MismatchHeader: the cell arrived where expected but with wrong
	// header fields.
	MismatchHeader MismatchKind = iota
	// MismatchPort: the cell left on the wrong output port.
	MismatchPort
	// MismatchUnexpected: the DUT produced a cell the reference never
	// forwarded.
	MismatchUnexpected
	// MismatchPayload: payload bytes differ.
	MismatchPayload
	// MismatchDuplicate: the DUT delivered the same cell twice.
	MismatchDuplicate
)

// String names the mismatch kind.
func (k MismatchKind) String() string {
	switch k {
	case MismatchHeader:
		return "header"
	case MismatchPort:
		return "port"
	case MismatchUnexpected:
		return "unexpected"
	case MismatchPayload:
		return "payload"
	case MismatchDuplicate:
		return "duplicate"
	default:
		return "?"
	}
}

// Mismatch is one recorded discrepancy between reference and DUT.
type Mismatch struct {
	Kind     MismatchKind
	Seq      uint32
	Detail   string
	Expected *atm.Cell
	Actual   *atm.Cell
}

// String formats the mismatch for reports.
func (m Mismatch) String() string {
	return fmt.Sprintf("mismatch[%v] seq=%d: %s", m.Kind, m.Seq, m.Detail)
}

// Comparator matches DUT output cells against reference expectations.
// Cells are keyed by their Seq stamp (unique per verification run), so
// reordering across independent connections — legal in the hardware — does
// not raise false alarms, while per-cell content and routing are checked
// exactly.
type Comparator struct {
	expected map[uint32]expectedCell
	matched  map[uint32]bool

	Matched    uint64
	mismatches []Mismatch
}

type expectedCell struct {
	port int
	cell *atm.Cell
}

// NewComparator returns an empty comparator.
func NewComparator() *Comparator {
	return &Comparator{expected: make(map[uint32]expectedCell), matched: make(map[uint32]bool)}
}

// Expect records that the reference model forwarded a cell to the given
// output port.
func (c *Comparator) Expect(port int, cell *atm.Cell) {
	c.expected[cell.Seq] = expectedCell{port: port, cell: cell.Clone()}
}

// Actual records a DUT output cell and checks it against the expectation.
func (c *Comparator) Actual(port int, cell *atm.Cell) {
	exp, ok := c.expected[cell.Seq]
	if !ok {
		c.add(Mismatch{Kind: MismatchUnexpected, Seq: cell.Seq, Actual: cell.Clone(),
			Detail: fmt.Sprintf("cell %v on port %d has no reference counterpart", cell.VC(), port)})
		return
	}
	if c.matched[cell.Seq] {
		c.add(Mismatch{Kind: MismatchDuplicate, Seq: cell.Seq, Actual: cell.Clone(),
			Detail: fmt.Sprintf("cell %v delivered more than once", cell.VC())})
		return
	}
	if port != exp.port {
		c.add(Mismatch{Kind: MismatchPort, Seq: cell.Seq, Expected: exp.cell, Actual: cell.Clone(),
			Detail: fmt.Sprintf("routed to port %d, reference says %d", port, exp.port)})
		return
	}
	if cell.Header != exp.cell.Header {
		c.add(Mismatch{Kind: MismatchHeader, Seq: cell.Seq, Expected: exp.cell, Actual: cell.Clone(),
			Detail: fmt.Sprintf("header %+v, reference %+v", cell.Header, exp.cell.Header)})
		return
	}
	if cell.Payload != exp.cell.Payload {
		c.add(Mismatch{Kind: MismatchPayload, Seq: cell.Seq, Expected: exp.cell, Actual: cell.Clone(),
			Detail: "payload differs"})
		return
	}
	c.matched[cell.Seq] = true
	c.Matched++
}

func (c *Comparator) add(m Mismatch) { c.mismatches = append(c.mismatches, m) }

// Mismatches returns all recorded discrepancies.
func (c *Comparator) Mismatches() []Mismatch { return c.mismatches }

// Outstanding returns the reference cells the DUT has not yet delivered,
// sorted by sequence number. A non-empty result at end of run means lost
// cells — unless the run legitimately dropped them (overload tests pass
// the allowed count to OutstandingAllowed).
func (c *Comparator) Outstanding() []uint32 {
	var out []uint32
	for seq := range c.expected {
		if !c.matched[seq] {
			out = append(out, seq)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clean reports a fully successful comparison: every expected cell
// delivered exactly once, nothing else.
func (c *Comparator) Clean() bool {
	return len(c.mismatches) == 0 && len(c.Outstanding()) == 0
}

// Summary formats the comparison result.
func (c *Comparator) Summary() string {
	return fmt.Sprintf("compare: %d matched, %d mismatches, %d outstanding",
		c.Matched, len(c.mismatches), len(c.Outstanding()))
}
