// Package cyclesim is a cycle-based simulation engine: devices advance one
// clock per Tick with plain binary values, no event queue, no delta
// cycles, no nine-valued logic. The paper's conclusion calls for exactly
// this ("the integration of cycle-based simulation techniques is
// required") because event-driven HDL simulation is the bottleneck of the
// co-verification flow.
//
// Cycle-based devices serve two roles here: they are the ablation
// comparison for experiment E6 (event-driven vs cycle-based execution of
// the same hardware), and they stand in for the real silicon mounted on
// the hardware test board of package board — a fabricated chip is, from
// the board's perspective, a black box that consumes and produces pin
// values once per board clock.
package cyclesim

import "fmt"

// Dir is a port direction from the device's point of view.
type Dir int

// Port directions.
const (
	In Dir = iota
	Out
)

// Port describes one pin group of a cycle-based device.
type Port struct {
	Name  string
	Width int // bits, <= 64
	Dir   Dir
}

// Device is a clocked black box: Tick consumes this cycle's input pin
// values and returns the output pin values, in the order reported by
// Ports. Implementations must be deterministic functions of their input
// history since Reset.
type Device interface {
	// Ports lists all pin groups; inputs and outputs may interleave.
	Ports() []Port
	// Reset returns the device to its power-on state.
	Reset()
	// Tick advances one clock. in holds one value per input port (in
	// Ports order, skipping outputs); the result holds one value per
	// output port (in Ports order, skipping inputs).
	Tick(in []uint64) []uint64
}

// InputPorts filters the input pin groups of a device.
func InputPorts(d Device) []Port {
	var out []Port
	for _, p := range d.Ports() {
		if p.Dir == In {
			out = append(out, p)
		}
	}
	return out
}

// OutputPorts filters the output pin groups of a device.
func OutputPorts(d Device) []Port {
	var out []Port
	for _, p := range d.Ports() {
		if p.Dir == Out {
			out = append(out, p)
		}
	}
	return out
}

// PortIndex returns the position of the named port within its direction
// group (the index into Tick's in or out slice).
func PortIndex(d Device, name string) (idx int, dir Dir, err error) {
	ins, outs := 0, 0
	for _, p := range d.Ports() {
		if p.Name == name {
			if p.Dir == In {
				return ins, In, nil
			}
			return outs, Out, nil
		}
		if p.Dir == In {
			ins++
		} else {
			outs++
		}
	}
	return 0, In, fmt.Errorf("cyclesim: no port %q", name)
}

// Run clocks the device n times with all-zero inputs, discarding outputs —
// a convenience for settling sequences and speed measurements.
func Run(d Device, n int) {
	in := make([]uint64, len(InputPorts(d)))
	for i := 0; i < n; i++ {
		d.Tick(in)
	}
}
