package cyclesim

// BusAccounting is the accounting unit with the microprocessor bus
// interface of real billing hardware: besides the snooped cell stream it
// exposes an 8-bit bidirectional data bus through which the control
// processor reads the usage counters. On the test board the bus maps to a
// bidirectional byte lane via the three-signal scheme of §3.3 — input,
// output and a device-driven output-enable control signal.
//
// Bus protocol (all synchronous):
//
//	host: req=1, rw=1, addr = slot<<2 | byteSel  (one cycle)
//	dev : next cycle ack=1, bus_oe=1, bus_out = counter byte
//
// addr bits [1:0] select the byte of the 32-bit cell counter (0 = least
// significant); bits [7:2] select the table slot. Writes (rw=0) set the
// clear-on-next-cell flag — a minimal command path exercising the
// board-driven direction of the shared lane.
type BusAccounting struct {
	*Accounting

	ackNext  bool
	dataNext byte

	clearPending [64]bool

	// BusReads counts completed read transactions.
	BusReads uint64
}

// NewBusAccounting wraps an accounting core of the given capacity
// (max 64 slots; the address field allows 6 slot bits).
func NewBusAccounting(capacity int) *BusAccounting {
	if capacity > 64 {
		panic("cyclesim: bus accounting supports at most 64 slots")
	}
	return &BusAccounting{Accounting: NewAccounting(capacity)}
}

// Ports implements Device.
func (b *BusAccounting) Ports() []Port {
	return []Port{
		{Name: "rx_data", Width: 8, Dir: In},
		{Name: "rx_sync", Width: 1, Dir: In},
		{Name: "bus_in", Width: 8, Dir: In}, // board-driven side of the shared lane
		{Name: "addr", Width: 8, Dir: In},
		{Name: "req", Width: 1, Dir: In},
		{Name: "rw", Width: 1, Dir: In}, // 1 = read, 0 = write/command
		{Name: "exception", Width: 1, Dir: Out},
		{Name: "bus_out", Width: 8, Dir: Out},
		{Name: "bus_oe", Width: 1, Dir: Out}, // control: device drives the lane
		{Name: "ack", Width: 1, Dir: Out},
	}
}

// Reset implements Device.
func (b *BusAccounting) Reset() {
	b.Accounting.Reset()
	b.ackNext = false
	b.dataNext = 0
	b.clearPending = [64]bool{}
	b.BusReads = 0
}

// Tick implements Device.
func (b *BusAccounting) Tick(in []uint64) []uint64 {
	// Cell path reuses the core's reassembly/metering.
	coreOut := b.Accounting.Tick(in[:2])

	out := make([]uint64, 4)
	out[0] = coreOut[0] // exception

	if b.ackNext {
		out[1] = uint64(b.dataNext) // bus_out
		out[2] = 1                  // bus_oe: device drives the shared lane
		out[3] = 1                  // ack
		b.ackNext = false
		b.BusReads++
		return out
	}

	req := in[4]&1 == 1
	if req {
		addr := byte(in[3])
		slot := int(addr >> 2)
		if in[5]&1 == 1 { // read
			byteSel := uint(addr&3) * 8
			b.dataNext = byte(b.Cells[slot] >> byteSel)
			b.ackNext = true
		} else if slot < len(b.clearPending) {
			// Command write: payload on the board-driven lane side.
			if byte(in[2]) == 0x01 {
				b.clearPending[slot] = true
				b.Cells[slot] = 0
				b.CLP1[slot] = 0
			}
		}
	}
	return out
}
