package cyclesim

import (
	"fmt"

	"castanet/internal/atm"
)

// Switch is the cycle-based twin of the event-driven dut.Switch: the same
// 4x4 ATM switch (port modules, global control unit, shared 32-bit
// internal bus, output queues) expressed as one Tick function. Cell-level
// behaviour — VPI/VCI translation, routing, HEC checking, FIFO drops —
// matches the RTL device; sub-cell timing is equivalent to within the
// arbitration jitter of the shared bus.
type Switch struct {
	Table         *atm.Translator
	InCap, OutCap int

	in  [4]swInPort
	out [4]swOutPort

	busBusy int // remaining beats of the transfer in flight
	rrNext  int

	RxCells   [4]uint64
	TxCells   [4]uint64
	HECErrors [4]uint64
	UnknownVC uint64
	InDrops   [4]uint64
	OutDrops  [4]uint64
}

const busBeats = (atm.CellBytes+3)/4 + 1 // words + grant cycle

type swInPort struct {
	buf    [atm.CellBytes]byte
	pos    int
	inCell bool
	fifo   [][atm.CellBytes]byte
}

type swOutPort struct {
	fifo   [][atm.CellBytes]byte
	cur    [atm.CellBytes]byte
	pos    int
	active bool
}

// NewSwitch returns a cycle-based switch with the given table and FIFO
// depths.
func NewSwitch(table *atm.Translator, inCap, outCap int) *Switch {
	if inCap <= 0 || outCap <= 0 {
		panic("cyclesim: FIFO depths must be positive")
	}
	return &Switch{Table: table, InCap: inCap, OutCap: outCap}
}

// Ports implements Device: four (data, sync) input pairs then four output
// pairs.
func (s *Switch) Ports() []Port {
	var ports []Port
	for i := 0; i < 4; i++ {
		ports = append(ports,
			Port{Name: fmt.Sprintf("rx%d_data", i), Width: 8, Dir: In},
			Port{Name: fmt.Sprintf("rx%d_sync", i), Width: 1, Dir: In},
		)
	}
	for i := 0; i < 4; i++ {
		ports = append(ports,
			Port{Name: fmt.Sprintf("tx%d_data", i), Width: 8, Dir: Out},
			Port{Name: fmt.Sprintf("tx%d_sync", i), Width: 1, Dir: Out},
		)
	}
	return ports
}

// Reset implements Device.
func (s *Switch) Reset() {
	for i := range s.in {
		s.in[i] = swInPort{}
	}
	for i := range s.out {
		s.out[i] = swOutPort{}
	}
	s.busBusy = 0
	s.rrNext = 0
}

// Tick implements Device: in = [rx0_data, rx0_sync, rx1_data, ...],
// returns [tx0_data, tx0_sync, ...].
func (s *Switch) Tick(in []uint64) []uint64 {
	// Input reassembly.
	for p := 0; p < 4; p++ {
		data := byte(in[2*p])
		sync := in[2*p+1]&1 == 1
		ip := &s.in[p]
		if sync {
			ip.pos = 0
			ip.inCell = true
		}
		if ip.inCell {
			ip.buf[ip.pos] = data
			ip.pos++
			if ip.pos == atm.CellBytes {
				ip.inCell = false
				s.acceptCell(p)
			}
		}
	}
	// Arbitration + transfer: the shared bus moves one whole cell every
	// busBeats cycles; we account the beats and move the cell atomically
	// on grant (functionally identical, beat-exact on the output side
	// because the output FIFO absorbs it either way).
	if s.busBusy > 0 {
		s.busBusy--
	} else {
		for n := 0; n < 4; n++ {
			p := (s.rrNext + n) % 4
			ip := &s.in[p]
			if len(ip.fifo) == 0 {
				continue
			}
			img := ip.fifo[0]
			hdr, err := atm.UnmarshalHeader([5]byte{img[0], img[1], img[2], img[3], img[4]})
			if err != nil {
				ip.fifo = ip.fifo[1:]
				s.HECErrors[p]++
				continue
			}
			route, found := s.Table.Lookup(atm.VC{VPI: hdr.VPI, VCI: hdr.VCI})
			if !found {
				s.UnknownVC++
				ip.fifo = ip.fifo[1:]
				continue
			}
			ip.fifo = ip.fifo[1:]
			hdr.VPI = route.Out.VPI
			hdr.VCI = route.Out.VCI
			nb := hdr.MarshalHeader()
			copy(img[:atm.HeaderBytes], nb[:])
			op := &s.out[route.Port]
			if len(op.fifo) >= s.OutCap {
				s.OutDrops[route.Port]++
			} else {
				op.fifo = append(op.fifo, img)
			}
			s.busBusy = busBeats - 1
			s.rrNext = (p + 1) % 4
			break
		}
	}
	// Output serialization.
	out := make([]uint64, 8)
	for p := 0; p < 4; p++ {
		op := &s.out[p]
		if !op.active && len(op.fifo) > 0 {
			op.cur = op.fifo[0]
			op.fifo = op.fifo[1:]
			op.active = true
			op.pos = 0
			s.TxCells[p]++
		}
		if op.active {
			out[2*p] = uint64(op.cur[op.pos])
			if op.pos == 0 {
				out[2*p+1] = 1
			}
			op.pos++
			if op.pos == atm.CellBytes {
				op.active = false
			}
		}
	}
	return out
}

func (s *Switch) acceptCell(p int) {
	ip := &s.in[p]
	img := ip.buf
	cell, err := atm.Unmarshal(img)
	if err != nil {
		s.HECErrors[p]++
		return
	}
	if cell.IsIdle() || cell.IsUnassigned() {
		return
	}
	s.RxCells[p]++
	if len(ip.fifo) >= s.InCap {
		s.InDrops[p]++
		return
	}
	ip.fifo = append(ip.fifo, img)
}

// Drops totals all loss counters.
func (s *Switch) Drops() uint64 {
	t := s.UnknownVC
	for p := 0; p < 4; p++ {
		t += s.InDrops[p] + s.OutDrops[p] + s.HECErrors[p]
	}
	return t
}

// Accounting is the cycle-based twin of dut.AccountingUnit: it snoops one
// cell stream and maintains per-slot usage counters, raising the exception
// output for one cycle per unregistered cell.
type Accounting struct {
	slots map[atm.VC]int
	nSlot int
	cap   int

	Cells [256]uint32
	CLP1  [256]uint32

	buf    [atm.CellBytes]byte
	pos    int
	inCell bool

	Unregistered uint64
	Observed     uint64

	exception bool
}

// NewAccounting returns a cycle-based accounting unit with the given
// table capacity.
func NewAccounting(capacity int) *Accounting {
	if capacity <= 0 || capacity > 256 {
		panic("cyclesim: accounting capacity out of range")
	}
	return &Accounting{cap: capacity, slots: make(map[atm.VC]int)}
}

// Register binds a VC to the next table slot.
func (a *Accounting) Register(vc atm.VC) (int, error) {
	if idx, ok := a.slots[vc]; ok {
		return idx, nil
	}
	if a.nSlot >= a.cap {
		return 0, fmt.Errorf("cyclesim: accounting table full")
	}
	idx := a.nSlot
	a.nSlot++
	a.slots[vc] = idx
	return idx, nil
}

// Ports implements Device.
func (a *Accounting) Ports() []Port {
	return []Port{
		{Name: "rx_data", Width: 8, Dir: In},
		{Name: "rx_sync", Width: 1, Dir: In},
		{Name: "exception", Width: 1, Dir: Out},
	}
}

// Reset implements Device (table bindings survive reset, counters clear —
// matching a chip whose CAM is non-volatile configuration).
func (a *Accounting) Reset() {
	a.buf = [atm.CellBytes]byte{}
	a.pos = 0
	a.inCell = false
	a.Cells = [256]uint32{}
	a.CLP1 = [256]uint32{}
	a.Unregistered = 0
	a.Observed = 0
	a.exception = false
}

// Tick implements Device.
func (a *Accounting) Tick(in []uint64) []uint64 {
	a.exception = false
	data := byte(in[0])
	sync := in[1]&1 == 1
	if sync {
		a.pos = 0
		a.inCell = true
	}
	if a.inCell {
		a.buf[a.pos] = data
		a.pos++
		if a.pos == atm.CellBytes {
			a.inCell = false
			a.meter()
		}
	}
	out := make([]uint64, 1)
	if a.exception {
		out[0] = 1
	}
	return out
}

func (a *Accounting) meter() {
	cell, err := atm.Unmarshal(a.buf)
	if err != nil {
		return // HEC-failed cells are invisible to the meter
	}
	if cell.IsIdle() || cell.IsUnassigned() {
		return
	}
	idx, ok := a.slots[cell.VC()]
	if !ok {
		a.Unregistered++
		a.exception = true
		return
	}
	a.Observed++
	a.Cells[idx]++
	if cell.CLP == 1 {
		a.CLP1[idx]++
	}
}
