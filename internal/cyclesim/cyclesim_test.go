package cyclesim

import (
	"testing"

	"castanet/internal/atm"
)

// cellFeeder drives cell images into a device's (data, sync) input pair
// one byte per tick.
type cellFeeder struct {
	queue [][atm.CellBytes]byte
	cur   [atm.CellBytes]byte
	pos   int
	busy  bool
}

func (f *cellFeeder) enqueue(c *atm.Cell) {
	cc := c.Clone()
	cc.StampSeq()
	f.queue = append(f.queue, cc.Marshal())
}

// next returns (data, sync) for this tick.
func (f *cellFeeder) next() (uint64, uint64) {
	if !f.busy {
		if len(f.queue) == 0 {
			return 0, 0
		}
		f.cur = f.queue[0]
		f.queue = f.queue[1:]
		f.busy = true
		f.pos = 0
	}
	d := uint64(f.cur[f.pos])
	var s uint64
	if f.pos == 0 {
		s = 1
	}
	f.pos++
	if f.pos == atm.CellBytes {
		f.busy = false
	}
	return d, s
}

// cellCatcher reassembles cells from a (data, sync) output pair.
type cellCatcher struct {
	buf    [atm.CellBytes]byte
	pos    int
	inCell bool
	got    []*atm.Cell
}

func (c *cellCatcher) feed(data, sync uint64) {
	if sync&1 == 1 {
		c.pos = 0
		c.inCell = true
	}
	if !c.inCell {
		return
	}
	c.buf[c.pos] = byte(data)
	c.pos++
	if c.pos == atm.CellBytes {
		c.inCell = false
		if cell, err := atm.Unmarshal(c.buf); err == nil {
			c.got = append(c.got, cell)
		}
	}
}

func testTable() *atm.Translator {
	tb := atm.NewTranslator()
	for p := 0; p < 4; p++ {
		for q := 0; q < 4; q++ {
			tb.Add(atm.VC{VPI: byte(p + 1), VCI: uint16(100 + q)},
				atm.Route{Port: q, Out: atm.VC{VPI: byte(0x10 + p), VCI: uint16(0x200 + 16*p + q)}})
		}
	}
	return tb
}

func TestCycleSwitchRoutes(t *testing.T) {
	sw := NewSwitch(testTable(), 4, 32)
	var feeders [4]cellFeeder
	var catchers [4]cellCatcher
	feeders[0].enqueue(&atm.Cell{Header: atm.Header{VPI: 1, VCI: 102}, Seq: 5}) // -> out 2
	feeders[3].enqueue(&atm.Cell{Header: atm.Header{VPI: 4, VCI: 101}, Seq: 6}) // -> out 1
	in := make([]uint64, 8)
	for cycle := 0; cycle < 300; cycle++ {
		for p := 0; p < 4; p++ {
			in[2*p], in[2*p+1] = feeders[p].next()
		}
		out := sw.Tick(in)
		for p := 0; p < 4; p++ {
			catchers[p].feed(out[2*p], out[2*p+1])
		}
	}
	if len(catchers[2].got) != 1 || catchers[2].got[0].Seq != 5 {
		t.Fatalf("output 2: %v", catchers[2].got)
	}
	if got := catchers[2].got[0]; got.VPI != 0x10 || got.VCI != 0x202 {
		t.Errorf("translation = %v", got.VC())
	}
	if len(catchers[1].got) != 1 || catchers[1].got[0].Seq != 6 {
		t.Fatalf("output 1: %v", catchers[1].got)
	}
	if sw.Drops() != 0 {
		t.Errorf("drops = %d", sw.Drops())
	}
}

func TestCycleSwitchUnknownVC(t *testing.T) {
	sw := NewSwitch(testTable(), 4, 32)
	var f cellFeeder
	f.enqueue(&atm.Cell{Header: atm.Header{VPI: 9, VCI: 9}})
	in := make([]uint64, 8)
	for cycle := 0; cycle < 120; cycle++ {
		in[0], in[1] = f.next()
		sw.Tick(in)
	}
	if sw.UnknownVC != 1 {
		t.Errorf("UnknownVC = %d", sw.UnknownVC)
	}
}

func TestCycleSwitchReset(t *testing.T) {
	sw := NewSwitch(testTable(), 4, 32)
	var f cellFeeder
	f.enqueue(&atm.Cell{Header: atm.Header{VPI: 1, VCI: 100}})
	in := make([]uint64, 8)
	for cycle := 0; cycle < 30; cycle++ { // abandon mid-cell
		in[0], in[1] = f.next()
		sw.Tick(in)
	}
	sw.Reset()
	// After reset the half-received cell must be gone; a fresh cell must
	// still route correctly.
	var f2 cellFeeder
	var c2 cellCatcher
	f2.enqueue(&atm.Cell{Header: atm.Header{VPI: 1, VCI: 100}, Seq: 1})
	for cycle := 0; cycle < 300; cycle++ {
		in[0], in[1] = f2.next()
		for p := 1; p < 4; p++ {
			in[2*p], in[2*p+1] = 0, 0
		}
		out := sw.Tick(in)
		c2.feed(out[0], out[1])
	}
	if len(c2.got) != 1 || c2.got[0].Seq != 1 {
		t.Fatalf("post-reset cell: %v", c2.got)
	}
}

func TestCycleAccounting(t *testing.T) {
	a := NewAccounting(8)
	slot, _ := a.Register(atm.VC{VPI: 2, VCI: 22})
	var f cellFeeder
	f.enqueue(&atm.Cell{Header: atm.Header{VPI: 2, VCI: 22}})
	f.enqueue(&atm.Cell{Header: atm.Header{VPI: 2, VCI: 22, CLP: 1}})
	f.enqueue(&atm.Cell{Header: atm.Header{VPI: 8, VCI: 8}}) // unregistered
	exceptions := 0
	for cycle := 0; cycle < 4*atm.CellBytes; cycle++ {
		d, s := f.next()
		out := a.Tick([]uint64{d, s})
		if out[0] == 1 {
			exceptions++
		}
	}
	if a.Cells[slot] != 2 || a.CLP1[slot] != 1 {
		t.Errorf("counters = %d/%d", a.Cells[slot], a.CLP1[slot])
	}
	if a.Unregistered != 1 || exceptions != 1 {
		t.Errorf("unregistered=%d exceptions=%d", a.Unregistered, exceptions)
	}
}

func TestPortIndex(t *testing.T) {
	sw := NewSwitch(testTable(), 1, 1)
	idx, dir, err := PortIndex(sw, "rx2_sync")
	if err != nil || dir != In || idx != 5 {
		t.Errorf("rx2_sync = %d,%v,%v", idx, dir, err)
	}
	idx, dir, err = PortIndex(sw, "tx3_data")
	if err != nil || dir != Out || idx != 6 {
		t.Errorf("tx3_data = %d,%v,%v", idx, dir, err)
	}
	if _, _, err := PortIndex(sw, "nope"); err == nil {
		t.Error("unknown port resolved")
	}
}

// BenchmarkSwitchTick measures the cycle-based engine's per-cycle cost
// with all four lines active.
func BenchmarkSwitchTick(b *testing.B) {
	sw := NewSwitch(testTable(), 4, 32)
	var feeders [4]cellFeeder
	for p := 0; p < 4; p++ {
		for k := 0; k < 4; k++ {
			feeders[p].enqueue(&atm.Cell{Header: atm.Header{VPI: byte(p + 1), VCI: uint16(100 + k)}})
		}
	}
	in := make([]uint64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < 4; p++ {
			in[2*p], in[2*p+1] = feeders[p].next()
		}
		sw.Tick(in)
	}
}

func TestDeviceIntrospection(t *testing.T) {
	sw := NewSwitch(testTable(), 1, 1)
	if got := len(InputPorts(sw)); got != 8 {
		t.Errorf("switch input ports = %d, want 8", got)
	}
	if got := len(OutputPorts(sw)); got != 8 {
		t.Errorf("switch output ports = %d, want 8", got)
	}
	acct := NewAccounting(4)
	if got := len(acct.Ports()); got != 3 {
		t.Errorf("accounting ports = %d", got)
	}
	// Run with idle inputs must not panic and must not meter anything.
	Run(acct, 100)
	if acct.Observed != 0 {
		t.Errorf("idle run metered %d cells", acct.Observed)
	}
}

func TestAccountingReset(t *testing.T) {
	a := NewAccounting(4)
	slot, _ := a.Register(atm.VC{VPI: 1, VCI: 1})
	var f cellFeeder
	f.enqueue(&atm.Cell{Header: atm.Header{VPI: 1, VCI: 1}})
	for i := 0; i < 2*atm.CellBytes; i++ {
		d, s := f.next()
		a.Tick([]uint64{d, s})
	}
	if a.Cells[slot] != 1 {
		t.Fatalf("precondition: metered %d", a.Cells[slot])
	}
	a.Reset()
	if a.Cells[slot] != 0 || a.Observed != 0 {
		t.Error("Reset did not clear counters")
	}
	// Table bindings survive (non-volatile configuration).
	if _, ok := a.slots[atm.VC{VPI: 1, VCI: 1}]; !ok {
		t.Error("Reset erased the table binding")
	}
}

func TestBusAccountingDirect(t *testing.T) {
	dev := NewBusAccounting(8)
	slot, err := dev.Register(atm.VC{VPI: 3, VCI: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(dev.Ports()); got != 10 {
		t.Fatalf("ports = %d, want 10", got)
	}
	// Meter two cells through the cell path.
	var f cellFeeder
	f.enqueue(&atm.Cell{Header: atm.Header{VPI: 3, VCI: 3}})
	f.enqueue(&atm.Cell{Header: atm.Header{VPI: 3, VCI: 3}})
	in := make([]uint64, 6)
	for i := 0; i < 3*atm.CellBytes; i++ {
		in[0], in[1] = f.next()
		in[4] = 0 // no bus request
		dev.Tick(in)
	}
	if dev.Cells[slot] != 2 {
		t.Fatalf("metered %d", dev.Cells[slot])
	}
	// Read the counter's low byte over the bus: req cycle, then response.
	in = make([]uint64, 6)
	in[3] = uint64(slot << 2) // addr
	in[4] = 1                 // req
	in[5] = 1                 // rw = read
	out := dev.Tick(in)
	if out[3] != 0 {
		t.Fatal("ack asserted in the request cycle")
	}
	in = make([]uint64, 6)
	out = dev.Tick(in)
	if out[3] != 1 || out[2] != 1 {
		t.Fatalf("response cycle: ack=%d oe=%d", out[3], out[2])
	}
	if out[1] != 2 {
		t.Errorf("bus data = %d, want 2", out[1])
	}
	if dev.BusReads != 1 {
		t.Errorf("BusReads = %d", dev.BusReads)
	}
	// Command write clears the slot.
	in = make([]uint64, 6)
	in[2] = 0x01 // payload on the board-driven lane
	in[3] = uint64(slot << 2)
	in[4] = 1 // req
	in[5] = 0 // rw = write
	dev.Tick(in)
	if dev.Cells[slot] != 0 {
		t.Errorf("clear command ignored: %d", dev.Cells[slot])
	}
	// Reset restores power-on state.
	dev.Reset()
	if dev.BusReads != 0 {
		t.Error("Reset did not clear bus state")
	}
}

func TestBusAccountingCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("over-64 capacity accepted")
		}
	}()
	NewBusAccounting(65)
}

func TestSwitchReset2(t *testing.T) {
	sw := NewSwitch(testTable(), 4, 32)
	if got := len(sw.Ports()); got != 16 {
		t.Errorf("ports = %d, want 16", got)
	}
}

func TestSwitchBadDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero FIFO depth accepted")
		}
	}()
	NewSwitch(testTable(), 0, 1)
}
