package scsi

import (
	"testing"

	"castanet/internal/sim"
)

func TestTransferTime(t *testing.T) {
	b := Default()
	// 10 MB over a 10 MB/s bus = 1s data phase + overhead.
	d := b.TransferTime(10_000_000)
	want := sim.Second + b.Overhead
	if d != want {
		t.Errorf("TransferTime = %v, want %v", d, want)
	}
	// Zero-byte transfer still pays the overhead.
	if d := b.TransferTime(0); d != b.Overhead {
		t.Errorf("empty transfer = %v, want %v", d, b.Overhead)
	}
}

func TestTransferAccounting(t *testing.T) {
	b := Default()
	b.Transfer(1000)
	b.Transfer(2000)
	if b.Transfers != 2 || b.Bytes != 3000 {
		t.Errorf("accounting = %d transfers, %d bytes", b.Transfers, b.Bytes)
	}
	if b.BusyTime != b.TransferTime(1000)+b.TransferTime(2000) {
		t.Errorf("busy time = %v", b.BusyTime)
	}
}

func TestNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative size accepted")
		}
	}()
	Default().TransferTime(-1)
}
