// Package scsi models the SCSI bus that connects the workstation running
// the simulators to the hardware test board (Fig. 2). The co-verification
// flow only observes the bus through transfer latencies — command
// overhead plus data phase — so the model is a timing model with transfer
// accounting, parameterized like a mid-90s SCSI-2 fast bus.
package scsi

import (
	"fmt"

	"castanet/internal/sim"
)

// Bus is one SCSI bus with a single initiator (the workstation) and a
// single target (the test board).
type Bus struct {
	// Overhead is the per-transfer cost: arbitration, selection, command
	// and status phases.
	Overhead sim.Duration
	// RateBps is the data-phase throughput in bytes per second.
	RateBps float64

	// Transfers and Bytes account all traffic.
	Transfers uint64
	Bytes     uint64
	// BusyTime accumulates total bus occupancy.
	BusyTime sim.Duration
}

// Default returns a SCSI-2 fast bus: 10 MB/s data phase, 500 µs
// per-transfer overhead (arbitration + selection + 10-byte command +
// status round trip through a mid-90s host adapter driver).
func Default() *Bus {
	return &Bus{Overhead: 500 * sim.Microsecond, RateBps: 10e6}
}

// TransferTime returns the bus occupancy for moving n bytes in one
// transfer, without recording it.
func (b *Bus) TransferTime(n int) sim.Duration {
	if n < 0 {
		panic("scsi: negative transfer size")
	}
	t := b.Overhead
	if b.RateBps > 0 {
		t += sim.FromSeconds(float64(n) / b.RateBps)
	}
	return t
}

// Transfer records a transfer of n bytes and returns its duration.
func (b *Bus) Transfer(n int) sim.Duration {
	d := b.TransferTime(n)
	b.Transfers++
	b.Bytes += uint64(n)
	b.BusyTime += d
	return d
}

// String summarizes bus usage.
func (b *Bus) String() string {
	return fmt.Sprintf("scsi{%d transfers, %d bytes, busy %v}", b.Transfers, b.Bytes, b.BusyTime)
}
