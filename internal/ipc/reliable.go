package ipc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"castanet/internal/obs"
	"castanet/internal/sim"
)

// Reserved message kinds of the reliability envelope. They live below
// KindUser with the other protocol kinds, so the envelope travels inside
// ordinary frames and the wire format stays unchanged: a stream without
// these kinds is exactly the pre-envelope protocol.
const (
	// KindRelData wraps one application unit: seq(4) crc32(4) followed by
	// the inner frame in standard wire format — a single message or a
	// whole 0xCA59 batch, so one acknowledgement covers the batch.
	KindRelData Kind = 3
	// KindRelAck acknowledges a data sequence number: seq(4) crc32(4).
	// The CRC keeps a corrupted ack from masquerading as a different
	// (possibly future) acknowledgement.
	KindRelAck Kind = 4
	// KindRelHeartbeat is a keep-alive; any inbound frame refreshes the
	// peer watchdog, heartbeats cover idle phases.
	KindRelHeartbeat Kind = 5
)

// ErrTimeout reports that a reliable operation exhausted its retries or
// deadline without an acknowledgement.
var ErrTimeout = errors.New("ipc: operation timed out")

// ErrPeerLost reports that the heartbeat watchdog declared the peer dead.
// It wraps ErrTimeout so timeout-classed handling catches both.
var ErrPeerLost = fmt.Errorf("%w: peer heartbeat lost", ErrTimeout)

// ReliableConfig tunes the reliability envelope.
type ReliableConfig struct {
	// Auto defers the envelope decision to the first inbound frame: an
	// envelope frame switches the transport to reliable mode, anything
	// else to transparent pass-through. Servers use it so a plain client's
	// KindInit negotiates a plain session and a reliable client's
	// enveloped KindInit negotiates a reliable one.
	Auto bool
	// MaxRetries bounds retransmissions per data frame (default 8).
	MaxRetries int
	// RetryBase is the first acknowledgement wait (default 2ms); it
	// doubles per retry up to RetryCap (default 100ms).
	RetryBase time.Duration
	RetryCap  time.Duration
	// OpDeadline caps one Send including all retries (default 10s; < 0
	// disables).
	OpDeadline time.Duration
	// Heartbeat is the keep-alive period; 0 disables heartbeats and the
	// peer watchdog.
	Heartbeat time.Duration
	// PeerTimeout is the silence interval after which the peer is declared
	// lost (default 4 × Heartbeat).
	PeerTimeout time.Duration
	// RecvBuffer is the delivered-unit queue depth (default 256).
	RecvBuffer int
}

func (c ReliableConfig) withDefaults() ReliableConfig {
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.RetryBase == 0 {
		c.RetryBase = 2 * time.Millisecond
	}
	if c.RetryCap == 0 {
		c.RetryCap = 100 * time.Millisecond
	}
	if c.OpDeadline == 0 {
		c.OpDeadline = 10 * time.Second
	}
	if c.PeerTimeout == 0 {
		c.PeerTimeout = 4 * c.Heartbeat
	}
	if c.RecvBuffer == 0 {
		c.RecvBuffer = 256
	}
	return c
}

// ReliableStats counts envelope activity.
type ReliableStats struct {
	Sent           uint64 // data frames sent first time
	Retransmits    uint64
	Delivered      uint64 // in-order data messages handed to Recv
	AcksSent       uint64
	CorruptDropped uint64 // frames failing the CRC or envelope parse
	DupDropped     uint64 // retransmit duplicates suppressed
	Heartbeats     uint64
	Timeouts       uint64 // operations abandoned: retry budget, deadline, peer loss
}

// relObs mirrors ReliableStats into registry counters (all nil when the
// transport is uninstrumented; obs counters are nil-safe).
type relObs struct {
	sent, retransmits, delivered, acksSent       *obs.Counter
	corruptDropped, dupDropped, heartbeats, tout *obs.Counter
}

const (
	modeUndecided = iota
	modeEnvelope
	modeRaw
)

// ReliableTransport layers exactly-once, in-order delivery over a lossy
// Transport: every application unit — one message or one batch — travels
// in a CRC-protected envelope with a sequence number, is acknowledged by
// the peer, and is retransmitted with capped exponential backoff until
// acknowledged or the retry budget runs out. Duplicates created by
// retransmission (or by the link itself) are suppressed by sequence
// number. The sender is stop-and-wait — one data frame in flight — which
// the strictly alternating co-simulation protocol never notices.
type ReliableTransport struct {
	inner Transport
	cfg   ReliableConfig

	sendMu sync.Mutex // one in-flight data frame
	wmu    sync.Mutex // serializes inner.Send (acks/heartbeats interleave)
	seq    uint32

	recvq chan []Message
	acks  chan uint32

	recvMu  sync.Mutex
	pending []Message // unread tail of the unit Recv is consuming

	done     chan struct{}
	doneOnce sync.Once

	mu           sync.Mutex
	mode         int
	lastHeard    time.Time
	lastAccepted uint32
	failErr      error
	stats        ReliableStats

	obs relObs
}

// Instrument routes the envelope counters into the registry under the
// given prefix (conventionally "ipc.reliable"), in addition to the
// Stats() snapshot. Counts accumulated before Instrument stay only in
// Stats; a nil registry is a no-op. Safe to call while the transport's
// goroutines are running.
func (t *ReliableTransport) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	o := relObs{
		sent:           reg.Counter(prefix + ".sent"),
		retransmits:    reg.Counter(prefix + ".retransmits"),
		delivered:      reg.Counter(prefix + ".delivered"),
		acksSent:       reg.Counter(prefix + ".acks_sent"),
		corruptDropped: reg.Counter(prefix + ".corrupt_dropped"),
		dupDropped:     reg.Counter(prefix + ".dup_dropped"),
		heartbeats:     reg.Counter(prefix + ".heartbeats"),
		tout:           reg.Counter(prefix + ".timeouts"),
	}
	t.mu.Lock()
	t.obs = o
	t.mu.Unlock()
}

// NewReliable wraps inner in the reliability envelope and starts its
// reader (and, with Heartbeat set, watchdog) goroutines. Close releases
// them.
func NewReliable(inner Transport, cfg ReliableConfig) *ReliableTransport {
	cfg = cfg.withDefaults()
	t := &ReliableTransport{
		inner:     inner,
		cfg:       cfg,
		recvq:     make(chan []Message, cfg.RecvBuffer),
		acks:      make(chan uint32, 16),
		done:      make(chan struct{}),
		mode:      modeEnvelope,
		lastHeard: time.Now(),
	}
	if cfg.Auto {
		t.mode = modeUndecided
	}
	go t.readLoop()
	if cfg.Heartbeat > 0 {
		go t.heartbeatLoop()
	}
	return t
}

// Stats returns a snapshot of the envelope counters.
func (t *ReliableTransport) Stats() ReliableStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// bump applies one counter update under the mutex and returns the current
// registry handles, so call sites can mirror the update into the registry
// with e.g. t.bump(...).sent.Inc() — the handles are nil (and Inc a
// no-op) until Instrument is called.
func (t *ReliableTransport) bump(fn func(*ReliableStats)) relObs {
	t.mu.Lock()
	fn(&t.stats)
	o := t.obs
	t.mu.Unlock()
	return o
}

func (t *ReliableTransport) modeNow() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.mode
}

// decide pins the negotiated mode on the first inbound frame.
func (t *ReliableTransport) decide(mode int) {
	t.mu.Lock()
	if t.mode == modeUndecided {
		t.mode = mode
	}
	t.mu.Unlock()
}

func (t *ReliableTransport) touch() {
	t.mu.Lock()
	t.lastHeard = time.Now()
	t.mu.Unlock()
}

func (t *ReliableTransport) heard() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastHeard
}

// fail records the terminal error, wakes every waiter and tears the link
// down. First error wins.
func (t *ReliableTransport) fail(err error) {
	t.mu.Lock()
	if t.failErr == nil {
		t.failErr = err
	}
	t.mu.Unlock()
	t.doneOnce.Do(func() { close(t.done) })
	t.inner.Close()
}

// termErr is the error Send/Recv report once the transport is down.
func (t *ReliableTransport) termErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.failErr != nil && !errors.Is(t.failErr, ErrClosed) {
		return t.failErr
	}
	return ErrClosed
}

func (t *ReliableTransport) write(m Message) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	return t.inner.Send(m)
}

// envelope wraps m in a KindRelData frame.
func envelope(seq uint32, m Message) (Message, error) {
	var buf bytes.Buffer
	buf.Write(make([]byte, 8))
	if err := Encode(&buf, m); err != nil {
		return Message{}, err
	}
	return sealEnvelope(seq, m.Time, buf.Bytes()), nil
}

// envelopeBatch wraps msgs in one KindRelData frame. A single message
// travels in the plain single-frame layout (byte-identical to envelope);
// more than one ride a 0xCA59 batch frame, so one sequence number and
// one acknowledgement cover the whole batch. The messages are copied
// into the envelope's own buffer, so the caller's slice is not retained
// across retransmissions.
func envelopeBatch(seq uint32, msgs []Message) (Message, error) {
	if len(msgs) == 1 {
		return envelope(seq, msgs[0])
	}
	var buf bytes.Buffer
	buf.Write(make([]byte, 8))
	if err := EncodeBatch(&buf, msgs); err != nil {
		return Message{}, err
	}
	return sealEnvelope(seq, msgs[len(msgs)-1].Time, buf.Bytes()), nil
}

// sealEnvelope fills in the seq and CRC of an envelope body whose first
// 8 bytes were reserved.
func sealEnvelope(seq uint32, stamp sim.Time, b []byte) Message {
	binary.BigEndian.PutUint32(b[0:], seq)
	binary.BigEndian.PutUint32(b[4:], crc32.ChecksumIEEE(b[8:]))
	return Message{Kind: KindRelData, Time: stamp, Data: b}
}

// openEnvelope verifies and unwraps a KindRelData frame carrying a
// single message (the pre-batch layout; FuzzOpenEnvelope exercises it).
func openEnvelope(data []byte) (uint32, Message, error) {
	seq, msgs, err := openEnvelopeMsgs(data)
	if err != nil {
		return seq, Message{}, err
	}
	if len(msgs) != 1 {
		return seq, Message{}, fmt.Errorf("%w: envelope carries a batch", ErrBadFrame)
	}
	return seq, msgs[0], nil
}

// openEnvelopeMsgs verifies and unwraps a KindRelData frame into its
// unit: a one-element slice for a single inner frame, all sub-messages
// for an inner batch.
func openEnvelopeMsgs(data []byte) (uint32, []Message, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("%w: short envelope", ErrBadFrame)
	}
	seq := binary.BigEndian.Uint32(data[0:])
	sum := binary.BigEndian.Uint32(data[4:])
	if crc32.ChecksumIEEE(data[8:]) != sum {
		return 0, nil, fmt.Errorf("%w: envelope crc mismatch", ErrBadFrame)
	}
	msgs, err := DecodeAny(bytes.NewReader(data[8:]))
	if err != nil && !errors.Is(err, ErrBadFrame) {
		// A CRC-valid envelope around an undecodable inner frame (e.g. a
		// truncated header surfacing as io.EOF) is still a corrupt frame;
		// classify it so receivers drop it instead of treating the stream
		// as terminated.
		err = fmt.Errorf("%w: inner frame: %v", ErrBadFrame, err)
	}
	return seq, msgs, err
}

// sendFrame transmits one sealed data frame, blocking until the peer
// acknowledges seq, retransmitting with capped exponential backoff, and
// returns a timeout error once the retry budget or the per-op deadline
// is spent. Callers hold sendMu.
func (t *ReliableTransport) sendFrame(frame Message, seq uint32) error {
	var deadline <-chan time.Time
	if t.cfg.OpDeadline > 0 {
		dt := time.NewTimer(t.cfg.OpDeadline)
		defer dt.Stop()
		deadline = dt.C
	}
	wait := t.cfg.RetryBase
	for attempt := 0; ; attempt++ {
		if err := t.write(frame); err != nil {
			return err
		}
		if attempt == 0 {
			t.bump(func(s *ReliableStats) { s.Sent++ }).sent.Inc()
		} else {
			t.bump(func(s *ReliableStats) { s.Retransmits++ }).retransmits.Inc()
		}
		timer := time.NewTimer(wait)
		acked := false
	waiting:
		for {
			select {
			case a := <-t.acks:
				if a >= seq { // stale acks from older frames are skipped
					acked = true
					break waiting
				}
			case <-timer.C:
				break waiting
			case <-deadline:
				timer.Stop()
				err := fmt.Errorf("%w: seq %d unacknowledged at deadline", ErrTimeout, seq)
				t.bump(func(s *ReliableStats) { s.Timeouts++ }).tout.Inc()
				t.fail(err)
				return err
			case <-t.done:
				timer.Stop()
				return t.termErr()
			}
		}
		timer.Stop()
		if acked {
			return nil
		}
		if attempt >= t.cfg.MaxRetries {
			// A stop-and-wait envelope that abandons a frame can no longer
			// keep its exactly-once promise: the link is dead. Failing the
			// transport also unblocks the peer's Recv instead of leaving it
			// waiting on a half-alive pipe.
			err := fmt.Errorf("%w: seq %d unacknowledged after %d attempts", ErrTimeout, seq, attempt+1)
			t.bump(func(s *ReliableStats) { s.Timeouts++ }).tout.Inc()
			t.fail(err)
			return err
		}
		wait *= 2
		if wait > t.cfg.RetryCap {
			wait = t.cfg.RetryCap
		}
	}
}

// Send implements Transport. In envelope mode it blocks until the frame
// is acknowledged. In raw mode (negotiated with a plain peer) it passes
// through.
func (t *ReliableTransport) Send(m Message) error {
	if t.modeNow() != modeEnvelope {
		return t.inner.Send(m)
	}
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	select {
	case <-t.done:
		return t.termErr()
	default:
	}
	t.seq++
	seq := t.seq
	frame, err := envelope(seq, m)
	if err != nil {
		return err
	}
	return t.sendFrame(frame, seq)
}

// SendBatch implements BatchTransport: the whole batch rides in one
// envelope, and the peer's single ack covers it, so a lossy link costs
// at most one retransmission per δ-window instead of one per cell. The
// caller's slice is not retained.
func (t *ReliableTransport) SendBatch(msgs []Message) error {
	if len(msgs) == 0 {
		return errors.New("ipc: empty batch")
	}
	if t.modeNow() != modeEnvelope {
		bt, ok := t.inner.(BatchTransport)
		if !ok {
			return errors.New("ipc: inner transport cannot carry batches")
		}
		return bt.SendBatch(msgs)
	}
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	select {
	case <-t.done:
		return t.termErr()
	default:
	}
	t.seq++
	seq := t.seq
	frame, err := envelopeBatch(seq, msgs)
	if err != nil {
		return err
	}
	return t.sendFrame(frame, seq)
}

// recvUnit returns the next delivered unit. After Close or peer loss it
// drains already-delivered units first, then reports the terminal error.
func (t *ReliableTransport) recvUnit() ([]Message, error) {
	select {
	case u := <-t.recvq:
		return u, nil
	case <-t.done:
		select {
		case u := <-t.recvq:
			return u, nil
		default:
			return nil, t.termErr()
		}
	}
}

// Recv implements Transport: it delivers the next in-order application
// message, popping one at a time from the delivered-unit stream.
func (t *ReliableTransport) Recv() (Message, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	if len(t.pending) == 0 {
		u, err := t.recvUnit()
		if err != nil {
			return Message{}, err
		}
		t.pending = u
	}
	m := t.pending[0]
	t.pending = t.pending[1:]
	return m, nil
}

// RecvBatch implements BatchTransport, delivering the peer's next unit
// whole. A unit partially consumed by Recv yields its remaining messages
// first.
func (t *ReliableTransport) RecvBatch() ([]Message, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	if len(t.pending) > 0 {
		u := t.pending
		t.pending = nil
		return u, nil
	}
	return t.recvUnit()
}

// Close implements Transport; it is idempotent and safe to call
// concurrently with Send and Recv.
func (t *ReliableTransport) Close() error {
	t.doneOnce.Do(func() { close(t.done) })
	return t.inner.Close()
}

func (t *ReliableTransport) sendAck(seq uint32) {
	var b [8]byte
	binary.BigEndian.PutUint32(b[:4], seq)
	binary.BigEndian.PutUint32(b[4:], crc32.ChecksumIEEE(b[:4]))
	if err := t.write(Message{Kind: KindRelAck, Data: b[:]}); err == nil {
		t.bump(func(s *ReliableStats) { s.AcksSent++ }).acksSent.Inc()
	}
}

// innerRecvUnit reads the next wire unit from the wrapped transport,
// preserving a raw peer's batch boundaries when the inner is
// batch-capable.
func (t *ReliableTransport) innerRecvUnit() ([]Message, error) {
	if bt, ok := t.inner.(BatchTransport); ok {
		return bt.RecvBatch()
	}
	m, err := t.inner.Recv()
	if err != nil {
		return nil, err
	}
	return []Message{m}, nil
}

// readLoop owns the inner receive side: it verifies, deduplicates and
// acknowledges data frames, routes acks to the sender, and refreshes the
// watchdog. Envelope frames always travel alone, so a multi-message unit
// can only come from a plain batching peer and passes through raw.
func (t *ReliableTransport) readLoop() {
	for {
		u, err := t.innerRecvUnit()
		if err != nil {
			t.fail(err)
			return
		}
		t.touch()
		if len(u) != 1 {
			t.decide(modeRaw)
			select {
			case t.recvq <- u:
			case <-t.done:
				return
			}
			continue
		}
		m := u[0]
		switch m.Kind {
		case KindRelData:
			t.decide(modeEnvelope)
			seq, inner, err := openEnvelopeMsgs(m.Data)
			if err != nil {
				// Corrupt frames are not acknowledged: the sender
				// retransmits, which is the recovery.
				t.bump(func(s *ReliableStats) { s.CorruptDropped++ }).corruptDropped.Inc()
				continue
			}
			t.mu.Lock()
			dup := seq <= t.lastAccepted
			inOrder := seq == t.lastAccepted+1
			if inOrder {
				t.lastAccepted = seq
			}
			t.mu.Unlock()
			if dup {
				// Already delivered; the peer missed our ack — repeat it.
				t.bump(func(s *ReliableStats) { s.DupDropped++ }).dupDropped.Inc()
				t.sendAck(seq)
				continue
			}
			if !inOrder {
				// A gap is impossible under stop-and-wait; drop without
				// ack so the sender recovers it.
				continue
			}
			t.sendAck(seq)
			n := uint64(len(inner))
			select {
			case t.recvq <- inner:
				t.bump(func(s *ReliableStats) { s.Delivered += n }).delivered.Add(n)
			case <-t.done:
				return
			}
		case KindRelAck:
			t.decide(modeEnvelope)
			if len(m.Data) < 8 ||
				crc32.ChecksumIEEE(m.Data[:4]) != binary.BigEndian.Uint32(m.Data[4:]) {
				t.bump(func(s *ReliableStats) { s.CorruptDropped++ }).corruptDropped.Inc()
				continue
			}
			select {
			case t.acks <- binary.BigEndian.Uint32(m.Data):
			default: // stale ack with no waiter
			}
		case KindRelHeartbeat:
			t.decide(modeEnvelope)
		default:
			// A raw frame: a plain peer (negotiates pass-through mode on
			// the first frame) or a mixed stream — deliver as-is.
			t.decide(modeRaw)
			select {
			case t.recvq <- u:
			case <-t.done:
				return
			}
		}
	}
}

// heartbeatLoop sends keep-alives and declares the peer lost after
// PeerTimeout of silence. It only acts in envelope mode: plain peers
// neither send heartbeats nor expect them.
func (t *ReliableTransport) heartbeatLoop() {
	ticker := time.NewTicker(t.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-t.done:
			return
		case <-ticker.C:
			if t.modeNow() != modeEnvelope {
				continue
			}
			if t.write(Message{Kind: KindRelHeartbeat}) == nil {
				t.bump(func(s *ReliableStats) { s.Heartbeats++ }).heartbeats.Inc()
			}
			if pt := t.cfg.PeerTimeout; pt > 0 && time.Since(t.heard()) > pt {
				t.bump(func(s *ReliableStats) { s.Timeouts++ }).tout.Inc()
				t.fail(ErrPeerLost)
				return
			}
		}
	}
}
