// Package ipc carries the time-stamped messages exchanged between the
// network simulator and the HDL simulator / hardware test board. The
// paper's CASTANET library uses standard UNIX inter-process communication;
// here the same message format travels either through an in-process pipe
// (both engines in one Go process) or over a real stream socket, proving
// the coupling is genuinely process-separable.
//
// Every message carries the current simulation time of its originator —
// the basis of the conservative synchronization protocol in package cosim.
package ipc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"castanet/internal/sim"
)

// Kind identifies a message type. Each kind maps to one input queue I_j of
// the co-simulation entity with its own processing delay δ_j.
type Kind uint16

// Reserved kinds. User data kinds start at KindUser.
const (
	// KindSync is a pure time-update (null) message: it advances the
	// receiver's view of the sender's clock without carrying data, letting
	// the conservative protocol make progress through idle phases.
	KindSync Kind = 0
	// KindInit carries the initialization blob sent before time zero
	// (Fig. 2: "initialization of VHDL simulator and Hardware Test Board").
	KindInit Kind = 1
	// KindUser is the first application message kind.
	KindUser Kind = 8
)

// Message is one time-stamped unit of simulator coupling traffic.
type Message struct {
	Kind Kind
	Time sim.Time // originator's simulation time
	Data []byte
}

// String formats the message for logs.
func (m Message) String() string {
	return fmt.Sprintf("msg{kind=%d t=%v len=%d}", m.Kind, m.Time, len(m.Data))
}

// Wire format: magic(2) kind(2) time(8) len(4) data(len), big endian.
const (
	magic       = 0xCA57 // "CAST"
	headerBytes = 2 + 2 + 8 + 4
	// MaxData bounds message payloads; a full ATM cell is 53 bytes, an
	// initialization blob a few KiB. The limit guards the decoder against
	// corrupt length fields.
	MaxData = 1 << 20
)

// ErrBadFrame reports a corrupted or foreign byte stream.
var ErrBadFrame = errors.New("ipc: bad frame")

// Encode writes the message to w in wire format.
func Encode(w io.Writer, m Message) error {
	if len(m.Data) > MaxData {
		return fmt.Errorf("ipc: payload %d exceeds limit", len(m.Data))
	}
	var hdr [headerBytes]byte
	binary.BigEndian.PutUint16(hdr[0:], magic)
	binary.BigEndian.PutUint16(hdr[2:], uint16(m.Kind))
	binary.BigEndian.PutUint64(hdr[4:], uint64(m.Time))
	binary.BigEndian.PutUint32(hdr[12:], uint32(len(m.Data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(m.Data) > 0 {
		if _, err := w.Write(m.Data); err != nil {
			return err
		}
	}
	return nil
}

// Decode reads one message from r.
func Decode(r io.Reader) (Message, error) {
	var hdr [headerBytes]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	if binary.BigEndian.Uint16(hdr[0:]) != magic {
		return Message{}, ErrBadFrame
	}
	m := Message{
		Kind: Kind(binary.BigEndian.Uint16(hdr[2:])),
		Time: sim.Time(binary.BigEndian.Uint64(hdr[4:])),
	}
	n := binary.BigEndian.Uint32(hdr[12:])
	if n > MaxData {
		return Message{}, fmt.Errorf("%w: length %d", ErrBadFrame, n)
	}
	if n > 0 {
		m.Data = make([]byte, n)
		if _, err := io.ReadFull(r, m.Data); err != nil {
			return Message{}, err
		}
	}
	return m, nil
}
