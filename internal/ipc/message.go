// Package ipc carries the time-stamped messages exchanged between the
// network simulator and the HDL simulator / hardware test board. The
// paper's CASTANET library uses standard UNIX inter-process communication;
// here the same message format travels either through an in-process pipe
// (both engines in one Go process) or over a real stream socket, proving
// the coupling is genuinely process-separable.
//
// Every message carries the current simulation time of its originator —
// the basis of the conservative synchronization protocol in package cosim.
package ipc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"castanet/internal/sim"
)

// Kind identifies a message type. Each kind maps to one input queue I_j of
// the co-simulation entity with its own processing delay δ_j.
type Kind uint16

// Reserved kinds. User data kinds start at KindUser.
const (
	// KindSync is a pure time-update (null) message: it advances the
	// receiver's view of the sender's clock without carrying data, letting
	// the conservative protocol make progress through idle phases.
	KindSync Kind = 0
	// KindInit carries the initialization blob sent before time zero
	// (Fig. 2: "initialization of VHDL simulator and Hardware Test Board").
	KindInit Kind = 1
	// KindUser is the first application message kind.
	KindUser Kind = 8
)

// Message is one time-stamped unit of simulator coupling traffic.
type Message struct {
	Kind Kind
	Time sim.Time // originator's simulation time
	Data []byte
	// Trace is the causal cell-trace ID riding with the message (see
	// internal/obs celltrace); 0 means untraced. Untraced messages encode
	// in the original wire format, so streams written by older peers (and
	// the recorded corpora) decode unchanged.
	Trace uint64
}

// String formats the message for logs.
func (m Message) String() string {
	if m.Trace != 0 {
		return fmt.Sprintf("msg{kind=%d t=%v len=%d trace=0x%x}", m.Kind, m.Time, len(m.Data), m.Trace)
	}
	return fmt.Sprintf("msg{kind=%d t=%v len=%d}", m.Kind, m.Time, len(m.Data))
}

// Wire format, big endian. Two frame layouts share the stream,
// distinguished by the magic:
//
//	0xCA57: magic(2) kind(2) time(8) len(4) data(len)           — legacy
//	0xCA58: magic(2) kind(2) time(8) trace(8) len(4) data(len)  — traced
//
// Encode emits the legacy layout whenever Trace == 0, so a coupling that
// never traces produces byte-identical streams to the pre-trace format
// and old recorded corpora remain decodable.
const (
	magic             = 0xCA57 // "CAST"
	magicTraced       = 0xCA58 // legacy magic + 1: the traced frame layout
	headerBytes       = 2 + 2 + 8 + 4
	tracedHeaderBytes = 2 + 2 + 8 + 8 + 4
	// MaxData bounds message payloads; a full ATM cell is 53 bytes, an
	// initialization blob a few KiB. The limit guards the decoder against
	// corrupt length fields.
	MaxData = 1 << 20
)

// ErrBadFrame reports a corrupted or foreign byte stream.
var ErrBadFrame = errors.New("ipc: bad frame")

// Encode writes the message to w in wire format.
func Encode(w io.Writer, m Message) error {
	if len(m.Data) > MaxData {
		return fmt.Errorf("ipc: payload %d exceeds limit", len(m.Data))
	}
	var buf [tracedHeaderBytes]byte
	hdr := buf[:putHeader(buf[:], m)]
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(m.Data) > 0 {
		if _, err := w.Write(m.Data); err != nil {
			return err
		}
	}
	return nil
}

// Decode reads one message from r, accepting both single-frame layouts.
// A 0xCA59 batch frame is a foreign stream to this single-message reader
// and reports ErrBadFrame; batch-aware receivers use DecodeAny.
func Decode(r io.Reader) (Message, error) {
	var mg [2]byte
	if _, err := io.ReadFull(r, mg[:]); err != nil {
		return Message{}, err
	}
	switch v := binary.BigEndian.Uint16(mg[:]); v {
	case magic, magicTraced:
		return decodeSingleBody(r, v)
	default:
		return Message{}, ErrBadFrame
	}
}

// decodeSingleBody reads the remainder of a single-message frame after
// its magic has been consumed.
func decodeSingleBody(r io.Reader, mg uint16) (Message, error) {
	var buf [tracedHeaderBytes]byte
	hdr := buf[2:headerBytes]
	if mg == magicTraced {
		hdr = buf[2:tracedHeaderBytes]
	}
	if _, err := io.ReadFull(r, hdr); err != nil {
		return Message{}, err
	}
	m := Message{
		Kind: Kind(binary.BigEndian.Uint16(buf[2:])),
		Time: sim.Time(binary.BigEndian.Uint64(buf[4:])),
	}
	var n uint32
	if mg == magicTraced {
		m.Trace = binary.BigEndian.Uint64(buf[12:])
		if m.Trace == 0 {
			// A traced frame claiming "untraced" would not round-trip
			// (Encode would emit the legacy layout); reject it as corrupt.
			return Message{}, fmt.Errorf("%w: traced frame with zero trace id", ErrBadFrame)
		}
		n = binary.BigEndian.Uint32(buf[20:])
	} else {
		n = binary.BigEndian.Uint32(buf[12:])
	}
	if n > MaxData {
		return Message{}, fmt.Errorf("%w: length %d", ErrBadFrame, n)
	}
	if n > 0 {
		m.Data = make([]byte, n)
		if _, err := io.ReadFull(r, m.Data); err != nil {
			return Message{}, err
		}
	}
	return m, nil
}
