package ipc

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"testing/quick"

	"castanet/internal/sim"
)

func TestCodecRoundTrip(t *testing.T) {
	f := func(kind uint16, tm int64, data []byte) bool {
		if tm < 0 {
			tm = -tm
		}
		m := Message{Kind: Kind(kind), Time: sim.Time(tm), Data: data}
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return got.Kind == m.Kind && got.Time == m.Time && bytes.Equal(got.Data, m.Data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodecStreamOfMessages(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 100; i++ {
		err := Encode(&buf, Message{Kind: Kind(i), Time: sim.Time(i) * sim.Microsecond, Data: []byte{byte(i)}})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		m, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if m.Kind != Kind(i) || m.Data[0] != byte(i) {
			t.Fatalf("message %d corrupted: %v", i, m)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})); err == nil {
		t.Error("garbage magic accepted")
	}
	// Absurd length field.
	var buf bytes.Buffer
	Encode(&buf, Message{})
	b := buf.Bytes()
	b[12], b[13], b[14], b[15] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := Decode(bytes.NewReader(b)); err == nil {
		t.Error("oversized length accepted")
	}
}

func TestPipeTransport(t *testing.T) {
	a, b := Pipe(4)
	want := Message{Kind: KindUser, Time: sim.Microsecond, Data: []byte("cell")}
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != want.Kind || string(got.Data) != "cell" {
		t.Fatalf("got %v", got)
	}
	// Reverse direction.
	if err := b.Send(Message{Kind: KindSync, Time: 2 * sim.Microsecond}); err != nil {
		t.Fatal(err)
	}
	if m, err := a.Recv(); err != nil || m.Kind != KindSync {
		t.Fatalf("reverse recv = %v, %v", m, err)
	}
	a.Close()
	if err := a.Send(want); err == nil {
		t.Error("send after close succeeded")
	}
	if _, err := b.Recv(); err == nil {
		t.Error("recv after close succeeded with empty queue")
	}
}

func TestPipeDrainsAfterClose(t *testing.T) {
	a, b := Pipe(4)
	a.Send(Message{Kind: 5})
	a.Close()
	if m, err := b.Recv(); err != nil || m.Kind != 5 {
		t.Fatalf("queued message lost on close: %v %v", m, err)
	}
}

func TestSocketTransport(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan Message, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		tr := NewConn(c)
		m, err := tr.Recv()
		if err != nil {
			return
		}
		// Echo back with bumped time.
		m.Time += sim.Microsecond
		tr.Send(m)
		done <- m
	}()
	tr, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	want := Message{Kind: KindUser + 1, Time: 5 * sim.Microsecond, Data: bytes.Repeat([]byte{0xAA}, 53)}
	if err := tr.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != want.Time+sim.Microsecond || len(got.Data) != 53 {
		t.Fatalf("echo = %v", got)
	}
	<-done
}

func TestUnixSocketTransport(t *testing.T) {
	dir := t.TempDir()
	sock := dir + "/coupling.sock"
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Skipf("unix sockets unavailable: %v", err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		tr := NewConn(c)
		for {
			m, err := tr.Recv()
			if err != nil {
				return
			}
			tr.Send(m) // echo
		}
	}()
	tr, err := Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := 0; i < 10; i++ {
		want := Message{Kind: Kind(i), Time: sim.Time(i) * sim.Microsecond, Data: []byte{byte(i)}}
		if err := tr.Send(want); err != nil {
			t.Fatal(err)
		}
		got, err := tr.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != want.Kind || got.Time != want.Time {
			t.Fatalf("echo %d corrupted: %v", i, got)
		}
	}
}

// TestPipeCloseSemantics pins the close/drain contract of the in-process
// transport: queued messages survive Close, Close is idempotent from
// either end, and post-drain operations report ErrClosed.
func TestPipeCloseSemantics(t *testing.T) {
	tests := []struct {
		name string
		run  func(t *testing.T, a, b Transport)
	}{
		{"post-close drain yields queued then ErrClosed", func(t *testing.T, a, b Transport) {
			a.Send(Message{Kind: 1})
			a.Send(Message{Kind: 2})
			a.Close()
			for want := Kind(1); want <= 2; want++ {
				m, err := b.Recv()
				if err != nil || m.Kind != want {
					t.Fatalf("drain %d = %v, %v", want, m, err)
				}
			}
			if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
				t.Fatalf("post-drain recv err = %v", err)
			}
		}},
		{"double close both ends", func(t *testing.T, a, b Transport) {
			for i := 0; i < 2; i++ {
				if err := a.Close(); err != nil {
					t.Fatalf("a.Close #%d: %v", i, err)
				}
				if err := b.Close(); err != nil {
					t.Fatalf("b.Close #%d: %v", i, err)
				}
			}
		}},
		{"send after peer close", func(t *testing.T, a, b Transport) {
			b.Close()
			if err := a.Send(Message{Kind: 1}); !errors.Is(err, ErrClosed) {
				t.Fatalf("send err = %v", err)
			}
		}},
		{"recv after close with empty queue", func(t *testing.T, a, b Transport) {
			a.Close()
			if _, err := a.Recv(); !errors.Is(err, ErrClosed) {
				t.Fatalf("recv err = %v", err)
			}
		}},
		{"concurrent send and close", func(t *testing.T, a, b Transport) {
			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 100; i++ {
						if err := a.Send(Message{Kind: 1}); err != nil {
							if !errors.Is(err, ErrClosed) {
								t.Errorf("send err = %v", err)
							}
							return
						}
					}
				}()
			}
			a.Close()
			wg.Wait()
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			a, b := Pipe(256)
			defer a.Close()
			defer b.Close()
			tc.run(t, a, b)
		})
	}
}

// TestConnCloseIdempotentUnderConcurrentSend pins the socket-transport
// contract: Close is idempotent, and a Send racing Close reports
// ErrClosed rather than an unwrapped net error.
func TestConnCloseIdempotentUnderConcurrentSend(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		tr := NewConn(c)
		for {
			if _, err := tr.Recv(); err != nil {
				return
			}
		}
	}()
	tr, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10000; i++ {
			if err := tr.Send(Message{Kind: KindUser, Data: []byte{1, 2, 3}}); err != nil {
				if !errors.Is(err, ErrClosed) {
					t.Errorf("racing send returned %v, want ErrClosed", err)
				}
				return
			}
		}
	}()
	if err := tr.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	wg.Wait()
	if err := tr.Send(Message{Kind: KindUser}); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close = %v, want ErrClosed", err)
	}
	if _, err := tr.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("recv after close = %v, want ErrClosed", err)
	}
}
