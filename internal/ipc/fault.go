package ipc

import (
	"errors"
	"sync"

	"castanet/internal/obs"
	"castanet/internal/sim"
)

// DirFaults configures the fault processes of one link direction. Rates
// are probabilities per unit (a single message or a whole batch), drawn
// from the transport's seeded RNG, so a given (seed, traffic) pair always
// produces the same fault pattern — channel-fault campaigns are
// reproducible the same way device-fault campaigns are.
type DirFaults struct {
	// Drop is the probability a unit is silently discarded. A dropped
	// batch loses every sub-frame at once, exactly like a lost 0xCA59
	// frame on the wire.
	Drop float64
	// Dup is the probability a unit is delivered twice.
	Dup float64
	// Corrupt is the probability one payload bit is flipped in one
	// randomly chosen sub-frame of the unit. The corrupted copy is a
	// clone; the sender's buffer (and hence any retransmission) is never
	// touched.
	Corrupt float64
	// Delay is the probability a unit is held back and released after
	// 1..DelaySlots later operations on the same direction — deterministic
	// reordering measured in operations, not wall-clock.
	Delay float64
	// DelaySlots bounds the hold-back (default 4 when Delay > 0).
	DelaySlots int
	// PartitionAfter opens a partition window once that many operations
	// have occurred on this direction; 0 means never. During the window
	// every unit is swallowed.
	PartitionAfter uint64
	// PartitionFor is the window length in operations; 0 with
	// PartitionAfter > 0 means the partition never heals.
	PartitionFor uint64
}

// FaultConfig configures a FaultTransport. Send and Recv directions are
// independent: an asymmetric link (requests pass, responses vanish) is a
// distinct, and nastier, failure mode than a symmetric one.
type FaultConfig struct {
	Seed uint64
	Send DirFaults
	Recv DirFaults
}

// FaultStats counts injected faults, for campaign reporting. Each count
// is per fault event: one dropped batch is one Dropped, however many
// sub-frames it carried.
type FaultStats struct {
	Dropped     uint64
	Duplicated  uint64
	Corrupted   uint64
	Delayed     uint64
	Partitioned uint64
}

// faultObs mirrors FaultStats into registry counters (nil handles until
// Instrument; obs counters are nil-safe).
type faultObs struct {
	dropped, duplicated, corrupted, delayed, partitioned *obs.Counter
}

// held is a delayed unit waiting for its release operation.
type held struct {
	u   []Message
	due uint64
}

// dirState is the per-direction fault machinery.
type dirState struct {
	cfg  DirFaults
	rng  *sim.RNG
	ops  uint64
	held []held
}

// FaultTransport wraps a Transport and injects link faults — unit drop,
// duplication, payload corruption, bounded delay/reorder, and partition —
// deterministically from a seeded RNG. It extends the fault philosophy of
// package faultsim from device defects to channel defects: the coupling
// link itself becomes a first-class failure domain. Faults act on wire
// units: a batch is dropped, duplicated, delayed or partitioned whole
// (that is how a 0xCA59 frame fails on a real link), while corruption
// flips a bit inside one randomly chosen sub-frame.
type FaultTransport struct {
	inner Transport

	sendMu sync.Mutex
	send   dirState
	recvMu sync.Mutex
	recv   dirState
	// pending is the unread tail of the unit Recv is consuming; inbound
	// faults apply per unit, before the first sub-message is popped.
	pending []Message

	statMu sync.Mutex
	stats  FaultStats
	obs    faultObs

	partMu      sync.Mutex
	partitioned bool
}

// NewFault wraps inner with the given fault configuration. Distinct RNG
// streams drive the two directions so enabling a fault on one side does
// not perturb the pattern on the other.
func NewFault(inner Transport, cfg FaultConfig) *FaultTransport {
	root := sim.NewRNG(cfg.Seed)
	norm := func(d DirFaults) DirFaults {
		if d.Delay > 0 && d.DelaySlots <= 0 {
			d.DelaySlots = 4
		}
		return d
	}
	return &FaultTransport{
		inner: inner,
		send:  dirState{cfg: norm(cfg.Send), rng: root.Split()},
		recv:  dirState{cfg: norm(cfg.Recv), rng: root.Split()},
	}
}

// Partition severs both directions until Heal — the manual override used
// by watchdog tests; automatic windows are configured per direction.
func (f *FaultTransport) Partition() {
	f.partMu.Lock()
	f.partitioned = true
	f.partMu.Unlock()
}

// Heal reverses a manual Partition.
func (f *FaultTransport) Heal() {
	f.partMu.Lock()
	f.partitioned = false
	f.partMu.Unlock()
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultTransport) Stats() FaultStats {
	f.statMu.Lock()
	defer f.statMu.Unlock()
	return f.stats
}

// Instrument routes the injected-fault counters into the registry under
// the given prefix (conventionally "ipc.fault"), in addition to the
// Stats() snapshot. A nil registry is a no-op; safe to call while traffic
// flows.
func (f *FaultTransport) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	o := faultObs{
		dropped:     reg.Counter(prefix + ".dropped"),
		duplicated:  reg.Counter(prefix + ".duplicated"),
		corrupted:   reg.Counter(prefix + ".corrupted"),
		delayed:     reg.Counter(prefix + ".delayed"),
		partitioned: reg.Counter(prefix + ".partitioned"),
	}
	f.statMu.Lock()
	f.obs = o
	f.statMu.Unlock()
}

// bump applies one counter update under the mutex and returns the current
// registry handles so call sites can mirror it, e.g.
// f.bump(...).dropped.Inc() — nil handles no-op until Instrument.
func (f *FaultTransport) bump(fn func(*FaultStats)) faultObs {
	f.statMu.Lock()
	fn(&f.stats)
	o := f.obs
	f.statMu.Unlock()
	return o
}

// cut reports whether the direction is inside a partition window (manual
// or automatic) at its current operation count.
func (f *FaultTransport) cut(s *dirState) bool {
	f.partMu.Lock()
	manual := f.partitioned
	f.partMu.Unlock()
	if manual {
		return true
	}
	c := s.cfg
	if c.PartitionAfter == 0 || s.ops <= c.PartitionAfter {
		return false
	}
	return c.PartitionFor == 0 || s.ops <= c.PartitionAfter+c.PartitionFor
}

// corrupt returns a copy of m with one payload bit flipped (or, for
// payload-less frames, the low bit of the time stamp — a silently wrong
// clock on an unprotected link).
func corrupt(m Message, rng *sim.RNG) Message {
	if len(m.Data) == 0 {
		m.Time ^= 1
		return m
	}
	data := append([]byte(nil), m.Data...)
	data[rng.Intn(len(data))] ^= 1 << uint(rng.Intn(8))
	m.Data = data
	return m
}

// corruptUnit flips one bit in one randomly chosen sub-frame of u. The
// unit slice is owned by the fault machinery; the chosen message's
// payload is cloned before mutation.
func corruptUnit(u []Message, rng *sim.RNG) {
	i := 0
	if len(u) > 1 {
		i = rng.Intn(len(u))
	}
	u[i] = corrupt(u[i], rng)
}

// takeDue pops the first held unit whose release operation has come.
func (s *dirState) takeDue() ([]Message, bool) {
	for i, h := range s.held {
		if h.due <= s.ops {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return h.u, true
		}
	}
	return nil, false
}

// takeAny pops any held unit — the final drain when the link closes.
func (s *dirState) takeAny() ([]Message, bool) {
	if len(s.held) == 0 {
		return nil, false
	}
	u := s.held[0].u
	s.held = s.held[1:]
	return u, true
}

// innerSend ships one unit on the wrapped transport, preserving the unit
// boundary: a multi-message unit requires a batch-capable inner.
func (f *FaultTransport) innerSend(u []Message) error {
	if len(u) == 1 {
		return f.inner.Send(u[0])
	}
	bt, ok := f.inner.(BatchTransport)
	if !ok {
		return errors.New("ipc: fault inner transport cannot carry batches")
	}
	return bt.SendBatch(u)
}

// sendUnit runs the outbound fault processes on a unit the transport
// owns (callers copy before handing it over if they retain it).
func (f *FaultTransport) sendUnit(u []Message) error {
	f.sendMu.Lock()
	defer f.sendMu.Unlock()
	s := &f.send
	s.ops++
	// Release delayed units whose slot has come before the new one, so a
	// held frame overtaken by later traffic appears reordered.
	for {
		h, ok := s.takeDue()
		if !ok {
			break
		}
		if err := f.innerSend(h); err != nil {
			return err
		}
	}
	if f.cut(s) {
		f.bump(func(st *FaultStats) { st.Partitioned++ }).partitioned.Inc()
		return nil
	}
	c := s.cfg
	if c.Drop > 0 && s.rng.Bool(c.Drop) {
		f.bump(func(st *FaultStats) { st.Dropped++ }).dropped.Inc()
		return nil
	}
	if c.Corrupt > 0 && s.rng.Bool(c.Corrupt) {
		corruptUnit(u, s.rng)
		f.bump(func(st *FaultStats) { st.Corrupted++ }).corrupted.Inc()
	}
	if c.Delay > 0 && s.rng.Bool(c.Delay) {
		s.held = append(s.held, held{u: u, due: s.ops + 1 + uint64(s.rng.Intn(c.DelaySlots))})
		f.bump(func(st *FaultStats) { st.Delayed++ }).delayed.Inc()
		return nil
	}
	if err := f.innerSend(u); err != nil {
		return err
	}
	if c.Dup > 0 && s.rng.Bool(c.Dup) {
		f.bump(func(st *FaultStats) { st.Duplicated++ }).duplicated.Inc()
		return f.innerSend(u)
	}
	return nil
}

// Send implements Transport, running the outbound fault processes.
func (f *FaultTransport) Send(m Message) error {
	return f.sendUnit([]Message{m})
}

// SendBatch implements BatchTransport. The slice is copied immediately
// (it may sit in the delay line past the call), so the caller may reuse
// it. Whole-batch drop/dup/delay/partition model frame-level link
// failures; corruption hits one sub-frame.
func (f *FaultTransport) SendBatch(msgs []Message) error {
	if len(msgs) == 0 {
		return errors.New("ipc: empty batch")
	}
	u := make([]Message, len(msgs))
	copy(u, msgs)
	return f.sendUnit(u)
}

// recvUnit reads the next unit from the wrapped transport and runs the
// inbound fault processes on it. A dropped inbound unit makes the read
// continue with the next one — from the caller's view it simply never
// arrived.
func (f *FaultTransport) recvUnit() ([]Message, error) {
	s := &f.recv
	for {
		s.ops++
		if u, ok := s.takeDue(); ok {
			return u, nil
		}
		var u []Message
		var err error
		if bt, ok := f.inner.(BatchTransport); ok {
			u, err = bt.RecvBatch()
		} else {
			var m Message
			if m, err = f.inner.Recv(); err == nil {
				u = []Message{m}
			}
		}
		if err != nil {
			// Drain delayed units before reporting closure, matching Pipe
			// semantics.
			if h, ok := s.takeAny(); ok {
				return h, nil
			}
			return nil, err
		}
		if f.cut(s) {
			f.bump(func(st *FaultStats) { st.Partitioned++ }).partitioned.Inc()
			continue
		}
		c := s.cfg
		if c.Drop > 0 && s.rng.Bool(c.Drop) {
			f.bump(func(st *FaultStats) { st.Dropped++ }).dropped.Inc()
			continue
		}
		if c.Corrupt > 0 && s.rng.Bool(c.Corrupt) {
			corruptUnit(u, s.rng)
			f.bump(func(st *FaultStats) { st.Corrupted++ }).corrupted.Inc()
		}
		if c.Delay > 0 && s.rng.Bool(c.Delay) {
			s.held = append(s.held, held{u: u, due: s.ops + 1 + uint64(s.rng.Intn(c.DelaySlots))})
			f.bump(func(st *FaultStats) { st.Delayed++ }).delayed.Inc()
			continue
		}
		if c.Dup > 0 && s.rng.Bool(c.Dup) {
			s.held = append(s.held, held{u: u, due: s.ops + 1})
			f.bump(func(st *FaultStats) { st.Duplicated++ }).duplicated.Inc()
		}
		return u, nil
	}
}

// Recv implements Transport, popping one message at a time from the
// inbound unit stream.
func (f *FaultTransport) Recv() (Message, error) {
	f.recvMu.Lock()
	defer f.recvMu.Unlock()
	if len(f.pending) == 0 {
		u, err := f.recvUnit()
		if err != nil {
			return Message{}, err
		}
		f.pending = u
	}
	m := f.pending[0]
	f.pending = f.pending[1:]
	return m, nil
}

// RecvBatch implements BatchTransport. A unit partially consumed by Recv
// yields its remaining messages first.
func (f *FaultTransport) RecvBatch() ([]Message, error) {
	f.recvMu.Lock()
	defer f.recvMu.Unlock()
	if len(f.pending) > 0 {
		u := f.pending
		f.pending = nil
		return u, nil
	}
	return f.recvUnit()
}

// Close implements Transport. Outbound units still sitting in the delay
// line are flushed first: delay is reordering, not loss.
func (f *FaultTransport) Close() error {
	f.sendMu.Lock()
	for {
		h, ok := f.send.takeAny()
		if !ok {
			break
		}
		if f.innerSend(h) != nil {
			break
		}
	}
	f.sendMu.Unlock()
	return f.inner.Close()
}
