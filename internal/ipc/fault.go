package ipc

import (
	"sync"

	"castanet/internal/obs"
	"castanet/internal/sim"
)

// DirFaults configures the fault processes of one link direction. Rates
// are probabilities per message, drawn from the transport's seeded RNG, so
// a given (seed, traffic) pair always produces the same fault pattern —
// channel-fault campaigns are reproducible the same way device-fault
// campaigns are.
type DirFaults struct {
	// Drop is the probability a message is silently discarded.
	Drop float64
	// Dup is the probability a message is delivered twice.
	Dup float64
	// Corrupt is the probability one payload bit is flipped. The corrupted
	// copy is a clone; the sender's buffer (and hence any retransmission)
	// is never touched.
	Corrupt float64
	// Delay is the probability a message is held back and released after
	// 1..DelaySlots later operations on the same direction — deterministic
	// reordering measured in operations, not wall-clock.
	Delay float64
	// DelaySlots bounds the hold-back (default 4 when Delay > 0).
	DelaySlots int
	// PartitionAfter opens a partition window once that many operations
	// have occurred on this direction; 0 means never. During the window
	// every message is swallowed.
	PartitionAfter uint64
	// PartitionFor is the window length in operations; 0 with
	// PartitionAfter > 0 means the partition never heals.
	PartitionFor uint64
}

// FaultConfig configures a FaultTransport. Send and Recv directions are
// independent: an asymmetric link (requests pass, responses vanish) is a
// distinct, and nastier, failure mode than a symmetric one.
type FaultConfig struct {
	Seed uint64
	Send DirFaults
	Recv DirFaults
}

// FaultStats counts injected faults, for campaign reporting.
type FaultStats struct {
	Dropped     uint64
	Duplicated  uint64
	Corrupted   uint64
	Delayed     uint64
	Partitioned uint64
}

// faultObs mirrors FaultStats into registry counters (nil handles until
// Instrument; obs counters are nil-safe).
type faultObs struct {
	dropped, duplicated, corrupted, delayed, partitioned *obs.Counter
}

// held is a delayed message waiting for its release operation.
type held struct {
	m   Message
	due uint64
}

// dirState is the per-direction fault machinery.
type dirState struct {
	cfg  DirFaults
	rng  *sim.RNG
	ops  uint64
	held []held
}

// FaultTransport wraps a Transport and injects link faults — message
// drop, duplication, payload corruption, bounded delay/reorder, and
// partition — deterministically from a seeded RNG. It extends the fault
// philosophy of package faultsim from device defects to channel defects:
// the coupling link itself becomes a first-class failure domain.
type FaultTransport struct {
	inner Transport

	sendMu sync.Mutex
	send   dirState
	recvMu sync.Mutex
	recv   dirState

	statMu sync.Mutex
	stats  FaultStats
	obs    faultObs

	partMu      sync.Mutex
	partitioned bool
}

// NewFault wraps inner with the given fault configuration. Distinct RNG
// streams drive the two directions so enabling a fault on one side does
// not perturb the pattern on the other.
func NewFault(inner Transport, cfg FaultConfig) *FaultTransport {
	root := sim.NewRNG(cfg.Seed)
	norm := func(d DirFaults) DirFaults {
		if d.Delay > 0 && d.DelaySlots <= 0 {
			d.DelaySlots = 4
		}
		return d
	}
	return &FaultTransport{
		inner: inner,
		send:  dirState{cfg: norm(cfg.Send), rng: root.Split()},
		recv:  dirState{cfg: norm(cfg.Recv), rng: root.Split()},
	}
}

// Partition severs both directions until Heal — the manual override used
// by watchdog tests; automatic windows are configured per direction.
func (f *FaultTransport) Partition() {
	f.partMu.Lock()
	f.partitioned = true
	f.partMu.Unlock()
}

// Heal reverses a manual Partition.
func (f *FaultTransport) Heal() {
	f.partMu.Lock()
	f.partitioned = false
	f.partMu.Unlock()
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultTransport) Stats() FaultStats {
	f.statMu.Lock()
	defer f.statMu.Unlock()
	return f.stats
}

// Instrument routes the injected-fault counters into the registry under
// the given prefix (conventionally "ipc.fault"), in addition to the
// Stats() snapshot. A nil registry is a no-op; safe to call while traffic
// flows.
func (f *FaultTransport) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	o := faultObs{
		dropped:     reg.Counter(prefix + ".dropped"),
		duplicated:  reg.Counter(prefix + ".duplicated"),
		corrupted:   reg.Counter(prefix + ".corrupted"),
		delayed:     reg.Counter(prefix + ".delayed"),
		partitioned: reg.Counter(prefix + ".partitioned"),
	}
	f.statMu.Lock()
	f.obs = o
	f.statMu.Unlock()
}

// bump applies one counter update under the mutex and returns the current
// registry handles so call sites can mirror it, e.g.
// f.bump(...).dropped.Inc() — nil handles no-op until Instrument.
func (f *FaultTransport) bump(fn func(*FaultStats)) faultObs {
	f.statMu.Lock()
	fn(&f.stats)
	o := f.obs
	f.statMu.Unlock()
	return o
}

// cut reports whether the direction is inside a partition window (manual
// or automatic) at its current operation count.
func (f *FaultTransport) cut(s *dirState) bool {
	f.partMu.Lock()
	manual := f.partitioned
	f.partMu.Unlock()
	if manual {
		return true
	}
	c := s.cfg
	if c.PartitionAfter == 0 || s.ops <= c.PartitionAfter {
		return false
	}
	return c.PartitionFor == 0 || s.ops <= c.PartitionAfter+c.PartitionFor
}

// corrupt returns a copy of m with one payload bit flipped (or, for
// payload-less frames, the low bit of the time stamp — a silently wrong
// clock on an unprotected link).
func corrupt(m Message, rng *sim.RNG) Message {
	if len(m.Data) == 0 {
		m.Time ^= 1
		return m
	}
	data := append([]byte(nil), m.Data...)
	data[rng.Intn(len(data))] ^= 1 << uint(rng.Intn(8))
	m.Data = data
	return m
}

// takeDue pops the first held message whose release operation has come.
func (s *dirState) takeDue() (Message, bool) {
	for i, h := range s.held {
		if h.due <= s.ops {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return h.m, true
		}
	}
	return Message{}, false
}

// takeAny pops any held message — the final drain when the link closes.
func (s *dirState) takeAny() (Message, bool) {
	if len(s.held) == 0 {
		return Message{}, false
	}
	m := s.held[0].m
	s.held = s.held[1:]
	return m, true
}

// Send implements Transport, running the outbound fault processes.
func (f *FaultTransport) Send(m Message) error {
	f.sendMu.Lock()
	defer f.sendMu.Unlock()
	s := &f.send
	s.ops++
	// Release delayed messages whose slot has come before the new one, so
	// a held frame overtaken by later traffic appears reordered.
	for {
		h, ok := s.takeDue()
		if !ok {
			break
		}
		if err := f.inner.Send(h); err != nil {
			return err
		}
	}
	if f.cut(s) {
		f.bump(func(st *FaultStats) { st.Partitioned++ }).partitioned.Inc()
		return nil
	}
	c := s.cfg
	if c.Drop > 0 && s.rng.Bool(c.Drop) {
		f.bump(func(st *FaultStats) { st.Dropped++ }).dropped.Inc()
		return nil
	}
	if c.Corrupt > 0 && s.rng.Bool(c.Corrupt) {
		m = corrupt(m, s.rng)
		f.bump(func(st *FaultStats) { st.Corrupted++ }).corrupted.Inc()
	}
	if c.Delay > 0 && s.rng.Bool(c.Delay) {
		s.held = append(s.held, held{m: m, due: s.ops + 1 + uint64(s.rng.Intn(c.DelaySlots))})
		f.bump(func(st *FaultStats) { st.Delayed++ }).delayed.Inc()
		return nil
	}
	if err := f.inner.Send(m); err != nil {
		return err
	}
	if c.Dup > 0 && s.rng.Bool(c.Dup) {
		f.bump(func(st *FaultStats) { st.Duplicated++ }).duplicated.Inc()
		return f.inner.Send(m)
	}
	return nil
}

// Recv implements Transport, running the inbound fault processes. A
// dropped inbound message makes Recv read the next one — from the
// caller's view the message simply never arrived.
func (f *FaultTransport) Recv() (Message, error) {
	f.recvMu.Lock()
	defer f.recvMu.Unlock()
	s := &f.recv
	for {
		s.ops++
		if m, ok := s.takeDue(); ok {
			return m, nil
		}
		m, err := f.inner.Recv()
		if err != nil {
			// Drain delayed messages before reporting closure, matching
			// Pipe semantics.
			if h, ok := s.takeAny(); ok {
				return h, nil
			}
			return Message{}, err
		}
		if f.cut(s) {
			f.bump(func(st *FaultStats) { st.Partitioned++ }).partitioned.Inc()
			continue
		}
		c := s.cfg
		if c.Drop > 0 && s.rng.Bool(c.Drop) {
			f.bump(func(st *FaultStats) { st.Dropped++ }).dropped.Inc()
			continue
		}
		if c.Corrupt > 0 && s.rng.Bool(c.Corrupt) {
			m = corrupt(m, s.rng)
			f.bump(func(st *FaultStats) { st.Corrupted++ }).corrupted.Inc()
		}
		if c.Delay > 0 && s.rng.Bool(c.Delay) {
			s.held = append(s.held, held{m: m, due: s.ops + 1 + uint64(s.rng.Intn(c.DelaySlots))})
			f.bump(func(st *FaultStats) { st.Delayed++ }).delayed.Inc()
			continue
		}
		if c.Dup > 0 && s.rng.Bool(c.Dup) {
			s.held = append(s.held, held{m: m, due: s.ops + 1})
			f.bump(func(st *FaultStats) { st.Duplicated++ }).duplicated.Inc()
		}
		return m, nil
	}
}

// Close implements Transport. Outbound messages still sitting in the
// delay line are flushed first: delay is reordering, not loss.
func (f *FaultTransport) Close() error {
	f.sendMu.Lock()
	for {
		h, ok := f.send.takeAny()
		if !ok {
			break
		}
		if f.inner.Send(h) != nil {
			break
		}
	}
	f.sendMu.Unlock()
	return f.inner.Close()
}
