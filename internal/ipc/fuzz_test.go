package ipc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

// FuzzDecode throws arbitrary byte streams at the frame decoder. The
// decoder's contract under corruption: every failure is a typed error —
// ErrBadFrame for recognizably corrupt frames, io.EOF /
// io.ErrUnexpectedEOF for truncation — and never a panic; every success
// must survive an Encode→Decode round trip bit-exactly.
func FuzzDecode(f *testing.F) {
	// Seed the corpus with a valid frame, a truncated one, bad magic, and
	// an oversized length field, so the generator starts at the
	// interesting boundaries rather than random noise.
	var valid bytes.Buffer
	if err := Encode(&valid, Message{Kind: KindUser, Time: 12345, Data: []byte("cell")}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:7])
	bad := append([]byte(nil), valid.Bytes()...)
	bad[0] ^= 0xFF
	f.Add(bad)
	long := append([]byte(nil), valid.Bytes()...)
	binary.BigEndian.PutUint32(long[12:], MaxData+1)
	f.Add(long)
	f.Add([]byte{})
	// Traced-layout seeds: a valid traced frame, and a traced frame whose
	// trace field is zero (must be rejected — Encode never emits it).
	var traced bytes.Buffer
	if err := Encode(&traced, Message{Kind: KindUser, Time: 12345, Trace: 0x2a, Data: []byte("cell")}); err != nil {
		f.Fatal(err)
	}
	f.Add(traced.Bytes())
	zeroTrace := append([]byte(nil), traced.Bytes()...)
	binary.BigEndian.PutUint64(zeroTrace[12:], 0)
	f.Add(zeroTrace)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadFrame) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("Decode returned untyped error %v (%T)", err, err)
			}
			return
		}
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			t.Fatalf("re-encode of decoded message failed: %v", err)
		}
		m2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decode of re-encoded message failed: %v", err)
		}
		if m2.Kind != m.Kind || m2.Time != m.Time || m2.Trace != m.Trace || !bytes.Equal(m2.Data, m.Data) {
			t.Fatalf("round trip changed the message: %v -> %v", m, m2)
		}
	})
}

// FuzzBatch throws arbitrary byte streams at the shared-stream decoder
// (single frames and 0xCA59 batches alike). The contract mirrors
// FuzzDecode's: failures are typed, never panics; every accepted unit
// must survive re-encoding — Encode for a single frame, EncodeBatch for
// a batch — and decode back bit-exactly, i.e. Encode/Decode form a
// bijection on the accepted set.
func FuzzBatch(f *testing.F) {
	// Boundary seeds: a valid two-message batch (legacy + traced
	// sub-frames), a single-message batch, plain single frames on the
	// same stream, and the interesting corruptions — truncated body, bad
	// CRC, count/body mismatch, nested batch magic inside the body.
	msgs := []Message{
		{Kind: KindUser, Time: 12345, Data: []byte("cell")},
		{Kind: KindUser, Time: 777, Trace: 0x2A, Data: []byte{0xDE, 0xAD}},
	}
	var batch bytes.Buffer
	if err := EncodeBatch(&batch, msgs); err != nil {
		f.Fatal(err)
	}
	f.Add(batch.Bytes())
	var one bytes.Buffer
	if err := EncodeBatch(&one, msgs[:1]); err != nil {
		f.Fatal(err)
	}
	f.Add(one.Bytes())
	var single bytes.Buffer
	if err := Encode(&single, msgs[1]); err != nil {
		f.Fatal(err)
	}
	f.Add(single.Bytes())
	f.Add(batch.Bytes()[:batchHeaderBytes+3])
	crcBad := append([]byte(nil), batch.Bytes()...)
	crcBad[10] ^= 0x01
	f.Add(crcBad)
	countBad := append([]byte(nil), batch.Bytes()...)
	binary.BigEndian.PutUint32(countBad[2:], 100)
	f.Add(countBad)
	nested := append([]byte(nil), batch.Bytes()...)
	binary.BigEndian.PutUint16(nested[batchHeaderBytes:], magicBatch)
	f.Add(nested)

	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := DecodeAny(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadFrame) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("DecodeAny returned untyped error %v (%T)", err, err)
			}
			return
		}
		if len(u) == 0 {
			t.Fatal("DecodeAny accepted an empty unit")
		}
		var buf bytes.Buffer
		if len(u) == 1 {
			if err := Encode(&buf, u[0]); err != nil {
				t.Fatalf("re-encode of decoded message failed: %v", err)
			}
		} else if err := EncodeBatch(&buf, u); err != nil {
			t.Fatalf("re-encode of decoded batch failed: %v", err)
		}
		u2, err := DecodeAny(&buf)
		if err != nil {
			t.Fatalf("decode of re-encoded unit failed: %v", err)
		}
		if len(u2) != len(u) {
			t.Fatalf("round trip changed the unit size: %d -> %d", len(u), len(u2))
		}
		for i := range u {
			if u2[i].Kind != u[i].Kind || u2[i].Time != u[i].Time ||
				u2[i].Trace != u[i].Trace || !bytes.Equal(u2[i].Data, u[i].Data) {
				t.Fatalf("round trip changed message %d: %v -> %v", i, u[i], u2[i])
			}
		}
	})
}

// FuzzOpenEnvelope drives the reliability envelope's unwrap path with
// arbitrary KindRelData payloads. Corruption must always surface as
// ErrBadFrame (the receive loop drops such frames and lets retransmission
// recover); an accepted envelope must re-envelope to the identical inner
// message under the same sequence number.
func FuzzOpenEnvelope(f *testing.F) {
	env, err := envelope(7, Message{Kind: KindUser, Time: 99, Data: []byte{0xAB, 0xCD}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(env.Data)
	f.Add(env.Data[:6])
	crcBad := append([]byte(nil), env.Data...)
	crcBad[4] ^= 0x01
	f.Add(crcBad)
	// CRC-valid envelope around a truncated inner frame: recompute the
	// checksum over a cut-down body so only the inner decode can object.
	cut := append([]byte(nil), env.Data[:12]...)
	binary.BigEndian.PutUint32(cut[4:], crc32.ChecksumIEEE(cut[8:]))
	f.Add(cut)
	// A traced inner frame: the envelope must carry the trace ID through.
	tracedEnv, err := envelope(8, Message{Kind: KindUser, Time: 100, Trace: 0x2a, Data: []byte{0x01}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tracedEnv.Data)

	f.Fuzz(func(t *testing.T, data []byte) {
		seq, inner, err := openEnvelope(data)
		if err != nil {
			if !errors.Is(err, ErrBadFrame) {
				t.Fatalf("openEnvelope returned untyped error %v (%T)", err, err)
			}
			return
		}
		again, err := envelope(seq, inner)
		if err != nil {
			t.Fatalf("re-envelope failed: %v", err)
		}
		seq2, inner2, err := openEnvelope(again.Data)
		if err != nil {
			t.Fatalf("unwrap of re-enveloped frame failed: %v", err)
		}
		if seq2 != seq || inner2.Kind != inner.Kind || inner2.Time != inner.Time ||
			inner2.Trace != inner.Trace || !bytes.Equal(inner2.Data, inner.Data) {
			t.Fatalf("envelope round trip changed the frame: seq %d->%d, %v -> %v",
				seq, seq2, inner, inner2)
		}
	})
}
