package ipc

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// Batch framing. The conservative protocol proves that every message up
// to the declared lookahead δ_j is safe to deliver, so the coupling may
// ship a whole δ-window of envelopes in one write instead of paying a
// syscall, a frame encode and several allocations per cell — the same
// economics SCE-MI-style co-emulation transactors exploit by batching
// messages across the link. The layout, big endian:
//
//	0xCA59: magic(2) count(4) bodyLen(4) crc32(4) body(bodyLen)
//
// body is the concatenation of count standard sub-frames, each in the
// 0xCA57/0xCA58 single-message layout (sub-frames carry their own length
// fields, so the body is self-delimiting), protected as a unit by one
// CRC-32 (IEEE) — trace IDs, kinds and stamps travel unchanged inside
// their sub-frames. A batch never nests.
//
// Peers that predate batching reject the 0xCA59 magic as ErrBadFrame, so
// a batch can only travel on a link whose both ends enabled it; streams
// that never batch stay byte-identical to the pre-batch format.
const (
	magicBatch       = 0xCA59 // legacy magic + 2: the batch frame layout
	batchHeaderBytes = 2 + 4 + 4 + 4
	// MaxBatchBytes bounds the batch body; it guards the decoder against
	// corrupt length fields the same way MaxData guards sub-frames.
	MaxBatchBytes = 1 << 24
)

// encBuf is a pooled encode buffer. The pool holds *encBuf (not []byte)
// so Get/Put never allocate for the interface conversion, keeping the
// steady-state batched encode path at zero allocations per call.
type encBuf struct{ b []byte }

var encPool = sync.Pool{New: func() interface{} { return new(encBuf) }}

// bodyPool recycles batch decode buffers. Sub-frame payloads are copied
// out during the parse, so the body buffer is free the moment DecodeBatch
// returns.
var bodyPool = sync.Pool{New: func() interface{} { return new(encBuf) }}

// putHeader writes m's single-frame header into buf and returns its
// length (headerBytes or tracedHeaderBytes). buf must hold
// tracedHeaderBytes.
func putHeader(buf []byte, m Message) int {
	binary.BigEndian.PutUint16(buf[2:], uint16(m.Kind))
	binary.BigEndian.PutUint64(buf[4:], uint64(m.Time))
	if m.Trace != 0 {
		binary.BigEndian.PutUint16(buf[0:], magicTraced)
		binary.BigEndian.PutUint64(buf[12:], m.Trace)
		binary.BigEndian.PutUint32(buf[20:], uint32(len(m.Data)))
		return tracedHeaderBytes
	}
	binary.BigEndian.PutUint16(buf[0:], magic)
	binary.BigEndian.PutUint32(buf[12:], uint32(len(m.Data)))
	return headerBytes
}

// appendFrame appends m in standard single-frame wire format.
func appendFrame(dst []byte, m Message) ([]byte, error) {
	if len(m.Data) > MaxData {
		return nil, fmt.Errorf("ipc: payload %d exceeds limit", len(m.Data))
	}
	var hdr [tracedHeaderBytes]byte
	n := putHeader(hdr[:], m)
	dst = append(dst, hdr[:n]...)
	return append(dst, m.Data...), nil
}

// EncodeBatch writes msgs as one 0xCA59 batch frame in a single Write.
// The encode buffer comes from a pool, so the steady-state path performs
// no allocations; msgs is not retained. An empty batch is an error — the
// caller's flush logic, not the wire, decides that there is nothing to
// say.
func EncodeBatch(w io.Writer, msgs []Message) error {
	if len(msgs) == 0 {
		return fmt.Errorf("ipc: empty batch")
	}
	eb := encPool.Get().(*encBuf)
	buf := eb.b[:0]
	var zero [batchHeaderBytes]byte
	buf = append(buf, zero[:]...)
	var err error
	for _, m := range msgs {
		if buf, err = appendFrame(buf, m); err != nil {
			eb.b = buf[:0]
			encPool.Put(eb)
			return err
		}
	}
	body := buf[batchHeaderBytes:]
	if len(body) > MaxBatchBytes {
		eb.b = buf[:0]
		encPool.Put(eb)
		return fmt.Errorf("ipc: batch body %d exceeds limit", len(body))
	}
	binary.BigEndian.PutUint16(buf[0:], magicBatch)
	binary.BigEndian.PutUint32(buf[2:], uint32(len(msgs)))
	binary.BigEndian.PutUint32(buf[6:], uint32(len(body)))
	binary.BigEndian.PutUint32(buf[10:], crc32.ChecksumIEEE(body))
	_, err = w.Write(buf)
	eb.b = buf[:0]
	encPool.Put(eb)
	return err
}

// DecodeBatch reads the remainder of a batch frame after its magic has
// been consumed, verifying the CRC before any sub-frame is parsed. Every
// inconsistency inside a CRC-valid body — truncated sub-frame, trailing
// bytes, nested batch — is corruption and reports ErrBadFrame.
func decodeBatchBody(r io.Reader) ([]Message, error) {
	var hdr [batchHeaderBytes - 2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	count := binary.BigEndian.Uint32(hdr[0:])
	bodyLen := binary.BigEndian.Uint32(hdr[4:])
	sum := binary.BigEndian.Uint32(hdr[8:])
	if bodyLen > MaxBatchBytes {
		return nil, fmt.Errorf("%w: batch body length %d", ErrBadFrame, bodyLen)
	}
	// Every sub-frame is at least a bare legacy header, which bounds the
	// count a body of this size can hold.
	if count == 0 || uint64(count)*headerBytes > uint64(bodyLen) {
		return nil, fmt.Errorf("%w: batch count %d for body %d", ErrBadFrame, count, bodyLen)
	}
	bb := bodyPool.Get().(*encBuf)
	defer func() { bodyPool.Put(bb) }()
	if cap(bb.b) < int(bodyLen) {
		bb.b = make([]byte, bodyLen)
	}
	body := bb.b[:bodyLen]
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: batch crc mismatch", ErrBadFrame)
	}
	br := bytes.NewReader(body)
	msgs := make([]Message, 0, count)
	for i := uint32(0); i < count; i++ {
		m, err := Decode(br)
		if err != nil {
			return nil, fmt.Errorf("%w: batch sub-frame %d: %v", ErrBadFrame, i, err)
		}
		msgs = append(msgs, m)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrBadFrame, br.Len())
	}
	return msgs, nil
}

// DecodeAny reads one frame from r: a single message (either layout)
// arrives as a one-element slice, a 0xCA59 batch as all its sub-messages
// in order. It is the receive-side dual of Encode/EncodeBatch sharing one
// stream.
func DecodeAny(r io.Reader) ([]Message, error) {
	var mg [2]byte
	if _, err := io.ReadFull(r, mg[:]); err != nil {
		return nil, err
	}
	switch binary.BigEndian.Uint16(mg[:]) {
	case magicBatch:
		return decodeBatchBody(r)
	case magic, magicTraced:
		m, err := decodeSingleBody(r, binary.BigEndian.Uint16(mg[:]))
		if err != nil {
			return nil, err
		}
		return []Message{m}, nil
	default:
		return nil, ErrBadFrame
	}
}
