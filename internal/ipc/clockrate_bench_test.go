package ipc_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"castanet/internal/coverify"
	"castanet/internal/dut"
	"castanet/internal/sim"
	"castanet/internal/traffic"
)

// TestWriteClockRateBench measures the headline sim-rate figure — simulated
// hardware clock cycles per wall second through the full coupled switch rig
// on the batched wire protocol — and adds it to BENCH_coupling.json as
// clk_cycles_per_sec. It lives in the external test package so it can
// elaborate a coverify rig on top of this package's transports, and it runs
// after TestWriteCouplingBench in the same invocation (internal-package
// tests register first), so the read-modify-write lands on the freshly
// written report. cmd/benchgate gates the figure like a speedup: a drop
// beyond the tolerance below the committed baseline fails CI.
func TestWriteClockRateBench(t *testing.T) {
	out := os.Getenv("COUPLING_BENCH_OUT")
	if out == "" {
		t.Skip("set COUPLING_BENCH_OUT=<file> to run the sim-rate benchmark")
	}

	// The E1 benchmark shape: CBR load on all four ports at 80% of the
	// 20 MHz byte-clock line rate (1 cell / 53 cycles).
	const load = 0.8
	const perPort = 500
	period := 50 * sim.Nanosecond
	cellTime := sim.Duration(float64(53*period) / load)
	var tr [dut.SwitchPorts]coverify.PortTraffic
	for p := 0; p < dut.SwitchPorts; p++ {
		tr[p] = coverify.PortTraffic{
			Model: &traffic.CBR{Interval: cellTime},
			VCs:   coverify.PortVCs(p),
			Cells: perPort,
		}
	}
	rig := coverify.NewSwitchRig(coverify.SwitchRigConfig{Seed: 1, Traffic: tr, Batch: true})
	start := time.Now()
	if err := rig.Run(sim.Time(perPort+4) * cellTime); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start).Seconds()
	if wall <= 0 {
		t.Fatal("zero wall time measuring clock rate")
	}
	if !rig.Cmp.Clean() {
		t.Fatalf("benchmark workload not clean: %s", rig.Cmp.Summary())
	}
	rate := float64(rig.ClockCycles()) / wall

	doc := map[string]any{}
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("%s: %v", out, err)
		}
	}
	doc["clk_cycles_per_sec"] = rate
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("clk_cycles_per_sec=%.0f (%d cycles in %.2fs) -> %s", rate, rig.ClockCycles(), wall, out)
}
