package ipc

import (
	"bytes"
	"errors"
	"testing"

	"castanet/internal/sim"
)

// The trace-carrying frame layout must never invalidate what older peers
// wrote: untraced messages still encode in the original 16-byte-header
// layout, and frames recorded before trace IDs existed still decode.

// legacyFrame is a frame captured from the pre-trace wire format:
// magic 0xCA57, kind 8 (KindUser), time 12345, payload "cell".
var legacyFrame = []byte{
	0xCA, 0x57, // magic
	0x00, 0x08, // kind
	0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x30, 0x39, // time
	0x00, 0x00, 0x00, 0x04, // len
	'c', 'e', 'l', 'l',
}

// TestDecodeLegacyFrame: a hard-coded pre-trace frame decodes unchanged,
// with a zero (untraced) trace ID.
func TestDecodeLegacyFrame(t *testing.T) {
	m, err := Decode(bytes.NewReader(legacyFrame))
	if err != nil {
		t.Fatalf("legacy frame rejected: %v", err)
	}
	if m.Kind != KindUser || m.Time != sim.Time(12345) || string(m.Data) != "cell" {
		t.Errorf("legacy frame decoded wrong: %v", m)
	}
	if m.Trace != 0 {
		t.Errorf("legacy frame must decode untraced, got trace 0x%x", m.Trace)
	}
}

// TestEncodeUntracedIsLegacy: Trace == 0 emits bytes identical to the
// original format — a never-tracing coupling is wire-compatible with old
// peers by construction.
func TestEncodeUntracedIsLegacy(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Message{Kind: KindUser, Time: 12345, Data: []byte("cell")}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), legacyFrame) {
		t.Errorf("untraced encoding diverged from the legacy layout:\n got %x\nwant %x",
			buf.Bytes(), legacyFrame)
	}
}

// TestTracedRoundTrip: a traced message survives Encode→Decode with its
// trace ID, under the traced magic.
func TestTracedRoundTrip(t *testing.T) {
	in := Message{Kind: KindUser, Time: 777, Trace: 0x2a, Data: []byte{0xDE, 0xAD}}
	var buf bytes.Buffer
	if err := Encode(&buf, in); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if got := uint16(raw[0])<<8 | uint16(raw[1]); got != magicTraced {
		t.Errorf("traced frame magic = 0x%04x, want 0x%04x", got, magicTraced)
	}
	if len(raw) != tracedHeaderBytes+len(in.Data) {
		t.Errorf("traced frame is %d bytes, want %d", len(raw), tracedHeaderBytes+len(in.Data))
	}
	out, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace != in.Trace || out.Kind != in.Kind || out.Time != in.Time || !bytes.Equal(out.Data, in.Data) {
		t.Errorf("traced round trip changed the message: %v -> %v", in, out)
	}
}

// TestTracedZeroRejected: a traced-layout frame claiming trace ID 0 can
// not have been produced by Encode; the decoder must classify it as a bad
// frame rather than silently aliasing the legacy layout.
func TestTracedZeroRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Message{Kind: KindUser, Time: 1, Trace: 5}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for i := 12; i < 20; i++ {
		raw[i] = 0
	}
	if _, err := Decode(bytes.NewReader(raw)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("zero-trace traced frame returned %v, want ErrBadFrame", err)
	}
}

// TestEnvelopeCarriesTrace: the reliability envelope encodes the inner
// message with Encode, so the trace ID crosses a faulty link inside the
// checksummed body and comes back out of openEnvelope intact.
func TestEnvelopeCarriesTrace(t *testing.T) {
	in := Message{Kind: KindUser, Time: 42, Trace: 9, Data: []byte("x")}
	env, err := envelope(3, in)
	if err != nil {
		t.Fatal(err)
	}
	seq, out, err := openEnvelope(env.Data)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 || out.Trace != 9 || out.Kind != in.Kind || out.Time != in.Time {
		t.Errorf("envelope round trip: seq=%d msg=%v", seq, out)
	}
}
