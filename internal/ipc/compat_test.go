package ipc

import (
	"bytes"
	"errors"
	"testing"

	"castanet/internal/sim"
)

// The trace-carrying frame layout must never invalidate what older peers
// wrote: untraced messages still encode in the original 16-byte-header
// layout, and frames recorded before trace IDs existed still decode.

// legacyFrame is a frame captured from the pre-trace wire format:
// magic 0xCA57, kind 8 (KindUser), time 12345, payload "cell".
var legacyFrame = []byte{
	0xCA, 0x57, // magic
	0x00, 0x08, // kind
	0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x30, 0x39, // time
	0x00, 0x00, 0x00, 0x04, // len
	'c', 'e', 'l', 'l',
}

// TestDecodeLegacyFrame: a hard-coded pre-trace frame decodes unchanged,
// with a zero (untraced) trace ID.
func TestDecodeLegacyFrame(t *testing.T) {
	m, err := Decode(bytes.NewReader(legacyFrame))
	if err != nil {
		t.Fatalf("legacy frame rejected: %v", err)
	}
	if m.Kind != KindUser || m.Time != sim.Time(12345) || string(m.Data) != "cell" {
		t.Errorf("legacy frame decoded wrong: %v", m)
	}
	if m.Trace != 0 {
		t.Errorf("legacy frame must decode untraced, got trace 0x%x", m.Trace)
	}
}

// TestEncodeUntracedIsLegacy: Trace == 0 emits bytes identical to the
// original format — a never-tracing coupling is wire-compatible with old
// peers by construction.
func TestEncodeUntracedIsLegacy(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Message{Kind: KindUser, Time: 12345, Data: []byte("cell")}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), legacyFrame) {
		t.Errorf("untraced encoding diverged from the legacy layout:\n got %x\nwant %x",
			buf.Bytes(), legacyFrame)
	}
}

// TestTracedRoundTrip: a traced message survives Encode→Decode with its
// trace ID, under the traced magic.
func TestTracedRoundTrip(t *testing.T) {
	in := Message{Kind: KindUser, Time: 777, Trace: 0x2a, Data: []byte{0xDE, 0xAD}}
	var buf bytes.Buffer
	if err := Encode(&buf, in); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if got := uint16(raw[0])<<8 | uint16(raw[1]); got != magicTraced {
		t.Errorf("traced frame magic = 0x%04x, want 0x%04x", got, magicTraced)
	}
	if len(raw) != tracedHeaderBytes+len(in.Data) {
		t.Errorf("traced frame is %d bytes, want %d", len(raw), tracedHeaderBytes+len(in.Data))
	}
	out, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace != in.Trace || out.Kind != in.Kind || out.Time != in.Time || !bytes.Equal(out.Data, in.Data) {
		t.Errorf("traced round trip changed the message: %v -> %v", in, out)
	}
}

// TestTracedZeroRejected: a traced-layout frame claiming trace ID 0 can
// not have been produced by Encode; the decoder must classify it as a bad
// frame rather than silently aliasing the legacy layout.
func TestTracedZeroRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, Message{Kind: KindUser, Time: 1, Trace: 5}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for i := 12; i < 20; i++ {
		raw[i] = 0
	}
	if _, err := Decode(bytes.NewReader(raw)); !errors.Is(err, ErrBadFrame) {
		t.Errorf("zero-trace traced frame returned %v, want ErrBadFrame", err)
	}
}

// tracedFrame is a frame captured from the 0xCA58 traced wire format:
// kind 8 (KindUser), time 777, trace 0x2A, payload DE AD.
var tracedFrame = []byte{
	0xCA, 0x58, // magic
	0x00, 0x08, // kind
	0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03, 0x09, // time
	0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x2A, // trace
	0x00, 0x00, 0x00, 0x02, // len
	0xDE, 0xAD,
}

// batchFrame is a captured 0xCA59 batch of the two fixtures above: count
// 2, a 46-byte body (legacyFrame then tracedFrame) under one CRC-32.
var batchFrame = append(append([]byte{
	0xCA, 0x59, // batch magic
	0x00, 0x00, 0x00, 0x02, // count
	0x00, 0x00, 0x00, 0x2E, // body length
	0xD1, 0x0C, 0x47, 0x3C, // crc32 (IEEE) of body
}, legacyFrame...), tracedFrame...)

// TestDecodeTracedFixture: a hard-coded 0xCA58 frame decodes unchanged —
// batching must not have disturbed the traced single-frame layout.
func TestDecodeTracedFixture(t *testing.T) {
	m, err := Decode(bytes.NewReader(tracedFrame))
	if err != nil {
		t.Fatalf("traced fixture rejected: %v", err)
	}
	if m.Kind != KindUser || m.Time != sim.Time(777) || m.Trace != 0x2A || !bytes.Equal(m.Data, []byte{0xDE, 0xAD}) {
		t.Errorf("traced fixture decoded wrong: %v", m)
	}
}

// TestDecodeBatchFixture: a hard-coded 0xCA59 batch carrying one legacy
// and one traced sub-frame decodes into both messages in order, each
// bit-identical to its single-frame decoding.
func TestDecodeBatchFixture(t *testing.T) {
	msgs, err := DecodeAny(bytes.NewReader(batchFrame))
	if err != nil {
		t.Fatalf("batch fixture rejected: %v", err)
	}
	if len(msgs) != 2 {
		t.Fatalf("batch fixture decoded to %d messages, want 2", len(msgs))
	}
	if m := msgs[0]; m.Kind != KindUser || m.Time != sim.Time(12345) || m.Trace != 0 || string(m.Data) != "cell" {
		t.Errorf("batch sub-frame 0 decoded wrong: %v", m)
	}
	if m := msgs[1]; m.Kind != KindUser || m.Time != sim.Time(777) || m.Trace != 0x2A || !bytes.Equal(m.Data, []byte{0xDE, 0xAD}) {
		t.Errorf("batch sub-frame 1 decoded wrong: %v", m)
	}
}

// TestEncodeBatchMatchesFixture pins the batch layout bit-exactly:
// encoding the two fixture messages must reproduce the captured frame.
func TestEncodeBatchMatchesFixture(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		{Kind: KindUser, Time: 12345, Data: []byte("cell")},
		{Kind: KindUser, Time: 777, Trace: 0x2A, Data: []byte{0xDE, 0xAD}},
	}
	if err := EncodeBatch(&buf, msgs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), batchFrame) {
		t.Errorf("batch encoding diverged from the captured layout:\n got %x\nwant %x",
			buf.Bytes(), batchFrame)
	}
}

// TestDecodeAnySingleFixtures: the shared-stream decoder returns
// hard-coded single frames of both legacy layouts as one-element units —
// peers that never batch see the pre-batch protocol unchanged.
func TestDecodeAnySingleFixtures(t *testing.T) {
	for name, frame := range map[string][]byte{"legacy": legacyFrame, "traced": tracedFrame} {
		msgs, err := DecodeAny(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("%s fixture rejected by DecodeAny: %v", name, err)
		}
		if len(msgs) != 1 {
			t.Errorf("%s fixture decoded to %d messages, want 1", name, len(msgs))
		}
	}
}

// TestEnvelopeCarriesTrace: the reliability envelope encodes the inner
// message with Encode, so the trace ID crosses a faulty link inside the
// checksummed body and comes back out of openEnvelope intact.
func TestEnvelopeCarriesTrace(t *testing.T) {
	in := Message{Kind: KindUser, Time: 42, Trace: 9, Data: []byte("x")}
	env, err := envelope(3, in)
	if err != nil {
		t.Fatal(err)
	}
	seq, out, err := openEnvelope(env.Data)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 || out.Trace != 9 || out.Kind != in.Kind || out.Time != in.Time {
		t.Errorf("envelope round trip: seq=%d msg=%v", seq, out)
	}
}
