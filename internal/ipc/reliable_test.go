package ipc

import (
	"errors"
	"testing"
	"time"

	"castanet/internal/sim"
)

// fastRel is a test config with tight timers so lossy-link tests finish
// quickly.
func fastRel() ReliableConfig {
	return ReliableConfig{
		MaxRetries: 20,
		RetryBase:  time.Millisecond,
		RetryCap:   8 * time.Millisecond,
		OpDeadline: 5 * time.Second,
	}
}

func TestReliableCleanRoundTrip(t *testing.T) {
	a, b := Pipe(16)
	ra := NewReliable(a, fastRel())
	rb := NewReliable(b, fastRel())
	defer ra.Close()
	defer rb.Close()
	for i := 0; i < 10; i++ {
		if err := ra.Send(msg(i)); err != nil {
			t.Fatal(err)
		}
		got, err := rb.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Time != msg(i).Time || got.Kind != KindUser {
			t.Fatalf("message %d arrived as %v", i, got)
		}
		// Reverse direction interleaved.
		if err := rb.Send(msg(100 + i)); err != nil {
			t.Fatal(err)
		}
		if back, err := ra.Recv(); err != nil || back.Time != msg(100+i).Time {
			t.Fatalf("reverse %d = %v, %v", i, back, err)
		}
	}
	if st := ra.Stats(); st.Retransmits != 0 || st.Sent != 10 {
		t.Errorf("clean link stats: %+v", st)
	}
}

func TestReliableExactlyOnceOverLossyLink(t *testing.T) {
	// 25% drop, 10% duplication and 10% corruption in both directions:
	// the envelope must still deliver every message exactly once, in
	// order, with intact payloads.
	const n = 150
	a, b := Pipe(64)
	fault := NewFault(a, FaultConfig{
		Seed: 42,
		Send: DirFaults{Drop: 0.25, Dup: 0.1, Corrupt: 0.1},
		Recv: DirFaults{Drop: 0.25, Dup: 0.1, Corrupt: 0.1},
	})
	ra := NewReliable(fault, fastRel())
	rb := NewReliable(b, fastRel())
	defer ra.Close()
	defer rb.Close()

	recvDone := make(chan error, 1)
	var got []Message
	go func() {
		for i := 0; i < n; i++ {
			m, err := rb.Recv()
			if err != nil {
				recvDone <- err
				return
			}
			got = append(got, m)
		}
		recvDone <- nil
	}()
	for i := 0; i < n; i++ {
		if err := ra.Send(msg(i)); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := <-recvDone; err != nil {
		t.Fatal(err)
	}
	for i, m := range got {
		want := msg(i)
		if m.Time != want.Time || string(m.Data) != string(want.Data) {
			t.Fatalf("delivery %d corrupted or out of order: %v", i, m)
		}
	}
	st := ra.Stats()
	if st.Retransmits == 0 {
		t.Error("lossy link caused no retransmissions")
	}
	rst := rb.Stats()
	if rst.DupDropped == 0 {
		t.Error("no duplicates suppressed despite retransmissions and link dup")
	}
	if rst.CorruptDropped == 0 {
		t.Error("no corrupt frames caught by the CRC")
	}
}

func TestReliableSendTimesOutOnPartition(t *testing.T) {
	a, _ := Pipe(16)
	fault := NewFault(a, FaultConfig{Seed: 1})
	fault.Partition()
	cfg := fastRel()
	cfg.MaxRetries = 3
	r := NewReliable(fault, cfg)
	defer r.Close()
	start := time.Now()
	err := r.Send(msg(0))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Errorf("retry exhaustion took %v", time.Since(start))
	}
}

func TestReliableOpDeadline(t *testing.T) {
	a, _ := Pipe(16)
	fault := NewFault(a, FaultConfig{Seed: 1})
	fault.Partition()
	cfg := fastRel()
	cfg.MaxRetries = 10_000
	cfg.OpDeadline = 30 * time.Millisecond
	r := NewReliable(fault, cfg)
	defer r.Close()
	if err := r.Send(msg(0)); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want deadline ErrTimeout", err)
	}
}

func TestReliableHeartbeatDetectsDeadPeer(t *testing.T) {
	// The peer exists but the inbound direction is severed: only the
	// heartbeat watchdog can notice.
	a, b := Pipe(64)
	fault := NewFault(a, FaultConfig{Seed: 1, Recv: DirFaults{PartitionAfter: 1}})
	cfg := fastRel()
	cfg.Heartbeat = 5 * time.Millisecond
	cfg.PeerTimeout = 25 * time.Millisecond
	ra := NewReliable(fault, cfg)
	rb := NewReliable(b, fastRel())
	defer ra.Close()
	defer rb.Close()

	done := make(chan error, 1)
	go func() {
		_, err := ra.Recv()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrPeerLost) || !errors.Is(err, ErrTimeout) {
			t.Fatalf("err = %v, want ErrPeerLost (a timeout)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never fired")
	}
}

func TestReliableAutoNegotiatesRawPeer(t *testing.T) {
	// A plain client against an Auto server: the first (raw) frame pins
	// pass-through mode and traffic flows unchanged both ways.
	a, b := Pipe(16)
	cfg := fastRel()
	cfg.Auto = true
	srv := NewReliable(b, cfg)
	defer srv.Close()
	if err := a.Send(Message{Kind: KindInit, Time: 0}); err != nil {
		t.Fatal(err)
	}
	if m, err := srv.Recv(); err != nil || m.Kind != KindInit {
		t.Fatalf("server got %v, %v", m, err)
	}
	if err := srv.Send(Message{Kind: KindSync, Time: sim.Microsecond}); err != nil {
		t.Fatal(err)
	}
	if m, err := a.Recv(); err != nil || m.Kind != KindSync {
		t.Fatalf("plain client got %v, %v — server leaked envelope frames", m, err)
	}
}

func TestReliableAutoNegotiatesEnvelopePeer(t *testing.T) {
	// A reliable client against the same Auto server: the enveloped
	// KindInit pins reliable mode and acknowledgements flow.
	a, b := Pipe(16)
	cfg := fastRel()
	cfg.Auto = true
	srv := NewReliable(b, cfg)
	cli := NewReliable(a, fastRel())
	defer srv.Close()
	defer cli.Close()
	if err := cli.Send(Message{Kind: KindInit, Time: 0}); err != nil {
		t.Fatal(err)
	}
	if m, err := srv.Recv(); err != nil || m.Kind != KindInit {
		t.Fatalf("server got %v, %v", m, err)
	}
	if err := srv.Send(Message{Kind: KindSync, Time: sim.Microsecond}); err != nil {
		t.Fatal(err)
	}
	if m, err := cli.Recv(); err != nil || m.Kind != KindSync {
		t.Fatalf("client got %v, %v", m, err)
	}
	if st := cli.Stats(); st.Sent != 1 {
		t.Errorf("client stats %+v, want one enveloped send", st)
	}
	if st := srv.Stats(); st.Sent != 1 || st.Delivered != 1 {
		t.Errorf("server stats %+v, want envelope mode engaged", st)
	}
}

func TestReliableCloseIdempotentAndConcurrent(t *testing.T) {
	a, b := Pipe(16)
	ra := NewReliable(a, fastRel())
	go func() {
		for i := 0; i < 50; i++ {
			if err := ra.Send(msg(i)); err != nil {
				if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrTimeout) {
					panic(err)
				}
				return
			}
		}
	}()
	go func() {
		rb := NewReliable(b, fastRel())
		for {
			if _, err := rb.Recv(); err != nil {
				return
			}
		}
	}()
	time.Sleep(2 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if err := ra.Close(); err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("close %d: %v", i, err)
		}
	}
	if err := ra.Send(msg(0)); !errors.Is(err, ErrClosed) {
		t.Errorf("send after close = %v, want ErrClosed", err)
	}
}
