package ipc

import (
	"net"
	"testing"
	"time"

	"castanet/internal/sim"
)

// benchEcho starts a TCP echo peer and returns the dialed client conn.
// wrap adapts each side's transport (identity for the raw baseline).
func benchEcho(b *testing.B, wrap func(Transport) Transport) Transport {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		tr := wrap(NewConn(c))
		defer tr.Close()
		for {
			m, err := tr.Recv()
			if err != nil {
				return
			}
			if tr.Send(m) != nil {
				return
			}
		}
	}()
	raw, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close() })
	return raw
}

func benchRoundTrips(b *testing.B, tr Transport) {
	m := Message{Kind: KindUser, Time: sim.Microsecond, Data: make([]byte, 53)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Time += sim.Microsecond
		if err := tr.Send(m); err != nil {
			b.Fatal(err)
		}
		if _, err := tr.Recv(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	tr.Close()
}

// BenchmarkTransport measures one cell-sized round trip per iteration:
// the raw socket framing as the baseline, then the reliability envelope
// on a clean link (pure envelope overhead: seq/crc/ack) and over 5%
// injected loss each way (the retransmission cost the envelope pays to
// keep the verification result intact). Tracked in BENCH_*.json.
func BenchmarkTransport(b *testing.B) {
	rel := ReliableConfig{
		MaxRetries: 12,
		RetryBase:  time.Millisecond,
		RetryCap:   16 * time.Millisecond,
	}
	b.Run("raw-conn", func(b *testing.B) {
		tr := benchEcho(b, func(t Transport) Transport { return t })
		benchRoundTrips(b, tr)
	})
	b.Run("reliable-loss0", func(b *testing.B) {
		tr := benchEcho(b, func(t Transport) Transport { return NewReliable(t, rel) })
		benchRoundTrips(b, NewReliable(tr, rel))
	})
	b.Run("reliable-loss5", func(b *testing.B) {
		tr := benchEcho(b, func(t Transport) Transport { return NewReliable(t, rel) })
		lossy := NewFault(tr, FaultConfig{
			Seed: 1,
			Send: DirFaults{Drop: 0.05},
			Recv: DirFaults{Drop: 0.05},
		})
		benchRoundTrips(b, NewReliable(lossy, rel))
	})
}
