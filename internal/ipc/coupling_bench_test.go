package ipc

import (
	"encoding/json"
	"io"
	"net"
	"os"
	"testing"

	"castanet/internal/sim"
)

// dialUnitEcho starts a TCP echo peer that preserves unit boundaries —
// whatever arrives as one unit (a single frame or a whole 0xCA59 batch)
// is echoed back as one unit — and returns the dialed client side. A
// real socket, not a Pipe, so the figures include the serialization and
// syscall cost the batch frame amortizes.
func dialUnitEcho(b *testing.B) BatchTransport {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		sv := NewConn(c).(BatchTransport)
		defer sv.Close()
		for {
			u, err := sv.RecvBatch()
			if err != nil {
				return
			}
			if len(u) == 1 {
				if sv.Send(u[0]) != nil {
					return
				}
				continue
			}
			if sv.SendBatch(u) != nil {
				return
			}
		}
	}()
	raw, err := Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ln.Close(); raw.Close() })
	return raw.(BatchTransport)
}

// windowMsgs builds one δ-window worth of cell-sized coupling messages.
func windowMsgs(delta int) []Message {
	msgs := make([]Message, delta)
	for i := range msgs {
		msgs[i] = Message{
			Kind: KindUser,
			Time: sim.Time(i+1) * sim.Microsecond,
			Data: make([]byte, 53),
		}
	}
	return msgs
}

// benchWindowUnbatched round-trips one δ-window as delta individual
// frames per iteration — the pre-batching coupling wire protocol.
func benchWindowUnbatched(b *testing.B, delta int) {
	tr := dialUnitEcho(b)
	msgs := windowMsgs(delta)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range msgs {
			if err := tr.Send(m); err != nil {
				b.Fatal(err)
			}
		}
		for range msgs {
			if _, err := tr.Recv(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
}

// benchWindowBatched round-trips the same δ-window as one 0xCA59 batch
// frame per iteration.
func benchWindowBatched(b *testing.B, delta int) {
	tr := dialUnitEcho(b)
	msgs := windowMsgs(delta)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.SendBatch(msgs); err != nil {
			b.Fatal(err)
		}
		got := 0
		for got < delta {
			u, err := tr.RecvBatch()
			if err != nil {
				b.Fatal(err)
			}
			got += len(u)
		}
	}
	b.StopTimer()
}

// benchBatchEncode measures the steady-state batch encoder alone: one
// 64-message window serialized to a discarding writer per iteration.
// The pooled buffers make this zero-alloc after warm-up.
func benchBatchEncode(b *testing.B) {
	msgs := windowMsgs(64)
	// Warm the pools so the steady state, not the first allocation, is
	// what the allocs/op figure reports.
	if err := EncodeBatch(io.Discard, msgs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := EncodeBatch(io.Discard, msgs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// BenchmarkCouplingWindow is the interactive form of the BENCH_coupling
// figures: one δ-window round trip per iteration, unbatched vs batched,
// at a small and a large window.
func BenchmarkCouplingWindow(b *testing.B) {
	b.Run("unbatched-d4", func(b *testing.B) { benchWindowUnbatched(b, 4) })
	b.Run("batched-d4", func(b *testing.B) { benchWindowBatched(b, 4) })
	b.Run("unbatched-d64", func(b *testing.B) { benchWindowUnbatched(b, 64) })
	b.Run("batched-d64", func(b *testing.B) { benchWindowBatched(b, 64) })
	b.Run("encode-64", benchBatchEncode)
}

// couplingBenchRow is one configuration's figures in BENCH_coupling.json.
type couplingBenchRow struct {
	NsPerCell     float64 `json:"ns_per_cell"`
	CellsPerSec   float64 `json:"cells_per_sec"`
	AllocsPerCell float64 `json:"allocs_per_cell"`
}

// couplingBenchReport is the committed BENCH_coupling.json schema. The
// dimensionless rows (speedups, allocs) are what cmd/benchgate gates on;
// the absolute ns figures are informational, they move with the host.
type couplingBenchReport struct {
	UnbatchedD4  couplingBenchRow `json:"unbatched_delta4"`
	BatchedD4    couplingBenchRow `json:"batched_delta4"`
	UnbatchedD64 couplingBenchRow `json:"unbatched_delta64"`
	BatchedD64   couplingBenchRow `json:"batched_delta64"`
	// BatchEncodeAllocsPerOp is the steady-state allocation count of one
	// EncodeBatch of a 64-message window — the zero-alloc claim.
	BatchEncodeAllocsPerOp float64 `json:"batch_encode_64_allocs_per_op"`
	BatchEncodeNsPerOp     float64 `json:"batch_encode_64_ns_per_op"`
	// SpeedupSmall/Large are batched/unbatched cells-per-second ratios at
	// δ=4 and δ=64.
	SpeedupSmall float64 `json:"speedup_small_delta"`
	SpeedupLarge float64 `json:"speedup_large_delta"`
}

// TestWriteCouplingBench measures the batched-vs-unbatched coupling
// figures and writes BENCH_coupling.json. Gated behind COUPLING_BENCH_OUT
// (see the Makefile's bench-all target) so the regular test run stays
// fast.
func TestWriteCouplingBench(t *testing.T) {
	out := os.Getenv("COUPLING_BENCH_OUT")
	if out == "" {
		t.Skip("set COUPLING_BENCH_OUT=<file> to run the coupling benchmark")
	}
	row := func(delta int, f func(*testing.B, int)) couplingBenchRow {
		res := testing.Benchmark(func(b *testing.B) { f(b, delta) })
		perCell := float64(res.NsPerOp()) / float64(delta)
		r := couplingBenchRow{
			NsPerCell:     perCell,
			AllocsPerCell: float64(res.AllocsPerOp()) / float64(delta),
		}
		if perCell > 0 {
			r.CellsPerSec = 1e9 / perCell
		}
		return r
	}
	var report couplingBenchReport
	report.UnbatchedD4 = row(4, benchWindowUnbatched)
	report.BatchedD4 = row(4, benchWindowBatched)
	report.UnbatchedD64 = row(64, benchWindowUnbatched)
	report.BatchedD64 = row(64, benchWindowBatched)
	enc := testing.Benchmark(func(b *testing.B) { benchBatchEncode(b) })
	report.BatchEncodeAllocsPerOp = float64(enc.AllocsPerOp())
	report.BatchEncodeNsPerOp = float64(enc.NsPerOp())
	if report.UnbatchedD4.NsPerCell > 0 {
		report.SpeedupSmall = report.UnbatchedD4.NsPerCell / report.BatchedD4.NsPerCell
	}
	if report.UnbatchedD64.NsPerCell > 0 {
		report.SpeedupLarge = report.UnbatchedD64.NsPerCell / report.BatchedD64.NsPerCell
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", out, data)
}
