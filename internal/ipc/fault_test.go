package ipc

import (
	"bytes"
	"testing"

	"castanet/internal/sim"
)

func msg(i int) Message {
	return Message{Kind: KindUser, Time: sim.Time(i+1) * sim.Microsecond, Data: []byte{byte(i), byte(i >> 8), 0x5A}}
}

// sendN pushes n messages through ft and then closes it, returning every
// message the far pipe end yields.
func faultDeliveries(t *testing.T, cfg FaultConfig, n int) []Message {
	t.Helper()
	a, b := Pipe(2 * n)
	ft := NewFault(a, cfg)
	for i := 0; i < n; i++ {
		if err := ft.Send(msg(i)); err != nil {
			t.Fatal(err)
		}
	}
	ft.Close()
	var out []Message
	for {
		m, err := b.Recv()
		if err != nil {
			return out
		}
		out = append(out, m)
	}
}

func TestFaultDropIsDeterministic(t *testing.T) {
	cfg := FaultConfig{Seed: 99, Send: DirFaults{Drop: 0.3}}
	first := faultDeliveries(t, cfg, 200)
	second := faultDeliveries(t, cfg, 200)
	if len(first) != len(second) {
		t.Fatalf("same seed delivered %d then %d messages", len(first), len(second))
	}
	for i := range first {
		if first[i].Time != second[i].Time {
			t.Fatalf("delivery %d differs between identical runs", i)
		}
	}
	if len(first) == 200 || len(first) == 0 {
		t.Fatalf("drop rate 0.3 delivered %d of 200", len(first))
	}
	if len(first) < 100 || len(first) > 180 {
		t.Errorf("drop rate 0.3 delivered %d of 200, far off expectation", len(first))
	}
}

func TestFaultCorruptClonesPayload(t *testing.T) {
	a, b := Pipe(4)
	ft := NewFault(a, FaultConfig{Seed: 1, Send: DirFaults{Corrupt: 1.0}})
	orig := []byte{1, 2, 3, 4}
	keep := append([]byte(nil), orig...)
	if err := ft.Send(Message{Kind: KindUser, Data: orig}); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, keep) {
		t.Error("sender's buffer was mutated by corruption")
	}
	if bytes.Equal(got.Data, keep) {
		t.Error("payload not corrupted at rate 1.0")
	}
	if st := ft.Stats(); st.Corrupted != 1 {
		t.Errorf("Corrupted = %d", st.Corrupted)
	}
}

func TestFaultDuplicate(t *testing.T) {
	got := faultDeliveries(t, FaultConfig{Seed: 7, Send: DirFaults{Dup: 1.0}}, 5)
	if len(got) != 10 {
		t.Fatalf("delivered %d, want every message twice", len(got))
	}
}

func TestFaultDelayReorders(t *testing.T) {
	// Delay rate 0.5 with traffic behind it: everything is still delivered
	// (held frames flush on later operations and at Close), possibly out
	// of order.
	got := faultDeliveries(t, FaultConfig{Seed: 3, Send: DirFaults{Delay: 0.5, DelaySlots: 3}}, 50)
	if len(got) != 50 {
		t.Fatalf("delivered %d of 50", len(got))
	}
	seen := map[sim.Time]bool{}
	inOrder := true
	var last sim.Time
	for _, m := range got {
		if seen[m.Time] {
			t.Fatalf("duplicate delivery at %v", m.Time)
		}
		seen[m.Time] = true
		if m.Time < last {
			inOrder = false
		}
		last = m.Time
	}
	if inOrder {
		t.Error("delay rate 0.5 never reordered 50 messages")
	}
}

func TestFaultPartitionWindow(t *testing.T) {
	cfg := FaultConfig{Seed: 5, Send: DirFaults{PartitionAfter: 10, PartitionFor: 20}}
	got := faultDeliveries(t, cfg, 50)
	// Ops 1..10 pass, 11..30 are swallowed, 31..50 pass.
	if len(got) != 30 {
		t.Fatalf("delivered %d, want 30 around the partition window", len(got))
	}
	if got[9].Time != msg(9).Time || got[10].Time != msg(30).Time {
		t.Errorf("partition window misplaced: boundary deliveries %v, %v", got[9].Time, got[10].Time)
	}
}

func TestFaultManualPartition(t *testing.T) {
	a, b := Pipe(8)
	ft := NewFault(a, FaultConfig{Seed: 1})
	ft.Partition()
	if err := ft.Send(msg(0)); err != nil {
		t.Fatal(err)
	}
	ft.Heal()
	if err := ft.Send(msg(1)); err != nil {
		t.Fatal(err)
	}
	ft.Close()
	m, err := b.Recv()
	if err != nil || m.Time != msg(1).Time {
		t.Fatalf("first delivery after heal = %v, %v", m, err)
	}
	if _, err := b.Recv(); err == nil {
		t.Error("partitioned message leaked")
	}
	if st := ft.Stats(); st.Partitioned != 1 {
		t.Errorf("Partitioned = %d", st.Partitioned)
	}
}

func TestFaultRecvDirection(t *testing.T) {
	a, b := Pipe(64)
	ft := NewFault(a, FaultConfig{Seed: 11, Recv: DirFaults{Drop: 0.5}})
	for i := 0; i < 40; i++ {
		if err := b.Send(msg(i)); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	var n int
	for {
		if _, err := ft.Recv(); err != nil {
			break
		}
		n++
	}
	if n == 0 || n == 40 {
		t.Fatalf("recv-side drop 0.5 delivered %d of 40", n)
	}
	if st := ft.Stats(); st.Dropped == 0 {
		t.Error("no drops counted on recv side")
	}
}
