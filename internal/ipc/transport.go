package ipc

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
)

// Transport moves messages between the coupled simulators. Send must not
// block indefinitely when the peer is draining; Recv blocks until a
// message arrives or the transport closes.
type Transport interface {
	Send(Message) error
	Recv() (Message, error)
	Close() error
}

// BatchTransport is a Transport that can move a whole δ-window of
// messages as one unit. SendBatch ships all messages in a single frame
// (one write, one CRC); it must not retain the caller's slice, so
// implementations that hold messages past the call copy them first.
// RecvBatch returns the next unit exactly as the peer sent it: a batch
// arrives whole and in order, a single Send arrives as a one-element
// unit. Recv on a batch-capable transport pops messages one at a time
// from the same stream, so mixing the two never loses data — only the
// unit boundary.
type BatchTransport interface {
	Transport
	SendBatch([]Message) error
	RecvBatch() ([]Message, error)
}

// pipeEnd is one side of an in-process transport built on buffered
// channels — the default coupling when both engines live in one process.
// Units travel as slices so a batch crosses the channel whole, exactly
// like a 0xCA59 frame crosses a socket.
type pipeEnd struct {
	out  chan<- []Message
	in   <-chan []Message
	done chan struct{}
	once *sync.Once

	rmu     sync.Mutex
	pending []Message // unread tail of the unit Recv is consuming
}

// Pipe returns two connected in-process transports. Both ends implement
// BatchTransport.
func Pipe(buffer int) (a, b Transport) {
	ab := make(chan []Message, buffer)
	ba := make(chan []Message, buffer)
	done := make(chan struct{})
	once := &sync.Once{}
	return &pipeEnd{out: ab, in: ba, done: done, once: once},
		&pipeEnd{out: ba, in: ab, done: done, once: once}
}

// ErrClosed is returned after Close.
var ErrClosed = net.ErrClosed

// sendUnit moves one unit across the pipe. The closed check takes
// priority: without it, a Go select between the closed done channel and
// free buffer space picks randomly, letting sends sneak through after
// Close.
func (p *pipeEnd) sendUnit(u []Message) error {
	select {
	case <-p.done:
		return ErrClosed
	default:
	}
	select {
	case <-p.done:
		return ErrClosed
	case p.out <- u:
		return nil
	}
}

// Send implements Transport.
func (p *pipeEnd) Send(m Message) error {
	return p.sendUnit([]Message{m})
}

// SendBatch implements BatchTransport. The slice is copied so the caller
// may immediately reuse it.
func (p *pipeEnd) SendBatch(msgs []Message) error {
	if len(msgs) == 0 {
		return errors.New("ipc: empty batch")
	}
	u := make([]Message, len(msgs))
	copy(u, msgs)
	return p.sendUnit(u)
}

// recvUnit returns the next unit from the channel, draining anything
// already queued before reporting closure.
func (p *pipeEnd) recvUnit() ([]Message, error) {
	select {
	case u := <-p.in:
		return u, nil
	case <-p.done:
		select {
		case u := <-p.in:
			return u, nil
		default:
			return nil, ErrClosed
		}
	}
}

// Recv implements Transport, popping one message at a time from the
// incoming unit stream.
func (p *pipeEnd) Recv() (Message, error) {
	p.rmu.Lock()
	defer p.rmu.Unlock()
	if len(p.pending) == 0 {
		u, err := p.recvUnit()
		if err != nil {
			return Message{}, err
		}
		p.pending = u
	}
	m := p.pending[0]
	p.pending = p.pending[1:]
	return m, nil
}

// RecvBatch implements BatchTransport. A unit partially consumed by Recv
// yields its remaining messages first.
func (p *pipeEnd) RecvBatch() ([]Message, error) {
	p.rmu.Lock()
	defer p.rmu.Unlock()
	if len(p.pending) > 0 {
		u := p.pending
		p.pending = nil
		return u, nil
	}
	return p.recvUnit()
}

// Close implements Transport; closing either end closes both.
func (p *pipeEnd) Close() error {
	p.once.Do(func() { close(p.done) })
	return nil
}

// connTransport frames messages over a net.Conn (TCP or Unix domain
// socket) — the real-IPC deployment of the coupling.
type connTransport struct {
	conn      net.Conn
	bw        *bufio.Writer
	br        *bufio.Reader
	wmu       sync.Mutex
	closed    atomic.Bool
	closeOnce sync.Once
	closeErr  error

	rmu     sync.Mutex
	pending []Message // unread tail of the batch Recv is consuming
}

// NewConn wraps an established connection. The result implements
// BatchTransport.
func NewConn(c net.Conn) Transport {
	return &connTransport{conn: c, bw: bufio.NewWriter(c), br: bufio.NewReader(c)}
}

// Dial connects to a listening coupling endpoint. network is "tcp" or
// "unix".
func Dial(network, addr string) (Transport, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

// Send implements Transport with per-message flushing so the peer's
// blocking Recv always makes progress. A Send racing Close reports
// ErrClosed, never a bare net error.
func (t *connTransport) Send(m Message) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	if t.closed.Load() {
		return ErrClosed
	}
	if err := Encode(t.bw, m); err != nil {
		return t.mapErr(err)
	}
	return t.mapErr(t.bw.Flush())
}

// SendBatch implements BatchTransport: one 0xCA59 frame, one flush. The
// pooled encode buffer inside EncodeBatch is copied into the bufio
// writer synchronously, so msgs is never retained.
func (t *connTransport) SendBatch(msgs []Message) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	if t.closed.Load() {
		return ErrClosed
	}
	if err := EncodeBatch(t.bw, msgs); err != nil {
		return t.mapErr(err)
	}
	return t.mapErr(t.bw.Flush())
}

// mapErr folds errors caused by a concurrent local Close into ErrClosed.
func (t *connTransport) mapErr(err error) error {
	if err == nil {
		return nil
	}
	if t.closed.Load() || errors.Is(err, net.ErrClosed) {
		return ErrClosed
	}
	return err
}

// Recv implements Transport. Batch frames arriving on the stream are
// consumed one sub-message at a time.
func (t *connTransport) Recv() (Message, error) {
	t.rmu.Lock()
	defer t.rmu.Unlock()
	if len(t.pending) == 0 {
		u, err := DecodeAny(t.br)
		if err != nil {
			return Message{}, t.mapErr(err)
		}
		t.pending = u
	}
	m := t.pending[0]
	t.pending = t.pending[1:]
	return m, nil
}

// RecvBatch implements BatchTransport, returning the next frame's
// messages as one unit. A frame partially consumed by Recv yields its
// remaining messages first.
func (t *connTransport) RecvBatch() ([]Message, error) {
	t.rmu.Lock()
	defer t.rmu.Unlock()
	if len(t.pending) > 0 {
		u := t.pending
		t.pending = nil
		return u, nil
	}
	u, err := DecodeAny(t.br)
	if err != nil {
		return nil, t.mapErr(err)
	}
	return u, nil
}

// Close implements Transport. It is idempotent and safe to call
// concurrently with Send/Recv; repeated calls return the first result.
func (t *connTransport) Close() error {
	t.closeOnce.Do(func() {
		t.closed.Store(true)
		t.closeErr = t.conn.Close()
	})
	return t.closeErr
}
