package ipc

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
)

// Transport moves messages between the coupled simulators. Send must not
// block indefinitely when the peer is draining; Recv blocks until a
// message arrives or the transport closes.
type Transport interface {
	Send(Message) error
	Recv() (Message, error)
	Close() error
}

// pipeEnd is one side of an in-process transport built on buffered
// channels — the default coupling when both engines live in one process.
type pipeEnd struct {
	out  chan<- Message
	in   <-chan Message
	done chan struct{}
	once *sync.Once
}

// Pipe returns two connected in-process transports.
func Pipe(buffer int) (a, b Transport) {
	ab := make(chan Message, buffer)
	ba := make(chan Message, buffer)
	done := make(chan struct{})
	once := &sync.Once{}
	return &pipeEnd{out: ab, in: ba, done: done, once: once},
		&pipeEnd{out: ba, in: ab, done: done, once: once}
}

// ErrClosed is returned after Close.
var ErrClosed = net.ErrClosed

// Send implements Transport. The closed check takes priority: without it,
// a Go select between the closed done channel and free buffer space picks
// randomly, letting sends sneak through after Close.
func (p *pipeEnd) Send(m Message) error {
	select {
	case <-p.done:
		return ErrClosed
	default:
	}
	select {
	case <-p.done:
		return ErrClosed
	case p.out <- m:
		return nil
	}
}

// Recv implements Transport.
func (p *pipeEnd) Recv() (Message, error) {
	select {
	case m := <-p.in:
		return m, nil
	case <-p.done:
		// Drain anything already queued before reporting closure.
		select {
		case m := <-p.in:
			return m, nil
		default:
			return Message{}, ErrClosed
		}
	}
}

// Close implements Transport; closing either end closes both.
func (p *pipeEnd) Close() error {
	p.once.Do(func() { close(p.done) })
	return nil
}

// connTransport frames messages over a net.Conn (TCP or Unix domain
// socket) — the real-IPC deployment of the coupling.
type connTransport struct {
	conn      net.Conn
	bw        *bufio.Writer
	br        *bufio.Reader
	wmu       sync.Mutex
	closed    atomic.Bool
	closeOnce sync.Once
	closeErr  error
}

// NewConn wraps an established connection.
func NewConn(c net.Conn) Transport {
	return &connTransport{conn: c, bw: bufio.NewWriter(c), br: bufio.NewReader(c)}
}

// Dial connects to a listening coupling endpoint. network is "tcp" or
// "unix".
func Dial(network, addr string) (Transport, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

// Send implements Transport with per-message flushing so the peer's
// blocking Recv always makes progress. A Send racing Close reports
// ErrClosed, never a bare net error.
func (t *connTransport) Send(m Message) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	if t.closed.Load() {
		return ErrClosed
	}
	if err := Encode(t.bw, m); err != nil {
		return t.mapErr(err)
	}
	return t.mapErr(t.bw.Flush())
}

// mapErr folds errors caused by a concurrent local Close into ErrClosed.
func (t *connTransport) mapErr(err error) error {
	if err == nil {
		return nil
	}
	if t.closed.Load() || errors.Is(err, net.ErrClosed) {
		return ErrClosed
	}
	return err
}

// Recv implements Transport.
func (t *connTransport) Recv() (Message, error) {
	m, err := Decode(t.br)
	if err != nil {
		return Message{}, t.mapErr(err)
	}
	return m, nil
}

// Close implements Transport. It is idempotent and safe to call
// concurrently with Send/Recv; repeated calls return the first result.
func (t *connTransport) Close() error {
	t.closeOnce.Do(func() {
		t.closed.Store(true)
		t.closeErr = t.conn.Close()
	})
	return t.closeErr
}
