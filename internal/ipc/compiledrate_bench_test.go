package ipc_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"castanet/internal/coverify"
	"castanet/internal/dut"
	"castanet/internal/sim"
	"castanet/internal/traffic"
)

// rtlCellRate runs the E1 pure-RTL regression bench — the workload whose
// every signal toggle lives inside one HDL kernel, so it measures the
// kernel itself rather than the coupling — and returns the best
// cells-checked-per-wall-second of three runs. noCompiled selects the
// plain event-driven kernel over the compiled fast path.
func rtlCellRate(t *testing.T, perPort uint64, noCompiled bool) float64 {
	t.Helper()
	const load = 0.8
	period := 50 * sim.Nanosecond
	cellTime := sim.Duration(float64(53*period) / load)
	var tr [dut.SwitchPorts]coverify.PortTraffic
	for p := 0; p < dut.SwitchPorts; p++ {
		tr[p] = coverify.PortTraffic{
			Model: &traffic.CBR{Interval: cellTime},
			VCs:   coverify.PortVCs(p),
			Cells: perPort,
		}
	}
	best := 0.0
	for run := 0; run < 3; run++ {
		rig := coverify.NewRTLRig(coverify.SwitchRigConfig{
			Seed: 1, Traffic: tr, NoCompiled: noCompiled,
		})
		start := time.Now()
		if err := rig.Run(); err != nil {
			t.Fatal(err)
		}
		wall := time.Since(start).Seconds()
		if wall <= 0 {
			t.Fatal("zero wall time measuring cell rate")
		}
		if rig.CheckErrors() != 0 || rig.Checked() != rig.Offered {
			t.Fatalf("benchmark workload not clean: %s", rig.Report())
		}
		if rate := float64(rig.Checked()) / wall; rate > best {
			best = rate
		}
	}
	return best
}

// TestWriteCompiledBench measures the HDL kernel's cell throughput on the
// E1 RTL-bench workload in both kernel modes and adds three figures to
// BENCH_coupling.json: hdl_cells_per_sec (compiled fast path, gated
// higher-is-better by cmd/benchgate), hdl_cells_per_sec_event (the plain
// event kernel, informational), and speedup_compiled_e1 (their ratio,
// gated by the speedup_ rule — the committed claim that the compiled
// kernel carries at least ~5x on this workload survives host changes
// because both legs run in the same process).
func TestWriteCompiledBench(t *testing.T) {
	out := os.Getenv("COUPLING_BENCH_OUT")
	if out == "" {
		t.Skip("set COUPLING_BENCH_OUT=<file> to run the compiled-kernel benchmark")
	}

	const perPort = 1000
	compiled := rtlCellRate(t, perPort, false)
	event := rtlCellRate(t, perPort, true)
	if event <= 0 {
		t.Fatal("event-kernel rate is zero")
	}

	doc := map[string]any{}
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("%s: %v", out, err)
		}
	}
	doc["hdl_cells_per_sec"] = compiled
	doc["hdl_cells_per_sec_event"] = event
	doc["speedup_compiled_e1"] = compiled / event
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("hdl_cells_per_sec=%.0f event=%.0f speedup=%.2fx -> %s",
		compiled, event, compiled/event, out)
}
