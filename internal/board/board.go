package board

import (
	"fmt"

	"castanet/internal/cyclesim"
	"castanet/internal/scsi"
	"castanet/internal/sim"
)

// Frame is the pin state of all byte lanes for one board cycle.
type Frame [ByteLanes]byte

// Board is the test board: a device socket, lane configuration, stimulus
// and response memory units, and a SCSI link back to the workstation. All
// times are accounted in simulated real time so the harness can report the
// real-time factor of hardware-in-the-loop verification.
type Board struct {
	Dev      cyclesim.Device
	Cfg      ConfigDataSet
	ClockHz  float64
	MemDepth int // stimulus/response memory depth in cycles per lane
	Bus      *scsi.Bus

	// resolved port indices, built by Configure.
	inIdx      map[string]int
	outIdx     map[string]int
	nIn        int
	configured bool

	// Accounting.
	TestCycles uint64       // completed test cycles
	HWCycles   uint64       // total hardware clock cycles run
	HWTime     sim.Duration // time spent in hardware activity
	SWTime     sim.Duration // time spent in software activity (SCSI + config)
}

// New creates a board around a device. clockHz must not exceed the
// 20 MHz limit of the current implementation; memDepth bounds the test
// cycle duration.
func New(dev cyclesim.Device, clockHz float64, memDepth int) *Board {
	if clockHz <= 0 || clockHz > MaxClockHz {
		panic(fmt.Sprintf("board: clock %g Hz out of range (max %g)", clockHz, MaxClockHz))
	}
	if memDepth < MinCycleLen || memDepth > MaxCycleLen {
		panic(fmt.Sprintf("board: memory depth %d out of range [%d,%d]", memDepth, MinCycleLen, MaxCycleLen))
	}
	return &Board{Dev: dev, ClockHz: clockHz, MemDepth: memDepth, Bus: scsi.Default()}
}

// Configure validates and installs the configuration data set. The
// configuration travels over the SCSI bus (software activity).
func (b *Board) Configure(cfg ConfigDataSet) error {
	if err := cfg.Validate(b.Dev); err != nil {
		return err
	}
	b.Cfg = cfg
	b.inIdx = make(map[string]int)
	b.outIdx = make(map[string]int)
	ins, outs := 0, 0
	for _, p := range b.Dev.Ports() {
		if p.Dir == cyclesim.In {
			b.inIdx[p.Name] = ins
			ins++
		} else {
			b.outIdx[p.Name] = outs
			outs++
		}
	}
	b.nIn = ins
	b.configured = true
	// Configuration data set transfer: a few bytes per mapping entry.
	cfgBytes := 16 * (len(cfg.Inports) + len(cfg.Outports) + len(cfg.IOPorts) + ByteLanes)
	b.SWTime += b.Bus.Transfer(cfgBytes)
	b.Dev.Reset()
	return nil
}

// extract reads a pin range out of a frame.
func extract(f Frame, pr PinRange) uint64 {
	v := uint64(f[pr.Lane]) >> uint(pr.StartBit)
	return v & (1<<uint(pr.Bits) - 1)
}

// insert writes a pin range into a frame.
func insert(f *Frame, pr PinRange, v uint64) {
	mask := byte((1<<uint(pr.Bits) - 1) << uint(pr.StartBit))
	f[pr.Lane] = f[pr.Lane]&^mask | byte(v<<uint(pr.StartBit))&mask
}

// RunTestCycle executes one complete test cycle: the stimulus frames are
// stored to the board (software activity over SCSI), the hardware runs
// len(stim) clock cycles sampling one response frame per cycle (hardware
// activity at real-time speed), and the responses are read back (software
// activity). The cycle duration is bounded by the memory configuration.
func (b *Board) RunTestCycle(stim []Frame) ([]Frame, error) {
	return b.runCycle(stim, "", 0)
}

// RunTestCycleAuto is RunTestCycle with automatic duration: the hardware
// stops early when the named device output port (a control port) takes
// the given value, implementing the paper's "duration of each hardware
// test cycle is automatically calculated from the actual values at the
// control ports". The stimulus still bounds the maximum duration.
func (b *Board) RunTestCycleAuto(stim []Frame, stopPort string, stopValue uint64) ([]Frame, error) {
	if stopPort == "" {
		return nil, fmt.Errorf("board: auto test cycle needs a control port")
	}
	return b.runCycle(stim, stopPort, stopValue)
}

func (b *Board) runCycle(stim []Frame, stopPort string, stopValue uint64) ([]Frame, error) {
	if !b.configured {
		return nil, fmt.Errorf("board: not configured")
	}
	if len(stim) < MinCycleLen || len(stim) > b.MemDepth {
		return nil, fmt.Errorf("board: test cycle of %d cycles outside [%d,%d]",
			len(stim), MinCycleLen, b.MemDepth)
	}
	var stopIdx = -1
	var stopPins PinRange
	if stopPort != "" {
		found := false
		for _, m := range b.Cfg.Outports {
			if m.Port == stopPort {
				stopPins = m.Pins
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("board: control port %q not in outport mappings", stopPort)
		}
		stopIdx = 1
	}

	// Software activity: store stimuli.
	b.SWTime += b.Bus.Transfer(len(stim) * ByteLanes)

	// Hardware activity: clock the device. Lane speed dividers (§3.3:
	// each byte lane is "configurable in direction and speed"): a drive
	// lane with divider n presents a new stimulus value only every n-th
	// board cycle and holds it in between; a sample lane with divider n
	// refreshes its response byte every n-th cycle and repeats it in
	// between, exactly as slower pin electronics would.
	in := make([]uint64, b.nIn)
	resp := make([]Frame, 0, len(stim))
	var heldStim, heldResp Frame
	cycles := 0
	for cycleIdx, frame := range stim {
		for lane := 0; lane < ByteLanes; lane++ {
			div := b.Cfg.Lanes[lane].Divider
			if div <= 1 || cycleIdx%div == 0 {
				heldStim[lane] = frame[lane]
			}
		}
		for _, m := range b.Cfg.Inports {
			in[b.inIdx[m.Port]] = extract(heldStim, m.Pins)
		}
		// Bidirectional pins: first ask the device which direction it
		// drives. We tick once per board cycle; the control evaluation
		// uses the previous cycle's outputs, as real tristate turnaround
		// does. For simplicity bidir input is presented unconditionally;
		// sampling obeys the control flag below.
		for _, m := range b.Cfg.IOPorts {
			in[b.inIdx[m.InPort]] = extract(heldStim, m.Pins)
		}
		out := b.Dev.Tick(in)
		cycles++
		var fresh Frame
		for _, m := range b.Cfg.Outports {
			insert(&fresh, m.Pins, out[b.outIdx[m.Port]])
		}
		for _, m := range b.Cfg.IOPorts {
			if out[b.outIdx[m.CtrlPort]] == m.WriteValue {
				insert(&fresh, m.Pins, out[b.outIdx[m.OutPort]])
			}
		}
		var rf Frame
		for lane := 0; lane < ByteLanes; lane++ {
			div := b.Cfg.Lanes[lane].Divider
			if div <= 1 || cycleIdx%div == 0 {
				heldResp[lane] = fresh[lane]
			}
			rf[lane] = heldResp[lane]
		}
		resp = append(resp, rf)
		if stopIdx > 0 && extract(rf, stopPins) == stopValue {
			break
		}
	}
	b.HWCycles += uint64(cycles)
	b.HWTime += sim.FromSeconds(float64(cycles) / b.ClockHz)
	b.TestCycles++

	// Software activity: read responses back.
	b.SWTime += b.Bus.Transfer(len(resp) * ByteLanes)
	return resp, nil
}

// TotalTime returns the simulated wall-clock time consumed so far:
// hardware activity plus software activity.
func (b *Board) TotalTime() sim.Duration { return b.HWTime + b.SWTime }

// RealTimeFraction reports which share of the total verification time was
// spent actually clocking hardware — the efficiency figure of the
// repeated test-cycle scheme.
func (b *Board) RealTimeFraction() float64 {
	t := b.TotalTime()
	if t == 0 {
		return 0
	}
	return float64(b.HWTime) / float64(t)
}

// String summarizes board activity.
func (b *Board) String() string {
	return fmt.Sprintf("board{%d test cycles, %d hw cycles, hw %v, sw %v, rt %.1f%%}",
		b.TestCycles, b.HWCycles, b.HWTime, b.SWTime, 100*b.RealTimeFraction())
}
