package board

import (
	"testing"

	"castanet/internal/atm"
	"castanet/internal/cyclesim"
)

// busAcctConfig wires the bus-readable accounting unit: cell stream on
// drive lanes 0-1, address/strobes on lanes 2-3, exception/ack on sample
// lanes, and the shared data bus on a bidirectional lane controlled by
// the device's bus_oe flag — the three-signal bus modeling of §3.3.
func busAcctConfig() ConfigDataSet {
	var cfg ConfigDataSet
	cfg.Lanes[0] = LaneConfig{Dir: Drive}  // rx_data
	cfg.Lanes[1] = LaneConfig{Dir: Drive}  // rx_sync
	cfg.Lanes[2] = LaneConfig{Dir: Drive}  // addr
	cfg.Lanes[3] = LaneConfig{Dir: Drive}  // req/rw
	cfg.Lanes[8] = LaneConfig{Dir: Sample} // exception/ack
	cfg.Lanes[9] = LaneConfig{Dir: Bidir}  // shared data bus
	cfg.Inports = []InportMapping{
		{Port: "rx_data", Pins: PinRange{Lane: 0, StartBit: 0, Bits: 8}},
		{Port: "rx_sync", Pins: PinRange{Lane: 1, StartBit: 0, Bits: 1}},
		{Port: "addr", Pins: PinRange{Lane: 2, StartBit: 0, Bits: 8}},
		{Port: "req", Pins: PinRange{Lane: 3, StartBit: 0, Bits: 1}},
		{Port: "rw", Pins: PinRange{Lane: 3, StartBit: 1, Bits: 1}},
	}
	cfg.Outports = []OutportMapping{
		{Port: "exception", Pins: PinRange{Lane: 8, StartBit: 0, Bits: 1}},
		{Port: "ack", Pins: PinRange{Lane: 8, StartBit: 1, Bits: 1}},
	}
	cfg.IOPorts = []IOPortMapping{
		{
			InPort:     "bus_in",
			OutPort:    "bus_out",
			CtrlPort:   "bus_oe",
			WriteValue: 1,
			Pins:       PinRange{Lane: 9, StartBit: 0, Bits: 8},
		},
	}
	return cfg
}

func TestBidirectionalBusReadout(t *testing.T) {
	dev := cyclesim.NewBusAccounting(8)
	vc := atm.VC{VPI: 1, VCI: 11}
	slot, _ := dev.Register(vc)
	b := New(dev, 20e6, 8192)
	if err := b.Configure(busAcctConfig()); err != nil {
		t.Fatal(err)
	}

	// Phase 1: meter 7 cells through the cell path.
	var stim []Frame
	for k := 0; k < 7; k++ {
		c := &atm.Cell{Header: atm.Header{VPI: 1, VCI: 11}, Seq: uint32(k)}
		c.StampSeq()
		img := c.Marshal()
		for i := 0; i < atm.CellBytes; i++ {
			var f Frame
			insert(&f, PinRange{Lane: 0, StartBit: 0, Bits: 8}, uint64(img[i]))
			if i == 0 {
				insert(&f, PinRange{Lane: 1, StartBit: 0, Bits: 1}, 1)
			}
			stim = append(stim, f)
		}
	}
	if _, err := b.RunTestCycle(stim); err != nil {
		t.Fatal(err)
	}
	if dev.Cells[slot] != 7 {
		t.Fatalf("metered %d cells", dev.Cells[slot])
	}

	// Phase 2: read the 32-bit counter over the bidirectional bus, byte
	// by byte: req+rw for one cycle, then an idle cycle while the device
	// drives the shared lane.
	var busStim []Frame
	for byteSel := 0; byteSel < 4; byteSel++ {
		var fReq Frame
		insert(&fReq, PinRange{Lane: 2, StartBit: 0, Bits: 8}, uint64(slot<<2|byteSel))
		insert(&fReq, PinRange{Lane: 3, StartBit: 0, Bits: 1}, 1) // req
		insert(&fReq, PinRange{Lane: 3, StartBit: 1, Bits: 1}, 1) // rw=read
		busStim = append(busStim, fReq, Frame{})
	}
	resp, err := b.RunTestCycle(busStim)
	if err != nil {
		t.Fatal(err)
	}

	// Reconstruct the counter from the cycles where ack is high; the bus
	// lane carries the device's data only in those cycles (bus_oe high).
	var counter uint32
	reads := 0
	for _, f := range resp {
		if extract(f, PinRange{Lane: 8, StartBit: 1, Bits: 1}) == 1 {
			byteVal := extract(f, PinRange{Lane: 9, StartBit: 0, Bits: 8})
			counter |= uint32(byteVal) << (8 * uint(reads))
			reads++
		}
	}
	if reads != 4 {
		t.Fatalf("bus reads = %d, want 4", reads)
	}
	if counter != 7 {
		t.Errorf("counter over bus = %d, want 7", counter)
	}
	if dev.BusReads != 4 {
		t.Errorf("device bus reads = %d", dev.BusReads)
	}

	// In non-ack cycles the device does not drive; the response memory
	// must not contain stale bus data there.
	for i, f := range resp {
		ack := extract(f, PinRange{Lane: 8, StartBit: 1, Bits: 1})
		busVal := extract(f, PinRange{Lane: 9, StartBit: 0, Bits: 8})
		if ack == 0 && busVal != 0 {
			t.Errorf("cycle %d: lane driven (%#x) without bus_oe", i, busVal)
		}
	}
}

func TestBidirectionalBusCommandWrite(t *testing.T) {
	dev := cyclesim.NewBusAccounting(8)
	vc := atm.VC{VPI: 2, VCI: 22}
	slot, _ := dev.Register(vc)
	b := New(dev, 20e6, 8192)
	if err := b.Configure(busAcctConfig()); err != nil {
		t.Fatal(err)
	}
	// Meter 3 cells.
	var stim []Frame
	for k := 0; k < 3; k++ {
		c := &atm.Cell{Header: atm.Header{VPI: 2, VCI: 22}}
		img := c.Marshal()
		for i := 0; i < atm.CellBytes; i++ {
			var f Frame
			insert(&f, PinRange{Lane: 0, StartBit: 0, Bits: 8}, uint64(img[i]))
			if i == 0 {
				insert(&f, PinRange{Lane: 1, StartBit: 0, Bits: 1}, 1)
			}
			stim = append(stim, f)
		}
	}
	if _, err := b.RunTestCycle(stim); err != nil {
		t.Fatal(err)
	}
	if dev.Cells[slot] != 3 {
		t.Fatalf("metered %d", dev.Cells[slot])
	}
	// Command write: clear the slot via the board-driven direction of the
	// shared lane (rw=0, payload 0x01 on the bus).
	var fCmd Frame
	insert(&fCmd, PinRange{Lane: 2, StartBit: 0, Bits: 8}, uint64(slot<<2))
	insert(&fCmd, PinRange{Lane: 3, StartBit: 0, Bits: 1}, 1) // req
	insert(&fCmd, PinRange{Lane: 9, StartBit: 0, Bits: 8}, 0x01)
	if _, err := b.RunTestCycle([]Frame{fCmd, {}}); err != nil {
		t.Fatal(err)
	}
	if dev.Cells[slot] != 0 {
		t.Errorf("counter = %d after clear command", dev.Cells[slot])
	}
}
