package board

import "fmt"

// SwitchConfig returns the configuration data set that wires the
// cycle-based 4x4 ATM switch to the board: four drive lanes for input
// cell octets, one drive lane carrying the four input cell-sync bits,
// mirrored on the sample side — 9 of the 16 byte lanes in use, 74 pins.
func SwitchConfig() ConfigDataSet {
	var cfg ConfigDataSet
	for p := 0; p < 4; p++ {
		cfg.Lanes[p] = LaneConfig{Dir: Drive}
		cfg.Lanes[8+p] = LaneConfig{Dir: Sample}
	}
	cfg.Lanes[4] = LaneConfig{Dir: Drive}
	cfg.Lanes[12] = LaneConfig{Dir: Sample}
	for p := 0; p < 4; p++ {
		cfg.Inports = append(cfg.Inports,
			InportMapping{Port: fmt.Sprintf("rx%d_data", p), Pins: PinRange{Lane: p, StartBit: 0, Bits: 8}},
			InportMapping{Port: fmt.Sprintf("rx%d_sync", p), Pins: PinRange{Lane: 4, StartBit: p, Bits: 1}},
		)
		cfg.Outports = append(cfg.Outports,
			OutportMapping{Port: fmt.Sprintf("tx%d_data", p), Pins: PinRange{Lane: 8 + p, StartBit: 0, Bits: 8}},
			OutportMapping{Port: fmt.Sprintf("tx%d_sync", p), Pins: PinRange{Lane: 12, StartBit: p, Bits: 1}},
		)
	}
	return cfg
}

// SwitchStreams returns the stream pairs matching SwitchConfig.
func SwitchStreams() []StreamPair {
	var s []StreamPair
	for p := 0; p < 4; p++ {
		s = append(s, StreamPair{
			DataIn:  fmt.Sprintf("rx%d_data", p),
			SyncIn:  fmt.Sprintf("rx%d_sync", p),
			DataOut: fmt.Sprintf("tx%d_data", p),
			SyncOut: fmt.Sprintf("tx%d_sync", p),
		})
	}
	return s
}

// AccountingConfig wires the cycle-based accounting unit: one drive lane
// for cell octets, one sync bit, and the exception strobe sampled on its
// own lane (usable as an automatic-duration control port).
func AccountingConfig() ConfigDataSet {
	var cfg ConfigDataSet
	cfg.Lanes[0] = LaneConfig{Dir: Drive}
	cfg.Lanes[1] = LaneConfig{Dir: Drive}
	cfg.Lanes[8] = LaneConfig{Dir: Sample}
	cfg.Inports = []InportMapping{
		{Port: "rx_data", Pins: PinRange{Lane: 0, StartBit: 0, Bits: 8}},
		{Port: "rx_sync", Pins: PinRange{Lane: 1, StartBit: 0, Bits: 1}},
	}
	cfg.Outports = []OutportMapping{
		{Port: "exception", Pins: PinRange{Lane: 8, StartBit: 0, Bits: 1}},
	}
	return cfg
}
