package board

import (
	"testing"
	"testing/quick"

	"castanet/internal/atm"
	"castanet/internal/cyclesim"
	"castanet/internal/ipc"
	"castanet/internal/sim"
)

func boardTable() *atm.Translator {
	tb := atm.NewTranslator()
	for p := 0; p < 4; p++ {
		for q := 0; q < 4; q++ {
			tb.Add(atm.VC{VPI: byte(p + 1), VCI: uint16(100 + q)},
				atm.Route{Port: q, Out: atm.VC{VPI: byte(0x10 + p), VCI: uint16(0x200 + 16*p + q)}})
		}
	}
	return tb
}

func TestConfigValidation(t *testing.T) {
	dev := cyclesim.NewSwitch(boardTable(), 4, 32)
	good := SwitchConfig()
	if err := good.Validate(dev); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}

	overlap := SwitchConfig()
	overlap.Inports[2].Pins = overlap.Inports[0].Pins // rx1_data onto rx0_data pins
	if err := overlap.Validate(dev); err == nil {
		t.Error("overlapping pin assignment accepted")
	}

	badWidth := SwitchConfig()
	badWidth.Inports[0].Pins.Bits = 4
	if err := badWidth.Validate(dev); err == nil {
		t.Error("width mismatch accepted")
	}

	badPort := SwitchConfig()
	badPort.Inports[0].Port = "nonexistent"
	if err := badPort.Validate(dev); err == nil {
		t.Error("unknown device port accepted")
	}

	badDir := SwitchConfig()
	badDir.Lanes[0].Dir = Sample // but rx0_data needs a Drive lane
	if err := badDir.Validate(dev); err == nil {
		t.Error("direction mismatch accepted")
	}

	badRange := SwitchConfig()
	badRange.Inports[0].Pins.StartBit = 5 // 8 bits from bit 5 exceeds lane
	if err := badRange.Validate(dev); err == nil {
		t.Error("out-of-lane pin range accepted")
	}
}

func TestFrameInsertExtract(t *testing.T) {
	f := func(lane, start, bits uint8, val uint64) bool {
		pr := PinRange{
			Lane:     int(lane % ByteLanes),
			StartBit: int(start % PinsPerLane),
			Bits:     1 + int(bits)%PinsPerLane,
		}
		if pr.StartBit+pr.Bits > PinsPerLane {
			pr.Bits = PinsPerLane - pr.StartBit
		}
		var fr Frame
		want := val & (1<<uint(pr.Bits) - 1)
		insert(&fr, pr, val)
		return extract(fr, pr) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoardClockLimit(t *testing.T) {
	dev := cyclesim.NewAccounting(4)
	defer func() {
		if recover() == nil {
			t.Error("25 MHz board clock accepted (limit is 20 MHz)")
		}
	}()
	New(dev, 25e6, 1024)
}

func TestAccountingOnBoard(t *testing.T) {
	dev := cyclesim.NewAccounting(8)
	slot, _ := dev.Register(atm.VC{VPI: 1, VCI: 11})
	b := New(dev, 20e6, 4096)
	if err := b.Configure(AccountingConfig()); err != nil {
		t.Fatal(err)
	}
	h, err := NewStreamHarness(b, []StreamPair{{
		DataIn: "rx_data", SyncIn: "rx_sync",
		// The accounting unit has no cell output; reuse exception as a
		// 1-bit "stream" is not valid — use the raw board API instead.
	}})
	if err == nil {
		_ = h
		t.Fatal("harness built with unmapped output ports")
	}

	// Drive cells via raw frames.
	var stim []Frame
	pushCell := func(c *atm.Cell) {
		cc := c.Clone()
		cc.StampSeq()
		img := cc.Marshal()
		for i := 0; i < atm.CellBytes; i++ {
			var f Frame
			insert(&f, PinRange{Lane: 0, StartBit: 0, Bits: 8}, uint64(img[i]))
			if i == 0 {
				insert(&f, PinRange{Lane: 1, StartBit: 0, Bits: 1}, 1)
			}
			stim = append(stim, f)
		}
	}
	pushCell(&atm.Cell{Header: atm.Header{VPI: 1, VCI: 11}})
	pushCell(&atm.Cell{Header: atm.Header{VPI: 1, VCI: 11, CLP: 1}})
	pushCell(&atm.Cell{Header: atm.Header{VPI: 9, VCI: 99}}) // unregistered
	resp, err := b.RunTestCycle(stim)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Cells[slot] != 2 || dev.CLP1[slot] != 1 {
		t.Errorf("counters = %d/%d", dev.Cells[slot], dev.CLP1[slot])
	}
	// Exception strobe must be visible in the sampled responses.
	exc := 0
	for _, f := range resp {
		if extract(f, PinRange{Lane: 8, StartBit: 0, Bits: 1}) == 1 {
			exc++
		}
	}
	if exc != 1 {
		t.Errorf("exception cycles sampled = %d, want 1", exc)
	}
}

func TestAutoDurationStopsOnControlPort(t *testing.T) {
	dev := cyclesim.NewAccounting(8)
	b := New(dev, 20e6, 4096)
	if err := b.Configure(AccountingConfig()); err != nil {
		t.Fatal(err)
	}
	// One unregistered cell followed by a long idle tail: auto mode must
	// stop at the exception instead of burning the full stimulus.
	var stim []Frame
	c := &atm.Cell{Header: atm.Header{VPI: 9, VCI: 99}}
	img := c.Marshal()
	for i := 0; i < atm.CellBytes; i++ {
		var f Frame
		insert(&f, PinRange{Lane: 0, StartBit: 0, Bits: 8}, uint64(img[i]))
		if i == 0 {
			insert(&f, PinRange{Lane: 1, StartBit: 0, Bits: 1}, 1)
		}
		stim = append(stim, f)
	}
	for i := 0; i < 1000; i++ {
		stim = append(stim, Frame{})
	}
	resp, err := b.RunTestCycleAuto(stim, "exception", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != atm.CellBytes {
		t.Errorf("auto cycle ran %d cycles, want %d (stop at exception)", len(resp), atm.CellBytes)
	}
}

func TestSwitchOnBoardEndToEnd(t *testing.T) {
	dev := cyclesim.NewSwitch(boardTable(), 4, 32)
	b := New(dev, 20e6, 256) // small memory: forces many test cycles
	if err := b.Configure(SwitchConfig()); err != nil {
		t.Fatal(err)
	}
	h, err := NewStreamHarness(b, SwitchStreams())
	if err != nil {
		t.Fatal(err)
	}
	const per = 6
	for p := 0; p < 4; p++ {
		for k := 0; k < per; k++ {
			c := &atm.Cell{
				Header: atm.Header{VPI: byte(p + 1), VCI: uint16(100 + (k % 4))},
				Seq:    uint32(p*100 + k),
			}
			c.StampSeq()
			h.Enqueue(p, c)
		}
	}
	if err := h.Execute(8 * atm.CellBytes); err != nil {
		t.Fatal(err)
	}
	total := 0
	for q := 0; q < 4; q++ {
		total += len(h.Out[q])
	}
	if total != 4*per {
		t.Fatalf("delivered %d cells, want %d (%s)", total, 4*per, b)
	}
	// Translation check on one cell.
	found := false
	for _, cell := range h.Out[2] {
		if cell.Seq == 2 { // port 0, k=2 -> VCI 102 -> out 2
			found = true
			if cell.VPI != 0x10 || cell.VCI != 0x202 {
				t.Errorf("translated = %v", cell.VC())
			}
		}
	}
	if !found {
		t.Error("expected cell not found on output 2")
	}
	if b.TestCycles < 2 {
		t.Errorf("expected chunked test cycles, got %d", b.TestCycles)
	}
	if b.HWCycles == 0 || b.HWTime == 0 || b.SWTime == 0 {
		t.Errorf("activity accounting empty: %s", b)
	}
}

func TestTestCycleDurationBounds(t *testing.T) {
	dev := cyclesim.NewAccounting(4)
	b := New(dev, 20e6, 128)
	if err := b.Configure(AccountingConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RunTestCycle(nil); err == nil {
		t.Error("empty test cycle accepted")
	}
	if _, err := b.RunTestCycle(make([]Frame, 129)); err == nil {
		t.Error("test cycle beyond memory depth accepted")
	}
	if _, err := b.RunTestCycle(make([]Frame, 128)); err != nil {
		t.Errorf("maximal test cycle rejected: %v", err)
	}
}

func TestBoardCouplingMessages(t *testing.T) {
	dev := cyclesim.NewSwitch(boardTable(), 4, 32)
	b := New(dev, 20e6, 2048)
	if err := b.Configure(SwitchConfig()); err != nil {
		t.Fatal(err)
	}
	h, err := NewStreamHarness(b, SwitchStreams())
	if err != nil {
		t.Fatal(err)
	}
	base := ipc.KindUser
	cpl := &Coupling{
		Harness:  h,
		KindOf:   func(k ipc.Kind) int { return int(k - base) },
		RespKind: func(s int) ipc.Kind { return base + 16 + ipc.Kind(s) },
	}
	cell := &atm.Cell{Header: atm.Header{VPI: 1, VCI: 102}, Seq: 31} // -> out 2
	cell.StampSeq()
	img := cell.Marshal()
	if _, err := cpl.Send(ipc.Message{Kind: base + 0, Time: sim.Microsecond, Data: img[:]}); err != nil {
		t.Fatal(err)
	}
	resps, err := cpl.Send(ipc.Message{Kind: ipc.KindSync, Time: 10 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 1 {
		t.Fatalf("responses = %d, want 1", len(resps))
	}
	if resps[0].Kind != base+16+2 {
		t.Errorf("response kind = %d, want stream 2", resps[0].Kind)
	}
	var rimg [atm.CellBytes]byte
	copy(rimg[:], resps[0].Data)
	got, err := atm.Unmarshal(rimg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 31 || got.VPI != 0x10 {
		t.Errorf("response cell = %v seq=%d", got.VC(), got.Seq)
	}
}

func TestRealTimeFraction(t *testing.T) {
	dev := cyclesim.NewAccounting(4)
	b := New(dev, 20e6, 4096)
	if err := b.Configure(AccountingConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RunTestCycle(make([]Frame, 4096)); err != nil {
		t.Fatal(err)
	}
	frac := b.RealTimeFraction()
	if frac <= 0 || frac >= 1 {
		t.Errorf("real-time fraction = %v, want in (0,1)", frac)
	}
}

// echoDevice mirrors its 8-bit input to its output on the same cycle —
// the simplest device for observing lane timing behaviour.
type echoDevice struct{}

func (echoDevice) Ports() []cyclesim.Port {
	return []cyclesim.Port{
		{Name: "in", Width: 8, Dir: cyclesim.In},
		{Name: "out", Width: 8, Dir: cyclesim.Out},
	}
}
func (echoDevice) Reset()                    {}
func (echoDevice) Tick(in []uint64) []uint64 { return []uint64{in[0]} }

func TestLaneSpeedDividers(t *testing.T) {
	var cfg ConfigDataSet
	cfg.Lanes[0] = LaneConfig{Dir: Drive, Divider: 2}  // stimulus updates every 2nd cycle
	cfg.Lanes[8] = LaneConfig{Dir: Sample, Divider: 4} // response refreshes every 4th cycle
	cfg.Inports = []InportMapping{{Port: "in", Pins: PinRange{Lane: 0, StartBit: 0, Bits: 8}}}
	cfg.Outports = []OutportMapping{{Port: "out", Pins: PinRange{Lane: 8, StartBit: 0, Bits: 8}}}
	b := New(echoDevice{}, 20e6, 1024)
	if err := b.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	// Distinct stimulus byte per cycle: 10, 11, 12, ...
	stim := make([]Frame, 8)
	for i := range stim {
		insert(&stim[i], PinRange{Lane: 0, StartBit: 0, Bits: 8}, uint64(10+i))
	}
	resp, err := b.RunTestCycle(stim)
	if err != nil {
		t.Fatal(err)
	}
	// Device input (divider 2): 10,10,12,12,14,14,16,16 — echoed same
	// cycle; sample lane (divider 4) then holds each captured value for 4
	// cycles: capture at cycles 0 and 4.
	want := []uint64{10, 10, 10, 10, 14, 14, 14, 14}
	for i, f := range resp {
		got := extract(f, PinRange{Lane: 8, StartBit: 0, Bits: 8})
		if got != want[i] {
			t.Errorf("cycle %d: sampled %d, want %d", i, got, want[i])
		}
	}
}
