package board

import (
	"fmt"

	"castanet/internal/atm"
	"castanet/internal/ipc"
)

// StreamPair names the device ports of one bit-level cell stream: the
// Fig.-4 (data, sync) pair in each direction.
type StreamPair struct {
	DataIn, SyncIn   string // device inputs, driven by the board
	DataOut, SyncOut string // device outputs, sampled by the board
}

// StreamHarness converts between ATM cells and board pin frames for a
// device whose interface is a set of cell streams (the switch, the
// accounting unit). It chunks work into hardware test cycles bounded by
// the board's memory depth and keeps reassembly state across cycles, so
// arbitrarily long verification runs execute as the paper describes:
// "test cycles run repeatedly until the simulation is finished".
type StreamHarness struct {
	Board   *Board
	Streams []StreamPair

	pending [][][atm.CellBytes]byte // per stream, cells waiting to be driven
	rx      []rxState
	// Out collects reassembled output cells per stream.
	Out [][]*atm.Cell
	// RxErrors counts HEC failures seen on device outputs.
	RxErrors uint64
}

type rxState struct {
	buf    [atm.CellBytes]byte
	pos    int
	inCell bool
}

// NewStreamHarness builds a harness; the board must already be configured
// with mappings covering every named port.
func NewStreamHarness(b *Board, streams []StreamPair) (*StreamHarness, error) {
	if !b.configured {
		return nil, fmt.Errorf("board: configure before building a harness")
	}
	havIn := make(map[string]bool)
	havOut := make(map[string]bool)
	for _, m := range b.Cfg.Inports {
		havIn[m.Port] = true
	}
	for _, m := range b.Cfg.Outports {
		havOut[m.Port] = true
	}
	for _, s := range streams {
		if !havIn[s.DataIn] || !havIn[s.SyncIn] {
			return nil, fmt.Errorf("board: stream input ports %q/%q not mapped", s.DataIn, s.SyncIn)
		}
		if !havOut[s.DataOut] || !havOut[s.SyncOut] {
			return nil, fmt.Errorf("board: stream output ports %q/%q not mapped", s.DataOut, s.SyncOut)
		}
	}
	return &StreamHarness{
		Board:   b,
		Streams: streams,
		pending: make([][][atm.CellBytes]byte, len(streams)),
		rx:      make([]rxState, len(streams)),
		Out:     make([][]*atm.Cell, len(streams)),
	}, nil
}

// Enqueue queues a cell for transmission on a stream. The payload is
// driven exactly as given (callers stamp sequence numbers themselves).
func (h *StreamHarness) Enqueue(stream int, c *atm.Cell) {
	h.pending[stream] = append(h.pending[stream], c.Marshal())
}

// pinRange finds the mapping for a named input port.
func (h *StreamHarness) inPins(port string) PinRange {
	for _, m := range h.Board.Cfg.Inports {
		if m.Port == port {
			return m.Pins
		}
	}
	panic("board: unmapped port " + port)
}

func (h *StreamHarness) outPins(port string) PinRange {
	for _, m := range h.Board.Cfg.Outports {
		if m.Port == port {
			return m.Pins
		}
	}
	panic("board: unmapped port " + port)
}

// Execute drives all pending cells through the device, adding drainCycles
// idle cycles at the end so in-flight cells emerge. The work is split
// into as many hardware test cycles as the stimulus memory requires.
func (h *StreamHarness) Execute(drainCycles int) error {
	// Total cycles: longest stream backlog, serialized back to back.
	need := 0
	for _, q := range h.pending {
		if n := len(q) * atm.CellBytes; n > need {
			need = n
		}
	}
	total := need + drainCycles
	if total == 0 {
		return nil
	}
	// Build the full stimulus, then chunk it.
	stim := make([]Frame, total)
	for si, q := range h.pending {
		dp := h.inPins(h.Streams[si].DataIn)
		sp := h.inPins(h.Streams[si].SyncIn)
		cyc := 0
		for _, img := range q {
			for b := 0; b < atm.CellBytes; b++ {
				insert(&stim[cyc], dp, uint64(img[b]))
				if b == 0 {
					insert(&stim[cyc], sp, 1)
				}
				cyc++
			}
		}
		h.pending[si] = nil
	}
	for start := 0; start < total; start += h.Board.MemDepth {
		end := start + h.Board.MemDepth
		if end > total {
			end = total
		}
		resp, err := h.Board.RunTestCycle(stim[start:end])
		if err != nil {
			return err
		}
		h.parse(resp)
	}
	return nil
}

// parse reassembles output cells from response frames.
func (h *StreamHarness) parse(resp []Frame) {
	for si := range h.Streams {
		dp := h.outPins(h.Streams[si].DataOut)
		sp := h.outPins(h.Streams[si].SyncOut)
		st := &h.rx[si]
		for _, f := range resp {
			if extract(f, sp)&1 == 1 {
				st.pos = 0
				st.inCell = true
			}
			if !st.inCell {
				continue
			}
			st.buf[st.pos] = byte(extract(f, dp))
			st.pos++
			if st.pos == atm.CellBytes {
				st.inCell = false
				cell, err := atm.Unmarshal(st.buf)
				if err != nil {
					h.RxErrors++
					continue
				}
				if cell.IsIdle() {
					continue
				}
				h.Out[si] = append(h.Out[si], cell)
			}
		}
	}
}

// TakeOut returns and clears the collected output cells of one stream.
func (h *StreamHarness) TakeOut(stream int) []*atm.Cell {
	out := h.Out[stream]
	h.Out[stream] = nil
	return out
}

// Coupling adapts the harness to the cosim.Coupling contract, placing the
// hardware test board in the simulation loop (the right-hand path of
// Fig. 1): cell messages accumulate as stimuli; every time-update message
// triggers a batch of hardware test cycles whose output cells return as
// responses. KindOf maps input message kinds to streams; RespKind labels
// each stream's responses.
type Coupling struct {
	Harness *StreamHarness
	// KindOf returns the stream index for an input message kind, or -1.
	KindOf func(k ipc.Kind) int
	// RespKind returns the response kind for a stream index.
	RespKind func(stream int) ipc.Kind
	// DrainCycles pads every batch so in-flight cells emerge; defaults to
	// 4 cell times.
	DrainCycles int
}

// Send implements the coupling contract (structurally compatible with
// cosim.Coupling).
func (c *Coupling) Send(msg ipc.Message) ([]ipc.Message, error) {
	switch msg.Kind {
	case ipc.KindSync, ipc.KindInit:
		drain := c.DrainCycles
		if drain == 0 {
			drain = 4 * atm.CellBytes
		}
		if err := c.Harness.Execute(drain); err != nil {
			return nil, err
		}
		var out []ipc.Message
		for si := range c.Harness.Streams {
			for _, cell := range c.Harness.TakeOut(si) {
				img := cell.Marshal()
				out = append(out, ipc.Message{
					Kind: c.RespKind(si),
					Time: msg.Time,
					Data: img[:],
				})
			}
		}
		return out, nil
	}
	stream := c.KindOf(msg.Kind)
	if stream < 0 {
		return nil, fmt.Errorf("board: no stream for message kind %d", msg.Kind)
	}
	if len(msg.Data) != atm.CellBytes {
		return nil, fmt.Errorf("board: cell message of %d bytes", len(msg.Data))
	}
	var img [atm.CellBytes]byte
	copy(img[:], msg.Data)
	cell, err := atm.Unmarshal(img)
	if err != nil {
		return nil, err
	}
	c.Harness.Enqueue(stream, cell)
	return nil, nil
}

// Close implements the coupling contract.
func (c *Coupling) Close() error { return nil }
