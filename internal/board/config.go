// Package board models the configurable hardware test board of §3.3
// (RAVEN, ref. [16] of the paper): a bit-stream interface of 16 byte
// lanes (128 I/O pins), each lane configurable in direction and speed,
// backed by stimulus and response memory units, driven in repeated test
// cycles — a software activity phase that configures the board and loads
// stimuli over the SCSI bus, a hardware activity phase that clocks the
// device under test at real-time speed (up to 20 MHz), and a software
// read-back phase.
//
// The "real hardware" mounted on the board is a cyclesim.Device — a
// cycle-based black box playing the role of the fabricated chip.
package board

import (
	"fmt"

	"castanet/internal/cyclesim"
)

// Board geometry and limits, matching the paper's description.
const (
	ByteLanes   = 16
	PinsPerLane = 8
	TotalPins   = ByteLanes * PinsPerLane // 128 I/O pins
	// MaxClockHz is the maximum board clock of the current implementation.
	MaxClockHz = 20e6
	// MinCycleLen and MaxCycleLen bound one hardware test cycle, set by
	// the board's memory configuration.
	MinCycleLen = 1
	MaxCycleLen = 1 << 16
)

// LaneDir is a byte lane's direction, from the board's perspective:
// Drive lanes carry stimuli to the device, Sample lanes capture device
// outputs.
type LaneDir int

// Lane directions.
const (
	Unused LaneDir = iota
	Drive
	Sample
	// Bidir lanes switch direction under control of a device-driven
	// read/write flag (bus interfaces, §3.3).
	Bidir
)

// String names the direction.
func (d LaneDir) String() string {
	switch d {
	case Unused:
		return "unused"
	case Drive:
		return "drive"
	case Sample:
		return "sample"
	case Bidir:
		return "bidir"
	default:
		return "?"
	}
}

// LaneConfig configures one byte lane.
type LaneConfig struct {
	Dir LaneDir
	// Divider divides the board clock for this lane (configurable lane
	// speed); 0 and 1 both mean full speed. A lane with divider n
	// presents/captures a new value every n board cycles.
	Divider int
}

// PinRange places a device port's bits on a lane: Bits bits starting at
// StartBit. This is exactly the per-entry information of the Fig.-5
// configuration data set (byte lane ID, start bit position, number of
// bits).
type PinRange struct {
	Lane     int
	StartBit int
	Bits     int
}

// InportMapping routes stimulus bits to one device input port.
type InportMapping struct {
	Port string // device input port name
	Pins PinRange
}

// OutportMapping captures one device output port into response memory.
type OutportMapping struct {
	Port string // device output port name
	Pins PinRange
}

// IOPortMapping models a bidirectional bus interface with three bit-level
// signals: an input port, an output port, and a device-driven control
// port selecting the direction (§3.3).
type IOPortMapping struct {
	InPort   string // device input port (board drives when device reads)
	OutPort  string // device output port (board samples when device writes)
	CtrlPort string // device output port carrying the read/write flag
	// WriteValue is the control-port value meaning "device drives the
	// bus" (predefined read/write flag).
	WriteValue uint64
	Pins       PinRange
}

// ConfigDataSet is the Fig.-5 configuration data set: lane setup plus the
// inport, outport, I/O-port and control-port mappings.
type ConfigDataSet struct {
	Lanes    [ByteLanes]LaneConfig
	Inports  []InportMapping
	Outports []OutportMapping
	IOPorts  []IOPortMapping
}

// Validate checks the configuration against the board geometry and the
// device's port list: pin ranges in bounds, no overlapping assignments on
// a lane, widths matching the device ports, directions consistent.
func (c *ConfigDataSet) Validate(dev cyclesim.Device) error {
	type claim struct {
		what string
		dir  LaneDir
	}
	pins := make(map[int]claim) // absolute pin index -> claimant

	claimRange := func(what string, pr PinRange, dir LaneDir) error {
		if pr.Lane < 0 || pr.Lane >= ByteLanes {
			return fmt.Errorf("board: %s: lane %d out of range", what, pr.Lane)
		}
		if pr.Bits <= 0 || pr.StartBit < 0 || pr.StartBit+pr.Bits > PinsPerLane {
			return fmt.Errorf("board: %s: bits [%d,%d) exceed lane width", what, pr.StartBit, pr.StartBit+pr.Bits)
		}
		laneDir := c.Lanes[pr.Lane].Dir
		if laneDir != dir {
			return fmt.Errorf("board: %s: lane %d is %v, mapping needs %v", what, pr.Lane, laneDir, dir)
		}
		for b := pr.StartBit; b < pr.StartBit+pr.Bits; b++ {
			abs := pr.Lane*PinsPerLane + b
			if prev, taken := pins[abs]; taken {
				return fmt.Errorf("board: %s overlaps %s at pin %d", what, prev.what, abs)
			}
			pins[abs] = claim{what: what, dir: dir}
		}
		return nil
	}

	portWidth := func(name string, dir cyclesim.Dir) (int, error) {
		for _, p := range dev.Ports() {
			if p.Name == name {
				if p.Dir != dir {
					return 0, fmt.Errorf("board: device port %q has wrong direction", name)
				}
				return p.Width, nil
			}
		}
		return 0, fmt.Errorf("board: device has no port %q", name)
	}

	for _, m := range c.Inports {
		w, err := portWidth(m.Port, cyclesim.In)
		if err != nil {
			return err
		}
		if w != m.Pins.Bits {
			return fmt.Errorf("board: inport %q is %d bits, mapping has %d", m.Port, w, m.Pins.Bits)
		}
		if err := claimRange("inport "+m.Port, m.Pins, Drive); err != nil {
			return err
		}
	}
	for _, m := range c.Outports {
		w, err := portWidth(m.Port, cyclesim.Out)
		if err != nil {
			return err
		}
		if w != m.Pins.Bits {
			return fmt.Errorf("board: outport %q is %d bits, mapping has %d", m.Port, w, m.Pins.Bits)
		}
		if err := claimRange("outport "+m.Port, m.Pins, Sample); err != nil {
			return err
		}
	}
	for _, m := range c.IOPorts {
		wi, err := portWidth(m.InPort, cyclesim.In)
		if err != nil {
			return err
		}
		wo, err := portWidth(m.OutPort, cyclesim.Out)
		if err != nil {
			return err
		}
		if _, err := portWidth(m.CtrlPort, cyclesim.Out); err != nil {
			return err
		}
		if wi != m.Pins.Bits || wo != m.Pins.Bits {
			return fmt.Errorf("board: ioport %q/%q widths %d/%d do not match %d pins",
				m.InPort, m.OutPort, wi, wo, m.Pins.Bits)
		}
		if err := claimRange("ioport "+m.InPort, m.Pins, Bidir); err != nil {
			return err
		}
	}
	for lane, lc := range c.Lanes {
		if lc.Divider < 0 {
			return fmt.Errorf("board: lane %d: negative divider", lane)
		}
		_ = lane
	}
	return nil
}
