package obs_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"castanet/internal/obs"
)

// FuzzMergeCover drives MergeCover with arbitrary snapshot triples and
// checks its algebra: associative, commutative and identity on empty —
// the properties shard-exact digest merging rests on. Snapshots are built
// from fixed name pools (including every real cover group the rigs
// define) so inputs always satisfy the Snapshot() contract: groups and
// points sorted and unique, bins unique per point. Because MergeCover
// appends unseen source bins after the destination's, bin order in the
// output depends on operand order; the algebra therefore holds up to
// canonicalization (bins sorted by label), which is what the comparisons
// use.

// fuzzGroupPool is the real cover-group schema the rigs register.
var fuzzGroupPool = [8]string{
	"cosim.coupling",
	"cosim.sync",
	"coverify.acct",
	"coverify.cell_header",
	"coverify.cmp",
	"coverify.policer",
	"dut.queue",
	"faultsim.fault",
}

var fuzzPointPool = [8]string{
	"batch", "class_outcome", "clp", "depth", "drop", "sync_lag", "verdict", "vpi",
}

var fuzzLabelPool = [8]string{
	"clp0", "clp1", "gt_16", "le_0", "le_16", "match", "mismatch", "wrong-port×detected",
}

// fuzzReader consumes a fuzz input byte-wise, yielding zeros once
// exhausted so every input decodes to some valid snapshot triple.
type fuzzReader struct {
	b   []byte
	pos int
}

func (r *fuzzReader) next() byte {
	if r.pos >= len(r.b) {
		return 0
	}
	v := r.b[r.pos]
	r.pos++
	return v
}

// snap decodes one snapshot: mask bytes select pool entries in pool
// order, so group and point names come out sorted and unique by
// construction (the Snapshot() contract).
func (r *fuzzReader) snap() []obs.CoverGroupSnap {
	gmask := r.next()
	var out []obs.CoverGroupSnap
	for i, name := range fuzzGroupPool {
		if gmask&(1<<i) == 0 {
			continue
		}
		pmask := r.next()
		g := obs.CoverGroupSnap{Name: name}
		for j, pname := range fuzzPointPool {
			if pmask&(1<<j) == 0 {
				continue
			}
			bmask := r.next()
			p := obs.CoverPointSnap{Name: pname}
			for k, label := range fuzzLabelPool {
				if bmask&(1<<k) == 0 {
					continue
				}
				p.Bins = append(p.Bins, obs.CoverBin{Label: label, Hits: uint64(r.next())})
			}
			if len(p.Bins) > 0 {
				g.Points = append(g.Points, p)
			}
		}
		if len(g.Points) > 0 {
			out = append(out, g)
		}
	}
	return out
}

// canonCover deep-copies a snapshot with bins sorted by label, the form
// in which merge results are order-independent.
func canonCover(snaps []obs.CoverGroupSnap) []obs.CoverGroupSnap {
	out := make([]obs.CoverGroupSnap, len(snaps))
	for i, g := range snaps {
		cg := obs.CoverGroupSnap{Name: g.Name, Points: make([]obs.CoverPointSnap, len(g.Points))}
		for j, p := range g.Points {
			cp := obs.CoverPointSnap{Name: p.Name, Bins: append([]obs.CoverBin(nil), p.Bins...)}
			sort.Slice(cp.Bins, func(a, b int) bool { return cp.Bins[a].Label < cp.Bins[b].Label })
			cg.Points[j] = cp
		}
		out[i] = cg
	}
	return out
}

// coverSums flattens a snapshot to its group/point/label -> hits map.
func coverSums(snaps []obs.CoverGroupSnap) map[string]uint64 {
	sums := make(map[string]uint64)
	for _, g := range snaps {
		for _, p := range g.Points {
			for _, b := range p.Bins {
				sums[g.Name+"/"+p.Name+"/"+b.Label] += b.Hits
			}
		}
	}
	return sums
}

func FuzzMergeCover(f *testing.F) {
	// Seed the corpus with each real cover group on its own, a dense
	// all-groups triple, and a couple of asymmetric shapes.
	for i := 0; i < len(fuzzGroupPool); i++ {
		f.Add([]byte{1 << i, 0xff, 0xaa, 3, 1, 4, 1, 5, 9, 2, 6,
			1 << i, 0x0f, 0x55, 8, 2, 7, 1, 8, 2, 8,
			1 << i, 0xf0, 0x33, 1, 1, 2, 3, 5, 8, 13})
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x81, 0x42, 0x24, 200, 0x18, 0x99, 100, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := &fuzzReader{b: data}
		a, b, c := r.snap(), r.snap(), r.snap()
		sumA, sumB := coverSums(a), coverSums(b)

		ab := obs.MergeCover(canonCover(a), canonCover(b))
		ba := obs.MergeCover(canonCover(b), canonCover(a))
		if !reflect.DeepEqual(canonCover(ab), canonCover(ba)) {
			t.Fatalf("merge not commutative:\nA⊕B = %+v\nB⊕A = %+v", ab, ba)
		}

		abc1 := obs.MergeCover(obs.MergeCover(canonCover(a), canonCover(b)), canonCover(c))
		abc2 := obs.MergeCover(canonCover(a), obs.MergeCover(canonCover(b), canonCover(c)))
		if !reflect.DeepEqual(canonCover(abc1), canonCover(abc2)) {
			t.Fatalf("merge not associative:\n(A⊕B)⊕C = %+v\nA⊕(B⊕C) = %+v", abc1, abc2)
		}

		if got := obs.MergeCover(canonCover(a), nil); !reflect.DeepEqual(canonCover(got), canonCover(a)) {
			t.Fatalf("A⊕∅ changed A: %+v", got)
		}
		if got := obs.MergeCover(nil, canonCover(a)); !reflect.DeepEqual(canonCover(got), canonCover(a)) {
			t.Fatalf("∅⊕A != A: %+v", got)
		}

		// Bin-wise integer sums: every bin of A⊕B holds exactly the sum
		// of its operand hits, and no bin appears from nowhere.
		want := make(map[string]uint64, len(sumA)+len(sumB))
		for k, v := range sumA {
			want[k] += v
		}
		for k, v := range sumB {
			want[k] += v
		}
		got := coverSums(ab)
		if len(got) != len(want) {
			t.Fatalf("merged bin set has %d entries, want %d", len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("bin %s = %d after merge, want %d", k, got[k], v)
			}
		}

		// Idempotence of the empty merge on both sides at once.
		if out := obs.MergeCover(nil, nil); len(out) != 0 {
			t.Fatalf("∅⊕∅ = %+v, want empty", out)
		}
		_ = fmt.Sprintf("%v", abc1) // keep results observable under -race
	})
}
