package obs_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"castanet/internal/campaign"
	"castanet/internal/hdl"
	"castanet/internal/obs"
	"castanet/internal/sim"
)

// TestScrapeDuringCampaign hammers the live telemetry endpoints — /metrics,
// /coverage and /profile — from several goroutines while a multi-shard
// campaign is committing runs into the same obs.Run. Under -race (the
// Makefile's race target covers this package) it proves the scrape path and
// the worker path share no unsynchronized state: every endpoint must answer
// 200 with a body for the whole campaign.
func TestScrapeDuringCampaign(t *testing.T) {
	run := obs.NewRun(obs.DefaultTraceCap)
	run.Profile = obs.NewRunProfile()
	srv := httptest.NewServer(obs.NewServer(run).Handler())
	defer srv.Close()

	cell := campaign.Cell{Experiment: "scrape", Run: func(ctx context.Context, r *campaign.Run) error {
		h := hdl.New()
		if p := r.Profile(); p != nil {
			p.AttachActivitySource(h.EnableProfile().Snapshot)
			p.PhaseProf().AddNs(obs.PhaseHDL, 1000)
		}
		clk := h.Bit("clk", hdl.U)
		h.Clock(clk, 2*sim.Nanosecond)
		n := 0
		h.Process("count", func() { n++ }, clk)
		point := r.Cover().Group("scrape").Point("tick", "even", "odd")
		for i := 0; i < 50; i++ {
			if _, err := h.Step(); err != nil {
				return err
			}
			if i%2 == 0 {
				point.Hit("even")
			} else {
				point.Hit("odd")
			}
		}
		r.Observe("steps", 50)
		return nil
	}}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/coverage", "/profile"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("GET %s: read: %v", path, err)
					return
				}
				if resp.StatusCode != http.StatusOK || len(body) == 0 {
					t.Errorf("GET %s: status=%d body=%d bytes", path, resp.StatusCode, len(body))
					return
				}
			}
		}(path)
	}

	sum, err := campaign.Execute(context.Background(), campaign.Spec{
		Name: "scrape", Seed: 11, Runs: 64, Shards: 4,
		Matrix:   []campaign.Cell{cell},
		Obs:      run,
		Coverage: true,
		Profile:  true,
	})
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Clean() {
		t.Fatalf("campaign not clean: failed=%d", sum.Failed)
	}
	if sum.Activity.Empty() {
		t.Fatal("campaign produced no activity profile")
	}
}
