package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Causal cell tracing: every PDU minted by a traffic source can carry a
// trace ID through the whole coupling — IPC envelope, co-simulation
// entity, signal-conditioned HDL stream, comparison engine — and each
// traced cell yields a per-hop latency waterfall. Trace IDs are plain
// uint64s chosen by the source (rigs use cell sequence number + 1, so an
// ID is never zero); zero always means "untraced" and records nothing.
//
// The hop names below are the canonical waypoints of a cell's journey in
// pipeline order. Tracked hops are exported two ways: as a text waterfall
// (WaterfallText) whose timestamps are simulated time only — so the same
// seed produces the same waterfall, byte for byte — and as Chrome
// trace-event flow arrows stitched across the engine tracks (see
// Run.WriteTrace).
const (
	// HopNetEnqueue: the traffic source hands the cell to the network
	// simulator.
	HopNetEnqueue = "net.enqueue"
	// HopEnvelopeTx: the interface process encodes the cell into a
	// time-stamped IPC message and pushes it into the coupling.
	HopEnvelopeTx = "ipc.tx"
	// HopEntityRx: the co-simulation entity on the HDL side accepts the
	// message under the conservative protocol.
	HopEntityRx = "entity.rx"
	// HopHDLCommit: the serialized cell starts transmitting on the DUT's
	// byte-level input port (first octet on the wire).
	HopHDLCommit = "hdl.commit"
	// HopCompare: the hardware response reaches the comparison engine.
	HopCompare = "compare"
)

// hopOrder fixes the pipeline position of each canonical hop so
// waterfalls render in journey order even when hops are recorded from
// concurrent engines. Unknown hop names sort after the canonical ones, in
// name order.
var hopOrder = map[string]int{
	HopNetEnqueue: 0,
	HopEnvelopeTx: 1,
	HopEntityRx:   2,
	HopHDLCommit:  3,
	HopCompare:    4,
}

// hopTrack maps each canonical hop onto the engine track that performs
// it, so flow arrows land on the right timeline rows.
var hopTrack = map[string]string{
	HopNetEnqueue: TrackNetsim,
	HopEnvelopeTx: TrackCoupling,
	HopEntityRx:   TrackCoupling,
	HopHDLCommit:  TrackHDL,
	HopCompare:    TrackRig,
}

// HopTrack returns the trace track a hop renders on (TrackRig for
// unknown hop names).
func HopTrack(hop string) string {
	if t, ok := hopTrack[hop]; ok {
		return t
	}
	return TrackRig
}

// Hop is one recorded waypoint of a traced cell. Sim is simulated time in
// picoseconds — the only clock the waterfall reports, so traces are
// deterministic for a given seed.
type Hop struct {
	Name string
	Sim  int64 // simulated time, ps
}

// CellTrace is the recorded journey of one traced cell, hops in
// pipeline order.
type CellTrace struct {
	ID   uint64
	Hops []Hop
}

// DefaultCellCap bounds how many distinct cells a tracker follows when
// NewCellTracker is given 0.
const DefaultCellCap = 4096

// CellTracker collects per-cell hop records. Sampling keeps full-rate
// campaigns affordable: a tracker created with every=N follows only
// trace IDs where (id-1)%N == 0, i.e. every Nth cell of a rig whose IDs
// are seq+1. The tracked-cell count is bounded; cells beyond the cap are
// counted as dropped, never recorded partially. A nil *CellTracker is a
// no-op on every method, same contract as the rest of the package.
type CellTracker struct {
	every uint64
	max   int

	mu      sync.Mutex
	traces  map[uint64]*CellTrace
	order   []uint64 // first-seen order, for stable export
	dropped uint64
}

// NewCellTracker returns a tracker sampling every Nth traced cell
// (every <= 1 keeps all) and following at most max distinct cells
// (0 selects DefaultCellCap).
func NewCellTracker(every, max int) *CellTracker {
	if every < 1 {
		every = 1
	}
	if max <= 0 {
		max = DefaultCellCap
	}
	return &CellTracker{every: uint64(every), max: max, traces: make(map[uint64]*CellTrace)}
}

// Enabled reports whether the tracker records anything; sources may use
// it to skip minting trace IDs entirely.
func (t *CellTracker) Enabled() bool { return t != nil }

// Every returns the sampling interval (0 for a nil tracker).
func (t *CellTracker) Every() int {
	if t == nil {
		return 0
	}
	return int(t.every)
}

// Sampled reports whether the given trace ID falls in the sample. ID 0
// (untraced) is never sampled.
func (t *CellTracker) Sampled(id uint64) bool {
	if t == nil || id == 0 {
		return false
	}
	return (id-1)%t.every == 0
}

// Hop records one waypoint of cell id at simulated time simPS. IDs
// outside the sample are ignored; a new ID past the tracked-cell cap is
// counted as dropped.
func (t *CellTracker) Hop(id uint64, name string, simPS int64) {
	if !t.Sampled(id) {
		return
	}
	t.mu.Lock()
	tr, ok := t.traces[id]
	if !ok {
		if len(t.traces) >= t.max {
			t.dropped++
			t.mu.Unlock()
			return
		}
		tr = &CellTrace{ID: id}
		t.traces[id] = tr
		t.order = append(t.order, id)
	}
	tr.Hops = append(tr.Hops, Hop{Name: name, Sim: simPS})
	t.mu.Unlock()
}

// Dropped returns how many new cells were not tracked because the cap
// was reached.
func (t *CellTracker) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of tracked cells.
func (t *CellTracker) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

// sortHops orders a copied hop list into pipeline order (stable for
// repeated hops).
func sortHops(hops []Hop) {
	sort.SliceStable(hops, func(i, j int) bool {
		oi, iok := hopOrder[hops[i].Name]
		oj, jok := hopOrder[hops[j].Name]
		switch {
		case iok && jok:
			return oi < oj
		case iok:
			return true
		case jok:
			return false
		}
		return hops[i].Name < hops[j].Name
	})
}

// Trace returns a copy of cell id's journey with hops in pipeline order,
// and whether the cell was tracked.
func (t *CellTracker) Trace(id uint64) (CellTrace, bool) {
	if t == nil {
		return CellTrace{}, false
	}
	t.mu.Lock()
	tr, ok := t.traces[id]
	var out CellTrace
	if ok {
		out = CellTrace{ID: tr.ID, Hops: append([]Hop(nil), tr.Hops...)}
	}
	t.mu.Unlock()
	sortHops(out.Hops)
	return out, ok
}

// Traces returns copies of every tracked cell in first-seen order, hops
// in pipeline order.
func (t *CellTracker) Traces() []CellTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]CellTrace, 0, len(t.order))
	for _, id := range t.order {
		tr := t.traces[id]
		out = append(out, CellTrace{ID: tr.ID, Hops: append([]Hop(nil), tr.Hops...)})
	}
	t.mu.Unlock()
	for i := range out {
		sortHops(out[i].Hops)
	}
	return out
}

// fmtSimPS renders a simulated-time stamp (ps) compactly and
// deterministically.
func fmtSimPS(ps int64) string {
	switch {
	case ps < 0:
		return "?"
	case ps < 1e6:
		return fmt.Sprintf("%dps", ps)
	case ps < 1e9:
		return fmt.Sprintf("%.3fus", float64(ps)/1e6)
	default:
		return fmt.Sprintf("%.3fms", float64(ps)/1e9)
	}
}

// WaterfallText renders one cell's journey as a per-hop latency
// waterfall. Only simulated time appears, so the text is identical
// across replays of the same seed:
//
//	cell trace 0x2a: 5 hops, 12.600us net.enqueue -> compare
//	  net.enqueue  t=10.000us
//	  ipc.tx       t=10.000us  +0ps
//	  ...
func WaterfallText(tr CellTrace) string {
	var b strings.Builder
	if len(tr.Hops) == 0 {
		fmt.Fprintf(&b, "cell trace 0x%x: no hops recorded\n", tr.ID)
		return b.String()
	}
	first, last := tr.Hops[0], tr.Hops[len(tr.Hops)-1]
	fmt.Fprintf(&b, "cell trace 0x%x: %d hops, %s %s -> %s\n",
		tr.ID, len(tr.Hops), fmtSimPS(last.Sim-first.Sim), first.Name, last.Name)
	wide := 0
	for _, h := range tr.Hops {
		if len(h.Name) > wide {
			wide = len(h.Name)
		}
	}
	for i, h := range tr.Hops {
		fmt.Fprintf(&b, "  %-*s t=%s", wide, h.Name, fmtSimPS(h.Sim))
		if i > 0 {
			fmt.Fprintf(&b, "  +%s", fmtSimPS(h.Sim-tr.Hops[i-1].Sim))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FlowEvents converts the tracked journeys into FlowPoint trace events —
// one per hop, on the hop's engine track — ready to merge into a tracer
// export so the Chrome viewer draws causal arrows across the engine
// timelines.
func (t *CellTracker) FlowEvents() []Event {
	var out []Event
	for _, tr := range t.Traces() {
		name := fmt.Sprintf("cell 0x%x", tr.ID)
		for _, h := range tr.Hops {
			out = append(out, Event{
				Type:  FlowPoint,
				Track: HopTrack(h.Name),
				Name:  name,
				Sim:   h.Sim,
				Flow:  tr.ID,
			})
		}
	}
	return out
}
