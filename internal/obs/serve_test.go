package obs

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newTestServer builds a Server over a run with representative state: a
// sharded campaign counter, coupling gauges, and one tracked cell.
func newTestServer() *Server {
	run := NewRun(DefaultTraceCap)
	run.Cells = NewCellTracker(1, 0)
	run.Cells.Hop(1, HopNetEnqueue, 100)
	reg := run.Reg()
	reg.ShardCounter("campaign.runs", 0).Add(3)
	reg.ShardCounter("campaign.failures", 0).Add(1)
	reg.Gauge("cosim.queue.k8.depth").Set(2)
	reg.Gauge("cosim.entity.lag_ps").Set(1500)
	reg.Gauge("net.sched.pending").Set(4)
	reg.Gauge("hdl.sim.pending").Set(6)
	verdict := run.CoverReg().Group("rig.cmp").Point("verdict", "match", "mismatch")
	verdict.Add("match", 7)
	return NewServer(run)
}

// TestServeMetrics: /metrics answers valid Prometheus exposition with the
// version content type and the sharded campaign family.
func TestServeMetrics(t *testing.T) {
	srv := httptest.NewServer(newTestServer().Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 exposition type", ct)
	}
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		b.WriteString(sc.Text())
		b.WriteByte('\n')
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE campaign_runs_total counter",
		`campaign_runs_total{shard="0"} 3`,
		"cosim_queue_k8_depth 2",
		"# TYPE castanet_cover_bin_total counter",
		`castanet_cover_bin_total{group="rig.cmp",point="verdict",bin="match"} 7`,
		`castanet_cover_group_ratio{group="rig.cmp"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}
}

// TestServeCoverage: /coverage answers the functional-coverage state as
// JSON — per-group hit/total/ratio plus every point's bins, in the schema
// dashboards scrape.
func TestServeCoverage(t *testing.T) {
	srv := httptest.NewServer(newTestServer().Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/coverage")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var doc struct {
		Groups []struct {
			Group  string  `json:"group"`
			Hit    int     `json:"hit"`
			Total  int     `json:"total"`
			Ratio  float64 `json:"ratio"`
			Points []struct {
				Name string `json:"name"`
				Bins []struct {
					Label string `json:"bin"`
					Hits  uint64 `json:"hits"`
				} `json:"bins"`
			} `json:"points"`
		} `json:"groups"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("/coverage is not JSON: %v", err)
	}
	if len(doc.Groups) != 1 {
		t.Fatalf("/coverage groups = %d, want 1", len(doc.Groups))
	}
	g := doc.Groups[0]
	if g.Group != "rig.cmp" || g.Hit != 1 || g.Total != 2 || g.Ratio != 0.5 {
		t.Errorf("group = %+v, want rig.cmp 1/2 ratio 0.5", g)
	}
	if len(g.Points) != 1 || g.Points[0].Name != "verdict" {
		t.Fatalf("points = %+v", g.Points)
	}
	bins := g.Points[0].Bins
	if len(bins) != 2 || bins[0].Label != "match" || bins[0].Hits != 7 ||
		bins[1].Label != "mismatch" || bins[1].Hits != 0 {
		t.Errorf("bins = %+v", bins)
	}
}

// TestServeHealthz: /healthz reports ok, and activity time only after a
// beat.
func TestServeHealthz(t *testing.T) {
	ts := newTestServer()
	srv := httptest.NewServer(ts.Handler())
	defer srv.Close()

	get := func() map[string]any {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	h := get()
	if h["status"] != "ok" {
		t.Errorf("status = %v, want ok", h["status"])
	}
	if _, ok := h["seconds_since_activity"]; ok {
		t.Error("activity reported before any beat")
	}
	if h["cells_tracked"] != float64(1) {
		t.Errorf("cells_tracked = %v, want 1", h["cells_tracked"])
	}

	ts.Beat()
	if _, ok := get()["seconds_since_activity"]; !ok {
		t.Error("activity missing after a beat")
	}
}

// TestServeSnapshot: /snapshot streams one JSON progress object per line
// with the per-shard and coupling fields filled from the registry.
func TestServeSnapshot(t *testing.T) {
	srv := httptest.NewServer(newTestServer().Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/snapshot?n=2&interval=10ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines++
		var p struct {
			ShardRuns     map[string]uint64  `json:"shard_runs"`
			ShardFailures map[string]uint64  `json:"shard_failures"`
			QueueDepth    map[string]float64 `json:"queue_depth"`
			LagPS         float64            `json:"lag_ps"`
			NetPending    float64            `json:"net_pending"`
			HDLPending    float64            `json:"hdl_pending"`
		}
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("snapshot line %d is not JSON: %v", lines, err)
		}
		if p.ShardRuns["0"] != 3 || p.ShardFailures["0"] != 1 {
			t.Errorf("shard progress = %v / %v", p.ShardRuns, p.ShardFailures)
		}
		if p.QueueDepth["k8"] != 2 || p.LagPS != 1500 || p.NetPending != 4 || p.HDLPending != 6 {
			t.Errorf("coupling fields wrong in %s", sc.Text())
		}
	}
	if lines != 2 {
		t.Errorf("got %d snapshot lines, want 2", lines)
	}

	if resp, err := http.Get(srv.URL + "/snapshot?n=0"); err == nil {
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("n=0 answered %d, want 400", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestServeIndex: the root lists the endpoints; anything else is 404.
func TestServeIndex(t *testing.T) {
	srv := httptest.NewServer(newTestServer().Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		b.WriteString(sc.Text())
	}
	resp.Body.Close()
	if !strings.Contains(b.String(), "/metrics") {
		t.Errorf("index does not list endpoints: %q", b.String())
	}
	if resp, err := http.Get(srv.URL + "/nope"); err == nil {
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("/nope answered %d, want 404", resp.StatusCode)
		}
		resp.Body.Close()
	}
}
