package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. The hot path is a
// single atomic add; a nil *Counter is an always-cheap no-op so
// instrumented code can run without a registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric holding the latest value of a quantity such
// as a queue depth or a ratio. Set is a single atomic store.
type Gauge struct {
	bits atomic.Uint64
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the value by d (CAS loop; use Set where possible).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with atomic hot paths. Bucket i
// counts observations x <= Bounds[i]; one extra overflow bucket counts
// everything above the last bound. Unlike sim.Histogram it is safe for
// concurrent use, which the coupling transports need.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must ascend")
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, x)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// Count returns the count of bucket i; i == len(Bounds()) is the overflow
// bucket.
func (h *Histogram) Count(i int) uint64 {
	if h == nil {
		return 0
	}
	return h.buckets[i].Load()
}

// N returns the total number of observations.
func (h *Histogram) N() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Kind distinguishes metric types in snapshots.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind for the exposition format.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Snapshot is one metric's state at snapshot time.
type Snapshot struct {
	Name  string
	Kind  Kind
	Value float64 // counter count or gauge value; histogram observation count
	// Histogram-only fields.
	Sum     float64
	Bounds  []float64
	Buckets []uint64 // len(Bounds)+1, last is overflow
}

// metric is a registered named metric of any kind.
type metric struct {
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named metrics. Registration (get-or-create) takes a
// mutex; the metric operations themselves are lock-free atomics. A nil
// *Registry hands out nil metrics, so a disabled deployment costs one nil
// test per instrumentation site.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

func (r *Registry) get(name string, kind Kind, make func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, m.kind))
		}
		return m
	}
	m := make()
	r.metrics[name] = m
	return m
}

// ShardName labels a metric with the campaign shard that owns it:
// "campaign.runs" on shard 2 becomes "campaign.runs.shard2". The label is
// a name suffix (not a separate dimension) so sharded counters sort
// together in the exposition format and the run report.
func ShardName(name string, shard int) string {
	return fmt.Sprintf("%s.shard%d", name, shard)
}

// ShardCounter returns the per-shard labelled counter for name.
func (r *Registry) ShardCounter(name string, shard int) *Counter {
	if r == nil {
		return nil
	}
	return r.Counter(ShardName(name, shard))
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, KindCounter, func() *metric {
		return &metric{kind: KindCounter, c: &Counter{}}
	}).c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, KindGauge, func() *metric {
		return &metric{kind: KindGauge, g: &Gauge{}}
	}).g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket upper bounds on first use (later calls may pass no
// bounds; if they do pass bounds, the original buckets win).
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(name, KindHistogram, func() *metric {
		return &metric{kind: KindHistogram, h: newHistogram(bounds)}
	}).h
}

// Snapshot returns every metric's current state, sorted by name.
func (r *Registry) Snapshot() []Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	ms := make([]*metric, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		ms = append(ms, r.metrics[name])
	}
	r.mu.Unlock()

	snaps := make([]Snapshot, 0, len(names))
	for i, m := range ms {
		s := Snapshot{Name: names[i], Kind: m.kind}
		switch m.kind {
		case KindCounter:
			s.Value = float64(m.c.Value())
		case KindGauge:
			s.Value = m.g.Value()
		case KindHistogram:
			s.Value = float64(m.h.N())
			s.Sum = m.h.Sum()
			s.Bounds = m.h.Bounds()
			s.Buckets = make([]uint64, len(s.Bounds)+1)
			for b := range s.Buckets {
				s.Buckets[b] = m.h.Count(b)
			}
		}
		snaps = append(snaps, s)
	}
	return snaps
}

// WriteText writes the plain-text exposition format: one
// "name kind value" line per scalar metric, and for histograms one line
// per bucket ("name.bucket le=<bound> <count>") plus count and sum. The
// output is sorted and stable, suitable for golden files and diffing runs.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshot() {
		var err error
		switch s.Kind {
		case KindHistogram:
			for i, bound := range s.Bounds {
				if _, err = fmt.Fprintf(w, "%s.bucket le=%g %d\n", s.Name, bound, s.Buckets[i]); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s.bucket le=+inf %d\n", s.Name, s.Buckets[len(s.Buckets)-1]); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s.count histogram %d\n", s.Name, uint64(s.Value)); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s.sum histogram %g\n", s.Name, s.Sum)
		case KindCounter:
			// Counters are integral; %d keeps large counts diff-friendly.
			_, err = fmt.Fprintf(w, "%s %s %d\n", s.Name, s.Kind, uint64(s.Value))
		default:
			_, err = fmt.Fprintf(w, "%s %s %g\n", s.Name, s.Kind, s.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
