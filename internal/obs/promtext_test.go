package obs

import (
	"strconv"
	"strings"
	"testing"
)

// TestPromFamily pins the registry-name → exposition-family mapping.
func TestPromFamily(t *testing.T) {
	for _, tc := range []struct {
		name   string
		kind   Kind
		family string
		labels string
	}{
		{"net.sched.executed", KindCounter, "net_sched_executed_total", ""},
		{"cosim.queue.k8.depth", KindGauge, "cosim_queue_k8_depth", ""},
		{"campaign.runs.shard2", KindCounter, "campaign_runs_total", `shard="2"`},
		{"campaign.stat.cells.shard11", KindHistogram, "campaign_stat_cells", `shard="11"`},
		{"campaign.runs.shardx", KindCounter, "campaign_runs_shardx_total", ""},
		{"weird-name.1", KindGauge, "weird_name_1", ""},
	} {
		fam, labels := promFamily(tc.name, tc.kind)
		if fam != tc.family || labels != tc.labels {
			t.Errorf("promFamily(%q, %v) = (%q, %q), want (%q, %q)",
				tc.name, tc.kind, fam, labels, tc.family, tc.labels)
		}
	}
}

// TestWritePrometheus: the exposition is structurally valid — one # TYPE
// line per family, samples named after their family, shard series grouped
// under one family, and histogram buckets cumulative and monotone.
func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("net.sched.executed").Add(42)
	reg.Gauge("cosim.queue.k8.depth").Set(3)
	reg.ShardCounter("campaign.runs", 0).Add(5)
	reg.ShardCounter("campaign.runs", 1).Add(7)
	h := reg.Histogram("coupling.rtt_us", 1, 10, 100)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5000)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	types := map[string]string{}
	samples := map[string][]string{} // family (stripped of suffixes) not needed; keep raw names
	var sampleNames []string
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if _, dup := types[fields[2]]; dup {
				t.Errorf("family %q declared twice", fields[2])
			}
			types[fields[2]] = fields[3]
			continue
		}
		name, rest, ok := splitSample(line)
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		sampleNames = append(sampleNames, name)
		samples[name] = append(samples[name], rest)
	}

	if got := types["campaign_runs_total"]; got != "counter" {
		t.Errorf("campaign_runs_total type = %q, want counter", got)
	}
	if len(samples["campaign_runs_total"]) != 2 {
		t.Errorf("want both shard series under one family, got %v", samples["campaign_runs_total"])
	}
	if !strings.Contains(out, `campaign_runs_total{shard="0"} 5`) ||
		!strings.Contains(out, `campaign_runs_total{shard="1"} 7`) {
		t.Errorf("shard label series missing:\n%s", out)
	}
	if !strings.Contains(out, "net_sched_executed_total 42") {
		t.Errorf("counter sample missing:\n%s", out)
	}
	if !strings.Contains(out, "cosim_queue_k8_depth 3") {
		t.Errorf("gauge sample missing:\n%s", out)
	}

	// Histogram: cumulative buckets, monotone, +Inf == _count.
	var cum []uint64
	for _, rest := range samples["coupling_rtt_us_bucket"] {
		v, err := strconv.ParseUint(strings.Fields(rest)[len(strings.Fields(rest))-1], 10, 64)
		if err != nil {
			t.Fatalf("bucket value: %v", err)
		}
		cum = append(cum, v)
	}
	if len(cum) != 4 || !isMonotone(cum) {
		t.Errorf("buckets not cumulative-monotone: %v", cum)
	}
	if !strings.Contains(out, `coupling_rtt_us_bucket{le="+Inf"} 3`) {
		t.Errorf("+Inf bucket must equal the observation count:\n%s", out)
	}
	if !strings.Contains(out, "coupling_rtt_us_count 3") {
		t.Errorf("_count missing:\n%s", out)
	}
	if !strings.Contains(out, "coupling_rtt_us_sum 5005.5") {
		t.Errorf("_sum missing:\n%s", out)
	}

	// Every sample's family must have been declared by a TYPE line.
	for _, name := range sampleNames {
		fam := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if types[fam] != "" {
				break
			}
			fam = strings.TrimSuffix(name, suffix)
		}
		if types[fam] == "" {
			t.Errorf("sample %q has no TYPE declaration", name)
		}
	}
}

// TestWritePrometheusKindClash: two registry names mapping onto one family
// with different kinds must not share a TYPE declaration.
func TestWritePrometheusKindClash(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("a.b").Set(1)
	reg.Histogram("a-b", 1).Observe(0.5) // both sanitize to family "a_b"
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE ") != 2 {
		t.Errorf("want two TYPE lines for clashing kinds:\n%s", out)
	}
}

// splitSample splits "name{labels} value" or "name value" into the bare
// metric name and the remainder.
func splitSample(line string) (name, rest string, ok bool) {
	if i := strings.IndexAny(line, "{ "); i > 0 {
		return line[:i], line[i:], true
	}
	return "", "", false
}

func isMonotone(v []uint64) bool {
	for i := 1; i < len(v); i++ {
		if v[i] < v[i-1] {
			return false
		}
	}
	return true
}
