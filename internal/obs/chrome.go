package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event JSON export. The "JSON object format" is written:
//
//	{"traceEvents": [...], "displayTimeUnit": "ns"}
//
// Timestamps: the viewer timeline is laid out in *simulated* time — ts is
// sim picoseconds divided by 1e6, because trace_event ts is in
// microseconds. A co-verification run therefore renders as the simulated
// schedule (cell slots, δ-windows, sync points), with the wall-clock
// nanosecond stamp preserved in each event's args for cost analysis.
//
// Tracks: each distinct Event.Track becomes one thread (tid) of a single
// process (pid 1), named via "thread_name" metadata so Perfetto labels
// the rows netsim / hdl-dut / coupling / board / rig.

// ChromeEvent is one trace_event record; exported so tests can parse the
// output back.
type ChromeEvent struct {
	Name  string                 `json:"name"`
	Phase string                 `json:"ph"`
	TS    float64                `json:"ts"` // microseconds
	PID   int                    `json:"pid"`
	TID   int                    `json:"tid"`
	Scope string                 `json:"s,omitempty"`
	Cat   string                 `json:"cat,omitempty"`
	ID    string                 `json:"id,omitempty"` // flow binding id
	BP    string                 `json:"bp,omitempty"` // flow end binding point
	Args  map[string]interface{} `json:"args,omitempty"`
}

// ChromeTrace is the JSON object format envelope.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// SimPSPerMicrosecond is the ts conversion: trace_event timestamps are
// microseconds, simulated time is picoseconds.
const SimPSPerMicrosecond = 1e6

func phase(t EventType) string {
	switch t {
	case SpanBegin:
		return "B"
	case SpanEnd:
		return "E"
	case Instant:
		return "i"
	case CounterSample:
		return "C"
	}
	return "i"
}

// BuildChromeTrace converts recorded events into the trace_event form.
// Track ids are assigned in first-appearance order, starting at 1.
func BuildChromeTrace(events []Event) ChromeTrace {
	tr := ChromeTrace{DisplayTimeUnit: "ns", TraceEvents: []ChromeEvent{}}
	tids := map[string]int{}
	var tracks []string
	for _, e := range events {
		if _, ok := tids[e.Track]; !ok {
			tids[e.Track] = len(tids) + 1
			tracks = append(tracks, e.Track)
		}
	}
	sort.Strings(tracks) // stable tid assignment independent of event order
	for i, name := range tracks {
		tids[name] = i + 1
	}
	tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
		Name: "process_name", Phase: "M", PID: 1,
		Args: map[string]interface{}{"name": "castanet"},
	})
	for _, name := range tracks {
		tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: tids[name],
			Args: map[string]interface{}{"name": name},
		})
	}
	// Flow phases depend on a waypoint's position within its flow: the
	// first point starts the arrow chain ("s"), the last finishes it
	// ("f"), everything between continues it ("t").
	flowTotal := map[uint64]int{}
	for _, e := range events {
		if e.Type == FlowPoint {
			flowTotal[e.Flow]++
		}
	}
	flowSeen := map[uint64]int{}
	for _, e := range events {
		ce := ChromeEvent{
			Name:  e.Name,
			Phase: phase(e.Type),
			TS:    float64(e.Sim) / SimPSPerMicrosecond,
			PID:   1,
			TID:   tids[e.Track],
			Args:  map[string]interface{}{"wall_ns": e.Wall},
		}
		switch e.Type {
		case Instant:
			ce.Scope = "t"
		case CounterSample:
			ce.Args[e.Name] = e.Value
		case FlowPoint:
			flowSeen[e.Flow]++
			ce.Cat = "cell"
			ce.ID = fmt.Sprintf("0x%x", e.Flow)
			switch {
			case flowSeen[e.Flow] == 1:
				ce.Phase = "s"
			case flowSeen[e.Flow] == flowTotal[e.Flow]:
				ce.Phase = "f"
				ce.BP = "e"
			default:
				ce.Phase = "t"
			}
		}
		tr.TraceEvents = append(tr.TraceEvents, ce)
	}
	return tr
}

// WriteChromeTrace writes the events as Chrome trace JSON, loadable in
// chrome://tracing and https://ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	return enc.Encode(BuildChromeTrace(events))
}
