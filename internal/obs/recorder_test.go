package obs

import (
	"strings"
	"testing"
)

// TestRecorderRing: the ring keeps the newest entries across wrap-around
// and counts the overwritten ones.
func TestRecorderRing(t *testing.T) {
	r := NewRecorder(3)
	for i := 1; i <= 5; i++ {
		r.Note("rig", int64(i*100), "event %d", i)
	}
	recs := r.Records()
	if len(recs) != 3 {
		t.Fatalf("ring holds %d entries, want 3", len(recs))
	}
	for i, want := range []string{"event 3", "event 4", "event 5"} {
		if recs[i].Text != want {
			t.Errorf("entry %d = %q, want %q (oldest first)", i, recs[i].Text, want)
		}
	}
	if r.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", r.Dropped())
	}
}

// TestRecorderDump: the dump headline counts entries and overwrites, each
// line carries source and simulated time, and cell attribution only
// appears when a cell is named.
func TestRecorderDump(t *testing.T) {
	r := NewRecorder(8)
	r.Note("iface", 1_000_000, "coupling failure: timeout")
	r.NoteCell(0x2b, "cmp", 2_000_000, "port 1: payload mismatch")
	dump := r.Dump()
	for _, want := range []string{
		"flight recorder (2 events, 0 overwritten):",
		"[iface] t=1.000us coupling failure: timeout",
		"[cmp] t=2.000us cell=0x2b port 1: payload mismatch",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	if strings.Contains(strings.Split(dump, "\n")[1], "cell=") {
		t.Errorf("cell-less entry must not claim a cell:\n%s", dump)
	}
}

// TestRecorderNil: every method is a no-op on a nil recorder, and an
// empty recorder dumps nothing.
func TestRecorderNil(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder must report disabled")
	}
	r.Note("rig", 0, "dropped") // must not panic
	r.NoteCell(1, "rig", 0, "dropped")
	if r.Records() != nil || r.Dropped() != 0 || r.Dump() != "" {
		t.Error("nil recorder must hold nothing")
	}
	if NewRecorder(4).Dump() != "" {
		t.Error("empty recorder must dump an empty string")
	}
}
