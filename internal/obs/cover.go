package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Functional coverage: named bin groups with atomic hit counters.
//
// A CoverRegistry holds CoverGroups; a CoverGroup holds CoverPoints; a
// CoverPoint is an ordered set of bins, each an atomic uint64 hit count.
// Points come in two shapes — enumerated labels (Point) and integer range
// bands (Range) — plus cross products of two label sets (Cross). The
// handle discipline matches the metrics registry exactly: every handle is
// nil-safe, so instrumented engine code pays one pointer test (~0 ns)
// when coverage is disabled, and definition is get-or-create under a
// mutex with a panic on schema clash.
//
// Determinism contract: bins are fixed at definition time (a Hit with an
// unknown label is dropped, never auto-added), points and groups snapshot
// sorted by name, and bins snapshot in definition order. Because every
// run defines its schema from the same code paths, per-run snapshots
// merge bin-wise by label into an order-independent integer sum — the
// property the campaign engine relies on for shard-exact digests.

// coverKind distinguishes point shapes for schema-clash detection.
type coverKind uint8

const (
	coverPoint coverKind = iota
	coverRange
	coverCross
)

func (k coverKind) String() string {
	switch k {
	case coverPoint:
		return "point"
	case coverRange:
		return "range"
	case coverCross:
		return "cross"
	}
	return "unknown"
}

// CoverPoint is one coverage point: an ordered, fixed set of bins with
// atomic hit counters. A nil *CoverPoint drops every hit for ~0 ns.
type CoverPoint struct {
	name   string
	kind   coverKind
	labels []string       // bin labels in definition order
	index  map[string]int // label -> bin
	bounds []int64        // range points only: ascending upper bounds
	hits   []atomic.Uint64
}

// Hit counts one hit of the named bin. Unknown labels are dropped: bins
// are fixed at definition so every run carries the same schema.
func (p *CoverPoint) Hit(label string) {
	p.Add(label, 1)
}

// Add counts n hits of the named bin (unknown labels dropped).
func (p *CoverPoint) Add(label string, n uint64) {
	if p == nil || n == 0 {
		return
	}
	if i, ok := p.index[label]; ok {
		p.hits[i].Add(n)
	}
}

// Observe bins an integer observation on a range point: the first bin
// whose bound is >= v, or the overflow bin past the last bound. On an
// enumerated point it is a no-op. Range points have a handful of bands,
// so a linear scan beats a binary search on the hot path.
func (p *CoverPoint) Observe(v int64) {
	if p == nil || p.bounds == nil {
		return
	}
	for i, b := range p.bounds {
		if b >= v {
			p.hits[i].Add(1)
			return
		}
	}
	p.hits[len(p.bounds)].Add(1)
}

// CoverHit is a precomputed handle on one bin: the per-hit label lookup
// (map index or ×-concatenation) is paid once at definition time instead
// of on every hit. Hot call sites with a fixed label cache one of these.
// A nil *CoverHit drops every hit for ~0 ns, so handles stay nil-safe all
// the way down from a nil registry.
type CoverHit struct {
	c *atomic.Uint64
}

// Hit counts one hit of the handle's bin.
func (h *CoverHit) Hit() {
	if h == nil {
		return
	}
	h.c.Add(1)
}

// Add counts n hits of the handle's bin.
func (h *CoverHit) Add(n uint64) {
	if h == nil {
		return
	}
	h.c.Add(n)
}

// Handle returns a precomputed hit handle for the named bin, nil for a nil
// point or an unknown label (both drop hits, matching Hit's semantics).
func (p *CoverPoint) Handle(label string) *CoverHit {
	if p == nil {
		return nil
	}
	if i, ok := p.index[label]; ok {
		return &CoverHit{c: &p.hits[i]}
	}
	return nil
}

// CoverCross is a cross-coverage point over two label sets; each (a, b)
// pair is one bin. A nil *CoverCross drops every hit.
type CoverCross struct {
	p *CoverPoint
}

// Hit counts one hit of the (a, b) bin (unknown pairs dropped).
func (x *CoverCross) Hit(a, b string) {
	if x == nil {
		return
	}
	x.p.Add(a+"×"+b, 1)
}

// Handle returns a precomputed hit handle for the (a, b) bin, nil for a
// nil cross or an unknown pair.
func (x *CoverCross) Handle(a, b string) *CoverHit {
	if x == nil {
		return nil
	}
	return x.p.Handle(a + "×" + b)
}

// CoverGroup is a named group of coverage points. A nil *CoverGroup hands
// out nil points.
type CoverGroup struct {
	name   string
	mu     sync.Mutex
	points map[string]*CoverPoint
}

func (g *CoverGroup) get(name string, kind coverKind, labels []string, bounds []int64) *CoverPoint {
	g.mu.Lock()
	defer g.mu.Unlock()
	if p, ok := g.points[name]; ok {
		if p.kind != kind || !sameLabels(p.labels, labels) {
			panic(fmt.Sprintf("obs: cover point %s.%s re-registered as %v%v (was %v%v)",
				g.name, name, kind, labels, p.kind, p.labels))
		}
		return p
	}
	p := &CoverPoint{
		name:   name,
		kind:   kind,
		labels: labels,
		index:  make(map[string]int, len(labels)),
		bounds: bounds,
		hits:   make([]atomic.Uint64, len(labels)),
	}
	for i, l := range labels {
		p.index[l] = i
	}
	g.points[name] = p
	return p
}

func sameLabels(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Point returns the named enumerated point, defining its bins on first
// use. Re-registration with different bins panics.
func (g *CoverGroup) Point(name string, labels ...string) *CoverPoint {
	if g == nil {
		return nil
	}
	return g.get(name, coverPoint, append([]string(nil), labels...), nil)
}

// Range returns the named range point with ascending integer band bounds:
// bins "le_<bound>"... plus one "gt_<last>" overflow bin.
func (g *CoverGroup) Range(name string, bounds ...int64) *CoverPoint {
	if g == nil {
		return nil
	}
	labels := make([]string, 0, len(bounds)+1)
	for i, b := range bounds {
		if i > 0 && bounds[i-1] >= b {
			panic(fmt.Sprintf("obs: cover range %s.%s bounds must ascend", g.name, name))
		}
		labels = append(labels, fmt.Sprintf("le_%d", b))
	}
	if len(bounds) > 0 {
		labels = append(labels, fmt.Sprintf("gt_%d", bounds[len(bounds)-1]))
	}
	return g.get(name, coverRange, labels, append([]int64(nil), bounds...))
}

// Cross returns the named cross of two label sets: one bin per (a, b)
// pair, a-major in definition order.
func (g *CoverGroup) Cross(name string, a, b []string) *CoverCross {
	if g == nil {
		return nil
	}
	labels := make([]string, 0, len(a)*len(b))
	for _, la := range a {
		for _, lb := range b {
			labels = append(labels, la+"×"+lb)
		}
	}
	return &CoverCross{p: g.get(name, coverCross, labels, nil)}
}

// CoverRegistry holds named cover groups. Like the metrics Registry, a
// nil *CoverRegistry hands out nil groups, so a disabled deployment costs
// one nil test per instrumentation site.
type CoverRegistry struct {
	mu     sync.Mutex
	groups map[string]*CoverGroup
}

// NewCoverRegistry returns an empty cover registry.
func NewCoverRegistry() *CoverRegistry {
	return &CoverRegistry{groups: make(map[string]*CoverGroup)}
}

// Group returns the named group, creating it on first use.
func (r *CoverRegistry) Group(name string) *CoverGroup {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.groups[name]
	if !ok {
		g = &CoverGroup{name: name, points: make(map[string]*CoverPoint)}
		r.groups[name] = g
	}
	return g
}

// CoverBin is one bin's state at snapshot time.
type CoverBin struct {
	Label string `json:"bin"`
	Hits  uint64 `json:"hits"`
}

// CoverPointSnap is one point's state: bins in definition order.
type CoverPointSnap struct {
	Name string     `json:"name"`
	Bins []CoverBin `json:"bins"`
}

// Covered reports how many of the point's bins have at least one hit.
func (s CoverPointSnap) Covered() (hit, total int) {
	for _, b := range s.Bins {
		if b.Hits > 0 {
			hit++
		}
	}
	return hit, len(s.Bins)
}

// CoverGroupSnap is one group's state: points sorted by name.
type CoverGroupSnap struct {
	Name   string           `json:"group"`
	Points []CoverPointSnap `json:"points"`
}

// Covered reports how many of the group's bins have at least one hit.
func (s CoverGroupSnap) Covered() (hit, total int) {
	for _, p := range s.Points {
		h, t := p.Covered()
		hit += h
		total += t
	}
	return hit, total
}

// Ratio is the group's hit-bin fraction in [0, 1] (0 for an empty group).
func (s CoverGroupSnap) Ratio() float64 {
	hit, total := s.Covered()
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// Snapshot returns every group's state: groups and points sorted by name,
// bins in definition order. nil registries snapshot empty.
func (r *CoverRegistry) Snapshot() []CoverGroupSnap {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	groups := make([]*CoverGroup, 0, len(r.groups))
	for _, g := range r.groups {
		groups = append(groups, g)
	}
	r.mu.Unlock()
	sort.Slice(groups, func(i, j int) bool { return groups[i].name < groups[j].name })

	snaps := make([]CoverGroupSnap, 0, len(groups))
	for _, g := range groups {
		g.mu.Lock()
		points := make([]*CoverPoint, 0, len(g.points))
		for _, p := range g.points {
			points = append(points, p)
		}
		g.mu.Unlock()
		sort.Slice(points, func(i, j int) bool { return points[i].name < points[j].name })
		gs := CoverGroupSnap{Name: g.name, Points: make([]CoverPointSnap, 0, len(points))}
		for _, p := range points {
			ps := CoverPointSnap{Name: p.name, Bins: make([]CoverBin, len(p.labels))}
			for i, l := range p.labels {
				ps.Bins[i] = CoverBin{Label: l, Hits: p.hits[i].Load()}
			}
			gs.Points = append(gs.Points, ps)
		}
		snaps = append(snaps, gs)
	}
	return snaps
}

// Absorb folds a snapshot into the registry: groups, points and bins are
// created as needed (as enumerated points) and hit counts added. It backs
// the live telemetry mirror, which accumulates committed per-run
// snapshots for /coverage while a campaign runs.
func (r *CoverRegistry) Absorb(snaps []CoverGroupSnap) {
	if r == nil {
		return
	}
	for _, gs := range snaps {
		g := r.Group(gs.Name)
		for _, ps := range gs.Points {
			labels := make([]string, len(ps.Bins))
			for i, b := range ps.Bins {
				labels[i] = b.Label
			}
			p := g.Point(ps.Name, labels...)
			for _, b := range ps.Bins {
				p.Add(b.Label, b.Hits)
			}
		}
	}
}

// MergeCover folds src into dst bin-wise and returns the result: groups
// and points united by name (kept sorted), bins aligned by label with
// dst's order winning and unseen src bins appended. Hit counts are
// integer sums, so the merge is associative, commutative and independent
// of shard count or merge order whenever the operands share a schema —
// which instrumented code guarantees by defining bins in code.
func MergeCover(dst, src []CoverGroupSnap) []CoverGroupSnap {
	if len(src) == 0 {
		return dst
	}
	if len(dst) == 0 {
		return cloneCover(src)
	}
	out := make([]CoverGroupSnap, 0, len(dst)+len(src))
	i, j := 0, 0
	for i < len(dst) || j < len(src) {
		switch {
		case j >= len(src) || (i < len(dst) && dst[i].Name < src[j].Name):
			out = append(out, dst[i])
			i++
		case i >= len(dst) || src[j].Name < dst[i].Name:
			out = append(out, cloneGroup(src[j]))
			j++
		default:
			out = append(out, mergeGroup(dst[i], src[j]))
			i, j = i+1, j+1
		}
	}
	return out
}

func mergeGroup(dst, src CoverGroupSnap) CoverGroupSnap {
	out := CoverGroupSnap{Name: dst.Name, Points: make([]CoverPointSnap, 0, len(dst.Points)+len(src.Points))}
	i, j := 0, 0
	for i < len(dst.Points) || j < len(src.Points) {
		switch {
		case j >= len(src.Points) || (i < len(dst.Points) && dst.Points[i].Name < src.Points[j].Name):
			out.Points = append(out.Points, dst.Points[i])
			i++
		case i >= len(dst.Points) || src.Points[j].Name < dst.Points[i].Name:
			out.Points = append(out.Points, clonePoint(src.Points[j]))
			j++
		default:
			out.Points = append(out.Points, mergePoint(dst.Points[i], src.Points[j]))
			i, j = i+1, j+1
		}
	}
	return out
}

func mergePoint(dst, src CoverPointSnap) CoverPointSnap {
	out := CoverPointSnap{Name: dst.Name, Bins: append([]CoverBin(nil), dst.Bins...)}
	index := make(map[string]int, len(out.Bins))
	for i, b := range out.Bins {
		index[b.Label] = i
	}
	for _, b := range src.Bins {
		if i, ok := index[b.Label]; ok {
			out.Bins[i].Hits += b.Hits
		} else {
			index[b.Label] = len(out.Bins)
			out.Bins = append(out.Bins, b)
		}
	}
	return out
}

func cloneCover(snaps []CoverGroupSnap) []CoverGroupSnap {
	out := make([]CoverGroupSnap, len(snaps))
	for i, g := range snaps {
		out[i] = cloneGroup(g)
	}
	return out
}

func cloneGroup(g CoverGroupSnap) CoverGroupSnap {
	out := CoverGroupSnap{Name: g.Name, Points: make([]CoverPointSnap, len(g.Points))}
	for i, p := range g.Points {
		out.Points[i] = clonePoint(p)
	}
	return out
}

func clonePoint(p CoverPointSnap) CoverPointSnap {
	return CoverPointSnap{Name: p.Name, Bins: append([]CoverBin(nil), p.Bins...)}
}

// CoverTotals sums Covered over a whole snapshot: the headline hit and
// defined bin counts across every group.
func CoverTotals(snaps []CoverGroupSnap) (hit, total int) {
	for _, g := range snaps {
		h, t := g.Covered()
		hit += h
		total += t
	}
	return hit, total
}

// WriteCoverText writes the human coverage report: one group header line
// with the hit-bin percentage and one line per point listing every bin's
// hit count. Integer-derived and sorted, so the output is byte-stable for
// a given coverage state.
func WriteCoverText(w io.Writer, snaps []CoverGroupSnap) error {
	if len(snaps) == 0 {
		_, err := fmt.Fprintln(w, "coverage: no cover groups instrumented")
		return err
	}
	for _, g := range snaps {
		hit, total := g.Covered()
		if _, err := fmt.Fprintf(w, "group %s %d/%d bins (%.1f%%)\n", g.Name, hit, total, 100*g.Ratio()); err != nil {
			return err
		}
		for _, p := range g.Points {
			ph, pt := p.Covered()
			if _, err := fmt.Fprintf(w, "  %s %d/%d", p.Name, ph, pt); err != nil {
				return err
			}
			for _, b := range p.Bins {
				if _, err := fmt.Fprintf(w, " %s=%d", b.Label, b.Hits); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCoverPrometheus writes the cover state in Prometheus exposition
// format: one castanet_cover_bin_total sample per bin and one
// castanet_cover_group_ratio gauge per group.
func WriteCoverPrometheus(w io.Writer, snaps []CoverGroupSnap) error {
	if len(snaps) == 0 {
		return nil
	}
	if _, err := fmt.Fprint(w, "# TYPE castanet_cover_bin_total counter\n"); err != nil {
		return err
	}
	for _, g := range snaps {
		for _, p := range g.Points {
			for _, b := range p.Bins {
				if _, err := fmt.Fprintf(w, "castanet_cover_bin_total{group=%q,point=%q,bin=%q} %d\n",
					g.Name, p.Name, b.Label, b.Hits); err != nil {
					return err
				}
			}
		}
	}
	if _, err := fmt.Fprint(w, "# TYPE castanet_cover_group_ratio gauge\n"); err != nil {
		return err
	}
	for _, g := range snaps {
		if _, err := fmt.Fprintf(w, "castanet_cover_group_ratio{group=%q} %g\n", g.Name, g.Ratio()); err != nil {
			return err
		}
	}
	return nil
}
