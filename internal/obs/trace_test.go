package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 7; i++ {
		tr.Emit(TrackRig, "e", int64(i))
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4 (ring capacity)", len(evs))
	}
	// The oldest three were overwritten; order stays chronological.
	for i, e := range evs {
		if want := int64(3 + i); e.Sim != want {
			t.Errorf("event %d sim = %d, want %d", i, e.Sim, want)
		}
	}
	if tr.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", tr.Dropped())
	}
}

func TestTracerWallStampsMonotone(t *testing.T) {
	tr := NewTracer(8)
	tr.Begin(TrackHDL, "w", 10)
	tr.End(TrackHDL, "w", 20)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Wall > evs[1].Wall {
		t.Errorf("wall stamps not monotone: %d then %d", evs[0].Wall, evs[1].Wall)
	}
}

// scriptedRun records the trace of a tiny synthetic co-verification run:
// a rig span containing two coupling message spans, δ-window spans on the
// hdl track, a sync instant and queue-depth counter samples — the shape
// the real instrumentation produces.
func scriptedRun() *Tracer {
	tr := NewTracer(64)
	tr.Begin(TrackRig, "run", 0)
	tr.Begin(TrackCoupling, "msg k16", 1_000_000)
	tr.Begin(TrackHDL, "window", 1_000_000)
	tr.End(TrackHDL, "window", 4_200_000)
	tr.End(TrackCoupling, "msg k16", 4_200_000)
	tr.Sample(TrackNetsim, "net.sched.pending", 4_200_000, 3)
	tr.Emit(TrackNetsim, "sync", 5_000_000)
	tr.Begin(TrackCoupling, "msg k17", 6_000_000)
	tr.End(TrackCoupling, "msg k17", 8_000_000)
	tr.Sample(TrackNetsim, "net.sched.pending", 8_000_000, 1)
	tr.End(TrackRig, "run", 9_000_000)
	return tr
}

// TestChromeTraceGolden exports the scripted run and parses the JSON
// back, asserting the invariants a trace viewer relies on: valid JSON,
// named tracks, per-track monotonic timestamps, balanced and properly
// nested B/E spans, instants carrying a scope, counters carrying values.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, scriptedRun().Events()); err != nil {
		t.Fatal(err)
	}
	var parsed ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if parsed.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", parsed.DisplayTimeUnit)
	}

	names := map[int]string{}
	var meta, real int
	for _, e := range parsed.TraceEvents {
		if e.Phase == "M" {
			meta++
			if e.Name == "thread_name" {
				names[e.TID] = e.Args["name"].(string)
			}
			continue
		}
		real++
	}
	if real != 11 {
		t.Errorf("non-metadata events = %d, want 11", real)
	}
	wantTracks := map[string]bool{TrackRig: true, TrackCoupling: true, TrackHDL: true, TrackNetsim: true}
	for _, n := range names {
		delete(wantTracks, n)
	}
	if len(wantTracks) != 0 {
		t.Errorf("tracks missing thread_name metadata: %v (have %v)", wantTracks, names)
	}

	// Timestamps are monotone per track (sim time is globally monotone in
	// a run, so this holds per tid too), and ts maps sim ps -> us.
	lastTS := map[int]float64{}
	depth := map[int]int{}
	for _, e := range parsed.TraceEvents {
		if e.Phase == "M" {
			continue
		}
		if prev, ok := lastTS[e.TID]; ok && e.TS < prev {
			t.Errorf("track %d (%s): ts %g after %g — not monotone", e.TID, names[e.TID], e.TS, prev)
		}
		lastTS[e.TID] = e.TS
		switch e.Phase {
		case "B":
			depth[e.TID]++
		case "E":
			depth[e.TID]--
			if depth[e.TID] < 0 {
				t.Errorf("track %d (%s): E without matching B", e.TID, names[e.TID])
			}
		case "i":
			if e.Scope == "" {
				t.Error("instant event missing scope")
			}
		case "C":
			if _, ok := e.Args[e.Name]; !ok {
				t.Errorf("counter event %q missing value arg", e.Name)
			}
		}
		if _, ok := e.Args["wall_ns"]; !ok {
			t.Errorf("event %q missing wall_ns arg", e.Name)
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Errorf("track %d (%s): %d unclosed spans", tid, names[tid], d)
		}
	}
	// ts maps sim ps -> us: the scripted run ends at 9,000,000 ps = 9 us.
	if last := lastTS[tidOf(names, TrackRig)]; last != 9 {
		t.Errorf("rig run end ts = %g us, want 9 (9,000,000 ps sim)", last)
	}
}

func tidOf(names map[int]string, track string) int {
	for tid, n := range names {
		if n == track {
			return tid
		}
	}
	return -1
}
