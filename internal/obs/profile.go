package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Simulation profiler: deterministic activity attribution plus wall-clock
// phase accounting.
//
// The profile of one run has two strictly separated halves:
//
//   - Activity (ActivitySnap): per-signal event counts with a two-state
//     purity classifier, and per-process run counts with delta-cycle
//     attribution. These are integer counters derived only from simulated
//     behaviour, so they are bit-identical for a given seed, merge
//     shard-exactly (MergeActivity) like functional coverage, and may
//     appear in campaign digests.
//
//   - Phases (PhaseProfile): wall-clock nanoseconds attributed to the
//     stages of the co-simulation loop — HDL delta execution, coupling
//     encode/decode, IPC transport — plus a derived scheduler-advance
//     remainder. Wall times are telemetry only: they surface via /metrics
//     and /profile and must never enter a digest or any other
//     determinism-bearing artifact.
//
// The handle discipline matches the rest of the package: every method is
// nil-safe, so an unprofiled run pays one pointer test per site.

// Phase identifies one wall-time stage of the co-simulation loop.
type Phase int

// The accounted phases. PhaseHDL is time spent inside HDL.Run/Step within
// granted timing windows; PhaseEncode and PhaseDecode bracket the coupling
// registry's signal-map conversions; PhaseTransport brackets coupling
// Send/SendBatch with nested HDL time subtracted (a direct coupling
// executes the remote entity — and therefore its HDL — inside Send).
const (
	PhaseHDL Phase = iota
	PhaseEncode
	PhaseDecode
	PhaseTransport
	phaseCount
)

var phaseNames = [phaseCount]string{"hdl", "encode", "decode", "transport"}

func (p Phase) String() string {
	if p >= 0 && int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// PhaseProfile accumulates wall-clock time per phase. All fields are
// atomics: many workers (campaign shards) may add into one shared profile
// while the telemetry server snapshots it. A nil *PhaseProfile drops every
// observation for ~0 ns.
type PhaseProfile struct {
	ns      [phaseCount]atomic.Int64
	windows [phaseCount]atomic.Int64
	totalNs atomic.Int64 // whole-run wall time; enables the derived sched remainder
}

// NewPhaseProfile returns an empty phase profile.
func NewPhaseProfile() *PhaseProfile { return &PhaseProfile{} }

// Add attributes d of wall time to the phase and counts one window.
func (p *PhaseProfile) Add(ph Phase, d time.Duration) {
	if p == nil {
		return
	}
	p.ns[ph].Add(int64(d))
	p.windows[ph].Add(1)
}

// Ns returns the accumulated nanoseconds of the phase. Instrumentation
// sites read it before and after a nested call to subtract inner phases
// (the transport phase subtracts HDL time executed inside a direct
// coupling's Send).
func (p *PhaseProfile) Ns(ph Phase) int64 {
	if p == nil {
		return 0
	}
	return p.ns[ph].Load()
}

// AddNs attributes raw nanoseconds (possibly pre-adjusted for nested
// phases) to the phase and counts one window. Negative values are clamped
// to zero.
func (p *PhaseProfile) AddNs(ph Phase, ns int64) {
	if p == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	p.ns[ph].Add(ns)
	p.windows[ph].Add(1)
}

// AddTotal adds whole-run wall time. The snapshot derives the
// scheduler-advance remainder ("sched") as total minus the sum of the
// accounted phases.
func (p *PhaseProfile) AddTotal(d time.Duration) {
	if p == nil {
		return
	}
	p.totalNs.Add(int64(d))
}

// PhaseSnap is one phase's accumulated state.
type PhaseSnap struct {
	Name    string `json:"phase"`
	Ns      int64  `json:"ns"`
	Windows int64  `json:"windows,omitempty"`
}

// Snapshot returns the phases in fixed order. When AddTotal has recorded
// whole-run wall time, a derived "sched" remainder (scheduler advance and
// everything else outside the accounted phases) and the "total" row are
// appended. nil profiles snapshot empty.
func (p *PhaseProfile) Snapshot() []PhaseSnap {
	if p == nil {
		return nil
	}
	out := make([]PhaseSnap, 0, phaseCount+2)
	var sum int64
	for ph := Phase(0); ph < phaseCount; ph++ {
		ns := p.ns[ph].Load()
		sum += ns
		out = append(out, PhaseSnap{Name: ph.String(), Ns: ns, Windows: p.windows[ph].Load()})
	}
	if total := p.totalNs.Load(); total > 0 {
		sched := total - sum
		if sched < 0 {
			sched = 0
		}
		out = append(out,
			PhaseSnap{Name: "sched", Ns: sched},
			PhaseSnap{Name: "total", Ns: total},
		)
	}
	return out
}

// SignalActivity is one signal's deterministic activity: how many value
// changes it had and how many of those were two-state pure (every bit of
// both the old and new value a forcing 0 or 1 — no U/X/Z/weak/don't-care).
// The two-state fraction is the compiled-fast-path readiness signal: a
// signal whose transitions are all two-state could be simulated bit-
// parallel without 9-value resolution.
type SignalActivity struct {
	Name     string `json:"name"`
	Width    int    `json:"width"`
	Events   uint64 `json:"events"`
	TwoState uint64 `json:"two_state"`
}

// ProcessActivity is one process's deterministic activity: total body
// executions and how many of those ran in follow-on delta cycles (delta
// churn — runs beyond the first delta of their simulated instant).
type ProcessActivity struct {
	Name      string `json:"name"`
	Runs      uint64 `json:"runs"`
	DeltaRuns uint64 `json:"delta_runs"`
}

// ActivitySnap is the deterministic activity profile of one or more runs:
// signals and processes sorted by name. Integer-only and seed-
// deterministic, so snapshots merge shard-exactly and may be embedded in
// campaign digests.
type ActivitySnap struct {
	Signals   []SignalActivity  `json:"signals,omitempty"`
	Processes []ProcessActivity `json:"processes,omitempty"`
}

// Empty reports whether the snapshot carries no activity entries.
func (a ActivitySnap) Empty() bool { return len(a.Signals) == 0 && len(a.Processes) == 0 }

// Totals sums the snapshot: signal events, two-state events, process runs
// and delta-cycle runs.
func (a ActivitySnap) Totals() (events, twoState, runs, deltaRuns uint64) {
	for _, s := range a.Signals {
		events += s.Events
		twoState += s.TwoState
	}
	for _, p := range a.Processes {
		runs += p.Runs
		deltaRuns += p.DeltaRuns
	}
	return
}

// MergeActivity folds src into dst entry-wise and returns the result:
// signals and processes united by name (kept sorted), counts integer-
// summed. Like MergeCover the merge is associative, commutative and
// independent of shard count or merge order, which is what lets a campaign
// digest carry a byte-identical activity section at any shard count.
func MergeActivity(dst, src ActivitySnap) ActivitySnap {
	if src.Empty() {
		return dst
	}
	if dst.Empty() {
		return ActivitySnap{
			Signals:   append([]SignalActivity(nil), src.Signals...),
			Processes: append([]ProcessActivity(nil), src.Processes...),
		}
	}
	return ActivitySnap{
		Signals:   mergeSignalActivity(dst.Signals, src.Signals),
		Processes: mergeProcessActivity(dst.Processes, src.Processes),
	}
}

func mergeSignalActivity(dst, src []SignalActivity) []SignalActivity {
	out := make([]SignalActivity, 0, len(dst)+len(src))
	i, j := 0, 0
	for i < len(dst) || j < len(src) {
		switch {
		case j >= len(src) || (i < len(dst) && dst[i].Name < src[j].Name):
			out = append(out, dst[i])
			i++
		case i >= len(dst) || src[j].Name < dst[i].Name:
			out = append(out, src[j])
			j++
		default:
			m := dst[i]
			m.Events += src[j].Events
			m.TwoState += src[j].TwoState
			out = append(out, m)
			i, j = i+1, j+1
		}
	}
	return out
}

func mergeProcessActivity(dst, src []ProcessActivity) []ProcessActivity {
	out := make([]ProcessActivity, 0, len(dst)+len(src))
	i, j := 0, 0
	for i < len(dst) || j < len(src) {
		switch {
		case j >= len(src) || (i < len(dst) && dst[i].Name < src[j].Name):
			out = append(out, dst[i])
			i++
		case i >= len(dst) || src[j].Name < dst[i].Name:
			out = append(out, src[j])
			j++
		default:
			m := dst[i]
			m.Runs += src[j].Runs
			m.DeltaRuns += src[j].DeltaRuns
			out = append(out, m)
			i, j = i+1, j+1
		}
	}
	return out
}

// RunProfile bundles one run context's profiling state: the shared
// wall-clock phase profile plus the deterministic activity, fed either by
// absorbing finished snapshots (campaign mirror) or by live sources (a
// rig's HDL profiler, readable mid-run). A nil *RunProfile disables
// everything.
type RunProfile struct {
	Phases *PhaseProfile

	mu       sync.Mutex
	activity ActivitySnap
	sources  []func() ActivitySnap
}

// NewRunProfile returns an empty run profile with a fresh phase profile.
func NewRunProfile() *RunProfile { return &RunProfile{Phases: NewPhaseProfile()} }

// PhaseProf returns the phase profile, nil for a nil run profile.
func (p *RunProfile) PhaseProf() *PhaseProfile {
	if p == nil {
		return nil
	}
	return p.Phases
}

// AbsorbActivity merges a finished activity snapshot into the profile. The
// campaign engine absorbs each committed run's activity so /profile tracks
// hotspots live while the deterministic aggregate rides the digest.
func (p *RunProfile) AbsorbActivity(a ActivitySnap) {
	if p == nil || a.Empty() {
		return
	}
	p.mu.Lock()
	p.activity = MergeActivity(p.activity, a)
	p.mu.Unlock()
}

// AttachActivitySource registers a live activity source (a rig's HDL
// profiler snapshot function, safe to call concurrently with the
// simulation). Activity merges every source on demand.
func (p *RunProfile) AttachActivitySource(fn func() ActivitySnap) {
	if p == nil || fn == nil {
		return
	}
	p.mu.Lock()
	p.sources = append(p.sources, fn)
	p.mu.Unlock()
}

// Activity returns the merged activity state: everything absorbed plus the
// current state of every live source. nil profiles return an empty
// snapshot.
func (p *RunProfile) Activity() ActivitySnap {
	if p == nil {
		return ActivitySnap{}
	}
	p.mu.Lock()
	out := p.activity
	sources := p.sources
	p.mu.Unlock()
	for _, fn := range sources {
		out = MergeActivity(out, fn())
	}
	return out
}

// TopSignals returns up to n signals ordered by event count descending,
// name ascending on ties — a deterministic hotspot ranking.
func (a ActivitySnap) TopSignals(n int) []SignalActivity {
	out := append([]SignalActivity(nil), a.Signals...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Events != out[j].Events {
			return out[i].Events > out[j].Events
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TopProcesses returns up to n processes ordered by run count descending,
// name ascending on ties.
func (a ActivitySnap) TopProcesses(n int) []ProcessActivity {
	out := append([]ProcessActivity(nil), a.Processes...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Runs != out[j].Runs {
			return out[i].Runs > out[j].Runs
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// pct is a deterministic integer-ratio percentage (0 when the denominator
// is zero).
func pct(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// WriteActivityText writes the deterministic hotspot table: every line
// prefixed "profile ", so callers (and the profile-smoke CI job) can
// isolate the byte-stable section with a "^profile " filter from the
// wall-clock "phase " lines that may follow. Integer-derived and sorted,
// so the output is byte-identical for a given seed.
func WriteActivityText(w io.Writer, a ActivitySnap, topN int) error {
	events, twoState, runs, deltaRuns := a.Totals()
	if _, err := fmt.Fprintf(w, "profile signals=%d events=%d two_state_events=%d purity=%.1f%%\n",
		len(a.Signals), events, twoState, pct(twoState, events)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "profile processes=%d runs=%d delta_runs=%d\n",
		len(a.Processes), runs, deltaRuns); err != nil {
		return err
	}
	for _, s := range a.TopSignals(topN) {
		if _, err := fmt.Fprintf(w, "profile signal=%s width=%d events=%d two_state=%d purity=%.1f%%\n",
			s.Name, s.Width, s.Events, s.TwoState, pct(s.TwoState, s.Events)); err != nil {
			return err
		}
	}
	for _, p := range a.TopProcesses(topN) {
		if _, err := fmt.Fprintf(w, "profile process=%s runs=%d delta_runs=%d\n",
			p.Name, p.Runs, p.DeltaRuns); err != nil {
			return err
		}
	}
	return nil
}

// WritePhaseText writes the wall-clock phase breakdown, one "phase " line
// per phase. Wall-derived and therefore not byte-stable across runs.
func WritePhaseText(w io.Writer, phases []PhaseSnap) error {
	for _, ph := range phases {
		if _, err := fmt.Fprintf(w, "phase %s ns=%d windows=%d\n", ph.Name, ph.Ns, ph.Windows); err != nil {
			return err
		}
	}
	return nil
}

// WritePhasePrometheus writes the phase breakdown in Prometheus exposition
// format.
func WritePhasePrometheus(w io.Writer, phases []PhaseSnap) error {
	if len(phases) == 0 {
		return nil
	}
	if _, err := fmt.Fprint(w, "# TYPE castanet_profile_phase_ns_total counter\n"); err != nil {
		return err
	}
	for _, ph := range phases {
		if _, err := fmt.Fprintf(w, "castanet_profile_phase_ns_total{phase=%q} %d\n", ph.Name, ph.Ns); err != nil {
			return err
		}
	}
	return nil
}
