package obs

import (
	"fmt"
	"sync"
	"time"
)

// EventType classifies trace events.
type EventType uint8

// Trace event types.
const (
	// SpanBegin opens a duration slice on a track; SpanEnd closes the most
	// recent open slice of the same name (Chrome "B"/"E" phases).
	SpanBegin EventType = iota
	SpanEnd
	// Instant marks a point in time (Chrome "i" phase).
	Instant
	// CounterSample records the value of a named quantity over time
	// (Chrome "C" phase), rendered as a filled graph in the viewer.
	CounterSample
	// FlowPoint is one waypoint of a causal flow (a traced cell's hop);
	// points sharing Event.Flow render as arrows stitched across tracks
	// (Chrome "s"/"t"/"f" phases). Produced by CellTracker.FlowEvents,
	// not by the Tracer itself.
	FlowPoint
)

// Track names used by the instrumented engines — one timeline row per
// engine in the trace viewer.
const (
	TrackNetsim   = "netsim"
	TrackHDL      = "hdl-dut"
	TrackCoupling = "coupling"
	TrackBoard    = "board"
	TrackRig      = "rig"
)

// TrackWorker names the timeline row of one campaign worker shard, so a
// campaign-level trace renders as one track per worker with the runs it
// executed laid end to end.
func TrackWorker(shard int) string { return fmt.Sprintf("worker%d", shard) }

// Event is one structured trace record. Sim is simulated time in integer
// picoseconds (the unit of sim.Time); Wall is wall-clock nanoseconds since
// the tracer was created. Both travel so a viewer timeline laid out in
// simulated time can still expose the wall-clock cost split per engine.
type Event struct {
	Type  EventType
	Track string
	Name  string
	Sim   int64 // simulated time, ps
	Wall  int64 // wall time since tracer start, ns
	Value float64
	Flow  uint64 // flow (trace) ID linking FlowPoint events; 0 = none
}

// DefaultTraceCap is the ring capacity used when NewTracer is given 0.
const DefaultTraceCap = 1 << 16

// Tracer records run-scoped events into a fixed-capacity ring buffer:
// when the ring is full the oldest events are overwritten, so a
// long-running co-verification keeps its most recent window and never
// grows without bound. A nil *Tracer is a no-op on every method.
type Tracer struct {
	mu      sync.Mutex
	start   time.Time
	buf     []Event
	next    int
	wrapped bool
	dropped uint64
}

// NewTracer returns a tracer holding up to capacity events (0 selects
// DefaultTraceCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{start: time.Now(), buf: make([]Event, capacity)}
}

// Enabled reports whether events will be recorded; instrumented code may
// use it to skip building expensive event arguments.
func (t *Tracer) Enabled() bool { return t != nil }

func (t *Tracer) record(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	e.Wall = int64(time.Since(t.start))
	if t.wrapped {
		t.dropped++
	}
	t.buf[t.next] = e
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.wrapped = true
	}
	t.mu.Unlock()
}

// Begin opens a span on a track at simulated time simPS.
func (t *Tracer) Begin(track, name string, simPS int64) {
	t.record(Event{Type: SpanBegin, Track: track, Name: name, Sim: simPS})
}

// End closes the most recent open span of the same name on the track.
func (t *Tracer) End(track, name string, simPS int64) {
	t.record(Event{Type: SpanEnd, Track: track, Name: name, Sim: simPS})
}

// Emit records an instant event.
func (t *Tracer) Emit(track, name string, simPS int64) {
	t.record(Event{Type: Instant, Track: track, Name: name, Sim: simPS})
}

// Sample records one counter sample.
func (t *Tracer) Sample(track, name string, simPS int64, v float64) {
	t.record(Event{Type: CounterSample, Track: track, Name: name, Sim: simPS, Value: v})
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns the buffered events in recording order (oldest first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		return append([]Event(nil), t.buf[:t.next]...)
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	return append(out, t.buf[:t.next]...)
}
