package obs

import (
	"strings"
	"testing"
)

// TestCellTrackerSampling: every=N keeps exactly the IDs whose zero-based
// sequence is a multiple of N, and ID 0 is never sampled.
func TestCellTrackerSampling(t *testing.T) {
	tr := NewCellTracker(4, 0)
	if tr.Sampled(0) {
		t.Error("trace ID 0 (untraced) must never be sampled")
	}
	want := map[uint64]bool{1: true, 2: false, 4: false, 5: true, 9: true, 10: false}
	for id, ok := range want {
		if got := tr.Sampled(id); got != ok {
			t.Errorf("Sampled(%d) = %v, want %v (every=4)", id, got, ok)
		}
	}
	all := NewCellTracker(1, 0)
	for id := uint64(1); id <= 10; id++ {
		if !all.Sampled(id) {
			t.Errorf("every=1 must sample id %d", id)
		}
	}
}

// TestCellTrackerNil: the whole API is a no-op on a nil tracker, the
// contract every instrumentation site relies on.
func TestCellTrackerNil(t *testing.T) {
	var tr *CellTracker
	if tr.Enabled() || tr.Sampled(1) || tr.Every() != 0 {
		t.Error("nil tracker must report disabled")
	}
	tr.Hop(1, HopNetEnqueue, 10) // must not panic
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Traces() != nil {
		t.Error("nil tracker must hold nothing")
	}
	if _, ok := tr.Trace(1); ok {
		t.Error("nil tracker must not find traces")
	}
}

// TestCellTrackerPipelineOrder: hops recorded out of order (concurrent
// engines flush at different times) come back in pipeline order.
func TestCellTrackerPipelineOrder(t *testing.T) {
	tr := NewCellTracker(1, 0)
	tr.Hop(7, HopCompare, 500)
	tr.Hop(7, HopNetEnqueue, 100)
	tr.Hop(7, HopHDLCommit, 400)
	tr.Hop(7, HopEnvelopeTx, 200)
	tr.Hop(7, HopEntityRx, 300)
	got, ok := tr.Trace(7)
	if !ok {
		t.Fatal("trace 7 not found")
	}
	want := []string{HopNetEnqueue, HopEnvelopeTx, HopEntityRx, HopHDLCommit, HopCompare}
	if len(got.Hops) != len(want) {
		t.Fatalf("got %d hops, want %d", len(got.Hops), len(want))
	}
	for i, h := range got.Hops {
		if h.Name != want[i] {
			t.Errorf("hop %d = %q, want %q", i, h.Name, want[i])
		}
	}
}

// TestCellTrackerCap: cells beyond the tracked-cell cap are dropped whole
// and counted, never recorded partially.
func TestCellTrackerCap(t *testing.T) {
	tr := NewCellTracker(1, 2)
	tr.Hop(1, HopNetEnqueue, 10)
	tr.Hop(2, HopNetEnqueue, 20)
	tr.Hop(3, HopNetEnqueue, 30) // over the cap
	tr.Hop(1, HopCompare, 40)    // existing cell still records
	if tr.Len() != 2 {
		t.Errorf("tracked %d cells, want 2", tr.Len())
	}
	if tr.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", tr.Dropped())
	}
	if _, ok := tr.Trace(3); ok {
		t.Error("cell 3 must not be tracked past the cap")
	}
	if got, _ := tr.Trace(1); len(got.Hops) != 2 {
		t.Errorf("cell 1 has %d hops, want 2", len(got.Hops))
	}
}

// TestWaterfallText: the rendered waterfall carries the trace ID, total
// latency, every hop, and per-hop deltas — in simulated time only.
func TestWaterfallText(t *testing.T) {
	tr := NewCellTracker(1, 0)
	tr.Hop(0x2a, HopNetEnqueue, 10_000_000)
	tr.Hop(0x2a, HopEnvelopeTx, 10_000_000)
	tr.Hop(0x2a, HopEntityRx, 12_000_000)
	tr.Hop(0x2a, HopHDLCommit, 15_500_000)
	tr.Hop(0x2a, HopCompare, 22_600_000)
	got, _ := tr.Trace(0x2a)
	text := WaterfallText(got)
	for _, want := range []string{
		"cell trace 0x2a: 5 hops, 12.600us net.enqueue -> compare",
		"net.enqueue t=10.000us",
		"ipc.tx",
		"+0ps",
		"entity.rx",
		"+2.000us",
		"hdl.commit",
		"compare",
		"+7.100us",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("waterfall missing %q:\n%s", want, text)
		}
	}
	if empty := WaterfallText(CellTrace{ID: 9}); !strings.Contains(empty, "no hops recorded") {
		t.Errorf("empty trace renders %q", empty)
	}
}

// TestFlowEvents: each hop becomes a FlowPoint on its engine's track,
// carrying the trace ID as the flow binding.
func TestFlowEvents(t *testing.T) {
	tr := NewCellTracker(1, 0)
	tr.Hop(3, HopNetEnqueue, 100)
	tr.Hop(3, HopHDLCommit, 300)
	evs := tr.FlowEvents()
	if len(evs) != 2 {
		t.Fatalf("got %d flow events, want 2", len(evs))
	}
	for _, e := range evs {
		if e.Type != FlowPoint || e.Flow != 3 || e.Name != "cell 0x3" {
			t.Errorf("malformed flow event %+v", e)
		}
	}
	if evs[0].Track != TrackNetsim || evs[1].Track != TrackHDL {
		t.Errorf("flow tracks = %q, %q; want %q, %q",
			evs[0].Track, evs[1].Track, TrackNetsim, TrackHDL)
	}
}

// TestFmtSimPS pins the deterministic time rendering the waterfall and
// the flight recorder share.
func TestFmtSimPS(t *testing.T) {
	for _, tc := range []struct {
		ps   int64
		want string
	}{
		{-1, "?"},
		{0, "0ps"},
		{999_999, "999999ps"},
		{1_000_000, "1.000us"},
		{2_500_000_000, "2.500ms"},
	} {
		if got := fmtSimPS(tc.ps); got != tc.want {
			t.Errorf("fmtSimPS(%d) = %q, want %q", tc.ps, got, tc.want)
		}
	}
}
