package obs_test

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"castanet/internal/obs"
)

func TestCoverPointBinsAndUnknownLabels(t *testing.T) {
	c := obs.NewCoverRegistry()
	p := c.Group("g").Point("verdict", "match", "mismatch")
	p.Hit("match")
	p.Hit("match")
	p.Add("mismatch", 3)
	p.Hit("no-such-bin") // schema is fixed at definition: dropped

	snaps := c.Snapshot()
	if len(snaps) != 1 || len(snaps[0].Points) != 1 {
		t.Fatalf("snapshot shape: %+v", snaps)
	}
	bins := snaps[0].Points[0].Bins
	if len(bins) != 2 || bins[0] != (obs.CoverBin{Label: "match", Hits: 2}) ||
		bins[1] != (obs.CoverBin{Label: "mismatch", Hits: 3}) {
		t.Fatalf("bins = %+v", bins)
	}
	if hit, total := snaps[0].Covered(); hit != 2 || total != 2 {
		t.Fatalf("covered = %d/%d, want 2/2", hit, total)
	}
}

func TestCoverRangeBinning(t *testing.T) {
	c := obs.NewCoverRegistry()
	p := c.Group("g").Range("depth", 0, 4, 16)
	for _, v := range []int64{-1, 0, 1, 4, 5, 16, 17, 1000} {
		p.Observe(v)
	}
	bins := c.Snapshot()[0].Points[0].Bins
	want := []obs.CoverBin{
		{Label: "le_0", Hits: 2},  // -1, 0
		{Label: "le_4", Hits: 2},  // 1, 4
		{Label: "le_16", Hits: 2}, // 5, 16
		{Label: "gt_16", Hits: 2}, // 17, 1000
	}
	for i, b := range bins {
		if b != want[i] {
			t.Fatalf("bin %d = %+v, want %+v (all: %+v)", i, b, want[i], bins)
		}
	}
	// Observe on an enumerated point is a no-op, not a panic.
	c.Group("g").Point("enum", "a").Observe(7)
}

func TestCoverCross(t *testing.T) {
	c := obs.NewCoverRegistry()
	x := c.Group("g").Cross("class_outcome", []string{"a", "b"}, []string{"yes", "no"})
	x.Hit("a", "yes")
	x.Hit("b", "no")
	x.Hit("b", "no")
	x.Hit("z", "yes") // unknown pair dropped

	bins := c.Snapshot()[0].Points[0].Bins
	want := []obs.CoverBin{
		{Label: "a×yes", Hits: 1}, {Label: "a×no", Hits: 0},
		{Label: "b×yes", Hits: 0}, {Label: "b×no", Hits: 2},
	}
	for i, b := range bins {
		if b != want[i] {
			t.Fatalf("bin %d = %+v, want %+v", i, b, want[i])
		}
	}
}

func TestCoverNilHandlesAreSafe(t *testing.T) {
	var c *obs.CoverRegistry
	g := c.Group("g")
	if g != nil {
		t.Fatal("nil registry handed out a non-nil group")
	}
	p := g.Point("p", "a")
	p.Hit("a")
	p.Add("a", 5)
	p.Observe(3)
	r := g.Range("r", 1, 2)
	r.Observe(1)
	x := g.Cross("x", []string{"a"}, []string{"b"})
	x.Hit("a", "b")
	if got := c.Snapshot(); got != nil {
		t.Fatalf("nil registry snapshot = %+v", got)
	}
	c.Absorb([]obs.CoverGroupSnap{{Name: "g"}})
}

func TestCoverSchemaClashPanics(t *testing.T) {
	c := obs.NewCoverRegistry()
	c.Group("g").Point("p", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering p with different bins did not panic")
		}
	}()
	c.Group("g").Point("p", "a", "c")
}

func TestCoverRangeBoundsMustAscend(t *testing.T) {
	c := obs.NewCoverRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	c.Group("g").Range("r", 4, 4)
}

// synthSnap builds a snapshot with the given hit split, the schema all
// merge tests share.
func synthSnap(a, b uint64) []obs.CoverGroupSnap {
	c := obs.NewCoverRegistry()
	p := c.Group("g1").Point("p", "a", "b")
	p.Add("a", a)
	p.Add("b", b)
	c.Group("g0").Range("r", 10).Observe(int64(a))
	return c.Snapshot()
}

func TestMergeCoverSumsAndOrderIndependence(t *testing.T) {
	x, y, z := synthSnap(1, 2), synthSnap(10, 20), synthSnap(100, 200)
	ab := obs.MergeCover(obs.MergeCover(nil, x), obs.MergeCover(nil, y))
	abc1 := obs.MergeCover(ab, z)
	cba := obs.MergeCover(obs.MergeCover(obs.MergeCover(nil, z), y), x)
	if len(abc1) != len(cba) {
		t.Fatalf("group counts differ: %d vs %d", len(abc1), len(cba))
	}
	for i := range abc1 {
		if abc1[i].Name != cba[i].Name {
			t.Fatalf("group order differs: %s vs %s", abc1[i].Name, cba[i].Name)
		}
		for j := range abc1[i].Points {
			for k, bin := range abc1[i].Points[j].Bins {
				if bin != cba[i].Points[j].Bins[k] {
					t.Fatalf("merge order changed bin %s.%s[%d]: %+v vs %+v",
						abc1[i].Name, abc1[i].Points[j].Name, k, bin, cba[i].Points[j].Bins[k])
				}
			}
		}
	}
	p := abc1[1].Points[0]
	if p.Bins[0].Hits != 111 || p.Bins[1].Hits != 222 {
		t.Fatalf("sums wrong: %+v", p.Bins)
	}
}

func TestMergeCoverDoesNotAliasSource(t *testing.T) {
	src := synthSnap(5, 7)
	merged := obs.MergeCover(nil, src)
	merged[0].Points[0].Bins[0].Hits = 999
	if src[0].Points[0].Bins[0].Hits == 999 {
		t.Fatal("MergeCover aliased the source snapshot")
	}
}

func TestMergeCoverDisjointSchemas(t *testing.T) {
	a := obs.NewCoverRegistry()
	a.Group("only_a").Point("p", "x").Hit("x")
	b := obs.NewCoverRegistry()
	b.Group("only_b").Point("q", "y").Hit("y")
	got := obs.MergeCover(a.Snapshot(), b.Snapshot())
	if len(got) != 2 || got[0].Name != "only_a" || got[1].Name != "only_b" {
		t.Fatalf("disjoint merge = %+v", got)
	}
}

func TestAbsorbAccumulates(t *testing.T) {
	mirror := obs.NewCoverRegistry()
	mirror.Absorb(synthSnap(1, 2))
	mirror.Absorb(synthSnap(10, 20))
	snap := mirror.Snapshot()
	// Groups sorted: g0, g1.
	p := snap[1].Points[0]
	if p.Bins[0].Hits != 11 || p.Bins[1].Hits != 22 {
		t.Fatalf("absorbed bins = %+v", p.Bins)
	}
}

func TestCoverConcurrentHits(t *testing.T) {
	c := obs.NewCoverRegistry()
	var wg sync.WaitGroup
	const workers, hits = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			p := c.Group("g").Point("p", "a", "b")
			r := c.Group("g").Range("r", 8, 64)
			for i := 0; i < hits; i++ {
				p.Hit("a")
				r.Observe(rng.Int63n(100))
			}
		}(int64(w))
	}
	wg.Wait()
	snap := c.Snapshot()
	var total uint64
	for _, pt := range snap[0].Points {
		for _, b := range pt.Bins {
			total += b.Hits
		}
	}
	if total != 2*workers*hits {
		t.Fatalf("concurrent hits lost: total = %d, want %d", total, 2*workers*hits)
	}
}

func TestWriteCoverTextGolden(t *testing.T) {
	c := obs.NewCoverRegistry()
	p := c.Group("rig.cmp").Point("verdict", "match", "mismatch")
	p.Add("match", 7)
	c.Group("rig.cmp").Range("depth", 2).Observe(1)

	var b strings.Builder
	if err := obs.WriteCoverText(&b, c.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := "group rig.cmp 2/4 bins (50.0%)\n" +
		"  depth 1/2 le_2=1 gt_2=0\n" +
		"  verdict 1/2 match=7 mismatch=0\n"
	if b.String() != want {
		t.Fatalf("text report:\n%s\nwant:\n%s", b.String(), want)
	}

	b.Reset()
	if err := obs.WriteCoverText(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.String() != "coverage: no cover groups instrumented\n" {
		t.Fatalf("empty report = %q", b.String())
	}
}

func TestWriteCoverPrometheusGolden(t *testing.T) {
	c := obs.NewCoverRegistry()
	c.Group("rig.cmp").Point("verdict", "match", "mismatch").Add("match", 7)

	var b strings.Builder
	if err := obs.WriteCoverPrometheus(&b, c.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE castanet_cover_bin_total counter\n" +
		"castanet_cover_bin_total{group=\"rig.cmp\",point=\"verdict\",bin=\"match\"} 7\n" +
		"castanet_cover_bin_total{group=\"rig.cmp\",point=\"verdict\",bin=\"mismatch\"} 0\n" +
		"# TYPE castanet_cover_group_ratio gauge\n" +
		"castanet_cover_group_ratio{group=\"rig.cmp\"} 0.5\n"
	if b.String() != want {
		t.Fatalf("prometheus exposition:\n%s\nwant:\n%s", b.String(), want)
	}
	b.Reset()
	if err := obs.WriteCoverPrometheus(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.String() != "" {
		t.Fatalf("empty exposition = %q", b.String())
	}
}

// TestCoverRangeBoundaries pins the exact bin selection at and around
// every band threshold: Observe places v in the first bin whose bound is
// >= v, so each le_<bound> bin is inclusive of its bound and the overflow
// bin starts one past the last bound.
func TestCoverRangeBoundaries(t *testing.T) {
	cases := []struct {
		name   string
		bounds []int64
		obs    map[int64]string // value -> expected bin label
	}{
		{
			name:   "three-band",
			bounds: []int64{0, 10, 100},
			obs: map[int64]string{
				math.MinInt64: "le_0",
				-1:            "le_0",
				0:             "le_0",
				1:             "le_10",
				9:             "le_10",
				10:            "le_10",
				11:            "le_100",
				99:            "le_100",
				100:           "le_100",
				101:           "gt_100",
				math.MaxInt64: "gt_100",
			},
		},
		{
			name:   "single-bound",
			bounds: []int64{5},
			obs: map[int64]string{
				4: "le_5",
				5: "le_5",
				6: "gt_5",
			},
		},
		{
			name:   "negative-bounds",
			bounds: []int64{-10, -1},
			obs: map[int64]string{
				-11: "le_-10",
				-10: "le_-10",
				-9:  "le_-1",
				-1:  "le_-1",
				0:   "gt_-1",
				7:   "gt_-1",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for v, wantLabel := range tc.obs {
				c := obs.NewCoverRegistry()
				p := c.Group("g").Range("band", tc.bounds...)
				p.Observe(v)
				var hit []string
				for _, b := range c.Snapshot()[0].Points[0].Bins {
					if b.Hits > 0 {
						hit = append(hit, b.Label)
						if b.Hits != 1 {
							t.Errorf("Observe(%d): bin %s hits = %d, want 1", v, b.Label, b.Hits)
						}
					}
				}
				if len(hit) != 1 || hit[0] != wantLabel {
					t.Errorf("Observe(%d) hit bins %v, want exactly [%s]", v, hit, wantLabel)
				}
			}
		})
	}
}
