package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b.c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a.b.c") != c {
		t.Error("get-or-create returned a different counter")
	}
	g := r.Gauge("a.b.g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("x")
	h := reg.Histogram("x", 1, 2)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	// None of these may panic, and all report zero.
	c.Inc()
	c.Add(7)
	g.Set(3)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.N() != 0 || h.Sum() != 0 {
		t.Error("nil metrics must read zero")
	}
	if reg.Snapshot() != nil {
		t.Error("nil registry snapshot must be nil")
	}
	var tr *Tracer
	tr.Begin("t", "n", 0)
	tr.End("t", "n", 1)
	tr.Emit("t", "n", 2)
	tr.Sample("t", "n", 3, 4)
	if tr.Enabled() || tr.Events() != nil || tr.Dropped() != 0 {
		t.Error("nil tracer must be inert")
	}
	var run *Run
	if run.Reg() != nil || run.Trace() != nil {
		t.Error("nil run must expose nil components")
	}
	if err := run.WriteMetrics(nil); err != nil {
		t.Error(err)
	}
}

func TestMetricKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("same.name")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("same.name")
}

// TestHistogramBucketBoundaries pins the boundary semantics: a value
// exactly on a bound lands in that bound's bucket (x <= bound), values
// below the first bound underflow into bucket 0, values above the last
// bound land in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 1, 10, 100)

	h.Observe(-5)                // underflow: still bucket 0
	h.Observe(1)                 // exactly on first bound -> bucket 0
	h.Observe(1.0000001)         // just above -> bucket 1
	h.Observe(10)                // exactly on bound -> bucket 1
	h.Observe(100)               // last bound -> bucket 2
	h.Observe(100.5)             // overflow
	h.Observe(math.MaxFloat64)   // overflow
	want := []uint64{2, 2, 1, 2} // buckets 0..2 + overflow
	for i, w := range want {
		if got := h.Count(i); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.N() != 7 {
		t.Errorf("N = %d, want 7", h.N())
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty", 1, 2, 3)
	snaps := r.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Kind != KindHistogram || s.Value != 0 || s.Sum != 0 {
		t.Errorf("empty histogram snapshot = %+v", s)
	}
	if len(s.Buckets) != 4 {
		t.Fatalf("buckets = %d, want 4 (3 bounds + overflow)", len(s.Buckets))
	}
	for i, c := range s.Buckets {
		if c != 0 {
			t.Errorf("bucket %d = %d, want 0", i, c)
		}
	}
	var text strings.Builder
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"empty.bucket le=+inf 0", "empty.count histogram 0", "empty.sum histogram 0"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, text.String())
		}
	}
}

// TestConcurrentCounters hammers one counter, one gauge and one histogram
// from many goroutines; run under -race (the Makefile race target covers
// this package) it proves the hot paths are data-race free and lossless.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// get-or-create races deliberately with other workers.
			c := r.Counter("conc.counter")
			h := r.Histogram("conc.hist", 0.5)
			g := r.Gauge("conc.gauge")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 2))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("conc.counter").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("conc.gauge").Value(); got != workers*perWorker {
		t.Errorf("gauge = %g, want %d", got, workers*perWorker)
	}
	h := r.Histogram("conc.hist")
	if h.N() != workers*perWorker {
		t.Errorf("histogram N = %d, want %d", h.N(), workers*perWorker)
	}
	if h.Count(0)+h.Count(1) != h.N() {
		t.Error("histogram bucket counts do not add up")
	}
}

func TestWriteTextAndReport(t *testing.T) {
	r := NewRegistry()
	r.Counter("net.sched.executed").Add(42)
	r.Gauge("net.sched.pending").Set(7)
	r.Histogram("cosim.entity.lag_us", 1, 10).Observe(3)

	var text strings.Builder
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"net.sched.executed counter 42",
		"net.sched.pending gauge 7",
		"cosim.entity.lag_us.bucket le=10 1",
		"cosim.entity.lag_us.count histogram 1",
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, text.String())
		}
	}

	var rep strings.Builder
	if err := r.WriteReport(&rep); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"[net]", "[cosim]", "run report"} {
		if !strings.Contains(rep.String(), want) {
			t.Errorf("report missing %q:\n%s", want, rep.String())
		}
	}
}

func TestNewRunPreregisters(t *testing.T) {
	run := NewRun(16)
	var text strings.Builder
	if err := run.WriteMetrics(&text); err != nil {
		t.Fatal(err)
	}
	// The schema-stable core: even an idle run reports these at zero.
	for _, want := range []string{
		"net.sched.executed counter 0",
		"ipc.reliable.retransmits counter 0",
		"cosim.entity.lag_ps gauge 0",
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("pre-registered metrics missing %q:\n%s", want, text.String())
		}
	}
}
