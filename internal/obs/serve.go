package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Live telemetry endpoint: castanet -serve exposes a running
// co-verification (or campaign) over HTTP while it executes —
//
//	/metrics   the registry in Prometheus text exposition format,
//	           with functional-coverage bins appended as
//	           castanet_cover_bin_total / castanet_cover_group_ratio
//	/healthz   liveness: uptime plus seconds since the last unit of work
//	/snapshot  a stream of JSON progress snapshots (per-shard run counts,
//	           coupling queue depths, lookahead lag), one object per line
//	/coverage  the functional-coverage state as JSON: per-group hit/total
//	           bin counts and ratios, every bin's hit count
//	/profile   the simulation profile as JSON: deterministic activity
//	           (per-signal events, two-state purity, per-process runs),
//	           the wall-clock phase breakdown, and the sim-rate gauges
//
// The server reads the same lock-cheap registry the engines write, so
// scraping a live run costs a snapshot, never a stall.

// Server serves one run's observability state. Create with NewServer,
// mount Handler on any http.Server.
type Server struct {
	run   *Run
	start time.Time
	beat  atomic.Int64 // unix nanos of last recorded activity; 0 = none yet
}

// NewServer returns a telemetry server over the run's registry and
// tracer.
func NewServer(run *Run) *Server {
	return &Server{run: run, start: time.Now()}
}

// Beat records one unit of forward progress (a finished campaign run, a
// completed experiment); /healthz reports the time since the last beat so
// an external watchdog can spot a wedged campaign.
func (s *Server) Beat() {
	if s != nil {
		s.beat.Store(time.Now().UnixNano())
	}
}

// Handler returns the endpoint mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/snapshot", s.snapshot)
	mux.HandleFunc("/coverage", s.coverage)
	mux.HandleFunc("/profile", s.profile)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "castanet telemetry: /metrics /healthz /snapshot /coverage /profile\n")
	})
	return mux
}

func (s *Server) metrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.run.Reg().WritePrometheus(w); err != nil {
		// The connection is gone; nothing useful left to do.
		return
	}
	if err := WriteCoverPrometheus(w, s.run.CoverReg().Snapshot()); err != nil {
		return
	}
	if err := WritePhasePrometheus(w, s.run.Prof().PhaseProf().Snapshot()); err != nil {
		return
	}
}

// profileDoc is the /profile document: the deterministic activity profile
// (per-signal events and two-state purity, per-process runs and delta
// attribution), the wall-clock phase breakdown, and the sim-rate gauges
// (every "<engine>.rate.<figure>" metric).
type profileDoc struct {
	Enabled  bool               `json:"enabled"`
	Activity ActivitySnap       `json:"activity"`
	Phases   []PhaseSnap        `json:"phases,omitempty"`
	Rates    map[string]float64 `json:"rates,omitempty"`
}

func (s *Server) profile(w http.ResponseWriter, req *http.Request) {
	prof := s.run.Prof()
	doc := profileDoc{
		Enabled:  prof != nil,
		Activity: prof.Activity(),
		Phases:   prof.PhaseProf().Snapshot(),
	}
	for _, snap := range s.run.Reg().Snapshot() {
		if strings.Contains(snap.Name, ".rate.") {
			if doc.Rates == nil {
				doc.Rates = map[string]float64{}
			}
			doc.Rates[snap.Name] = snap.Value
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}

// coverGroupJSON is one /coverage group: its aggregate bin coverage plus
// every point's bins.
type coverGroupJSON struct {
	Name   string           `json:"group"`
	Hit    int              `json:"hit"`
	Total  int              `json:"total"`
	Ratio  float64          `json:"ratio"`
	Points []CoverPointSnap `json:"points"`
}

func (s *Server) coverage(w http.ResponseWriter, req *http.Request) {
	snaps := s.run.CoverReg().Snapshot()
	doc := struct {
		Groups []coverGroupJSON `json:"groups"`
	}{Groups: make([]coverGroupJSON, 0, len(snaps))}
	for _, g := range snaps {
		hit, total := g.Covered()
		doc.Groups = append(doc.Groups, coverGroupJSON{
			Name: g.Name, Hit: hit, Total: total, Ratio: g.Ratio(), Points: g.Points,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}

// health is the /healthz document.
type health struct {
	Status        string   `json:"status"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	LastActivity  *float64 `json:"seconds_since_activity,omitempty"`
	TraceDropped  uint64   `json:"trace_dropped"`
	CellsTracked  int      `json:"cells_tracked"`
}

func (s *Server) healthz(w http.ResponseWriter, req *http.Request) {
	h := health{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		TraceDropped:  s.run.Trace().Dropped(),
		CellsTracked:  s.run.CellTrace().Len(),
	}
	if b := s.beat.Load(); b != 0 {
		secs := time.Since(time.Unix(0, b)).Seconds()
		h.LastActivity = &secs
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

// progress is one /snapshot line: the live view an operator (or a
// dashboard) polls during a long campaign.
type progress struct {
	WallMS        int64              `json:"wall_ms"`
	ShardRuns     map[string]uint64  `json:"shard_runs,omitempty"`
	ShardFailures map[string]uint64  `json:"shard_failures,omitempty"`
	QueueDepth    map[string]float64 `json:"queue_depth,omitempty"`
	LagPS         float64            `json:"lag_ps"`
	NetPending    float64            `json:"net_pending"`
	HDLPending    float64            `json:"hdl_pending"`
}

// buildProgress distils the registry snapshot into the progress view.
func (s *Server) buildProgress() progress {
	p := progress{WallMS: time.Since(s.start).Milliseconds()}
	for _, snap := range s.run.Reg().Snapshot() {
		switch {
		case strings.HasPrefix(snap.Name, "campaign.runs.shard"):
			if n := snap.Name[len("campaign.runs.shard"):]; isDigits(n) {
				if p.ShardRuns == nil {
					p.ShardRuns = map[string]uint64{}
				}
				p.ShardRuns[n] = uint64(snap.Value)
			}
		case strings.HasPrefix(snap.Name, "campaign.failures.shard"):
			if n := snap.Name[len("campaign.failures.shard"):]; isDigits(n) {
				if p.ShardFailures == nil {
					p.ShardFailures = map[string]uint64{}
				}
				p.ShardFailures[n] = uint64(snap.Value)
			}
		case strings.HasPrefix(snap.Name, "cosim.queue.") && strings.HasSuffix(snap.Name, ".depth"):
			kind := strings.TrimSuffix(strings.TrimPrefix(snap.Name, "cosim.queue."), ".depth")
			if p.QueueDepth == nil {
				p.QueueDepth = map[string]float64{}
			}
			p.QueueDepth[kind] = snap.Value
		case snap.Name == "cosim.entity.lag_ps":
			p.LagPS = snap.Value
		case snap.Name == "net.sched.pending":
			p.NetPending = snap.Value
		case snap.Name == "hdl.sim.pending":
			p.HDLPending = snap.Value
		}
	}
	return p
}

func (s *Server) snapshot(w http.ResponseWriter, req *http.Request) {
	n := 1
	if v := req.URL.Query().Get("n"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &n); err != nil || n < 1 {
			http.Error(w, "snapshot: n must be a positive integer", http.StatusBadRequest)
			return
		}
		if n > 10000 {
			n = 10000
		}
	}
	interval := 500 * time.Millisecond
	if v := req.URL.Query().Get("interval"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			http.Error(w, "snapshot: interval must be a positive Go duration", http.StatusBadRequest)
			return
		}
		if d < 10*time.Millisecond {
			d = 10 * time.Millisecond
		}
		interval = d
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for i := 0; i < n; i++ {
		if i > 0 {
			select {
			case <-req.Context().Done():
				return
			case <-time.After(interval):
			}
		}
		if err := enc.Encode(s.buildProgress()); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}
