// Package obs is the unified observability layer of the co-verification
// environment: a lock-cheap metrics registry (counters, gauges,
// fixed-bucket histograms) and a run-scoped trace layer whose events carry
// both simulated time and wall time, exportable as Chrome trace_event JSON
// so one co-verification run renders as a timeline (one track per engine)
// in chrome://tracing or Perfetto.
//
// The package sits below the simulation kernel: it imports nothing from
// the repository, so every engine — the network simulator, the HDL
// simulator, the coupling transports and the rigs — can instrument itself
// against it without import cycles. Simulated time therefore travels
// through this package as plain int64 picoseconds, the unit of sim.Time.
//
// Every entry point is nil-safe: methods on a nil *Registry, *Tracer,
// *Counter, *Gauge or *Histogram are no-ops (or return zero values), so
// instrumented code pays a single pointer test when observability is
// disabled. The overhead benchmarks in this package's test suite prove
// the disabled cost on the hdl and ipc hot paths.
//
// Metric names follow the engine.subsystem.name scheme documented in
// DESIGN.md §10, e.g. "net.sched.executed", "cosim.entity.lag_ps",
// "ipc.reliable.retransmits".
package obs

import (
	"io"
	"sort"
	"time"
)

// Run bundles the observability context of one co-verification run: the
// metrics registry and the event tracer, plus the wall-clock epoch the
// tracer's wall stamps are relative to. A nil *Run disables everything.
type Run struct {
	Registry *Registry
	Tracer   *Tracer
	Start    time.Time
	// Cells, when non-nil, collects causal per-hop cell traces (see
	// celltrace.go); its journeys are merged into WriteTrace as flow
	// arrows. NewRun leaves it nil — cell tracing is opt-in.
	Cells *CellTracker
	// Cover is the functional-coverage registry (see cover.go). For
	// campaigns it is a live telemetry mirror: the engine absorbs each
	// committed run's snapshot into it, so /coverage tracks closure
	// while the deterministic per-run registries ride the aggregate.
	Cover *CoverRegistry
	// Profile, when non-nil, collects the simulation profile (see
	// profile.go): wall-clock phase accounting plus the deterministic
	// activity mirror backing /profile. NewRun leaves it nil — profiling
	// is opt-in (castanet -profile).
	Profile *RunProfile
}

// NewRun returns a run context with a fresh registry and a tracer holding
// up to traceCap events (0 selects DefaultTraceCap). The core metric
// names shared by every deployment are pre-registered so run reports have
// a uniform schema whether or not the run exercises the corresponding
// subsystem (a direct-coupled run still reports zero retransmits).
func NewRun(traceCap int) *Run {
	r := &Run{Registry: NewRegistry(), Tracer: NewTracer(traceCap), Start: time.Now(), Cover: NewCoverRegistry()}
	preregister(r.Registry)
	return r
}

// Reg returns the registry, nil for a nil run.
func (r *Run) Reg() *Registry {
	if r == nil {
		return nil
	}
	return r.Registry
}

// Trace returns the tracer, nil for a nil run.
func (r *Run) Trace() *Tracer {
	if r == nil {
		return nil
	}
	return r.Tracer
}

// CellTrace returns the cell tracker, nil for a nil run or an untracked
// one.
func (r *Run) CellTrace() *CellTracker {
	if r == nil {
		return nil
	}
	return r.Cells
}

// Prof returns the run profile, nil for a nil or unprofiled run.
func (r *Run) Prof() *RunProfile {
	if r == nil {
		return nil
	}
	return r.Profile
}

// CoverReg returns the cover registry, nil for a nil run.
func (r *Run) CoverReg() *CoverRegistry {
	if r == nil {
		return nil
	}
	return r.Cover
}

// WriteMetrics writes the registry's exposition format.
func (r *Run) WriteMetrics(w io.Writer) error {
	if r == nil {
		return nil
	}
	return r.Registry.WriteText(w)
}

// WriteTrace exports the tracer's buffered events as Chrome trace JSON.
// When the run tracks cells, their journeys are merged in as flow events
// and the combined stream is stably re-sorted by simulated time, keeping
// every track's timeline monotone.
func (r *Run) WriteTrace(w io.Writer) error {
	if r == nil {
		return nil
	}
	events := r.Tracer.Events()
	if flows := r.Cells.FlowEvents(); len(flows) > 0 {
		events = append(events, flows...)
		sort.SliceStable(events, func(i, j int) bool { return events[i].Sim < events[j].Sim })
	}
	return WriteChromeTrace(w, events)
}

// preregister touches the metric names every run report is expected to
// carry, so snapshots are schema-stable across deployments (direct vs
// remote coupling, reliable vs plain links).
func preregister(reg *Registry) {
	for _, name := range []string{
		"net.sched.executed",
		"hdl.sim.delta_cycles",
		"hdl.sim.signal_events",
		"cosim.entity.received",
		"cosim.entity.windows",
		"ipc.reliable.sent",
		"ipc.reliable.retransmits",
		"ipc.reliable.heartbeats",
		"ipc.reliable.timeouts",
		"ipc.fault.dropped",
	} {
		reg.Counter(name)
	}
	reg.Gauge("net.sched.pending")
	reg.Gauge("cosim.entity.lag_ps")
}
