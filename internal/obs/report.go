package obs

import (
	"fmt"
	"io"
	"strings"
)

// WriteReport writes a human-readable end-of-run summary table: metrics
// grouped by their engine prefix (the first dotted component), one
// aligned row per metric. Histograms report count, mean and the bucket
// with the largest population — the table is the operator view; the
// machine-readable form is WriteText.
func (r *Registry) WriteReport(w io.Writer) error {
	snaps := r.Snapshot()
	if len(snaps) == 0 {
		return nil
	}
	width := 0
	for _, s := range snaps {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	if _, err := fmt.Fprintf(w, "run report (%d metrics)\n", len(snaps)); err != nil {
		return err
	}
	group := ""
	for _, s := range snaps {
		g, _, _ := strings.Cut(s.Name, ".")
		if g != group {
			group = g
			if _, err := fmt.Fprintf(w, "  [%s]\n", group); err != nil {
				return err
			}
		}
		var line string
		switch s.Kind {
		case KindHistogram:
			mean := 0.0
			if s.Value > 0 {
				mean = s.Sum / s.Value
			}
			line = fmt.Sprintf("n=%d mean=%.4g %s", uint64(s.Value), mean, modalBucket(s))
		case KindCounter:
			line = fmt.Sprintf("%d", uint64(s.Value))
		default:
			line = fmt.Sprintf("%g", s.Value)
		}
		if _, err := fmt.Fprintf(w, "  %-*s  %-9s %s\n", width, s.Name, s.Kind, line); err != nil {
			return err
		}
	}
	return nil
}

// modalBucket describes the most populated histogram bucket.
func modalBucket(s Snapshot) string {
	best, bestCount := -1, uint64(0)
	for i, c := range s.Buckets {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	if best < 0 {
		return "mode=-"
	}
	if best == len(s.Bounds) {
		return fmt.Sprintf("mode=(>%g)", s.Bounds[len(s.Bounds)-1])
	}
	return fmt.Sprintf("mode=(<=%g)", s.Bounds[best])
}
