package obs_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"castanet/internal/hdl"
	"castanet/internal/ipc"
	"castanet/internal/obs"
	"castanet/internal/sim"
)

// benchHDLStep measures the HDL kernel hot path: one executed time point
// per iteration (a clock edge plus one sensitive process). With reg == nil
// the kernel runs with instrumentation compiled in but disabled — the
// configuration every uninstrumented rig pays for.
func benchHDLStep(b *testing.B, reg *obs.Registry) {
	h := hdl.New()
	h.Instrument(reg, "hdl.sim")
	clk := h.Bit("clk", hdl.U)
	h.Clock(clk, 2*sim.Nanosecond)
	n := 0
	h.Process("count", func() { n++ }, clk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchReliableRoundTrip measures the coupling-transport hot path: one
// cell-sized request/response through the reliability envelope over an
// in-process pipe, with the per-message stat mirror on or off.
func benchReliableRoundTrip(b *testing.B, reg *obs.Registry) {
	cfg := ipc.ReliableConfig{
		MaxRetries: 12,
		RetryBase:  time.Millisecond,
		RetryCap:   16 * time.Millisecond,
	}
	cl, sv := ipc.Pipe(64)
	server := ipc.NewReliable(sv, cfg)
	go func() {
		for {
			m, err := server.Recv()
			if err != nil {
				return
			}
			if server.Send(m) != nil {
				return
			}
		}
	}()
	client := ipc.NewReliable(cl, cfg)
	client.Instrument(reg, "ipc.reliable")
	defer client.Close()
	m := ipc.Message{Kind: ipc.KindUser, Time: sim.Microsecond, Data: make([]byte, 53)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Time += sim.Microsecond
		if err := client.Send(m); err != nil {
			b.Fatal(err)
		}
		if _, err := client.Recv(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
}

// benchCoverPath measures the functional-coverage hot path on the HDL
// kernel loop: one executed time point plus the per-cell cover pattern —
// one cached-handle hit and one range observe, the shape of the
// cell-header and queue-depth sites after the bin handles are resolved
// once at instrumentation time. With c == nil every handle is nil, the
// configuration a run without -coverage pays.
func benchCoverPath(b *testing.B, c *obs.CoverRegistry) {
	h := hdl.New()
	clk := h.Bit("clk", hdl.U)
	h.Clock(clk, 2*sim.Nanosecond)
	n := 0
	h.Process("count", func() { n++ }, clk)
	g := c.Group("bench")
	match := g.Point("verdict", "match", "mismatch").Handle("match")
	depth := g.Range("depth", 1, 4, 16, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Step(); err != nil {
			b.Fatal(err)
		}
		match.Hit()
		depth.Observe(int64(i & 127))
	}
}

// benchHDLProfileStep measures the HDL kernel loop with the activity
// profiler disabled (the default: one nil test per signal event) or
// enabled (flat per-ID array increments on every event and process run).
func benchHDLProfileStep(b *testing.B, profiled bool) {
	h := hdl.New()
	if profiled {
		h.EnableProfile()
	}
	clk := h.Bit("clk", hdl.U)
	h.Clock(clk, 2*sim.Nanosecond)
	n := 0
	h.Process("count", func() { n++ }, clk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHDLStep compares the HDL kernel with observability disabled
// (nil registry: the zero-cost claim) and enabled.
func BenchmarkHDLStep(b *testing.B) {
	b.Run("obs-off", func(b *testing.B) { benchHDLStep(b, nil) })
	b.Run("obs-on", func(b *testing.B) { benchHDLStep(b, obs.NewRegistry()) })
}

// BenchmarkReliableRoundTrip compares the reliable transport with the
// registry mirror disabled and enabled.
func BenchmarkReliableRoundTrip(b *testing.B) {
	b.Run("obs-off", func(b *testing.B) { benchReliableRoundTrip(b, nil) })
	b.Run("obs-on", func(b *testing.B) { benchReliableRoundTrip(b, obs.NewRegistry()) })
}

// BenchmarkCoverPath compares the kernel loop with functional coverage
// disabled (nil cover registry) and enabled.
func BenchmarkCoverPath(b *testing.B) {
	b.Run("cover-off", func(b *testing.B) { benchCoverPath(b, nil) })
	b.Run("cover-on", func(b *testing.B) { benchCoverPath(b, obs.NewCoverRegistry()) })
}

// BenchmarkHDLProfile compares the kernel loop with the activity profiler
// disabled (the -profile-off configuration every run pays) and enabled.
func BenchmarkHDLProfile(b *testing.B) {
	b.Run("profile-off", func(b *testing.B) { benchHDLProfileStep(b, false) })
	b.Run("profile-on", func(b *testing.B) { benchHDLProfileStep(b, true) })
}

// obsBenchPair is one hot path's off/on measurement in BENCH_obs.json.
type obsBenchPair struct {
	OffNsOp float64 `json:"off_ns_op"`
	OnNsOp  float64 `json:"on_ns_op"`
	// EnabledOverheadFrac is on/off - 1: the full cost of live counters
	// and gauges, an upper bound on the disabled (nil-handle) cost.
	// Clamped at zero — a negative measurement is host jitter, and a
	// negative committed baseline would turn benchgate's absolute-drift
	// bound (baseline + 0.05) into a gate that fails legitimate ~0
	// measurements.
	EnabledOverheadFrac float64 `json:"enabled_overhead_frac"`
}

// overheadFrac computes the clamped enabled-overhead fraction of a pair.
func overheadFrac(offNs, onNs float64) float64 {
	if offNs <= 0 {
		return 0
	}
	frac := onNs/offNs - 1
	if frac < 0 {
		return 0
	}
	return frac
}

// TestWriteObsBench runs the overhead benchmarks via testing.Benchmark and
// writes BENCH_obs.json. Gated behind OBS_BENCH_OUT (see the Makefile's
// obs-bench target) so the regular test run stays fast. nil_handle_ns_op
// pins the disabled-path primitive: one Inc on a nil *Counter, i.e. the
// pointer test every disabled instrumentation site costs.
func TestWriteObsBench(t *testing.T) {
	out := os.Getenv("OBS_BENCH_OUT")
	if out == "" {
		t.Skip("set OBS_BENCH_OUT=<file> to run the overhead benchmark")
	}
	measure := func(f func(*testing.B, *obs.Registry)) obsBenchPair {
		off := testing.Benchmark(func(b *testing.B) { f(b, nil) })
		on := testing.Benchmark(func(b *testing.B) { f(b, obs.NewRegistry()) })
		p := obsBenchPair{OffNsOp: float64(off.NsPerOp()), OnNsOp: float64(on.NsPerOp())}
		p.EnabledOverheadFrac = overheadFrac(p.OffNsOp, p.OnNsOp)
		return p
	}
	coverPath := obsBenchPair{
		OffNsOp: float64(testing.Benchmark(func(b *testing.B) { benchCoverPath(b, nil) }).NsPerOp()),
		OnNsOp:  float64(testing.Benchmark(func(b *testing.B) { benchCoverPath(b, obs.NewCoverRegistry()) }).NsPerOp()),
	}
	coverPath.EnabledOverheadFrac = overheadFrac(coverPath.OffNsOp, coverPath.OnNsOp)
	hdlProfile := obsBenchPair{
		OffNsOp: float64(testing.Benchmark(func(b *testing.B) { benchHDLProfileStep(b, false) }).NsPerOp()),
		OnNsOp:  float64(testing.Benchmark(func(b *testing.B) { benchHDLProfileStep(b, true) }).NsPerOp()),
	}
	hdlProfile.EnabledOverheadFrac = overheadFrac(hdlProfile.OffNsOp, hdlProfile.OnNsOp)
	nilHandle := testing.Benchmark(func(b *testing.B) {
		var c *obs.Counter
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	nilCover := testing.Benchmark(func(b *testing.B) {
		var p *obs.CoverPoint
		for i := 0; i < b.N; i++ {
			p.Hit("match")
			p.Observe(int64(i))
		}
	})
	// nil_profile_ns_op pins the disabled-profiler primitive: one phase
	// attribution on a nil *PhaseProfile plus the nil-handle test of the
	// activity path — the per-site cost of a run without -profile.
	nilProfile := testing.Benchmark(func(b *testing.B) {
		var ph *obs.PhaseProfile
		var rp *obs.RunProfile
		for i := 0; i < b.N; i++ {
			ph.AddNs(obs.PhaseHDL, int64(i))
			ph = rp.PhaseProf()
		}
	})
	report := struct {
		HDLStep           obsBenchPair `json:"hdl_step"`
		ReliableRoundTrip obsBenchPair `json:"reliable_roundtrip"`
		CoverPath         obsBenchPair `json:"cover_path"`
		HDLProfile        obsBenchPair `json:"hdl_profile"`
		NilHandleNsOp     float64      `json:"nil_handle_ns_op"`
		NilCoverNsOp      float64      `json:"nil_cover_ns_op"`
		NilProfileNsOp    float64      `json:"nil_profile_ns_op"`
	}{
		HDLStep:           measure(benchHDLStep),
		ReliableRoundTrip: measure(benchReliableRoundTrip),
		CoverPath:         coverPath,
		HDLProfile:        hdlProfile,
		NilHandleNsOp:     float64(nilHandle.NsPerOp()),
		NilCoverNsOp:      float64(nilCover.NsPerOp()),
		NilProfileNsOp:    float64(nilProfile.NsPerOp()),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", out, data)
}
