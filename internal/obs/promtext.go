package obs

import (
	"fmt"
	"io"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for the registry, so
// a live run can be scraped by stock monitoring tooling. The mapping from
// the registry's dotted names:
//
//   - dots become underscores, any other character outside
//     [a-zA-Z0-9_:] is dropped to '_': "net.sched.executed" ->
//     "net_sched_executed";
//   - counters gain the conventional "_total" suffix;
//   - the campaign shard suffix ".shardN" (see ShardName) becomes a
//     {shard="N"} label, so per-shard counters form one family:
//     "campaign.runs.shard2" -> campaign_runs_total{shard="2"};
//   - histograms emit cumulative _bucket{le="..."} series plus _sum and
//     _count, per the exposition format.

// promFamily maps a registry metric name to its exposition family name
// and label set.
func promFamily(name string, kind Kind) (family, labels string) {
	// Shard suffix -> label.
	if i := strings.LastIndex(name, ".shard"); i >= 0 {
		if n := name[i+len(".shard"):]; n != "" && isDigits(n) {
			name = name[:i]
			labels = fmt.Sprintf(`shard=%q`, n)
		}
	}
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	family = b.String()
	if kind == KindCounter {
		family += "_total"
	}
	return family, labels
}

func isDigits(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

func promType(k Kind) string {
	switch k {
	case KindCounter:
		return "counter"
	case KindHistogram:
		return "histogram"
	}
	return "gauge"
}

// promSample is one exposition sample pending emission under its family.
type promSample struct {
	labels string
	snap   Snapshot
}

// WritePrometheus writes the registry in Prometheus text exposition
// format. Families are emitted in sorted-name order with one # TYPE line
// each; per-shard series of the same family are grouped under it.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snaps := r.Snapshot() // sorted by registry name
	type familyGroup struct {
		name    string
		kind    Kind
		samples []promSample
	}
	byName := map[string]*familyGroup{}
	var order []*familyGroup
	for _, s := range snaps {
		fam, labels := promFamily(s.Name, s.Kind)
		g, ok := byName[fam]
		if !ok {
			g = &familyGroup{name: fam, kind: s.Kind}
			byName[fam] = g
			order = append(order, g)
		}
		if g.kind != s.Kind {
			// Two registry names collapsing onto one family with different
			// kinds would corrupt the exposition; keep them apart by
			// emitting the latecomer under its unmerged name.
			g = &familyGroup{name: fam + "_" + promType(s.Kind), kind: s.Kind}
			order = append(order, g)
		}
		g.samples = append(g.samples, promSample{labels: labels, snap: s})
	}

	for _, g := range order {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", g.name, promType(g.kind)); err != nil {
			return err
		}
		for _, smp := range g.samples {
			if err := writePromSample(w, g.name, smp); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromSample(w io.Writer, family string, smp promSample) error {
	s := smp.snap
	switch s.Kind {
	case KindHistogram:
		cum := uint64(0)
		for i, bound := range s.Bounds {
			cum += s.Buckets[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n",
				family, labelPrefix(smp.labels), formatBound(bound), cum); err != nil {
				return err
			}
		}
		cum += s.Buckets[len(s.Buckets)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n",
			family, labelPrefix(smp.labels), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", family, labelSuffix(smp.labels), s.Sum); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", family, labelSuffix(smp.labels), uint64(s.Value))
		return err
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", family, labelSuffix(smp.labels), uint64(s.Value))
		return err
	default:
		_, err := fmt.Fprintf(w, "%s%s %g\n", family, labelSuffix(smp.labels), s.Value)
		return err
	}
}

// labelPrefix renders labels for joining with a trailing le label.
func labelPrefix(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

// labelSuffix renders a complete label set (or nothing).
func labelSuffix(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// formatBound renders a bucket bound the way Prometheus clients do.
func formatBound(b float64) string { return fmt.Sprintf("%g", b) }
