package obs

import (
	"fmt"
	"strings"
	"sync"
)

// Flight recorder: a bounded ring of structured coupling/hop events a rig
// keeps while it runs. Nothing is written anywhere during a healthy run;
// on a mismatch or a typed coupling failure the rig dumps the ring into
// its failure digest, so a campaign failure arrives with its last-moments
// context attached and is triageable without a re-run.

// Record is one flight-recorder entry. Sim is simulated time in
// picoseconds (negative when the event happened outside the simulated
// clock domain, e.g. on a transport goroutine); Seq optionally names the
// cell involved (trace ID, 0 when not cell-specific).
type Record struct {
	Seq  uint64
	Sim  int64
	Src  string // subsystem that recorded it: "rig", "entity", "iface", "cmp", ...
	Text string
}

// DefaultRecorderCap is the ring capacity used when NewRecorder is
// given 0.
const DefaultRecorderCap = 256

// Recorder is the bounded event ring. When full, the oldest entries are
// overwritten — a failure dump shows the most recent window, which is the
// one that matters. A nil *Recorder is a no-op on every method.
type Recorder struct {
	mu      sync.Mutex
	buf     []Record
	next    int
	wrapped bool
	dropped uint64
}

// NewRecorder returns a recorder holding up to capacity entries
// (0 selects DefaultRecorderCap).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCap
	}
	return &Recorder{buf: make([]Record, capacity)}
}

// Enabled reports whether notes are kept; callers may use it to skip
// building expensive messages.
func (r *Recorder) Enabled() bool { return r != nil }

// Note records one event at simulated time simPS.
func (r *Recorder) Note(src string, simPS int64, format string, args ...any) {
	r.NoteCell(0, src, simPS, format, args...)
}

// NoteCell records one event attributed to a traced cell.
func (r *Recorder) NoteCell(seq uint64, src string, simPS int64, format string, args ...any) {
	if r == nil {
		return
	}
	rec := Record{Seq: seq, Sim: simPS, Src: src, Text: fmt.Sprintf(format, args...)}
	r.mu.Lock()
	if r.wrapped {
		r.dropped++
	}
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

// Records returns the buffered entries, oldest first.
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		return append([]Record(nil), r.buf[:r.next]...)
	}
	out := make([]Record, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Dropped returns how many entries were overwritten by ring wrap-around.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Dump renders the ring for a failure digest: a headline plus one line
// per entry. Only simulated time appears, so a dump from a replayed seed
// matches the campaign's original byte for byte.
func (r *Recorder) Dump() string {
	recs := r.Records()
	if len(recs) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder (%d events, %d overwritten):\n", len(recs), r.Dropped())
	for _, rec := range recs {
		fmt.Fprintf(&b, "  [%s] t=%s", rec.Src, fmtSimPS(rec.Sim))
		if rec.Seq != 0 {
			fmt.Fprintf(&b, " cell=0x%x", rec.Seq)
		}
		fmt.Fprintf(&b, " %s\n", rec.Text)
	}
	return b.String()
}
