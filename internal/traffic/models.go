// Package traffic provides the traffic-model library of the network
// simulation environment: stochastic source models (CBR, Poisson, ON/OFF,
// MMPP) and simulated real-world traces (an MPEG video model plus trace
// file I/O), mirroring the OPNET model suite the paper selects for its ATM
// test benches. Every model is an interval generator: Next returns the
// delay from the previous emission to the next one, drawing randomness
// only from the supplied RNG so runs are reproducible.
package traffic

import (
	"fmt"
	"math"

	"castanet/internal/sim"
)

// Model is the interval-generator contract (identical to
// netsim.Generator, restated here on the producer side).
type Model interface {
	Next(rng *sim.RNG) sim.Duration
}

// CBR is a constant bit rate source: one cell every Interval.
type CBR struct {
	Interval sim.Duration
}

// NewCBR returns a CBR source emitting at the given cell rate.
func NewCBR(cellsPerSecond float64) *CBR {
	return &CBR{Interval: sim.FromSeconds(1 / cellsPerSecond)}
}

// Next implements Model.
func (c *CBR) Next(*sim.RNG) sim.Duration { return c.Interval }

// Poisson emits with exponentially distributed inter-arrival times.
type Poisson struct {
	Mean sim.Duration // mean inter-arrival time
}

// NewPoisson returns a Poisson source with the given mean cell rate.
func NewPoisson(cellsPerSecond float64) *Poisson {
	return &Poisson{Mean: sim.FromSeconds(1 / cellsPerSecond)}
}

// Next implements Model.
func (p *Poisson) Next(rng *sim.RNG) sim.Duration {
	return sim.Duration(rng.Exp(float64(p.Mean)))
}

// OnOff is an interrupted periodic process: during ON it emits cells at
// PeakInterval; ON and OFF period lengths are exponentially distributed.
// It is the standard model for bursty ATM sources (voice with silence
// suppression, interactive data).
type OnOff struct {
	PeakInterval sim.Duration // cell spacing while ON
	MeanOn       sim.Duration // mean ON duration
	MeanOff      sim.Duration // mean OFF duration

	onLeft sim.Duration // remaining ON time, <=0 when in OFF
	primed bool
}

// Next implements Model.
func (o *OnOff) Next(rng *sim.RNG) sim.Duration {
	if !o.primed {
		o.primed = true
		o.onLeft = sim.Duration(rng.Exp(float64(o.MeanOn)))
	}
	var gap sim.Duration
	for {
		if o.onLeft >= o.PeakInterval {
			// Still ON: next cell one peak interval later.
			o.onLeft -= o.PeakInterval
			return gap + o.PeakInterval
		}
		// The ON period ends before the next emission: idle through the
		// ON tail plus an OFF period, then start a fresh ON period whose
		// first cell is due one peak interval after it begins.
		gap += o.onLeft + sim.Duration(rng.Exp(float64(o.MeanOff)))
		o.onLeft = sim.Duration(rng.Exp(float64(o.MeanOn)))
	}
}

// MeanRate returns the long-run average cell rate of the ON/OFF source in
// cells per second.
func (o *OnOff) MeanRate() float64 {
	on := float64(o.MeanOn)
	off := float64(o.MeanOff)
	peak := float64(sim.Second) / float64(o.PeakInterval)
	return peak * on / (on + off)
}

// MMPP2 is a two-state Markov-modulated Poisson process: the cell rate
// switches between Rate1 and Rate2 with exponentially distributed
// sojourn times — a common model for aggregated bursty ATM traffic.
type MMPP2 struct {
	Rate1, Rate2       float64      // cells/s in each state
	Sojourn1, Sojourn2 sim.Duration // mean state holding times

	state2 bool
	stLeft sim.Duration
	primed bool
}

// Next implements Model.
func (m *MMPP2) Next(rng *sim.RNG) sim.Duration {
	if !m.primed {
		m.primed = true
		m.stLeft = sim.Duration(rng.Exp(float64(m.Sojourn1)))
	}
	var total sim.Duration
	for {
		rate, sojourn := m.Rate1, m.Sojourn1
		if m.state2 {
			rate, sojourn = m.Rate2, m.Sojourn2
		}
		gap := sim.Duration(rng.Exp(float64(sim.Second) / rate))
		if gap <= m.stLeft {
			m.stLeft -= gap
			return total + gap
		}
		// State changes before the arrival; memorylessness lets us
		// discard the partial draw and redraw in the new state.
		total += m.stLeft
		m.state2 = !m.state2
		_ = sojourn
		next := m.Sojourn1
		if m.state2 {
			next = m.Sojourn2
		}
		m.stLeft = sim.Duration(rng.Exp(float64(next)))
	}
}

// MeanRate returns the long-run average cell rate of the modulated
// process in cells per second: each state's rate weighted by its mean
// sojourn time.
func (m *MMPP2) MeanRate() float64 {
	s1 := float64(m.Sojourn1)
	s2 := float64(m.Sojourn2)
	return (m.Rate1*s1 + m.Rate2*s2) / (s1 + s2)
}

// Trace replays a recorded inter-arrival sequence, wrapping around at the
// end — the "simulated/real-world traces" stimulus category of Fig. 1.
type Trace struct {
	Intervals []sim.Duration
	pos       int
}

// Next implements Model.
func (t *Trace) Next(*sim.RNG) sim.Duration {
	if len(t.Intervals) == 0 {
		panic("traffic: empty trace")
	}
	d := t.Intervals[t.pos]
	t.pos = (t.pos + 1) % len(t.Intervals)
	return d
}

// Superposition merges several models into one aggregate arrival stream,
// as when multiplexing many sources onto one ATM link.
type Superposition struct {
	Models []Model

	nexts  []sim.Duration
	primed bool
}

// Next implements Model.
func (s *Superposition) Next(rng *sim.RNG) sim.Duration {
	if len(s.Models) == 0 {
		panic("traffic: empty superposition")
	}
	if !s.primed {
		s.primed = true
		s.nexts = make([]sim.Duration, len(s.Models))
		for i, m := range s.Models {
			s.nexts[i] = m.Next(rng)
		}
	}
	// Find the earliest pending arrival.
	min := 0
	for i := 1; i < len(s.nexts); i++ {
		if s.nexts[i] < s.nexts[min] {
			min = i
		}
	}
	gap := s.nexts[min]
	for i := range s.nexts {
		s.nexts[i] -= gap
	}
	s.nexts[min] = s.Models[min].Next(rng)
	return gap
}

// Validate sanity-checks model parameters; harnesses call it before long
// runs so misconfigurations fail fast.
func Validate(m Model) error {
	switch v := m.(type) {
	case *CBR:
		if v.Interval <= 0 {
			return fmt.Errorf("traffic: CBR interval %v must be positive", v.Interval)
		}
	case *Poisson:
		if v.Mean <= 0 {
			return fmt.Errorf("traffic: Poisson mean %v must be positive", v.Mean)
		}
	case *OnOff:
		if v.PeakInterval <= 0 || v.MeanOn <= 0 || v.MeanOff <= 0 {
			return fmt.Errorf("traffic: OnOff parameters must be positive")
		}
	case *MMPP2:
		if v.Rate1 <= 0 || v.Rate2 <= 0 || v.Sojourn1 <= 0 || v.Sojourn2 <= 0 {
			return fmt.Errorf("traffic: MMPP2 parameters must be positive")
		}
	case *Trace:
		if len(v.Intervals) == 0 {
			return fmt.Errorf("traffic: trace is empty")
		}
		for i, d := range v.Intervals {
			if d < 0 {
				return fmt.Errorf("traffic: trace interval %d is negative", i)
			}
		}
	case *Superposition:
		if len(v.Models) == 0 {
			return fmt.Errorf("traffic: superposition is empty")
		}
		for _, sub := range v.Models {
			if err := Validate(sub); err != nil {
				return err
			}
		}
	case *ParetoOnOff:
		if v.PeakInterval <= 0 || v.MeanOn <= 0 || v.MeanOff <= 0 {
			return fmt.Errorf("traffic: ParetoOnOff durations must be positive")
		}
		if v.Alpha <= 1 {
			return fmt.Errorf("traffic: Pareto alpha %v must exceed 1", v.Alpha)
		}
	}
	return nil
}

// ParetoOnOff is an ON/OFF source whose period lengths follow a Pareto
// (heavy-tailed) distribution instead of the exponential — the standard
// construction for self-similar aggregate traffic in ATM studies (Willinger
// et al.): superposing many Pareto ON/OFF sources yields long-range
// dependent load that exponential models cannot reproduce.
type ParetoOnOff struct {
	PeakInterval sim.Duration // cell spacing while ON
	MeanOn       sim.Duration
	MeanOff      sim.Duration
	// Alpha is the Pareto shape parameter, 1 < Alpha <= 2 for infinite
	// variance (self-similarity); typical literature value 1.5.
	Alpha float64

	onLeft sim.Duration
	primed bool
}

// pareto draws a Pareto variate with the given mean and shape alpha > 1:
// scale = mean*(alpha-1)/alpha.
func pareto(rng *sim.RNG, mean sim.Duration, alpha float64) sim.Duration {
	scale := float64(mean) * (alpha - 1) / alpha
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	v := scale / math.Pow(u, 1/alpha)
	// Heavy tails can exceed any horizon; clamp at 10^4 means to keep
	// simulated runs finite while preserving burstiness.
	if limit := 10000 * float64(mean); v > limit {
		v = limit
	}
	return sim.Duration(v)
}

// MeanRate returns the long-run average cell rate in cells per second
// (peak rate scaled by the ON duty cycle). The tail clamp in pareto
// slightly shortens extreme periods, so empirical means converge to this
// figure only approximately.
func (o *ParetoOnOff) MeanRate() float64 {
	on := float64(o.MeanOn)
	off := float64(o.MeanOff)
	peak := float64(sim.Second) / float64(o.PeakInterval)
	return peak * on / (on + off)
}

// Next implements Model.
func (o *ParetoOnOff) Next(rng *sim.RNG) sim.Duration {
	if o.Alpha <= 1 {
		panic("traffic: Pareto alpha must exceed 1")
	}
	if !o.primed {
		o.primed = true
		o.onLeft = pareto(rng, o.MeanOn, o.Alpha)
	}
	var gap sim.Duration
	for {
		if o.onLeft >= o.PeakInterval {
			o.onLeft -= o.PeakInterval
			return gap + o.PeakInterval
		}
		gap += o.onLeft + pareto(rng, o.MeanOff, o.Alpha)
		o.onLeft = pareto(rng, o.MeanOn, o.Alpha)
	}
}
