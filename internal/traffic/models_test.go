package traffic

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"castanet/internal/sim"
)

func drain(m Model, rng *sim.RNG, n int) (total sim.Duration, gaps []sim.Duration) {
	gaps = make([]sim.Duration, n)
	for i := 0; i < n; i++ {
		gaps[i] = m.Next(rng)
		if gaps[i] < 0 {
			panic("negative gap")
		}
		total += gaps[i]
	}
	return total, gaps
}

func TestCBRExactRate(t *testing.T) {
	m := NewCBR(1e6)
	rng := sim.NewRNG(1)
	total, gaps := drain(m, rng, 1000)
	if total != 1000*sim.Microsecond {
		t.Fatalf("1000 cells at 1 Mcell/s took %v", total)
	}
	for _, g := range gaps {
		if g != sim.Microsecond {
			t.Fatal("CBR jittered")
		}
	}
}

func TestPoissonMeanRate(t *testing.T) {
	m := NewPoisson(1e6)
	rng := sim.NewRNG(2)
	total, _ := drain(m, rng, 100000)
	rate := 100000 / total.Seconds()
	if math.Abs(rate-1e6)/1e6 > 0.02 {
		t.Errorf("Poisson rate = %v, want ~1e6", rate)
	}
}

func TestOnOffMeanRate(t *testing.T) {
	m := &OnOff{
		PeakInterval: 10 * sim.Microsecond, // 100 kcell/s peak
		MeanOn:       sim.Millisecond,
		MeanOff:      sim.Millisecond,
	}
	want := m.MeanRate() // 50 kcell/s
	rng := sim.NewRNG(3)
	total, _ := drain(m, rng, 200000)
	rate := 200000 / total.Seconds()
	if math.Abs(rate-want)/want > 0.05 {
		t.Errorf("OnOff rate = %v, want ~%v", rate, want)
	}
}

func TestOnOffBurstiness(t *testing.T) {
	// Gaps must be either the peak interval or longer (OFF periods), never
	// shorter.
	m := &OnOff{PeakInterval: 10 * sim.Microsecond, MeanOn: sim.Millisecond, MeanOff: 5 * sim.Millisecond}
	rng := sim.NewRNG(4)
	_, gaps := drain(m, rng, 10000)
	long := 0
	for _, g := range gaps {
		if g < 10*sim.Microsecond {
			t.Fatalf("gap %v below peak interval", g)
		}
		if g > 100*sim.Microsecond {
			long++
		}
	}
	if long == 0 {
		t.Error("no OFF periods observed")
	}
}

func TestMMPP2RateBetweenStates(t *testing.T) {
	// Short sojourns give many modulation cycles, so the empirical rate
	// concentrates near the time average (r1+r2)/2.
	m := &MMPP2{Rate1: 1e5, Rate2: 1e6, Sojourn1: 100 * sim.Microsecond, Sojourn2: 100 * sim.Microsecond}
	rng := sim.NewRNG(5)
	total, _ := drain(m, rng, 400000)
	rate := 400000 / total.Seconds()
	// Equal sojourns: mean rate = (1e5+1e6)/2 = 5.5e5.
	if math.Abs(rate-5.5e5)/5.5e5 > 0.05 {
		t.Errorf("MMPP2 rate = %v, want ~5.5e5", rate)
	}
}

func TestTraceWrapsAround(t *testing.T) {
	tr := &Trace{Intervals: []sim.Duration{1, 2, 3}}
	rng := sim.NewRNG(1)
	var got []sim.Duration
	for i := 0; i < 7; i++ {
		got = append(got, tr.Next(rng))
	}
	want := []sim.Duration{1, 2, 3, 1, 2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("trace replay = %v", got)
		}
	}
}

func TestSuperpositionRate(t *testing.T) {
	// Three CBR sources at 1e5 each superpose to 3e5.
	s := &Superposition{Models: []Model{NewCBR(1e5), NewCBR(1e5), NewCBR(1e5)}}
	rng := sim.NewRNG(6)
	total, _ := drain(s, rng, 30000)
	rate := 30000 / total.Seconds()
	if math.Abs(rate-3e5)/3e5 > 0.01 {
		t.Errorf("superposed rate = %v, want 3e5", rate)
	}
}

// Property: superposition preserves event ordering — gaps are never
// negative and the merged rate is at least the max single rate.
func TestSuperpositionNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		s := &Superposition{Models: []Model{NewPoisson(1e5), NewCBR(2e5), NewPoisson(5e4)}}
		rng := sim.NewRNG(seed)
		for i := 0; i < 500; i++ {
			if s.Next(rng) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMPEGFrameStructure(t *testing.T) {
	ct := 3 * sim.Microsecond
	m := DefaultMPEG(ct)
	rng := sim.NewRNG(7)
	total, gaps := drain(m, rng, 50000)
	// Mean bit rate: GoP mean frame = (16000+2*8000*... ) compute:
	// pattern IBBPBBPBBPBB: 1 I, 3 P, 8 B = (16000+3*8000+8*3000)/12 = 5333B.
	// 25 fps -> ~133 kB/s -> in cells/s: 133333/48 ≈ 2778 cells/s.
	rate := 50000 / total.Seconds()
	if rate < 1500 || rate > 4500 {
		t.Errorf("MPEG cell rate = %v cells/s, want ~2800", rate)
	}
	// Bursts: many gaps equal to the cell time, separated by frame gaps.
	burst, idle := 0, 0
	for _, g := range gaps {
		if g == ct {
			burst++
		} else if g > sim.Millisecond {
			idle++
		}
	}
	if burst == 0 || idle == 0 {
		t.Errorf("MPEG not bursty: %d burst gaps, %d idle gaps", burst, idle)
	}
}

func TestTraceRoundTripFile(t *testing.T) {
	var buf strings.Builder
	rng := sim.NewRNG(8)
	src := NewPoisson(1e6)
	if err := WriteTrace(&buf, src, rng, 100); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Intervals) != 100 {
		t.Fatalf("read %d intervals", len(tr.Intervals))
	}
	// Replaying the trace must reproduce the recorded stream exactly.
	rng2 := sim.NewRNG(8)
	src2 := NewPoisson(1e6)
	for i := 0; i < 100; i++ {
		if tr.Intervals[i] != src2.Next(rng2) {
			t.Fatalf("trace replay diverges at %d", i)
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("# empty\n")); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := ReadTrace(strings.NewReader("abc\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadTrace(strings.NewReader("-5\n")); err == nil {
		t.Error("negative interval accepted")
	}
}

func TestValidate(t *testing.T) {
	good := []Model{
		NewCBR(1e6),
		NewPoisson(1e5),
		&OnOff{PeakInterval: 1, MeanOn: 1, MeanOff: 1},
		&MMPP2{Rate1: 1, Rate2: 1, Sojourn1: 1, Sojourn2: 1},
		&Trace{Intervals: []sim.Duration{1}},
		&Superposition{Models: []Model{NewCBR(1)}},
	}
	for _, m := range good {
		if err := Validate(m); err != nil {
			t.Errorf("Validate(%T) = %v", m, err)
		}
	}
	bad := []Model{
		&CBR{},
		&Poisson{},
		&OnOff{},
		&MMPP2{},
		&Trace{},
		&Superposition{},
		&Superposition{Models: []Model{&CBR{}}},
	}
	for _, m := range bad {
		if err := Validate(m); err == nil {
			t.Errorf("Validate(%T) accepted invalid model", m)
		}
	}
}

func TestParetoOnOffBurstiness(t *testing.T) {
	m := &ParetoOnOff{
		PeakInterval: 10 * sim.Microsecond,
		MeanOn:       sim.Millisecond,
		MeanOff:      sim.Millisecond,
		Alpha:        1.5,
	}
	rng := sim.NewRNG(21)
	_, gaps := drain(m, rng, 50000)
	var offPeriods []float64
	for _, g := range gaps {
		if g < 10*sim.Microsecond {
			t.Fatalf("gap %v below peak interval", g)
		}
		if g > 10*sim.Microsecond {
			offPeriods = append(offPeriods, (g - 10*sim.Microsecond).Seconds())
		}
	}
	if len(offPeriods) == 0 {
		t.Fatal("no OFF periods")
	}
	// Heavy tail: the largest OFF period dwarfs the median by far more
	// than an exponential would allow.
	maxOff, medOff := 0.0, median(offPeriods)
	for _, v := range offPeriods {
		if v > maxOff {
			maxOff = v
		}
	}
	if maxOff/medOff < 50 {
		t.Errorf("max/median OFF = %.1f, want heavy tail (>50)", maxOff/medOff)
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func TestParetoAlphaValidation(t *testing.T) {
	m := &ParetoOnOff{PeakInterval: 1, MeanOn: 1, MeanOff: 1, Alpha: 1.0}
	defer func() {
		if recover() == nil {
			t.Error("alpha <= 1 accepted")
		}
	}()
	m.Next(sim.NewRNG(1))
}
