package traffic

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"castanet/internal/atm"
	"castanet/internal/sim"
)

// MPEG models a compressed video source, the paper's example of a
// simulated real-world trace driving the hardware ("for example MPEG
// traces"). Frames follow the classic group-of-pictures pattern
// IBBPBBPBBPBB at a fixed frame rate; each frame's size is drawn from a
// per-type lognormal-like distribution (normal in log domain, clamped),
// segmented into ATM cells (48 payload octets each) transmitted
// back-to-back at the start of the frame period.
type MPEG struct {
	FrameRate float64 // frames per second, e.g. 25
	// Mean frame sizes in bytes per frame type.
	MeanI, MeanP, MeanB float64
	// CV is the coefficient of variation of frame sizes.
	CV float64
	// LinkCellTime spaces the cells of one frame burst; zero emits the
	// whole frame back-to-back with zero spacing.
	LinkCellTime sim.Duration

	gopPos    int
	cellsLeft int
	occupied  sim.Duration // duration of the current frame's burst
	primed    bool
}

// DefaultMPEG returns parameters resembling published MPEG-1 trace
// statistics (e.g. the Bellcore Star Wars trace): 25 fps, mean I/P/B frame
// sizes 16/8/3 KB.
func DefaultMPEG(linkCellTime sim.Duration) *MPEG {
	return &MPEG{
		FrameRate:    25,
		MeanI:        16000,
		MeanP:        8000,
		MeanB:        3000,
		CV:           0.3,
		LinkCellTime: linkCellTime,
	}
}

// gop is the group-of-pictures frame-type pattern.
var gop = []byte("IBBPBBPBBPBB")

// frameCells draws the next frame's size and converts it to a cell count.
func (m *MPEG) frameCells(rng *sim.RNG) int {
	var mean float64
	switch gop[m.gopPos] {
	case 'I':
		mean = m.MeanI
	case 'P':
		mean = m.MeanP
	default:
		mean = m.MeanB
	}
	m.gopPos = (m.gopPos + 1) % len(gop)
	size := rng.Norm(mean, m.CV*mean)
	if size < mean/10 {
		size = mean / 10
	}
	cells := int(size) / atm.PayloadBytes
	if cells < 1 {
		cells = 1
	}
	return cells
}

// Next implements Model: it returns the spacing to the next cell, emitting
// each frame as a burst of cells followed by an idle gap to the next frame
// boundary.
func (m *MPEG) Next(rng *sim.RNG) sim.Duration {
	framePeriod := sim.FromSeconds(1 / m.FrameRate)
	if !m.primed {
		m.primed = true
		m.cellsLeft = m.frameCells(rng)
		m.occupied = sim.Duration(m.cellsLeft-1) * m.LinkCellTime
		return 0 // first cell at the first frame boundary
	}
	if m.cellsLeft > 1 {
		m.cellsLeft--
		return m.LinkCellTime
	}
	// Frame finished: idle until the next frame period starts. The gap is
	// the frame period minus the time the finished burst occupied.
	gap := framePeriod - m.occupied
	if gap < m.LinkCellTime {
		gap = m.LinkCellTime // source saturates the link
	}
	m.cellsLeft = m.frameCells(rng)
	m.occupied = sim.Duration(m.cellsLeft-1) * m.LinkCellTime
	return gap
}

// WriteTrace records n inter-arrival intervals of a model to w in the
// plain-text trace format: one integer picosecond count per line with a
// header comment. This is the mechanism for capturing "simulated
// real-world traces" for replay against the hardware test board.
func WriteTrace(w io.Writer, m Model, rng *sim.RNG, n int) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# castanet trace, %d intervals, unit ps\n", n); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintf(bw, "%d\n", int64(m.Next(rng))); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace previously written by WriteTrace.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	var intervals []sim.Duration
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("traffic: trace line %d: %v", line, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("traffic: trace line %d: negative interval", line)
		}
		intervals = append(intervals, sim.Duration(v))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(intervals) == 0 {
		return nil, fmt.Errorf("traffic: trace contains no intervals")
	}
	return &Trace{Intervals: intervals}, nil
}
