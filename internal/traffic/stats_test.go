package traffic

import (
	"math"
	"testing"

	"castanet/internal/sim"
)

// empiricalRate drives a model for n inter-arrival draws at a fixed seed
// and returns the observed mean cell rate in cells per second.
func empiricalRate(t *testing.T, m Model, seed uint64, n int) float64 {
	t.Helper()
	if err := Validate(m); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	rng := sim.NewRNG(seed)
	var total sim.Duration
	for i := 0; i < n; i++ {
		gap := m.Next(rng)
		if gap < 0 {
			t.Fatalf("draw %d: negative inter-arrival %v", i, gap)
		}
		total += gap
	}
	if total <= 0 {
		t.Fatalf("no simulated time elapsed over %d draws", n)
	}
	return float64(n) / total.Seconds()
}

// relErr is |got-want|/want.
func relErr(got, want float64) float64 { return math.Abs(got-want) / want }

// TestMMPP2MeanRateLongRun checks the modulated process against its
// analytic sojourn-weighted mean over a long fixed-seed horizon, across
// symmetric and asymmetric sojourn configurations.
func TestMMPP2MeanRateLongRun(t *testing.T) {
	cases := []struct {
		name string
		m    MMPP2
	}{
		{"symmetric", MMPP2{
			Rate1: 50e3, Rate2: 200e3,
			Sojourn1: 50 * sim.Microsecond, Sojourn2: 50 * sim.Microsecond,
		}},
		{"slow-heavy", MMPP2{
			Rate1: 20e3, Rate2: 300e3,
			Sojourn1: 200 * sim.Microsecond, Sojourn2: 25 * sim.Microsecond,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := tc.m.MeanRate()
			got := empiricalRate(t, &tc.m, 0xa11ce, 200_000)
			if e := relErr(got, want); e > 0.05 {
				t.Errorf("empirical rate %.0f vs analytic %.0f (err %.1f%%)", got, want, 100*e)
			}
		})
	}
}

// TestParetoOnOffMeanRateLongRun checks the heavy-tailed ON/OFF source
// against its duty-cycle mean. The tail clamp biases the empirical mean
// upward slightly, so the tolerance is generous.
func TestParetoOnOffMeanRateLongRun(t *testing.T) {
	m := ParetoOnOff{
		PeakInterval: 5 * sim.Microsecond, // 200 kcell/s peak
		MeanOn:       40 * sim.Microsecond,
		MeanOff:      40 * sim.Microsecond,
		Alpha:        1.5,
	}
	want := m.MeanRate() // 100 kcell/s duty-cycle mean
	got := empiricalRate(t, &m, 0xbeef, 300_000)
	if e := relErr(got, want); e > 0.15 {
		t.Errorf("empirical rate %.0f vs analytic %.0f (err %.1f%%)", got, want, 100*e)
	}
}

// TestSuperpositionMeanRate checks that an aggregate of heterogeneous
// sources converges to the sum of the component mean rates — the
// multiplexed-link property Superposition exists for.
func TestSuperpositionMeanRate(t *testing.T) {
	onoff := &OnOff{
		PeakInterval: 10 * sim.Microsecond,
		MeanOn:       40 * sim.Microsecond,
		MeanOff:      40 * sim.Microsecond,
	}
	mmpp := &MMPP2{
		Rate1: 30e3, Rate2: 120e3,
		Sojourn1: 100 * sim.Microsecond, Sojourn2: 50 * sim.Microsecond,
	}
	agg := &Superposition{Models: []Model{
		NewCBR(40e3),
		NewPoisson(60e3),
		onoff,
		mmpp,
	}}
	want := 40e3 + 60e3 + onoff.MeanRate() + mmpp.MeanRate()
	got := empiricalRate(t, agg, 0xcafe, 400_000)
	if e := relErr(got, want); e > 0.05 {
		t.Errorf("aggregate rate %.0f vs component sum %.0f (err %.1f%%)", got, want, 100*e)
	}
}
