package hdl

import (
	"testing"

	"castanet/internal/sim"
)

const tick = 10 * sim.Nanosecond

func TestRegCapturesOnEnable(t *testing.T) {
	s := New()
	clk := s.Bit("clk", U)
	s.Clock(clk, tick)
	d := s.Signal("d", 8, U)
	en := s.Bit("en", U)
	rst := s.Bit("rst", U)
	dd := d.Driver("tb")
	de := en.Driver("tb")
	dr := rst.Driver("tb")
	reg := NewReg(s, "r0", clk, d, en, rst)

	dr.SetBit(L0)
	de.SetBit(L0)
	dd.SetUint(0xAA)
	s.Schedule(22*sim.Nanosecond, func() { de.SetBit(L1) })
	s.Schedule(42*sim.Nanosecond, func() { de.SetBit(L0); dd.SetUint(0xBB) })
	if err := s.Run(100 * sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	// Enabled during edges at 25 and 35ns: captured 0xAA; 0xBB arrives
	// with enable low and must not be captured.
	if got, _ := reg.Q.Uint(); got != 0xAA {
		t.Errorf("Q = %#x, want 0xAA", got)
	}
}

func TestRegSyncReset(t *testing.T) {
	s := New()
	clk := s.Bit("clk", U)
	s.Clock(clk, tick)
	d := s.Signal("d", 4, U)
	rst := s.Bit("rst", U)
	d.Driver("tb").SetUint(0xF)
	dr := rst.Driver("tb")
	dr.SetBit(L0)
	reg := NewReg(s, "r0", clk, d, nil, rst)
	s.Schedule(32*sim.Nanosecond, func() { dr.SetBit(L1) })
	if err := s.Run(60 * sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if got, _ := reg.Q.Uint(); got != 0 {
		t.Errorf("Q = %#x after reset, want 0", got)
	}
}

func TestCounterCountsAndWraps(t *testing.T) {
	s := New()
	clk := s.Bit("clk", U)
	s.Clock(clk, tick)
	c := NewCounter(s, "c0", 4, clk, nil, nil)
	// Rising edges at 5, 15, ..., 195 ns: 20 edges, 20 mod 16 = 4.
	if err := s.Run(198 * sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Q.Uint(); got != 4 {
		t.Errorf("count = %d, want 4 (wrapped)", got)
	}
}

func TestShiftReg(t *testing.T) {
	s := New()
	clk := s.Bit("clk", U)
	s.Clock(clk, tick)
	din := s.Bit("din", U)
	dd := din.Driver("tb")
	sr := NewShiftReg(s, "sr", 4, clk, din, nil)
	// Shift in 1,0,1,1 (LSB-first arrival at MSB, shifting down).
	bits := []Logic{L1, L0, L1, L1}
	for i, b := range bits {
		b := b
		s.Schedule(sim.Duration(i)*tick+2*sim.Nanosecond, func() { dd.SetBit(b) })
	}
	if err := s.Run(4 * tick); err != nil {
		t.Fatal(err)
	}
	// After 4 shifts the first bit has moved to position 0: Q = b3 b2 b1 b0
	// = 1 1 0 1.
	if got, _ := sr.Q.Uint(); got != 0b1101 {
		t.Errorf("Q = %04b, want 1101", got)
	}
}

func TestFIFOOrderAndFlags(t *testing.T) {
	s := New()
	clk := s.Bit("clk", U)
	s.Clock(clk, tick)
	f := NewFIFO(s, "f0", 8, 2, clk)
	wr := f.WrEn.Driver("tb")
	wd := f.WrDat.Driver("tb")
	rd := f.RdEn.Driver("tb")
	wr.SetBit(L0)
	rd.SetBit(L0)

	// Write 0x11, 0x22 (filling depth 2), then read both back.
	s.Schedule(2*sim.Nanosecond, func() { wr.SetBit(L1); wd.SetUint(0x11) })
	s.Schedule(12*sim.Nanosecond, func() { wd.SetUint(0x22) })
	s.Schedule(22*sim.Nanosecond, func() { wr.SetBit(L0) })
	var fullSeen bool
	s.Schedule(30*sim.Nanosecond, func() { fullSeen = f.Full.Bit().IsHigh() })
	// One-cycle read strobes: read at the 35ns edge, sample, read at the
	// 55ns edge, sample again.
	var got1, got2 uint64
	s.Schedule(32*sim.Nanosecond, func() { rd.SetBit(L1) })
	s.Schedule(38*sim.Nanosecond, func() { rd.SetBit(L0) })
	s.Schedule(42*sim.Nanosecond, func() { got1, _ = f.RdDat.Uint() })
	s.Schedule(52*sim.Nanosecond, func() { rd.SetBit(L1) })
	s.Schedule(58*sim.Nanosecond, func() { rd.SetBit(L0) })
	s.Schedule(62*sim.Nanosecond, func() { got2, _ = f.RdDat.Uint() })
	if err := s.Run(80 * sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if !fullSeen {
		t.Error("Full not asserted at depth")
	}
	if got1 != 0x11 || got2 != 0x22 {
		t.Errorf("read %#x then %#x, want 0x11 then 0x22", got1, got2)
	}
	if !f.Empty.Bit().IsHigh() {
		t.Error("Empty not asserted after draining")
	}
	if f.Overflows != 0 || f.Underflows != 0 {
		t.Errorf("spurious violations: %d/%d", f.Overflows, f.Underflows)
	}
}

func TestFIFOViolationCounters(t *testing.T) {
	s := New()
	clk := s.Bit("clk", U)
	s.Clock(clk, tick)
	f := NewFIFO(s, "f0", 8, 1, clk)
	wr := f.WrEn.Driver("tb")
	wd := f.WrDat.Driver("tb")
	rd := f.RdEn.Driver("tb")
	wd.SetUint(0x5A)
	rd.SetBit(L0)
	wr.SetBit(L1) // write every cycle into depth-1: overflows after first
	s.Schedule(35*sim.Nanosecond, func() { wr.SetBit(L0) })
	if err := s.Run(40 * sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if f.Overflows == 0 {
		t.Error("overflow not counted")
	}
	// Drain, then read again: underflow.
	rd.SetBit(L1)
	if err := s.Run(s.Now() + 40*sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if f.Underflows == 0 {
		t.Error("underflow not counted")
	}
}

func TestFIFOSimultaneousReadWrite(t *testing.T) {
	// Read and write in the same cycle at full: read frees the slot the
	// write fills (read-before-write ordering).
	s := New()
	clk := s.Bit("clk", U)
	s.Clock(clk, tick)
	f := NewFIFO(s, "f0", 8, 1, clk)
	wr := f.WrEn.Driver("tb")
	wd := f.WrDat.Driver("tb")
	rd := f.RdEn.Driver("tb")
	rd.SetBit(L0)
	wr.SetBit(L1)
	wd.SetUint(1)
	s.Schedule(12*sim.Nanosecond, func() { wd.SetUint(2); rd.SetBit(L1) })
	s.Schedule(22*sim.Nanosecond, func() { wr.SetBit(L0); rd.SetBit(L0) })
	if err := s.Run(40 * sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if f.Overflows != 0 {
		t.Errorf("simultaneous rd/wr at full overflowed: %d", f.Overflows)
	}
	if f.Len() != 1 {
		t.Errorf("occupancy = %d, want 1", f.Len())
	}
	if got, _ := f.RdDat.Uint(); got != 1 {
		t.Errorf("read data = %d, want 1", got)
	}
}
