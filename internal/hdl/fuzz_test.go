package hdl

import (
	"testing"
)

// e1e8Seeds returns differential-harness programs shaped after the eight
// reference experiments (see internal/experiments): datapath widths,
// gate-cone depths and stimulus mixes resembling what E1–E8 drive through
// the rigs. They seed the FuzzKernelEquivalence corpus (committed under
// testdata/fuzz/) so nightly fuzzing starts from realistic netlists
// instead of empty bytes.
func e1e8Seeds() [][]byte {
	mk := func(widths []byte, gates, regs, stims int, impureEvery int) []byte {
		var p []byte
		for _, w := range widths {
			p = append(p, 0, w) // SIG
		}
		for i := 0; i < gates; i++ {
			p = append(p, 1, byte(i*37), byte(i*11), byte(i*5), byte(i*13), byte(i*7)) // GATE
		}
		for i := 0; i < regs; i++ {
			p = append(p, 3, byte(i*29)) // REG
		}
		for i := 0; i < stims; i++ {
			if impureEvery > 0 && i%impureEvery == 0 {
				p = append(p, 6, byte(i*31), byte(i*3), byte(i*17)) // impure vector
			} else {
				p = append(p, 4, byte(i*31), byte(i), byte(i*53), byte(i*17)) // two-state
			}
		}
		return p
	}
	return [][]byte{
		// e1: byte-serial cell datapath — 8-bit signals, shallow cones, pure CBR.
		mk([]byte{7, 7, 7, 0}, 10, 4, 40, 0),
		// e2: two coupled streams — wider mix, a little impurity at the seams.
		mk([]byte{7, 7, 15, 0, 0}, 14, 6, 48, 16),
		// e3: event-count cross-check — single bits, deep cones.
		mk([]byte{0, 0, 0, 0, 0, 0}, 24, 2, 40, 0),
		// e4: translation-table faults — X injection on header fields.
		mk([]byte{7, 3, 1, 0}, 12, 4, 48, 6),
		// e5: link faults — Z/X bursts on a shared bus (multi-driver).
		append(mk([]byte{7, 7, 0}, 8, 2, 24, 8), 7, 1, 2, 40, 7, 5, 9, 80),
		// e6: policer — counters and thresholds, 16-bit arithmetic shapes.
		mk([]byte{15, 15, 7, 0}, 16, 8, 48, 0),
		// e7: accounting — sparse events, long idle gaps.
		mk([]byte{15, 7, 0, 0}, 10, 6, 16, 10),
		// e8: board-level — everything at once, weak values included.
		mk([]byte{7, 15, 3, 0, 0, 1}, 20, 8, 56, 4),
	}
}

// FuzzKernelEquivalence feeds arbitrary byte programs through the
// differential harness: any divergence between the nine-value event
// kernel and the compiled bit-parallel kernel — in waveforms, counters,
// VCD bytes or the activity profile — is a crash. The nightly workflow
// runs this for minutes; CI runs the committed corpus as regression
// tests.
func FuzzKernelEquivalence(f *testing.F) {
	for _, seed := range e1e8Seeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		if diff := compareKernels(data); diff != "" {
			t.Fatalf("kernel divergence: %s", diff)
		}
	})
}
