package hdl

import (
	"strings"
	"testing"

	"castanet/internal/sim"
)

func TestVCDOutput(t *testing.T) {
	s := New()
	clk := s.Bit("clk", U)
	data := s.Signal("data", 4, U)
	s.Clock(clk, 10*sim.Nanosecond)
	d := data.Driver("tb")
	s.Schedule(7*sim.Nanosecond, func() { d.SetUint(0xA) })

	var out strings.Builder
	v := NewVCD(&out, s)
	if err := s.Run(30 * sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"$timescale 1ps $end",
		"$var wire 1 ! clk $end",
		"$var wire 4 \" data $end",
		"$enddefinitions $end",
		"#5000", // first clock edge at 5ns = 5000ps
		"b1010 \"",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("VCD missing %q in:\n%s", want, text)
		}
	}
	// Initial dump must show U as x.
	if !strings.Contains(text, "x!") && !strings.Contains(text, "bxxxx") {
		t.Errorf("VCD missing initial unknown values:\n%s", text)
	}
}

func TestVCDIDs(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 300; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate VCD id %q at %d", id, i)
		}
		seen[id] = true
		for _, r := range id {
			if r < 33 || r > 126 {
				t.Fatalf("id %q contains non-printable rune", id)
			}
		}
	}
}

func TestVCDCoalescesDeltas(t *testing.T) {
	// Several delta-cycle changes at one instant must dump one final value.
	s := New()
	a := s.Bit("a", L0)
	b := s.Bit("b", L0)
	da := a.Driver("tb")
	db := b.Driver("chain")
	s.Process("chain", func() { db.SetBit(a.Bit()) }, a)
	var out strings.Builder
	v := NewVCD(&out, s)
	s.Schedule(10*sim.Nanosecond, func() { da.SetBit(L1) })
	if err := s.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	v.Close()
	if n := strings.Count(out.String(), "#10000"); n != 1 {
		t.Errorf("timestamp #10000 appears %d times, want 1", n)
	}
}
