package hdl

import (
	"testing"

	"castanet/internal/sim"
)

// BenchmarkClockOnly measures the kernel's floor: a bare clock toggling.
func BenchmarkClockOnly(b *testing.B) {
	s := New()
	clk := s.Bit("clk", U)
	s.Clock(clk, 10*sim.Nanosecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.RunOne() {
			b.Fatal("clock stopped")
		}
	}
	b.ReportMetric(float64(s.Events())/float64(b.N), "events/op")
}

// BenchmarkCounter16 measures a clocked 16-bit counter: one process run
// plus one vector signal update per cycle.
func BenchmarkCounter16(b *testing.B) {
	s := New()
	clk := s.Bit("clk", U)
	s.Clock(clk, 10*sim.Nanosecond)
	NewCounter(s, "c", 16, clk, nil, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunOne()
	}
}

// BenchmarkResolution measures the multi-driver resolution path: four
// drivers on one bus, one driving, three at Z.
func BenchmarkResolution(b *testing.B) {
	s := New()
	bus := s.Signal("bus", 32, U)
	drivers := make([]*Driver, 4)
	for i := range drivers {
		drivers[i] = bus.Driver("d")
		drivers[i].Set(NewLV(32, Z))
	}
	s.RunOne()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drivers[i%4].SetUint(uint64(i))
		s.RunOne()
		drivers[i%4].Set(NewLV(32, Z))
		s.RunOne()
	}
}

// BenchmarkFIFOThroughput measures simultaneous read/write streaming
// through a FIFO.
func BenchmarkFIFOThroughput(b *testing.B) {
	s := New()
	clk := s.Bit("clk", U)
	s.Clock(clk, 10*sim.Nanosecond)
	f := NewFIFO(s, "f", 8, 16, clk)
	f.WrEn.Driver("tb").SetBit(L1)
	f.WrDat.Driver("tb").SetUint(0x5A)
	f.RdEn.Driver("tb").SetBit(L1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunOne()
	}
}
