package hdl

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"castanet/internal/sim"
)

// This file is the compiled≡event-driven differential harness. A byte
// program (random bytes are always a valid program) elaborates a netlist —
// input signals, structural gates, clocked registers, multi-driver
// resolution, and a stimulus script that injects two-state values as well
// as X/Z/weak/uninitialized vectors — onto a fresh simulator. The same
// program runs once on the plain nine-value event kernel and once with
// Compile(), and every observable must agree: the full VCD byte stream,
// the per-signal waveform event-for-event (time, global delta index, old
// and new value), the kernel counters, and the activity profile.
// FuzzKernelEquivalence drives the same harness from the fuzzer.

const (
	diffClockPeriod = 10 * sim.Nanosecond
	diffMaxSignals  = 32
	diffMaxGates    = 64
	diffMaxStims    = 128
)

type diffReader struct {
	b []byte
	i int
}

func (r *diffReader) more() bool { return r.i < len(r.b) }

func (r *diffReader) next() byte {
	if r.i >= len(r.b) {
		return 0
	}
	c := r.b[r.i]
	r.i++
	return c
}

// diffLogicTable biases stimulus toward the interesting corners: mostly
// strong two-state with every impure value reachable.
var diffLogicTable = [16]Logic{L0, L1, L0, L1, L0, L1, X, Z, W, WL, WH, U, DC, L1, L0, X}

// buildDiffDesign elaborates the byte program onto s. The elaboration is a
// pure function of data, so running it onto two simulators yields
// structurally identical designs with identical stimulus schedules.
func buildDiffDesign(data []byte, s *Simulator, clk *Signal) (all []*Signal, horizon sim.Time) {
	r := &diffReader{b: data}
	type input struct {
		sig *Signal
		drv *Driver
	}
	var ins []input
	all = append(all, clk)
	byWidth := map[int][]*Signal{1: {clk}}
	addSig := func(g *Signal) {
		all = append(all, g)
		byWidth[g.width] = append(byWidth[g.width], g)
	}
	gates, stims := 0, 0
	horizon = 20 * diffClockPeriod
	note := func(at sim.Time) {
		if at+20*diffClockPeriod > horizon {
			horizon = at + 20*diffClockPeriod
		}
	}
	makeLV := func(width int, kind byte) LV {
		switch kind % 4 {
		case 0:
			return NewLV(width, X)
		case 1:
			return NewLV(width, Z)
		default:
			v := make(LV, width)
			for i := range v {
				v[i] = diffLogicTable[r.next()%16]
			}
			return v
		}
	}
	for r.more() {
		switch r.next() % 8 {
		case 0: // new stimulus input
			if len(ins) >= diffMaxSignals {
				continue
			}
			w := int(r.next()%16) + 1
			g := s.Signal(fmt.Sprintf("in%d", len(ins)), w, U)
			d := g.Driver("stim")
			ins = append(ins, input{g, d})
			addSig(g)
		case 1, 2: // structural gate
			if gates >= diffMaxGates || len(all) == 0 {
				continue
			}
			op := GateOp(r.next() % 8)
			base := all[int(r.next())%len(all)]
			peers := byWidth[base.width]
			n := 1
			if op != GateBuf && op != GateNot {
				n = 2 + int(r.next()%2)
			}
			gin := make([]*Signal, n)
			for i := range gin {
				gin[i] = peers[int(r.next())%len(peers)]
			}
			out := s.Signal(fmt.Sprintf("g%d", gates), base.width, U)
			s.Gate(fmt.Sprintf("gate%d", gates), op, out, gin...)
			addSig(out)
			gates++
		case 3: // clocked register
			if len(all) == 0 || len(all) >= 2*diffMaxSignals {
				continue
			}
			d := all[int(r.next())%len(all)]
			reg := NewReg(s, fmt.Sprintf("r%d", len(all)), clk, d, nil, nil)
			addSig(reg.Q)
		case 4, 5: // two-state stimulus
			if len(ins) == 0 || stims >= diffMaxStims {
				continue
			}
			in := ins[int(r.next())%len(ins)]
			u := uint64(r.next()) | uint64(r.next())<<8
			at := sim.Duration(r.next()) * diffClockPeriod / 2
			note(sim.Time(at))
			s.Schedule(at, func() { in.drv.SetUint(u) })
			stims++
		case 6: // impure stimulus: X/Z/weak/U/DC vectors
			if len(ins) == 0 || stims >= diffMaxStims {
				continue
			}
			in := ins[int(r.next())%len(ins)]
			v := makeLV(in.sig.width, r.next())
			at := sim.Duration(r.next()) * diffClockPeriod / 2
			note(sim.Time(at))
			s.Schedule(at, func() { in.drv.Set(v) })
			stims++
		case 7: // second driver: multi-driver resolution on an input
			if len(ins) == 0 || stims >= diffMaxStims {
				continue
			}
			in := ins[int(r.next())%len(ins)]
			d2 := in.sig.Driver("stim2")
			v := makeLV(in.sig.width, r.next())
			at := sim.Duration(r.next()) * diffClockPeriod / 2
			note(sim.Time(at))
			s.Schedule(at, func() { d2.Set(v) })
			s.Schedule(at+3*diffClockPeriod, func() { d2.Set(NewLV(in.sig.width, Z)) })
			stims++
		}
	}
	return all, horizon
}

// diffResult captures every observable the two kernels must agree on.
type diffResult struct {
	vcd     string
	waves   map[string][]string
	events  uint64
	runs    uint64
	deltas  uint64
	points  uint64
	prof    interface{}
	planErr error
}

func runDiffKernel(data []byte, compiled bool) *diffResult {
	s := New()
	s.EnableProfile()
	clk := s.Bit("clk", U)
	s.Clock(clk, diffClockPeriod)
	all, horizon := buildDiffDesign(data, s, clk)
	res := &diffResult{waves: map[string][]string{}}
	for _, g := range all {
		g := g
		g.OnChange(func(now sim.Time, old, new LV) {
			res.waves[g.name] = append(res.waves[g.name],
				fmt.Sprintf("%d@%d %s->%s", now, s.DeltaCycles(), old, new))
		})
	}
	var vcdBuf bytes.Buffer
	vcd := NewVCD(&vcdBuf, s)
	if compiled {
		if _, err := s.Compile(); err != nil {
			res.planErr = err
			return res
		}
	}
	if err := s.Run(horizon); err != nil {
		res.planErr = err
		return res
	}
	vcd.Close()
	res.vcd = vcdBuf.String()
	res.events = s.Events()
	res.runs = s.ProcessRuns()
	res.deltas = s.DeltaCycles()
	res.points = s.TimePoints()
	res.prof = s.Profile().Snapshot()
	return res
}

// compareKernels runs the program through both kernels and reports the
// first divergence, or "" when they agree.
func compareKernels(data []byte) string {
	ev := runDiffKernel(data, false)
	cp := runDiffKernel(data, true)
	if (ev.planErr == nil) != (cp.planErr == nil) {
		return fmt.Sprintf("error divergence: event=%v compiled=%v", ev.planErr, cp.planErr)
	}
	if ev.planErr != nil {
		return "" // both failed identically (e.g. delta overflow)
	}
	if ev.events != cp.events || ev.runs != cp.runs || ev.deltas != cp.deltas || ev.points != cp.points {
		return fmt.Sprintf("counter divergence: event(ev=%d runs=%d deltas=%d points=%d) compiled(ev=%d runs=%d deltas=%d points=%d)",
			ev.events, ev.runs, ev.deltas, ev.points, cp.events, cp.runs, cp.deltas, cp.points)
	}
	if len(ev.waves) != len(cp.waves) {
		return fmt.Sprintf("wave signal count divergence: %d vs %d", len(ev.waves), len(cp.waves))
	}
	for name, evw := range ev.waves {
		cpw := cp.waves[name]
		if len(evw) != len(cpw) {
			return fmt.Sprintf("signal %s: %d events vs %d compiled", name, len(evw), len(cpw))
		}
		for i := range evw {
			if evw[i] != cpw[i] {
				return fmt.Sprintf("signal %s event %d: event=%q compiled=%q", name, i, evw[i], cpw[i])
			}
		}
	}
	if ev.vcd != cp.vcd {
		return fmt.Sprintf("VCD divergence (%d vs %d bytes)", len(ev.vcd), len(cp.vcd))
	}
	if !reflect.DeepEqual(ev.prof, cp.prof) {
		return fmt.Sprintf("profile divergence:\nevent:    %+v\ncompiled: %+v", ev.prof, cp.prof)
	}
	return ""
}

// TestKernelEquivalence is the waveform property test of ISSUE 10: at the
// three pinned seeds (the kernel-equivalence CI job runs exactly these
// under -race) plus a handful of extras, a random netlist and stimulus
// program must produce byte-identical observables on both kernels.
func TestKernelEquivalence(t *testing.T) {
	seeds := []int64{11, 23, 47} // pinned: CI contract
	if !testing.Short() {
		seeds = append(seeds, 101, 211, 307, 401, 503)
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			for round := 0; round < 4; round++ {
				data := make([]byte, 200+rng.Intn(600))
				rng.Read(data)
				if diff := compareKernels(data); diff != "" {
					t.Fatalf("seed %d round %d: %s", seed, round, diff)
				}
			}
		})
	}
}

// TestKernelEquivalencePurityChurn drives a program that repeatedly
// demotes and promotes regions (alternating X and two-state stimulus on
// the same inputs) — the guard boundary is where a fast path would lie.
func TestKernelEquivalencePurityChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for round := 0; round < 6; round++ {
		var prog []byte
		// A few inputs and a pile of gates, then alternating stimulus.
		for i := 0; i < 4; i++ {
			prog = append(prog, 0, byte(rng.Intn(8))) // SIG
		}
		for i := 0; i < 12; i++ {
			prog = append(prog, 1, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
		}
		for i := 0; i < 40; i++ {
			if i%2 == 0 {
				prog = append(prog, 6, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))) // impure
			} else {
				prog = append(prog, 4, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))) // two-state
			}
		}
		if diff := compareKernels(prog); diff != "" {
			t.Fatalf("round %d: %s", round, diff)
		}
	}
}
