package hdl

import "fmt"

// This file provides the small library of synthesizable building blocks
// device models compose: clocked registers, counters, shift registers and
// synchronous FIFOs. Each component is elaborated onto a Simulator as a
// process plus its interface signals, the way a VHDL entity would be
// instantiated.

// Reg is a clocked register with synchronous enable and reset.
type Reg struct {
	Q *Signal // registered output

	d   *Signal
	en  *Signal
	rst *Signal
}

// NewReg elaborates a register: on each rising clock edge, if rst is high
// Q clears to zero, otherwise if en is high Q takes D. A nil en means
// always enabled; a nil rst means never reset.
func NewReg(s *Simulator, name string, clk, d, en, rst *Signal) *Reg {
	r := &Reg{Q: s.Signal(name+"_q", d.Width(), U), d: d, en: en, rst: rst}
	drv := r.Q.Driver(name)
	s.Process(name, func() {
		if !clk.Rising() {
			return
		}
		if rst != nil && rst.Bit().IsHigh() {
			drv.SetUint(0)
			return
		}
		if en == nil || en.Bit().IsHigh() {
			if d.pknown {
				// Two-state value with a valid packed mirror: move the
				// word, not the vector. Identical committed value.
				drv.SetUint(d.pval)
			} else {
				drv.Set(d.Val().Clone())
			}
		}
	}, clk)
	return r
}

// Counter is an up-counter with synchronous enable and reset.
type Counter struct {
	Q *Signal
}

// NewCounter elaborates a width-bit counter that increments on every
// enabled rising edge and wraps at 2^width.
func NewCounter(s *Simulator, name string, width int, clk, en, rst *Signal) *Counter {
	c := &Counter{Q: s.Signal(name+"_q", width, U)}
	drv := c.Q.Driver(name)
	drv.SetUint(0)
	s.Process(name, func() {
		if !clk.Rising() {
			return
		}
		if rst != nil && rst.Bit().IsHigh() {
			drv.SetUint(0)
			return
		}
		if en == nil || en.Bit().IsHigh() {
			drv.Set(c.Q.Val().Incr())
		}
	}, clk)
	return c
}

// ShiftReg is a serial-in parallel-out shift register (LSB first).
type ShiftReg struct {
	Q *Signal
}

// NewShiftReg elaborates a width-bit shift register sampling the one-bit
// din on every enabled rising edge; new bits enter at the most
// significant position and shift toward bit 0.
func NewShiftReg(s *Simulator, name string, width int, clk, din, en *Signal) *ShiftReg {
	if din.Width() != 1 {
		panic("hdl: shift register input must be one bit")
	}
	r := &ShiftReg{Q: s.Signal(name+"_q", width, U)}
	drv := r.Q.Driver(name)
	drv.SetUint(0)
	s.Process(name, func() {
		if !clk.Rising() {
			return
		}
		if en != nil && !en.Bit().IsHigh() {
			return
		}
		cur := r.Q.Val()
		next := make(LV, width)
		copy(next, cur[1:])
		next[width-1] = din.Bit().to01()
		drv.Set(next)
	}, clk)
	return r
}

// FIFO is a synchronous first-in first-out buffer with wr/rd strobes,
// full/empty flags and registered read data — the ubiquitous elastic
// buffer of cell-based hardware.
type FIFO struct {
	// Interface signals.
	WrEn  *Signal // input: write strobe
	WrDat *Signal // input: write data
	RdEn  *Signal // input: read strobe
	RdDat *Signal // output: read data, valid the cycle after RdEn
	Full  *Signal // output
	Empty *Signal // output

	depth int
	mem   []LV
	// Overflows/Underflows count strobes that violated the flags; real
	// hardware ignores them, diagnostics count them.
	Overflows  uint64
	Underflows uint64
}

// NewFIFO elaborates a FIFO of the given width and depth. The caller
// drives WrEn/WrDat/RdEn; the FIFO drives RdDat/Full/Empty.
func NewFIFO(s *Simulator, name string, width, depth int, clk *Signal) *FIFO {
	if depth <= 0 {
		panic(fmt.Sprintf("hdl: FIFO depth %d", depth))
	}
	f := &FIFO{
		WrEn:  s.Bit(name+"_wr_en", U),
		WrDat: s.Signal(name+"_wr_dat", width, U),
		RdEn:  s.Bit(name+"_rd_en", U),
		RdDat: s.Signal(name+"_rd_dat", width, U),
		Full:  s.Bit(name+"_full", U),
		Empty: s.Bit(name+"_empty", U),
		depth: depth,
	}
	dRd := f.RdDat.Driver(name)
	dFull := f.Full.Driver(name)
	dEmpty := f.Empty.Driver(name)
	dRd.SetUint(0)
	dFull.SetBit(L0)
	dEmpty.SetBit(L1)
	s.Process(name, func() {
		if !clk.Rising() {
			return
		}
		// Read before write within a cycle (classic FWFT-less FIFO):
		if f.RdEn.Bit().IsHigh() {
			if len(f.mem) == 0 {
				f.Underflows++
			} else {
				dRd.Set(f.mem[0])
				f.mem = f.mem[1:]
			}
		}
		if f.WrEn.Bit().IsHigh() {
			if len(f.mem) >= f.depth {
				f.Overflows++
			} else {
				f.mem = append(f.mem, f.WrDat.Val().Clone())
			}
		}
		if len(f.mem) >= f.depth {
			dFull.SetBit(L1)
		} else {
			dFull.SetBit(L0)
		}
		if len(f.mem) == 0 {
			dEmpty.SetBit(L1)
		} else {
			dEmpty.SetBit(L0)
		}
	}, clk)
	return f
}

// Len returns the current occupancy (test/diagnostic view).
func (f *FIFO) Len() int { return len(f.mem) }
