package hdl

import (
	"testing"
	"testing/quick"
)

func TestResolutionTableIEEE(t *testing.T) {
	// Spot-check the canonical entries of the IEEE-1164 resolution table.
	cases := []struct{ a, b, want Logic }{
		{L0, L1, X}, // two forcing drivers fight
		{L0, Z, L0}, // Z loses to forcing
		{L1, Z, L1},
		{Z, Z, Z},
		{WL, WH, W},  // two weak drivers fight weakly
		{L0, WH, L0}, // forcing beats weak
		{U, L1, U},   // U is contagious
		{DC, L0, X},  // don't-care resolves to X
		{X, Z, X},
	}
	for _, c := range cases {
		if got := Resolve(c.a, c.b); got != c.want {
			t.Errorf("Resolve(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestResolutionCommutativeAssociative(t *testing.T) {
	f := func(a, b, c byte) bool {
		x, y, z := Logic(a%9), Logic(b%9), Logic(c%9)
		if Resolve(x, y) != Resolve(y, x) {
			return false
		}
		return Resolve(Resolve(x, y), z) == Resolve(x, Resolve(y, z))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLogicOps(t *testing.T) {
	if L0.And(L1) != L0 || L1.And(L1) != L1 || L1.And(X) != X || L0.And(X) != L0 {
		t.Error("And table wrong")
	}
	if L0.Or(L1) != L1 || L0.Or(L0) != L0 || L0.Or(X) != X || L1.Or(X) != L1 {
		t.Error("Or table wrong")
	}
	if L1.Xor(L1) != L0 || L0.Xor(L1) != L1 || L1.Xor(X) != X {
		t.Error("Xor table wrong")
	}
	if L0.Not() != L1 || L1.Not() != L0 || Z.Not() != X {
		t.Error("Not table wrong")
	}
	// Weak values behave as their strong counterparts in logic ops.
	if WH.And(L1) != L1 || WL.Or(L0) != L0 {
		t.Error("weak values not normalized in ops")
	}
}

func TestParseLogic(t *testing.T) {
	for _, c := range []byte{'U', 'X', '0', '1', 'Z', 'W', 'L', 'H', '-'} {
		l, err := ParseLogic(c)
		if err != nil {
			t.Fatalf("ParseLogic(%q): %v", c, err)
		}
		if l.String() != string(c) {
			t.Errorf("round trip %q -> %q", c, l.String())
		}
	}
	if _, err := ParseLogic('q'); err == nil {
		t.Error("ParseLogic('q') should fail")
	}
	if l, err := ParseLogic('z'); err != nil || l != Z {
		t.Error("lowercase literal not accepted")
	}
}

func TestLVUintRoundTrip(t *testing.T) {
	f := func(v uint16) bool {
		lv := FromUint(uint64(v), 16)
		got, ok := lv.Uint()
		return ok && got == uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLVUintUndefined(t *testing.T) {
	lv := MustParseLV("10X1")
	if _, ok := lv.Uint(); ok {
		t.Error("Uint succeeded with X bit")
	}
	lv = MustParseLV("10Z1")
	if _, ok := lv.Uint(); ok {
		t.Error("Uint succeeded with Z bit")
	}
	// Weak levels are defined.
	lv = MustParseLV("1LH1")
	u, ok := lv.Uint()
	if !ok || u != 0b1011 {
		t.Errorf("Uint(1LH1) = %v,%v want 11,true", u, ok)
	}
}

func TestLVStringOrder(t *testing.T) {
	lv := FromUint(0b1010, 4)
	if lv.String() != "1010" {
		t.Errorf("String = %q, want 1010 (MSB first)", lv.String())
	}
	parsed := MustParseLV("1010")
	if !parsed.Equal(lv) {
		t.Error("ParseLV/String not inverse")
	}
	if parsed[0] != L0 || parsed[3] != L1 {
		t.Error("bit order: index 0 must be LSB")
	}
}

func TestLVAdd(t *testing.T) {
	f := func(a, b uint8) bool {
		s, c := FromUint(uint64(a), 8).Add(FromUint(uint64(b), 8))
		got, ok := s.Uint()
		if !ok {
			return false
		}
		wantSum := uint64(a) + uint64(b)
		if got != wantSum&0xFF {
			return false
		}
		wantCarry := wantSum > 0xFF
		return c.IsHigh() == wantCarry
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLVAddUndefined(t *testing.T) {
	s, c := MustParseLV("1X01").Add(FromUint(1, 4))
	if s.Defined() || c != X {
		t.Error("Add with X input must give all-X")
	}
}

func TestLVIncrWraps(t *testing.T) {
	v := FromUint(0xFF, 8).Incr()
	if u, _ := v.Uint(); u != 0 {
		t.Errorf("0xFF+1 = %d, want 0 (wrap)", u)
	}
}

func TestLVSliceConcat(t *testing.T) {
	v := FromUint(0xABCD, 16)
	lo := v.Slice(0, 8)
	hi := v.Slice(8, 8)
	if b, _ := lo.Byte(); b != 0xCD {
		t.Errorf("low byte = %#x", b)
	}
	if b, _ := hi.Byte(); b != 0xAB {
		t.Errorf("high byte = %#x", b)
	}
	back := lo.Concat(hi)
	if u, _ := back.Uint(); u != 0xABCD {
		t.Errorf("concat = %#x", u)
	}
}

func TestLVBitwise(t *testing.T) {
	a := MustParseLV("1100")
	b := MustParseLV("1010")
	if a.And(b).String() != "1000" {
		t.Errorf("And = %s", a.And(b))
	}
	if a.Or(b).String() != "1110" {
		t.Errorf("Or = %s", a.Or(b))
	}
	if a.Xor(b).String() != "0110" {
		t.Errorf("Xor = %s", a.Xor(b))
	}
	if a.Not().String() != "0011" {
		t.Errorf("Not = %s", a.Not())
	}
}

func TestLVWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("width mismatch did not panic")
		}
	}()
	MustParseLV("11").And(MustParseLV("111"))
}
