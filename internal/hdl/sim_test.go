package hdl

import (
	"strings"
	"testing"

	"castanet/internal/sim"
)

func TestDeltaCycleOrdering(t *testing.T) {
	// Two chained combinational processes: b <= not a; c <= not b.
	// After a changes at time T, b updates one delta later and c a delta
	// after that, all at the same simulated instant.
	s := New()
	a := s.Bit("a", L0)
	b := s.Bit("b", U)
	c := s.Bit("c", U)
	da := a.Driver("tb")
	db := b.Driver("inv1")
	dc := c.Driver("inv2")
	s.Process("inv1", func() { db.SetBit(a.Bit().Not()) }, a)
	s.Process("inv2", func() { dc.SetBit(b.Bit().Not()) }, b)
	s.Schedule(10*sim.Nanosecond, func() { da.SetBit(L1) })
	if err := s.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 10*sim.Nanosecond {
		t.Fatalf("Now = %v", s.Now())
	}
	if b.Bit() != L0 || c.Bit() != L1 {
		t.Fatalf("b=%v c=%v, want 0 1", b.Bit(), c.Bit())
	}
}

func TestZeroDelayNotImmediate(t *testing.T) {
	// A VHDL signal assignment never takes effect within the same delta:
	// a process reading the signal right after writing sees the old value.
	s := New()
	a := s.Bit("a", L0)
	d := a.Driver("p")
	var seen Logic = U
	s.Schedule(0, func() {
		d.SetBit(L1)
		seen = a.Bit()
	})
	if err := s.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if seen != L0 {
		t.Fatalf("read after write saw %v, want old value 0", seen)
	}
	if a.Bit() != L1 {
		t.Fatalf("final value %v, want 1", a.Bit())
	}
}

func TestRisingEdgeDetection(t *testing.T) {
	s := New()
	clk := s.Bit("clk", U)
	s.Clock(clk, 20*sim.Nanosecond)
	rises, falls := 0, 0
	s.Process("edge", func() {
		if clk.Rising() {
			rises++
		}
		if clk.Falling() {
			falls++
		}
	}, clk)
	if err := s.Run(205 * sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	// Clock low at 0, rises at 10,30,... (period 20): rising at 10+20k.
	// Up to 205ns: 10,30,...,190 -> 10 rising edges; falls at 20..200 -> 10.
	if rises != 10 {
		t.Errorf("rises = %d, want 10", rises)
	}
	if falls != 10 {
		t.Errorf("falls = %d, want 10", falls)
	}
}

func TestSynchronousCounter(t *testing.T) {
	// 8-bit counter clocked at 100MHz with synchronous reset.
	s := New()
	clk := s.Bit("clk", U)
	rst := s.Bit("rst", U)
	count := s.Signal("count", 8, U)
	s.Clock(clk, 10*sim.Nanosecond)
	drst := rst.Driver("tb")
	dcount := count.Driver("proc")
	s.Process("counter", func() {
		if clk.Rising() {
			if rst.Bit().IsHigh() {
				dcount.SetUint(0)
			} else {
				dcount.Set(count.Val().Incr())
			}
		}
	}, clk)
	drst.SetBit(L1)
	s.Schedule(12*sim.Nanosecond, func() { drst.SetBit(L0) })
	if err := s.Run(505 * sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	// Rising edges at 5,15,25,...; reset high for edges at 5 (and the
	// deassert lands at 12ns, so edge at 15 counts from 0).
	// Edges after reset deassert: 15,25,...,505 -> value = number of edges.
	got, ok := count.Uint()
	if !ok {
		t.Fatalf("count undefined: %v", count.Val())
	}
	want := uint64(50) // edges at 15..505 inclusive = 50 edges
	if got != want {
		t.Errorf("count = %d, want %d", got, want)
	}
}

func TestMultipleDriversResolve(t *testing.T) {
	s := New()
	bus := s.Bit("bus", U)
	d1 := bus.Driver("a")
	d2 := bus.Driver("b")
	s.Schedule(0, func() { d1.SetBit(Z); d2.SetBit(Z) })
	s.Schedule(10*sim.Nanosecond, func() { d1.SetBit(L1) })
	s.Schedule(20*sim.Nanosecond, func() { d2.SetBit(L0) }) // contention
	s.Schedule(30*sim.Nanosecond, func() { d1.SetBit(Z) })
	var at10, at20, at30 Logic
	s.Schedule(15*sim.Nanosecond, func() { at10 = bus.Bit() })
	s.Schedule(25*sim.Nanosecond, func() { at20 = bus.Bit() })
	s.Schedule(35*sim.Nanosecond, func() { at30 = bus.Bit() })
	if err := s.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if at10 != L1 {
		t.Errorf("bus@15 = %v, want 1 (single driver, other Z)", at10)
	}
	if at20 != X {
		t.Errorf("bus@25 = %v, want X (contention)", at20)
	}
	if at30 != L0 {
		t.Errorf("bus@35 = %v, want 0", at30)
	}
}

func TestInertialDelayCancelsPulse(t *testing.T) {
	s := New()
	a := s.Bit("a", L0)
	d := a.Driver("p")
	var transitions []string
	a.OnChange(func(now sim.Time, old, new LV) {
		transitions = append(transitions, now.String()+":"+new.String())
	})
	// Schedule 1 after 10ns, then before it matures, overwrite with 0
	// after 5ns from t=2: inertial semantics preempt the pending 1.
	s.Schedule(0, func() { d.SetAfter(LV{L1}, 10*sim.Nanosecond) })
	s.Schedule(2*sim.Nanosecond, func() { d.SetAfter(LV{L0}, 5*sim.Nanosecond) })
	if err := s.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	for _, tr := range transitions {
		if strings.Contains(tr, ":1") {
			t.Errorf("preempted pulse still fired: %v", transitions)
		}
	}
}

func TestTransportDelayKeepsEarlier(t *testing.T) {
	s := New()
	a := s.Bit("a", L0)
	d := a.Driver("p")
	var log []string
	a.OnChange(func(now sim.Time, old, new LV) {
		log = append(log, now.String()+"="+new.String())
	})
	s.Schedule(0, func() {
		d.SetTransport(LV{L1}, 10*sim.Nanosecond)
		d.SetTransport(LV{L0}, 20*sim.Nanosecond) // later: keeps the 10ns txn
	})
	if err := s.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	want := []string{"10ns=1", "20ns=0"}
	if len(log) != 2 || log[0] != want[0] || log[1] != want[1] {
		t.Errorf("log = %v, want %v", log, want)
	}
}

func TestDeltaOverflowDetected(t *testing.T) {
	// Combinational loop: a <= not b; b <= not a — oscillates forever at
	// one instant; the kernel must detect it rather than hang.
	s := New()
	a := s.Bit("a", L0)
	b := s.Bit("b", L0)
	da := a.Driver("p1")
	db := b.Driver("p2")
	s.Process("p1", func() { da.SetBit(b.Bit().Not()) }, b)
	s.Process("p2", func() { db.SetBit(a.Bit().Not()) }, a)
	err := s.Run(sim.Never)
	if err == nil {
		t.Fatal("combinational loop not detected")
	}
}

func TestEventCounting(t *testing.T) {
	s := New()
	clk := s.Bit("clk", U)
	s.Clock(clk, 10*sim.Nanosecond)
	if err := s.Run(100 * sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	// Initial U->0 plus 20 toggles in 100ns.
	if s.Events() != 21 {
		t.Errorf("Events = %d, want 21", s.Events())
	}
	if s.TimePoints() == 0 {
		t.Error("TimePoints = 0")
	}
}

func TestProcessInitialRun(t *testing.T) {
	s := New()
	ran := 0
	s.Process("init", func() { ran++ })
	if err := s.Run(sim.Never); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("initial run count = %d, want 1", ran)
	}
}

func TestWidthMismatchAssignPanics(t *testing.T) {
	s := New()
	a := s.Signal("a", 8, U)
	d := a.Driver("p")
	defer func() {
		if recover() == nil {
			t.Error("width mismatch assign did not panic")
		}
	}()
	d.Set(NewLV(4, L0))
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New()
	if err := s.Run(50 * sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 50*sim.Nanosecond {
		t.Errorf("Now = %v, want 50ns even with empty agenda", s.Now())
	}
}

// Property: the kernel is deterministic — two identically constructed
// simulations produce identical event traces.
func TestKernelDeterminismProperty(t *testing.T) {
	build := func() (*Simulator, *[]string) {
		s := New()
		clk := s.Bit("clk", U)
		s.Clock(clk, 10*sim.Nanosecond)
		d := s.Signal("d", 8, U)
		dd := d.Driver("tb")
		cnt := NewCounter(s, "c", 8, clk, nil, nil)
		var log []string
		cnt.Q.OnChange(func(now sim.Time, old, new LV) {
			log = append(log, now.String()+"="+new.String())
		})
		s.Process("mix", func() {
			if clk.Rising() {
				if v, ok := cnt.Q.Uint(); ok {
					dd.SetUint(v ^ 0xA5)
				}
			}
		}, clk)
		return s, &log
	}
	s1, l1 := build()
	s2, l2 := build()
	if err := s1.Run(5 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := s2.Run(5 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if s1.Events() != s2.Events() || s1.ProcessRuns() != s2.ProcessRuns() {
		t.Fatalf("event counts diverge: %d/%d vs %d/%d",
			s1.Events(), s1.ProcessRuns(), s2.Events(), s2.ProcessRuns())
	}
	if len(*l1) != len(*l2) {
		t.Fatalf("trace lengths diverge: %d vs %d", len(*l1), len(*l2))
	}
	for i := range *l1 {
		if (*l1)[i] != (*l2)[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, (*l1)[i], (*l2)[i])
		}
	}
}
