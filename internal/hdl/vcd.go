package hdl

import (
	"fmt"
	"io"
	"sort"

	"castanet/internal/sim"
)

// VCD dumps signal activity in Value Change Dump format, the lingua franca
// of waveform viewers. It plays the role of the HDL simulator's waveform
// debugger in the co-verification environment (Fig. 2: "VHDL debugger").
type VCD struct {
	w       io.Writer
	ids     map[*Signal]string
	lastT   sim.Time
	started bool
	err     error
	pending map[*Signal]LV
}

// NewVCD creates a dumper that records the given signals (all simulator
// signals when none are listed). The header is written immediately; value
// changes follow as the simulation runs.
func NewVCD(w io.Writer, s *Simulator, signals ...*Signal) *VCD {
	if len(signals) == 0 {
		signals = s.Signals()
	}
	v := &VCD{w: w, ids: make(map[*Signal]string), pending: make(map[*Signal]LV), lastT: -1}
	v.printf("$timescale 1ps $end\n$scope module castanet $end\n")
	for i, g := range signals {
		id := vcdID(i)
		v.ids[g] = id
		v.printf("$var wire %d %s %s $end\n", g.Width(), id, g.Name())
	}
	v.printf("$upscope $end\n$enddefinitions $end\n$dumpvars\n")
	for _, g := range signals {
		v.emit(g, g.Val())
	}
	v.printf("$end\n")
	v.started = true
	for _, g := range signals {
		g := g
		g.OnChange(func(now sim.Time, old, new LV) { v.change(now, g, new) })
	}
	return v
}

// Err returns the first write error encountered, if any.
func (v *VCD) Err() error { return v.err }

// vcdID produces the compact printable identifiers VCD uses ('!' .. '~',
// then two characters, ...).
func vcdID(i int) string {
	const lo, hi = 33, 127
	n := hi - lo
	if i < n {
		return string(rune(lo + i))
	}
	return vcdID(i/n-1) + string(rune(lo+i%n))
}

func (v *VCD) printf(format string, args ...interface{}) {
	if v.err != nil {
		return
	}
	_, v.err = fmt.Fprintf(v.w, format, args...)
}

func (v *VCD) change(now sim.Time, g *Signal, val LV) {
	if now != v.lastT {
		v.flush()
		v.printf("#%d\n", int64(now))
		v.lastT = now
	}
	// Coalesce multiple delta-cycle changes at one instant: only the final
	// value of the instant is dumped.
	v.pending[g] = val.Clone()
}

func (v *VCD) flush() {
	if len(v.pending) == 0 {
		return
	}
	// Deterministic output order.
	sigs := make([]*Signal, 0, len(v.pending))
	for g := range v.pending {
		sigs = append(sigs, g)
	}
	sort.Slice(sigs, func(i, j int) bool { return v.ids[sigs[i]] < v.ids[sigs[j]] })
	for _, g := range sigs {
		v.emit(g, v.pending[g])
	}
	v.pending = make(map[*Signal]LV)
}

// Close flushes buffered changes. Call it after the simulation finishes.
func (v *VCD) Close() error {
	v.flush()
	return v.err
}

func (v *VCD) emit(g *Signal, val LV) {
	id, ok := v.ids[g]
	if !ok {
		return
	}
	if g.Width() == 1 {
		v.printf("%s%s\n", vcdChar(val[0]), id)
		return
	}
	v.printf("b%s %s\n", vcdVector(val), id)
}

func vcdChar(l Logic) string {
	switch l {
	case L0, WL:
		return "0"
	case L1, WH:
		return "1"
	case Z:
		return "z"
	default:
		return "x"
	}
}

func vcdVector(v LV) string {
	b := make([]byte, len(v))
	for i, l := range v {
		b[len(v)-1-i] = vcdChar(l)[0]
	}
	return string(b)
}
