package hdl

import (
	"sort"
	"sync/atomic"

	"castanet/internal/obs"
)

// ActivityProfile attributes kernel work to individual signals and
// processes: per-signal event counts with a two-state purity classifier
// (transitions whose old and new values are pure forcing 0/1 — the
// candidates for a compiled bit-parallel fast path) and per-process run
// counts with delta-cycle attribution (runs in follow-on deltas of an
// instant, i.e. delta churn).
//
// The hot path mirrors the kernel's own counter discipline: plain uint64
// accumulators indexed by creation-order ID, written only by the
// simulation goroutine, with a single nil pointer test when profiling is
// disabled. At every Step boundary the accumulators are published
// diff-style into an atomically swapped table (only changed entries are
// stored), so concurrent readers — the /profile endpoint — snapshot a
// consistent view without touching the per-delta loop.
type ActivityProfile struct {
	sim *Simulator

	// Hot-path accumulators, indexed by signal/process ID.
	sigEvents []uint64
	sigTwo    []uint64
	procRuns  []uint64
	procDelta []uint64

	pub atomic.Pointer[activityPub]
}

// activityPub is the published table: entry names captured at publish
// time, counts as atomics so readers race-freely observe the last Step
// boundary's state.
type activityPub struct {
	sigNames  []string
	sigWidths []int
	sigEvents []atomic.Uint64
	sigTwo    []atomic.Uint64

	procNames []string
	procRuns  []atomic.Uint64
	procDelta []atomic.Uint64
}

// EnableProfile attaches an activity profiler to the simulator (or returns
// the one already attached) and sizes it for the signals and processes
// elaborated so far; later Signal/Process calls grow it automatically.
func (s *Simulator) EnableProfile() *ActivityProfile {
	if s.prof == nil {
		s.prof = &ActivityProfile{
			sim:       s,
			sigEvents: make([]uint64, len(s.signals)),
			sigTwo:    make([]uint64, len(s.signals)),
			procRuns:  make([]uint64, len(s.processes)),
			procDelta: make([]uint64, len(s.processes)),
		}
		s.prof.publish()
	}
	return s.prof
}

// Profile returns the attached activity profiler, nil when profiling is
// disabled.
func (s *Simulator) Profile() *ActivityProfile { return s.prof }

// growSignal extends the per-signal accumulators for one new signal.
func (p *ActivityProfile) growSignal() {
	if p == nil {
		return
	}
	p.sigEvents = append(p.sigEvents, 0)
	p.sigTwo = append(p.sigTwo, 0)
}

// growProcess extends the per-process accumulators for one new process.
func (p *ActivityProfile) growProcess() {
	if p == nil {
		return
	}
	p.procRuns = append(p.procRuns, 0)
	p.procDelta = append(p.procDelta, 0)
}

// publish copies the hot accumulators into the published table. Called at
// Step boundaries by the simulation goroutine (single writer); only
// entries that changed since the last publish are stored, so a quiescent
// design costs a compare per entry.
func (p *ActivityProfile) publish() {
	if p == nil {
		return
	}
	t := p.pub.Load()
	if t == nil || len(t.sigNames) != len(p.sigEvents) || len(t.procNames) != len(p.procRuns) {
		t = p.rebuildPub()
	}
	for i, v := range p.sigEvents {
		if t.sigEvents[i].Load() != v {
			t.sigEvents[i].Store(v)
			t.sigTwo[i].Store(p.sigTwo[i])
		}
	}
	for i, v := range p.procRuns {
		if t.procRuns[i].Load() != v {
			t.procRuns[i].Store(v)
			t.procDelta[i].Store(p.procDelta[i])
		}
	}
}

// rebuildPub builds and swaps in a published table matching the current
// elaboration (new signals or processes appeared since the last rebuild).
func (p *ActivityProfile) rebuildPub() *activityPub {
	t := &activityPub{
		sigNames:  make([]string, len(p.sigEvents)),
		sigWidths: make([]int, len(p.sigEvents)),
		sigEvents: make([]atomic.Uint64, len(p.sigEvents)),
		sigTwo:    make([]atomic.Uint64, len(p.sigEvents)),
		procNames: make([]string, len(p.procRuns)),
		procRuns:  make([]atomic.Uint64, len(p.procRuns)),
		procDelta: make([]atomic.Uint64, len(p.procRuns)),
	}
	for i := range t.sigNames {
		t.sigNames[i] = p.sim.signals[i].name
		t.sigWidths[i] = p.sim.signals[i].width
	}
	for i := range t.procNames {
		t.procNames[i] = p.sim.processes[i].name
	}
	p.pub.Store(t)
	return t
}

// Snapshot returns the activity state as of the last Step boundary,
// entries sorted by name with duplicates collapsed. Safe to call
// concurrently with the simulation; a nil profiler snapshots empty.
func (p *ActivityProfile) Snapshot() obs.ActivitySnap {
	if p == nil {
		return obs.ActivitySnap{}
	}
	t := p.pub.Load()
	if t == nil {
		return obs.ActivitySnap{}
	}
	snap := obs.ActivitySnap{
		Signals:   make([]obs.SignalActivity, len(t.sigNames)),
		Processes: make([]obs.ProcessActivity, len(t.procNames)),
	}
	for i := range t.sigNames {
		snap.Signals[i] = obs.SignalActivity{
			Name:     t.sigNames[i],
			Width:    t.sigWidths[i],
			Events:   t.sigEvents[i].Load(),
			TwoState: t.sigTwo[i].Load(),
		}
	}
	for i := range t.procNames {
		snap.Processes[i] = obs.ProcessActivity{
			Name:      t.procNames[i],
			Runs:      t.procRuns[i].Load(),
			DeltaRuns: t.procDelta[i].Load(),
		}
	}
	sort.Slice(snap.Signals, func(i, j int) bool { return snap.Signals[i].Name < snap.Signals[j].Name })
	sort.Slice(snap.Processes, func(i, j int) bool { return snap.Processes[i].Name < snap.Processes[j].Name })
	snap.Signals = collapseSignals(snap.Signals)
	snap.Processes = collapseProcesses(snap.Processes)
	return snap
}

// collapseSignals sums adjacent same-name entries so the snapshot keys
// cleanly by name (the invariant obs.MergeActivity relies on) even if a
// design reuses a signal name.
func collapseSignals(in []obs.SignalActivity) []obs.SignalActivity {
	out := in[:0]
	for _, s := range in {
		if n := len(out); n > 0 && out[n-1].Name == s.Name {
			out[n-1].Events += s.Events
			out[n-1].TwoState += s.TwoState
			continue
		}
		out = append(out, s)
	}
	return out
}

func collapseProcesses(in []obs.ProcessActivity) []obs.ProcessActivity {
	out := in[:0]
	for _, p := range in {
		if n := len(out); n > 0 && out[n-1].Name == p.Name {
			out[n-1].Runs += p.Runs
			out[n-1].DeltaRuns += p.DeltaRuns
			continue
		}
		out = append(out, p)
	}
	return out
}
