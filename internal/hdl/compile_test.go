package hdl

import (
	"strings"
	"testing"

	"castanet/internal/sim"
)

func TestPackTwoStateRoundtrip(t *testing.T) {
	cases := []struct {
		s    string
		want uint64
		ok   bool
	}{
		{"0", 0, true},
		{"1", 1, true},
		{"1010", 0xA, true},
		{"11111111", 0xFF, true},
		{"10X0", 0, false},
		{"Z", 0, false},
		{"W011", 0, false},
		{"U", 0, false},
	}
	for _, c := range cases {
		v := MustParseLV(c.s)
		w, ok := v.PackTwoState()
		if ok != c.ok || (ok && w != c.want) {
			t.Errorf("PackTwoState(%s) = (%#x, %v), want (%#x, %v)", c.s, w, ok, c.want, c.ok)
		}
		if ok {
			back := make(LV, len(v))
			unpackInto(back, w)
			if !back.Equal(v) {
				t.Errorf("unpack(pack(%s)) = %s", c.s, back)
			}
		}
	}
}

func TestPackedGateMatchesNineValue(t *testing.T) {
	// On pure two-state words the packed operators must agree with the
	// nine-value LV fold for every operator.
	ops := []GateOp{GateAnd, GateOr, GateXor, GateNand, GateNor, GateXnor}
	words := []uint64{0x0, 0x1, 0xA5, 0xFF, 0x3C, 0x81}
	const width = 8
	mask := packMask(width)
	for _, op := range ops {
		for _, a := range words {
			for _, b := range words {
				got := packedGate(op, []uint64{a, b}, mask)
				av, bv := fromPacked(a, width), fromPacked(b, width)
				var ref LV
				switch op {
				case GateAnd, GateNand:
					ref = av.And(bv)
				case GateOr, GateNor:
					ref = av.Or(bv)
				case GateXor, GateXnor:
					ref = av.Xor(bv)
				}
				if op.inverting() {
					ref = ref.Not()
				}
				want, ok := ref.PackTwoState()
				if !ok {
					t.Fatalf("nine-value %v of pure inputs not two-state", op)
				}
				if got != want {
					t.Errorf("%v(%#x,%#x) = %#x, want %#x", op, a, b, got, want)
				}
			}
		}
	}
}

func TestCompileLevelization(t *testing.T) {
	s := New()
	a := s.Signal("a", 4, U)
	b := s.Signal("b", 4, U)
	ab := s.Signal("ab", 4, U)
	nab := s.Signal("nab", 4, U)
	x := s.Signal("x", 4, U)
	g1 := s.Gate("and_ab", GateAnd, ab, a, b)
	g2 := s.Gate("not_ab", GateNot, nab, ab)
	g3 := s.Gate("xor_out", GateXor, x, nab, a)
	pl, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if pl.Gates() != 3 || pl.Depth() != 3 {
		t.Fatalf("plan = %v, want 3 gates over 3 levels", pl)
	}
	if g1.Level() != 0 || g2.Level() != 1 || g3.Level() != 2 {
		t.Errorf("levels = %d,%d,%d, want 0,1,2", g1.Level(), g2.Level(), g3.Level())
	}
	if len(pl.Regions()) != 1 {
		t.Fatalf("regions = %d, want 1 (one connected cone)", len(pl.Regions()))
	}
	if got := pl.Regions()[0].Signals(); got != 5 {
		t.Errorf("region signals = %d, want 5", got)
	}
	if !s.Compiled() {
		t.Error("Compiled() = false after Compile")
	}
	if pl2, _ := s.Compile(); pl2 != pl {
		t.Error("second Compile returned a different plan")
	}
}

func TestCompileDisjointRegions(t *testing.T) {
	s := New()
	mk := func(p string) { // independent two-gate cone
		a := s.Signal(p+"a", 1, U)
		b := s.Signal(p+"b", 1, U)
		y := s.Signal(p+"y", 1, U)
		n := s.Signal(p+"n", 1, U)
		s.Gate(p+"and", GateAnd, y, a, b)
		s.Gate(p+"not", GateNot, n, y)
	}
	mk("p.")
	mk("q.")
	pl, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Regions()) != 2 {
		t.Fatalf("regions = %d, want 2 disjoint cones", len(pl.Regions()))
	}
}

func TestCompileCombinationalCycle(t *testing.T) {
	s := New()
	a := s.Signal("a", 1, U)
	y := s.Signal("y", 1, U)
	z := s.Signal("z", 1, U)
	s.Gate("loop_and", GateAnd, y, a, z)
	s.Gate("loop_not", GateNot, z, y)
	_, err := s.Compile()
	if err == nil {
		t.Fatal("Compile accepted a combinational cycle")
	}
	for _, name := range []string{"loop_and", "loop_not"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("cycle error %q does not name gate %s", err, name)
		}
	}
}

func TestGateValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	s := New()
	a := s.Signal("a", 4, U)
	b := s.Signal("b", 4, U)
	c1 := s.Signal("c1", 1, U)
	y := s.Signal("y", 4, U)
	mustPanic("arity buf", func() { s.Gate("g", GateBuf, y, a, b) })
	mustPanic("arity and", func() { s.Gate("g", GateAnd, y, a) })
	mustPanic("width mismatch", func() { s.Gate("g", GateAnd, y, a, c1) })
	driven := s.Signal("driven", 4, U)
	driven.Driver("proc")
	mustPanic("driven output", func() { s.Gate("g", GateAnd, driven, a, b) })
	s.Gate("ok", GateAnd, y, a, b)
	if _, err := s.Compile(); err != nil {
		t.Fatal(err)
	}
	z := s.Signal("z", 4, U)
	mustPanic("gate after compile", func() { s.Gate("late", GateNot, z, a) })
}

// TestGateEvalBothKernels drives every operator with two-state and impure
// inputs on a compiled and an event-kernel simulator and requires
// identical committed outputs — the value-level half of the equivalence
// claim (scheduling is covered by TestKernelEquivalence).
func TestGateEvalBothKernels(t *testing.T) {
	ops := []GateOp{GateBuf, GateNot, GateAnd, GateOr, GateXor, GateNand, GateNor, GateXnor}
	stimuli := [][2]string{
		{"0101", "0011"},
		{"1111", "0000"},
		{"01X1", "0011"}, // X propagation
		{"ZZ01", "0110"}, // high impedance
		{"LH01", "0101"}, // weak values read as levels
		{"UU11", "1111"}, // uninitialized poisons
	}
	for _, op := range ops {
		for _, st := range stimuli {
			run := func(compiled bool) string {
				s := New()
				a := s.Signal("a", 4, U)
				b := s.Signal("b", 4, U)
				y := s.Signal("y", 4, U)
				da := a.Driver("tb")
				var db *Driver
				if op == GateBuf || op == GateNot {
					s.Gate("g", op, y, a)
				} else {
					db = b.Driver("tb")
					s.Gate("g", op, y, a, b)
				}
				if compiled {
					s.MustCompile()
				}
				s.Schedule(10*sim.Nanosecond, func() {
					da.Set(MustParseLV(st[0]))
					if db != nil {
						db.Set(MustParseLV(st[1]))
					}
				})
				if err := s.Run(100 * sim.Nanosecond); err != nil {
					t.Fatal(err)
				}
				return y.Val().String()
			}
			evout, cpout := run(false), run(true)
			if evout != cpout {
				t.Errorf("%v(%s,%s): event=%s compiled=%s", op, st[0], st[1], evout, cpout)
			}
		}
	}
}
