package hdl

import (
	"fmt"

	"castanet/internal/sim"
)

// Signal is a resolved VHDL signal: a named, possibly multi-driver wire of
// one or more std_logic bits. Reads always observe the value of the
// current delta cycle; writes go through a Driver and take effect after a
// delta (or a user delay), never immediately — the VHDL signal-update
// semantics the synchronization protocol of the paper relies on.
//
// In compiled mode (after Simulator.Compile) every signal of 64 bits or
// fewer carries a packed two-state mirror: pknown reports that the current
// value is pure forcing 0/1 and pval holds it as one uint64 (bit i = bit
// i). While a single-driver signal stays two-state, assignments travel as
// packed words and the nine-value vector is materialized lazily, only when
// somebody asks for it (Val, VCD, a nine-value operation). The mirror is
// exact: for width ≤ 64, pknown == value.TwoState() at all times in
// compiled mode, which is what the purity guard and the profiler's
// two-state attribution rely on.
type Signal struct {
	name  string
	sim   *Simulator
	width int
	id    int // creation-order index into the profiler's accumulators

	drivers []*Driver
	value   LV
	prev    LV

	// Packed two-state mirror (compiled mode, width ≤ 64).
	pmask      uint64
	pval       uint64
	pprev      uint64
	pknown     bool
	pprevKnown bool
	valStale   bool // value's LV contents lag pval (pknown is set)
	prevStale  bool // prev's LV contents lag pprev (pprevKnown is set)

	region *Region // purity-guard region, set by Compile for gate cones

	eventStamp uint64 // stamp of the delta in which the last event occurred
	watchers   []*Process
	gwatch     []*Gate                           // compiled gates sensitive to this signal
	onChange   []func(now sim.Time, old, new LV) // VCD and probes
}

// Name returns the signal's hierarchical name.
func (g *Signal) Name() string { return g.name }

// Width returns the number of bits.
func (g *Signal) Width() int { return g.width }

// matVal materializes the nine-value vector from the packed mirror.
func (g *Signal) matVal() {
	if g.valStale {
		unpackInto(g.value, g.pval)
		g.valStale = false
	}
}

func (g *Signal) matPrev() {
	if g.prevStale {
		unpackInto(g.prev, g.pprev)
		g.prevStale = false
	}
}

// Val returns the current resolved value. The returned vector must not be
// modified, and is valid until the signal's next event.
func (g *Signal) Val() LV {
	g.matVal()
	return g.value
}

// Prev returns the value before the most recent event.
func (g *Signal) Prev() LV {
	g.matPrev()
	return g.prev
}

// Bit returns the current value of a one-bit signal.
func (g *Signal) Bit() Logic {
	if g.width != 1 {
		panic(fmt.Sprintf("hdl: Bit() on %q of width %d", g.name, g.width))
	}
	if g.pknown {
		if g.pval&1 != 0 {
			return L1
		}
		return L0
	}
	return g.value[0]
}

// Uint returns the current value as an unsigned integer.
func (g *Signal) Uint() (uint64, bool) {
	if g.pknown {
		return g.pval, true
	}
	return g.value.Uint()
}

// Event reports whether the signal changed value in the delta cycle that
// triggered the currently running process ("sig'event" in VHDL).
func (g *Signal) Event() bool { return g.eventStamp == g.sim.stamp }

// Rising reports a 0→1 edge in the current delta ("rising_edge(sig)").
func (g *Signal) Rising() bool {
	if g.width != 1 || g.eventStamp != g.sim.stamp {
		return false
	}
	if g.pknown && g.pprevKnown {
		return g.pval&1 != 0 && g.pprev&1 == 0
	}
	return g.Prev()[0].IsLow() && g.Val()[0].IsHigh()
}

// Falling reports a 1→0 edge in the current delta.
func (g *Signal) Falling() bool {
	if g.width != 1 || g.eventStamp != g.sim.stamp {
		return false
	}
	if g.pknown && g.pprevKnown {
		return g.pval&1 == 0 && g.pprev&1 != 0
	}
	return g.Prev()[0].IsHigh() && g.Val()[0].IsLow()
}

// OnChange registers a callback invoked after every value change (used by
// the VCD dumper and by statistic probes). Callbacks must not write
// signals. A signal with callbacks always materializes its vectors before
// firing, so callbacks never observe a stale mirror.
func (g *Signal) OnChange(fn func(now sim.Time, old, new LV)) {
	g.matVal()
	g.matPrev()
	g.onChange = append(g.onChange, fn)
}

// Driver allocates a new driver of the signal for the named owner. In
// VHDL every process driving a signal owns exactly one driver; the
// signal's value is the resolution of all driver contributions.
func (g *Signal) Driver(owner string) *Driver {
	if g.sim.fast {
		// A driver appearing after Compile ends the signal's packed
		// single-driver aliasing era: materialize every lazily-held vector
		// so the nine-value resolution that now governs reads real values.
		g.matVal()
		g.matPrev()
		for _, od := range g.drivers {
			od.matDrv()
		}
	}
	d := &Driver{sig: g, owner: owner, value: NewLV(g.width, U), di: uint32(len(g.sim.drvs))}
	g.sim.drvs = append(g.sim.drvs, d)
	g.drivers = append(g.drivers, d)
	return d
}

// initMirror seeds the packed mirror from the current nine-value state;
// Compile calls it once per signal so the mirror invariant holds from the
// first compiled delta.
func (g *Signal) initMirror() {
	g.pknown, g.pprevKnown = false, false
	g.valStale, g.prevStale = false, false
	if g.width > 64 {
		return
	}
	if w, ok := g.value.PackTwoState(); ok {
		g.pval, g.pknown = w, true
	}
	if w, ok := g.prev.PackTwoState(); ok {
		g.pprev, g.pprevKnown = w, true
	}
}

// fire records the event and wakes everything sensitive to it: processes,
// compiled gates, probes. The caller has already rotated value/prev.
func (g *Signal) fire(old, new LV) {
	s := g.sim
	g.eventStamp = s.stamp
	s.signalEvents++
	for _, p := range g.watchers {
		s.trigger(p)
	}
	for _, gt := range g.gwatch {
		s.markDirty(gt)
	}
	for _, fn := range g.onChange {
		fn(s.now, old, new)
	}
}

// resolve recomputes the signal value from all drivers and, on change,
// records the event and wakes sensitive processes. This is the nine-value
// path; packed single-driver commits take Driver.commitPacked instead.
func (g *Signal) resolve() {
	var v LV
	switch len(g.drivers) {
	case 0:
		return
	case 1:
		// Driver values are never mutated in place (assignments replace
		// the slice), so the signal may alias the single driver's value.
		d := g.drivers[0]
		d.matDrv()
		v = d.value
	default:
		if g.sim.fast && g.width <= 64 {
			if w, ok := g.resolveWord(); ok {
				g.commitWord(g.drivers[0], w, false)
				return
			}
		}
		d0 := g.drivers[0]
		d0.matDrv()
		v = d0.value.Clone()
		for _, d := range g.drivers[1:] {
			d.matDrv()
			for i := range v {
				v[i] = Resolve(v[i], d.value[i])
			}
		}
	}
	g.matVal()
	if v.Equal(g.value) {
		return
	}
	old := g.value
	s := g.sim
	oldK := g.pknown
	g.prev = old
	g.prevStale = false
	g.pprev, g.pprevKnown = g.pval, oldK
	g.value = v
	var newK bool
	if s.fast && g.width <= 64 {
		var w uint64
		w, newK = v.PackTwoState()
		g.pval, g.pknown = w, newK
		if r := g.region; r != nil && oldK != newK {
			r.note(newK)
		}
	} else {
		g.pknown = false
	}
	if pr := s.prof; pr != nil {
		pr.sigEvents[g.id]++
		var oldTwo, newTwo bool
		if s.fast && g.width <= 64 {
			oldTwo, newTwo = oldK, newK
		} else {
			oldTwo, newTwo = old.TwoState(), v.TwoState()
		}
		if oldTwo && newTwo {
			pr.sigTwo[g.id]++
		}
	}
	g.fire(old, v)
}

// Driver contribution classes for word-level multi-driver resolution
// (compiled mode). drvOther is the zero value: the contribution carries
// X/W/U/DC bits (or mixes Z with strong bits) and forces the nine-value
// resolution table.
const (
	drvOther uint8 = iota
	drvTwo         // pure two-state: pword holds the contribution
	drvAllZ        // fully floating: drops out of resolution
)

// Driver is one process's contribution to a signal, with its projected
// output waveform (pending transactions).
type Driver struct {
	sig     *Signal
	owner   string
	value   LV
	pending []*txn
	// Commit buffers for the packed fast path: materialized values rotate
	// between two dedicated vectors so the signal's value/prev aliasing
	// survives one generation back, matching the classic path's contract
	// that a read vector stays valid until the signal's next event.
	pbuf [2]LV
	pidx uint8
	// Packed contribution mirror (compiled mode): pstate classifies the
	// driver's current value for resolveWord, pword holds it when two-state,
	// and vstale marks that the value vector's contents lag pword (packed
	// commits on multi-driver signals defer materialization until a
	// nine-value resolution actually needs the vector).
	pstate uint8
	pword  uint64
	vstale bool
	zval   LV // cached all-Z vector for SetZ
	// Delta-ring seq handshake (compiled mode): ringSeq is the seq of the
	// driver's latest zero-delay assignment and ringArmed marks it live.
	// A ring entry whose seq no longer matches has been preempted. di is
	// the driver's index in the simulator's registry, how pointer-free
	// ring entries name their driver.
	di        uint32
	ringSeq   uint64
	ringArmed bool
}

// Sig returns the driven signal.
func (d *Driver) Sig() *Signal { return d.sig }

func (d *Driver) checkWidth(v LV) {
	if len(v) != d.sig.width {
		panic(fmt.Sprintf("hdl: driver %s: assigning width %d to signal %q of width %d",
			d.owner, len(v), d.sig.name, d.sig.width))
	}
}

// packable reports whether assignments to this driver may travel as
// packed words: compiled mode and mirror-capable width. Multi-driver
// signals qualify too — the commit resolves at word level when every
// contribution classifies (resolveWord) and falls back to the nine-value
// table otherwise.
func (d *Driver) packable() bool {
	g := d.sig
	return g.sim.fast && g.width <= 64
}

// classify refreshes the packed contribution mirror after a nine-value
// assignment: a pure two-state vector carries its word, a fully floating
// vector drops out of word resolution, anything else forces the
// nine-value table.
func (d *Driver) classify() {
	d.pstate = drvOther
	g := d.sig
	if !g.sim.fast || g.width > 64 {
		return
	}
	if w, ok := d.value.PackTwoState(); ok {
		d.pstate, d.pword = drvTwo, w
		return
	}
	for _, l := range d.value {
		if l != Z {
			return
		}
	}
	d.pstate = drvAllZ
}

// matDrv materializes a packed-committed contribution into a nine-value
// vector. It never writes in place — the current vector may be shared
// (bitLV, a parked SetZ vector) or alias a signal buffer.
func (d *Driver) matDrv() {
	if d.vstale {
		d.value = fromPacked(d.pword, d.sig.width)
		d.vstale = false
	}
}

// Set schedules an assignment after one delta cycle (VHDL "sig <= v;").
func (d *Driver) Set(v LV) { d.SetAfter(v, 0) }

// SetBit is Set for one-bit signals.
func (d *Driver) SetBit(l Logic) {
	if (l == L0 || l == L1) && d.sig.width == 1 && d.packable() {
		d.setPacked(uint64(l-L0), d.sig.sim.now)
		return
	}
	d.checkWidth(bitLV[l])
	d.preempt(d.sig.sim.now)
	d.schedule(bitLV[l], d.sig.sim.now)
}

// bitLV holds shared single-bit vectors; they are immutable by the LV
// contract (operations always return fresh slices).
var bitLV = [9]LV{{U}, {X}, {L0}, {L1}, {Z}, {W}, {WL}, {WH}, {DC}}

// SetUint is Set with an unsigned integer value.
func (d *Driver) SetUint(u uint64) {
	if d.packable() {
		d.setPacked(u&d.sig.pmask, d.sig.sim.now)
		return
	}
	v := FromUint(u, d.sig.width)
	d.checkWidth(v)
	d.preempt(d.sig.sim.now)
	d.schedule(v, d.sig.sim.now)
}

// SetAfter schedules an assignment with inertial delay (VHDL
// "sig <= v after t;"). Per inertial semantics, pending transactions that
// would occur at or after the new one are preempted; as a simplification
// pulses shorter than the delay already in the projected waveform are
// swallowed by cancelling all pending transactions at or after the new
// time.
func (d *Driver) SetAfter(v LV, delay sim.Duration) {
	d.checkWidth(v)
	if d.packable() {
		if w, ok := v.PackTwoState(); ok {
			d.setPacked(w, d.sig.sim.now+delay)
			return
		}
	}
	due := d.sig.sim.now + delay
	d.preempt(due)
	d.schedule(v.Clone(), due)
}

// setPacked schedules a packed two-state assignment with inertial
// preemption: the value is a word, no vector is allocated. Zero-delay
// assignments ride the delta ring as plain values; delayed ones take a
// pooled heap transaction.
func (d *Driver) setPacked(w uint64, due sim.Time) {
	d.preempt(due)
	s := d.sig.sim
	if due == s.now {
		s.pushRing(d, w, nil, true)
		return
	}
	t := s.newTxn()
	t.at = due
	t.drv = d
	t.packed = true
	t.pword = w
	d.pending = append(d.pending, t)
	s.push(t)
}

// preempt cancels pending transactions at or after due (inertial
// semantics). The driver's armed delta-ring entry sits at the current
// instant, so it is preempted exactly when due is now.
func (d *Driver) preempt(due sim.Time) {
	if d.ringArmed && due <= d.sig.sim.now {
		d.ringArmed = false
	}
	for _, t := range d.pending {
		if !t.dead && t.at >= due {
			t.dead = true
		}
	}
}

// SetZ parks the driver at high impedance (VHDL
// "sig <= (others => 'Z');"), releasing the signal to its other drivers.
// The all-Z vector is cached on the driver, so steady-state bus release
// allocates nothing.
func (d *Driver) SetZ() {
	if d.zval == nil {
		d.zval = NewLV(d.sig.width, Z)
	}
	due := d.sig.sim.now
	d.preempt(due)
	d.schedule(d.zval, due)
}

// SetTransport schedules an assignment with transport delay (VHDL
// "sig <= transport v after t;"): transactions later than the new one are
// deleted, earlier ones are kept, modeling an ideal delay line.
func (d *Driver) SetTransport(v LV, delay sim.Duration) {
	d.checkWidth(v)
	due := d.sig.sim.now + delay
	for _, t := range d.pending {
		if !t.dead && t.at > due {
			t.dead = true
		}
	}
	d.schedule(v.Clone(), due)
}

func (d *Driver) schedule(v LV, due sim.Time) {
	s := d.sig.sim
	if s.fast && due == s.now {
		s.pushRing(d, 0, v, false)
		return
	}
	t := s.newTxn()
	t.at = due
	t.drv = d
	t.val = v
	d.pending = append(d.pending, t)
	s.push(t)
}

// apply commits the transaction value to the driver and drops completed
// transactions from the pending list.
func (d *Driver) apply(t *txn) {
	s := d.sig.sim
	if len(d.pending) == 1 && d.pending[0] == t {
		// Common case: the applying transaction is the only pending one
		// (every zero-delay assignment preempts its predecessors first).
		d.pending[0] = nil
		d.pending = d.pending[:0]
	} else {
		live := d.pending[:0]
		for _, p := range d.pending {
			if p == t {
				continue
			}
			if p.dead {
				s.releaseTxn(p, relPending)
				continue
			}
			live = append(live, p)
		}
		for i := len(live); i < len(d.pending); i++ {
			d.pending[i] = nil
		}
		d.pending = live
	}
	if t.packed {
		d.commitPacked(t.pword)
	} else {
		d.value = t.val
		d.vstale = false
		d.classify()
		d.sig.resolve()
	}
	s.releaseTxn(t, relPending)
}

// applyRing commits a delta-ring value transaction (compiled mode). Ring
// entries are never in the pending list, so there is nothing to sweep.
func (d *Driver) applyRing(w uint64, v LV, packed bool) {
	if packed {
		d.commitPacked(w)
		return
	}
	d.value = v
	d.vstale = false
	d.classify()
	d.sig.resolve()
}

// commitPacked commits a packed transaction word to the driver. A single
// driver commits straight through commitWord; a multi-driver signal
// updates the contribution mirror (no vector is materialized) and runs
// resolution, which itself stays at word level whenever every other
// contribution classifies.
func (d *Driver) commitPacked(w uint64) {
	g := d.sig
	if len(g.drivers) != 1 {
		d.pstate, d.pword, d.vstale = drvTwo, w, true
		g.resolve()
		return
	}
	d.pstate, d.pword = drvTwo, w
	g.commitWord(d, w, true)
}

// resolveWord computes the multi-driver resolution at word level: fully
// floating drivers drop out, and the result is two-state iff the strong
// contributions agree (or there is exactly one). It reports ok=false —
// take the nine-value table instead — when any contribution is
// unclassified, all drivers float (the result carries Z), or strong
// words conflict (the result would carry X bits).
func (g *Signal) resolveWord() (uint64, bool) {
	var w uint64
	n := 0
	for _, d := range g.drivers {
		switch d.pstate {
		case drvAllZ:
		case drvTwo:
			if n > 0 && d.pword != w {
				return 0, false
			}
			w = d.pword
			n++
		default:
			return 0, false
		}
	}
	if n == 0 {
		return 0, false
	}
	return w, true
}

// commitWord is the packed counterpart of resolve's commit tail:
// word-compare instead of vector-compare, buffer rotation instead of
// allocation, and no nine-value materialization unless a probe needs it.
// d supplies the rotation buffers; alias marks the single-driver case
// where the driver's value mirrors the signal's.
func (g *Signal) commitWord(d *Driver, w uint64, alias bool) {
	if g.pknown {
		if g.pval == w {
			return
		}
	}
	// Not pknown means the current value genuinely holds a non-two-state
	// bit (the mirror is exact in compiled mode), so a two-state word is
	// always an event.
	s := g.sim
	if g.valStale && len(g.onChange) == 0 {
		// Steady-state commit: the vectors already lag their words (nothing
		// materialized since the last event) and no probe needs them, so
		// only the words rotate — the slices keep their roles and contents.
		// valStale implies pknown, so this is a two-state→two-state event:
		// no region transition, and the profiler counts it as pure.
		g.pprev, g.pprevKnown = g.pval, true
		g.prevStale = true
		g.pval = w
		if alias {
			d.vstale = true
		}
		if pr := s.prof; pr != nil {
			pr.sigEvents[g.id]++
			pr.sigTwo[g.id]++
		}
		g.fire(g.prev, g.value)
		return
	}
	oldLV := g.value
	oldStale := g.valStale
	oldK, oldP := g.pknown, g.pval
	buf := d.pbuf[d.pidx]
	if buf == nil {
		buf = make(LV, g.width)
		d.pbuf[d.pidx] = buf
	}
	d.pidx ^= 1
	g.prev = oldLV
	g.prevStale = oldStale
	g.pprev, g.pprevKnown = oldP, oldK
	g.value = buf
	if alias {
		d.value = buf
	}
	g.pval = w
	g.pknown = true
	if len(g.onChange) != 0 {
		g.matPrev()
		unpackInto(buf, w)
		g.valStale = false
		if alias {
			d.vstale = false
		}
	} else {
		g.valStale = true
		if alias {
			d.vstale = true
		}
	}
	if r := g.region; r != nil && !oldK {
		r.note(true)
	}
	if pr := s.prof; pr != nil {
		pr.sigEvents[g.id]++
		if oldK {
			pr.sigTwo[g.id]++
		}
	}
	g.fire(oldLV, buf)
}
