package hdl

import (
	"fmt"

	"castanet/internal/sim"
)

// Signal is a resolved VHDL signal: a named, possibly multi-driver wire of
// one or more std_logic bits. Reads always observe the value of the
// current delta cycle; writes go through a Driver and take effect after a
// delta (or a user delay), never immediately — the VHDL signal-update
// semantics the synchronization protocol of the paper relies on.
type Signal struct {
	name  string
	sim   *Simulator
	width int
	id    int // creation-order index into the profiler's accumulators

	drivers []*Driver
	value   LV
	prev    LV

	eventStamp uint64 // stamp of the delta in which the last event occurred
	watchers   []*Process
	onChange   []func(now sim.Time, old, new LV) // VCD and probes
}

// Name returns the signal's hierarchical name.
func (g *Signal) Name() string { return g.name }

// Width returns the number of bits.
func (g *Signal) Width() int { return g.width }

// Val returns the current resolved value. The returned vector must not be
// modified.
func (g *Signal) Val() LV { return g.value }

// Prev returns the value before the most recent event.
func (g *Signal) Prev() LV { return g.prev }

// Bit returns the current value of a one-bit signal.
func (g *Signal) Bit() Logic {
	if g.width != 1 {
		panic(fmt.Sprintf("hdl: Bit() on %q of width %d", g.name, g.width))
	}
	return g.value[0]
}

// Uint returns the current value as an unsigned integer.
func (g *Signal) Uint() (uint64, bool) { return g.value.Uint() }

// Event reports whether the signal changed value in the delta cycle that
// triggered the currently running process ("sig'event" in VHDL).
func (g *Signal) Event() bool { return g.eventStamp == g.sim.stamp }

// Rising reports a 0→1 edge in the current delta ("rising_edge(sig)").
func (g *Signal) Rising() bool {
	return g.width == 1 && g.Event() && g.prev[0].IsLow() && g.value[0].IsHigh()
}

// Falling reports a 1→0 edge in the current delta.
func (g *Signal) Falling() bool {
	return g.width == 1 && g.Event() && g.prev[0].IsHigh() && g.value[0].IsLow()
}

// OnChange registers a callback invoked after every value change (used by
// the VCD dumper and by statistic probes). Callbacks must not write
// signals.
func (g *Signal) OnChange(fn func(now sim.Time, old, new LV)) {
	g.onChange = append(g.onChange, fn)
}

// Driver allocates a new driver of the signal for the named owner. In
// VHDL every process driving a signal owns exactly one driver; the
// signal's value is the resolution of all driver contributions.
func (g *Signal) Driver(owner string) *Driver {
	d := &Driver{sig: g, owner: owner, value: NewLV(g.width, U)}
	g.drivers = append(g.drivers, d)
	return d
}

// resolve recomputes the signal value from all drivers and, on change,
// records the event and wakes sensitive processes.
func (g *Signal) resolve() {
	var v LV
	switch len(g.drivers) {
	case 0:
		return
	case 1:
		// Driver values are never mutated in place (assignments replace
		// the slice), so the signal may alias the single driver's value.
		v = g.drivers[0].value
	default:
		v = g.drivers[0].value.Clone()
		for _, d := range g.drivers[1:] {
			for i := range v {
				v[i] = Resolve(v[i], d.value[i])
			}
		}
	}
	if v.Equal(g.value) {
		return
	}
	old := g.value
	g.prev = old
	g.value = v
	g.eventStamp = g.sim.stamp
	g.sim.signalEvents++
	if pr := g.sim.prof; pr != nil {
		pr.sigEvents[g.id]++
		if old.TwoState() && v.TwoState() {
			pr.sigTwo[g.id]++
		}
	}
	for _, p := range g.watchers {
		g.sim.trigger(p)
	}
	for _, fn := range g.onChange {
		fn(g.sim.now, old, v)
	}
}

// Driver is one process's contribution to a signal, with its projected
// output waveform (pending transactions).
type Driver struct {
	sig     *Signal
	owner   string
	value   LV
	pending []*txn
}

// Sig returns the driven signal.
func (d *Driver) Sig() *Signal { return d.sig }

func (d *Driver) checkWidth(v LV) {
	if len(v) != d.sig.width {
		panic(fmt.Sprintf("hdl: driver %s: assigning width %d to signal %q of width %d",
			d.owner, len(v), d.sig.name, d.sig.width))
	}
}

// Set schedules an assignment after one delta cycle (VHDL "sig <= v;").
func (d *Driver) Set(v LV) { d.SetAfter(v, 0) }

// SetBit is Set for one-bit signals.
func (d *Driver) SetBit(l Logic) {
	d.checkWidth(bitLV[l])
	d.preempt(d.sig.sim.now)
	d.schedule(bitLV[l], d.sig.sim.now)
}

// bitLV holds shared single-bit vectors; they are immutable by the LV
// contract (operations always return fresh slices).
var bitLV = [9]LV{{U}, {X}, {L0}, {L1}, {Z}, {W}, {WL}, {WH}, {DC}}

// SetUint is Set with an unsigned integer value.
func (d *Driver) SetUint(u uint64) {
	v := FromUint(u, d.sig.width)
	d.checkWidth(v)
	d.preempt(d.sig.sim.now)
	d.schedule(v, d.sig.sim.now)
}

// SetAfter schedules an assignment with inertial delay (VHDL
// "sig <= v after t;"). Per inertial semantics, pending transactions that
// would occur at or after the new one are preempted; as a simplification
// pulses shorter than the delay already in the projected waveform are
// swallowed by cancelling all pending transactions at or after the new
// time.
func (d *Driver) SetAfter(v LV, delay sim.Duration) {
	d.checkWidth(v)
	due := d.sig.sim.now + delay
	d.preempt(due)
	d.schedule(v.Clone(), due)
}

// preempt cancels pending transactions at or after due (inertial
// semantics).
func (d *Driver) preempt(due sim.Time) {
	for _, t := range d.pending {
		if !t.dead && t.at >= due {
			t.dead = true
		}
	}
}

// SetTransport schedules an assignment with transport delay (VHDL
// "sig <= transport v after t;"): transactions later than the new one are
// deleted, earlier ones are kept, modeling an ideal delay line.
func (d *Driver) SetTransport(v LV, delay sim.Duration) {
	d.checkWidth(v)
	due := d.sig.sim.now + delay
	for _, t := range d.pending {
		if !t.dead && t.at > due {
			t.dead = true
		}
	}
	d.schedule(v.Clone(), due)
}

func (d *Driver) schedule(v LV, due sim.Time) {
	t := &txn{at: due, drv: d, val: v}
	d.pending = append(d.pending, t)
	d.sig.sim.push(t)
}

// apply commits the transaction value to the driver and drops completed
// transactions from the pending list.
func (d *Driver) apply(t *txn) {
	live := d.pending[:0]
	for _, p := range d.pending {
		if p != t && !p.dead {
			live = append(live, p)
		}
	}
	d.pending = live
	d.value = t.val
	d.sig.resolve()
}
