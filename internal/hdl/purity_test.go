package hdl

import (
	"testing"

	"castanet/internal/sim"
)

// purityRig elaborates a small compiled cone: y <= a AND b, ny <= NOT y,
// all 4 bits wide, with test-bench drivers on a and b.
type purityRig struct {
	s      *Simulator
	a, b   *Signal
	y, ny  *Signal
	da, db *Driver
	region *Region
}

func newPurityRig(t *testing.T) *purityRig {
	t.Helper()
	s := New()
	r := &purityRig{
		s: s,
		a: s.Signal("a", 4, U),
		b: s.Signal("b", 4, U),
		y: s.Signal("y", 4, U),
	}
	r.ny = s.Signal("ny", 4, U)
	r.da = r.a.Driver("tb")
	r.db = r.b.Driver("tb")
	s.Gate("and_y", GateAnd, r.y, r.a, r.b)
	s.Gate("not_y", GateNot, r.ny, r.y)
	pl := s.MustCompile()
	if len(pl.Regions()) != 1 {
		t.Fatalf("regions = %d, want 1", len(pl.Regions()))
	}
	r.region = pl.Regions()[0]
	return r
}

// settle drives two-state values onto both inputs and runs until the
// region is pure.
func (r *purityRig) settle(t *testing.T) {
	t.Helper()
	r.s.Schedule(10*sim.Nanosecond, func() {
		r.da.SetUint(0b0101)
		r.db.SetUint(0b0111)
	})
	if err := r.s.Run(50 * sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if r.region.Demoted() {
		t.Fatalf("region still demoted after two-state settle (impure=%d)", r.region.impure)
	}
	if got := r.y.Val().String(); got != "0101" {
		t.Fatalf("y = %s after settle, want 0101", got)
	}
}

// TestPurityBoundary is the table-driven demotion/promotion test of
// ISSUE 10: each non-two-state std_logic value, injected mid-window into
// a promoted region, must demote it within the same delta cycle as the
// commit (asserted from an OnChange probe, which fires in the commit's
// own signal-update phase), produce exactly the event-kernel result, and
// the region must promote back once the value drains.
func TestPurityBoundary(t *testing.T) {
	cases := []struct {
		inject Logic
		// expected y = a AND b with a = "0<inject>11" (bit 2 poisoned)
		// and b = "0111": y2 = inject AND 1.
		wantY string
	}{
		{X, "0X11"},  // X AND 1 = X
		{Z, "0X11"},  // Z reads as X through AND
		{W, "0X11"},  // weak unknown = X
		{U, "0X11"},  // uninitialized poisons like X
		{DC, "0X11"}, // don't-care propagates as X
		{WL, "0011"}, // weak 0 reads as 0
		{WH, "0111"}, // weak 1 reads as 1
	}
	for _, c := range cases {
		c := c
		t.Run(c.inject.String(), func(t *testing.T) {
			r := newPurityRig(t)
			r.settle(t)
			demos, promos := r.region.Demotions(), r.region.Promotions()

			// The poisoned vector: bit 2 carries the injected value.
			poisoned := LV{L1, L1, c.inject, L0} // LSB first: a = "0<inject>11"
			sameDelta := false
			r.a.OnChange(func(now sim.Time, old, new LV) {
				if new.Equal(poisoned) {
					// Fires inside the commit's signal-update phase: the
					// guard must already have demoted the region.
					sameDelta = r.region.Demoted()
				}
			})
			r.s.Schedule(10*sim.Nanosecond, func() { r.da.Set(poisoned) })
			if err := r.s.Run(sim.Time(100 * sim.Nanosecond)); err != nil {
				t.Fatal(err)
			}
			if !sameDelta {
				t.Errorf("inject %v: region not demoted within the committing delta", c.inject)
			}
			if !r.region.Demoted() {
				t.Errorf("inject %v: region promoted while %v still on a", c.inject, c.inject)
			}
			if r.region.Demotions() != demos+1 {
				t.Errorf("inject %v: demotions = %d, want %d", c.inject, r.region.Demotions(), demos+1)
			}
			// Cross-check the table against the nine-value AND itself.
			wantY := func() string {
				av := poisoned
				bv := MustParseLV("0111")
				return av.And(bv).String()
			}()
			if wantY != c.wantY {
				t.Fatalf("test table wrong: nine-value AND gives %s, table says %s", wantY, c.wantY)
			}
			if got := r.y.Val().String(); got != c.wantY {
				t.Errorf("inject %v: y = %s, want %s (event-kernel semantics)", c.inject, got, c.wantY)
			}

			// Drain: drive a fully two-state again; the region must promote.
			r.s.Schedule(10*sim.Nanosecond, func() { r.da.SetUint(0b0101) })
			if err := r.s.Run(r.s.Now() + 100*sim.Nanosecond); err != nil {
				t.Fatal(err)
			}
			if r.region.Demoted() {
				t.Errorf("inject %v: region still demoted after drain (impure=%d)", c.inject, r.region.impure)
			}
			if r.region.Promotions() != promos+1 {
				t.Errorf("inject %v: promotions = %d, want %d", c.inject, r.region.Promotions(), promos+1)
			}
			if got := r.y.Val().String(); got != "0101" {
				t.Errorf("inject %v: y = %s after drain, want 0101", c.inject, got)
			}
		})
	}
}

// TestPurityMultiDriverZ pins the permanent-demotion case the DUT's
// internal buses rely on: a region containing a signal with a Z-driving
// second driver stays on the event kernel while Z is resolved in, then
// promotes when the bus driver takes over with strong values.
func TestPurityMultiDriverZ(t *testing.T) {
	s := New()
	bus := s.Signal("bus", 4, U)
	y := s.Signal("y", 4, U)
	d1 := bus.Driver("port1")
	d2 := bus.Driver("port2")
	other := s.Signal("other", 4, U)
	do := other.Driver("tb")
	s.Gate("buf_bus", GateBuf, y, bus)
	s.Gate("and_keep", GateAnd, s.Signal("k", 4, U), bus, other)
	pl := s.MustCompile()
	region := pl.Regions()[0]

	// Both port drivers idle at Z: bus resolves to Z, region demoted.
	s.Schedule(10*sim.Nanosecond, func() {
		d1.Set(NewLV(4, Z))
		d2.Set(NewLV(4, Z))
		do.SetUint(0xF)
	})
	if err := s.Run(50 * sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if !region.Demoted() {
		t.Fatal("region promoted while the bus floats at Z")
	}
	if got := y.Val().String(); got != "ZZZZ" {
		t.Errorf("y = %s with floating bus, want ZZZZ (a buffer passes Z through)", got)
	}

	// One port speaks: strong value wins resolution, region promotes.
	s.Schedule(10*sim.Nanosecond, func() { d1.SetUint(0xA) })
	if err := s.Run(s.Now() + 50*sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if region.Demoted() {
		t.Fatalf("region still demoted after strong drive (impure=%d)", region.impure)
	}
	if got := y.Val().String(); got != "1010" {
		t.Errorf("y = %s after strong drive, want 1010", got)
	}
}
