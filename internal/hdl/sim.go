package hdl

import (
	"errors"
	"fmt"

	"castanet/internal/obs"
	"castanet/internal/sim"
)

// MaxDeltas bounds the number of delta cycles at one time point; exceeding
// it means the model oscillates without advancing time (e.g. two
// combinational processes driving each other) and Run returns an error
// instead of hanging.
const MaxDeltas = 10000

// txn is a pending heap transaction: either a delayed driver update or a
// plain timed callback (test-bench stimulus, clock edge). Transactions are
// pooled; a txn recycles once both of its owners have released it — the
// heap it was scheduled into and its driver's projected waveform (pending
// list). Callback transactions are never in a pending list and are born
// with that bit released. Zero-delay driver transactions in compiled mode
// do not use this type at all — they ride the delta ring as rtxn values.
type txn struct {
	at     sim.Time
	seq    uint64
	drv    *Driver
	val    LV
	pword  uint64 // packed two-state value when packed is set
	fn     func()
	dead   bool
	packed bool
	rel    uint8
	next   *txn // pool free list
}

const (
	relContainer uint8 = 1 << iota // dropped from the heap
	relPending                     // dropped from its driver's pending list
)

// newTxn takes a transaction from the pool (or allocates one).
func (s *Simulator) newTxn() *txn {
	t := s.free
	if t == nil {
		return &txn{}
	}
	s.free = t.next
	t.next = nil
	return t
}

// releaseTxn marks one ownership released; when both the container and the
// pending list have let go, the transaction is zeroed and pooled.
func (s *Simulator) releaseTxn(t *txn, bit uint8) {
	t.rel |= bit
	if t.rel != relContainer|relPending {
		return
	}
	*t = txn{next: s.free}
	s.free = t
}

// rtxn is a zero-delay driver transaction in the delta ring (compiled
// mode). Ring entries are plain values — no pool, no pending-list
// membership, no release bookkeeping. Inertial preemption is a seq
// handshake: the owning driver remembers the seq of its latest zero-delay
// assignment (ringSeq/ringArmed), and an entry whose seq no longer
// matches is dead.
// The entry is deliberately pointer-free so the ring's backing array is
// never scanned and the append pays no write barrier: the driver travels
// as its registry index, packed entries carry their word in pword, and
// the rare nine-value entry parks its vector in the simulator's ringVals
// side array with pword holding the index.
type rtxn struct {
	seq    uint64
	pword  uint64
	di     uint32
	packed bool
}

// txnHeap is a min-heap of transactions ordered by (time, insertion seq).
type txnHeap struct {
	items []*txn
}

func (h *txnHeap) push(t *txn) {
	h.items = append(h.items, t)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *txnHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *txnHeap) pop() *txn {
	n := len(h.items)
	if n == 0 {
		return nil
	}
	t := h.items[0]
	h.items[0] = h.items[n-1]
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(l, m) {
			m = l
		}
		if r < n && h.less(r, m) {
			m = r
		}
		if m == i {
			break
		}
		h.items[i], h.items[m] = h.items[m], h.items[i]
		i = m
	}
	return t
}

func (h *txnHeap) len() int { return len(h.items) }

// Process is a VHDL process: a body re-executed whenever a signal on its
// sensitivity list has an event.
type Process struct {
	name      string
	fn        func()
	id        int // creation-order index into the profiler's accumulators
	gate      *Gate
	triggered bool
	runs      uint64
}

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// Runs returns how many times the process body has executed.
func (p *Process) Runs() uint64 { return p.runs }

// Simulator is the event-driven HDL simulation kernel. The central loop
// implements the two-phase VHDL cycle: a signal-update phase applying all
// transactions due in the current delta, then a process-execution phase
// running every process made sensitive by those events. Processes schedule
// new transactions; zero-delay assignments mature in the next delta of the
// same simulated instant.
//
// After Compile the simulator additionally runs the bit-parallel fast data
// plane (DESIGN.md §18): zero-delay driver transactions bypass the heap
// through the delta ring, two-state values travel as packed words, and
// structural gates evaluate level-ordered from a dirty set instead of the
// generic sensitivity machinery. The scheduling semantics — which
// transaction applies in which delta, in which order — are identical in
// both modes; the shared seq counter across heap and ring is what makes
// the merge order exact.
type Simulator struct {
	now   sim.Time
	stamp uint64 // increments every delta; signals stamp their events with it

	agenda    txnHeap
	nseq      uint64 // global transaction order, shared by heap and ring
	ring      []rtxn // zero-delay driver transactions (compiled mode), FIFO = seq order
	ringVals  []LV   // vectors of non-packed ring entries, indexed by their pword
	ringHead  int
	free      *txn      // txn pool
	drvs      []*Driver // all drivers in creation order; rtxn.di indexes this
	processes []*Process
	runnable  []*Process
	spare     []*Process // recycled runnable buffer
	signals   []*Signal

	fast   bool // compiled data plane enabled (set by Compile)
	plan   *Plan
	gates  []*Gate
	ndirty int // gates awaiting evaluation in the current delta

	deltasAtNow  int
	signalEvents uint64
	procRuns     uint64
	timePoints   uint64
	deltaCycles  uint64

	// Observability handles, synchronized from the internal counters once
	// per Step (diff-based) so the per-delta hot path stays untouched.
	// All nil when uninstrumented.
	obsDeltas  *obs.Counter
	obsEvents  *obs.Counter
	obsRuns    *obs.Counter
	obsPoints  *obs.Counter
	obsPending *obs.Gauge // scheduled-transaction agenda depth
	lastSync   struct{ deltas, events, runs, points uint64 }

	// prof, when non-nil, attributes events and runs to individual
	// signals and processes (see profile.go). Hot paths pay one nil test
	// when disabled.
	prof *ActivityProfile
}

// Instrument registers the simulator's metrics under the given prefix
// (e.g. "hdl.sim"): delta_cycles, signal_events (transitions),
// process_runs and time_points. Counters are updated once per executed
// time point, so the per-delta and per-signal hot paths carry no
// instrumentation at all.
func (s *Simulator) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	s.obsDeltas = reg.Counter(prefix + ".delta_cycles")
	s.obsEvents = reg.Counter(prefix + ".signal_events")
	s.obsRuns = reg.Counter(prefix + ".process_runs")
	s.obsPoints = reg.Counter(prefix + ".time_points")
	s.obsPending = reg.Gauge(prefix + ".pending")
	s.lastSync.deltas = s.deltaCycles
	s.lastSync.events = s.signalEvents
	s.lastSync.runs = s.procRuns
	s.lastSync.points = s.timePoints
}

// syncObs publishes the counter deltas accumulated since the last sync.
// The delta ring is always empty between instants, so the pending gauge is
// the agenda depth in both kernel modes.
func (s *Simulator) syncObs() {
	if s.obsDeltas == nil {
		return
	}
	s.obsDeltas.Add(s.deltaCycles - s.lastSync.deltas)
	s.obsEvents.Add(s.signalEvents - s.lastSync.events)
	s.obsRuns.Add(s.procRuns - s.lastSync.runs)
	s.obsPoints.Add(s.timePoints - s.lastSync.points)
	s.obsPending.Set(float64(s.agenda.len()))
	s.lastSync.deltas = s.deltaCycles
	s.lastSync.events = s.signalEvents
	s.lastSync.runs = s.procRuns
	s.lastSync.points = s.timePoints
}

// New returns an empty simulator at time zero.
func New() *Simulator { return &Simulator{stamp: 1} }

// Now returns the current simulated time.
func (s *Simulator) Now() sim.Time { return s.now }

// Events returns the total number of signal value changes executed, the
// HDL-side event count compared against the network simulator in
// experiment E3.
func (s *Simulator) Events() uint64 { return s.signalEvents }

// ProcessRuns returns the total number of process body executions.
func (s *Simulator) ProcessRuns() uint64 { return s.procRuns }

// TimePoints returns how many distinct simulated instants were executed.
func (s *Simulator) TimePoints() uint64 { return s.timePoints }

// DeltaCycles returns the total number of delta cycles executed.
func (s *Simulator) DeltaCycles() uint64 { return s.deltaCycles }

// Signal creates a signal of the given width, all bits initialized to
// init ('U' at elaboration in VHDL).
func (s *Simulator) Signal(name string, width int, init Logic) *Signal {
	if width <= 0 {
		panic(fmt.Sprintf("hdl: signal %q with width %d", name, width))
	}
	g := &Signal{name: name, sim: s, width: width, id: len(s.signals), value: NewLV(width, init), prev: NewLV(width, init)}
	if width <= 64 {
		g.pmask = packMask(width)
	}
	s.signals = append(s.signals, g)
	s.prof.growSignal()
	return g
}

// Bit creates a one-bit signal.
func (s *Simulator) Bit(name string, init Logic) *Signal { return s.Signal(name, 1, init) }

// Signals returns all signals in creation order (for waveform dumping).
func (s *Simulator) Signals() []*Signal { return s.signals }

// Process registers a process with a sensitivity list. The body runs once
// at start of simulation (VHDL processes execute until their first wait at
// elaboration) and then on every event of a listed signal.
func (s *Simulator) Process(name string, fn func(), sensitivity ...*Signal) *Process {
	p := &Process{name: name, fn: fn, id: len(s.processes)}
	s.processes = append(s.processes, p)
	s.prof.growProcess()
	for _, g := range sensitivity {
		g.watchers = append(g.watchers, p)
	}
	s.trigger(p)
	return p
}

// Schedule runs fn at the given delay from now, in the signal-update phase
// of that instant's first delta. Test benches and clock generators use it;
// device models should use processes.
func (s *Simulator) Schedule(delay sim.Duration, fn func()) {
	if delay < 0 {
		panic("hdl: negative delay")
	}
	if fn == nil {
		panic("hdl: nil callback")
	}
	t := s.newTxn()
	t.at = s.now + delay
	t.fn = fn
	t.rel = relPending // callbacks are never in a pending list
	s.push(t)
}

// Clock drives sig as a free-running clock with the given period and an
// initial low phase. The first rising edge occurs at period/2.
func (s *Simulator) Clock(sig *Signal, period sim.Duration) {
	if period <= 0 {
		panic("hdl: clock period must be positive")
	}
	d := sig.Driver("clkgen:" + sig.name)
	d.SetBit(L0)
	var toggle func()
	val := Logic(L0)
	toggle = func() {
		if val == L0 {
			val = L1
		} else {
			val = L0
		}
		d.SetBit(val)
		s.Schedule(period/2, toggle)
	}
	s.Schedule(period/2, toggle)
}

// trigger marks a process runnable in the current (or first) delta.
func (s *Simulator) trigger(p *Process) {
	if !p.triggered {
		p.triggered = true
		s.runnable = append(s.runnable, p)
	}
}

// markDirty queues a compiled gate for level-ordered evaluation in the
// process phase of the current delta.
func (s *Simulator) markDirty(gt *Gate) {
	if gt.dirty {
		return
	}
	gt.dirty = true
	s.plan.dirty[gt.level] = append(s.plan.dirty[gt.level], gt)
	s.ndirty++
}

// push stamps the transaction with the global order seq and inserts it in
// the time-ordered heap. Zero-delay driver transactions in compiled mode
// never come here — they take pushRing instead. The signal-update phase
// merges the two containers by seq, so the application order is exactly
// the order the plain event kernel would pop from its heap.
func (s *Simulator) push(t *txn) {
	t.seq = s.nseq
	s.nseq++
	s.agenda.push(t)
}

// pushRing appends a zero-delay driver transaction to the delta ring (a
// FIFO append — ring entries are in seq order by construction) and arms
// the driver's seq handshake, which both marks the entry live and
// implicitly kills any older ring entry of the same driver.
func (s *Simulator) pushRing(d *Driver, w uint64, v LV, packed bool) {
	seq := s.nseq
	s.nseq++
	if !packed {
		w = uint64(len(s.ringVals))
		s.ringVals = append(s.ringVals, v)
	}
	s.ring = append(s.ring, rtxn{seq: seq, pword: w, di: d.di, packed: packed})
	d.ringSeq, d.ringArmed = seq, true
}

// agendaPeek returns the earliest live heap transaction, releasing
// preempted (dead) ones back to the pool as it goes.
func (s *Simulator) agendaPeek() *txn {
	for {
		n := len(s.agenda.items)
		if n == 0 {
			return nil
		}
		t := s.agenda.items[0]
		if !t.dead {
			return t
		}
		s.agenda.pop()
		s.releaseTxn(t, relContainer)
	}
}

// ringPeek returns the earliest live ring transaction, skipping entries
// whose seq handshake no longer matches (preempted) and compacting the
// ring when it drains.
func (s *Simulator) ringPeek() *rtxn {
	for s.ringHead < len(s.ring) {
		e := &s.ring[s.ringHead]
		if d := s.drvs[e.di]; d.ringArmed && d.ringSeq == e.seq {
			return e
		}
		s.ringHead++
	}
	if len(s.ring) > 0 {
		s.ring = s.ring[:0]
		s.ringHead = 0
		for i := range s.ringVals {
			s.ringVals[i] = nil
		}
		s.ringVals = s.ringVals[:0]
	}
	return nil
}

// ringPop consumes the head entry; the caller has just ringPeek'ed it, so
// it is live.
func (s *Simulator) ringPop() (d *Driver, w uint64, v LV, packed bool) {
	e := &s.ring[s.ringHead]
	d, w, packed = s.drvs[e.di], e.pword, e.packed
	if !packed {
		v = s.ringVals[w]
	}
	s.ringHead++
	return
}

// NextTime returns the time of the earliest pending transaction, or
// sim.Never when idle.
func (s *Simulator) NextTime() sim.Time {
	if s.ringPeek() != nil {
		return s.now
	}
	if t := s.agendaPeek(); t != nil {
		return t.at
	}
	if len(s.runnable) > 0 || s.ndirty > 0 {
		return s.now
	}
	return sim.Never
}

// ErrDeltaOverflow is returned when a single simulated instant exceeds
// MaxDeltas delta cycles.
var ErrDeltaOverflow = errors.New("hdl: delta cycle overflow (combinational loop?)")

// Step executes one complete simulated instant: it advances to the next
// transaction time and runs delta cycles until the instant is quiescent.
// It reports whether anything was executed.
func (s *Simulator) Step() (bool, error) {
	// Initial process executions (elaboration) run at the current time.
	t := s.agendaPeek()
	idleHere := len(s.runnable) == 0 && s.ndirty == 0 && s.ringPeek() == nil
	if t == nil && idleHere {
		return false, nil
	}
	if t != nil && idleHere {
		if t.at < s.now {
			panic(fmt.Sprintf("hdl: transaction in the past: now=%v at=%v", s.now, t.at))
		}
		s.now = t.at
	}
	s.timePoints++
	s.deltasAtNow = 0
	for {
		s.stamp++
		// Phase 1: signal update — apply every transaction due now, in
		// global seq order across the heap and the delta ring. The heap
		// peek is cached across ring applies: ring commits run no user
		// code that schedules or preempts (OnChange probes must not write
		// signals), so only executing a heap transaction — whose fn may
		// schedule or preempt — can change the earliest live heap entry.
		applied := false
		ht := s.agendaPeek()
		if ht != nil && ht.at > s.now {
			ht = nil
		}
		for {
			rt := s.ringPeek()
			if ht == nil && rt == nil {
				break
			}
			applied = true
			if rt == nil || (ht != nil && ht.seq < rt.seq) {
				t := s.agenda.pop()
				if t.fn != nil {
					fn := t.fn
					s.releaseTxn(t, relContainer) // recycle before the call: fn may reuse it
					fn()
				} else {
					t.drv.apply(t)
					s.releaseTxn(t, relContainer)
				}
				ht = s.agendaPeek()
				if ht != nil && ht.at > s.now {
					ht = nil
				}
			} else {
				d, w, v, packed := s.ringPop()
				d.ringArmed = false
				d.applyRing(w, v, packed)
			}
		}
		// Phase 2: process execution, then level-ordered compiled gates.
		run := s.runnable
		s.runnable = s.spare[:0]
		if !applied && len(run) == 0 && s.ndirty == 0 {
			s.spare = run
			break
		}
		for _, p := range run {
			p.triggered = false
			p.runs++
			s.procRuns++
			if pr := s.prof; pr != nil {
				pr.procRuns[p.id]++
				if s.deltasAtNow > 0 {
					pr.procDelta[p.id]++
				}
			}
			p.fn()
		}
		if s.ndirty > 0 {
			s.plan.runDirty(s)
		}
		s.spare = run[:0]
		s.deltasAtNow++
		s.deltaCycles++
		if s.deltasAtNow > MaxDeltas {
			s.syncObs()
			s.prof.publish()
			return true, fmt.Errorf("%w at %v", ErrDeltaOverflow, s.now)
		}
		if s.ringPeek() == nil && len(s.runnable) == 0 && s.ndirty == 0 {
			hp := s.agendaPeek()
			if hp == nil || hp.at > s.now {
				break
			}
		}
	}
	s.syncObs()
	s.prof.publish()
	return true, nil
}

// Run executes until the agenda is exhausted or the simulated time would
// exceed until. The clock ends at min(until, last activity).
func (s *Simulator) Run(until sim.Time) error {
	for {
		next := s.NextTime()
		if next == sim.Never || next > until {
			if until != sim.Never && s.now < until {
				s.now = until
			}
			return nil
		}
		if _, err := s.Step(); err != nil {
			return err
		}
	}
}

// RunOne is Step for callers that treat errors as fatal (tests).
func (s *Simulator) RunOne() bool {
	ok, err := s.Step()
	if err != nil {
		panic(err)
	}
	return ok
}
